//===- bench/bench_lu.cpp - Experiment E4 (paper Figs. 9 & 10) ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// LU decomposition: the framework finds a single fully permutable band of
// width 3 (the 2-d statement is naturally sunk into the 3-d band, paper
// Sec. 5.2), giving 3-d tiles and two degrees of pipelined parallelism
// (Fig. 9). icc cannot auto-parallelize this code (paper Sec. 7). Variants:
// original, Pluto L1-tiled sequential, Pluto tiled + wavefront (1 degree),
// Pluto tiled + wavefront (2 degrees), and the inner-parallel-only
// baseline.
//
//===----------------------------------------------------------------------===//

#include "../bench/Harness.h"
#include "driver/Kernels.h"

using namespace pluto;
using namespace pluto::bench;

int main() {
  double Scale = benchScale();
  long long N = static_cast<long long>(1024 * std::cbrt(Scale));
  if (N < 64)
    N = 64;

  Problem P;
  P.Name = "E4: LU decomposition (paper Fig. 10)";
  P.Source = kernels::LU;
  P.ExtentExprs = {{"a", {"N", "N"}}};
  P.Extents = {{"a", {N, N}}};
  P.Params = {{"N", N}};
  // S0: 1 div x sum_k (N-k-1); S1: 2 x sum_k (N-k-1)^2 ~ 2N^3/3.
  double Nd = static_cast<double>(N);
  P.Flops = Nd * Nd / 2.0 + 2.0 * Nd * Nd * Nd / 3.0;

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping JIT benchmark\n");
    return 0;
  }

  PlutoOptions SeqOpts;
  SeqOpts.Tile = false;
  SeqOpts.Parallelize = false;
  SeqOpts.Vectorize = false;
  SeqOpts.IncludeInputDeps = false;
  auto Base = optimizeSource(P.Source, SeqOpts);
  if (!Base) {
    std::fprintf(stderr, "pipeline error: %s\n", Base.error().c_str());
    return 1;
  }
  auto OrigAst = buildOriginalAst(Base->program());
  auto Orig = compileVariant(*Base, **OrigAst, P);
  if (!Orig) {
    std::fprintf(stderr, "%s\n", Orig.error().c_str());
    return 1;
  }

  std::vector<Variant> Variants;
  auto add = [&](const std::string &Name, Result<PlutoResult> R,
                 bool Parallel) {
    if (!R) {
      std::fprintf(stderr, "%s: pipeline error: %s\n", Name.c_str(),
                   R.error().c_str());
      return;
    }
    auto K = compileVariant(*R, *R->Ast, P);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), K.error().c_str());
      return;
    }
    bool Ok = verify(*R, *Orig, *K, P);
    std::printf("  built %-36s verify: %s\n", Name.c_str(),
                Ok ? "ok" : "FAIL");
    if (Ok)
      Variants.push_back({Name, std::move(*K), Parallel});
  };

  PlutoOptions TileSeq;
  // Rough model, like the paper's thumb rule: three TxT tiles should fit
  // L2 (2 MiB here) -> T = 128. The paper used 32 for a 32 KiB L1.
  TileSeq.TileSize = 128;
  TileSeq.Parallelize = false;
  TileSeq.IncludeInputDeps = false;
  add("pluto (3-d tiled, seq)", optimizeSource(P.Source, TileSeq), false);

  // Ablation: the paper's L1-sized tiles, far too small for this host.
  PlutoOptions Tile32 = TileSeq;
  Tile32.TileSize = 32;
  add("pluto (tile 32, ablation)", optimizeSource(P.Source, Tile32), false);

  PlutoOptions TilePar1 = TileSeq;
  TilePar1.Parallelize = true;
  TilePar1.WavefrontDegrees = 1;
  add("pluto (tiled, 1-d pipeline)", optimizeSource(P.Source, TilePar1),
      true);

  PlutoOptions TilePar2 = TileSeq;
  TilePar2.Parallelize = true;
  TilePar2.WavefrontDegrees = 2;
  add("pluto (tiled, 2-d pipeline)", optimizeSource(P.Source, TilePar2),
      true);

  runAndReport(*Base, P, *Orig, Variants);
  return 0;
}
