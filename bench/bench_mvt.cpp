//===- bench/bench_mvt.cpp - Experiments E5 & E8 (paper Fig. 12) ----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// MVT (paper Figure 11): x1 += A y1; x2 += A^T y2, N = 8000. The input
// (RAR) dependence on A drives fusion of the first MV with the permuted
// second one (reuse distance on A becomes 0 for both hyperplanes), trading
// synchronization-free parallelism for one degree of pipelined parallelism.
// Variants:
//   - unfused + synchronization-free parallel (what approaches without
//     input dependences do: each MV parallelized separately; A not reused),
//   - fused ij with ij (forced; paper: "does not exploit reuse on A"),
//   - pluto (fused ij with ji, tiled, pipelined),
//   - pluto + vectorization post-pass (paper's "+syntactic transforms"
//     preview, E8).
//
//===----------------------------------------------------------------------===//

#include "../bench/Harness.h"
#include "driver/Kernels.h"

using namespace pluto;
using namespace pluto::bench;

int main() {
  double Scale = benchScale();
  long long N = static_cast<long long>(8000 * std::sqrt(Scale));
  if (N < 128)
    N = 128;

  Problem P;
  P.Name = "E5/E8: MVT, x1 += A y1; x2 += A^T y2 (paper Fig. 12)";
  P.Source = kernels::MVT;
  P.ExtentExprs = {{"a", {"N", "N"}}, {"x1", {"N"}}, {"x2", {"N"}},
                   {"y1", {"N"}}, {"y2", {"N"}}};
  P.Extents = {{"a", {N, N}}, {"x1", {N}}, {"x2", {N}}, {"y1", {N}},
               {"y2", {N}}};
  P.Params = {{"N", N}};
  P.Flops = 4.0 * static_cast<double>(N) * static_cast<double>(N);

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping JIT benchmark\n");
    return 0;
  }

  PlutoOptions SeqOpts;
  SeqOpts.Tile = false;
  SeqOpts.Parallelize = false;
  SeqOpts.Vectorize = false;
  auto Base = optimizeSource(P.Source, SeqOpts);
  if (!Base) {
    std::fprintf(stderr, "pipeline error: %s\n", Base.error().c_str());
    return 1;
  }
  auto OrigAst = buildOriginalAst(Base->program());
  auto Orig = compileVariant(*Base, **OrigAst, P);
  if (!Orig) {
    std::fprintf(stderr, "%s\n", Orig.error().c_str());
    return 1;
  }

  std::vector<Variant> Variants;
  auto add = [&](const std::string &Name, Result<PlutoResult> R,
                 bool Parallel) {
    if (!R) {
      std::fprintf(stderr, "%s: pipeline error: %s\n", Name.c_str(),
                   R.error().c_str());
      return;
    }
    auto K = compileVariant(*R, *R->Ast, P);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), K.error().c_str());
      return;
    }
    bool Ok = verify(*R, *Orig, *K, P);
    std::printf("  built %-36s verify: %s\n", Name.c_str(),
                Ok ? "ok" : "FAIL");
    if (Ok)
      Variants.push_back({Name, std::move(*K), Parallel});
  };

  // Baseline: unfused, each MV sync-free parallel on its outer loop (what
  // techniques without input dependences produce; barrier between MVs).
  {
    PlutoOptions NoRar;
    NoRar.IncludeInputDeps = false;
    NoRar.TileSize = 64;
    add("unfused, sync-free parallel", optimizeSource(P.Source, NoRar),
        true);
  }

  // Baseline: fusion of ij with ij (reuse on A not exploited; forced).
  {
    std::vector<IntMatrix> Rows;
    Rows.push_back(IntMatrix({{1, 0, 0}, {0, 1, 0}}));
    Rows.push_back(IntMatrix({{1, 0, 0}, {0, 1, 0}}));
    PlutoOptions Forced;
    Forced.TileSize = 64;
    Forced.IncludeInputDeps = true;
    add("fused ij with ij (forced)",
        lowerForced(P.Source, std::move(Rows), 2, Forced), true);
  }

  // Pluto: fused ij with ji, untiled (MVT has no blockable reuse - every
  // element of A is read exactly once after fusion; this is the fastest
  // lowering of the pluto schedule).
  {
    PlutoOptions O;
    O.Tile = false;
    O.Vectorize = false;
    add("pluto (fused ij/ji)", optimizeSource(P.Source, O), true);
  }

  // Pluto: fused ij with ji, tiled, pipelined (no vectorization pass).
  {
    PlutoOptions O;
    O.TileSize = 64;
    O.Vectorize = false;
    add("pluto (fused ij/ji, tiled)", optimizeSource(P.Source, O), true);
  }

  // Pluto + intra-tile reordering / vectorization (E8 preview).
  {
    PlutoOptions O;
    O.TileSize = 64;
    O.Vectorize = true;
    add("pluto + vectorization pass", optimizeSource(P.Source, O), true);
  }

  runAndReport(*Base, P, *Orig, Variants);
  return 0;
}
