//===- bench/bench_seidel.cpp - Experiment E6 (paper Fig. 13) -------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// 3-d Gauss-Seidel successive over-relaxation (time loop over an in-place
// 9-point 2-d stencil). The framework skews both space dimensions w.r.t.
// time, making all three dimensions tilable; one or two degrees of
// pipelined parallelism can then be extracted (paper: the 1-d pipeline
// wins in practice due to simpler code). Paper setup: Nx = Ny = 2000,
// T = 1000.
//
//===----------------------------------------------------------------------===//

#include "../bench/Harness.h"
#include "driver/Kernels.h"

using namespace pluto;
using namespace pluto::bench;

int main() {
  double Scale = benchScale();
  long long N = static_cast<long long>(1500 * std::sqrt(Scale));
  long long T = static_cast<long long>(50 * Scale);
  if (N < 48)
    N = 48;
  if (T < 6)
    T = 6;

  Problem P;
  P.Name = "E6: 3-d Gauss-Seidel SOR (paper Fig. 13)";
  P.Source = kernels::Seidel2D;
  P.ExtentExprs = {{"a", {"N", "N"}}};
  P.Extents = {{"a", {N, N}}};
  P.Params = {{"T", T}, {"N", N}};
  P.Flops = 10.0 * static_cast<double>(N - 2) * static_cast<double>(N - 2) *
            static_cast<double>(T);

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping JIT benchmark\n");
    return 0;
  }

  PlutoOptions SeqOpts;
  SeqOpts.Tile = false;
  SeqOpts.Parallelize = false;
  SeqOpts.Vectorize = false;
  SeqOpts.IncludeInputDeps = false;
  auto Base = optimizeSource(P.Source, SeqOpts);
  if (!Base) {
    std::fprintf(stderr, "pipeline error: %s\n", Base.error().c_str());
    return 1;
  }
  auto OrigAst = buildOriginalAst(Base->program());
  auto Orig = compileVariant(*Base, **OrigAst, P);
  if (!Orig) {
    std::fprintf(stderr, "%s\n", Orig.error().c_str());
    return 1;
  }

  std::vector<Variant> Variants;
  auto add = [&](const std::string &Name, Result<PlutoResult> R,
                 bool Parallel) {
    if (!R) {
      std::fprintf(stderr, "%s: pipeline error: %s\n", Name.c_str(),
                   R.error().c_str());
      return;
    }
    auto K = compileVariant(*R, *R->Ast, P);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), K.error().c_str());
      return;
    }
    bool Ok = verify(*R, *Orig, *K, P);
    std::printf("  built %-36s verify: %s\n", Name.c_str(),
                Ok ? "ok" : "FAIL");
    if (Ok)
      Variants.push_back({Name, std::move(*K), Parallel});
  };

  PlutoOptions TileSeq;
  TileSeq.TileSize = 32;
  TileSeq.Parallelize = false;
  TileSeq.IncludeInputDeps = false;
  add("pluto (3-d tiled, seq)", optimizeSource(P.Source, TileSeq), false);

  PlutoOptions Pipe1 = TileSeq;
  Pipe1.Parallelize = true;
  Pipe1.WavefrontDegrees = 1;
  add("pluto (tiled, 1-d pipeline)", optimizeSource(P.Source, Pipe1), true);

  PlutoOptions Pipe2 = TileSeq;
  Pipe2.Parallelize = true;
  Pipe2.WavefrontDegrees = 2;
  add("pluto (tiled, 2-d pipeline)", optimizeSource(P.Source, Pipe2), true);

  runAndReport(*Base, P, *Orig, Variants);
  return 0;
}
