//===- bench/Harness.h - Shared benchmark harness ---------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the figure-reproduction benchmarks (DESIGN.md
/// experiments E1-E8): compile original/transformed/baseline variants with
/// the system compiler (the paper's source-to-source methodology), verify
/// them against the original on the full problem, time them across thread
/// counts, and print paper-style GFLOPS tables.
///
/// Problem sizes can be scaled with PLUTOPP_BENCH_SCALE (default 1.0) to
/// match the host; thread counts with PLUTOPP_BENCH_THREADS (e.g. "1,2,4").
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_BENCH_HARNESS_H
#define PLUTOPP_BENCH_HARNESS_H

#include "driver/Driver.h"
#include "runtime/Jit.h"
#include "transform/PlutoTransform.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <omp.h>
#include <string>
#include <vector>

namespace pluto {
namespace bench {

inline double benchScale() {
  const char *S = std::getenv("PLUTOPP_BENCH_SCALE");
  return S ? std::atof(S) : 1.0;
}

inline std::vector<int> benchThreads() {
  const char *S = std::getenv("PLUTOPP_BENCH_THREADS");
  std::vector<int> T;
  if (S) {
    int V = 0;
    for (const char *P = S;; ++P) {
      if (*P >= '0' && *P <= '9')
        V = V * 10 + (*P - '0');
      else {
        if (V)
          T.push_back(V);
        V = 0;
        if (!*P)
          break;
      }
    }
  }
  if (T.empty())
    T = {1, 2, 4};
  return T;
}

/// One benchmark problem instance.
struct Problem {
  std::string Name;
  std::string Source;
  /// Extent expressions for emitC (array -> dims in parameter names).
  std::map<std::string, std::vector<std::string>> ExtentExprs;
  /// Numeric extents for buffer allocation.
  std::map<std::string, std::vector<long long>> Extents;
  std::map<std::string, long long> Params;
  std::map<std::string, double> Consts;
  /// Total floating-point operations of one kernel execution.
  double Flops = 0;
};

/// A compiled variant plus metadata.
struct Variant {
  std::string Name;
  CompiledKernel Kernel;
  bool Parallel = false; ///< Worth sweeping threads.
};

inline std::vector<double *> allocBuffers(
    const Program &Prog, const Problem &P,
    std::vector<std::vector<double>> &Storage) {
  Storage.clear();
  std::vector<double *> Ptrs;
  unsigned Seed = 1;
  for (const ArrayInfo &A : Prog.Arrays) {
    long long N = 1;
    auto It = P.Extents.find(A.Name);
    if (It != P.Extents.end())
      for (long long E : It->second)
        N *= E;
    std::vector<double> Buf(static_cast<size_t>(N));
    unsigned X = Seed++ * 2654435761u + 17;
    for (double &V : Buf) {
      X = X * 1664525u + 1013904223u;
      V = static_cast<double>((X >> 16) % 64) / 8.0;
    }
    Storage.push_back(std::move(Buf));
  }
  for (auto &Buf : Storage)
    Ptrs.push_back(Buf.data());
  return Ptrs;
}

inline std::vector<long long> paramVector(const Program &Prog,
                                          const Problem &P) {
  std::vector<long long> V;
  for (const std::string &Name : Prog.ParamNames)
    V.push_back(P.Params.at(Name));
  return V;
}

inline std::vector<double> constVector(const std::vector<std::string> &Names,
                                       const Problem &P) {
  std::vector<double> V;
  for (const std::string &Name : Names) {
    auto It = P.Consts.find(Name);
    V.push_back(It != P.Consts.end() ? It->second : 1.0);
  }
  return V;
}

/// Compiles one AST into a callable kernel.
inline Result<CompiledKernel> compileVariant(const PlutoResult &R,
                                             const CgNode &Ast,
                                             const Problem &P) {
  EmitOptions EO;
  EO.Extents = P.ExtentExprs;
  EO.SymConsts = R.Parsed.SymConsts;
  std::string C = emitC(R.program(), Ast, EO);
  return CompiledKernel::compile(C);
}

/// Verifies Variant output against the original kernel on the full problem.
inline bool verify(const PlutoResult &R, const CompiledKernel &Orig,
                   const CompiledKernel &Var, const Problem &P) {
  std::vector<std::vector<double>> S1, S2;
  std::vector<double *> A1 = allocBuffers(R.program(), P, S1);
  std::vector<double *> A2 = allocBuffers(R.program(), P, S2);
  std::vector<long long> PV = paramVector(R.program(), P);
  std::vector<double> CV = constVector(R.Parsed.SymConsts, P);
  omp_set_num_threads(1);
  Orig.call(A1, PV, CV);
  Var.call(A2, PV, CV);
  for (size_t B = 0; B < S1.size(); ++B)
    for (size_t I = 0; I < S1[B].size(); ++I) {
      double X = S1[B][I], Y = S2[B][I];
      double Tol = 1e-6 * (1.0 + std::max(std::fabs(X), std::fabs(Y)));
      if (std::fabs(X - Y) > Tol) {
        std::fprintf(stderr,
                     "  VERIFY FAIL: array %zu elem %zu: %g vs %g\n", B, I,
                     X, Y);
        return false;
      }
    }
  return true;
}

/// Times one call (best of Reps). Buffers are reinitialized to the identical
/// pseudo-random contents before every rep (outside the timed region) so
/// each rep runs the kernel on the same input: timing the previous rep's
/// output would measure an already-converged/steady state instead.
inline double timeKernel(const PlutoResult &R, const CompiledKernel &K,
                         const Problem &P, int Threads, int Reps = 3) {
  std::vector<std::vector<double>> Storage;
  std::vector<long long> PV = paramVector(R.program(), P);
  std::vector<double> CV = constVector(R.Parsed.SymConsts, P);
  omp_set_num_threads(Threads);
  double Best = 1e30;
  for (int I = 0; I < Reps; ++I) {
    std::vector<double *> A = allocBuffers(R.program(), P, Storage);
    auto T0 = std::chrono::steady_clock::now();
    K.call(A, PV, CV);
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

/// Prints the paper-style table: one row per variant, one column per thread
/// count (sequential variants only at 1 thread), GFLOPS and speedup over
/// the original.
inline void runAndReport(const PlutoResult &R, const Problem &P,
                         const CompiledKernel &Orig,
                         std::vector<Variant> &Variants) {
  std::vector<int> Threads = benchThreads();
  std::printf("\n== %s ==\n", P.Name.c_str());
  std::printf("problem:");
  for (const auto &[K, V] : P.Params)
    std::printf(" %s=%lld", K.c_str(), V);
  std::printf("  (%.3g GFLOP/run; host cores: %d)\n", P.Flops / 1e9,
              omp_get_num_procs());
  double BaseTime = timeKernel(R, Orig, P, 1);
  std::printf("%-28s %8s %10s %10s %9s\n", "variant", "threads", "time(s)",
              "GFLOPS", "speedup");
  std::printf("%-28s %8d %10.4f %10.3f %9.2fx\n", "original (cc -O3)", 1,
              BaseTime, P.Flops / BaseTime / 1e9, 1.0);
  for (Variant &V : Variants) {
    std::vector<int> Sweep = V.Parallel ? Threads : std::vector<int>{1};
    for (int T : Sweep) {
      double Time = timeKernel(R, V.Kernel, P, T);
      std::printf("%-28s %8d %10.4f %10.3f %9.2fx\n", V.Name.c_str(), T,
                  Time, P.Flops / Time / 1e9, BaseTime / Time);
    }
  }
}

/// Forced-transformation helper: builds a schedule from per-statement row
/// matrices, appends the textual-order dimension, validates it against the
/// dependences, marks the first BandWidth rows as one permutable band, and
/// lowers it through the same tiling/codegen pipeline. This is how the
/// paper evaluates prior approaches (Sec. 7: "the transformations were
/// forced to be what those approaches would have generated").
inline Result<PlutoResult> lowerForced(const std::string &Source,
                                       std::vector<IntMatrix> Rows,
                                       unsigned BandWidth,
                                       const PlutoOptions &Opts) {
  auto Parsed = parseSource(Source);
  if (!Parsed)
    return Err(Parsed.error());
  for (const std::string &Pm : Parsed->Prog.ParamNames)
    Parsed->Prog.addContextBound(Pm, Opts.ParamMin);
  DepOptions DO;
  DO.IncludeInputDeps = Opts.IncludeInputDeps;
  DependenceGraph DG = computeDependences(Parsed->Prog, DO);
  Schedule Sched;
  Sched.StmtRows = std::move(Rows);
  Sched.Rows.resize(Sched.StmtRows.empty()
                        ? 0
                        : Sched.StmtRows[0].numRows());
  appendTextualOrderRow(Parsed->Prog, Sched);
  Sched.Rows.back().IsScalar = true;
  if (!analyzeSchedule(Parsed->Prog, DG, Sched))
    return Err(std::string("forced schedule is illegal"));
  for (unsigned R = 0; R < BandWidth && R < Sched.numRows(); ++R)
    if (!Sched.Rows[R].IsScalar)
      Sched.Rows[R].BandId = 0;
  return lowerSchedule(std::move(*Parsed), std::move(DG), std::move(Sched),
                       Opts);
}

} // namespace bench
} // namespace pluto

#endif // PLUTOPP_BENCH_HARNESS_H
