//===- bench/bench_jacobi1d.cpp - Experiments E1 & E2 (paper Fig. 6) ------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Imperfectly nested 1-d Jacobi (paper Figure 3). Reproduces:
//  - Fig. 6(a): single-core locality speedup of the Pluto-transformed,
//    L1-tiled code over the native compiler (paper: 4x-7x with icc 10.0).
//  - Fig. 6(b): parallel comparison against the two prior approaches, run
//    as forced transformations through the same tool-chain exactly like
//    the paper did:
//      * "Affine partitioning (max parallelism, no cost function)"
//        (Lim/Lam): maximally independent time partitions, here the legal
//        equivalents 2t+i / 3t+i (with the +1 shift for S2).
//      * "Scheduling-based (time tiling)" (Griebl): Feautrier schedule
//        2t / 2t+1 plus the FCO allocation 2t+i.
//    plus the inner-space-only parallelization that production compilers
//    attempt (paper: "hardly yields any parallel speedup").
//
//===----------------------------------------------------------------------===//

#include "../bench/Harness.h"
#include "driver/Kernels.h"

using namespace pluto;
using namespace pluto::bench;

int main() {
  double Scale = benchScale();
  long long N = static_cast<long long>(2000000 * Scale);
  long long T = static_cast<long long>(200 * Scale);
  if (N < 64)
    N = 64;
  if (T < 8)
    T = 8;

  Problem P;
  P.Name = "E1/E2: imperfectly nested 1-d Jacobi (paper Fig. 6)";
  P.Source = kernels::Jacobi1D;
  P.ExtentExprs = {{"a", {"N"}}, {"b", {"N"}}};
  P.Extents = {{"a", {N}}, {"b", {N}}};
  P.Params = {{"T", T}, {"N", N}};
  // S0: 3 flops per point, S1: copy (0); count 3 per (t,i).
  P.Flops = 3.0 * static_cast<double>(N - 3) * static_cast<double>(T);

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping JIT benchmark\n");
    return 0;
  }

  // Original (runs through the same emitter: identity schedule).
  PlutoOptions SeqOpts;
  SeqOpts.Tile = false;
  SeqOpts.Parallelize = false;
  SeqOpts.Vectorize = false;
  SeqOpts.IncludeInputDeps = false;
  auto Base = optimizeSource(P.Source, SeqOpts);
  if (!Base) {
    std::fprintf(stderr, "pipeline error: %s\n", Base.error().c_str());
    return 1;
  }
  auto OrigAst = buildOriginalAst(Base->program());
  auto Orig = compileVariant(*Base, **OrigAst, P);
  if (!Orig) {
    std::fprintf(stderr, "%s\n", Orig.error().c_str());
    return 1;
  }

  std::vector<Variant> Variants;
  auto add = [&](const std::string &Name, Result<PlutoResult> R,
                 bool Parallel) {
    if (!R) {
      std::fprintf(stderr, "%s: pipeline error: %s\n", Name.c_str(),
                   R.error().c_str());
      return;
    }
    auto K = compileVariant(*R, *R->Ast, P);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), K.error().c_str());
      return;
    }
    bool Ok = verify(*R, *Orig, *K, P);
    std::printf("  built %-32s verify: %s\n", Name.c_str(),
                Ok ? "ok" : "FAIL");
    if (!Ok)
      return;
    Variants.push_back({Name, std::move(*K), Parallel});
  };

  // Pluto, locality only (Fig. 6(a)).
  PlutoOptions TileSeq;
  TileSeq.TileSize = 256; // Paper used 256 for this kernel (Fig. 3(d)).
  TileSeq.Parallelize = false;
  TileSeq.IncludeInputDeps = false;
  add("pluto (tiled, seq)", optimizeSource(P.Source, TileSeq), false);

  // Pluto, tiled + wavefront parallel (Fig. 6(b)).
  PlutoOptions TilePar = TileSeq;
  TilePar.Parallelize = true;
  add("pluto (tiled, wavefront)", optimizeSource(P.Source, TilePar), true);

  // Baseline: affine partitioning, maximally independent time partitions.
  {
    std::vector<IntMatrix> Rows;
    Rows.push_back(IntMatrix({{2, 1, 0}, {3, 1, 0}})); // S0 over (t, i).
    Rows.push_back(IntMatrix({{2, 1, 1}, {3, 1, 1}})); // S1 over (t, j).
    add("affine partitioning (forced)",
        lowerForced(P.Source, std::move(Rows), 2, TilePar), true);
  }

  // Baseline: scheduling + FCO allocation (time tiling enabled).
  {
    std::vector<IntMatrix> Rows;
    Rows.push_back(IntMatrix({{2, 0, 0}, {2, 1, 0}})); // theta=2t, pi=2t+i.
    Rows.push_back(IntMatrix({{2, 0, 1}, {2, 1, 1}})); // theta=2t+1.
    add("scheduling + FCO (forced)",
        lowerForced(P.Source, std::move(Rows), 2, TilePar), true);
  }

  // Baseline: inner space parallelism only (production auto-parallelizer).
  {
    PlutoOptions Inner;
    Inner.Tile = false;
    Inner.Parallelize = false;
    Inner.Vectorize = false;
    Inner.IncludeInputDeps = false;
    auto Parsed = parseSource(P.Source);
    if (Parsed) {
      Schedule Ident = identitySchedule(Parsed->Prog);
      Scop Sc = buildScop(Parsed->Prog, Ident);
      CodeGenOptions CG;
      CG.ParallelPragmaRows = {3}; // Row 3 is the space-loop row (i / j).
      auto Ast = generateAst(Sc, CG);
      if (Ast) {
        simplifyAst(*Ast);
        PlutoResult R;
        R.Parsed = std::move(*Parsed);
        R.Sched = std::move(Ident);
        R.Sc = std::move(Sc);
        R.Ast = std::move(*Ast);
        auto K = compileVariant(R, *R.Ast, P);
        if (K && verify(R, *Orig, *K, P)) {
          std::printf("  built %-32s verify: ok\n",
                      "inner space parallel only");
          Variants.push_back(
              {"inner space parallel only", std::move(*K), true});
        }
      }
    }
  }

  runAndReport(*Base, P, *Orig, Variants);
  return 0;
}
