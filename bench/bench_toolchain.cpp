//===- bench/bench_toolchain.cpp - Experiment E7 (tool running time) ------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper claims (Sec. 7): "Our transformation framework itself runs
// quite fast - within a fraction of a second for all benchmarks considered
// here. Along with code generation time, the entire source-to-source
// transformation does not take more than a few seconds for any of the
// cases." This google-benchmark binary measures each stage per kernel:
// parsing, dependence analysis, the Pluto ILP search, and tiled OpenMP
// code generation, plus substrate micro-benchmarks (integer lexmin,
// Fourier-Motzkin projection).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "ilp/LexMin.h"
#include "observe/PassStats.h"
#include "service/Batch.h"
#include "service/Pipeline.h"

#include <benchmark/benchmark.h>
#include <memory>

using namespace pluto;

namespace {

struct NamedKernel {
  const char *Name;
  const char *Src;
};

const NamedKernel Kernels[] = {
    {"jacobi1d", kernels::Jacobi1D}, {"fdtd2d", kernels::Fdtd2D},
    {"lu", kernels::LU},             {"mvt", kernels::MVT},
    {"seidel2d", kernels::Seidel2D}, {"matmul", kernels::MatMul},
};

Program parsedProgram(const char *Src) {
  auto P = parseSource(Src);
  assert(P && "kernel must parse");
  Program Prog = P->Prog;
  for (const std::string &Pm : Prog.ParamNames)
    Prog.addContextBound(Pm, 4);
  return Prog;
}

void BM_Parse(benchmark::State &State, const char *Src) {
  for (auto _ : State) {
    auto P = parseSource(Src);
    benchmark::DoNotOptimize(P);
  }
}

void BM_Dependences(benchmark::State &State, const char *Src) {
  Program Prog = parsedProgram(Src);
  for (auto _ : State) {
    DependenceGraph G = computeDependences(Prog);
    benchmark::DoNotOptimize(G.Deps.size());
  }
}

/// Dependence analysis pinned to a thread count (serial vs. parallel
/// worklist; results are bit-identical, only wall time differs).
void BM_DependencesThreads(benchmark::State &State, const char *Src,
                           int Threads) {
  Program Prog = parsedProgram(Src);
  DepOptions Opts;
  Opts.NumThreads = Threads;
  for (auto _ : State) {
    DependenceGraph G = computeDependences(Prog, Opts);
    benchmark::DoNotOptimize(G.Deps.size());
  }
}

void BM_Transform(benchmark::State &State, const char *Src) {
  Program Prog = parsedProgram(Src);
  DependenceGraph G = computeDependences(Prog);
  for (auto _ : State) {
    DependenceGraph Copy = G;
    auto S = computeSchedule(Prog, Copy);
    benchmark::DoNotOptimize(S.hasValue());
  }
}

/// The same work with a PassStats sink installed. Compare against
/// transform/<kernel> to measure the observability overhead; the stats-OFF
/// number is the contract (transform_* must not regress when no sink is
/// installed - every count site is then a relaxed null-check), and the
/// stats-ON delta here is expected to stay in the low single-digit
/// percents because counting happens at aggregation boundaries.
void BM_TransformStatsOn(benchmark::State &State, const char *Src) {
  Program Prog = parsedProgram(Src);
  DependenceGraph G = computeDependences(Prog);
  PassStats Stats;
  setActiveStats(&Stats);
  for (auto _ : State) {
    DependenceGraph Copy = G;
    auto S = computeSchedule(Prog, Copy);
    benchmark::DoNotOptimize(S.hasValue());
  }
  setActiveStats(nullptr);
  benchmark::DoNotOptimize(Stats.get(Counter::LexMinCalls));
}

void BM_EndToEnd(benchmark::State &State, const char *Src) {
  PlutoOptions Opts;
  Opts.TileSize = 32;
  for (auto _ : State) {
    auto R = optimizeSource(Src, Opts);
    benchmark::DoNotOptimize(R.hasValue());
  }
}

void BM_LexMinSmall(benchmark::State &State) {
  // The matmul-shaped first-hyperplane ILP.
  IntMatrix I(7);
  auto row = [&](std::initializer_list<long long> R) {
    std::vector<BigInt> V;
    for (long long X : R)
      V.push_back(BigInt(X));
    I.addRow(std::move(V));
  };
  row({0, 0, 1, 0, 0, 0, 0});
  row({1, 0, -1, 0, 0, 0, 0});
  row({4, 1, -3, 0, 0, 0, 0});
  row({0, 0, 1, 1, 1, 0, -1});
  for (auto _ : State) {
    auto R = ilp::lexMinNonNeg(I, IntMatrix(7), 6);
    benchmark::DoNotOptimize(R.feasible());
  }
}

void BM_FourierMotzkin(benchmark::State &State) {
  // Project a 6-d dependence-polyhedron-shaped system down to 2 dims.
  for (auto _ : State) {
    ConstraintSystem CS(6);
    for (unsigned V = 0; V < 6; ++V) {
      CS.addLowerBound(V, 0);
      CS.addUpperBound(V, 100);
    }
    CS.addIneq({1, -1, 0, 0, 0, 0, 0});
    CS.addIneq({0, 1, -1, 0, 0, 1, 0});
    CS.addEq({1, 0, 0, -1, 0, 0, -1});
    CS.projectOut(2, 4);
    benchmark::DoNotOptimize(CS.numIneqs());
  }
}

/// Same projection with the syntactic dominance pruning disabled: measures
/// what the inline pruning in eliminateVar/projectOut buys.
void BM_FourierMotzkinNoPruning(benchmark::State &State) {
  bool Prev = ConstraintSystem::setInlinePruning(false);
  for (auto _ : State) {
    ConstraintSystem CS(6);
    for (unsigned V = 0; V < 6; ++V) {
      CS.addLowerBound(V, 0);
      CS.addUpperBound(V, 100);
    }
    CS.addIneq({1, -1, 0, 0, 0, 0, 0});
    CS.addIneq({0, 1, -1, 0, 0, 1, 0});
    CS.addEq({1, 0, 0, -1, 0, 0, -1});
    CS.projectOut(2, 4);
    benchmark::DoNotOptimize(CS.numIneqs());
  }
  ConstraintSystem::setInlinePruning(Prev);
}

/// Arithmetic on coefficients that fit int64 (the inline fast path): the
/// mix FM row combination performs — mul, add, gcd, exact division,
/// comparison.
void BM_BigIntSmallOps(benchmark::State &State) {
  std::vector<BigInt> Vals;
  for (long long I = 0; I < 64; ++I)
    Vals.push_back(BigInt((I % 2 ? -1 : 1) * (I * 977 + 3)));
  for (auto _ : State) {
    BigInt Acc(0);
    for (size_t I = 0; I + 1 < Vals.size(); ++I) {
      BigInt P = Vals[I] * Vals[I + 1];
      Acc += P - Vals[I];
      BigInt G = BigInt::gcd(P, Vals[I + 1]);
      benchmark::DoNotOptimize(P.divExact(G) < Acc);
    }
    benchmark::DoNotOptimize(Acc.isZero());
  }
}

/// The same operation mix on ~128-bit values (the limb-vector fallback):
/// the gap between this and small_ops is the price the old representation
/// paid on every coefficient.
void BM_BigIntBigOps(benchmark::State &State) {
  std::vector<BigInt> Vals;
  BigInt Base = BigInt::fromString("170141183460469231731687303715884105727");
  for (long long I = 0; I < 64; ++I)
    Vals.push_back(I % 2 ? -(Base + BigInt(I)) : Base + BigInt(I));
  for (auto _ : State) {
    BigInt Acc(0);
    for (size_t I = 0; I + 1 < Vals.size(); ++I) {
      BigInt P = Vals[I] * Vals[I + 1];
      Acc += P - Vals[I];
      BigInt G = BigInt::gcd(P, Vals[I + 1]);
      benchmark::DoNotOptimize(P.divExact(G) < Acc);
    }
    benchmark::DoNotOptimize(Acc.isZero());
  }
}

std::vector<CompileJob> kernelCorpus() {
  std::vector<CompileJob> Jobs;
  for (const NamedKernel &K : Kernels)
    Jobs.push_back({K.Name, K.Src});
  return Jobs;
}

/// Cold compilation of the whole kernel corpus through the service layer
/// (fresh cache every iteration): the baseline the warm number divides.
void BM_ServiceBatchCold(benchmark::State &State, unsigned Threads) {
  std::vector<CompileJob> Jobs = kernelCorpus();
  for (auto _ : State) {
    BatchOptions BO;
    BO.Jobs = Threads;
    BO.Cache = std::make_shared<ResultCache>();
    auto R = compileBatch(Jobs, PlutoOptions(), BO);
    benchmark::DoNotOptimize(R.hasValue());
  }
}

/// Warm-cache recompilation of the corpus: every unit served by key
/// lookup. The acceptance bar is >= 10x faster than batch_cold (in
/// practice it is orders of magnitude).
void BM_ServiceBatchWarm(benchmark::State &State) {
  std::vector<CompileJob> Jobs = kernelCorpus();
  BatchOptions BO;
  BO.Cache = std::make_shared<ResultCache>();
  auto Seed = compileBatch(Jobs, PlutoOptions(), BO); // populate once
  assert(Seed.hasValue());
  benchmark::DoNotOptimize(Seed.hasValue());
  for (auto _ : State) {
    auto R = compileBatch(Jobs, PlutoOptions(), BO);
    benchmark::DoNotOptimize(R.hasValue());
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const NamedKernel &K : Kernels) {
    benchmark::RegisterBenchmark(
        (std::string("parse/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) { BM_Parse(S, Src); });
    benchmark::RegisterBenchmark(
        (std::string("dependences/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) { BM_Dependences(S, Src); });
    benchmark::RegisterBenchmark(
        (std::string("transform/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) { BM_Transform(S, Src); });
    benchmark::RegisterBenchmark(
        (std::string("transform_stats_on/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) { BM_TransformStatsOn(S, Src); });
    benchmark::RegisterBenchmark(
        (std::string("end_to_end_codegen/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) { BM_EndToEnd(S, Src); });
    benchmark::RegisterBenchmark(
        (std::string("dependences_serial/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) {
          BM_DependencesThreads(S, Src, 1);
        });
    benchmark::RegisterBenchmark(
        (std::string("dependences_parallel/") + K.Name).c_str(),
        [Src = K.Src](benchmark::State &S) {
          BM_DependencesThreads(S, Src, 0);
        });
  }
  benchmark::RegisterBenchmark(
      "service/batch_cold",
      [](benchmark::State &S) { BM_ServiceBatchCold(S, 1); });
  benchmark::RegisterBenchmark(
      "service/batch_cold_jobs4",
      [](benchmark::State &S) { BM_ServiceBatchCold(S, 4); });
  benchmark::RegisterBenchmark("service/batch_warm", BM_ServiceBatchWarm);
  benchmark::RegisterBenchmark("substrate/lexmin_small", BM_LexMinSmall);
  benchmark::RegisterBenchmark("substrate/fourier_motzkin",
                               BM_FourierMotzkin);
  benchmark::RegisterBenchmark("substrate/fourier_motzkin_nopruning",
                               BM_FourierMotzkinNoPruning);
  benchmark::RegisterBenchmark("substrate/bigint_small_ops",
                               BM_BigIntSmallOps);
  benchmark::RegisterBenchmark("substrate/bigint_big_ops", BM_BigIntBigOps);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
