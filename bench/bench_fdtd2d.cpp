//===- bench/bench_fdtd2d.cpp - Experiment E3 (paper Fig. 8) --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// 2-d FDTD (paper Figure 7): four imperfectly nested statements; the
// framework finds one fully permutable band of three hyperplanes
// (shift + fusion + time skewing). Paper setup: nx = ny = 2000, tmax = 500.
// Variants: original, Pluto tiled sequential (Fig. 8(a)), Pluto tiled +
// wavefront parallel (Fig. 8(b)), and the inner-space-only parallelization
// (paper: "hardly yields any parallel speedup").
//
//===----------------------------------------------------------------------===//

#include "../bench/Harness.h"
#include "driver/Kernels.h"

using namespace pluto;
using namespace pluto::bench;

int main() {
  double Scale = benchScale();
  long long NX = static_cast<long long>(1000 * std::sqrt(Scale));
  long long TMAX = static_cast<long long>(100 * Scale);
  if (NX < 32)
    NX = 32;
  if (TMAX < 8)
    TMAX = 8;
  long long NY = NX;

  Problem P;
  P.Name = "E3: 2-d FDTD (paper Fig. 8)";
  P.Source = kernels::Fdtd2D;
  P.ExtentExprs = {{"ex", {"nx", "ny + 1"}},
                   {"ey", {"nx + 1", "ny"}},
                   {"hz", {"nx", "ny"}},
                   {"fict", {"tmax"}}};
  P.Extents = {{"ex", {NX, NY + 1}},
               {"ey", {NX + 1, NY}},
               {"hz", {NX, NY}},
               {"fict", {TMAX}}};
  P.Params = {{"tmax", TMAX}, {"nx", NX}, {"ny", NY}};
  P.Consts = {{"coeff1", 0.5}, {"coeff2", 0.7}};
  // Per time step: S1 ~3*(nx-1)*ny, S2 ~3*nx*(ny-1), S3 ~5*(nx-1)*(ny-1).
  P.Flops = static_cast<double>(TMAX) *
            (3.0 * (NX - 1) * NY + 3.0 * NX * (NY - 1) +
             5.0 * (NX - 1) * (NY - 1));

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping JIT benchmark\n");
    return 0;
  }

  PlutoOptions SeqOpts;
  SeqOpts.Tile = false;
  SeqOpts.Parallelize = false;
  SeqOpts.Vectorize = false;
  SeqOpts.IncludeInputDeps = false;
  auto Base = optimizeSource(P.Source, SeqOpts);
  if (!Base) {
    std::fprintf(stderr, "pipeline error: %s\n", Base.error().c_str());
    return 1;
  }
  auto OrigAst = buildOriginalAst(Base->program());
  auto Orig = compileVariant(*Base, **OrigAst, P);
  if (!Orig) {
    std::fprintf(stderr, "%s\n", Orig.error().c_str());
    return 1;
  }

  std::vector<Variant> Variants;
  auto add = [&](const std::string &Name, Result<PlutoResult> R,
                 bool Parallel) {
    if (!R) {
      std::fprintf(stderr, "%s: pipeline error: %s\n", Name.c_str(),
                   R.error().c_str());
      return;
    }
    auto K = compileVariant(*R, *R->Ast, P);
    if (!K) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), K.error().c_str());
      return;
    }
    bool Ok = verify(*R, *Orig, *K, P);
    std::printf("  built %-32s verify: %s\n", Name.c_str(),
                Ok ? "ok" : "FAIL");
    if (Ok)
      Variants.push_back({Name, std::move(*K), Parallel});
  };

  PlutoOptions TileSeq;
  TileSeq.TileSize = 32; // Best of a 16..128 sweep on this host.
  TileSeq.Parallelize = false;
  TileSeq.IncludeInputDeps = false;
  add("pluto (tiled, seq)", optimizeSource(P.Source, TileSeq), false);

  PlutoOptions TilePar = TileSeq;
  TilePar.Parallelize = true;
  add("pluto (tiled, wavefront)", optimizeSource(P.Source, TilePar), true);

  runAndReport(*Base, P, *Orig, Variants);
  return 0;
}
