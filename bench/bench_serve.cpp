//===- bench/bench_serve.cpp - Experiment E11 (plutod throughput) ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Warm-cache request throughput of the plutod serving stack (DESIGN.md
// section 12): an in-process serve::Server is driven over its real
// AF_UNIX socket by concurrent pipelining clients, sweeping the worker
// pool {1, 4, 8} against the cache shard count {1, 8}. Every measured
// request is a cache hit (the kernel set is compiled once up front), so
// the numbers isolate the serving overhead - admission, scheduling,
// sharded-cache lookup, response encoding, socket I/O - from compile
// time. This feeds EXPERIMENTS.md section E11.
//
// Knobs: PLUTOPP_BENCH_SERVE_REQS (requests per client, default 1500),
// PLUTOPP_BENCH_SERVE_CLIENTS (concurrent connections, default 4).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pluto;
using namespace pluto::serve;

namespace {

long long envNum(const char *Name, long long Def) {
  const char *S = std::getenv(Name);
  return (S && *S) ? std::atoll(S) : Def;
}

/// Distinct kernels so the warm set spreads across cache shards.
std::string kernelSource(unsigned I) {
  std::string V = "v" + std::to_string(I);
  return "for (i = 0; i <= N - 1; i++)\n"
         "  for (j = 0; j <= N - 1; j++)\n"
         "    for (k = 0; k <= N - 1; k++)\n"
         "      " +
         V + "[i][j] = " + V + "[i][j] + a[i][k] * b[k][j];\n";
}

/// Minimal blocking NDJSON client.
struct Client {
  int Fd = -1;
  std::string InBuf;

  bool connectTo(const std::string &Path) {
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    return connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) == 0;
  }
  ~Client() {
    if (Fd >= 0)
      close(Fd);
  }

  bool sendAll(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N = write(Fd, Data.data() + Off, Data.size() - Off);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool readLine(std::string &Line) {
    for (;;) {
      size_t Nl = InBuf.find('\n');
      if (Nl != std::string::npos) {
        Line = InBuf.substr(0, Nl);
        InBuf.erase(0, Nl + 1);
        return true;
      }
      char Buf[65536];
      ssize_t N = read(Fd, Buf, sizeof(Buf));
      if (N <= 0)
        return false;
      InBuf.append(Buf, static_cast<size_t>(N));
    }
  }
};

std::string compileLine(unsigned Kernel, unsigned Seq) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Id = std::to_string(Seq);
  R.Req.Name = "k" + std::to_string(Kernel);
  R.Req.Source = kernelSource(Kernel);
  return encodeRequest(R) + "\n";
}

constexpr unsigned NumKernels = 8;
/// Requests kept in flight per connection before reading replies back.
constexpr unsigned Window = 16;

/// One client thread: Reqs warm requests, pipelined Window-deep. Returns
/// false on any non-ok or non-hit response.
bool driveClient(const std::string &Socket, unsigned Reqs,
                 std::atomic<bool> &Failed) {
  Client C;
  if (!C.connectTo(Socket))
    return false;
  unsigned Sent = 0, Got = 0;
  std::string Batch, Line;
  while (Got < Reqs) {
    Batch.clear();
    while (Sent < Reqs && Sent - Got < Window)
      Batch += compileLine(Sent % NumKernels, Sent), ++Sent;
    if (!Batch.empty() && !C.sendAll(Batch))
      return false;
    if (!C.readLine(Line))
      return false;
    ++Got;
    if (Line.find("\"status\":\"ok\"") == std::string::npos ||
        Line.find("\"cache_hit\":true") == std::string::npos) {
      Failed = true;
      return false;
    }
  }
  return true;
}

/// Runs one (workers, shards) configuration; returns warm req/s.
double runConfig(unsigned Workers, unsigned Shards, unsigned Clients,
                 unsigned ReqsPerClient) {
  ServerConfig Cfg;
  Cfg.SocketPath = "/tmp/plutopp-bench-serve-" +
                   std::to_string(getpid()) + ".sock";
  Cfg.Workers = Workers;
  Cfg.CacheShards = Shards;
  Cfg.MaxQueue = 4096;
  auto S = Server::create(Cfg);
  if (!S) {
    std::fprintf(stderr, "bench_serve: %s\n", S.error().c_str());
    return -1;
  }
  (*S)->start();

  // Warm the cache: one cold compile per kernel, outside the timed region.
  {
    Client C;
    if (!C.connectTo(Cfg.SocketPath))
      return -1;
    std::string Line;
    for (unsigned K = 0; K < NumKernels; ++K) {
      if (!C.sendAll(compileLine(K, K)) || !C.readLine(Line))
        return -1;
      if (Line.find("\"status\":\"ok\"") == std::string::npos) {
        std::fprintf(stderr, "bench_serve: warmup compile failed: %s\n",
                     Line.c_str());
        return -1;
      }
    }
  }

  std::atomic<bool> Failed{false};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&] {
      if (!driveClient(Cfg.SocketPath, ReqsPerClient, Failed))
        Failed = true;
    });
  for (auto &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  (*S)->drain();

  if (Failed) {
    std::fprintf(stderr, "bench_serve: a client saw a non-hit response\n");
    return -1;
  }
  double Secs = std::chrono::duration<double>(T1 - T0).count();
  return Secs > 0 ? Clients * ReqsPerClient / Secs : 0;
}

} // namespace

int main() {
  unsigned Reqs =
      static_cast<unsigned>(envNum("PLUTOPP_BENCH_SERVE_REQS", 1500));
  unsigned Clients =
      static_cast<unsigned>(envNum("PLUTOPP_BENCH_SERVE_CLIENTS", 4));

  std::printf("E11: plutod warm-cache throughput (%u clients x %u "
              "requests, %u distinct kernels, window %u)\n\n",
              Clients, Reqs, NumKernels, Window);
  std::printf("| workers | shards | req/s |\n|---|---|---|\n");
  int Bad = 0;
  for (unsigned W : {1u, 4u, 8u})
    for (unsigned S : {1u, 8u}) {
      double Rate = runConfig(W, S, Clients, Reqs);
      if (Rate < 0) {
        ++Bad;
        std::printf("| %u | %u | FAILED |\n", W, S);
      } else
        std::printf("| %u | %u | %.0f |\n", W, S, Rate);
      std::fflush(stdout);
    }
  return Bad ? 1 : 0;
}
