//===- bench/bench_schedule.cpp - Experiment E9 (scheduler scaling) -------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper's scheduler was demonstrated on kernels of a handful of
// statements; this binary measures how computeSchedule scales to synthetic
// programs of 10/25/50/100 statements (support/StressGen.h) with the
// scaling fast paths (clustered decomposition, dimension matching,
// warm-started lexmin) on versus off. Parsing and dependence analysis run
// once per size outside the timed region; each iteration copies the
// dependence graph (satisfaction bookkeeping is mutated by the scheduler).
//
// The exact arm at 100 statements takes tens of seconds per solve, so both
// arms are pinned to a single iteration; the reported wall time per
// iteration is the number that feeds EXPERIMENTS.md section E9.
//
//===----------------------------------------------------------------------===//

#include "deps/Dependences.h"
#include "driver/Driver.h"
#include "support/StressGen.h"
#include "transform/PlutoTransform.h"

#include <benchmark/benchmark.h>
#include <cassert>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace pluto;

namespace {

const unsigned Sizes[] = {10, 25, 50, 100};

/// Parsed + analyzed stress program, shared by both arms of one size.
struct Prepared {
  Program Prog;
  DependenceGraph Deps;
};

const Prepared &prepared(unsigned NumStatements) {
  static std::vector<std::unique_ptr<Prepared>> Cache;
  for (const auto &P : Cache)
    if (P->Prog.Stmts.size() == NumStatements)
      return *P;
  auto P = std::make_unique<Prepared>();
  auto Parsed = parseSource(generateStressProgram(NumStatements));
  assert(Parsed && "stress program must parse");
  P->Prog = Parsed->Prog;
  for (const std::string &Pm : P->Prog.ParamNames)
    P->Prog.addContextBound(Pm, 4);
  P->Deps = computeDependences(P->Prog);
  Cache.push_back(std::move(P));
  return *Cache.back();
}

void BM_Schedule(benchmark::State &State, unsigned NumStatements,
                 bool Fast) {
  const Prepared &P = prepared(NumStatements);
  TransformOptions Opts;
  Opts.Decompose = Fast;
  Opts.DimensionMatch = Fast;
  Opts.WarmStart = Fast;
  for (auto _ : State) {
    DependenceGraph Copy = P.Deps;
    auto S = computeSchedule(P.Prog, Copy, Opts);
    if (!S) {
      State.SkipWithError("computeSchedule failed");
      return;
    }
    benchmark::DoNotOptimize(S->Rows.size());
  }
}

} // namespace

int main(int argc, char **argv) {
  for (unsigned N : Sizes) {
    benchmark::RegisterBenchmark(
        ("schedule_fast/stress" + std::to_string(N)).c_str(),
        [N](benchmark::State &S) { BM_Schedule(S, N, true); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("schedule_exact/stress" + std::to_string(N)).c_str(),
        [N](benchmark::State &S) { BM_Schedule(S, N, false); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
