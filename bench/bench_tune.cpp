//===- bench/bench_tune.cpp - Experiment E12: autotuner search ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper picks tile sizes "based on empirical evidence" (Section 6.3);
// this experiment runs that loop mechanically with tune::explore on
// matmul and reports what the search costs and what it buys: the default
// configuration's time, the winner's time, and the end-to-end search wall
// clock split into compile-all and measure-front. The static-mode pass
// (measure=0) isolates the enumerate+compile+rank overhead with no kernel
// execution at all.
//
//===----------------------------------------------------------------------===//

#include "driver/Kernels.h"
#include "tune/Tuner.h"

#include <chrono>
#include <cstdio>

using namespace pluto;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  tune::SearchSpace Space;
  Space.TileSizes = {0, 16, 32, 64};
  Space.L2TileSizes = {0, 8};
  Space.WavefrontDegrees = {0, 1, 2};

  tune::TuneOptions TO;
  TO.Base.IncludeInputDeps = false;
  TO.ProblemSize = 256;
  TO.Measure.Warmup = 1;
  TO.Measure.Reps = 3;
  TO.Measure.Threads = 2;
  TO.MaxMeasure = 6;

  std::printf("E12: autotuner search on matmul (n=%u, reps=%u, threads=%u)\n",
              TO.ProblemSize, TO.Measure.Reps, TO.Measure.Threads);

  // Static pass: enumerate + dedup + compile + rank, no execution.
  auto T0 = std::chrono::steady_clock::now();
  tune::TuneOptions StaticTO = TO;
  StaticTO.RunMeasurements = false;
  tune::TuneResult SR = tune::explore(kernels::MatMul, Space, StaticTO);
  double StaticS = secondsSince(T0);
  if (SR.Status != StatusCode::Ok) {
    std::fprintf(stderr, "static search failed: %s\n", SR.Error.c_str());
    return 1;
  }
  std::printf("  static search: %llu enumerated, %llu distinct, %.3f s\n",
              static_cast<unsigned long long>(SR.Enumerated),
              static_cast<unsigned long long>(SR.Distinct), StaticS);

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler available; skipping measured search\n");
    return 0;
  }

  // Measured pass: the full loop, pruned front only.
  T0 = std::chrono::steady_clock::now();
  tune::TuneResult MR = tune::explore(kernels::MatMul, Space, TO);
  double MeasuredS = secondsSince(T0);
  if (MR.Status != StatusCode::Ok) {
    std::fprintf(stderr, "measured search failed: %s\n", MR.Error.c_str());
    return 1;
  }
  const tune::TuneVariant *W = MR.winner();
  const tune::TuneVariant &Base = MR.Variants[0];
  std::printf("  measured search: %llu measured of %llu distinct"
              " (%llu errors), %.3f s total\n",
              static_cast<unsigned long long>(MR.Measured),
              static_cast<unsigned long long>(MR.Distinct),
              static_cast<unsigned long long>(MR.Errors), MeasuredS);
  if (Base.Measured)
    std::printf("  base config:  %8.3f ms\n", Base.Time.MedianSeconds * 1e3);
  if (W && W->Measured) {
    std::printf("  winner (v%u): %8.3f ms", W->Id,
                W->Time.MedianSeconds * 1e3);
    if (Base.Measured && W->Time.MedianSeconds > 0)
      std::printf("  (%.2fx vs base)",
                  Base.Time.MedianSeconds / W->Time.MedianSeconds);
    std::printf("\n");
  }
  return 0;
}
