//===- tools/plutod.cpp - Pluto compile daemon ----------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// plutod: serves Pluto compilations over a local AF_UNIX socket speaking
// the newline-delimited JSON protocol of serve/Protocol.h. One daemon
// amortizes a warm in-memory result cache (and optionally a persistent
// one) across every client on the machine; plutoctl is the matching
// client. SIGTERM/SIGINT trigger a graceful drain: accepted jobs finish,
// replies flush, then the process exits 0.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "service/Version.h"
#include "support/FaultInjector.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace pluto;
using namespace pluto::serve;

namespace {

const char *Usage =
    "usage: plutod --socket=PATH [options]\n"
    "\n"
    "Compile daemon: serves Pluto compilations over a local socket using\n"
    "the NDJSON protocol (one JSON request per line, one response per\n"
    "line; see DESIGN.md section 12). Use plutoctl to talk to it.\n"
    "\n"
    "options (defaults shown):\n"
    "  --socket=PATH              AF_UNIX socket path to listen on\n"
    "  --workers=N                compile worker threads (0 = all\n"
    "                             hardware threads)\n"
    "  --shards=N                 result-cache lock shards (8)\n"
    "  --queue=N                  max queued compile jobs before new\n"
    "                             requests are rejected overloaded (128)\n"
    "  --cache-bytes=N            in-memory cache budget in bytes\n"
    "                             (67108864), split across shards\n"
    "  --cache-dir=DIR            persistent result cache shared with\n"
    "                             plutopp --cache-dir\n"
    "  --max-request-bytes=N      per-request-line byte cap (8388608)\n"
    "  --timeout-ms=N             queue-wait deadline per request\n"
    "                             (0 = unlimited)\n"
    "  --isolate                  run each compile in a forked sandbox\n"
    "                             worker; crashes/OOMs/hangs cost one\n"
    "                             child and answer as structured errors\n"
    "  --compile-timeout-ms=N     per-compile wall-clock budget, merged\n"
    "                             with the request's own; with --isolate\n"
    "                             also arms the watchdog kill (0 = none)\n"
    "  --max-memory-mb=N          per-compile memory budget in MiB; with\n"
    "                             --isolate also the sandbox address-\n"
    "                             space rlimit (0 = none)\n"
    "  --breaker-ttl-ms=N         how long a cache key that killed a\n"
    "                             sandbox worker is refused without\n"
    "                             recompiling (30000; 0 disables)\n"
    "  --quiet                    no per-request log lines on stderr\n"
    "  --version                  print toolchain version and exit\n"
    "  --help                     this text\n";

int SigPipe[2] = {-1, -1};

void onSignal(int) {
  char B = 1;
  // Best effort: a full pipe already has a wakeup queued.
  (void)!write(SigPipe[1], &B, 1);
}

long long numArg(const std::string &Arg, size_t Prefix, bool &Ok) {
  errno = 0;
  char *End = nullptr;
  const char *Begin = Arg.c_str() + Prefix;
  long long V = std::strtoll(Begin, &End, 10);
  Ok = End != Begin && *End == '\0' && errno == 0 && V >= 0;
  return V;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Cfg;
  Cfg.LogStream = stderr;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    bool Ok = true;
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A == "--version") {
      std::printf("plutod %s\n", ToolchainVersion);
      return 0;
    } else if (A.rfind("--socket=", 0) == 0)
      Cfg.SocketPath = A.substr(9);
    else if (A.rfind("--workers=", 0) == 0)
      Cfg.Workers = static_cast<unsigned>(numArg(A, 10, Ok));
    else if (A.rfind("--shards=", 0) == 0)
      Cfg.CacheShards = static_cast<unsigned>(numArg(A, 9, Ok));
    else if (A.rfind("--queue=", 0) == 0)
      Cfg.MaxQueue = static_cast<size_t>(numArg(A, 8, Ok));
    else if (A.rfind("--cache-bytes=", 0) == 0)
      Cfg.CacheMaxBytes = static_cast<size_t>(numArg(A, 14, Ok));
    else if (A.rfind("--cache-dir=", 0) == 0)
      Cfg.CacheDir = A.substr(12);
    else if (A.rfind("--max-request-bytes=", 0) == 0)
      Cfg.MaxRequestBytes = static_cast<size_t>(numArg(A, 20, Ok));
    else if (A.rfind("--timeout-ms=", 0) == 0)
      Cfg.RequestTimeoutMs = numArg(A, 13, Ok);
    else if (A == "--isolate")
      Cfg.Isolate = true;
    else if (A.rfind("--compile-timeout-ms=", 0) == 0)
      Cfg.CompileTimeoutMs = numArg(A, 21, Ok);
    else if (A.rfind("--max-memory-mb=", 0) == 0)
      Cfg.MaxMemoryMb = numArg(A, 16, Ok);
    else if (A.rfind("--breaker-ttl-ms=", 0) == 0)
      Cfg.BreakerTtlMs = numArg(A, 17, Ok);
    else if (A == "--quiet")
      Cfg.LogStream = nullptr;
    else {
      std::fprintf(stderr, "plutod: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    }
    if (!Ok) {
      std::fprintf(stderr, "plutod: bad numeric value in '%s'\n", A.c_str());
      return 2;
    }
  }

  if (Cfg.SocketPath.empty()) {
    std::fprintf(stderr, "plutod: --socket=PATH is required\n%s", Usage);
    return 2;
  }

  if (pipe(SigPipe) != 0) {
    std::perror("plutod: pipe");
    return 1;
  }

  // Deterministic fault injection for the CI soak ($PLUTOPP_FAULT).
  FaultInjector::armFromEnv();

  auto S = Server::create(Cfg);
  if (!S) {
    std::fprintf(stderr, "plutod: %s\n", S.error().c_str());
    return 1;
  }

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  (*S)->start();
  std::fprintf(stderr,
               "plutod %s listening on %s (workers=%u, shards=%u, "
               "queue=%zu)\n",
               ToolchainVersion, (*S)->socketPath().c_str(), Cfg.Workers,
               Cfg.CacheShards, Cfg.MaxQueue);

  // Block until a termination signal arrives.
  char B;
  while (read(SigPipe[0], &B, 1) < 0 && errno == EINTR)
    ;

  std::fprintf(stderr, "plutod: draining...\n");
  (*S)->drain();
  Server::Stats St = (*S)->stats();
  std::fprintf(stderr,
               "plutod: drained (accepted=%llu completed=%llu "
               "rejected=%llu)\n",
               static_cast<unsigned long long>(St.RequestsAccepted),
               static_cast<unsigned long long>(St.RequestsCompleted),
               static_cast<unsigned long long>(St.RejectedOverload));
  return St.RequestsAccepted == St.RequestsCompleted ? 0 : 1;
}
