//===- tools/stressgen.cpp - Stress-program generator CLI -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Emits a deterministic synthetic scheduler-stress program (see
// support/StressGen.h) on stdout. Used by scripts/ci-sanitize.sh to
// produce a 25-statement input without checking a generated file into the
// tree, and handy for ad-hoc scaling experiments:
//
//   stressgen 100 | plutopp --tile --parallel /dev/stdin
//
//===----------------------------------------------------------------------===//

#include "support/StressGen.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

int main(int argc, char **argv) {
  unsigned NumStatements = 25;
  unsigned long long Seed = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--help") == 0 ||
        std::strcmp(argv[I], "-h") == 0) {
      std::fprintf(stderr, "usage: stressgen [num-statements] [seed]\n");
      return 0;
    }
    char *End = nullptr;
    unsigned long long V = std::strtoull(argv[I], &End, 10);
    if (End == argv[I] || *End != '\0') {
      std::fprintf(stderr, "stressgen: expected a number, got '%s'\n",
                   argv[I]);
      return 1;
    }
    if (I == 1)
      NumStatements = static_cast<unsigned>(V);
    else
      Seed = V;
  }
  std::string Src = pluto::generateStressProgram(NumStatements, Seed);
  std::fwrite(Src.data(), 1, Src.size(), stdout);
  return 0;
}
