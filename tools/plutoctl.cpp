//===- tools/plutoctl.cpp - plutod client ---------------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// plutoctl: command-line client for the plutod compile daemon. Pipelines
// every input file to the daemon over one connection (requests carry an
// integer id, so out-of-order completions from the daemon's worker pool
// are re-sequenced here), renders source diagnostics locally with the
// same caret snippets plutopp shows, and exits through the shared
// StatusCode -> exit-code table, so scripts cannot tell the daemon path
// from the in-process path.
//
//===----------------------------------------------------------------------===//

#include "parser/Diagnostics.h"
#include "serve/Protocol.h"
#include "service/CompileService.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <poll.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pluto;
using namespace pluto::serve;

namespace {

const char *Usage =
    "usage: plutoctl --socket=PATH [options] [input.c ...]\n"
    "\n"
    "Client for the plutod compile daemon. Compiles the given restricted-C\n"
    "units (stdin when none are given) through the daemon and writes the\n"
    "generated C to stdout in input order, separated by banner comments,\n"
    "or under --out-dir. Exit codes match plutopp: 0 ok, 2 bad input or\n"
    "bad request, 1 internal/schedule failure, 3 overloaded, 4 resource\n"
    "budget exhausted.\n"
    "\n"
    "operations:\n"
    "  (default)                  compile the inputs\n"
    "  --ping                     health-check the daemon\n"
    "  --metrics                  print the daemon's metrics document\n"
    "\n"
    "connection options:\n"
    "  --timeout=MS               per-wait deadline talking to the daemon\n"
    "                             (30000; 0 = wait forever)\n"
    "  --retries=N                connection attempts before giving up\n"
    "                             (5, exponential backoff from 50 ms);\n"
    "                             rides out a daemon that is still\n"
    "                             starting or briefly restarting\n"
    "\n"
    "per-request resource budget (forwarded on the wire):\n"
    "  --compile-timeout-ms=N     wall-clock budget per compile\n"
    "  --max-memory-mb=N          memory budget per compile in MiB\n"
    "  --max-work=N               deterministic work-unit budget\n"
    "\n"
    "transformation options (plutopp names, forwarded on the wire):\n"
    "  --tile/--no-tile, --tile-size=N, --l2tile/--no-l2tile,\n"
    "  --l2tile-size=N, --parallel/--no-parallel,\n"
    "  --vectorize/--no-vectorize,\n"
    "  --include-input-deps/--no-include-input-deps,\n"
    "  --fast-schedule/--no-fast-schedule, --param-min=N\n"
    "\n"
    "output options:\n"
    "  --out-dir=DIR              write each unit to DIR/<stem>.pluto.c\n";

struct Client {
  int Fd = -1;
  std::string InBuf;
  std::string OutBuf;
  /// Per-poll deadline talking to the daemon; <= 0 waits forever.
  int TimeoutMs = 30000;

  ~Client() {
    if (Fd >= 0)
      close(Fd);
  }

  /// One connection attempt.
  bool connectOnce(const std::string &Path, std::string &Error) {
    sockaddr_un Addr;
    if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
      Error = "bad socket path";
      errno = EINVAL; // not retryable
      return false;
    }
    Fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Error = std::string("socket(): ") + std::strerror(errno);
      return false;
    }
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      int E = errno;
      Error = "connect(" + Path + "): " + std::strerror(E);
      close(Fd);
      Fd = -1;
      errno = E; // the retry loop classifies on it
      return false;
    }
    return true;
  }

  /// Connects with up to Attempts tries, backing off exponentially from
  /// 50 ms, but only on the errors a daemon that is still starting (or
  /// briefly restarting) produces: no socket file yet, or nobody
  /// listening behind a stale one. Hard errors fail immediately.
  bool connectTo(const std::string &Path, unsigned Attempts,
                 std::string &Error) {
    auto Delay = std::chrono::milliseconds(50);
    for (unsigned Try = 1;; ++Try) {
      int SavedErrno = 0;
      if (connectOnce(Path, Error))
        return true;
      SavedErrno = errno;
      if (Try >= Attempts ||
          (SavedErrno != ECONNREFUSED && SavedErrno != ENOENT))
        return false;
      std::this_thread::sleep_for(Delay);
      Delay *= 2;
    }
  }

  void queue(const std::string &Line) {
    OutBuf += Line;
    OutBuf += '\n';
  }

  /// Pumps the connection until Want complete response lines have been
  /// collected (interleaving writes and reads, so a deep pipeline of
  /// large requests cannot deadlock against the daemon's replies).
  bool pump(size_t Want, std::vector<std::string> &Lines,
            std::string &Error) {
    while (Lines.size() < Want) {
      pollfd P{Fd, POLLIN, 0};
      if (!OutBuf.empty())
        P.events |= POLLOUT;
      int N = poll(&P, 1, TimeoutMs > 0 ? TimeoutMs : -1);
      if (N == 0) {
        Error = "timed out waiting for the daemon (after " +
                std::to_string(TimeoutMs) + " ms; see --timeout)";
        return false;
      }
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Error = std::string("poll(): ") + std::strerror(errno);
        return false;
      }
      if (!OutBuf.empty() && (P.revents & POLLOUT)) {
        ssize_t W = send(Fd, OutBuf.data(), OutBuf.size(), MSG_NOSIGNAL);
        if (W > 0)
          OutBuf.erase(0, static_cast<size_t>(W));
        else if (W < 0 && errno != EAGAIN && errno != EINTR) {
          Error = std::string("send(): ") + std::strerror(errno);
          return false;
        }
      }
      if (P.revents & (POLLIN | POLLHUP)) {
        char Buf[65536];
        ssize_t R = recv(Fd, Buf, sizeof(Buf), 0);
        if (R > 0) {
          InBuf.append(Buf, static_cast<size_t>(R));
          size_t Pos;
          while ((Pos = InBuf.find('\n')) != std::string::npos) {
            Lines.push_back(InBuf.substr(0, Pos));
            InBuf.erase(0, Pos + 1);
          }
        } else if (R == 0) {
          if (Lines.size() < Want) {
            Error = "daemon closed the connection";
            return false;
          }
        } else if (errno != EAGAIN && errno != EINTR) {
          Error = std::string("recv(): ") + std::strerror(errno);
          return false;
        }
      }
    }
    return true;
  }
};

std::string readStream(std::istream &In) {
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string stemOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base.resize(Dot);
  return Base;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket;
  std::string OutDir;
  bool DoPing = false, DoMetrics = false;
  PlutoOptions Opts;
  BudgetLimits Budget;
  int TimeoutMs = 30000;
  unsigned Retries = 5;
  std::vector<std::string> Inputs;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Num = [&](size_t Prefix) -> long long {
      return std::strtoll(A.c_str() + Prefix, nullptr, 10);
    };
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A.rfind("--socket=", 0) == 0)
      Socket = A.substr(9);
    else if (A == "--ping")
      DoPing = true;
    else if (A == "--metrics")
      DoMetrics = true;
    else if (A.rfind("--out-dir=", 0) == 0)
      OutDir = A.substr(10);
    else if (A.rfind("--timeout=", 0) == 0)
      TimeoutMs = static_cast<int>(Num(10));
    else if (A.rfind("--retries=", 0) == 0)
      Retries = static_cast<unsigned>(Num(10));
    else if (A.rfind("--compile-timeout-ms=", 0) == 0)
      Budget.WallMs = static_cast<uint64_t>(Num(21));
    else if (A.rfind("--max-memory-mb=", 0) == 0)
      Budget.MaxMemoryBytes = static_cast<uint64_t>(Num(16)) << 20;
    else if (A.rfind("--max-work=", 0) == 0)
      Budget.MaxWorkUnits = static_cast<uint64_t>(Num(11));
    else if (A == "--tile")
      Opts.Tile = true;
    else if (A == "--no-tile")
      Opts.Tile = false;
    else if (A.rfind("--tile-size=", 0) == 0)
      Opts.TileSize = static_cast<unsigned>(Num(12));
    else if (A == "--l2tile")
      Opts.SecondLevelTile = true;
    else if (A == "--no-l2tile")
      Opts.SecondLevelTile = false;
    else if (A.rfind("--l2tile-size=", 0) == 0)
      Opts.L2TileSize = static_cast<unsigned>(Num(14));
    else if (A == "--parallel")
      Opts.Parallelize = true;
    else if (A == "--no-parallel")
      Opts.Parallelize = false;
    else if (A == "--vectorize")
      Opts.Vectorize = true;
    else if (A == "--no-vectorize")
      Opts.Vectorize = false;
    else if (A == "--include-input-deps")
      Opts.IncludeInputDeps = true;
    else if (A == "--no-include-input-deps")
      Opts.IncludeInputDeps = false;
    else if (A == "--fast-schedule")
      Opts.FastSchedule = true;
    else if (A == "--no-fast-schedule")
      Opts.FastSchedule = false;
    else if (A.rfind("--param-min=", 0) == 0)
      Opts.ParamMin = Num(12);
    else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "plutoctl: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    } else
      Inputs.push_back(A);
  }

  if (Socket.empty()) {
    std::fprintf(stderr, "plutoctl: --socket=PATH is required\n%s", Usage);
    return 2;
  }

  Client C;
  C.TimeoutMs = TimeoutMs;
  std::string Error;
  if (!C.connectTo(Socket, Retries == 0 ? 1 : Retries, Error)) {
    std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
    return 1;
  }

  if (DoPing || DoMetrics) {
    WireRequest R;
    R.Operation = DoMetrics ? Op::Metrics : Op::Ping;
    R.Id = "0";
    C.queue(encodeRequest(R));
    std::vector<std::string> Lines;
    if (!C.pump(1, Lines, Error)) {
      std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
      return 1;
    }
    auto Resp = decodeResponse(Lines[0]);
    if (!Resp) {
      std::fprintf(stderr, "plutoctl: bad response: %s\n",
                   Resp.error().c_str());
      return 1;
    }
    if (!Resp->ok()) {
      std::fprintf(stderr, "plutoctl: daemon answered %s: %s\n",
                   statusCodeName(Resp->Status), Resp->Error.c_str());
      return exitCodeFor(Resp->Status);
    }
    if (DoMetrics)
      std::printf("%s\n", Resp->MetricsJson.c_str());
    else
      std::printf("ok\n");
    return 0;
  }

  // Compile path: read every input up front, pipeline all requests.
  struct Unit {
    std::string Name;
    std::string Source;
  };
  std::vector<Unit> Units;
  if (Inputs.empty()) {
    Units.push_back({"<stdin>", readStream(std::cin)});
  } else {
    for (const std::string &Path : Inputs) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "plutoctl: cannot read '%s'\n", Path.c_str());
        return 2;
      }
      Units.push_back({Path, readStream(In)});
    }
  }

  for (size_t I = 0; I < Units.size(); ++I) {
    WireRequest R;
    R.Operation = Op::Compile;
    R.Id = std::to_string(I);
    R.Req.Name = Units[I].Name;
    R.Req.Source = Units[I].Source;
    R.Req.Opts = Opts;
    R.Req.Budget = Budget;
    C.queue(encodeRequest(R));
  }

  std::vector<std::string> Lines;
  if (!C.pump(Units.size(), Lines, Error)) {
    std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
    return 1;
  }

  // Re-sequence by echoed id (the daemon's worker pool may complete a
  // connection's jobs out of order).
  std::map<size_t, WireResponse> ById;
  for (const std::string &L : Lines) {
    auto Resp = decodeResponse(L);
    if (!Resp) {
      std::fprintf(stderr, "plutoctl: bad response line: %s\n",
                   Resp.error().c_str());
      return 1;
    }
    size_t Id = static_cast<size_t>(std::strtoull(Resp->Id.c_str(),
                                                  nullptr, 10));
    ById[Id] = std::move(*Resp);
  }

  int Exit = 0;
  unsigned Failed = 0;
  for (size_t I = 0; I < Units.size(); ++I) {
    auto It = ById.find(I);
    if (It == ById.end()) {
      std::fprintf(stderr, "plutoctl: no response for '%s'\n",
                   Units[I].Name.c_str());
      Exit = aggregateExitCodes(Exit, 1);
      ++Failed;
      continue;
    }
    const WireResponse &R = It->second;
    if (!R.ok()) {
      ++Failed;
      std::fprintf(stderr, "plutoctl: %s: %s: %s\n", Units[I].Name.c_str(),
                   statusCodeName(R.Status), R.Error.c_str());
      // Diagnostics render locally: the daemon sends spans, we own the
      // source text the snippets come from.
      for (const Diagnostic &D : R.Diags) {
        std::string Snip = renderSnippet(Units[I].Source, D);
        std::fprintf(stderr, "%s: %s\n", Units[I].Name.c_str(),
                     D.toString().c_str());
        if (!Snip.empty())
          std::fputs(Snip.c_str(), stderr);
      }
      Exit = aggregateExitCodes(Exit, exitCodeFor(R.Status));
      continue;
    }
    if (!OutDir.empty()) {
      std::string Path = OutDir + "/" + stemOf(Units[I].Name) + ".pluto.c";
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "plutoctl: cannot write '%s'\n", Path.c_str());
        Exit = aggregateExitCodes(Exit, 1);
        continue;
      }
      Out << R.EmittedC;
    } else {
      if (Units.size() > 1)
        std::printf("/* ===== plutopp: %s ===== */\n", Units[I].Name.c_str());
      std::fputs(R.EmittedC.c_str(), stdout);
    }
  }

  if (Units.size() > 1 && Failed)
    std::fprintf(stderr, "plutoctl: %u of %zu units failed\n", Failed,
                 Units.size());
  return Exit;
}
