//===- tools/plutoctl.cpp - plutod client ---------------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// plutoctl: command-line client for the plutod compile daemon. Pipelines
// every input file to the daemon over one connection (requests carry an
// integer id, so out-of-order completions from the daemon's worker pool
// are re-sequenced here), renders source diagnostics locally with the
// same caret snippets plutopp shows, and exits through the shared
// StatusCode -> exit-code table, so scripts cannot tell the daemon path
// from the in-process path.
//
//===----------------------------------------------------------------------===//

#include "parser/Diagnostics.h"
#include "serve/Protocol.h"
#include "service/CompileService.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <poll.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace pluto;
using namespace pluto::serve;

namespace {

const char *Usage =
    "usage: plutoctl --socket=PATH [options] [input.c ...]\n"
    "\n"
    "Client for the plutod compile daemon. Compiles the given restricted-C\n"
    "units (stdin when none are given) through the daemon and writes the\n"
    "generated C to stdout in input order, separated by banner comments,\n"
    "or under --out-dir. Exit codes match plutopp: 0 ok, 2 bad input or\n"
    "bad request, 1 internal/schedule failure, 3 overloaded.\n"
    "\n"
    "operations:\n"
    "  (default)                  compile the inputs\n"
    "  --ping                     health-check the daemon\n"
    "  --metrics                  print the daemon's metrics document\n"
    "\n"
    "transformation options (plutopp names, forwarded on the wire):\n"
    "  --tile/--no-tile, --tile-size=N, --l2tile/--no-l2tile,\n"
    "  --l2tile-size=N, --parallel/--no-parallel,\n"
    "  --vectorize/--no-vectorize,\n"
    "  --include-input-deps/--no-include-input-deps,\n"
    "  --fast-schedule/--no-fast-schedule, --param-min=N\n"
    "\n"
    "output options:\n"
    "  --out-dir=DIR              write each unit to DIR/<stem>.pluto.c\n";

struct Client {
  int Fd = -1;
  std::string InBuf;
  std::string OutBuf;

  ~Client() {
    if (Fd >= 0)
      close(Fd);
  }

  bool connectTo(const std::string &Path, std::string &Error) {
    sockaddr_un Addr;
    if (Path.empty() || Path.size() >= sizeof(Addr.sun_path)) {
      Error = "bad socket path";
      return false;
    }
    Fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Error = std::string("socket(): ") + std::strerror(errno);
      return false;
    }
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
      Error = "connect(" + Path + "): " + std::strerror(errno);
      return false;
    }
    return true;
  }

  void queue(const std::string &Line) {
    OutBuf += Line;
    OutBuf += '\n';
  }

  /// Pumps the connection until Want complete response lines have been
  /// collected (interleaving writes and reads, so a deep pipeline of
  /// large requests cannot deadlock against the daemon's replies).
  bool pump(size_t Want, std::vector<std::string> &Lines,
            std::string &Error) {
    while (Lines.size() < Want) {
      pollfd P{Fd, POLLIN, 0};
      if (!OutBuf.empty())
        P.events |= POLLOUT;
      if (poll(&P, 1, 30000) <= 0) {
        Error = "timed out waiting for the daemon";
        return false;
      }
      if (!OutBuf.empty() && (P.revents & POLLOUT)) {
        ssize_t W = send(Fd, OutBuf.data(), OutBuf.size(), MSG_NOSIGNAL);
        if (W > 0)
          OutBuf.erase(0, static_cast<size_t>(W));
        else if (W < 0 && errno != EAGAIN && errno != EINTR) {
          Error = std::string("send(): ") + std::strerror(errno);
          return false;
        }
      }
      if (P.revents & (POLLIN | POLLHUP)) {
        char Buf[65536];
        ssize_t R = recv(Fd, Buf, sizeof(Buf), 0);
        if (R > 0) {
          InBuf.append(Buf, static_cast<size_t>(R));
          size_t Pos;
          while ((Pos = InBuf.find('\n')) != std::string::npos) {
            Lines.push_back(InBuf.substr(0, Pos));
            InBuf.erase(0, Pos + 1);
          }
        } else if (R == 0) {
          if (Lines.size() < Want) {
            Error = "daemon closed the connection";
            return false;
          }
        } else if (errno != EAGAIN && errno != EINTR) {
          Error = std::string("recv(): ") + std::strerror(errno);
          return false;
        }
      }
    }
    return true;
  }
};

std::string readStream(std::istream &In) {
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string stemOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base.resize(Dot);
  return Base;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket;
  std::string OutDir;
  bool DoPing = false, DoMetrics = false;
  PlutoOptions Opts;
  std::vector<std::string> Inputs;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Num = [&](size_t Prefix) -> long long {
      return std::strtoll(A.c_str() + Prefix, nullptr, 10);
    };
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A.rfind("--socket=", 0) == 0)
      Socket = A.substr(9);
    else if (A == "--ping")
      DoPing = true;
    else if (A == "--metrics")
      DoMetrics = true;
    else if (A.rfind("--out-dir=", 0) == 0)
      OutDir = A.substr(10);
    else if (A == "--tile")
      Opts.Tile = true;
    else if (A == "--no-tile")
      Opts.Tile = false;
    else if (A.rfind("--tile-size=", 0) == 0)
      Opts.TileSize = static_cast<unsigned>(Num(12));
    else if (A == "--l2tile")
      Opts.SecondLevelTile = true;
    else if (A == "--no-l2tile")
      Opts.SecondLevelTile = false;
    else if (A.rfind("--l2tile-size=", 0) == 0)
      Opts.L2TileSize = static_cast<unsigned>(Num(14));
    else if (A == "--parallel")
      Opts.Parallelize = true;
    else if (A == "--no-parallel")
      Opts.Parallelize = false;
    else if (A == "--vectorize")
      Opts.Vectorize = true;
    else if (A == "--no-vectorize")
      Opts.Vectorize = false;
    else if (A == "--include-input-deps")
      Opts.IncludeInputDeps = true;
    else if (A == "--no-include-input-deps")
      Opts.IncludeInputDeps = false;
    else if (A == "--fast-schedule")
      Opts.FastSchedule = true;
    else if (A == "--no-fast-schedule")
      Opts.FastSchedule = false;
    else if (A.rfind("--param-min=", 0) == 0)
      Opts.ParamMin = Num(12);
    else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "plutoctl: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    } else
      Inputs.push_back(A);
  }

  if (Socket.empty()) {
    std::fprintf(stderr, "plutoctl: --socket=PATH is required\n%s", Usage);
    return 2;
  }

  Client C;
  std::string Error;
  if (!C.connectTo(Socket, Error)) {
    std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
    return 1;
  }

  if (DoPing || DoMetrics) {
    WireRequest R;
    R.Operation = DoMetrics ? Op::Metrics : Op::Ping;
    R.Id = "0";
    C.queue(encodeRequest(R));
    std::vector<std::string> Lines;
    if (!C.pump(1, Lines, Error)) {
      std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
      return 1;
    }
    auto Resp = decodeResponse(Lines[0]);
    if (!Resp) {
      std::fprintf(stderr, "plutoctl: bad response: %s\n",
                   Resp.error().c_str());
      return 1;
    }
    if (!Resp->ok()) {
      std::fprintf(stderr, "plutoctl: daemon answered %s: %s\n",
                   statusCodeName(Resp->Status), Resp->Error.c_str());
      return exitCodeFor(Resp->Status);
    }
    if (DoMetrics)
      std::printf("%s\n", Resp->MetricsJson.c_str());
    else
      std::printf("ok\n");
    return 0;
  }

  // Compile path: read every input up front, pipeline all requests.
  struct Unit {
    std::string Name;
    std::string Source;
  };
  std::vector<Unit> Units;
  if (Inputs.empty()) {
    Units.push_back({"<stdin>", readStream(std::cin)});
  } else {
    for (const std::string &Path : Inputs) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "plutoctl: cannot read '%s'\n", Path.c_str());
        return 2;
      }
      Units.push_back({Path, readStream(In)});
    }
  }

  for (size_t I = 0; I < Units.size(); ++I) {
    WireRequest R;
    R.Operation = Op::Compile;
    R.Id = std::to_string(I);
    R.Req.Name = Units[I].Name;
    R.Req.Source = Units[I].Source;
    R.Req.Opts = Opts;
    C.queue(encodeRequest(R));
  }

  std::vector<std::string> Lines;
  if (!C.pump(Units.size(), Lines, Error)) {
    std::fprintf(stderr, "plutoctl: %s\n", Error.c_str());
    return 1;
  }

  // Re-sequence by echoed id (the daemon's worker pool may complete a
  // connection's jobs out of order).
  std::map<size_t, WireResponse> ById;
  for (const std::string &L : Lines) {
    auto Resp = decodeResponse(L);
    if (!Resp) {
      std::fprintf(stderr, "plutoctl: bad response line: %s\n",
                   Resp.error().c_str());
      return 1;
    }
    size_t Id = static_cast<size_t>(std::strtoull(Resp->Id.c_str(),
                                                  nullptr, 10));
    ById[Id] = std::move(*Resp);
  }

  int Exit = 0;
  unsigned Failed = 0;
  for (size_t I = 0; I < Units.size(); ++I) {
    auto It = ById.find(I);
    if (It == ById.end()) {
      std::fprintf(stderr, "plutoctl: no response for '%s'\n",
                   Units[I].Name.c_str());
      Exit = aggregateExitCodes(Exit, 1);
      ++Failed;
      continue;
    }
    const WireResponse &R = It->second;
    if (!R.ok()) {
      ++Failed;
      std::fprintf(stderr, "plutoctl: %s: %s: %s\n", Units[I].Name.c_str(),
                   statusCodeName(R.Status), R.Error.c_str());
      // Diagnostics render locally: the daemon sends spans, we own the
      // source text the snippets come from.
      for (const Diagnostic &D : R.Diags) {
        std::string Snip = renderSnippet(Units[I].Source, D);
        std::fprintf(stderr, "%s: %s\n", Units[I].Name.c_str(),
                     D.toString().c_str());
        if (!Snip.empty())
          std::fputs(Snip.c_str(), stderr);
      }
      Exit = aggregateExitCodes(Exit, exitCodeFor(R.Status));
      continue;
    }
    if (!OutDir.empty()) {
      std::string Path = OutDir + "/" + stemOf(Units[I].Name) + ".pluto.c";
      std::ofstream Out(Path);
      if (!Out) {
        std::fprintf(stderr, "plutoctl: cannot write '%s'\n", Path.c_str());
        Exit = aggregateExitCodes(Exit, 1);
        continue;
      }
      Out << R.EmittedC;
    } else {
      if (Units.size() > 1)
        std::printf("/* ===== plutopp: %s ===== */\n", Units[I].Name.c_str());
      std::fputs(R.EmittedC.c_str(), stdout);
    }
  }

  if (Units.size() > 1 && Failed)
    std::fprintf(stderr, "plutoctl: %u of %zu units failed\n", Failed,
                 Units.size());
  return Exit;
}
