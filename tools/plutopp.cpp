//===- tools/plutopp.cpp - The plutopp command-line compiler --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper's tool front-end (Section 6, Figure 5) grown into a front door
// for the compilation service layer: read one or many restricted-C affine
// loop nests, compile them through pluto::Pipeline sessions - concurrently
// with --jobs, against a content-addressed result cache with --cache-dir -
// and emit tiled OpenMP C. Every paper knob is exposed symmetrically
// (--x / --no-x), and --report dumps the toolchain-wide diagnostics from
// src/observe including the cache hit/miss/eviction counters.
//
// Exit codes come from the shared StatusCode table (service/
// CompileService.h): 0 success, 1 internal/schedule failure (also plain
// I/O problems), 2 invalid options or source errors, 3 overloaded (only
// reachable through a daemon; never in-process), 4 resource budget
// exhausted (--timeout-ms/--max-memory-mb/--max-work). Multi-file batches
// fold per-unit codes with the documented precedence 2 > 1 > 4 > 3 > 0.
//
//===----------------------------------------------------------------------===//

#include "observe/PassStats.h"
#include "observe/Trace.h"
#include "parser/Parser.h"
#include "service/Batch.h"
#include "service/Pipeline.h"
#include "support/FaultInjector.h"
#include "support/Json.h"
#include "tune/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

using namespace pluto;

namespace {

const char *UsageText =
    "usage: plutopp [options] [input.c ...]\n"
    "\n"
    "Reads restricted-C affine loop nests (stdin when no input file is\n"
    "given) and emits tiled OpenMP C. With several inputs the units are\n"
    "compiled as one batch (see --jobs) and written to stdout in input\n"
    "order, separated by banner comments, unless --out-dir is given.\n"
    "\n"
    "transformation options (defaults shown):\n"
    "  --tile / --no-tile              tile permutable bands (on)\n"
    "  --tile-size=N                   tile size (32)\n"
    "  --l2tile / --no-l2tile          second-level tiling (off)\n"
    "  --l2tile-size=N                 L2 factor, multiplies L1 size (8)\n"
    "  --parallel / --no-parallel      extract parallelism + pragmas (on)\n"
    "  --vectorize / --no-vectorize    intra-tile reordering + simd (on)\n"
    "  --include-input-deps / --no-include-input-deps\n"
    "                                  RAR deps in the cost model (on)\n"
    "  --fast-schedule / --no-fast-schedule\n"
    "                                  scheduler scaling fast paths:\n"
    "                                  clustered decomposition, dimension\n"
    "                                  matching, warm-started lexmin (on)\n"
    "  --param-min=N                   context assumption p >= N (4)\n"
    "\n"
    "service options:\n"
    "  --jobs=N                        compile inputs on N worker threads\n"
    "                                  (1; 0 = all hardware threads)\n"
    "  --cache-dir=DIR                 persistent content-addressed result\n"
    "                                  cache shared across runs/processes\n"
    "  --cache-bytes=N                 in-memory cache budget in bytes\n"
    "                                  (67108864)\n"
    "\n"
    "resource budget (per unit; exceeding any limit exits 4):\n"
    "  --timeout-ms=N                  wall-clock budget per compile\n"
    "                                  (0 = unlimited)\n"
    "  --max-memory-mb=N               budget on tracked transient\n"
    "                                  allocations in MiB (0 = unlimited)\n"
    "  --max-work=N                    deterministic work-unit budget -\n"
    "                                  parsed statements, FM rows, simplex\n"
    "                                  pivots... (0 = unlimited)\n"
    "\n"
    "autotuning (single input only):\n"
    "  --tune[=spec]                   search the option space empirically:\n"
    "                                  enumerate tile/fusion/wavefront\n"
    "                                  variants, prune by static features,\n"
    "                                  JIT-measure the survivors (median of\n"
    "                                  K reps after warmup, pinned threads,\n"
    "                                  differential correctness gate) and\n"
    "                                  emit the winner. The spec is\n"
    "                                  semicolon-separated key=value:\n"
    "                                  axes tile=0,16,32 l2=0,8 wave=0,1,2\n"
    "                                  fuse=0,1 vec=0,1 (0 = feature off),\n"
    "                                  knobs n= reps= warmup= threads=\n"
    "                                  max-measure=. Default space:\n"
    "                                  tile=0,16,32,64;l2=0,8;wave=0,1,2\n"
    "  --tune-trace=FILE               write the JSON search trace\n"
    "                                  (tune_schema 1) to FILE instead of\n"
    "                                  stderr\n"
    "\n"
    "output options:\n"
    "  --out=FILE                      write the generated C to FILE\n"
    "                                  (single input only; default stdout)\n"
    "  --out-dir=DIR                   write each input's unit to\n"
    "                                  DIR/<stem>.pluto.c\n"
    "  --report                        human-readable statistics + decision\n"
    "                                  trace (stderr; stdout when no code\n"
    "                                  goes there). The trace covers\n"
    "                                  single-job runs only; batch runs\n"
    "                                  report timers/counters, including\n"
    "                                  cache hits/misses/evictions\n"
    "  --report=json                   the same as one JSON document\n"
    "                                  (schema: DESIGN.md sections 8-9;\n"
    "                                  includes a \"diagnostics\" array of\n"
    "                                  frontend errors with line:col spans)\n"
    "  -h, --help                      this text\n"
    "\n"
    "exit codes: 0 ok, 1 I/O or internal compile error, 2 invalid options\n"
    "or source errors (every problem is reported with its line:col span),\n"
    "4 resource budget exhausted\n";

/// Parses the =N suffix of A (after the Len-byte prefix); exits on garbage.
long long numArg(const std::string &A, size_t Len) {
  char *End = nullptr;
  long long V = std::strtoll(A.c_str() + Len, &End, 10);
  if (!End || *End || End == A.c_str() + Len) {
    std::fprintf(stderr, "plutopp: bad numeric argument in '%s'\n",
                 A.c_str());
    std::exit(1);
  }
  return V;
}

/// `path/to/foo.c` -> `foo` (the --out-dir output stem).
std::string stemOf(const std::string &Path) {
  std::string Stem = std::filesystem::path(Path).stem().string();
  return Stem.empty() ? "unit" : Stem;
}

} // namespace

int main(int argc, char **argv) {
  PlutoOptions Opts;
  BudgetLimits Budget;
  std::vector<std::string> InputPaths;
  bool Tune = false;
  std::string TuneSpec, TuneTracePath;
  std::string OutPath, OutDir, CacheDir;
  size_t CacheBytes = 64ull << 20;
  unsigned Jobs = 1;
  bool JobsGiven = false;
  enum class ReportMode { None, Text, Json } Report = ReportMode::None;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--tile")
      Opts.Tile = true;
    else if (A == "--no-tile")
      Opts.Tile = false;
    else if (A.rfind("--tile-size=", 0) == 0) {
      // Range checks are deliberately left to PlutoOptions::validate() so
      // the CLI and library agree on what is rejected (exit code 2 below).
      long long V = numArg(A, 12);
      Opts.TileSize = V < 0 ? 0u : static_cast<unsigned>(V);
    } else if (A == "--l2tile")
      Opts.SecondLevelTile = true;
    else if (A == "--no-l2tile")
      Opts.SecondLevelTile = false;
    else if (A.rfind("--l2tile-size=", 0) == 0) {
      long long V = numArg(A, 14);
      Opts.L2TileSize = V < 0 ? 0u : static_cast<unsigned>(V);
    } else if (A == "--parallel")
      Opts.Parallelize = true;
    else if (A == "--no-parallel")
      Opts.Parallelize = false;
    else if (A == "--vectorize")
      Opts.Vectorize = true;
    else if (A == "--no-vectorize")
      Opts.Vectorize = false;
    else if (A == "--include-input-deps")
      Opts.IncludeInputDeps = true;
    else if (A == "--no-include-input-deps")
      Opts.IncludeInputDeps = false;
    else if (A == "--fast-schedule")
      Opts.FastSchedule = true;
    else if (A == "--no-fast-schedule")
      Opts.FastSchedule = false;
    else if (A.rfind("--param-min=", 0) == 0)
      Opts.ParamMin = numArg(A, 12);
    else if (A.rfind("--jobs=", 0) == 0) {
      long long V = numArg(A, 7);
      if (V < 0) {
        std::fprintf(stderr, "plutopp: --jobs must be >= 0\n");
        return 2;
      }
      Jobs = static_cast<unsigned>(V);
      JobsGiven = true;
    } else if (A.rfind("--timeout-ms=", 0) == 0) {
      long long V = numArg(A, 13);
      Budget.WallMs = V < 0 ? 0u : static_cast<uint64_t>(V);
    } else if (A.rfind("--max-memory-mb=", 0) == 0) {
      long long V = numArg(A, 16);
      Budget.MaxMemoryBytes = V < 0 ? 0u : static_cast<uint64_t>(V) << 20;
    } else if (A.rfind("--max-work=", 0) == 0) {
      long long V = numArg(A, 11);
      Budget.MaxWorkUnits = V < 0 ? 0u : static_cast<uint64_t>(V);
    } else if (A.rfind("--cache-dir=", 0) == 0)
      CacheDir = A.substr(12);
    else if (A.rfind("--cache-bytes=", 0) == 0) {
      long long V = numArg(A, 14);
      if (V <= 0) {
        std::fprintf(stderr, "plutopp: --cache-bytes must be positive\n");
        return 2;
      }
      CacheBytes = static_cast<size_t>(V);
    } else if (A == "--tune")
      Tune = true;
    else if (A.rfind("--tune=", 0) == 0) {
      Tune = true;
      TuneSpec = A.substr(7);
    } else if (A.rfind("--tune-trace=", 0) == 0)
      TuneTracePath = A.substr(13);
    else if (A.rfind("--out=", 0) == 0)
      OutPath = A.substr(6);
    else if (A.rfind("--out-dir=", 0) == 0)
      OutDir = A.substr(10);
    else if (A == "--report")
      Report = ReportMode::Text;
    else if (A == "--report=json")
      Report = ReportMode::Json;
    else if (A == "--help" || A == "-h") {
      std::fputs(UsageText, stdout);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "plutopp: unknown option '%s' (see --help)\n",
                   A.c_str());
      return 1;
    } else {
      InputPaths.push_back(A);
    }
  }

  // Fail fast on option sets the pipeline cannot lower - before any input
  // is read - with the distinct exit code scripts can branch on.
  if (auto V = Opts.validate(); !V) {
    std::fprintf(stderr, "plutopp: %s\n", V.error().c_str());
    return 2;
  }
  if (!OutPath.empty() && !OutDir.empty()) {
    std::fprintf(stderr, "plutopp: --out and --out-dir are exclusive\n");
    return 2;
  }
  if (!OutPath.empty() && InputPaths.size() > 1) {
    std::fprintf(stderr,
                 "plutopp: --out with several inputs is ambiguous; use "
                 "--out-dir\n");
    return 2;
  }
  if (Tune && (InputPaths.size() > 1 || !OutDir.empty())) {
    std::fprintf(stderr,
                 "plutopp: --tune takes a single input (and --out, not "
                 "--out-dir)\n");
    return 2;
  }
  if (!TuneTracePath.empty() && !Tune) {
    std::fprintf(stderr, "plutopp: --tune-trace requires --tune\n");
    return 2;
  }

  // Assemble the batch: named files, or stdin as a single anonymous unit.
  std::vector<CompileJob> Batch;
  if (InputPaths.empty()) {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Batch.push_back({"<stdin>", SS.str()});
  } else {
    for (const std::string &Path : InputPaths) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "plutopp: cannot open '%s'\n", Path.c_str());
        return 1;
      }
      std::stringstream SS;
      SS << In.rdbuf();
      Batch.push_back({Path, SS.str()});
    }
  }

  if (!OutDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(OutDir, Ec);
    if (Ec || !std::filesystem::is_directory(OutDir)) {
      std::fprintf(stderr, "plutopp: cannot create --out-dir '%s'\n",
                   OutDir.c_str());
      return 1;
    }
  }

  BatchOptions BO;
  BO.Jobs = JobsGiven ? Jobs : 1;
  {
    ResultCache::Config CC;
    CC.MaxBytes = CacheBytes;
    CC.DiskDir = CacheDir;
    BO.Cache = std::make_shared<ResultCache>(CC);
    if (!CacheDir.empty() && !BO.Cache->diskEnabled())
      std::fprintf(stderr,
                   "plutopp: warning: cache dir '%s' unusable, continuing "
                   "with in-memory cache only\n",
                   CacheDir.c_str());
  }

  // Diagnostics are collected only when asked for; with no sink installed
  // every count site in the library is a null-check. The decision trace
  // builds interleaved strings and is serial-only, so it is recorded only
  // when one job runs on one thread.
  PassStats Stats;
  Trace Tr;
  bool WantTrace = Report != ReportMode::None && Batch.size() == 1 &&
                   BO.Jobs <= 1 && !Tune;
  if (Report != ReportMode::None)
    setActiveStats(&Stats);
  if (WantTrace)
    setActiveTrace(&Tr);

  // Deterministic fault injection for tests and the CI soak
  // ($PLUTOPP_FAULT, e.g. "cache.disk_write:*").
  FaultInjector::armFromEnv();

  if (Tune) {
    tune::SearchSpace SS;
    tune::TuneOptions TO;
    TO.Base = Opts;
    TO.Budget = Budget;
    TO.Jobs = BO.Jobs;
    TO.Cache = BO.Cache;
    if (auto P = tune::parseSpec(TuneSpec, SS, TO); !P) {
      std::fprintf(stderr, "plutopp: %s\n", P.error().c_str());
      return 2;
    }

    tune::TuneResult TR = tune::explore(Batch[0].Source, SS, TO);
    setActiveStats(nullptr);

    // The trace is written even on failure - a search that died is still a
    // search worth inspecting.
    std::string TraceDoc = TR.traceJson();
    if (!TuneTracePath.empty()) {
      std::ofstream Out(TuneTracePath, std::ios::binary | std::ios::trunc);
      if (Out)
        Out.write(TraceDoc.data(),
                  static_cast<std::streamsize>(TraceDoc.size()));
      if (!Out) {
        std::fprintf(stderr, "plutopp: cannot write '%s'\n",
                     TuneTracePath.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "%s\n", TraceDoc.c_str());
    }

    if (TR.Status != StatusCode::Ok) {
      for (const Diagnostic &D : TR.Diags) {
        std::fprintf(stderr, "plutopp: %s: %s\n", Batch[0].Name.c_str(),
                     D.toString().c_str());
        std::fputs(renderSnippet(Batch[0].Source, D).c_str(), stderr);
      }
      if (TR.Diags.empty())
        std::fprintf(stderr, "plutopp: %s: %s\n", Batch[0].Name.c_str(),
                     TR.Error.c_str());
      return TR.exitCode();
    }

    const tune::TuneVariant *W = TR.winner();
    std::fprintf(stderr,
                 "plutopp: tune: %llu enumerated, %llu distinct, %llu "
                 "measured, %llu errors\n",
                 static_cast<unsigned long long>(TR.Enumerated),
                 static_cast<unsigned long long>(TR.Distinct),
                 static_cast<unsigned long long>(TR.Measured),
                 static_cast<unsigned long long>(TR.Errors));
    if (W) {
      if (W->Measured)
        std::fprintf(stderr, "plutopp: tune: winner v%u (%.3f ms): %s\n",
                     W->Id, W->Time.MedianSeconds * 1e3,
                     W->Fingerprint.c_str());
      else
        std::fprintf(stderr, "plutopp: tune: winner v%u (by score): %s\n",
                     W->Id, W->Fingerprint.c_str());
    }

    if (!OutPath.empty()) {
      std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
      if (Out)
        Out.write(TR.WinnerC.data(),
                  static_cast<std::streamsize>(TR.WinnerC.size()));
      if (!Out) {
        std::fprintf(stderr, "plutopp: cannot write '%s'\n", OutPath.c_str());
        return 1;
      }
    } else {
      std::fputs(TR.WinnerC.c_str(), stdout);
    }

    if (Report != ReportMode::None) {
      FILE *Dst = OutPath.empty() ? stderr : stdout;
      if (Report == ReportMode::Json) {
        std::fputs(Stats.toJson().c_str(), Dst);
        std::fputs("\n", Dst);
      } else {
        std::fputs(Stats.toText().c_str(), Dst);
      }
    }
    return 0;
  }

  std::vector<CompileRequest> Reqs;
  Reqs.reserve(Batch.size());
  for (const CompileJob &J : Batch)
    Reqs.push_back({J.Name, J.Source, Opts, Budget});
  std::vector<CompileResponse> Resps = compileRequests(Reqs, BO);
  setActiveStats(nullptr);
  setActiveTrace(nullptr);

  // Report every failed unit, write the successful ones: to
  // --out/--out-dir files, or concatenated on stdout in input order
  // (banner-separated when there are several). Responses carry the
  // frontend's structured diagnostics, so every source problem is shown
  // with its line:col span and a caret snippet; the process exit code
  // folds the per-unit StatusCode exit codes through the one shared
  // table (2 bad input > 1 internal > 4 over budget > 3 overloaded > 0).
  int Exit = 0;
  bool WroteStdout = false;
  unsigned FailedUnits = 0;
  std::vector<const char *> UnitStatus(Batch.size(), "ok");
  std::string DiagsJson; // Rendered entries of the JSON "diagnostics" array.
  for (size_t I = 0; I < Batch.size(); ++I) {
    const CompileResponse &R = Resps[I];
    UnitStatus[I] = statusCodeName(R.Status);
    Exit = aggregateExitCodes(Exit, R.exitCode());
    if (!R.ok()) {
      ++FailedUnits;
      if (!R.Diags.empty()) {
        for (const Diagnostic &D : R.Diags) {
          std::fprintf(stderr, "plutopp: %s: %s\n", Batch[I].Name.c_str(),
                       D.toString().c_str());
          std::fputs(renderSnippet(Batch[I].Source, D).c_str(), stderr);
          if (Report == ReportMode::Json) {
            DiagsJson += DiagsJson.empty() ? "\n    " : ",\n    ";
            appendDiagnosticJson(DiagsJson, Batch[I].Name, D);
          }
        }
      } else {
        std::fprintf(stderr, "plutopp: %s: %s\n", Batch[I].Name.c_str(),
                     R.Error.c_str());
      }
      continue;
    }
    if (!OutDir.empty()) {
      std::string Path = OutDir + "/" + stemOf(Batch[I].Name) + ".pluto.c";
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      if (Out)
        Out.write(R.EmittedC.data(),
                  static_cast<std::streamsize>(R.EmittedC.size()));
      if (!Out) {
        std::fprintf(stderr, "plutopp: cannot write '%s'\n", Path.c_str());
        UnitStatus[I] = "write-error";
        ++FailedUnits;
        Exit = aggregateExitCodes(Exit, exitCodeFor(StatusCode::Internal));
      }
    } else if (!OutPath.empty()) {
      std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
      if (Out)
        Out.write(R.EmittedC.data(),
                  static_cast<std::streamsize>(R.EmittedC.size()));
      if (!Out) {
        std::fprintf(stderr, "plutopp: cannot write '%s'\n", OutPath.c_str());
        UnitStatus[I] = "write-error";
        ++FailedUnits;
        Exit = aggregateExitCodes(Exit, exitCodeFor(StatusCode::Internal));
      }
    } else {
      if (Batch.size() > 1)
        std::printf("/* ===== plutopp: %s ===== */\n", Batch[I].Name.c_str());
      std::fputs(R.EmittedC.c_str(), stdout);
      WroteStdout = true;
    }
  }

  // Multi-file runs used to end with just an exit code; now every unit's
  // terminal status is summarized so a failing file in a big batch is
  // findable without scrolling the diagnostics.
  if (Batch.size() > 1 && FailedUnits) {
    std::fprintf(stderr, "plutopp: %u of %zu units failed:\n", FailedUnits,
                 Batch.size());
    for (size_t I = 0; I < Batch.size(); ++I)
      std::fprintf(stderr, "plutopp:   %s: %s\n", Batch[I].Name.c_str(),
                   UnitStatus[I]);
  }

  // The report goes to stderr so it never mixes with code on stdout; when
  // the code went to files, stdout is free and scripts can capture the
  // report (JSON in particular) cleanly there.
  if (Report != ReportMode::None) {
    FILE *Dst = WroteStdout ? stderr : stdout;
    if (Report == ReportMode::Json) {
      std::string Extra =
          "\"diagnostics\": [" + DiagsJson + (DiagsJson.empty() ? "]" : "\n  ]");
      std::fputs(Stats.toJson(WantTrace ? &Tr : nullptr, &Extra).c_str(),
                 Dst);
      std::fputs("\n", Dst);
    } else {
      std::fputs(Stats.toText().c_str(), Dst);
      if (WantTrace) {
        std::fputs("decision trace:\n", Dst);
        std::fputs(Tr.toText().c_str(), Dst);
      }
    }
  }
  return Exit;
}
