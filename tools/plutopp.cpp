//===- tools/plutopp.cpp - The plutopp command-line compiler --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper's tool front-end (Section 6, Figure 5): read a restricted-C
// affine loop nest, run the full pipeline (parse -> dependence analysis ->
// Pluto transformation -> tiling -> wavefront -> vectorization reorder ->
// codegen) and emit tiled OpenMP C. Unlike the minimal examples/plutocc,
// this binary exposes every paper knob symmetrically (--x / --no-x) and can
// dump the toolchain-wide diagnostics collected by src/observe: per-pass
// timings, counters from the ILP core / polyhedral library / dependence
// analysis / transform framework, and the decision trace.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "observe/PassStats.h"
#include "observe/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace pluto;

namespace {

const char *UsageText =
    "usage: plutopp [options] [input.c]\n"
    "\n"
    "Reads a restricted-C affine loop nest (stdin when no input file is\n"
    "given) and emits tiled OpenMP C.\n"
    "\n"
    "transformation options (defaults shown):\n"
    "  --tile / --no-tile              tile permutable bands (on)\n"
    "  --tile-size=N                   tile size (32)\n"
    "  --l2tile / --no-l2tile          second-level tiling (off)\n"
    "  --l2tile-size=N                 L2 factor, multiplies L1 size (8)\n"
    "  --parallel / --no-parallel      extract parallelism + pragmas (on)\n"
    "  --vectorize / --no-vectorize    intra-tile reordering + simd (on)\n"
    "  --include-input-deps / --no-include-input-deps\n"
    "                                  RAR deps in the cost model (on)\n"
    "  --param-min=N                   context assumption p >= N (4)\n"
    "\n"
    "output options:\n"
    "  --out=FILE                      write the generated C to FILE\n"
    "                                  (default: stdout)\n"
    "  --report                        human-readable statistics + decision\n"
    "                                  trace (stderr; stdout with --out)\n"
    "  --report=json                   the same as one JSON document\n"
    "                                  (schema: DESIGN.md section 8)\n"
    "  -h, --help                      this text\n";

/// Parses the =N suffix of A (after the Len-byte prefix); exits on garbage.
long long numArg(const std::string &A, size_t Len) {
  char *End = nullptr;
  long long V = std::strtoll(A.c_str() + Len, &End, 10);
  if (!End || *End || End == A.c_str() + Len) {
    std::fprintf(stderr, "plutopp: bad numeric argument in '%s'\n",
                 A.c_str());
    std::exit(1);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  PlutoOptions Opts;
  std::string InputPath, OutPath;
  enum class ReportMode { None, Text, Json } Report = ReportMode::None;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--tile")
      Opts.Tile = true;
    else if (A == "--no-tile")
      Opts.Tile = false;
    else if (A.rfind("--tile-size=", 0) == 0) {
      long long V = numArg(A, 12);
      if (V <= 0) {
        std::fprintf(stderr, "plutopp: --tile-size must be positive\n");
        return 1;
      }
      Opts.TileSize = static_cast<unsigned>(V);
    } else if (A == "--l2tile")
      Opts.SecondLevelTile = true;
    else if (A == "--no-l2tile")
      Opts.SecondLevelTile = false;
    else if (A.rfind("--l2tile-size=", 0) == 0) {
      long long V = numArg(A, 14);
      if (V <= 0) {
        std::fprintf(stderr, "plutopp: --l2tile-size must be positive\n");
        return 1;
      }
      Opts.L2TileSize = static_cast<unsigned>(V);
    } else if (A == "--parallel")
      Opts.Parallelize = true;
    else if (A == "--no-parallel")
      Opts.Parallelize = false;
    else if (A == "--vectorize")
      Opts.Vectorize = true;
    else if (A == "--no-vectorize")
      Opts.Vectorize = false;
    else if (A == "--include-input-deps")
      Opts.IncludeInputDeps = true;
    else if (A == "--no-include-input-deps")
      Opts.IncludeInputDeps = false;
    else if (A.rfind("--param-min=", 0) == 0)
      Opts.ParamMin = numArg(A, 12);
    else if (A.rfind("--out=", 0) == 0)
      OutPath = A.substr(6);
    else if (A == "--report")
      Report = ReportMode::Text;
    else if (A == "--report=json")
      Report = ReportMode::Json;
    else if (A == "--help" || A == "-h") {
      std::fputs(UsageText, stdout);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "plutopp: unknown option '%s' (see --help)\n",
                   A.c_str());
      return 1;
    } else if (!InputPath.empty()) {
      std::fprintf(stderr, "plutopp: more than one input file\n");
      return 1;
    } else {
      InputPath = A;
    }
  }

  std::string Source;
  if (InputPath.empty()) {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "plutopp: cannot open '%s'\n", InputPath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  // Diagnostics are collected only when asked for; with no sink installed
  // every count site in the library is a null-check.
  PassStats Stats;
  Trace Tr;
  if (Report != ReportMode::None) {
    setActiveStats(&Stats);
    setActiveTrace(&Tr);
  }

  auto R = optimizeSource(Source, Opts);
  setActiveStats(nullptr);
  setActiveTrace(nullptr);
  if (!R) {
    std::fprintf(stderr, "plutopp: %s\n", R.error().c_str());
    return 1;
  }

  // Without user-provided extents, emit square parametric extents using the
  // first parameter for every array (same documented default as plutocc).
  EmitOptions EO;
  std::string DefaultExtent =
      R->program().ParamNames.empty() ? "1024" : R->program().ParamNames[0];
  for (const ArrayInfo &A : R->program().Arrays)
    EO.Extents[A.Name] = std::vector<std::string>(A.Rank, DefaultExtent);
  EO.SymConsts = R->Parsed.SymConsts;
  std::string Code = emitC(R->program(), *R->Ast, EO);

  if (OutPath.empty()) {
    std::fputs(Code.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "plutopp: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
    Out << Code;
  }

  // The report goes to stderr so it never mixes with code on stdout; when
  // the code goes to a file, stdout is free and scripts can capture the
  // report (JSON in particular) cleanly there.
  if (Report != ReportMode::None) {
    FILE *Dst = OutPath.empty() ? stderr : stdout;
    if (Report == ReportMode::Json) {
      std::fputs(Stats.toJson(&Tr).c_str(), Dst);
      std::fputs("\n", Dst);
    } else {
      std::fputs(Stats.toText().c_str(), Dst);
      std::fputs("decision trace:\n", Dst);
      std::fputs(Tr.toText().c_str(), Dst);
    }
  }
  return 0;
}
