file(REMOVE_RECURSE
  "libplutopp.a"
)
