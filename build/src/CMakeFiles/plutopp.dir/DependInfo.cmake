
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/Ast.cpp" "src/CMakeFiles/plutopp.dir/codegen/Ast.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/codegen/Ast.cpp.o.d"
  "/root/repo/src/codegen/CEmitter.cpp" "src/CMakeFiles/plutopp.dir/codegen/CEmitter.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/codegen/CEmitter.cpp.o.d"
  "/root/repo/src/codegen/CodeGen.cpp" "src/CMakeFiles/plutopp.dir/codegen/CodeGen.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/codegen/CodeGen.cpp.o.d"
  "/root/repo/src/deps/Dependences.cpp" "src/CMakeFiles/plutopp.dir/deps/Dependences.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/deps/Dependences.cpp.o.d"
  "/root/repo/src/driver/Driver.cpp" "src/CMakeFiles/plutopp.dir/driver/Driver.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/driver/Driver.cpp.o.d"
  "/root/repo/src/ilp/LexMin.cpp" "src/CMakeFiles/plutopp.dir/ilp/LexMin.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/ilp/LexMin.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/CMakeFiles/plutopp.dir/ir/Expr.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/CMakeFiles/plutopp.dir/ir/Program.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/ir/Program.cpp.o.d"
  "/root/repo/src/parser/Lexer.cpp" "src/CMakeFiles/plutopp.dir/parser/Lexer.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/parser/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/CMakeFiles/plutopp.dir/parser/Parser.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/parser/Parser.cpp.o.d"
  "/root/repo/src/poly/ConstraintSystem.cpp" "src/CMakeFiles/plutopp.dir/poly/ConstraintSystem.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/poly/ConstraintSystem.cpp.o.d"
  "/root/repo/src/runtime/Interpreter.cpp" "src/CMakeFiles/plutopp.dir/runtime/Interpreter.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/runtime/Interpreter.cpp.o.d"
  "/root/repo/src/runtime/Jit.cpp" "src/CMakeFiles/plutopp.dir/runtime/Jit.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/runtime/Jit.cpp.o.d"
  "/root/repo/src/support/BigInt.cpp" "src/CMakeFiles/plutopp.dir/support/BigInt.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/support/BigInt.cpp.o.d"
  "/root/repo/src/support/LinearAlgebra.cpp" "src/CMakeFiles/plutopp.dir/support/LinearAlgebra.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/support/LinearAlgebra.cpp.o.d"
  "/root/repo/src/tile/Scop.cpp" "src/CMakeFiles/plutopp.dir/tile/Scop.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/tile/Scop.cpp.o.d"
  "/root/repo/src/tile/Tiling.cpp" "src/CMakeFiles/plutopp.dir/tile/Tiling.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/tile/Tiling.cpp.o.d"
  "/root/repo/src/transform/FarkasConstraints.cpp" "src/CMakeFiles/plutopp.dir/transform/FarkasConstraints.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/transform/FarkasConstraints.cpp.o.d"
  "/root/repo/src/transform/PlutoTransform.cpp" "src/CMakeFiles/plutopp.dir/transform/PlutoTransform.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/transform/PlutoTransform.cpp.o.d"
  "/root/repo/src/transform/Schedule.cpp" "src/CMakeFiles/plutopp.dir/transform/Schedule.cpp.o" "gcc" "src/CMakeFiles/plutopp.dir/transform/Schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
