# Empty dependencies file for plutopp.
# This may be replaced when dependencies are built.
