# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ilp_test "/root/repo/build/tests/ilp_test")
set_tests_properties(ilp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(poly_test "/root/repo/build/tests/poly_test")
set_tests_properties(poly_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parser_test "/root/repo/build/tests/parser_test")
set_tests_properties(parser_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(deps_test "/root/repo/build/tests/deps_test")
set_tests_properties(deps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transform_test "/root/repo/build/tests/transform_test")
set_tests_properties(transform_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codegen_test "/root/repo/build/tests/codegen_test")
set_tests_properties(codegen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tile_test "/root/repo/build/tests/tile_test")
set_tests_properties(tile_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fuzz_test "/root/repo/build/tests/fuzz_test")
set_tests_properties(fuzz_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(oracle_test "/root/repo/build/tests/oracle_test")
set_tests_properties(oracle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(suite_test "/root/repo/build/tests/suite_test")
set_tests_properties(suite_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;21;plutopp_add_test;/root/repo/tests/CMakeLists.txt;0;")
