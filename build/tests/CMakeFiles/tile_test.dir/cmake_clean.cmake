file(REMOVE_RECURSE
  "CMakeFiles/tile_test.dir/tile_test.cpp.o"
  "CMakeFiles/tile_test.dir/tile_test.cpp.o.d"
  "tile_test"
  "tile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
