# Empty compiler generated dependencies file for plutocc.
# This may be replaced when dependencies are built.
