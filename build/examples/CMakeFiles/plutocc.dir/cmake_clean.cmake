file(REMOVE_RECURSE
  "CMakeFiles/plutocc.dir/plutocc.cpp.o"
  "CMakeFiles/plutocc.dir/plutocc.cpp.o.d"
  "plutocc"
  "plutocc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plutocc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
