# Empty compiler generated dependencies file for bench_toolchain.
# This may be replaced when dependencies are built.
