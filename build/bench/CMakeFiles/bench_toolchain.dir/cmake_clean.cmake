file(REMOVE_RECURSE
  "CMakeFiles/bench_toolchain.dir/bench_toolchain.cpp.o"
  "CMakeFiles/bench_toolchain.dir/bench_toolchain.cpp.o.d"
  "bench_toolchain"
  "bench_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
