file(REMOVE_RECURSE
  "CMakeFiles/bench_fdtd2d.dir/bench_fdtd2d.cpp.o"
  "CMakeFiles/bench_fdtd2d.dir/bench_fdtd2d.cpp.o.d"
  "bench_fdtd2d"
  "bench_fdtd2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fdtd2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
