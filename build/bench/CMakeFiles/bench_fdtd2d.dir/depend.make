# Empty dependencies file for bench_fdtd2d.
# This may be replaced when dependencies are built.
