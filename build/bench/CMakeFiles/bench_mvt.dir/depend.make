# Empty dependencies file for bench_mvt.
# This may be replaced when dependencies are built.
