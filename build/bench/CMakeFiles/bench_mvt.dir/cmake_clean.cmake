file(REMOVE_RECURSE
  "CMakeFiles/bench_mvt.dir/bench_mvt.cpp.o"
  "CMakeFiles/bench_mvt.dir/bench_mvt.cpp.o.d"
  "bench_mvt"
  "bench_mvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
