# Empty compiler generated dependencies file for bench_jacobi1d.
# This may be replaced when dependencies are built.
