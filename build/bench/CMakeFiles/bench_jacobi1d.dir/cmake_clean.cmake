file(REMOVE_RECURSE
  "CMakeFiles/bench_jacobi1d.dir/bench_jacobi1d.cpp.o"
  "CMakeFiles/bench_jacobi1d.dir/bench_jacobi1d.cpp.o.d"
  "bench_jacobi1d"
  "bench_jacobi1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jacobi1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
