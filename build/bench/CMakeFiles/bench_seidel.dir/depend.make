# Empty dependencies file for bench_seidel.
# This may be replaced when dependencies are built.
