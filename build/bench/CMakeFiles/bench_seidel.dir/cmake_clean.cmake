file(REMOVE_RECURSE
  "CMakeFiles/bench_seidel.dir/bench_seidel.cpp.o"
  "CMakeFiles/bench_seidel.dir/bench_seidel.cpp.o.d"
  "bench_seidel"
  "bench_seidel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seidel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
