//===- tests/fuzz_test.cpp - Randomized differential testing --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Generates random affine programs (random nesting, bounds, access offsets
// and statement mixes), runs them through the full pipeline under random
// option sets (tile sizes, wavefronting, separation on/off), and checks
// that interpreting the transformed AST leaves every array bit-identical
// (up to FP reassociation tolerance) to interpreting the original program.
// Every case also re-validates the schedule with the independent legality
// oracle (analyzeSchedule).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <random>

using namespace pluto;

namespace {

/// Deterministic random affine-program generator.
class ProgramGen {
public:
  explicit ProgramGen(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    NumArrays = 1 + pick(2); // 1..3 arrays named A0..A2.
    unsigned TopItems = 1 + pick(1);
    unsigned LoopId = 0;
    for (unsigned I = 0; I < TopItems; ++I)
      emitLoopNest(0, LoopId);
    return Src;
  }

  unsigned numArrays() const { return NumArrays; }

private:
  std::mt19937 Rng;
  std::string Src;
  unsigned NumArrays = 1;
  std::vector<std::string> Iters;

  unsigned pick(unsigned Max) { // Uniform in [0, Max].
    return std::uniform_int_distribution<unsigned>(0, Max)(Rng);
  }

  void indent(unsigned D) { Src.append(2 * D, ' '); }

  std::string freshIter(unsigned Depth, unsigned LoopId) {
    return "i" + std::to_string(Depth) + "_" + std::to_string(LoopId);
  }

  void emitLoopNest(unsigned Depth, unsigned &LoopId) {
    std::string It = freshIter(Depth, LoopId++);
    indent(Depth);
    // Lower bound 0..1; upper N-1 or triangular vs an outer iterator.
    std::string Lb = std::to_string(pick(1));
    std::string Ub = "N - 1";
    if (!Iters.empty() && pick(2) == 0)
      Ub = Iters.back() + " + 2";
    Src += "for (" + It + " = " + Lb + "; " + It + " <= " + Ub + "; " + It +
           "++) {\n";
    Iters.push_back(It);

    unsigned Body = pick(2); // 0: stmt; 1: stmt+stmt; 2: nested loop.
    if (Body == 2 && Depth < 2) {
      emitLoopNest(Depth + 1, LoopId);
      if (pick(1) == 0)
        emitStmt(Depth + 1);
    } else {
      emitStmt(Depth + 1);
      if (Body == 1)
        emitStmt(Depth + 1);
    }

    Iters.pop_back();
    indent(Depth);
    Src += "}\n";
  }

  /// An access with in-bounds-by-construction subscripts: every subscript
  /// is iter + offset with offset in [0, 2], and buffers are allocated with
  /// 3 cells of slack beyond N+2 (the max iterator value is N+1 for the
  /// triangular bounds).
  std::string access(unsigned Rank) {
    std::string A = "A" + std::to_string(pick(NumArrays - 1));
    for (unsigned R = 0; R < Rank; ++R) {
      const std::string &It = Iters[pick(
          static_cast<unsigned>(Iters.size()) - 1)];
      unsigned Off = pick(2);
      A += "[" + It + (Off ? " + " + std::to_string(Off) : "") + "]";
    }
    return A;
  }

  void emitStmt(unsigned Depth) {
    indent(Depth);
    std::string Lhs = access(1);
    std::string Rhs;
    unsigned Terms = 1 + pick(1);
    for (unsigned T = 0; T < Terms; ++T) {
      if (T)
        Rhs += " + ";
      switch (pick(2)) {
      case 0:
        Rhs += access(1);
        break;
      case 1:
        Rhs += "0.5 * " + access(1);
        break;
      default:
        Rhs += access(1) + " * 0.25";
        break;
      }
    }
    static const char *Ops[] = {"=", "+=", "-="};
    Src += Lhs + " " + Ops[pick(2)] + " " + Rhs + ";\n";
  }
};

struct FuzzCase {
  unsigned Seed;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PipelineFuzz, TransformedMatchesOriginal) {
  unsigned Seed = GetParam().Seed;
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  SCOPED_TRACE("seed " + std::to_string(Seed) + " program:\n" + Src);

  std::mt19937 Rng(Seed * 7919 + 1);
  PlutoOptions Opts;
  Opts.Tile = Rng() % 2 == 0;
  Opts.TileSize = 2 + Rng() % 7;
  Opts.Parallelize = Rng() % 2 == 0;
  Opts.WavefrontDegrees = 1 + Rng() % 2;
  Opts.Vectorize = Rng() % 2 == 0;
  Opts.IncludeInputDeps = Rng() % 2 == 0;
  Opts.CG.EnableSeparation = Rng() % 4 != 0;

  auto R = optimizeSource(Src, Opts);
  ASSERT_TRUE(R) << R.error();

  // Independent legality oracle on the found schedule.
  {
    DependenceGraph DG = R->DG;
    Schedule S = R->Sched;
    EXPECT_TRUE(analyzeSchedule(R->program(), DG, S))
        << "schedule fails the independent legality check";
  }

  auto Orig = buildOriginalAst(R->program());
  ASSERT_TRUE(Orig) << Orig.error();

  for (long long N : {5LL, 11LL}) {
    std::map<std::string, std::vector<long long>> Extents;
    for (const ArrayInfo &A : R->program().Arrays)
      Extents[A.Name] = std::vector<long long>(A.Rank, N + 5);
    auto runWith = [&](const CgNode &Ast) {
      Interpreter I;
      I.allocate(R->program(), Extents);
      unsigned S = 1;
      for (auto &[Name, T] : I.Arrays)
        T.fillPattern(S++);
      I.Params = {{"N", N}};
      auto Ok = I.run(R->program(), Ast);
      EXPECT_TRUE(Ok) << (Ok ? "" : Ok.error());
      return I.Arrays;
    };
    auto Want = runWith(**Orig);
    auto Got = runWith(*R->Ast);
    for (const auto &[Name, TW] : Want) {
      const Tensor &TG = Got.at(Name);
      ASSERT_EQ(TW.Data.size(), TG.Data.size());
      for (size_t I = 0; I < TW.Data.size(); ++I)
        ASSERT_NEAR(TW.Data[I], TG.Data[I],
                    1e-9 * (1.0 + std::fabs(TW.Data[I])))
            << Name << "[" << I << "] N=" << N;
    }
  }
}

std::vector<FuzzCase> seeds() {
  std::vector<FuzzCase> C;
  for (unsigned S = 1; S <= 40; ++S)
    C.push_back({S});
  return C;
}

INSTANTIATE_TEST_SUITE_P(Random, PipelineFuzz, ::testing::ValuesIn(seeds()),
                         [](const ::testing::TestParamInfo<FuzzCase> &I) {
                           return "seed" + std::to_string(I.param.Seed);
                         });

// Frontend robustness: mutate valid generated programs with random
// character edits and feed the wreckage to the recovering parser. Whatever
// comes back, the frontend must neither crash nor hang, and every
// diagnostic must carry a well-formed 1-based span into the mutated
// source; a rejected parse must come with at least one error.
TEST(ParserFuzz, MutatedSourcesNeverCrashAndAlwaysHaveSpans) {
  std::mt19937 Rng(20260808);
  auto pick = [&](unsigned Max) {
    return std::uniform_int_distribution<unsigned>(0, Max)(Rng);
  };
  const char Garbage[] = "{}()[];=+-*<>@$!\t\r\n aiN0123";
  for (unsigned Case = 0; Case < 200; ++Case) {
    ProgramGen Gen(Case + 1);
    std::string Src = Gen.generate();
    unsigned Edits = 1 + pick(7);
    for (unsigned E = 0; E < Edits && !Src.empty(); ++E) {
      unsigned At = pick(static_cast<unsigned>(Src.size()) - 1);
      switch (pick(2)) {
      case 0: // Delete a character.
        Src.erase(At, 1);
        break;
      case 1: // Overwrite with garbage.
        Src[At] = Garbage[pick(sizeof(Garbage) - 2)];
        break;
      default: // Insert garbage.
        Src.insert(Src.begin() + At, Garbage[pick(sizeof(Garbage) - 2)]);
        break;
      }
    }
    // Count lines the way the lexer does: LF, CRLF and lone CR all
    // terminate a line.
    unsigned Lines = 1;
    for (size_t I = 0; I < Src.size(); ++I) {
      if (Src[I] == '\n')
        ++Lines;
      else if (Src[I] == '\r' && (I + 1 >= Src.size() || Src[I + 1] != '\n'))
        ++Lines;
    }
    ParseResult R = parseSourceDiags(Src);
    if (!R.ok())
      EXPECT_TRUE(hasErrors(R.Diags)) << "seed " << Case << ":\n" << Src;
    for (const Diagnostic &D : R.Diags) {
      EXPECT_GE(D.Line, 1u) << "seed " << Case;
      EXPECT_LE(D.Line, Lines + 1) << "seed " << Case << ":\n" << Src;
      EXPECT_GE(D.Col, 1u) << "seed " << Case;
      EXPECT_GE(D.Len, 1u) << "seed " << Case;
      EXPECT_FALSE(D.Message.empty()) << "seed " << Case;
    }
  }
}

} // namespace
