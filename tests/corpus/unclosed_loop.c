for (i = 0; i < N; i++) {
  a[i] = 0.0;
