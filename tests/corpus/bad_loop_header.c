for (i = 0; i ! N; i++) {
  a[i] = 0.0;
}
for (j = 0 j < N; j++) {
  b[j] = 1.0;
}
