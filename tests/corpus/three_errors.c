for (i = 0; i < N; i++) {
  a[i] = ;
  b[i] @ 1.0;
  c[i] = a[i] +;
}
