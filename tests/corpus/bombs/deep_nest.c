/* Resource bomb: a 10-deep loop nest whose single statement couples every
 * iterator. Dependence analysis and scheduling work on ~20-variable
 * constraint systems, so Fourier-Motzkin projection generates row counts
 * that explode combinatorially. Compiling this without a budget takes
 * unreasonable time/memory; the regression tests pin that a small
 * --max-work budget turns it into a fast, clean resource-exhausted
 * failure (exit code 4). Lives under bombs/ (not corpus/ proper) so the
 * sanitizer's bad-input sweep, which expects exit 2, skips it. */
for (i0 = 0; i0 < N; i0++) {
  for (i1 = 0; i1 < N; i1++) {
    for (i2 = 0; i2 < N; i2++) {
      for (i3 = 0; i3 < N; i3++) {
        for (i4 = 0; i4 < N; i4++) {
          for (i5 = 0; i5 < N; i5++) {
            for (i6 = 0; i6 < N; i6++) {
              for (i7 = 0; i7 < N; i7++) {
                for (i8 = 0; i8 < N; i8++) {
                  for (i9 = 0; i9 < N; i9++) {
                    a[i0 + i9][i1 + i8] = a[i2 + i7][i3 + i6] + a[i4 + i5][i0 + i1];
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}
