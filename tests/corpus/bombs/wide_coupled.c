/* Resource bomb: 24 statements in one 3-deep nest, every one reading its
 * predecessors' arrays with shifted accesses. The dependence census is
 * quadratic in statements (~576 pairs, each a parametric ILP) and the
 * scheduler's Farkas systems couple all 24 statements, so lexmin pivot
 * counts blow up. Calibration: compiles unbudgeted in a few seconds but
 * burns well over 20000 work units (and over 1 MiB of tracked transient
 * memory) doing it - the regressions pin that --max-work=20000 and a
 * 1 MiB memory budget both stop it with resource-exhausted (exit 4)
 * deterministically, long before any wall-clock limit could. */
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      a0[i][j] = a0[i - 1][j] + a0[i][j - 1];
      a1[i][j] = a0[i][j] + a1[i - 1][j + 1];
      a2[i][j] = a1[i][j] + a2[i][j - 1];
      a3[i][j] = a2[i - 1][j - 1] + a3[i][j - 1];
      a4[i][j] = a3[i][j] + a4[i - 1][j];
      a5[i][j] = a4[i][j - 1] + a5[i - 1][j];
      a6[i][j] = a5[i][j] + a6[i][j - 1];
      a7[i][j] = a6[i - 1][j + 1] + a7[i][j - 1];
      a8[i][j] = a7[i][j] + a8[i - 1][j];
      a9[i][j] = a8[i][j - 1] + a9[i - 1][j];
      a10[i][j] = a9[i][j] + a10[i][j - 1];
      a11[i][j] = a10[i - 1][j] + a11[i][j - 1];
      a12[i][j] = a11[i][j] + a12[i - 1][j];
      a13[i][j] = a12[i][j - 1] + a13[i - 1][j + 1];
      a14[i][j] = a13[i][j] + a14[i][j - 1];
      a15[i][j] = a14[i - 1][j] + a15[i][j - 1];
      a16[i][j] = a15[i][j] + a16[i - 1][j];
      a17[i][j] = a16[i][j - 1] + a17[i - 1][j];
      a18[i][j] = a17[i][j] + a18[i][j - 1];
      a19[i][j] = a18[i - 1][j + 1] + a19[i][j - 1];
      a20[i][j] = a19[i][j] + a20[i - 1][j];
      a21[i][j] = a20[i][j - 1] + a21[i - 1][j];
      a22[i][j] = a21[i][j] + a22[i][j - 1];
      a23[i][j] = a22[i - 1][j] + a23[i][j - 1] + a0[i + 1][j + 1];
    }
  }
}
