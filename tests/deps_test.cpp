//===- tests/deps_test.cpp - Dependence analysis unit tests ---------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "deps/Dependences.h"

#include "driver/Kernels.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

Program parse(const char *Src) {
  auto P = parseSource(Src);
  EXPECT_TRUE(P) << (P ? "" : P.error());
  Program Prog = P->Prog;
  for (const std::string &Param : Prog.ParamNames)
    Prog.addContextBound(Param, 4); // Parameters are "large" (paper Sec. 7).
  return Prog;
}

unsigned countDeps(const DependenceGraph &G, DepKind K) {
  unsigned N = 0;
  for (const Dependence &D : G.Deps)
    N += D.Kind == K;
  return N;
}

bool hasDep(const DependenceGraph &G, DepKind K, unsigned Src, unsigned Dst,
            unsigned Level) {
  for (const Dependence &D : G.Deps)
    if (D.Kind == K && D.SrcStmt == Src && D.DstStmt == Dst &&
        D.CarryLevel == Level)
      return true;
  return false;
}

TEST(DepsTest, MatMulSelfDeps) {
  Program Prog = parse(kernels::MatMul);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // c[i][j] read&write: the access equality pins i and j, so the only
  // carrying loop is k (level 3): one flow, one anti, one output.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 3));
  EXPECT_TRUE(hasDep(G, DepKind::Anti, 0, 0, 3));
  EXPECT_TRUE(hasDep(G, DepKind::Output, 0, 0, 3));
  EXPECT_FALSE(hasDep(G, DepKind::Flow, 0, 0, 1));
  EXPECT_FALSE(hasDep(G, DepKind::Flow, 0, 0, 2));
  EXPECT_EQ(G.numLegalityDeps(), 3u);
}

TEST(DepsTest, MatMulInputDeps) {
  Program Prog = parse(kernels::MatMul);
  DependenceGraph G = computeDependences(Prog);
  // a[i][k] and b[k][j] self-RAR exist (reuse along j and i respectively).
  EXPECT_GE(countDeps(G, DepKind::Input), 2u);
}

TEST(DepsTest, Sweep2DUniformDeps) {
  Program Prog = parse(kernels::Sweep2D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // a[i][j] = a[i-1][j] + a[i][j-1]: flow carried at level 1 (from i-1) and
  // at level 2 (from j-1). Reads only touch lexically earlier cells, so no
  // anti/output dependences exist.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 1));
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 2));
  EXPECT_EQ(countDeps(G, DepKind::Anti), 0u);
  EXPECT_EQ(countDeps(G, DepKind::Output), 0u);
  EXPECT_EQ(G.numLegalityDeps(), 2u);
}

TEST(DepsTest, Jacobi1DInterStatement) {
  Program Prog = parse(kernels::Jacobi1D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // S0 writes b, S1 reads b in the same time step: loop-independent flow.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 1, 0));
  // S1 writes a, S0 reads a in a later time step: flow carried at level 1.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 1, 0, 1));
  // S0 reads a then S1 overwrites it: anti dependence exists.
  EXPECT_GE(countDeps(G, DepKind::Anti), 1u);
  // The two statements form one SCC (producer-consumer cycle).
  EXPECT_EQ(G.numSccs(2), 1u);
}

TEST(DepsTest, JacobiDepPolyhedronIsExact) {
  Program Prog = parse(kernels::Jacobi1D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // The loop-independent S0 -> S1 flow on b must force i_s == j_t: check
  // the polyhedron implies it (columns: t_s, i_s, t_t, j_t, T, N, 1).
  for (const Dependence &D : G.Deps) {
    if (!(D.Kind == DepKind::Flow && D.SrcStmt == 0 && D.DstStmt == 1 &&
          D.CarryLevel == 0))
      continue;
    EXPECT_TRUE(D.Poly.impliesIneq({BigInt(0), BigInt(1), BigInt(0),
                                    BigInt(-1), BigInt(0), BigInt(0),
                                    BigInt(0)}));
    EXPECT_TRUE(D.Poly.impliesIneq({BigInt(0), BigInt(-1), BigInt(0),
                                    BigInt(1), BigInt(0), BigInt(0),
                                    BigInt(0)}));
    return;
  }
  FAIL() << "loop-independent flow S0 -> S1 not found";
}

TEST(DepsTest, MVTOnlyInterStatementDepIsInput) {
  Program Prog = parse(kernels::MVT);
  DependenceGraph G = computeDependences(Prog);
  // Cross-statement legality deps must not exist (x1/x2/y1/y2 disjoint);
  // the RAR on a is the only S0 <-> S1 edge (paper Section 7, MVT).
  bool SawCrossInput = false;
  for (const Dependence &D : G.Deps) {
    if (D.SrcStmt == D.DstStmt)
      continue;
    EXPECT_EQ(D.Kind, DepKind::Input)
        << depKindName(D.Kind) << " S" << D.SrcStmt << "->S" << D.DstStmt;
    SawCrossInput = true;
  }
  EXPECT_TRUE(SawCrossInput);
  // Without legality edges between them the statements are separate SCCs.
  EXPECT_EQ(G.numSccs(2), 2u);
}

TEST(DepsTest, SeidelDeps) {
  Program Prog = parse(kernels::Seidel2D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // In-place 9-point stencil: flow deps carried at all three levels.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 1));
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 2));
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 0, 0, 3));
}

TEST(DepsTest, FdtdHasInterStatementFlow) {
  Program Prog = parse(kernels::Fdtd2D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  // ey written by S0/S1, read by S3; hz written by S3, read by S1/S2.
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 1, 3, 0));
  EXPECT_TRUE(hasDep(G, DepKind::Flow, 3, 1, 1));
  // All four statements end up in one SCC through the t-carried cycle.
  EXPECT_EQ(G.numSccs(4), 1u);
}

TEST(DepsTest, IndependentStatementsNoDeps) {
  Program Prog =
      parse("for (i = 0; i < N; i++) { a[i] = 1.0; }\n"
            "for (i = 0; i < N; i++) { b[i] = 2.0; }");
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  EXPECT_EQ(G.Deps.size(), 0u);
  EXPECT_EQ(G.numSccs(2), 2u);
}

TEST(DepsTest, SequentialReusePair) {
  // S0 writes c[], S1 reads it: classic producer-consumer.
  Program Prog = parse("for (i = 0; i < N; i++) { c[i] = a[i]; }\n"
                       "for (j = 0; j < N; j++) { d[j] = c[j]; }");
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  ASSERT_EQ(G.Deps.size(), 1u);
  EXPECT_EQ(G.Deps[0].Kind, DepKind::Flow);
  EXPECT_EQ(G.Deps[0].CarryLevel, 0u); // No common loops.
  EXPECT_EQ(G.numSccs(2), 2u);
}

TEST(DepsTest, SccTopologicalOrder) {
  // S0 -> S1 -> S2 chain: SCC ids must be 0, 1, 2.
  Program Prog = parse("for (i = 0; i < N; i++) { a[i] = 1.0; }\n"
                       "for (i = 0; i < N; i++) { b[i] = a[i]; }\n"
                       "for (i = 0; i < N; i++) { c[i] = b[i]; }");
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  std::vector<unsigned> Ids = G.sccIds(3);
  EXPECT_EQ(Ids, (std::vector<unsigned>{0, 1, 2}));
}

TEST(DepsTest, SatisfiedDepsLeaveScc) {
  Program Prog = parse(kernels::Jacobi1D);
  DepOptions Opts;
  Opts.IncludeInputDeps = false;
  DependenceGraph G = computeDependences(Prog, Opts);
  EXPECT_EQ(G.numSccs(2), 1u);
  for (Dependence &D : G.Deps)
    D.SatisfiedAtRow = 0; // Pretend everything is satisfied.
  EXPECT_EQ(G.numSccs(2), 2u);
}

TEST(DepsTest, ParallelAnalysisIsDeterministic) {
  // The OpenMP worklist must return dependences in the same order and with
  // identical polyhedra regardless of thread count, on every kernel.
  struct NamedKernel {
    const char *Name;
    const char *Src;
  };
  const NamedKernel All[] = {
      {"jacobi1d", kernels::Jacobi1D}, {"fdtd2d", kernels::Fdtd2D},
      {"lu", kernels::LU},             {"mvt", kernels::MVT},
      {"seidel2d", kernels::Seidel2D}, {"matmul", kernels::MatMul},
      {"sweep2d", kernels::Sweep2D},   {"jacobi2d", kernels::Jacobi2D},
      {"gemver", kernels::Gemver},     {"trmm", kernels::Trmm},
      {"syrk", kernels::Syrk},         {"doitgen", kernels::Doitgen},
      {"atax", kernels::Atax},
  };
  for (const NamedKernel &K : All) {
    Program Prog = parse(K.Src);
    DepOptions Serial, Parallel;
    Serial.NumThreads = 1;
    Parallel.NumThreads = 4;
    DependenceGraph GS = computeDependences(Prog, Serial);
    DependenceGraph GP = computeDependences(Prog, Parallel);
    ASSERT_EQ(GS.Deps.size(), GP.Deps.size()) << K.Name;
    for (size_t I = 0; I < GS.Deps.size(); ++I) {
      const Dependence &A = GS.Deps[I];
      const Dependence &B = GP.Deps[I];
      EXPECT_EQ(A.SrcStmt, B.SrcStmt) << K.Name << " dep " << I;
      EXPECT_EQ(A.DstStmt, B.DstStmt) << K.Name << " dep " << I;
      EXPECT_EQ(A.SrcAcc, B.SrcAcc) << K.Name << " dep " << I;
      EXPECT_EQ(A.DstAcc, B.DstAcc) << K.Name << " dep " << I;
      EXPECT_EQ(A.Kind, B.Kind) << K.Name << " dep " << I;
      EXPECT_EQ(A.CarryLevel, B.CarryLevel) << K.Name << " dep " << I;
      // Bit-identical polyhedra: same matrices row for row.
      EXPECT_EQ(A.Poly.ineqs(), B.Poly.ineqs()) << K.Name << " dep " << I;
      EXPECT_EQ(A.Poly.eqs(), B.Poly.eqs()) << K.Name << " dep " << I;
    }
  }
}

} // namespace
