//===- tests/observe_test.cpp - Diagnostics subsystem tests ---------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Covers src/observe (PassStats + Trace collection, JSON rendering, the
// zero-overhead-off contract) and the driver bugfix regressions that ride
// on the same machinery: identical context for original/transformed ASTs
// and per-band parallel-pragma placement.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "observe/PassStats.h"
#include "observe/Trace.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

/// Counts loops carrying a parallel pragma in the whole tree.
unsigned countParallelLoops(const CgNode &N) {
  unsigned C = (N.K == CgNode::Kind::Loop && N.Parallel) ? 1 : 0;
  for (const CgNodePtr &Ch : N.Children)
    if (Ch)
      C += countParallelLoops(*Ch);
  return C;
}

/// Maximum number of parallel-pragma loops on any root-to-leaf path.
unsigned maxParallelOnPath(const CgNode &N) {
  unsigned Here = (N.K == CgNode::Kind::Loop && N.Parallel) ? 1 : 0;
  unsigned Deepest = 0;
  for (const CgNodePtr &Ch : N.Children)
    if (Ch)
      Deepest = std::max(Deepest, maxParallelOnPath(*Ch));
  return Here + Deepest;
}

std::string emitWithDefaultExtents(const PlutoResult &R) {
  EmitOptions EO;
  std::string DefaultExtent =
      R.program().ParamNames.empty() ? "1024" : R.program().ParamNames[0];
  for (const ArrayInfo &A : R.program().Arrays)
    EO.Extents[A.Name] = std::vector<std::string>(A.Rank, DefaultExtent);
  EO.SymConsts = R.Parsed.SymConsts;
  return emitC(R.program(), *R.Ast, EO);
}

TEST(PassStatsTest, DisabledCollectsNothing) {
  ASSERT_EQ(activeStats(), nullptr);
  auto R = optimizeSource(kernels::MatMul, PlutoOptions());
  ASSERT_TRUE(R) << R.error();
  // Nothing was installed, so a fresh sink stays all-zero.
  PassStats S;
  for (unsigned C = 0; C < static_cast<unsigned>(Counter::NumCounters); ++C)
    EXPECT_EQ(S.get(static_cast<Counter>(C)), 0u);
  for (unsigned P = 0; P < static_cast<unsigned>(Pass::NumPasses); ++P)
    EXPECT_EQ(S.seconds(static_cast<Pass>(P)), 0.0);
}

TEST(PassStatsTest, FullPipelinePopulatesEveryLayer) {
  PassStats S;
  Trace T;
  setActiveStats(&S);
  setActiveTrace(&T);
  auto R = optimizeSource(kernels::MatMul, PlutoOptions());
  setActiveStats(nullptr);
  setActiveTrace(nullptr);
  ASSERT_TRUE(R) << R.error();

  // Timers: every pass ran and took measurable (steady_clock) time.
  for (Pass P : {Pass::Parse, Pass::Deps, Pass::Schedule, Pass::Tile,
                 Pass::Codegen})
    EXPECT_GT(S.seconds(P), 0.0) << passName(P);

  // One counter from each instrumented layer.
  EXPECT_GT(S.get(Counter::LexMinCalls), 0u);
  EXPECT_GT(S.get(Counter::SimplexPivots), 0u);
  EXPECT_GT(S.get(Counter::FmEliminations), 0u);
  EXPECT_GT(S.get(Counter::FmRowsGenerated), 0u);
  EXPECT_GT(S.get(Counter::EmptinessTests), 0u);
  EXPECT_GT(S.get(Counter::DepCandidates), 0u);
  EXPECT_GT(S.get(Counter::HyperplanesFound), 0u);
  EXPECT_GT(S.get(Counter::BandsTiled), 0u);
  EXPECT_GT(S.get(Counter::LoopsParallel), 0u);

  // Matmul: 3 hyperplanes, no cuts; deps are flow (c) + inputs (a, b).
  EXPECT_EQ(S.get(Counter::HyperplanesFound), 3u);
  EXPECT_EQ(S.get(Counter::SccCuts), 0u);
  EXPECT_GT(S.get(Counter::DepFlow), 0u);
  EXPECT_GT(S.get(Counter::DepInput), 0u);

  // The trace recorded hyperplanes and tiling decisions.
  bool SawTransform = false, SawTile = false;
  for (const TraceEvent &E : T.events()) {
    SawTransform |= E.Stage == "transform";
    SawTile |= E.Stage == "tile";
  }
  EXPECT_TRUE(SawTransform);
  EXPECT_TRUE(SawTile);
}

TEST(PassStatsTest, ClearResets) {
  PassStats S;
  setActiveStats(&S);
  count(Counter::LexMinCalls, 7);
  countDepAtLevel(2);
  setActiveStats(nullptr);
  EXPECT_EQ(S.get(Counter::LexMinCalls), 7u);
  S.clear();
  EXPECT_EQ(S.get(Counter::LexMinCalls), 0u);
  EXPECT_EQ(S.toJson().find("\"lexmin_calls\": 7"), std::string::npos);
}

TEST(PassStatsTest, JsonHasDocumentedShape) {
  PassStats S;
  Trace T;
  setActiveStats(&S);
  setActiveTrace(&T);
  auto R = optimizeSource(kernels::Jacobi1D, PlutoOptions());
  setActiveStats(nullptr);
  setActiveTrace(nullptr);
  ASSERT_TRUE(R) << R.error();

  std::string J = S.toJson(&T);
  // Top-level members.
  EXPECT_NE(J.find("\"passes\""), std::string::npos);
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"deps_by_level\""), std::string::npos);
  EXPECT_NE(J.find("\"trace\""), std::string::npos);
  // Every pass key with a seconds member.
  for (unsigned P = 0; P < static_cast<unsigned>(Pass::NumPasses); ++P)
    EXPECT_NE(J.find(std::string("\"") + passName(static_cast<Pass>(P)) +
                     "\": {\"seconds\": "),
              std::string::npos);
  // Every counter key.
  for (unsigned C = 0; C < static_cast<unsigned>(Counter::NumCounters); ++C)
    EXPECT_NE(J.find(std::string("\"") +
                     counterName(static_cast<Counter>(C)) + "\": "),
              std::string::npos);
  // Without a trace the member is absent.
  EXPECT_EQ(S.toJson().find("\"trace\""), std::string::npos);
}

TEST(TraceTest, JsonEscapesMessages) {
  Trace T;
  T.record("test", "a \"quoted\"\nmessage\\");
  std::string J = T.toJson();
  EXPECT_NE(J.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(J.find("\\n"), std::string::npos);
  EXPECT_NE(J.find("\\\\"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Regression: buildOriginalAst must see the same ParamMin context as
// optimizeSource (it used to build the reference AST unbounded).
//===----------------------------------------------------------------------===//

TEST(DriverContextTest, OriginalAstUsesParamMinContext) {
  // min(N, 3) in an upper bound: under the default context N >= 4 the
  // parametric bound is redundant and codegen drops it; unbounded it must
  // stay. This makes the applied context directly visible in the AST.
  const char *Src = "for (i = 0; i < min(N, 3); i++) { x[i] = x[i] + 1.0; }";
  auto P = parseSource(Src);
  ASSERT_TRUE(P) << P.error();

  PlutoOptions Opts;
  auto DefaultAst = buildOriginalAst(P->Prog, Opts);
  ASSERT_TRUE(DefaultAst) << DefaultAst.error();

  // Reference: the same build from a program bounded by hand.
  Program Bounded = P->Prog;
  for (const std::string &Name : Bounded.ParamNames)
    Bounded.addContextBound(Name, Opts.ParamMin);
  auto BoundedAst = buildOriginalAst(Bounded, Opts);
  ASSERT_TRUE(BoundedAst) << BoundedAst.error();

  // Control: a genuinely unbounded identity build (the old behavior).
  Schedule Ident = identitySchedule(P->Prog);
  Scop Sc = buildScop(P->Prog, Ident);
  auto UnboundedAst = generateAst(Sc, CodeGenOptions());
  ASSERT_TRUE(UnboundedAst) << UnboundedAst.error();
  simplifyAst(*UnboundedAst);

  EmitOptions EO;
  EO.Extents["x"] = {"N"};
  std::string Default = emitC(P->Prog, **DefaultAst, EO);
  std::string Ref = emitC(Bounded, **BoundedAst, EO);
  std::string Unbounded = emitC(P->Prog, **UnboundedAst, EO);

  // The kernel discriminates (the context visibly simplifies the bound)...
  ASSERT_NE(Ref, Unbounded);
  // ...and buildOriginalAst is on the bounded side of that divide.
  EXPECT_EQ(Default, Ref);
}

TEST(DriverContextTest, OriginalAstIdempotentOnBoundedPrograms) {
  // suite_test passes R->program(), which already carries the context;
  // re-applying it must not change the result (duplicates normalize away).
  PlutoOptions Opts;
  auto R = optimizeSource(kernels::Jacobi1D, Opts);
  ASSERT_TRUE(R) << R.error();
  auto Once = buildOriginalAst(R->program(), Opts);
  ASSERT_TRUE(Once) << Once.error();

  Program Twice = R->program();
  for (const std::string &Name : Twice.ParamNames)
    Twice.addContextBound(Name, Opts.ParamMin);
  auto Again = buildOriginalAst(Twice, Opts);
  ASSERT_TRUE(Again) << Again.error();

  EmitOptions EO;
  EO.Extents["a"] = {"N"};
  EO.Extents["b"] = {"N"};
  EO.SymConsts = R->Parsed.SymConsts;
  EXPECT_EQ(emitC(R->program(), **Once, EO), emitC(Twice, **Again, EO));
}

//===----------------------------------------------------------------------===//
// Regression: parallel-pragma placement is per band, not one global pick.
//===----------------------------------------------------------------------===//

TEST(DriverPragmaTest, MultiBandForcedScheduleGetsPragmaPerBand) {
  // Two independent single-loop statements under a forced schedule that
  // puts them in different bands separated by a scalar row:
  //   row 0: S0 -> i, S1 -> 0   (band 0, parallel)
  //   row 1: S0 -> 0, S1 -> 1   (scalar)
  //   row 2: S0 -> 0, S1 -> j   (band 1, parallel)
  // In S1's subtree row 0 is equality-determined (a Let, not a loop), so a
  // single global pick at row 0 would leave S1's j loop without a pragma.
  const char *Src = "for (i = 0; i < N; i++) { x[i] = x[i] + 1.0; }\n"
                    "for (j = 0; j < N; j++) { y[j] = y[j] + 2.0; }\n";
  auto P = parseSource(Src);
  ASSERT_TRUE(P) << P.error();
  DepOptions DO;
  DependenceGraph DG = computeDependences(P->Prog, DO);

  Schedule Sched;
  Sched.StmtRows.resize(2);
  // S0: [coeff_i | c0] per row.
  Sched.StmtRows[0] = IntMatrix(2);
  Sched.StmtRows[0].addRow({BigInt(1), BigInt(0)}); // i
  Sched.StmtRows[0].addRow({BigInt(0), BigInt(0)}); // 0
  Sched.StmtRows[0].addRow({BigInt(0), BigInt(0)}); // 0
  Sched.StmtRows[1] = IntMatrix(2);
  Sched.StmtRows[1].addRow({BigInt(0), BigInt(0)}); // 0
  Sched.StmtRows[1].addRow({BigInt(0), BigInt(1)}); // 1
  Sched.StmtRows[1].addRow({BigInt(1), BigInt(0)}); // j
  RowInfo R0;
  R0.IsScalar = false;
  R0.IsParallel = true;
  R0.BandId = 0;
  RowInfo R1;
  R1.IsScalar = true;
  R1.BandId = -1;
  RowInfo R2;
  R2.IsScalar = false;
  R2.IsParallel = true;
  R2.BandId = 1;
  Sched.Rows = {R0, R1, R2};

  PlutoOptions Opts;
  Opts.Tile = false;
  Opts.Vectorize = false;
  auto R = lowerSchedule(std::move(*P), std::move(DG), std::move(Sched),
                         Opts);
  ASSERT_TRUE(R) << R.error();

  // Both statements' loops carry a pragma, on disjoint paths.
  EXPECT_EQ(countParallelLoops(*R->Ast), 2u);
  EXPECT_EQ(maxParallelOnPath(*R->Ast), 1u);
  std::string Code = emitWithDefaultExtents(*R);
  size_t FirstPragma = Code.find("#pragma omp parallel for");
  ASSERT_NE(FirstPragma, std::string::npos);
  EXPECT_NE(Code.find("#pragma omp parallel for", FirstPragma + 1),
            std::string::npos);
}

TEST(DriverPragmaTest, NestedBandPicksCollapseToOutermostPragma) {
  // Tiled matmul has a tile band and a point band, each with parallel
  // rows. Per-band picks plus the nested-pragma suppression must yield
  // exactly one `parallel for` on any path (no nested parallel regions).
  auto R = optimizeSource(kernels::MatMul, PlutoOptions());
  ASSERT_TRUE(R) << R.error();
  EXPECT_GE(countParallelLoops(*R->Ast), 1u);
  EXPECT_EQ(maxParallelOnPath(*R->Ast), 1u);
}

TEST(DriverPragmaTest, ExplicitPragmaRowsAreRespected) {
  // A caller-provided ParallelPragmaRows set bypasses the per-band picks.
  PlutoOptions Opts;
  Opts.CG.ParallelPragmaRows = {0};
  Opts.Tile = false;
  Opts.Vectorize = false;
  auto R = optimizeSource(kernels::MatMul, Opts);
  ASSERT_TRUE(R) << R.error();
  EXPECT_EQ(countParallelLoops(*R->Ast), 1u);
}

} // namespace
