//===- tests/tune_test.cpp - Autotuner (tune::explore) tests --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "tune/Tuner.h"

#include "driver/Kernels.h"
#include "observe/PassStats.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#ifndef PLUTOPP_EXAMPLES_DIR
#error "PLUTOPP_EXAMPLES_DIR must be defined by the build"
#endif

using namespace pluto;
using namespace pluto::tune;

namespace {

/// A small static space (no JIT, no compiler needed): three L1 tiles by
/// two wavefront degrees plus the implicit base variant.
SearchSpace smallSpace() {
  SearchSpace SS;
  SS.TileSizes = {0, 16, 32};
  SS.L2TileSizes = {0};
  SS.WavefrontDegrees = {0, 1};
  return SS;
}

TuneOptions staticOptions() {
  TuneOptions TO;
  TO.RunMeasurements = false;
  return TO;
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(TuneSpecTest, ParsesAxesAndScalars) {
  SearchSpace SS;
  TuneOptions TO;
  auto R = parseSpec("tile=0,16;l2=0,8;wave=0,2;fuse=0,1;vec=1;n=32;reps=5;"
                     "warmup=2;threads=4;max-measure=3;measure=0",
                     SS, TO);
  ASSERT_TRUE(R) << R.error();
  EXPECT_EQ(SS.TileSizes, (std::vector<unsigned>{0, 16}));
  EXPECT_EQ(SS.L2TileSizes, (std::vector<unsigned>{0, 8}));
  EXPECT_EQ(SS.WavefrontDegrees, (std::vector<unsigned>{0, 2}));
  EXPECT_EQ(SS.Fusion, (std::vector<bool>{false, true}));
  EXPECT_EQ(SS.Vectorize, (std::vector<bool>{true}));
  EXPECT_EQ(TO.ProblemSize, 32u);
  EXPECT_EQ(TO.Measure.Reps, 5u);
  EXPECT_EQ(TO.Measure.Warmup, 2u);
  EXPECT_EQ(TO.Measure.Threads, 4u);
  EXPECT_EQ(TO.MaxMeasure, 3u);
  EXPECT_FALSE(TO.RunMeasurements);
}

TEST(TuneSpecTest, EmptySpecKeepsDefaults) {
  SearchSpace SS;
  TuneOptions TO;
  ASSERT_TRUE(parseSpec("", SS, TO));
  EXPECT_EQ(SS.TileSizes, SearchSpace().TileSizes);
  EXPECT_TRUE(TO.RunMeasurements);
}

TEST(TuneSpecTest, RejectsMalformedSpecs) {
  SearchSpace SS;
  TuneOptions TO;
  EXPECT_FALSE(parseSpec("tile", SS, TO));          // not key=value
  EXPECT_FALSE(parseSpec("bogus=1", SS, TO));       // unknown key
  EXPECT_FALSE(parseSpec("tile=8,x", SS, TO));      // malformed number
  EXPECT_FALSE(parseSpec("tile=", SS, TO));         // empty axis entry
  EXPECT_FALSE(parseSpec("fuse=2", SS, TO));        // bool axis out of range
  EXPECT_FALSE(parseSpec("measure=2", SS, TO));     // measure is 0|1
  EXPECT_FALSE(parseSpec("n=0", SS, TO));           // problem size >= 1
  EXPECT_FALSE(parseSpec("reps=0", SS, TO));        // at least one rep
  EXPECT_FALSE(parseSpec("max-measure=0", SS, TO)); // front must be nonempty
  // Each failure reports which entry was bad.
  auto R = parseSpec("wave=1,zap", SS, TO);
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().find("zap"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Enumeration + fingerprint dedup
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, DedupCollapsesAliasedPoints) {
  // Base defaults are tiled 32 + 1-d wavefront, so the (tile=32, wave=1)
  // cross-product point aliases the implicit base variant 0.
  TuneResult R = explore(kernels::MatMul, smallSpace(), staticOptions());
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_EQ(R.Enumerated, 7u); // base + 3 tiles x 2 waves
  EXPECT_EQ(R.Distinct, 6u);
  ASSERT_EQ(R.Variants.size(), 7u);

  // Exactly one duplicate, and it points at the base with an identical
  // fingerprint; duplicates are never separately compiled or scored.
  unsigned Dups = 0;
  for (const TuneVariant &V : R.Variants)
    if (V.DuplicateOf >= 0) {
      ++Dups;
      EXPECT_EQ(V.DuplicateOf, 0);
      EXPECT_EQ(V.Fingerprint, R.Variants[0].Fingerprint);
      EXPECT_FALSE(V.Measured);
      EXPECT_TRUE(V.Key.empty());
    }
  EXPECT_EQ(Dups, 1u);
}

TEST(TuneExploreTest, RedundantCombinationsShareOneFingerprint) {
  // An L2 size under an untiled variant is normalized away: both untiled
  // points collapse onto one canonical variant (the aliasing bugfix).
  SearchSpace SS;
  SS.TileSizes = {0};
  SS.L2TileSizes = {0, 8};
  SS.WavefrontDegrees = {0};
  TuneResult R = explore(kernels::MatMul, SS, staticOptions());
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_EQ(R.Enumerated, 3u); // base + 2 points
  EXPECT_EQ(R.Distinct, 2u);   // base, untiled (l2 collapsed)
  EXPECT_EQ(R.Variants[1].Fingerprint, R.Variants[2].Fingerprint);
}

//===----------------------------------------------------------------------===//
// Determinism of the static search trace
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, StaticTraceIsByteReproducible) {
  // With measurements off nothing in the trace depends on a clock: two
  // identical searches must serialize to the identical document.
  TuneResult A = explore(kernels::MatMul, smallSpace(), staticOptions());
  TuneResult B = explore(kernels::MatMul, smallSpace(), staticOptions());
  ASSERT_EQ(A.Status, StatusCode::Ok) << A.Error;
  EXPECT_EQ(A.traceJson(), B.traceJson());
  EXPECT_NE(A.traceJson().find("\"tune_schema\": 1"), std::string::npos);
  // The winner is the best-scored compiling variant, and its artifacts
  // ride along.
  ASSERT_NE(A.WinnerId, -1);
  EXPECT_FALSE(A.WinnerC.empty());
  EXPECT_FALSE(A.WinnerKey.empty());
  EXPECT_EQ(A.WinnerId, B.WinnerId);
}

//===----------------------------------------------------------------------===//
// Pruning
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, PruneFrontIsMonotoneInMaxMeasure) {
  // Growing the front can only admit variants, never evict one: the
  // non-pruned set at MaxMeasure=2 is contained in the one at 4.
  auto FrontIds = [](const TuneResult &R) {
    std::set<unsigned> Ids;
    for (const TuneVariant &V : R.Variants)
      if (V.Status == StatusCode::Ok && V.DuplicateOf < 0 && !V.Pruned)
        Ids.insert(V.Id);
    return Ids;
  };
  TuneOptions TO = staticOptions();
  TO.MaxMeasure = 2;
  TuneResult Small = explore(kernels::MatMul, smallSpace(), TO);
  TO.MaxMeasure = 4;
  TuneResult Large = explore(kernels::MatMul, smallSpace(), TO);
  ASSERT_EQ(Small.Status, StatusCode::Ok) << Small.Error;
  ASSERT_EQ(Large.Status, StatusCode::Ok) << Large.Error;
  std::set<unsigned> SmallFront = FrontIds(Small), LargeFront = FrontIds(Large);
  EXPECT_TRUE(std::includes(LargeFront.begin(), LargeFront.end(),
                            SmallFront.begin(), SmallFront.end()));
  EXPECT_LE(SmallFront.size(), LargeFront.size());
  // The base variant always rides along in the front, whatever its rank.
  EXPECT_EQ(SmallFront.count(0), 1u);
  EXPECT_EQ(Small.Pruned + SmallFront.size(), Small.Distinct);
}

//===----------------------------------------------------------------------===//
// Per-variant failure isolation
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, InjectedCompileFaultSkipsOneVariantOnly) {
  ASSERT_TRUE(FaultInjector::arm("tune.compile:2"));
  TuneResult R = explore(kernels::MatMul, smallSpace(), staticOptions());
  FaultInjector::disarm();
  // The search survives; exactly the second distinct variant is lost.
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  unsigned Injected = 0;
  for (const TuneVariant &V : R.Variants)
    if (V.Error.find("injected fault") != std::string::npos) {
      ++Injected;
      EXPECT_EQ(V.Status, StatusCode::ScheduleAbort);
      EXPECT_FALSE(V.Measured);
    }
  EXPECT_EQ(Injected, 1u);
  EXPECT_EQ(R.Errors, 1u);
  ASSERT_NE(R.WinnerId, -1);
  EXPECT_EQ(R.Variants[R.WinnerId].Status, StatusCode::Ok);
}

TEST(TuneExploreTest, SourceErrorFailsTheWholeSearch) {
  TuneResult R = explore("for (i = 0; i < N; i++) { a[i] = ; }", smallSpace(),
                         staticOptions());
  EXPECT_EQ(R.Status, StatusCode::SourceError);
  EXPECT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.WinnerId, -1);
  EXPECT_EQ(R.exitCode(), exitCodeFor(StatusCode::SourceError));
}

TEST(TuneExploreTest, TinyBudgetDegradesToResourceExhausted) {
  // A one-work-unit budget trips inside the shared frontend: every variant
  // is resource-exhausted and the search reports that taxonomy instead of
  // hanging or crashing.
  TuneOptions TO = staticOptions();
  TO.Budget.MaxWorkUnits = 1;
  TuneResult R = explore(kernels::MatMul, smallSpace(), TO);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_EQ(R.WinnerId, -1);
  for (const TuneVariant &V : R.Variants)
    if (V.DuplicateOf < 0) {
      EXPECT_EQ(V.Status, StatusCode::ResourceExhausted) << V.Id;
    }
}

//===----------------------------------------------------------------------===//
// Observability
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, CountersFlowIntoPassStats) {
  PassStats S;
  setActiveStats(&S);
  TuneResult R = explore(kernels::MatMul, smallSpace(), staticOptions());
  setActiveStats(nullptr);
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_EQ(S.get(Counter::TuneVariantsEnumerated), R.Enumerated);
  EXPECT_EQ(S.get(Counter::TuneVariantsPruned), R.Pruned);
  EXPECT_EQ(S.get(Counter::TuneVariantsMeasured), R.Measured);
  EXPECT_EQ(S.get(Counter::TuneVariantsErrors), R.Errors);
  EXPECT_EQ(R.Measured, 0u); // static mode never measures
}

//===----------------------------------------------------------------------===//
// End-to-end measured search (needs the system C compiler)
//===----------------------------------------------------------------------===//

TEST(TuneExploreTest, MeasuredWinnerPassesDifferentialGate) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  TuneOptions TO;
  TO.ProblemSize = 12;
  TO.Measure.Warmup = 1;
  TO.Measure.Reps = 2;
  TO.MaxMeasure = 3;
  TuneResult R = explore(kernels::MatMul, smallSpace(), TO);
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  // Every measured variant passed the interpreter differential gate (a
  // diverging variant would have landed in Errors, never in Measured).
  EXPECT_EQ(R.Errors, 0u);
  EXPECT_GE(R.Measured, 1u);
  EXPECT_LT(R.Measured, R.Enumerated);
  ASSERT_NE(R.WinnerId, -1);
  const TuneVariant &W = R.Variants[R.WinnerId];
  EXPECT_TRUE(W.Measured);
  ASSERT_EQ(W.Time.RepSeconds.size(), 2u);
  EXPECT_GT(W.Time.MedianSeconds, 0.0);
  // No measured variant beats the winner.
  for (const TuneVariant &V : R.Variants)
    if (V.Measured) {
      EXPECT_LE(W.Time.MedianSeconds, V.Time.MedianSeconds);
    }
  // The trace carries the timing on "_ms" lines only: stripping them
  // reproduces the static document byte-for-byte across runs.
  std::string Trace = R.traceJson();
  EXPECT_NE(Trace.find("median_ms"), std::string::npos);
  std::string Stripped;
  size_t Pos = 0;
  while (Pos < Trace.size()) {
    size_t End = Trace.find('\n', Pos);
    if (End == std::string::npos)
      End = Trace.size();
    std::string Line = Trace.substr(Pos, End - Pos);
    if (Line.find("_ms") == std::string::npos)
      Stripped += Line + "\n";
    Pos = End + 1;
  }
  EXPECT_EQ(Stripped.find("_ms"), std::string::npos);
  EXPECT_NE(Stripped.find("\"tune_schema\": 1"), std::string::npos);
}

TEST(TuneExploreTest, WinnerIsCorrectAcrossExamplesCorpus) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  // A tiny measured search on real corpus files of different shapes
  // (3-d matmul, 1-d time-iterated stencil, in-place skewed stencil):
  // every measured variant must clear the interpreter differential gate,
  // so zero per-variant errors means the winner computes the right
  // answer.
  SearchSpace SS;
  SS.TileSizes = {0, 16};
  SS.L2TileSizes = {0};
  SS.WavefrontDegrees = {0, 1};
  for (const char *Name : {"matmul.c", "jacobi1d.c", "seidel2d.c"}) {
    std::ifstream In(std::string(PLUTOPP_EXAMPLES_DIR) + "/" + Name,
                     std::ios::binary);
    ASSERT_TRUE(In.good()) << Name;
    std::stringstream Src;
    Src << In.rdbuf();
    TuneOptions TO;
    TO.ProblemSize = 10;
    TO.Measure.Warmup = 1;
    TO.Measure.Reps = 2;
    TO.MaxMeasure = 2;
    TuneResult R = explore(Src.str(), SS, TO);
    ASSERT_EQ(R.Status, StatusCode::Ok) << Name << ": " << R.Error;
    EXPECT_EQ(R.Errors, 0u) << Name;
    EXPECT_GE(R.Measured, 1u) << Name;
    ASSERT_NE(R.WinnerId, -1) << Name;
    EXPECT_TRUE(R.Variants[R.WinnerId].Measured) << Name;
    EXPECT_FALSE(R.WinnerC.empty()) << Name;
  }
}

} // namespace
