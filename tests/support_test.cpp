//===- tests/support_test.cpp - BigInt/Rational/Matrix unit tests ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/LinearAlgebra.h"
#include "support/Matrix.h"
#include "support/Rational.h"
#include "support/Result.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using namespace pluto;

namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).toString(), "0");
  EXPECT_EQ(BigInt(42).toString(), "42");
  EXPECT_EQ(BigInt(-42).toString(), "-42");
  EXPECT_EQ(BigInt(1234567890123456789LL).toString(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
}

TEST(BigIntTest, FromString) {
  EXPECT_EQ(BigInt::fromString("0"), BigInt(0));
  EXPECT_EQ(BigInt::fromString("-987654321"), BigInt(-987654321));
  BigInt Big = BigInt::fromString("123456789012345678901234567890");
  EXPECT_EQ(Big.toString(), "123456789012345678901234567890");
  EXPECT_FALSE(Big.fitsInt64());
}

TEST(BigIntTest, Int64RoundTrip) {
  for (long long V : {0LL, 1LL, -1LL, 1LL << 40, -(1LL << 40),
                      static_cast<long long>(INT64_MAX),
                      static_cast<long long>(INT64_MIN)}) {
    BigInt B(V);
    ASSERT_TRUE(B.fitsInt64());
    EXPECT_EQ(B.toInt64(), V);
  }
}

TEST(BigIntTest, ArithmeticMatchesInt64) {
  std::mt19937_64 Rng(7);
  std::uniform_int_distribution<long long> Dist(-1000000, 1000000);
  for (int I = 0; I < 2000; ++I) {
    long long A = Dist(Rng), B = Dist(Rng);
    EXPECT_EQ((BigInt(A) + BigInt(B)).toInt64(), A + B);
    EXPECT_EQ((BigInt(A) - BigInt(B)).toInt64(), A - B);
    EXPECT_EQ((BigInt(A) * BigInt(B)).toInt64(), A * B);
    if (B != 0) {
      EXPECT_EQ((BigInt(A) / BigInt(B)).toInt64(), A / B);
      EXPECT_EQ((BigInt(A) % BigInt(B)).toInt64(), A % B);
    }
  }
}

TEST(BigIntTest, LargeMultiplyDivideRoundTrip) {
  BigInt A = BigInt::fromString("340282366920938463463374607431768211456");
  BigInt B = BigInt::fromString("18446744073709551629");
  BigInt P = A * B;
  EXPECT_EQ(P / B, A);
  EXPECT_EQ(P / A, B);
  EXPECT_TRUE((P % A).isZero());
  EXPECT_EQ(P.divExact(B), A);
}

TEST(BigIntTest, FloorCeilDivision) {
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(2)).toInt64(), -4);
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(-2)).toInt64(), -4);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(-2)).toInt64(), 3);
  EXPECT_EQ(BigInt(7).ceilDiv(BigInt(2)).toInt64(), 4);
  EXPECT_EQ(BigInt(-7).ceilDiv(BigInt(2)).toInt64(), -3);
  EXPECT_EQ(BigInt(7).floorMod(BigInt(3)).toInt64(), 1);
  EXPECT_EQ(BigInt(-7).floorMod(BigInt(3)).toInt64(), 2);
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)).toInt64(), 0);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  BigInt Big = BigInt::fromString("99999999999999999999");
  EXPECT_GT(Big, BigInt(INT64_MAX));
  EXPECT_LT(-Big, BigInt(INT64_MIN));
}

TEST(RationalTest, Normalization) {
  Rational R(BigInt(4), BigInt(-6));
  EXPECT_EQ(R.num().toInt64(), -2);
  EXPECT_EQ(R.den().toInt64(), 3);
  EXPECT_EQ(Rational(BigInt(0), BigInt(-7)).den().toInt64(), 1);
}

TEST(RationalTest, Arithmetic) {
  Rational Half(BigInt(1), BigInt(2));
  Rational Third(BigInt(1), BigInt(3));
  EXPECT_EQ((Half + Third).toString(), "5/6");
  EXPECT_EQ((Half - Third).toString(), "1/6");
  EXPECT_EQ((Half * Third).toString(), "1/6");
  EXPECT_EQ((Half / Third).toString(), "3/2");
  EXPECT_TRUE((Half - Half).isZero());
}

TEST(RationalTest, FloorCeilFract) {
  Rational R(BigInt(-7), BigInt(2));
  EXPECT_EQ(R.floor().toInt64(), -4);
  EXPECT_EQ(R.ceil().toInt64(), -3);
  EXPECT_EQ(R.fract().toString(), "1/2");
  EXPECT_TRUE(Rational(5).isInteger());
  EXPECT_FALSE(R.isInteger());
}

TEST(MatrixTest, Basics) {
  IntMatrix M = {{1, 2}, {3, 4}};
  EXPECT_EQ(M.numRows(), 2u);
  EXPECT_EQ(M.numCols(), 2u);
  EXPECT_EQ(M(1, 0).toInt64(), 3);
  IntMatrix T = M.transpose();
  EXPECT_EQ(T(0, 1).toInt64(), 3);
  IntMatrix P = M * IntMatrix::identity(2);
  EXPECT_EQ(P, M);
}

TEST(MatrixTest, Product) {
  IntMatrix A = {{1, 2}, {3, 4}};
  IntMatrix B = {{5, 6}, {7, 8}};
  IntMatrix P = A * B;
  IntMatrix Want = {{19, 22}, {43, 50}};
  EXPECT_EQ(P, Want);
}

TEST(MatrixTest, InsertColumnsAndRows) {
  IntMatrix M = {{1, 2}, {3, 4}};
  M.insertZeroColumns(1, 2);
  EXPECT_EQ(M.numCols(), 4u);
  EXPECT_EQ(M(0, 0).toInt64(), 1);
  EXPECT_EQ(M(0, 1).toInt64(), 0);
  EXPECT_EQ(M(0, 3).toInt64(), 2);
  M.insertRow(1, {BigInt(9), BigInt(9), BigInt(9), BigInt(9)});
  EXPECT_EQ(M.numRows(), 3u);
  EXPECT_EQ(M(1, 0).toInt64(), 9);
  M.removeRow(1);
  EXPECT_EQ(M(1, 0).toInt64(), 3);
}

TEST(LinearAlgebraTest, Rank) {
  EXPECT_EQ(rank(IntMatrix({{1, 0}, {0, 1}})), 2u);
  EXPECT_EQ(rank(IntMatrix({{1, 2}, {2, 4}})), 1u);
  EXPECT_EQ(rank(IntMatrix({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})), 2u);
  EXPECT_EQ(rank(IntMatrix(0, 3)), 0u);
}

TEST(LinearAlgebraTest, Inverse) {
  RatMatrix M = toRational(IntMatrix({{2, 1}, {1, 1}}));
  auto Inv = inverse(M);
  ASSERT_TRUE(Inv.has_value());
  RatMatrix P = M * *Inv;
  EXPECT_EQ(P, RatMatrix::identity(2));
  EXPECT_FALSE(inverse(toRational(IntMatrix({{1, 2}, {2, 4}}))).has_value());
}

TEST(LinearAlgebraTest, OrthogonalComplementOfEmptyIsIdentity) {
  IntMatrix H(0, 3);
  EXPECT_EQ(orthogonalComplement(H), IntMatrix::identity(3));
}

TEST(LinearAlgebraTest, OrthogonalComplementProperties) {
  // H = span{(1,0,0)}; complement must have rank 2, rows orthogonal to H.
  IntMatrix H = {{1, 0, 0}};
  IntMatrix Perp = orthogonalComplement(H);
  EXPECT_EQ(Perp.numRows(), 2u);
  for (unsigned R = 0; R < Perp.numRows(); ++R) {
    BigInt Dot(0);
    for (unsigned C = 0; C < 3; ++C)
      Dot += Perp(R, C) * H(0, C);
    EXPECT_TRUE(Dot.isZero());
  }
}

TEST(LinearAlgebraTest, OrthogonalComplementSkewedRow) {
  // The classic time-skewing case: H = {(1,1)}. Complement is rank 1 and
  // orthogonal to (1,1): proportional to (1,-1).
  IntMatrix H = {{1, 1}};
  IntMatrix Perp = orthogonalComplement(H);
  ASSERT_EQ(Perp.numRows(), 1u);
  EXPECT_TRUE((Perp(0, 0) + Perp(0, 1)).isZero());
  EXPECT_FALSE(Perp(0, 0).isZero());
}

TEST(LinearAlgebraTest, FullRowSpaceHasEmptyComplement) {
  IntMatrix H = {{1, 0}, {1, 1}};
  EXPECT_EQ(orthogonalComplement(H).numRows(), 0u);
}

TEST(LinearAlgebraTest, IsLinearlyIndependent) {
  IntMatrix M = {{1, 0, 0}, {0, 1, 0}};
  EXPECT_TRUE(isLinearlyIndependent(M, {BigInt(0), BigInt(0), BigInt(1)}));
  EXPECT_FALSE(isLinearlyIndependent(M, {BigInt(2), BigInt(-3), BigInt(0)}));
}

TEST(LinearAlgebraTest, NormalizeByGcd) {
  std::vector<BigInt> Row = {BigInt(4), BigInt(-6), BigInt(8)};
  normalizeByGcd(Row);
  EXPECT_EQ(Row[0].toInt64(), 2);
  EXPECT_EQ(Row[1].toInt64(), -3);
  EXPECT_EQ(Row[2].toInt64(), 4);
  std::vector<BigInt> Zero = {BigInt(0), BigInt(0)};
  normalizeByGcd(Zero); // Must not crash or change values.
  EXPECT_TRUE(Zero[0].isZero());
}

TEST(ResultTest, ValueAndError) {
  Result<int> Ok(42);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 42);
  Result<int> Bad = Err("boom");
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error(), "boom");
}

} // namespace
