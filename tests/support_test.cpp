//===- tests/support_test.cpp - BigInt/Rational/Matrix unit tests ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/LinearAlgebra.h"
#include "support/Matrix.h"
#include "support/Rational.h"
#include "support/Result.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>

using namespace pluto;

namespace {

TEST(BigIntTest, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).toString(), "0");
  EXPECT_EQ(BigInt(42).toString(), "42");
  EXPECT_EQ(BigInt(-42).toString(), "-42");
  EXPECT_EQ(BigInt(1234567890123456789LL).toString(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).toString(), "-9223372036854775808");
  EXPECT_EQ(BigInt(INT64_MAX).toString(), "9223372036854775807");
}

TEST(BigIntTest, FromString) {
  EXPECT_EQ(BigInt::fromString("0"), BigInt(0));
  EXPECT_EQ(BigInt::fromString("-987654321"), BigInt(-987654321));
  BigInt Big = BigInt::fromString("123456789012345678901234567890");
  EXPECT_EQ(Big.toString(), "123456789012345678901234567890");
  EXPECT_FALSE(Big.fitsInt64());
}

TEST(BigIntTest, Int64RoundTrip) {
  for (long long V : {0LL, 1LL, -1LL, 1LL << 40, -(1LL << 40),
                      static_cast<long long>(INT64_MAX),
                      static_cast<long long>(INT64_MIN)}) {
    BigInt B(V);
    ASSERT_TRUE(B.fitsInt64());
    EXPECT_EQ(B.toInt64(), V);
  }
}

TEST(BigIntTest, ArithmeticMatchesInt64) {
  std::mt19937_64 Rng(7);
  std::uniform_int_distribution<long long> Dist(-1000000, 1000000);
  for (int I = 0; I < 2000; ++I) {
    long long A = Dist(Rng), B = Dist(Rng);
    EXPECT_EQ((BigInt(A) + BigInt(B)).toInt64(), A + B);
    EXPECT_EQ((BigInt(A) - BigInt(B)).toInt64(), A - B);
    EXPECT_EQ((BigInt(A) * BigInt(B)).toInt64(), A * B);
    if (B != 0) {
      EXPECT_EQ((BigInt(A) / BigInt(B)).toInt64(), A / B);
      EXPECT_EQ((BigInt(A) % BigInt(B)).toInt64(), A % B);
    }
  }
}

TEST(BigIntTest, LargeMultiplyDivideRoundTrip) {
  BigInt A = BigInt::fromString("340282366920938463463374607431768211456");
  BigInt B = BigInt::fromString("18446744073709551629");
  BigInt P = A * B;
  EXPECT_EQ(P / B, A);
  EXPECT_EQ(P / A, B);
  EXPECT_TRUE((P % A).isZero());
  EXPECT_EQ(P.divExact(B), A);
}

TEST(BigIntTest, FloorCeilDivision) {
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(2)).toInt64(), 3);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(2)).toInt64(), -4);
  EXPECT_EQ(BigInt(7).floorDiv(BigInt(-2)).toInt64(), -4);
  EXPECT_EQ(BigInt(-7).floorDiv(BigInt(-2)).toInt64(), 3);
  EXPECT_EQ(BigInt(7).ceilDiv(BigInt(2)).toInt64(), 4);
  EXPECT_EQ(BigInt(-7).ceilDiv(BigInt(2)).toInt64(), -3);
  EXPECT_EQ(BigInt(7).floorMod(BigInt(3)).toInt64(), 1);
  EXPECT_EQ(BigInt(-7).floorMod(BigInt(3)).toInt64(), 2);
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).toInt64(), 12);
  EXPECT_EQ(BigInt::lcm(BigInt(0), BigInt(6)).toInt64(), 0);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(3), BigInt(5));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  BigInt Big = BigInt::fromString("99999999999999999999");
  EXPECT_GT(Big, BigInt(INT64_MAX));
  EXPECT_LT(-Big, BigInt(INT64_MIN));
}

// ---- Randomized oracle for the small-integer fast path ------------------
//
// The inline int64 representation promotes to limbs exactly at the int64
// overflow boundary; these tests hammer that boundary against a __int128
// oracle so the fast path is proven behavior-identical to the limb
// algorithms.

std::string int128ToString(__int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  unsigned __int128 U =
      Neg ? ~static_cast<unsigned __int128>(V) + 1
          : static_cast<unsigned __int128>(V);
  std::string S;
  while (U != 0) {
    S.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
    U /= 10;
  }
  if (Neg)
    S.push_back('-');
  std::reverse(S.begin(), S.end());
  return S;
}

/// Draws values clustered around the int64 overflow boundary: exact
/// boundary values, small offsets from them, and uniform 64-bit noise.
int64_t boundaryValue(std::mt19937_64 &Rng) {
  std::uniform_int_distribution<int> Kind(0, 3);
  std::uniform_int_distribution<int64_t> SmallOff(0, 1000);
  switch (Kind(Rng)) {
  case 0:
    return INT64_MAX - SmallOff(Rng);
  case 1:
    return INT64_MIN + SmallOff(Rng);
  case 2: {
    // Around +-2^31..2^33: products straddle the promotion boundary.
    int64_t Base = (1LL << 31) + SmallOff(Rng) * ((1LL << 33) / 1000);
    return Rng() % 2 ? Base : -Base;
  }
  default:
    return static_cast<int64_t>(Rng());
  }
}

TEST(BigIntOracleTest, Int128CrossCheckAroundOverflowBoundary) {
  std::mt19937_64 Rng(20260806);
  for (int I = 0; I < 20000; ++I) {
    int64_t A = boundaryValue(Rng), B = boundaryValue(Rng);
    __int128 A128 = A, B128 = B;
    BigInt BA(A), BB(B);
    EXPECT_EQ((BA + BB).toString(), int128ToString(A128 + B128));
    EXPECT_EQ((BA - BB).toString(), int128ToString(A128 - B128));
    EXPECT_EQ((BA * BB).toString(), int128ToString(A128 * B128));
    EXPECT_EQ(BA.compare(BB), A < B ? -1 : A > B ? 1 : 0);
    if (B != 0) {
      EXPECT_EQ((BA / BB).toString(), int128ToString(A128 / B128));
      EXPECT_EQ((BA % BB).toString(), int128ToString(A128 % B128));
      // Floor division: truncating quotient adjusted when signs differ.
      __int128 Q = A128 / B128, R = A128 % B128;
      __int128 FQ = (R != 0 && ((R < 0) != (B128 < 0))) ? Q - 1 : Q;
      __int128 CQ = (R != 0 && ((R < 0) == (B128 < 0))) ? Q + 1 : Q;
      EXPECT_EQ(BA.floorDiv(BB).toString(), int128ToString(FQ));
      EXPECT_EQ(BA.ceilDiv(BB).toString(), int128ToString(CQ));
      EXPECT_EQ(BA.floorMod(BB).toString(), int128ToString(A128 - FQ * B128));
    }
  }
}

TEST(BigIntOracleTest, DivModGcdLcmIdentities) {
  std::mt19937_64 Rng(97);
  for (int I = 0; I < 20000; ++I) {
    int64_t A = boundaryValue(Rng), B = boundaryValue(Rng);
    BigInt BA(A), BB(B);
    if (B != 0) {
      // (a/b)*b + a%b == a (C semantics), |a%b| < |b|.
      EXPECT_EQ((BA / BB) * BB + (BA % BB), BA);
      EXPECT_LT((BA % BB).abs(), BB.abs());
    }
    BigInt G = BigInt::gcd(BA, BB);
    if (A != 0 || B != 0) {
      EXPECT_TRUE(G.isPositive());
      EXPECT_TRUE((BA % G).isZero());
      EXPECT_TRUE((BB % G).isZero());
    } else {
      EXPECT_TRUE(G.isZero());
    }
    if (A != 0 && B != 0) {
      // lcm * gcd == |a * b|.
      __int128 Prod = static_cast<__int128>(A) * B;
      if (Prod < 0)
        Prod = -Prod;
      EXPECT_EQ((BigInt::lcm(BA, BB) * G).toString(), int128ToString(Prod));
    }
  }
}

TEST(BigIntOracleTest, PromotionBoundaryExact) {
  // Exactly INT64_MAX stays inline; one past promotes; demotion comes back.
  BigInt Max(INT64_MAX), Min(INT64_MIN), One(1);
  EXPECT_TRUE(Max.fitsInt64());
  EXPECT_TRUE(Min.fitsInt64());
  BigInt MaxPlus = Max + One;
  EXPECT_FALSE(MaxPlus.fitsInt64());
  EXPECT_EQ(MaxPlus.toString(), "9223372036854775808");
  EXPECT_TRUE((MaxPlus - One).fitsInt64());
  EXPECT_EQ((MaxPlus - One).toInt64(), INT64_MAX);
  BigInt MinMinus = Min - One;
  EXPECT_FALSE(MinMinus.fitsInt64());
  EXPECT_EQ(MinMinus.toString(), "-9223372036854775809");
  EXPECT_TRUE((MinMinus + One).fitsInt64());
  EXPECT_EQ((MinMinus + One).toInt64(), INT64_MIN);
  // Negation of INT64_MIN promotes; re-negation demotes.
  BigInt NegMin = -Min;
  EXPECT_FALSE(NegMin.fitsInt64());
  EXPECT_EQ(NegMin.toString(), "9223372036854775808");
  EXPECT_EQ(-NegMin, Min);
  EXPECT_EQ(Min.abs(), NegMin);
  // INT64_MIN / -1 and % -1 (the one overflowing int64 division).
  EXPECT_EQ((Min / BigInt(-1)), NegMin);
  EXPECT_TRUE((Min % BigInt(-1)).isZero());
  // gcd(INT64_MIN, 0) == 2^63 does not fit int64.
  BigInt G = BigInt::gcd(Min, BigInt(0));
  EXPECT_FALSE(G.fitsInt64());
  EXPECT_EQ(G.toString(), "9223372036854775808");
  EXPECT_EQ(BigInt::gcd(Min, Min), NegMin);
}

TEST(BigIntOracleTest, StringParsedBigValueIdentities) {
  // Values far beyond 128 bits: check algebraic identities and exact
  // decimal round-trips against string-parsed references.
  std::mt19937_64 Rng(1234);
  std::uniform_int_distribution<int> Len(20, 60);
  std::uniform_int_distribution<int> Digit(0, 9);
  for (int I = 0; I < 200; ++I) {
    std::string SA = "1", SB = "2"; // Nonzero leading digits.
    for (int J = Len(Rng); J-- > 0;)
      SA.push_back(static_cast<char>('0' + Digit(Rng)));
    for (int J = Len(Rng); J-- > 0;)
      SB.push_back(static_cast<char>('0' + Digit(Rng)));
    BigInt A = BigInt::fromString(SA);
    BigInt B = BigInt::fromString(SB);
    EXPECT_EQ(A.toString(), SA);
    EXPECT_EQ(B.toString(), SB);
    EXPECT_EQ((A + B) - B, A);
    EXPECT_EQ((A * B).divExact(B), A);
    EXPECT_EQ((A * B) % A, BigInt(0));
    EXPECT_EQ((-A).abs(), A);
    BigInt Q = A / B, R = A % B;
    EXPECT_EQ(Q * B + R, A);
    EXPECT_LT(R.abs(), B.abs());
    BigInt G = BigInt::gcd(A * B, B);
    EXPECT_TRUE((B % G).isZero());
    // Mixed small/large arithmetic demotes correctly.
    EXPECT_EQ((A + BigInt(1)) - A, BigInt(1));
    EXPECT_TRUE(((A + BigInt(1)) - A).fitsInt64());
  }
}

TEST(RationalTest, Normalization) {
  Rational R(BigInt(4), BigInt(-6));
  EXPECT_EQ(R.num().toInt64(), -2);
  EXPECT_EQ(R.den().toInt64(), 3);
  EXPECT_EQ(Rational(BigInt(0), BigInt(-7)).den().toInt64(), 1);
}

TEST(RationalTest, Arithmetic) {
  Rational Half(BigInt(1), BigInt(2));
  Rational Third(BigInt(1), BigInt(3));
  EXPECT_EQ((Half + Third).toString(), "5/6");
  EXPECT_EQ((Half - Third).toString(), "1/6");
  EXPECT_EQ((Half * Third).toString(), "1/6");
  EXPECT_EQ((Half / Third).toString(), "3/2");
  EXPECT_TRUE((Half - Half).isZero());
}

TEST(RationalTest, FloorCeilFract) {
  Rational R(BigInt(-7), BigInt(2));
  EXPECT_EQ(R.floor().toInt64(), -4);
  EXPECT_EQ(R.ceil().toInt64(), -3);
  EXPECT_EQ(R.fract().toString(), "1/2");
  EXPECT_TRUE(Rational(5).isInteger());
  EXPECT_FALSE(R.isInteger());
}

TEST(MatrixTest, Basics) {
  IntMatrix M = {{1, 2}, {3, 4}};
  EXPECT_EQ(M.numRows(), 2u);
  EXPECT_EQ(M.numCols(), 2u);
  EXPECT_EQ(M(1, 0).toInt64(), 3);
  IntMatrix T = M.transpose();
  EXPECT_EQ(T(0, 1).toInt64(), 3);
  IntMatrix P = M * IntMatrix::identity(2);
  EXPECT_EQ(P, M);
}

TEST(MatrixTest, Product) {
  IntMatrix A = {{1, 2}, {3, 4}};
  IntMatrix B = {{5, 6}, {7, 8}};
  IntMatrix P = A * B;
  IntMatrix Want = {{19, 22}, {43, 50}};
  EXPECT_EQ(P, Want);
}

TEST(MatrixTest, InsertColumnsAndRows) {
  IntMatrix M = {{1, 2}, {3, 4}};
  M.insertZeroColumns(1, 2);
  EXPECT_EQ(M.numCols(), 4u);
  EXPECT_EQ(M(0, 0).toInt64(), 1);
  EXPECT_EQ(M(0, 1).toInt64(), 0);
  EXPECT_EQ(M(0, 3).toInt64(), 2);
  M.insertRow(1, {BigInt(9), BigInt(9), BigInt(9), BigInt(9)});
  EXPECT_EQ(M.numRows(), 3u);
  EXPECT_EQ(M(1, 0).toInt64(), 9);
  M.removeRow(1);
  EXPECT_EQ(M(1, 0).toInt64(), 3);
}

TEST(LinearAlgebraTest, Rank) {
  EXPECT_EQ(rank(IntMatrix({{1, 0}, {0, 1}})), 2u);
  EXPECT_EQ(rank(IntMatrix({{1, 2}, {2, 4}})), 1u);
  EXPECT_EQ(rank(IntMatrix({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})), 2u);
  EXPECT_EQ(rank(IntMatrix(0, 3)), 0u);
}

TEST(LinearAlgebraTest, Inverse) {
  RatMatrix M = toRational(IntMatrix({{2, 1}, {1, 1}}));
  auto Inv = inverse(M);
  ASSERT_TRUE(Inv.has_value());
  RatMatrix P = M * *Inv;
  EXPECT_EQ(P, RatMatrix::identity(2));
  EXPECT_FALSE(inverse(toRational(IntMatrix({{1, 2}, {2, 4}}))).has_value());
}

TEST(LinearAlgebraTest, OrthogonalComplementOfEmptyIsIdentity) {
  IntMatrix H(0, 3);
  EXPECT_EQ(orthogonalComplement(H), IntMatrix::identity(3));
}

TEST(LinearAlgebraTest, OrthogonalComplementProperties) {
  // H = span{(1,0,0)}; complement must have rank 2, rows orthogonal to H.
  IntMatrix H = {{1, 0, 0}};
  IntMatrix Perp = orthogonalComplement(H);
  EXPECT_EQ(Perp.numRows(), 2u);
  for (unsigned R = 0; R < Perp.numRows(); ++R) {
    BigInt Dot(0);
    for (unsigned C = 0; C < 3; ++C)
      Dot += Perp(R, C) * H(0, C);
    EXPECT_TRUE(Dot.isZero());
  }
}

TEST(LinearAlgebraTest, OrthogonalComplementSkewedRow) {
  // The classic time-skewing case: H = {(1,1)}. Complement is rank 1 and
  // orthogonal to (1,1): proportional to (1,-1).
  IntMatrix H = {{1, 1}};
  IntMatrix Perp = orthogonalComplement(H);
  ASSERT_EQ(Perp.numRows(), 1u);
  EXPECT_TRUE((Perp(0, 0) + Perp(0, 1)).isZero());
  EXPECT_FALSE(Perp(0, 0).isZero());
}

TEST(LinearAlgebraTest, FullRowSpaceHasEmptyComplement) {
  IntMatrix H = {{1, 0}, {1, 1}};
  EXPECT_EQ(orthogonalComplement(H).numRows(), 0u);
}

TEST(LinearAlgebraTest, IsLinearlyIndependent) {
  IntMatrix M = {{1, 0, 0}, {0, 1, 0}};
  EXPECT_TRUE(isLinearlyIndependent(M, {BigInt(0), BigInt(0), BigInt(1)}));
  EXPECT_FALSE(isLinearlyIndependent(M, {BigInt(2), BigInt(-3), BigInt(0)}));
}

TEST(LinearAlgebraTest, NormalizeByGcd) {
  std::vector<BigInt> Row = {BigInt(4), BigInt(-6), BigInt(8)};
  normalizeByGcd(Row);
  EXPECT_EQ(Row[0].toInt64(), 2);
  EXPECT_EQ(Row[1].toInt64(), -3);
  EXPECT_EQ(Row[2].toInt64(), 4);
  std::vector<BigInt> Zero = {BigInt(0), BigInt(0)};
  normalizeByGcd(Zero); // Must not crash or change values.
  EXPECT_TRUE(Zero[0].isZero());
}

TEST(ResultTest, ValueAndError) {
  Result<int> Ok(42);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(*Ok, 42);
  Result<int> Bad = Err("boom");
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error(), "boom");
}

} // namespace
