//===- tests/schedule_scale_test.cpp - Scheduler scaling paths ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Covers the hundred-statement scaling machinery: the deterministic stress
// generator, the equivalence contract (clustered decomposition + dimension
// matching + warm-started lexmin produce byte-identical transforms to the
// exact monolithic path on the example kernels and the designed stress
// corpus), the concat-stitch path for structurally heterogeneous clusters,
// the new observability counters, and the explicit handling of
// ilp::SolveStatus::Aborted in both dependence analysis (conservative
// keep) and hyperplane search (hard diagnostic, never misreported as
// infeasible).
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "deps/Dependences.h"
#include "driver/Driver.h"
#include "ilp/LexMin.h"
#include "observe/PassStats.h"
#include "runtime/Interpreter.h"
#include "support/StressGen.h"
#include "transform/PlutoTransform.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#ifndef PLUTOPP_EXAMPLES_DIR
#error "PLUTOPP_EXAMPLES_DIR must be defined by the build"
#endif

using namespace pluto;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<fs::path> exampleKernels() {
  std::vector<fs::path> Out;
  for (const auto &E : fs::directory_iterator(PLUTOPP_EXAMPLES_DIR))
    if (E.path().extension() == ".c")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Schedule + loop nest of the full pipeline with the scaling fast paths
/// on or off; everything else at defaults.
struct Lowered {
  std::string Sched;
  std::string Nest;
};

Lowered lower(const std::string &Src, bool FastSchedule) {
  PlutoOptions Opts;
  Opts.FastSchedule = FastSchedule;
  auto R = optimizeSource(Src, Opts);
  EXPECT_TRUE(R) << R.error();
  if (!R)
    return {};
  return {R->Sched.toString(R->program()),
          emitLoopNest(R->program(), *R->Ast)};
}

//===----------------------------------------------------------------------===//
// Stress-program generator
//===----------------------------------------------------------------------===//

TEST(StressGenTest, DeterministicAndSized) {
  for (unsigned N : {1u, 2u, 10u, 25u, 50u, 100u}) {
    std::string A = generateStressProgram(N, 42);
    std::string B = generateStressProgram(N, 42);
    EXPECT_EQ(A, B) << "same (size, seed) must be byte-identical";
    auto P = parseSource(A);
    ASSERT_TRUE(P) << P.error();
    EXPECT_EQ(P->Prog.Stmts.size(), N);
    EXPECT_EQ(P->Prog.ParamNames, std::vector<std::string>{"N"});
  }
  EXPECT_NE(generateStressProgram(25, 1), generateStressProgram(25, 2));
}

TEST(StressGenTest, EveryPatternSchedules) {
  // Seeds chosen freely; any generated program must go through the whole
  // pipeline and pass the independent legality oracle.
  for (unsigned long long Seed : {1ULL, 2ULL, 3ULL}) {
    std::string Src = generateStressProgram(10, Seed);
    SCOPED_TRACE("seed " + std::to_string(Seed) + " program:\n" + Src);
    auto R = optimizeSource(Src);
    ASSERT_TRUE(R) << R.error();
    DependenceGraph DG = R->DG;
    Schedule S = R->Sched;
    EXPECT_TRUE(analyzeSchedule(R->program(), DG, S));
  }
}

//===----------------------------------------------------------------------===//
// Fast paths == exact path
//===----------------------------------------------------------------------===//

TEST(ScheduleEquivalenceTest, ExampleKernelsAreByteIdentical) {
  for (const fs::path &K : exampleKernels()) {
    SCOPED_TRACE(K.filename().string());
    std::string Src = readFile(K);
    Lowered Fast = lower(Src, true);
    Lowered Exact = lower(Src, false);
    EXPECT_EQ(Fast.Sched, Exact.Sched);
    EXPECT_EQ(Fast.Nest, Exact.Nest);
  }
}

TEST(ScheduleEquivalenceTest, StressProgramsAreByteIdentical) {
  // 25 statements is ~10 clusters; the exact arm solves one joint ILP over
  // all of them, so keep the sizes test-friendly (E8's 50/100-statement
  // points live in bench_schedule).
  struct Case {
    unsigned Size;
    unsigned long long Seed;
  } Cases[] = {{10, 1}, {10, 7}, {25, 1}};
  for (const auto &C : Cases) {
    std::string Src = generateStressProgram(C.Size, C.Seed);
    SCOPED_TRACE("size " + std::to_string(C.Size) + " seed " +
                 std::to_string(C.Seed) + " program:\n" + Src);
    Lowered Fast = lower(Src, true);
    Lowered Exact = lower(Src, false);
    EXPECT_EQ(Fast.Sched, Exact.Sched);
    EXPECT_EQ(Fast.Nest, Exact.Nest);
  }
}

TEST(ScheduleEquivalenceTest, FiftyStatementsScheduleIsLegal) {
  // Too big to A/B against the exact arm in a unit test; check the fast
  // schedule against the independent legality oracle instead.
  std::string Src = generateStressProgram(50, 3);
  auto R = optimizeSource(Src);
  ASSERT_TRUE(R) << R.error();
  DependenceGraph DG = R->DG;
  Schedule S = R->Sched;
  EXPECT_TRUE(analyzeSchedule(R->program(), DG, S));
}

//===----------------------------------------------------------------------===//
// Heterogeneous clusters: concat stitch + semantics
//===----------------------------------------------------------------------===//

TEST(ScheduleStitchTest, HeterogeneousClustersRunCorrectly) {
  // A 1-d cluster next to a 2-d stencil cluster: different loop-row
  // counts, so the aligned interleave is impossible and the scheduler must
  // take the concat stitch (leading cluster-ordinal scalar row plus
  // zero-padded blocks). Validate semantics end to end.
  const char *Src = "for (i0 = 0; i0 < N; i0++) {\n"
                    "  v[i0] = v[i0] * 0.5 + 1.0;\n"
                    "}\n"
                    "for (i1 = 1; i1 < N; i1++) {\n"
                    "  for (j1 = 1; j1 < N; j1++) {\n"
                    "    S[i1][j1] = S[i1 - 1][j1] + S[i1][j1 - 1];\n"
                    "  }\n"
                    "}\n";
  auto R = optimizeSource(Src);
  ASSERT_TRUE(R) << R.error();

  DependenceGraph DG = R->DG;
  Schedule S = R->Sched;
  EXPECT_TRUE(analyzeSchedule(R->program(), DG, S));

  auto Orig = buildOriginalAst(R->program());
  ASSERT_TRUE(Orig) << Orig.error();
  const long long N = 9;
  std::map<std::string, std::vector<long long>> Extents;
  for (const ArrayInfo &A : R->program().Arrays)
    Extents[A.Name] = std::vector<long long>(A.Rank, N);
  auto runWith = [&](const CgNode &Ast) {
    Interpreter I;
    I.allocate(R->program(), Extents);
    unsigned Seed = 1;
    for (auto &[Name, T] : I.Arrays)
      T.fillPattern(Seed++);
    I.Params = {{"N", N}};
    auto Ok = I.run(R->program(), Ast);
    EXPECT_TRUE(Ok) << (Ok ? "" : Ok.error());
    return I.Arrays;
  };
  auto Want = runWith(**Orig);
  auto Got = runWith(*R->Ast);
  for (const auto &[Name, TW] : Want) {
    const Tensor &TG = Got.at(Name);
    ASSERT_EQ(TW.Data.size(), TG.Data.size());
    for (size_t I = 0; I < TW.Data.size(); ++I)
      ASSERT_NEAR(TW.Data[I], TG.Data[I],
                  1e-9 * (1.0 + std::fabs(TW.Data[I])))
          << Name << "[" << I << "]";
  }
}

//===----------------------------------------------------------------------===//
// Aborted solves
//===----------------------------------------------------------------------===//

TEST(AbortHandlingTest, ScheduleSurfacesAbortAsDiagnostic) {
  // Deps are computed under normal budgets; only the hyperplane search
  // runs starved. With every fast path off the first findHyperplane must
  // go to the exact solver, abort, and report it - not fold the abort into
  // "no hyperplane exists" (which would silently cut the band).
  auto P = parseSource(generateStressProgram(4, 1));
  ASSERT_TRUE(P) << P.error();
  Program Prog = P->Prog;
  DependenceGraph DG = computeDependences(Prog);

  TransformOptions Exact;
  Exact.Decompose = false;
  Exact.DimensionMatch = false;
  Exact.WarmStart = false;

  ilp::SolveLimits Tiny;
  Tiny.MaxPivots = 1;
  Tiny.MaxCuts = 0;
  ilp::ScopedSolveLimits Guard(Tiny);
  auto S = computeSchedule(Prog, DG, Exact);
  ASSERT_FALSE(S);
  EXPECT_NE(S.error().find("aborted"), std::string::npos) << S.error();
  EXPECT_NE(S.error().find("budget"), std::string::npos) << S.error();
}

TEST(AbortHandlingTest, DepAnalysisKeepsCandidatesOnAbort) {
  auto P = parseSource(readFile(fs::path(PLUTOPP_EXAMPLES_DIR) / "lu.c"));
  ASSERT_TRUE(P) << P.error();
  DependenceGraph Ref = computeDependences(P->Prog);

  PassStats Stats;
  setActiveStats(&Stats);
  ilp::SolveLimits Tiny;
  Tiny.MaxPivots = 1;
  Tiny.MaxCuts = 0;
  DependenceGraph Starved = [&] {
    ilp::ScopedSolveLimits Guard(Tiny);
    return computeDependences(P->Prog);
  }();
  setActiveStats(nullptr);

  // Unknown feasibility must err on the side of keeping the dependence:
  // the starved graph over-approximates the real one and says so.
  EXPECT_GE(Starved.Deps.size(), Ref.Deps.size());
  EXPECT_GT(Stats.get(Counter::DepKeptOnAbort), 0u);
}

//===----------------------------------------------------------------------===//
// Observability
//===----------------------------------------------------------------------===//

TEST(ScheduleStatsTest, FastPathCountersAndClusterHistogram) {
  PassStats Stats;
  setActiveStats(&Stats);
  auto R = optimizeSource(generateStressProgram(25, 1));
  setActiveStats(nullptr);
  ASSERT_TRUE(R) << R.error();

  // The corpus mixes pure-map clusters (every row matched structurally)
  // with recurrences and stencils (row 1, or both rows, need the exact
  // solver), so all three counters must fire.
  EXPECT_GT(Stats.get(Counter::ScheduleFastPathHits), 0u);
  EXPECT_GT(Stats.get(Counter::ScheduleFastPathFallbacks), 0u);
  EXPECT_GT(Stats.get(Counter::LexMinWarmStarts), 0u);

  // Stress clusters have 1 or 2 statements; both histogram buckets fill.
  EXPECT_GT(Stats.ClustersOfSize[0].load(), 0u);
  EXPECT_GT(Stats.ClustersOfSize[1].load(), 0u);
  for (unsigned B = 2; B < MaxClusterSizes; ++B)
    EXPECT_EQ(Stats.ClustersOfSize[B].load(), 0u);

  EXPECT_NE(Stats.toJson().find("\"clusters_by_size\""), std::string::npos);
  EXPECT_NE(Stats.toText().find("scheduler clusters by statement count"),
            std::string::npos);
}

} // namespace
