//===- tests/diagnostics_test.cpp - Frontend diagnostics tests ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The multi-error frontend: exact line:column tracking through tabs, CR,
// LF and CRLF line endings; lexer recovery over invalid characters; parser
// recovery at statement/loop boundaries so one pass reports every problem;
// snippet rendering; the single-string compatibility shims; and the
// malformed-input corpus under tests/corpus/ (golden span assertions).
//
//===----------------------------------------------------------------------===//

#include "parser/Diagnostics.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "service/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifndef PLUTOPP_CORPUS_DIR
#error "PLUTOPP_CORPUS_DIR must be defined by the build"
#endif

using namespace pluto;

namespace {

/// True if Diags contains an error at exactly (Line, Col).
bool hasSpan(const std::vector<Diagnostic> &Diags, unsigned Line,
             unsigned Col) {
  return std::any_of(Diags.begin(), Diags.end(), [&](const Diagnostic &D) {
    return D.Line == Line && D.Col == Col;
  });
}

/// True if Diags contains a diagnostic on Line (any column).
bool hasLine(const std::vector<Diagnostic> &Diags, unsigned Line) {
  return std::any_of(Diags.begin(), Diags.end(),
                     [&](const Diagnostic &D) { return D.Line == Line; });
}

const Token *findToken(const std::vector<Token> &Toks, const char *Text) {
  for (const Token &T : Toks)
    if (T.Text == Text)
      return &T;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Lexer source tracking: tabs, CR, LF, CRLF
//===----------------------------------------------------------------------===//

TEST(LexerTracking, TabOccupiesOneColumn) {
  std::vector<Diagnostic> Diags;
  auto Toks = tokenize("\t\tx = y;", Diags);
  EXPECT_TRUE(Diags.empty());
  const Token *X = findToken(Toks, "x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->Line, 1u);
  EXPECT_EQ(X->Col, 3u); // Two tabs = two columns, not two tab stops.
}

TEST(LexerTracking, CrLfTerminatesLineWithoutExtraColumn) {
  std::vector<Diagnostic> Diags;
  auto Toks = tokenize("a = b;\r\nc = d;", Diags);
  EXPECT_TRUE(Diags.empty());
  const Token *C = findToken(Toks, "c");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Line, 2u);
  EXPECT_EQ(C->Col, 1u);
}

TEST(LexerTracking, LoneCrTerminatesLine) {
  std::vector<Diagnostic> Diags;
  auto Toks = tokenize("a\rb", Diags);
  EXPECT_TRUE(Diags.empty());
  const Token *B = findToken(Toks, "b");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Line, 2u);
  EXPECT_EQ(B->Col, 1u);
}

TEST(LexerTracking, CommentBeforeCrLfDoesNotEatTheLineBreak) {
  std::vector<Diagnostic> Diags;
  auto Toks = tokenize("// note\r\nq = 1;", Diags);
  EXPECT_TRUE(Diags.empty());
  const Token *Q = findToken(Toks, "q");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->Line, 2u);
  EXPECT_EQ(Q->Col, 1u);
}

TEST(LexerTracking, InvalidCharIsDiagnosedAndSkipped) {
  std::vector<Diagnostic> Diags;
  auto Toks = tokenize("a $ b", Diags);
  ASSERT_EQ(errorCount(Diags), 1u);
  EXPECT_EQ(Diags[0].Line, 1u);
  EXPECT_EQ(Diags[0].Col, 3u);
  // The stream keeps going: both identifiers survive, End terminates.
  EXPECT_NE(findToken(Toks, "a"), nullptr);
  EXPECT_NE(findToken(Toks, "b"), nullptr);
  EXPECT_TRUE(Toks.back().is(Token::Kind::End));
}

TEST(LexerTracking, TabThenInvalidCharColumn) {
  std::vector<Diagnostic> Diags;
  tokenize("\t@", Diags);
  ASSERT_EQ(errorCount(Diags), 1u);
  EXPECT_EQ(Diags[0].Line, 1u);
  EXPECT_EQ(Diags[0].Col, 2u);
}

TEST(LexerTracking, StringCompatWrapperReportsFirstError) {
  std::string Error;
  tokenize("x = 1;", Error);
  EXPECT_TRUE(Error.empty());
  tokenize("@ #", Error);
  EXPECT_NE(Error.find("line 1, col 1"), std::string::npos) << Error;
}

//===----------------------------------------------------------------------===//
// Parser recovery: every problem, one pass
//===----------------------------------------------------------------------===//

const char *ThreeErrors = "for (i = 0; i < N; i++) {\n"
                          "  a[i] = ;\n"
                          "  b[i] @ 1.0;\n"
                          "  c[i] = a[i] +;\n"
                          "}\n";

TEST(ParserRecovery, ThreeErrorInputReportsAllThreeSpans) {
  ParseResult R = parseSourceDiags(ThreeErrors);
  EXPECT_FALSE(R.ok());
  EXPECT_GE(errorCount(R.Diags), 3u) << joinDiagnostics(R.Diags);
  // Missing rhs: the error points at the ';' that cut the expression off.
  EXPECT_TRUE(hasSpan(R.Diags, 2, 10)) << joinDiagnostics(R.Diags);
  // '@' is a lexer-level error with the exact column.
  EXPECT_TRUE(hasSpan(R.Diags, 3, 8)) << joinDiagnostics(R.Diags);
  // Dangling '+': recovery reached line 4 despite both earlier errors.
  EXPECT_TRUE(hasLine(R.Diags, 4)) << joinDiagnostics(R.Diags);
}

TEST(ParserRecovery, RecoversAcrossTopLevelLoops) {
  ParseResult R = parseSourceDiags("for (i = 0; i < N; i++) {\n"
                                   "  a[i] = ;\n"
                                   "}\n"
                                   "for (j = 0; j < N; j++) {\n"
                                   "  b[j] = ;\n"
                                   "}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_GE(errorCount(R.Diags), 2u);
  EXPECT_TRUE(hasLine(R.Diags, 2)) << joinDiagnostics(R.Diags);
  EXPECT_TRUE(hasLine(R.Diags, 5)) << joinDiagnostics(R.Diags);
}

TEST(ParserRecovery, TabIndentedErrorColumnIsCharacterBased) {
  ParseResult R = parseSourceDiags("for (i = 0; i < N; i++) {\n"
                                   "\ta[i] = ;\n"
                                   "}\n");
  EXPECT_FALSE(R.ok());
  // \t a [ i ]  space = space ; -> the ';' is the 9th character.
  EXPECT_TRUE(hasSpan(R.Diags, 2, 9)) << joinDiagnostics(R.Diags);
}

TEST(ParserRecovery, CrLfSourceKeepsLineNumbers) {
  ParseResult R = parseSourceDiags("for (i = 0; i < N; i++) {\r\n"
                                   "  a[i] = ;\r\n"
                                   "}\r\n");
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasSpan(R.Diags, 2, 10)) << joinDiagnostics(R.Diags);
}

TEST(ParserRecovery, ErrorFloodIsCapped) {
  std::string Source;
  for (int I = 0; I < 60; ++I)
    Source += "x = ;\n";
  ParseResult R = parseSourceDiags(Source);
  EXPECT_FALSE(R.ok());
  // Recovery is bounded: at most MaxErrors plus the giving-up notice.
  EXPECT_LE(R.Diags.size(), 21u);
  EXPECT_NE(joinDiagnostics(R.Diags).find("too many errors"),
            std::string::npos);
}

TEST(ParserRecovery, EmptyInputIsOneDiagnosticAtOrigin) {
  ParseResult R = parseSourceDiags("/* nothing */\n");
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_EQ(R.Diags[0].Line, 1u);
  EXPECT_EQ(R.Diags[0].Col, 1u);
  EXPECT_NE(R.Diags[0].Message.find("no statements"), std::string::npos);
}

TEST(ParserRecovery, ValidInputHasNoDiagnostics) {
  ParseResult R = parseSourceDiags("for (i = 0; i < N; i++) {\n"
                                   "  a[i] = b[i] + 1.0;\n"
                                   "}\n");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Diags.empty()) << joinDiagnostics(R.Diags);
}

TEST(ParserRecovery, CompatShimJoinsEveryDiagnostic) {
  auto R = parseSource(ThreeErrors);
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().find("line 2"), std::string::npos) << R.error();
  EXPECT_NE(R.error().find("line 4"), std::string::npos) << R.error();
  EXPECT_NE(R.error().find('\n'), std::string::npos);
}

TEST(ParserRecovery, PipelineExposesStructuredDiagnostics) {
  auto P = Pipeline::create(PlutoOptions());
  ASSERT_TRUE(P) << P.error();
  P->setSource(ThreeErrors);
  auto Parsed = P->parsed();
  EXPECT_FALSE(Parsed);
  EXPECT_GE(errorCount(P->diagnostics()), 3u)
      << joinDiagnostics(P->diagnostics());
  EXPECT_TRUE(hasSpan(P->diagnostics(), 2, 10));
  // The stage error string is the joined form of the same list.
  EXPECT_EQ(Parsed.error(), joinDiagnostics(P->diagnostics()));
  // A clean source resets the list.
  P->setSource("for (i = 0; i < N; i++) {\n  a[i] = 1.0;\n}\n");
  EXPECT_TRUE(P->parsed());
  EXPECT_TRUE(P->diagnostics().empty());
}

//===----------------------------------------------------------------------===//
// Snippet rendering
//===----------------------------------------------------------------------===//

TEST(Snippet, CaretMarksTheSpan) {
  Diagnostic D;
  D.Line = 1;
  D.Col = 3;
  D.Len = 2;
  EXPECT_EQ(renderSnippet("abcdef", D), "  abcdef\n    ^^\n");
}

TEST(Snippet, TabsExpandToOneSpaceSoCaretAligns) {
  Diagnostic D;
  D.Line = 1;
  D.Col = 2;
  EXPECT_EQ(renderSnippet("\tx = 1;", D), "   x = 1;\n   ^\n");
}

TEST(Snippet, PicksTheRightLineUnderMixedEndings) {
  Diagnostic D;
  D.Line = 3;
  D.Col = 1;
  EXPECT_EQ(renderSnippet("one\r\ntwo\rthree", D), "  three\n  ^\n");
}

TEST(Snippet, OutOfRangeLineRendersEmpty) {
  Diagnostic D;
  D.Line = 9;
  EXPECT_EQ(renderSnippet("just one line", D), "");
}

//===----------------------------------------------------------------------===//
// Malformed-input corpus: golden span assertions
//===----------------------------------------------------------------------===//

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(Corpus, EveryFileYieldsLocatedErrorsAndNoCrash) {
  unsigned Files = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(PLUTOPP_CORPUS_DIR)) {
    if (Entry.path().extension() != ".c")
      continue;
    ++Files;
    SCOPED_TRACE(Entry.path().filename().string());
    ParseResult R = parseSourceDiags(readFile(Entry.path()));
    EXPECT_FALSE(R.ok());
    EXPECT_TRUE(hasErrors(R.Diags));
    for (const Diagnostic &D : R.Diags) {
      EXPECT_GE(D.Line, 1u);
      EXPECT_GE(D.Col, 1u);
      EXPECT_GE(D.Len, 1u);
      EXPECT_FALSE(D.Message.empty());
    }
  }
  EXPECT_GE(Files, 5u) << "corpus went missing?";
}

TEST(Corpus, ThreeErrorsGolden) {
  ParseResult R =
      parseSourceDiags(readFile(std::filesystem::path(PLUTOPP_CORPUS_DIR) /
                                "three_errors.c"));
  EXPECT_FALSE(R.ok());
  EXPECT_GE(errorCount(R.Diags), 3u) << joinDiagnostics(R.Diags);
  EXPECT_TRUE(hasSpan(R.Diags, 2, 10)) << joinDiagnostics(R.Diags);
  EXPECT_TRUE(hasSpan(R.Diags, 3, 8)) << joinDiagnostics(R.Diags);
  EXPECT_TRUE(hasLine(R.Diags, 4)) << joinDiagnostics(R.Diags);
}

TEST(Corpus, UnclosedLoopPointsAtEndOfInput) {
  ParseResult R =
      parseSourceDiags(readFile(std::filesystem::path(PLUTOPP_CORPUS_DIR) /
                                "unclosed_loop.c"));
  EXPECT_FALSE(R.ok());
  ASSERT_TRUE(hasErrors(R.Diags));
  EXPECT_NE(joinDiagnostics(R.Diags).find("unterminated loop body"),
            std::string::npos)
      << joinDiagnostics(R.Diags);
}

} // namespace
