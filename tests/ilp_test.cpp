//===- tests/ilp_test.cpp - LexMin solver unit tests ----------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "ilp/LexMin.h"

#include <gtest/gtest.h>

using namespace pluto;
using namespace pluto::ilp;

namespace {

IntMatrix rows(std::initializer_list<std::initializer_list<long long>> R,
               unsigned Cols) {
  IntMatrix M(Cols);
  for (const auto &Row : R) {
    std::vector<BigInt> V;
    for (long long X : Row)
      V.push_back(BigInt(X));
    M.addRow(std::move(V));
  }
  return M;
}

std::vector<long long> pt(const LexMinResult &R) {
  std::vector<long long> V;
  for (const BigInt &B : R.Point)
    V.push_back(B.toInt64());
  return V;
}

TEST(LexMinTest, UnconstrainedIsZero) {
  LexMinResult R = lexMinNonNeg(IntMatrix(3), IntMatrix(3), 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{0, 0}));
}

TEST(LexMinTest, SingleLowerBound) {
  // x0 >= 5.
  LexMinResult R = lexMinNonNeg(rows({{1, -5}}, 2), IntMatrix(2), 1);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{5}));
}

TEST(LexMinTest, SumConstraintPushesToSecondCoordinate) {
  // x0 + x1 >= 3: lexmin is (0, 3).
  LexMinResult R = lexMinNonNeg(rows({{1, 1, -3}}, 3), IntMatrix(3), 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{0, 3}));
}

TEST(LexMinTest, LexOrderPrefersEarlyCoordinates) {
  // x0 + x1 >= 3 and x0 <= 1: lexmin (0,3) still; adding x1 <= 2 forces
  // x0 >= 1 -> (1, 2).
  IntMatrix I = rows({{1, 1, -3}, {-1, 0, 1}, {0, -1, 2}}, 3);
  LexMinResult R = lexMinNonNeg(I, IntMatrix(3), 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{1, 2}));
}

TEST(LexMinTest, Infeasible) {
  // x0 <= 2 and x0 >= 5.
  IntMatrix I = rows({{-1, 2}, {1, -5}}, 2);
  LexMinResult R = lexMinNonNeg(I, IntMatrix(2), 1);
  EXPECT_EQ(R.Status, SolveStatus::Infeasible);
}

TEST(LexMinTest, EqualityConstraints) {
  // x0 + x1 == 4, x0 - x1 == 2 -> (3, 1).
  IntMatrix E = rows({{1, 1, -4}, {1, -1, -2}}, 3);
  LexMinResult R = lexMinNonNeg(IntMatrix(3), E, 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{3, 1}));
}

TEST(LexMinTest, IntegralityGomoryCut) {
  // 2*x0 >= 3 -> rational min 1.5, integer min 2.
  LexMinResult R = lexMinNonNeg(rows({{2, -3}}, 2), IntMatrix(2), 1);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{2}));
}

TEST(LexMinTest, IntegralityAcrossCoordinates) {
  // 2*x0 + 2*x1 == 5 has no integer solution.
  IntMatrix E = rows({{2, 2, -5}}, 3);
  LexMinResult R = lexMinNonNeg(IntMatrix(3), E, 2);
  EXPECT_EQ(R.Status, SolveStatus::Infeasible);
}

TEST(LexMinTest, RationallyFeasibleIntegerInfeasible) {
  // 1 <= 3*x0 <= 2 has the rational point 1/2 but no integer point.
  IntMatrix I = rows({{3, -1}, {-3, 2}}, 2);
  LexMinResult R = lexMinNonNeg(I, IntMatrix(2), 1);
  EXPECT_EQ(R.Status, SolveStatus::Infeasible);
}

TEST(LexMinTest, MixedCutProblem) {
  // x0 + 2*x1 >= 7, 3*x0 + x1 >= 8, integer lexmin:
  // x0 = 0 -> x1 >= max(ceil(7/2), 8) = 8 -> (0, 8).
  IntMatrix I = rows({{1, 2, -7}, {3, 1, -8}}, 3);
  LexMinResult R = lexMinNonNeg(I, IntMatrix(3), 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{0, 8}));
}

TEST(LexMinTest, KnapsackStyle) {
  // 5*x0 + 3*x1 == 11: integer solutions (1, 2) (x0=1,x1=2). Lexmin x0:
  // x0=1 is the smallest feasible (x0=0 -> 3*x1=11 infeasible).
  IntMatrix E = rows({{5, 3, -11}}, 3);
  LexMinResult R = lexMinNonNeg(IntMatrix(3), E, 2);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{1, 2}));
}

TEST(LexMinTest, PlutoShapedSystem) {
  // A miniature of the paper's objective (5): variables (u, w, c1, c2),
  // legality c1 + c2 >= 1, bounding u + w - c2 >= 0, u + w - c1 >= 0.
  // Lexmin drives u, then w, to 0 ... but w >= c_i then forces w >= 1 when
  // u = 0; solver should find (0, 1, 0, 1): c1 = 0, c2 = 1 satisfies all.
  IntMatrix I = rows({{0, 0, 1, 1, -1},   // c1 + c2 >= 1
                      {1, 1, 0, -1, 0},   // u + w - c2 >= 0
                      {1, 1, -1, 0, 0}},  // u + w - c1 >= 0
                     5);
  LexMinResult R = lexMinNonNeg(I, IntMatrix(5), 4);
  ASSERT_TRUE(R.feasible());
  EXPECT_EQ(pt(R), (std::vector<long long>{0, 1, 0, 1}));
}

TEST(HasIntegerPointTest, FreeVariables) {
  // x0 <= -3 (free sign): point exists.
  IntMatrix I = rows({{-1, -3}}, 2);
  std::vector<BigInt> W;
  EXPECT_TRUE(hasIntegerPoint(I, IntMatrix(2), 1, &W));
  ASSERT_EQ(W.size(), 1u);
  EXPECT_LE(W[0].toInt64(), -3);
}

TEST(HasIntegerPointTest, EmptyStrip) {
  // 1 <= 2*x0 <= 1 over free x0: x0 = 1/2 only -> integer empty.
  IntMatrix I = rows({{2, -1}, {-2, 1}}, 2);
  EXPECT_FALSE(hasIntegerPoint(I, IntMatrix(2), 1));
}

TEST(HasIntegerPointTest, DependencePolyhedronShape) {
  // Pairs (i, i') with 0 <= i, i' <= N - 1, i' = i + 1, N >= 2 (vars:
  // i, i', N). This is the 1-d uniform-dependence polyhedron; nonempty.
  IntMatrix I = rows({{1, 0, 0, 0},    // i >= 0
                      {-1, 0, 1, -1},  // i <= N-1
                      {0, 1, 0, 0},    // i' >= 0
                      {0, -1, 1, -1},  // i' <= N-1
                      {0, 0, 1, -2}},  // N >= 2
                     4);
  IntMatrix E = rows({{-1, 1, 0, -1}}, 4); // i' - i - 1 == 0
  std::vector<BigInt> W;
  EXPECT_TRUE(hasIntegerPoint(I, E, 3, &W));
  EXPECT_EQ(W[1].toInt64(), W[0].toInt64() + 1);
}

TEST(HasIntegerPointTest, ContradictoryEqualities) {
  IntMatrix E = rows({{1, 1, -4}, {1, 1, -5}}, 3);
  EXPECT_FALSE(hasIntegerPoint(IntMatrix(3), E, 2));
}

} // namespace
