//===- tests/oracle_test.cpp - Solver/analysis vs. brute force ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Differential oracles for the mathematical substrates:
//  - lexMinNonNeg vs. exhaustive enumeration over a bounded box, on random
//    integer systems (exercises the dual simplex + Gomory cuts);
//  - Fourier-Motzkin projection soundness (every feasible point projects
//    into the computed shadow) and integer emptiness consistency;
//  - dependence-analysis completeness: on concrete problem sizes, every
//    conflicting ordered instance pair must be contained in some
//    dependence-polyhedron edge of the right kind.
//
//===----------------------------------------------------------------------===//

#include "deps/Dependences.h"
#include "ilp/LexMin.h"
#include "parser/Parser.h"
#include "poly/ConstraintSystem.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>

using namespace pluto;

namespace {

//===----------------------------------------------------------------------===//
// LexMin vs brute force
//===----------------------------------------------------------------------===//

/// Membership of an integer point in Ax + b >= 0.
bool satisfies(const IntMatrix &Ineqs, const std::vector<long long> &P) {
  unsigned N = static_cast<unsigned>(P.size());
  for (unsigned R = 0; R < Ineqs.numRows(); ++R) {
    BigInt V = Ineqs(R, N);
    for (unsigned C = 0; C < N; ++C)
      V += Ineqs(R, C) * BigInt(P[C]);
    if (V.isNegative())
      return false;
  }
  return true;
}

class LexMinOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(LexMinOracle, MatchesEnumeration) {
  std::mt19937 Rng(GetParam());
  auto pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  const unsigned NVars = 3;
  const long long Box = 6;
  IntMatrix Ineqs(NVars + 1);
  // Random rows.
  unsigned NumRows = 3 + (Rng() % 3);
  for (unsigned R = 0; R < NumRows; ++R) {
    std::vector<BigInt> Row;
    for (unsigned C = 0; C < NVars; ++C)
      Row.push_back(BigInt(pick(-3, 3)));
    Row.push_back(BigInt(pick(-4, 8)));
    Ineqs.addRow(std::move(Row));
  }
  // Box: x_i <= Box (x_i >= 0 is implicit in the solver).
  for (unsigned C = 0; C < NVars; ++C) {
    std::vector<BigInt> Row(NVars + 1, BigInt(0));
    Row[C] = BigInt(-1);
    Row[NVars] = BigInt(Box);
    Ineqs.addRow(std::move(Row));
  }

  // Brute force lexmin over [0, Box]^3.
  std::optional<std::vector<long long>> Want;
  for (long long X = 0; X <= Box && !Want; ++X)
    for (long long Y = 0; Y <= Box && !Want; ++Y)
      for (long long Z = 0; Z <= Box && !Want; ++Z)
        if (satisfies(Ineqs, {X, Y, Z}))
          Want = std::vector<long long>{X, Y, Z};

  ilp::LexMinResult Got = ilp::lexMinNonNeg(Ineqs, IntMatrix(NVars + 1),
                                            NVars);
  if (!Want) {
    EXPECT_FALSE(Got.feasible());
    return;
  }
  ASSERT_TRUE(Got.feasible());
  for (unsigned C = 0; C < NVars; ++C)
    EXPECT_EQ(Got.Point[C].toInt64(), (*Want)[C]) << "coordinate " << C;
}

INSTANTIATE_TEST_SUITE_P(Random, LexMinOracle,
                         ::testing::Range(1u, 61u));

//===----------------------------------------------------------------------===//
// Fourier-Motzkin soundness
//===----------------------------------------------------------------------===//

class FmOracle : public ::testing::TestWithParam<unsigned> {};

TEST_P(FmOracle, ProjectionIsSound) {
  std::mt19937 Rng(GetParam() * 131 + 7);
  auto pick = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  const long long Box = 5;
  ConstraintSystem CS(3);
  for (unsigned C = 0; C < 3; ++C) {
    CS.addLowerBound(C, 0);
    CS.addUpperBound(C, Box);
  }
  unsigned Extra = 2 + (Rng() % 3);
  for (unsigned R = 0; R < Extra; ++R) {
    std::vector<BigInt> Row;
    for (unsigned C = 0; C < 3; ++C)
      Row.push_back(BigInt(pick(-2, 2)));
    Row.push_back(BigInt(pick(-2, 6)));
    CS.addIneq(std::move(Row));
  }
  ConstraintSystem Full = CS;
  ConstraintSystem Proj = CS;
  Proj.projectOut(2, 1); // Eliminate z.

  // Soundness: every feasible (x, y, z) gives (x, y) in the projection.
  // Completeness over the integers is not guaranteed by FM (rational
  // shadow), but soundness must be exact.
  for (long long X = 0; X <= Box; ++X)
    for (long long Y = 0; Y <= Box; ++Y) {
      bool Feasible3 = false;
      for (long long Z = 0; Z <= Box && !Feasible3; ++Z)
        Feasible3 = satisfies(Full.ineqs(), {X, Y, Z});
      bool InShadow = satisfies(Proj.ineqs(), {X, Y});
      if (Feasible3)
        EXPECT_TRUE(InShadow) << "(" << X << "," << Y << ") lost";
    }
  // Emptiness consistency: if the 3-d set has integer points, the shadow
  // must not be integer-empty.
  bool Any = false;
  for (long long X = 0; X <= Box && !Any; ++X)
    for (long long Y = 0; Y <= Box && !Any; ++Y)
      for (long long Z = 0; Z <= Box && !Any; ++Z)
        Any = satisfies(Full.ineqs(), {X, Y, Z});
  EXPECT_EQ(Full.isIntegerEmpty(), !Any);
}

INSTANTIATE_TEST_SUITE_P(Random, FmOracle, ::testing::Range(1u, 41u));

//===----------------------------------------------------------------------===//
// Dependence-analysis completeness
//===----------------------------------------------------------------------===//

/// Instance of a statement: its iteration vector.
using Instance = std::vector<long long>;

/// Enumerates a statement's domain for a concrete parameter value.
std::vector<Instance> enumerateDomain(const Statement &St, long long NVal,
                                      unsigned NumParams) {
  std::vector<Instance> Out;
  unsigned M = St.numIters();
  Instance Cur(M, 0);
  // Iterate the bounding box [-1, N+2]^M and filter by the domain rows.
  std::function<void(unsigned)> Rec = [&](unsigned D) {
    if (D == M) {
      std::vector<long long> Full = Cur;
      for (unsigned P = 0; P < NumParams; ++P)
        Full.push_back(NVal);
      if (satisfies(St.Domain.ineqs(), Full)) {
        bool EqOk = true;
        for (unsigned R = 0; R < St.Domain.eqs().numRows() && EqOk; ++R) {
          BigInt V = St.Domain.eqs()(R, St.Domain.numVars());
          for (unsigned C = 0; C < St.Domain.numVars(); ++C)
            V += St.Domain.eqs()(R, C) * BigInt(Full[C]);
          EqOk = V.isZero();
        }
        if (EqOk)
          Out.push_back(Cur);
      }
      return;
    }
    for (long long V = -1; V <= NVal + 2; ++V) {
      Cur[D] = V;
      Rec(D + 1);
    }
  };
  Rec(0);
  return Out;
}

/// Evaluates an access function at an instance.
std::vector<long long> evalAccess(const Access &A, const Instance &I,
                                  long long NVal, unsigned NumParams) {
  std::vector<long long> Idx;
  for (unsigned R = 0; R < A.Map.numRows(); ++R) {
    BigInt V = A.Map(R, A.Map.numCols() - 1);
    for (unsigned C = 0; C < I.size(); ++C)
      V += A.Map(R, C) * BigInt(I[C]);
    for (unsigned P = 0; P < NumParams; ++P)
      V += A.Map(R, static_cast<unsigned>(I.size()) + P) * BigInt(NVal);
    Idx.push_back(V.toInt64());
  }
  return Idx;
}

/// True if (S, T) lies in the dependence polyhedron of D.
bool inDepPoly(const Dependence &D, const Instance &S, const Instance &T,
               long long NVal, unsigned NumParams) {
  std::vector<long long> P = S;
  P.insert(P.end(), T.begin(), T.end());
  for (unsigned I = 0; I < NumParams; ++I)
    P.push_back(NVal);
  if (!satisfies(D.Poly.ineqs(), P))
    return false;
  for (unsigned R = 0; R < D.Poly.eqs().numRows(); ++R) {
    BigInt V = D.Poly.eqs()(R, D.Poly.numVars());
    for (unsigned C = 0; C < D.Poly.numVars(); ++C)
      V += D.Poly.eqs()(R, C) * BigInt(P[C]);
    if (!V.isZero())
      return false;
  }
  return true;
}

struct DepCase {
  const char *Name;
  const char *Src;
};

class DepCompleteness : public ::testing::TestWithParam<DepCase> {};

TEST_P(DepCompleteness, EveryConflictCovered) {
  auto Parsed = parseSource(GetParam().Src);
  ASSERT_TRUE(Parsed) << Parsed.error();
  Program Prog = Parsed->Prog;
  for (const std::string &Pm : Prog.ParamNames)
    Prog.addContextBound(Pm, 4);
  DepOptions DO;
  DO.IncludeInputDeps = false;
  DO.InputDepsMaxRankOnly = false;
  DependenceGraph G = computeDependences(Prog, DO);

  const long long NVal = 6;
  unsigned NP = Prog.numParams();

  std::vector<std::vector<Instance>> Instances;
  for (const Statement &St : Prog.Stmts)
    Instances.push_back(enumerateDomain(St, NVal, NP));

  // For every conflicting ordered pair of instances (textual execution
  // order, at least one write), some legality edge must contain it.
  auto execBefore = [&](unsigned SI, const Instance &A, unsigned TI,
                        const Instance &B) {
    unsigned Common = Prog.commonLoopDepth(Prog.Stmts[SI], Prog.Stmts[TI]);
    for (unsigned L = 0; L < Common; ++L) {
      if (A[L] != B[L])
        return A[L] < B[L];
    }
    if (SI != TI)
      return Prog.textuallyBefore(Prog.Stmts[SI], Prog.Stmts[TI]);
    return false; // Same instance.
  };

  for (unsigned SI = 0; SI < Prog.Stmts.size(); ++SI)
    for (unsigned TI = 0; TI < Prog.Stmts.size(); ++TI)
      for (const Instance &A : Instances[SI])
        for (const Instance &B : Instances[TI]) {
          if (!execBefore(SI, A, TI, B))
            continue;
          for (unsigned AI = 0; AI < Prog.Stmts[SI].Accesses.size(); ++AI)
            for (unsigned BI = 0; BI < Prog.Stmts[TI].Accesses.size();
                 ++BI) {
              const Access &AA = Prog.Stmts[SI].Accesses[AI];
              const Access &AB = Prog.Stmts[TI].Accesses[BI];
              if (AA.Array != AB.Array || (!AA.IsWrite && !AB.IsWrite))
                continue;
              if (evalAccess(AA, A, NVal, NP) !=
                  evalAccess(AB, B, NVal, NP))
                continue;
              // A conflicting ordered pair: must be covered.
              bool Covered = false;
              for (const Dependence &D : G.Deps) {
                if (!D.isLegalityDep() || D.SrcStmt != SI ||
                    D.DstStmt != TI || D.SrcAcc != AI || D.DstAcc != BI)
                  continue;
                if (inDepPoly(D, A, B, NVal, NP)) {
                  Covered = true;
                  break;
                }
              }
              EXPECT_TRUE(Covered)
                  << "uncovered conflict S" << SI << "->S" << TI
                  << " accesses " << AI << "/" << BI;
              if (!Covered)
                return; // One detailed failure is enough.
            }
        }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DepCompleteness,
    ::testing::Values(
        DepCase{"sweep", "for (i = 1; i < N; i++) { for (j = 1; j < N; "
                         "j++) { a[i][j] = a[i - 1][j] + a[i][j - 1]; } }"},
        DepCase{"jacobi",
                "for (t = 0; t < T; t++) { for (i = 2; i < N - 1; i++) { "
                "b[i] = a[i - 1] + a[i + 1]; } for (j = 2; j < N - 1; j++) "
                "{ a[j] = b[j]; } }"},
        DepCase{"lu", "for (k = 0; k < N; k++) { for (j = k + 1; j < N; "
                      "j++) { a[k][j] = a[k][j] / a[k][k]; } for (i = k + "
                      "1; i < N; i++) { for (j = k + 1; j < N; j++) { "
                      "a[i][j] = a[i][j] - a[i][k] * a[k][j]; } } }"},
        DepCase{"seq", "for (i = 0; i < N; i++) { c[i] = a[i]; }\n"
                       "for (j = 0; j < N; j++) { d[j] = c[j] + c[j]; }"}),
    [](const ::testing::TestParamInfo<DepCase> &I) {
      return std::string(I.param.Name);
    });

} // namespace
