//===- tests/service_test.cpp - Compilation service layer tests -----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Covers the src/service stack: PlutoOptions validation/equality/
// fingerprinting, the SHA-256 content hash, the result cache (LRU byte
// budget, disk persistence, single-flight dedup), Pipeline sessions
// (staged artifacts, reuse, cache keys) and the concurrent batch driver -
// including the determinism contract that cached and cold compiles of
// every examples/*.c kernel are byte-identical.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"
#include "service/Hash.h"
#include "service/Pipeline.h"
#include "service/ResultCache.h"
#include "service/Version.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>

#ifndef PLUTOPP_EXAMPLES_DIR
#error "PLUTOPP_EXAMPLES_DIR must be defined by the build"
#endif

using namespace pluto;
namespace fs = std::filesystem;

namespace {

const char *MatMul = "for (i = 0; i <= N - 1; i++)\n"
                     "  for (j = 0; j <= N - 1; j++)\n"
                     "    for (k = 0; k <= N - 1; k++)\n"
                     "      C[i][j] = C[i][j] + A[i][k] * B[k][j];\n";

const char *Jacobi = "for (t = 0; t <= T - 1; t++)\n"
                     "  for (i = 1; i <= N - 2; i++)\n"
                     "    b[i] = 0.333 * (a[i - 1] + a[i] + a[i + 1]);\n";

std::string tempDir(const std::string &Suffix) {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Dir = (Tmp && *Tmp) ? Tmp : "/tmp";
  return Dir + "/plutopp_service_test_" + std::to_string(getpid()) + Suffix;
}

std::vector<fs::path> exampleKernels() {
  std::vector<fs::path> Out;
  for (const auto &E : fs::directory_iterator(PLUTOPP_EXAMPLES_DIR))
    if (E.path().extension() == ".c")
      Out.push_back(E.path());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// PlutoOptions: validate / equality / fingerprint
//===----------------------------------------------------------------------===//

TEST(OptionsTest, DefaultsValidate) {
  EXPECT_TRUE(PlutoOptions().validate().hasValue());
}

TEST(OptionsTest, RejectsDegenerateValues) {
  {
    PlutoOptions O;
    O.TileSize = 0;
    auto V = O.validate();
    ASSERT_FALSE(V.hasValue());
    EXPECT_NE(V.error().find("tile size"), std::string::npos);
  }
  {
    PlutoOptions O;
    O.L2TileSize = 0;
    EXPECT_FALSE(O.validate().hasValue());
  }
  {
    PlutoOptions O;
    O.WavefrontDegrees = 0;
    EXPECT_FALSE(O.validate().hasValue());
  }
  {
    PlutoOptions O;
    O.ParamMin = -1;
    EXPECT_FALSE(O.validate().hasValue());
  }
}

// The library-level regression for the tile-size-zero bug: a zero must be
// rejected before supernode construction, through every entry point.
TEST(OptionsTest, ZeroTileSizeFailsFastThroughEveryEntryPoint) {
  PlutoOptions O;
  O.TileSize = 0;
  EXPECT_FALSE(Pipeline::create(O).hasValue());
  EXPECT_FALSE(optimizeSource(MatMul, O).hasValue());
  auto B = compileBatch({{"m", MatMul}}, O);
  EXPECT_FALSE(B.hasValue());
}

TEST(OptionsTest, EqualityIsFieldWise) {
  PlutoOptions A, B;
  EXPECT_TRUE(A == B);
  B.TileSize = 16;
  EXPECT_TRUE(A != B);
  B = A;
  B.CG.ParallelPragmaRows.insert(2);
  EXPECT_TRUE(A != B);
}

TEST(OptionsTest, FingerprintIsSensitiveToEveryField) {
  const PlutoOptions Base;
  std::vector<PlutoOptions> Variants(13, Base);
  Variants[0].Tile = false;
  Variants[1].TileSize = 16;
  Variants[2].SecondLevelTile = true;
  // L2TileSize only matters under SecondLevelTile (alone it is normalized
  // away; see FingerprintNormalizesIgnoredFields below).
  Variants[3].SecondLevelTile = true;
  Variants[3].L2TileSize = 4;
  Variants[4].Parallelize = false;
  Variants[5].WavefrontDegrees = 2;
  Variants[6].Vectorize = false;
  Variants[7].IncludeInputDeps = false;
  Variants[8].ParamMin = 8;
  Variants[9].CG.MaxPieces = 12;
  Variants[10].CG.EnableSeparation = false;
  Variants[11].CG.ParallelPragmaRows.insert(1);
  Variants[12].FastSchedule = false;

  std::set<std::string> Fps;
  Fps.insert(Base.fingerprint());
  for (const PlutoOptions &V : Variants) {
    EXPECT_TRUE(V != Base);
    Fps.insert(V.fingerprint());
  }
  // Base + every single-field variant are pairwise distinct.
  EXPECT_EQ(Fps.size(), Variants.size() + 1);
  // Equal options, equal fingerprint; fingerprints are deterministic.
  PlutoOptions Copy = Base;
  EXPECT_EQ(Copy.fingerprint(), Base.fingerprint());
}

// The fingerprint-aliasing bugfix: fields the pipeline ignores under the
// current toggles (a wavefront degree without parallelism, tile sizes on
// an untiled run) must not split the fingerprint - such option sets cannot
// produce different output and must share one cache entry.
TEST(OptionsTest, FingerprintNormalizesIgnoredFields) {
  // Wavefront degree is meaningless without parallelization.
  PlutoOptions A, B;
  A.Parallelize = B.Parallelize = false;
  A.WavefrontDegrees = 1;
  B.WavefrontDegrees = 3;
  EXPECT_TRUE(A != B); // equality stays field-wise...
  EXPECT_EQ(A.fingerprint(), B.fingerprint()); // ...fingerprint looks through

  // Tile sizes (both levels) are meaningless on an untiled run.
  PlutoOptions C, D;
  C.Tile = D.Tile = false;
  C.TileSize = 16;
  D.TileSize = 64;
  D.SecondLevelTile = true;
  D.L2TileSize = 4;
  EXPECT_EQ(C.fingerprint(), D.fingerprint());

  // The L2 multiplier is meaningless without second-level tiling.
  PlutoOptions E, F;
  E.L2TileSize = 4;
  F.L2TileSize = 16;
  EXPECT_EQ(E.SecondLevelTile, false);
  EXPECT_EQ(E.fingerprint(), F.fingerprint());

  // But the same fields DO split the fingerprint once their toggle is on.
  PlutoOptions G = E, H = F;
  G.SecondLevelTile = H.SecondLevelTile = true;
  EXPECT_NE(G.fingerprint(), H.fingerprint());

  // normalized() is idempotent and is what fingerprint() hashes.
  EXPECT_EQ(A.normalized().fingerprint(), A.fingerprint());
  EXPECT_TRUE(A.normalized() == A.normalized().normalized());
}

//===----------------------------------------------------------------------===//
// SHA-256
//===----------------------------------------------------------------------===//

TEST(HashTest, Fips180Vectors) {
  EXPECT_EQ(
      sha256Hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      sha256Hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(HashTest, IncrementalMatchesOneShot) {
  std::string S(1000, 'x');
  for (size_t I = 0; I < S.size(); ++I)
    S[I] = static_cast<char>('a' + I % 26);
  Sha256 H;
  for (size_t I = 0; I < S.size(); I += 37)
    H.update(S.substr(I, 37));
  EXPECT_EQ(H.hexDigest(), sha256Hex(S));
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, HitMissAndLruEvictionUnderByteBudget) {
  ResultCache::Config C;
  C.MaxBytes = 3 * (1 + 10); // three 1-byte keys with 10-byte values
  ResultCache Cache(C);

  EXPECT_FALSE(Cache.lookup("a").has_value());
  Cache.insert("a", std::string(10, 'A'));
  Cache.insert("b", std::string(10, 'B'));
  Cache.insert("c", std::string(10, 'C'));
  EXPECT_EQ(Cache.snapshot().Entries, 3u);
  EXPECT_EQ(Cache.snapshot().Evictions, 0u);

  // Touch "a" so "b" becomes least recently used, then overflow.
  EXPECT_TRUE(Cache.lookup("a").has_value());
  Cache.insert("d", std::string(10, 'D'));
  auto S = Cache.snapshot();
  EXPECT_EQ(S.Entries, 3u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_FALSE(Cache.lookup("b").has_value()); // the LRU victim
  EXPECT_TRUE(Cache.lookup("a").has_value());
  EXPECT_TRUE(Cache.lookup("c").has_value());
  EXPECT_TRUE(Cache.lookup("d").has_value());
  EXPECT_LE(Cache.snapshot().Bytes, C.MaxBytes);
}

TEST(ResultCacheTest, OversizedValueIsNotMemoryResident) {
  ResultCache::Config C;
  C.MaxBytes = 8;
  ResultCache Cache(C);
  Cache.insert("k", std::string(100, 'V'));
  auto S = Cache.snapshot();
  EXPECT_EQ(S.Entries, 0u); // evicted itself immediately
  EXPECT_EQ(S.Evictions, 1u);
}

TEST(ResultCacheTest, DiskTierPersistsAcrossInstances) {
  std::string Dir = tempDir("_disk");
  {
    ResultCache::Config C;
    C.DiskDir = Dir;
    ResultCache Cache(C);
    ASSERT_TRUE(Cache.diskEnabled());
    Cache.insert("deadbeef", "emitted unit\n");
  }
  // The on-disk layout is versioned (DESIGN.md section 9).
  EXPECT_TRUE(fs::exists(fs::path(Dir) / "v1" / "deadbeef.c"));
  {
    ResultCache::Config C;
    C.DiskDir = Dir;
    ResultCache Cache(C); // fresh memory tier
    auto V = Cache.lookup("deadbeef");
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, "emitted unit\n");
    EXPECT_EQ(Cache.snapshot().DiskHits, 1u);
    // Promoted: the second lookup is a memory hit.
    Cache.lookup("deadbeef");
    EXPECT_EQ(Cache.snapshot().Hits, 1u);
  }
  std::error_code Ec;
  fs::remove_all(Dir, Ec);
}

TEST(ResultCacheTest, SingleFlightComputesOncePerKey) {
  ResultCache Cache;
  std::atomic<unsigned> Computes{0};
  auto Slow = [&]() -> Result<std::string> {
    Computes.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return std::string("value");
  };
  std::vector<std::thread> Ts;
  std::atomic<unsigned> Successes{0};
  for (int I = 0; I < 4; ++I)
    Ts.emplace_back([&] {
      auto R = Cache.getOrCompute("key", Slow);
      if (R.hasValue() && *R == "value")
        Successes.fetch_add(1);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Computes.load(), 1u);
  EXPECT_EQ(Successes.load(), 4u);
  // Latecomers coalesced onto the leader's flight (or, if the leader
  // finished first, hit the cache); either way no recompute happened.
  auto S = Cache.snapshot();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Coalesced + S.Hits, 3u);
}

TEST(ResultCacheTest, FailedComputeIsNotCachedAndSharedWithWaiters) {
  ResultCache Cache;
  auto Fail = [&]() -> Result<std::string> { return Err("boom"); };
  auto R1 = Cache.getOrCompute("k", Fail);
  ASSERT_FALSE(R1.hasValue());
  EXPECT_EQ(R1.error(), "boom");
  // Not cached: the next call recomputes (and can succeed).
  auto R2 = Cache.getOrCompute("k", []() -> Result<std::string> {
    return std::string("ok");
  });
  ASSERT_TRUE(R2.hasValue());
  EXPECT_EQ(*R2, "ok");
}

//===----------------------------------------------------------------------===//
// Pipeline sessions
//===----------------------------------------------------------------------===//

TEST(PipelineTest, StagedArtifactsAreMemoizedAndReused) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  P->setSource(MatMul);

  auto Parsed = P->parsed();
  ASSERT_TRUE(Parsed.hasValue());
  const ParsedProgram *FirstParsed = *Parsed;
  EXPECT_EQ(FirstParsed->Prog.Stmts.size(), 1u);

  auto Low = P->lowered();
  ASSERT_TRUE(Low.hasValue());
  // The early artifact is still the same object after late stages ran.
  auto Parsed2 = P->parsed();
  ASSERT_TRUE(Parsed2.hasValue());
  EXPECT_EQ(*Parsed2, FirstParsed);

  auto Em = P->emitted();
  ASSERT_TRUE(Em.hasValue());
  EXPECT_NE((*Em)->find("#pragma omp parallel for"), std::string::npos);

  // setSource invalidates the session.
  P->setSource(Jacobi);
  auto Parsed3 = P->parsed();
  ASSERT_TRUE(Parsed3.hasValue());
  EXPECT_EQ((*Parsed3)->Prog.Stmts.size(), 1u);
}

TEST(PipelineTest, MatchesOneShotShim) {
  PlutoOptions Opts;
  auto P = Pipeline::create(Opts);
  ASSERT_TRUE(P.hasValue());
  P->setSource(MatMul);
  auto Staged = P->takeLowered();
  ASSERT_TRUE(Staged.hasValue());

  auto OneShot = optimizeSource(MatMul, Opts);
  ASSERT_TRUE(OneShot.hasValue());
  EXPECT_EQ(Staged->Sched.toString(Staged->program()),
            OneShot->Sched.toString(OneShot->program()));
}

TEST(PipelineTest, CacheKeyCanonicalizesWhitespaceButNotSemantics) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  std::string Base = P->cacheKey(MatMul);
  EXPECT_EQ(Base.size(), 64u);

  // CRLF line endings, trailing spaces, outer blank lines: same key.
  std::string Cosmetic;
  for (char C : std::string(MatMul))
    Cosmetic += (C == '\n') ? std::string("  \r\n") : std::string(1, C);
  EXPECT_EQ(P->cacheKey("\n\n" + Cosmetic + "\n\n"), Base);

  // A semantic change: different key.
  std::string Other = MatMul;
  Other[Other.find("N - 1")] = 'M';
  EXPECT_NE(P->cacheKey(Other), Base);

  // Different options: different key for the same source.
  PlutoOptions O2;
  O2.TileSize = 16;
  auto P2 = Pipeline::create(O2);
  ASSERT_TRUE(P2.hasValue());
  EXPECT_NE(P2->cacheKey(MatMul), Base);
}

TEST(PipelineTest, CompileHitsCacheOnSecondCall) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  auto Cache = std::make_shared<ResultCache>();
  P->attachCache(Cache);

  auto Cold = P->compile(MatMul);
  ASSERT_TRUE(Cold.hasValue());
  EXPECT_FALSE(Cold->CacheHit);

  auto WarmRes = P->compile(MatMul);
  ASSERT_TRUE(WarmRes.hasValue());
  EXPECT_TRUE(WarmRes->CacheHit);
  EXPECT_EQ(WarmRes->Key, Cold->Key);
  EXPECT_EQ(WarmRes->EmittedC, Cold->EmittedC);
  EXPECT_EQ(Cache->snapshot().Hits, 1u);
}

TEST(PipelineTest, ParseErrorsPropagateAndAreNotCached) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  auto Cache = std::make_shared<ResultCache>();
  P->attachCache(Cache);
  auto R = P->compile("while (1) { a[i] = 0.0; }\n");
  EXPECT_FALSE(R.hasValue());
  EXPECT_EQ(Cache->snapshot().Entries, 0u);
}

// The acceptance-criteria determinism sweep: for every examples/*.c
// kernel, a cold compile, a second cold compile (fresh session), and a
// cache-served compile must all emit byte-identical C.
TEST(PipelineTest, ColdAndCachedCompilesAreByteIdenticalForAllExamples) {
  auto Kernels = exampleKernels();
  ASSERT_FALSE(Kernels.empty());
  auto Cache = std::make_shared<ResultCache>();
  for (const fs::path &K : Kernels) {
    std::string Src = readFile(K);

    auto P1 = Pipeline::create();
    ASSERT_TRUE(P1.hasValue());
    auto Cold1 = P1->compile(Src);
    ASSERT_TRUE(Cold1.hasValue()) << K << ": " << Cold1.error();

    auto P2 = Pipeline::create();
    ASSERT_TRUE(P2.hasValue());
    auto Cold2 = P2->compile(Src);
    ASSERT_TRUE(Cold2.hasValue());
    EXPECT_EQ(Cold1->EmittedC, Cold2->EmittedC) << K;

    auto P3 = Pipeline::create();
    ASSERT_TRUE(P3.hasValue());
    P3->attachCache(Cache);
    auto Seed = P3->compile(Src); // populates
    ASSERT_TRUE(Seed.hasValue());
    auto Warm = P3->compile(Src); // served
    ASSERT_TRUE(Warm.hasValue());
    EXPECT_TRUE(Warm->CacheHit) << K;
    EXPECT_EQ(Warm->EmittedC, Cold1->EmittedC) << K;
  }
}

//===----------------------------------------------------------------------===//
// compileBatch
//===----------------------------------------------------------------------===//

TEST(BatchTest, DeterministicOrderingAndFailureIsolation) {
  std::vector<CompileJob> Jobs = {
      {"matmul", MatMul},
      {"bad", "while (1) { a[i] = 0.0; }\n"},
      {"jacobi", Jacobi},
      {"matmul-again", MatMul},
  };
  auto R = compileBatch(Jobs, PlutoOptions(), BatchOptions());
  ASSERT_TRUE(R.hasValue());
  ASSERT_EQ(R->size(), 4u);
  ASSERT_TRUE((*R)[0].hasValue());
  EXPECT_FALSE((*R)[1].hasValue()); // only the bad job fails
  ASSERT_TRUE((*R)[2].hasValue());
  ASSERT_TRUE((*R)[3].hasValue());
  // Identical jobs dedup onto one compile: same key, same bytes.
  EXPECT_EQ((*R)[0]->Key, (*R)[3]->Key);
  EXPECT_EQ((*R)[0]->EmittedC, (*R)[3]->EmittedC);
  EXPECT_NE((*R)[0]->Key, (*R)[2]->Key);
}

TEST(BatchTest, ConcurrentMatchesSerialByteForByte) {
  auto Kernels = exampleKernels();
  ASSERT_FALSE(Kernels.empty());
  std::vector<CompileJob> Jobs;
  for (const fs::path &K : Kernels)
    Jobs.push_back({K.filename().string(), readFile(K)});

  BatchOptions Serial;
  Serial.Jobs = 1;
  auto RS = compileBatch(Jobs, PlutoOptions(), Serial);
  ASSERT_TRUE(RS.hasValue());

  BatchOptions Par;
  Par.Jobs = 4;
  auto RP = compileBatch(Jobs, PlutoOptions(), Par);
  ASSERT_TRUE(RP.hasValue());

  ASSERT_EQ(RS->size(), RP->size());
  for (size_t I = 0; I < RS->size(); ++I) {
    ASSERT_TRUE((*RS)[I].hasValue()) << Jobs[I].Name;
    ASSERT_TRUE((*RP)[I].hasValue()) << Jobs[I].Name;
    EXPECT_EQ((*RS)[I]->EmittedC, (*RP)[I]->EmittedC) << Jobs[I].Name;
  }
}

TEST(BatchTest, SharedCacheMakesSecondBatchAllHits) {
  auto Kernels = exampleKernels();
  std::vector<CompileJob> Jobs;
  for (const fs::path &K : Kernels)
    Jobs.push_back({K.filename().string(), readFile(K)});

  BatchOptions BO;
  BO.Jobs = 2;
  BO.Cache = std::make_shared<ResultCache>();
  auto Cold = compileBatch(Jobs, PlutoOptions(), BO);
  ASSERT_TRUE(Cold.hasValue());
  auto Warm = compileBatch(Jobs, PlutoOptions(), BO);
  ASSERT_TRUE(Warm.hasValue());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    ASSERT_TRUE((*Warm)[I].hasValue());
    EXPECT_TRUE((*Warm)[I]->CacheHit) << Jobs[I].Name;
    EXPECT_EQ((*Warm)[I]->EmittedC, (*Cold)[I]->EmittedC);
  }
}

// The warm-vs-cold acceptance criterion at API level: serving the corpus
// from the cache must be at least 10x faster than compiling it.
TEST(BatchTest, WarmCacheIsAtLeastTenTimesFasterThanCold) {
  auto Kernels = exampleKernels();
  std::vector<CompileJob> Jobs;
  for (const fs::path &K : Kernels)
    Jobs.push_back({K.filename().string(), readFile(K)});

  BatchOptions BO;
  BO.Cache = std::make_shared<ResultCache>();
  auto T0 = std::chrono::steady_clock::now();
  auto Cold = compileBatch(Jobs, PlutoOptions(), BO);
  auto T1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(Cold.hasValue());

  // Best warm run of three, to be robust against scheduler noise.
  double WarmBest = 1e9;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto W0 = std::chrono::steady_clock::now();
    auto Warm = compileBatch(Jobs, PlutoOptions(), BO);
    auto W1 = std::chrono::steady_clock::now();
    ASSERT_TRUE(Warm.hasValue());
    for (const auto &R : *Warm)
      ASSERT_TRUE(R.hasValue() && R->CacheHit);
    WarmBest =
        std::min(WarmBest, std::chrono::duration<double>(W1 - W0).count());
  }
  double ColdSecs = std::chrono::duration<double>(T1 - T0).count();
  EXPECT_GE(ColdSecs, WarmBest * 10.0)
      << "cold " << ColdSecs << "s vs warm " << WarmBest << "s";
}

//===----------------------------------------------------------------------===//
// CompileRequest/CompileResponse: the StatusCode-taxonomy API surface
//===----------------------------------------------------------------------===//

TEST(CompileServiceTest, PipelineCompileRequestReportsOkThenCacheHit) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  auto Cache = std::make_shared<ResultCache>();
  P->attachCache(Cache);

  CompileRequest Req;
  Req.Name = "matmul";
  Req.Source = MatMul;
  CompileResponse R = P->compileRequest(Req);
  ASSERT_EQ(R.Status, StatusCode::Ok);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.exitCode(), 0);
  EXPECT_EQ(R.Name, "matmul");
  EXPECT_EQ(R.Key.size(), 64u);
  EXPECT_FALSE(R.CacheHit);
  EXPECT_NE(R.EmittedC.find("#pragma"), std::string::npos);
  EXPECT_TRUE(R.Error.empty());
  EXPECT_TRUE(R.Diags.empty());

  CompileResponse Again = P->compileRequest(Req);
  ASSERT_EQ(Again.Status, StatusCode::Ok);
  EXPECT_TRUE(Again.CacheHit);
  EXPECT_EQ(Again.Key, R.Key);
  EXPECT_EQ(Again.EmittedC, R.EmittedC);
}

TEST(CompileServiceTest, SourceErrorsCarryStructuredDiagnostics) {
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "broken";
  Req.Source = "for (i = 0; i < N; i++ {\n  a[i] = 0;\n}\n";
  CompileResponse R = P->compileRequest(Req);
  ASSERT_EQ(R.Status, StatusCode::SourceError);
  EXPECT_EQ(R.exitCode(), 2);
  EXPECT_FALSE(R.Error.empty());
  ASSERT_FALSE(R.Diags.empty());
  // Spans are 1-based and must point into the source, not be placeholders.
  for (const Diagnostic &D : R.Diags) {
    EXPECT_GE(D.Line, 1u);
    EXPECT_GE(D.Col, 1u);
    EXPECT_FALSE(D.Message.empty());
  }
}

TEST(CompileServiceTest, SessionOptionMismatchIsBadRequest) {
  PlutoOptions SessionOpts;
  auto P = Pipeline::create(SessionOpts);
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "mismatch";
  Req.Source = MatMul;
  Req.Opts.TileSize = SessionOpts.TileSize + 1;
  CompileResponse R = P->compileRequest(Req);
  EXPECT_EQ(R.Status, StatusCode::BadRequest);
  EXPECT_EQ(R.exitCode(), 2);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.EmittedC.empty());
}

// compileRequests with heterogeneous per-request option sets: valid
// requests succeed under their own options, an invalid option set fails
// only its own slot with the validate() message, and responses stay
// position-matched to requests.
TEST(CompileServiceTest, CompileRequestsIsolatesPerRequestBadOptions) {
  std::vector<CompileRequest> Reqs(4);
  Reqs[0].Name = "default";
  Reqs[0].Source = MatMul;
  Reqs[1].Name = "untiled";
  Reqs[1].Source = MatMul;
  Reqs[1].Opts.Tile = false;
  Reqs[2].Name = "bad-options";
  Reqs[2].Source = MatMul;
  Reqs[2].Opts.TileSize = 0;
  Reqs[3].Name = "jacobi";
  Reqs[3].Source = Jacobi;

  BatchOptions BO;
  BO.Jobs = 2;
  BO.Cache = std::make_shared<ResultCache>();
  auto Rs = compileRequests(Reqs, BO);
  ASSERT_EQ(Rs.size(), Reqs.size());

  EXPECT_EQ(Rs[0].Status, StatusCode::Ok);
  EXPECT_EQ(Rs[1].Status, StatusCode::Ok);
  EXPECT_EQ(Rs[3].Status, StatusCode::Ok);
  // Different options must key (and emit) differently.
  EXPECT_NE(Rs[0].Key, Rs[1].Key);
  EXPECT_NE(Rs[0].EmittedC, Rs[1].EmittedC);

  EXPECT_EQ(Rs[2].Status, StatusCode::BadRequest);
  EXPECT_EQ(Rs[2].Name, "bad-options");
  EXPECT_NE(Rs[2].Error.find("tile size"), std::string::npos)
      << "bad-request error should name the offending field: " << Rs[2].Error;
  EXPECT_TRUE(Rs[2].Key.empty());
}

TEST(CompileServiceTest, StatusErrorTagsSurviveTheCacheStringChannel) {
  using namespace pluto::detail;
  for (StatusCode S :
       {StatusCode::Ok, StatusCode::BadRequest, StatusCode::SourceError,
        StatusCode::ScheduleAbort, StatusCode::Internal,
        StatusCode::Overloaded}) {
    auto [Decoded, Msg] = decodeStatusError(encodeStatusError(S, "why"));
    EXPECT_EQ(Decoded, S);
    EXPECT_EQ(Msg, "why");
  }
  // Untagged strings (from code predating the taxonomy) classify Internal.
  auto [S, Msg] = decodeStatusError("plain failure");
  EXPECT_EQ(S, StatusCode::Internal);
  EXPECT_EQ(Msg, "plain failure");
}

TEST(CompileServiceTest, SharedDiagnosticSerializerShapesJson) {
  Diagnostic D;
  D.Line = 3;
  D.Col = 7;
  D.Message = "unexpected token '{'";
  std::string One;
  appendDiagnosticJson(One, "unit \"a\".c", D);
  EXPECT_EQ(One, "{\"unit\": \"unit \\\"a\\\".c\", \"line\": 3, \"col\": 7, "
                 "\"severity\": \"error\", \"message\": \"unexpected token "
                 "'{'\"}");
  EXPECT_EQ(diagnosticsJsonArray("u.c", {}), "[]");
  std::string Arr = diagnosticsJsonArray("u.c", {D, D});
  EXPECT_EQ(Arr.front(), '[');
  EXPECT_EQ(Arr.back(), ']');
  EXPECT_NE(Arr.find("}, {"), std::string::npos);
}

} // namespace
