//===- tests/reduction_test.cpp - Reduction-aware parallelization ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Reduction cycles (self flow+output dependences of `+=`-style statements
// whose rhs never reads the target) are tagged in the dependence graph,
// relaxed by the parallelism detector - a loop that only carries such
// cycles is parallel under a `reduction(...)` clause - and surfaced by the
// emitter as OpenMP clauses: plain `reduction(+:s)` for hoisted scalars,
// 4.5 array sections `reduction(+:y[0:(N)])` for rank-1 targets. The
// relaxation must not weaken transform legality, detection must stay
// conservative (plain `x = x + e` form is untouched), and the generated
// code must agree with the serial interpreter (JIT-differential).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "runtime/Interpreter.h"
#include "runtime/Jit.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pluto;

namespace {

unsigned countReductionDeps(const DependenceGraph &DG) {
  unsigned N = 0;
  for (const Dependence &D : DG.Deps)
    N += D.IsReduction;
  return N;
}

DependenceGraph depsOf(const char *Src, bool InputDeps = true) {
  auto P = parseSource(Src);
  EXPECT_TRUE(P) << (P ? "" : P.error());
  DepOptions DO;
  DO.IncludeInputDeps = InputDeps;
  return computeDependences(P->Prog, DO);
}

//===----------------------------------------------------------------------===//
// Detection: what is (and is not) a reduction
//===----------------------------------------------------------------------===//

TEST(ReductionDetect, DotProductSelfDepsAreTagged) {
  DependenceGraph DG = depsOf(kernels::DotProduct);
  EXPECT_GE(countReductionDeps(DG), 1u);
  for (const Dependence &D : DG.Deps)
    if (D.IsReduction) {
      EXPECT_EQ(D.RedOp, '+');
      EXPECT_EQ(D.SrcStmt, D.DstStmt);
      EXPECT_NE(D.Kind, DepKind::Input);
    }
}

TEST(ReductionDetect, PlainAssignFormIsNotTagged) {
  // The paper-suite atax spells its accumulations `y[j] = y[j] + e`: the
  // rhs reads the target, so detection must conservatively leave it alone.
  EXPECT_EQ(countReductionDeps(depsOf(kernels::Atax)), 0u);
}

TEST(ReductionDetect, RhsReadingTargetIsNotTagged) {
  // `s += a[i] * s` is not associative-combinable: rhs reads the target.
  EXPECT_EQ(countReductionDeps(depsOf("for (i = 0; i < N; i++) {\n"
                                      "  s += a[i] * s;\n"
                                      "}\n")),
            0u);
}

TEST(ReductionDetect, HighRankTargetIsNotTagged) {
  // Rank-2 targets have no array-section clause story yet: stay serial.
  EXPECT_EQ(countReductionDeps(depsOf("for (i = 0; i < N; i++) {\n"
                                      "  for (j = 0; j < N; j++) {\n"
                                      "    c[0][0] += a[i][j];\n"
                                      "  }\n"
                                      "}\n")),
            0u);
}

TEST(ReductionDetect, MinusAndTimesOpsCarryTheirOperator) {
  DependenceGraph DG = depsOf("for (i = 0; i < N; i++) {\n"
                              "  s -= a[i];\n"
                              "}\n");
  ASSERT_GE(countReductionDeps(DG), 1u);
  for (const Dependence &D : DG.Deps)
    if (D.IsReduction)
      EXPECT_EQ(D.RedOp, '-');
}

//===----------------------------------------------------------------------===//
// Scheduling: the relaxation creates parallelism but not illegality
//===----------------------------------------------------------------------===//

TEST(ReductionSchedule, DotProductLoopIsParallelWithClause) {
  auto R = optimizeSource(kernels::DotProduct);
  ASSERT_TRUE(R) << R.error();
  bool Found = false;
  for (const auto &Row : R->Sched.Rows)
    if (Row.IsParallel && !Row.Reductions.empty()) {
      Found = true;
      ASSERT_EQ(Row.Reductions.size(), 1u);
      EXPECT_EQ(Row.Reductions[0].Op, '+');
      EXPECT_EQ(Row.Reductions[0].Array, "s");
    }
  EXPECT_TRUE(Found) << "no reduction-parallel row in the schedule";
  // The relaxation is pragma-deep only: the schedule itself still honors
  // the reduction dependence, so the independent legality oracle passes.
  DependenceGraph DG = R->DG;
  Schedule S = R->Sched;
  EXPECT_TRUE(analyzeSchedule(R->program(), DG, S));
}

TEST(ReductionSchedule, WithoutRelaxationDotProductSerializes) {
  // Strip the tags and re-run parallelism detection: the loop must fall
  // back to sequential, proving the clause is what buys the parallelism.
  auto R = optimizeSource(kernels::DotProduct);
  ASSERT_TRUE(R) << R.error();
  DependenceGraph DG = R->DG;
  for (Dependence &D : DG.Deps)
    D.IsReduction = false;
  Schedule S = R->Sched;
  detectParallelism(R->program(), DG, S);
  for (const auto &Row : S.Rows)
    EXPECT_FALSE(Row.IsParallel && S.Rows.size() == 1);
}

//===----------------------------------------------------------------------===//
// Emission: clauses, scalar hoisting, array sections
//===----------------------------------------------------------------------===//

TEST(ReductionEmit, ScalarClauseAndHoistedLocal) {
  auto R = optimizeSource(kernels::DotProduct);
  ASSERT_TRUE(R) << R.error();
  EmitOptions EO;
  EO.Extents = {{"a", {"N"}}, {"b", {"N"}}};
  std::string C = emitC(R->program(), *R->Ast, EO);
  EXPECT_NE(C.find("reduction(+:s)"), std::string::npos) << C;
  // The scalar rides a function-local, not the usual deref macro, so the
  // clause names a real variable.
  EXPECT_NE(C.find("double s = *s_;"), std::string::npos) << C;
  EXPECT_NE(C.find("*s_ = s;"), std::string::npos) << C;
  EXPECT_EQ(C.find("#define s "), std::string::npos) << C;
}

TEST(ReductionEmit, RankOneTargetUsesArraySection) {
  PlutoOptions Opts;
  Opts.Tile = false; // Untiled, the reduction loop itself gets the pragma.
  auto R = optimizeSource(kernels::MatVecT, Opts);
  ASSERT_TRUE(R) << R.error();
  EmitOptions EO;
  EO.Extents = {{"y", {"N"}}, {"a", {"N", "N"}}, {"x", {"N"}}};
  std::string C = emitC(R->program(), *R->Ast, EO);
  EXPECT_NE(C.find("#pragma omp parallel for"), std::string::npos) << C;
  EXPECT_NE(C.find("reduction(+:y[0:(N)])"), std::string::npos) << C;
}

TEST(ReductionEmit, SerialOutputUnchangedForPlainKernels) {
  // No reduction in matmul (`c = c + e` form): byte contract intact, no
  // clause ever appears.
  auto R = optimizeSource(kernels::MatMul);
  ASSERT_TRUE(R) << R.error();
  EmitOptions EO;
  EO.Extents = {{"a", {"N", "N"}}, {"b", {"N", "N"}}, {"c", {"N", "N"}}};
  std::string C = emitC(R->program(), *R->Ast, EO);
  EXPECT_EQ(C.find("reduction("), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JIT-differential: parallel reduction code agrees with the serial oracle
//===----------------------------------------------------------------------===//

struct DiffCase {
  const char *Name;
  const char *Src;
  std::map<std::string, std::vector<std::string>> SymExtents;
  std::map<std::string, std::vector<long long>> Extents;
  std::map<std::string, long long> Params;
};

void runDifferential(const DiffCase &C) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  auto R = optimizeSource(C.Src);
  ASSERT_TRUE(R) << R.error();
  EmitOptions EO;
  EO.Extents = C.SymExtents;
  std::string Code = emitC(R->program(), *R->Ast, EO);
  auto K = CompiledKernel::compile(Code);
  ASSERT_TRUE(K) << (K ? "" : K.error()) << "\n" << Code;

  // Serial oracle: the interpreter on the original program order.
  auto Orig = buildOriginalAst(R->program());
  ASSERT_TRUE(Orig) << Orig.error();
  Interpreter I;
  I.allocate(R->program(), C.Extents);
  unsigned Seed = 1;
  for (auto &[Name, Tn] : I.Arrays)
    Tn.fillPattern(Seed++);
  std::map<std::string, std::vector<double>> Init;
  for (auto &[Name, Tn] : I.Arrays)
    Init[Name] = Tn.Data;
  I.Params = C.Params;
  ASSERT_TRUE(I.run(R->program(), **Orig));

  // JIT run of the transformed, clause-carrying code on identical inputs.
  std::vector<std::vector<double>> Bufs;
  for (const ArrayInfo &Ai : R->program().Arrays)
    Bufs.push_back(Init[Ai.Name]);
  std::vector<double *> Arrays;
  for (auto &B : Bufs)
    Arrays.push_back(B.data());
  std::vector<long long> Params;
  for (const std::string &P : R->program().ParamNames)
    Params.push_back(C.Params.at(P));
  K->call(Arrays, Params, {});

  unsigned Idx = 0;
  for (const ArrayInfo &Ai : R->program().Arrays) {
    const std::vector<double> &Want = I.Arrays[Ai.Name].Data;
    const std::vector<double> &Got = Bufs[Idx++];
    ASSERT_EQ(Want.size(), Got.size()) << Ai.Name;
    // Reassociation tolerance: parallel reduction order differs.
    for (size_t E = 0; E < Want.size(); ++E)
      ASSERT_NEAR(Want[E], Got[E], 1e-7 * (1.0 + std::fabs(Want[E])))
          << C.Name << ": " << Ai.Name << "[" << E << "]";
  }
}

TEST(ReductionDifferential, DotProduct) {
  runDifferential({"dotprod",
                   kernels::DotProduct,
                   {{"a", {"N"}}, {"b", {"N"}}},
                   {{"s", {}}, {"a", {257}}, {"b", {257}}},
                   {{"N", 257}}});
}

TEST(ReductionDifferential, MatVecT) {
  runDifferential({"matvect",
                   kernels::MatVecT,
                   {{"y", {"N"}}, {"a", {"N", "N"}}, {"x", {"N"}}},
                   {{"y", {33}}, {"a", {33, 33}}, {"x", {33}}},
                   {{"N", 33}}});
}

} // namespace
