//===- tests/codegen_test.cpp - Code generation & equivalence tests -------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The central oracle: for every kernel and every pipeline configuration,
// interpreting the generated (transformed, tiled, wavefronted) loop AST must
// produce the same array contents as interpreting the original program.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

using ExtentMap = std::map<std::string, std::vector<long long>>;

/// Runs Ast over freshly initialized tensors; returns final array state.
std::map<std::string, Tensor> runAst(const Program &Prog, const CgNode &Ast,
                                     const ExtentMap &Extents,
                                     const std::map<std::string, long long> &Params,
                                     const std::map<std::string, double> &Syms) {
  Interpreter I;
  I.allocate(Prog, Extents);
  unsigned Seed = 1;
  for (auto &[Name, T] : I.Arrays)
    T.fillPattern(Seed++);
  I.Params = Params;
  I.SymConsts = Syms;
  auto R = I.run(Prog, Ast);
  EXPECT_TRUE(R) << (R ? "" : R.error());
  return I.Arrays;
}

void expectSameTensors(const std::map<std::string, Tensor> &A,
                       const std::map<std::string, Tensor> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (const auto &[Name, TA] : A) {
    const Tensor &TB = B.at(Name);
    ASSERT_EQ(TA.Data.size(), TB.Data.size()) << Name;
    for (size_t I = 0; I < TA.Data.size(); ++I) {
      double X = TA.Data[I], Y = TB.Data[I];
      double Tol = 1e-9 * (1.0 + std::max(std::abs(X), std::abs(Y)));
      ASSERT_NEAR(X, Y, Tol) << Name << "[" << I << "]";
    }
  }
}

/// Full-pipeline equivalence check for one kernel and option set.
void checkEquivalence(const char *Src, const PlutoOptions &Opts,
                      const ExtentMap &Extents,
                      const std::map<std::string, long long> &Params,
                      const std::map<std::string, double> &Syms = {}) {
  auto Res = optimizeSource(Src, Opts);
  ASSERT_TRUE(Res) << (Res ? "" : Res.error());
  auto Orig = buildOriginalAst(Res->program());
  ASSERT_TRUE(Orig) << (Orig ? "" : Orig.error());
  auto Want = runAst(Res->program(), **Orig, Extents, Params, Syms);
  auto Got = runAst(Res->program(), *Res->Ast, Extents, Params, Syms);
  expectSameTensors(Want, Got);
}

PlutoOptions withTile(unsigned Size, bool Wavefront = true) {
  PlutoOptions O;
  O.Tile = Size > 0;
  O.TileSize = Size ? Size : 32;
  O.Parallelize = Wavefront;
  return O;
}

TEST(CodegenTest, OriginalMatMulMatchesDirectComputation) {
  auto P = parseSource(kernels::MatMul);
  ASSERT_TRUE(P) << P.error();
  auto Ast = buildOriginalAst(P->Prog);
  ASSERT_TRUE(Ast) << Ast.error();
  long long N = 7;
  auto Out = runAst(P->Prog, **Ast, {{"a", {N, N}}, {"b", {N, N}},
                                     {"c", {N, N}}},
                    {{"N", N}}, {});
  // Reference: recompute with the same initial fill.
  Interpreter Ref;
  Ref.allocate(P->Prog, {{"a", {N, N}}, {"b", {N, N}}, {"c", {N, N}}});
  unsigned Seed = 1;
  for (auto &[Name, T] : Ref.Arrays)
    T.fillPattern(Seed++);
  auto &A = Ref.Arrays["a"], &B = Ref.Arrays["b"], &C = Ref.Arrays["c"];
  for (long long I = 0; I < N; ++I)
    for (long long J = 0; J < N; ++J)
      for (long long K = 0; K < N; ++K)
        C.at({I, J}) += A.at({I, K}) * B.at({K, J});
  for (long long I = 0; I < N * N; ++I)
    EXPECT_DOUBLE_EQ(Out["c"].Data[static_cast<size_t>(I)],
                     C.Data[static_cast<size_t>(I)]);
}

TEST(CodegenTest, MatMulTiledEquivalent) {
  checkEquivalence(kernels::MatMul, withTile(4),
                   {{"a", {13, 13}}, {"b", {13, 13}}, {"c", {13, 13}}},
                   {{"N", 13}});
}

TEST(CodegenTest, MatMulUntiledEquivalent) {
  checkEquivalence(kernels::MatMul, withTile(0),
                   {{"a", {9, 9}}, {"b", {9, 9}}, {"c", {9, 9}}},
                   {{"N", 9}});
}

TEST(CodegenTest, Jacobi1DTransformedEquivalent) {
  checkEquivalence(kernels::Jacobi1D, withTile(0),
                   {{"a", {20}}, {"b", {20}}}, {{"T", 9}, {"N", 20}});
}

TEST(CodegenTest, Jacobi1DTiledWavefrontEquivalent) {
  checkEquivalence(kernels::Jacobi1D, withTile(4),
                   {{"a", {25}}, {"b", {25}}}, {{"T", 11}, {"N", 25}});
}

TEST(CodegenTest, Sweep2DTiledEquivalent) {
  checkEquivalence(kernels::Sweep2D, withTile(3), {{"a", {14, 14}}},
                   {{"N", 14}});
}

TEST(CodegenTest, LUTiledWavefrontEquivalent) {
  checkEquivalence(kernels::LU, withTile(4), {{"a", {12, 12}}}, {{"N", 12}});
}

TEST(CodegenTest, MVTFusedEquivalent) {
  checkEquivalence(kernels::MVT, withTile(4),
                   {{"a", {10, 10}}, {"x1", {10}}, {"x2", {10}},
                    {"y1", {10}}, {"y2", {10}}},
                   {{"N", 10}});
}

TEST(CodegenTest, Seidel2DTiledWavefrontEquivalent) {
  checkEquivalence(kernels::Seidel2D, withTile(3), {{"a", {12, 12}}},
                   {{"T", 5}, {"N", 12}});
}

TEST(CodegenTest, Fdtd2DEquivalent) {
  checkEquivalence(kernels::Fdtd2D, withTile(4),
                   {{"ex", {9, 10}}, {"ey", {10, 9}}, {"hz", {9, 9}},
                    {"fict", {6}}},
                   {{"tmax", 6}, {"nx", 9}, {"ny", 9}},
                   {{"coeff1", 0.5}, {"coeff2", 0.7}});
}

TEST(CodegenTest, SecondLevelTilingEquivalent) {
  PlutoOptions O = withTile(3);
  O.SecondLevelTile = true;
  O.L2TileSize = 2;
  checkEquivalence(kernels::MatMul, O,
                   {{"a", {11, 11}}, {"b", {11, 11}}, {"c", {11, 11}}},
                   {{"N", 11}});
}

TEST(CodegenTest, GuardModeEquivalent) {
  PlutoOptions O = withTile(4);
  O.CG.EnableSeparation = false;
  checkEquivalence(kernels::Jacobi1D, O, {{"a", {18}}, {"b", {18}}},
                   {{"T", 7}, {"N", 18}});
}

TEST(CodegenTest, NoVectorizeEquivalent) {
  PlutoOptions O = withTile(4);
  O.Vectorize = false;
  checkEquivalence(kernels::LU, O, {{"a", {11, 11}}}, {{"N", 11}});
}

TEST(CodegenTest, EmitterProducesCompilableLookingSource) {
  auto Res = optimizeSource(kernels::Jacobi1D, withTile(4));
  ASSERT_TRUE(Res) << (Res ? "" : Res.error());
  EmitOptions EO;
  EO.Extents = {{"a", {"N"}}, {"b", {"N"}}};
  std::string C = emitC(Res->program(), *Res->Ast, EO);
  EXPECT_NE(C.find("#define S0(t, i)"), std::string::npos);
  EXPECT_NE(C.find("#define S1(t, j)"), std::string::npos);
  // Arrays appear in first-appearance order: b (written by S0) then a.
  EXPECT_NE(C.find("void kernel(double *restrict b_, double *restrict a_, "
                   "long long T, long long N)"),
            std::string::npos);
  EXPECT_NE(C.find("for (long long c1"), std::string::npos);
  EXPECT_NE(C.find("floord"), std::string::npos);
}

TEST(CodegenTest, ParallelPragmaEmittedForMatMul) {
  auto Res = optimizeSource(kernels::MatMul, withTile(8));
  ASSERT_TRUE(Res) << (Res ? "" : Res.error());
  EmitOptions EO;
  EO.Extents = {{"a", {"N", "N"}}, {"b", {"N", "N"}}, {"c", {"N", "N"}}};
  std::string C = emitC(Res->program(), *Res->Ast, EO);
  EXPECT_NE(C.find("#pragma omp parallel for"), std::string::npos);
}

// Parameterized equivalence sweep: kernel x problem size x tile size.
struct SweepCase {
  const char *Name;
  const char *Src;
  unsigned TileSize;
  long long Size;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EquivalenceSweep, TransformedMatchesOriginal) {
  const SweepCase &C = GetParam();
  long long N = C.Size;
  ExtentMap Extents;
  std::map<std::string, long long> Params;
  std::map<std::string, double> Syms;
  std::string Src = C.Src;
  if (Src == kernels::MatMul) {
    Extents = {{"a", {N, N}}, {"b", {N, N}}, {"c", {N, N}}};
    Params = {{"N", N}};
  } else if (Src == kernels::Jacobi1D) {
    Extents = {{"a", {N}}, {"b", {N}}};
    Params = {{"T", N / 2}, {"N", N}};
  } else if (Src == kernels::LU) {
    Extents = {{"a", {N, N}}};
    Params = {{"N", N}};
  } else if (Src == kernels::Seidel2D) {
    Extents = {{"a", {N, N}}};
    Params = {{"T", 4}, {"N", N}};
  } else if (Src == kernels::MVT) {
    Extents = {{"a", {N, N}}, {"x1", {N}}, {"x2", {N}}, {"y1", {N}},
               {"y2", {N}}};
    Params = {{"N", N}};
  }
  checkEquivalence(C.Src, withTile(C.TileSize), Extents, Params, Syms);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EquivalenceSweep,
    ::testing::Values(
        SweepCase{"matmul_t2_n8", kernels::MatMul, 2, 8},
        SweepCase{"matmul_t5_n17", kernels::MatMul, 5, 17},
        SweepCase{"jacobi_t3_n15", kernels::Jacobi1D, 3, 15},
        SweepCase{"jacobi_t8_n33", kernels::Jacobi1D, 8, 33},
        SweepCase{"lu_t3_n10", kernels::LU, 3, 10},
        SweepCase{"lu_t5_n16", kernels::LU, 5, 16},
        SweepCase{"seidel_t4_n13", kernels::Seidel2D, 4, 13},
        SweepCase{"mvt_t3_n11", kernels::MVT, 3, 11},
        SweepCase{"mvt_t6_n14", kernels::MVT, 6, 14}),
    [](const ::testing::TestParamInfo<SweepCase> &I) {
      return std::string(I.param.Name);
    });

} // namespace
