//===- tests/parser_test.cpp - Frontend unit tests ------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "driver/Kernels.h"
#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

TEST(LexerTest, TokenKinds) {
  std::string Error;
  auto Toks = tokenize("for (i = 0; i <= N-1; i++) a[i] += 0.5;", Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_GE(Toks.size(), 5u);
  EXPECT_TRUE(Toks[0].isIdent("for"));
  EXPECT_TRUE(Toks[1].isPunct("("));
  EXPECT_TRUE(Toks[2].isIdent("i"));
  bool SawLe = false, SawIncr = false, SawPlusEq = false, SawFloat = false;
  for (const Token &T : Toks) {
    SawLe |= T.isPunct("<=");
    SawIncr |= T.isPunct("++");
    SawPlusEq |= T.isPunct("+=");
    SawFloat |= T.is(Token::Kind::FloatLit) && T.Text == "0.5";
  }
  EXPECT_TRUE(SawLe && SawIncr && SawPlusEq && SawFloat);
}

TEST(LexerTest, SkipsCommentsAndPragmas) {
  std::string Error;
  auto Toks = tokenize("// line\n#pragma scop\n/* block\n */ x", Error);
  EXPECT_TRUE(Error.empty());
  ASSERT_EQ(Toks.size(), 2u); // "x" + End.
  EXPECT_TRUE(Toks[0].isIdent("x"));
}

TEST(LexerTest, TracksLines) {
  std::string Error;
  auto Toks = tokenize("a\nb", Error);
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
}

TEST(ExprTest, ToAffine) {
  // 2*i - j + 3*N + 4 over dims {i: 0, j: 1, N: 2}.
  ExprPtr E = Expr::binary(
      "+",
      Expr::binary("-", Expr::binary("*", Expr::intLit(2), Expr::var("i")),
                   Expr::var("j")),
      Expr::binary("+", Expr::binary("*", Expr::intLit(3), Expr::var("N")),
                   Expr::intLit(4)));
  DimMap Dims = {{"i", 0}, {"j", 1}, {"N", 2}};
  auto Row = toAffine(*E, Dims, 4);
  ASSERT_TRUE(Row.has_value());
  EXPECT_EQ((*Row)[0].toInt64(), 2);
  EXPECT_EQ((*Row)[1].toInt64(), -1);
  EXPECT_EQ((*Row)[2].toInt64(), 3);
  EXPECT_EQ((*Row)[3].toInt64(), 4);
}

TEST(ExprTest, ToAffineRejectsNonAffine) {
  DimMap Dims = {{"i", 0}, {"j", 1}};
  ExprPtr Prod = Expr::binary("*", Expr::var("i"), Expr::var("j"));
  EXPECT_FALSE(toAffine(*Prod, Dims, 3).has_value());
  ExprPtr Unknown = Expr::var("z");
  EXPECT_FALSE(toAffine(*Unknown, Dims, 3).has_value());
  ExprPtr Div = Expr::binary("/", Expr::var("i"), Expr::intLit(2));
  EXPECT_FALSE(toAffine(*Div, Dims, 3).has_value());
}

TEST(ExprTest, ToCWithSubstitution) {
  ExprPtr E = Expr::binary("+", Expr::arrayRef("a", {Expr::var("i")}),
                           Expr::floatLit("0.5"));
  std::map<std::string, std::string> Subst = {{"i", "c1 - c2"}};
  EXPECT_EQ(E->toC(Subst), "(a[(c1 - c2)] + 0.5)");
}

TEST(ParserTest, MatMul) {
  auto P = parseSource(kernels::MatMul);
  ASSERT_TRUE(P) << P.error();
  const Program &Prog = P->Prog;
  ASSERT_EQ(Prog.Stmts.size(), 1u);
  const Statement &S = Prog.Stmts[0];
  EXPECT_EQ(S.IterNames, (std::vector<std::string>{"i", "j", "k"}));
  EXPECT_EQ(Prog.ParamNames, (std::vector<std::string>{"N"}));
  // c write, c read, a read, b read.
  ASSERT_EQ(S.Accesses.size(), 4u);
  EXPECT_TRUE(S.Accesses[0].IsWrite);
  EXPECT_EQ(S.Accesses[0].Array, "c");
  // Domain: 6 inequalities (3 loops x lb/ub).
  EXPECT_EQ(S.Domain.numIneqs(), 6u);
  EXPECT_EQ(S.Domain.numVars(), 4u); // i, j, k, N.
}

TEST(ParserTest, MatMulAccessMaps) {
  auto P = parseSource(kernels::MatMul);
  ASSERT_TRUE(P) << P.error();
  const Statement &S = P->Prog.Stmts[0];
  // a[i][k]: row0 selects i, row1 selects k. Columns: i j k N 1.
  const Access *ARead = nullptr;
  for (const Access &A : S.Accesses)
    if (A.Array == "a")
      ARead = &A;
  ASSERT_NE(ARead, nullptr);
  ASSERT_EQ(ARead->Map.numRows(), 2u);
  EXPECT_EQ(ARead->Map(0, 0).toInt64(), 1);
  EXPECT_EQ(ARead->Map(1, 2).toInt64(), 1);
}

TEST(ParserTest, Jacobi1DImperfectNest) {
  auto P = parseSource(kernels::Jacobi1D);
  ASSERT_TRUE(P) << P.error();
  const Program &Prog = P->Prog;
  ASSERT_EQ(Prog.Stmts.size(), 2u);
  EXPECT_EQ(Prog.Stmts[0].IterNames,
            (std::vector<std::string>{"t", "i"}));
  EXPECT_EQ(Prog.Stmts[1].IterNames,
            (std::vector<std::string>{"t", "j"}));
  // Both share the t loop only.
  EXPECT_EQ(Prog.commonLoopDepth(Prog.Stmts[0], Prog.Stmts[1]), 1u);
  EXPECT_TRUE(Prog.textuallyBefore(Prog.Stmts[0], Prog.Stmts[1]));
  EXPECT_FALSE(Prog.textuallyBefore(Prog.Stmts[1], Prog.Stmts[0]));
  // Params: T and N.
  EXPECT_EQ(Prog.ParamNames, (std::vector<std::string>{"T", "N"}));
}

TEST(ParserTest, Fdtd2DSymConsts) {
  auto P = parseSource(kernels::Fdtd2D);
  ASSERT_TRUE(P) << P.error();
  EXPECT_EQ(P->Prog.Stmts.size(), 4u);
  // coeff1/coeff2 are read-only scalars in bodies: symbolic constants.
  EXPECT_EQ(P->SymConsts,
            (std::vector<std::string>{"coeff1", "coeff2"}));
  // fict is a read-only 1-d array.
  const ArrayInfo *Fict = P->Prog.findArray("fict");
  ASSERT_NE(Fict, nullptr);
  EXPECT_EQ(Fict->Rank, 1u);
  EXPECT_FALSE(Fict->IsWritten);
  const ArrayInfo *Hz = P->Prog.findArray("hz");
  ASSERT_NE(Hz, nullptr);
  EXPECT_TRUE(Hz->IsWritten);
}

TEST(ParserTest, LUTriangularDomain) {
  auto P = parseSource(kernels::LU);
  ASSERT_TRUE(P) << P.error();
  ASSERT_EQ(P->Prog.Stmts.size(), 2u);
  const Statement &S2 = P->Prog.Stmts[1];
  EXPECT_EQ(S2.IterNames, (std::vector<std::string>{"k", "i", "j"}));
  // Domain contains i >= k+1, i.e. row (-1, 1, 0, 0, -1) over (k,i,j,N,1).
  ConstraintSystem D = S2.Domain;
  EXPECT_TRUE(D.impliesIneq({BigInt(-1), BigInt(1), BigInt(0), BigInt(0),
                             BigInt(-1)}));
}

TEST(ParserTest, CompoundAssignmentReads) {
  auto P = parseSource("for (i = 0; i < N; i++) { s[i] += q[i]; }");
  ASSERT_TRUE(P) << P.error();
  const Statement &S = P->Prog.Stmts[0];
  // s write, s read (compound), q read.
  ASSERT_EQ(S.Accesses.size(), 3u);
  EXPECT_TRUE(S.Accesses[0].IsWrite);
  EXPECT_FALSE(S.Accesses[1].IsWrite);
  EXPECT_EQ(S.Accesses[1].Array, "s");
}

TEST(ParserTest, MinMaxBounds) {
  auto P = parseSource(
      "for (i = max(0, M - 4); i <= min(N, M + 4); i++) { a[i] = i; }");
  ASSERT_TRUE(P) << P.error();
  const Statement &S = P->Prog.Stmts[0];
  // 2 lower + 2 upper bounds.
  EXPECT_EQ(S.Domain.numIneqs(), 4u);
}

TEST(ParserTest, StrictBoundAndDeclSkipping) {
  auto P = parseSource("int i, j;\ndouble a[100];\n"
                       "for (i = 0; i < 10; i++) a[i] = 1.0;");
  ASSERT_TRUE(P) << P.error();
  const Statement &S = P->Prog.Stmts[0];
  // i <= 9 must be implied.
  EXPECT_TRUE(
      S.Domain.impliesIneq({BigInt(-1), BigInt(9)}));
}

TEST(ParserTest, RejectsNonAffine) {
  auto P1 = parseSource("for (i = 0; i < N; i++) a[i*i] = 0.0;");
  EXPECT_FALSE(P1);
  auto P2 = parseSource("for (i = 0; i < N*M; i++) a[i] = 0.0;");
  EXPECT_FALSE(P2);
  auto P3 = parseSource("for (i = 0; i < N; i++) if (i > 2) a[i] = 0.0;");
  EXPECT_FALSE(P3);
  auto P4 = parseSource("for (i = N; i > 0; i--) a[i] = 0.0;");
  EXPECT_FALSE(P4);
}

TEST(ParserTest, RejectsEmptyRegion) {
  EXPECT_FALSE(parseSource("int x;"));
}

TEST(ParserTest, ScalarWriteBecomesZeroDimArray) {
  auto P = parseSource("for (i = 0; i < N; i++) { s = s + a[i]; }");
  ASSERT_TRUE(P) << P.error();
  const ArrayInfo *S = P->Prog.findArray("s");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Rank, 0u);
  EXPECT_TRUE(S->IsWritten);
}

TEST(ParserTest, AllPaperKernelsParse) {
  for (const char *Src :
       {kernels::Jacobi1D, kernels::Fdtd2D, kernels::LU, kernels::MVT,
        kernels::Seidel2D, kernels::MatMul, kernels::Sweep2D}) {
    auto P = parseSource(Src);
    EXPECT_TRUE(P) << P.error();
  }
}

} // namespace
