//===- tests/cli_test.cpp - plutopp CLI end-to-end tests ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Drives the installed tools/plutopp binary as a subprocess on the
// examples/ kernels: exit codes, emitted-C shape (and that it compiles,
// when a system compiler exists), and the --report=json document.
//
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#ifndef PLUTOPP_CLI_PATH
#error "PLUTOPP_CLI_PATH must be defined by the build"
#endif
#ifndef PLUTOPP_EXAMPLES_DIR
#error "PLUTOPP_EXAMPLES_DIR must be defined by the build"
#endif

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Stdout;
};

/// Runs `PLUTOPP_CLI_PATH <args>` capturing stdout; stderr goes to the
/// test log. popen gives no portable stderr capture, so tests that need
/// the report use --out (which moves the report to stdout).
RunResult runCli(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(PLUTOPP_CLI_PATH) + " " + Args;
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), P)) > 0)
    R.Stdout.append(Buf.data(), N);
  int Status = pclose(P);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string examplePath(const std::string &Name) {
  return std::string(PLUTOPP_EXAMPLES_DIR) + "/" + Name;
}

std::string tempPath(const std::string &Suffix) {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Dir = (Tmp && *Tmp) ? Tmp : "/tmp";
  return Dir + "/plutopp_cli_test_" + std::to_string(getpid()) + Suffix;
}

//===----------------------------------------------------------------------===//
// A minimal recursive-descent JSON validator: enough to check the report
// is well-formed and to read top-level numeric fields.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\n' ||
                              S[Pos] == '\t' || S[Pos] == '\r'))
      ++Pos;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    return Pos > Start;
  }
  bool value() {
    skipWs();
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    skipWs();
    if (Pos >= S.size() || S[Pos] != '}')
      return false;
    ++Pos;
    return true;
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (Pos < S.size() && S[Pos] == ',') {
        ++Pos;
        continue;
      }
      break;
    }
    skipWs();
    if (Pos >= S.size() || S[Pos] != ']')
      return false;
    ++Pos;
    return true;
  }
};

/// Reads the numeric value following `"Key": ` (first occurrence).
double numberAfterKey(const std::string &J, const std::string &Key) {
  size_t At = J.find("\"" + Key + "\": ");
  if (At == std::string::npos)
    return -1.0;
  return std::atof(J.c_str() + At + Key.size() + 4);
}

TEST(CliTest, EmitsParallelOpenMpC) {
  for (const char *K : {"matmul.c", "jacobi1d.c", "lu.c", "mvt.c",
                        "seidel2d.c"}) {
    RunResult R = runCli("--tile --parallel " + examplePath(K));
    EXPECT_EQ(R.ExitCode, 0) << K;
    EXPECT_NE(R.Stdout.find("for ("), std::string::npos) << K;
    EXPECT_NE(R.Stdout.find("#pragma omp parallel for"), std::string::npos)
        << K;
  }
}

TEST(CliTest, NoParallelSuppressesPragmas) {
  RunResult R = runCli("--no-parallel " + examplePath("matmul.c"));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout.find("#pragma omp parallel for"), std::string::npos);
}

TEST(CliTest, ErrorExitCodes) {
  EXPECT_EQ(runCli("/nonexistent/input.c").ExitCode, 1);
  EXPECT_EQ(runCli("--frobnicate " + examplePath("matmul.c")).ExitCode, 1);
  // Invalid restricted-C input is the "bad input" class of error: exit 2,
  // with a source-located diagnostic on stderr.
  std::string Bad = tempPath("_bad.c");
  {
    std::ofstream Out(Bad);
    Out << "while (1) { a[i] = 0.0; }\n";
  }
  EXPECT_EQ(runCli(Bad).ExitCode, 2);
  std::remove(Bad.c_str());
  EXPECT_EQ(runCli("--help").ExitCode, 0);
}

// One compile of a file with three distinct problems must surface all
// three (error recovery), each with its line:col span, both as stderr
// text with caret snippets and as structured entries in the JSON
// report's "diagnostics" array - and exit 2.
TEST(CliTest, MultiErrorSourceReportsEveryDiagnostic) {
  std::string Bad = tempPath("_bad3.c");
  {
    std::ofstream Out(Bad);
    Out << "for (i = 0; i < N; i++) {\n"
           "  a[i] = ;\n"
           "  b[i] @ 1.0;\n"
           "  c[i] = a[i] +;\n"
           "}\n";
  }
  RunResult R = runCli("--report=json " + Bad + " 2>&1");
  EXPECT_EQ(R.ExitCode, 2);
  // Every line's problem is reported with its span (recovery kept going).
  EXPECT_NE(R.Stdout.find("line 2, col"), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("line 3, col"), std::string::npos) << R.Stdout;
  EXPECT_NE(R.Stdout.find("line 4, col"), std::string::npos) << R.Stdout;
  // Caret snippets point into the offending source line.
  EXPECT_NE(R.Stdout.find("^"), std::string::npos);
  // The JSON report carries structured entries.
  EXPECT_NE(R.Stdout.find("\"diagnostics\": ["), std::string::npos);
  EXPECT_NE(R.Stdout.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(R.Stdout.find("\"severity\": \"error\""), std::string::npos);
  std::remove(Bad.c_str());
}

// A clean compile's JSON report still has the (empty) diagnostics array,
// so consumers can key on it unconditionally.
TEST(CliTest, CleanReportHasEmptyDiagnosticsArray) {
  std::string Out = tempPath("_clean.c");
  RunResult R =
      runCli("--out=" + Out + " --report=json " + examplePath("matmul.c"));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Stdout.find("\"diagnostics\": []"), std::string::npos)
      << R.Stdout;
  std::remove(Out.c_str());
}

// Regression for the unvalidated-zero-tile-size path: option validation
// (PlutoOptions::validate() via the service layer) must fail fast with
// exit code 2 - the options class of error - before a degenerate supernode
// is ever constructed, and before inputs are even read.
TEST(CliTest, InvalidOptionsExitCode2) {
  EXPECT_EQ(runCli("--tile-size=0 " + examplePath("matmul.c")).ExitCode, 2);
  // Rejected even when tiling is off: the option set itself is invalid.
  EXPECT_EQ(runCli("--no-tile --tile-size=0 " + examplePath("matmul.c"))
                .ExitCode,
            2);
  EXPECT_EQ(runCli("--l2tile-size=0 " + examplePath("matmul.c")).ExitCode, 2);
  EXPECT_EQ(runCli("--param-min=-3 " + examplePath("matmul.c")).ExitCode, 2);
  // Validation happens before input I/O: a nonexistent file with bad
  // options still reports the options error (2), not the I/O error (1).
  EXPECT_EQ(runCli("--tile-size=0 /nonexistent/input.c").ExitCode, 2);
  // Garbage (non-numeric) arguments remain the generic CLI error.
  EXPECT_EQ(runCli("--tile-size=banana " + examplePath("matmul.c")).ExitCode,
            1);
}

TEST(CliTest, OutFlagWritesFileAndFreesStdout) {
  std::string Out = tempPath("_matmul_tiled.c");
  RunResult R = runCli("--out=" + Out + " " + examplePath("matmul.c"));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Stdout, ""); // No report requested: stdout stays empty.
  std::ifstream In(Out);
  ASSERT_TRUE(In.good());
  std::stringstream SS;
  SS << In.rdbuf();
  EXPECT_NE(SS.str().find("#pragma omp parallel for"), std::string::npos);
  std::remove(Out.c_str());
}

TEST(CliTest, ReportJsonIsWellFormedWithLivePassData) {
  std::string Out = tempPath("_report_kernel.c");
  RunResult R = runCli("--tile --parallel --report=json --out=" + Out +
                       " " + examplePath("matmul.c"));
  ASSERT_EQ(R.ExitCode, 0);
  std::remove(Out.c_str());
  const std::string &J = R.Stdout;

  ASSERT_TRUE(JsonChecker(J).valid()) << J;
  // The documented members.
  for (const char *Key : {"passes", "counters", "deps_by_level", "trace"})
    EXPECT_NE(J.find(std::string("\"") + Key + "\""), std::string::npos)
        << Key;
  // Non-zero timers for all five passes.
  for (const char *P : {"parse", "deps", "schedule", "tile", "codegen"}) {
    size_t At = J.find(std::string("\"") + P + "\": {\"seconds\": ");
    ASSERT_NE(At, std::string::npos) << P;
    EXPECT_GT(std::atof(J.c_str() + At + std::strlen(P) + 16), 0.0) << P;
  }
  // Non-zero counters from every instrumented layer.
  for (const char *C : {"lexmin_calls", "simplex_pivots", "fm_eliminations",
                        "dep_candidates", "hyperplanes_found", "bands_tiled",
                        "loops_parallel"})
    EXPECT_GT(numberAfterKey(J, C), 0.0) << C;
}

TEST(CliTest, ReportTextListsPassesAndTrace) {
  std::string Out = tempPath("_report_text.c");
  RunResult R = runCli("--report --out=" + Out + " " +
                       examplePath("jacobi1d.c"));
  ASSERT_EQ(R.ExitCode, 0);
  std::remove(Out.c_str());
  EXPECT_NE(R.Stdout.find("pass timings"), std::string::npos);
  EXPECT_NE(R.Stdout.find("decision trace:"), std::string::npos);
  EXPECT_NE(R.Stdout.find("[transform]"), std::string::npos);
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

TEST(CliTest, MultiFileStdoutIsBannerSeparatedInInputOrder) {
  RunResult R = runCli(examplePath("matmul.c") + " " +
                       examplePath("jacobi1d.c"));
  ASSERT_EQ(R.ExitCode, 0);
  size_t B1 = R.Stdout.find("/* ===== plutopp: ");
  size_t B2 = R.Stdout.find("/* ===== plutopp: ", B1 + 1);
  ASSERT_NE(B1, std::string::npos);
  ASSERT_NE(B2, std::string::npos);
  EXPECT_NE(R.Stdout.find("matmul.c", B1), std::string::npos);
  EXPECT_LT(R.Stdout.find("matmul.c", B1), B2); // input order preserved
  EXPECT_NE(R.Stdout.find("jacobi1d.c", B2), std::string::npos);
}

// Multi-file runs with a failing unit: the good unit still emits, stderr
// ends with the per-unit status summary (one line per unit, StatusCode
// names), and the exit code follows the aggregation table (source error
// anywhere -> 2).
TEST(CliTest, MultiFilePerUnitFailureSummary) {
  std::string Bad = tempPath("_summary_bad.c");
  {
    std::ofstream Out(Bad);
    Out << "for (i = 0; i < N; i++ {\n  a[i] = 0;\n}\n";
  }
  RunResult R = runCli(examplePath("matmul.c") + " " + Bad + " 2>&1");
  EXPECT_EQ(R.ExitCode, 2);
  // The failing batch names the failure count and each unit's status.
  EXPECT_NE(R.Stdout.find("plutopp: 1 of 2 units failed:"),
            std::string::npos)
      << R.Stdout;
  EXPECT_NE(R.Stdout.find(Bad + ": source-error"), std::string::npos)
      << R.Stdout;
  // The good unit still made it to stdout, banner and all.
  EXPECT_NE(R.Stdout.find("/* ===== plutopp: "), std::string::npos);
  EXPECT_NE(R.Stdout.find("#pragma omp parallel for"), std::string::npos);
  std::remove(Bad.c_str());
}

// The JSON report schema is versioned: every document leads with
// "schema": 2 so report consumers (and the plutod metrics op, which emits
// the same document) can detect drift.
TEST(CliTest, ReportJsonCarriesSchemaVersion) {
  std::string Out = tempPath("_schema.c");
  RunResult R =
      runCli("--report=json --out=" + Out + " " + examplePath("matmul.c"));
  ASSERT_EQ(R.ExitCode, 0);
  std::remove(Out.c_str());
  EXPECT_NE(R.Stdout.find("\"schema\": 2"), std::string::npos) << R.Stdout;
  // Leads the document: before any other member.
  EXPECT_LT(R.Stdout.find("\"schema\": 2"), R.Stdout.find("\"passes\""));
}

TEST(CliTest, OutWithMultipleInputsRejected) {
  RunResult R = runCli("--out=" + tempPath("_multi.c") + " " +
                       examplePath("matmul.c") + " " +
                       examplePath("jacobi1d.c"));
  EXPECT_EQ(R.ExitCode, 2);
}

// The service path end to end: concurrent batch over every example kernel
// against one persistent --cache-dir, run twice. The warm run must be
// served from the cache (counters in the JSON report) and its outputs must
// be byte-identical to the cold run's.
TEST(CliTest, BatchJobsWithPersistentCacheIsWarmAndIdentical) {
  namespace fs = std::filesystem;
  std::string CacheDir = tempPath("_cache");
  std::string OutDir1 = tempPath("_out1");
  std::string OutDir2 = tempPath("_out2");
  const char *Kernels[] = {"matmul.c", "jacobi1d.c", "lu.c", "mvt.c",
                           "seidel2d.c"};
  std::string Inputs;
  for (const char *K : Kernels)
    Inputs += " " + examplePath(K);
  std::string Common =
      "--jobs=4 --cache-dir=" + CacheDir + " --report=json";

  RunResult Cold = runCli(Common + " --out-dir=" + OutDir1 + Inputs);
  ASSERT_EQ(Cold.ExitCode, 0);
  ASSERT_TRUE(JsonChecker(Cold.Stdout).valid()) << Cold.Stdout;
  EXPECT_GE(numberAfterKey(Cold.Stdout, "cache_misses"), 5.0);
  EXPECT_EQ(numberAfterKey(Cold.Stdout, "cache_disk_hits"), 0.0);

  RunResult Warm = runCli(Common + " --out-dir=" + OutDir2 + Inputs);
  ASSERT_EQ(Warm.ExitCode, 0);
  ASSERT_TRUE(JsonChecker(Warm.Stdout).valid()) << Warm.Stdout;
  // A fresh process has an empty memory tier; all 5 units come from disk.
  EXPECT_GE(numberAfterKey(Warm.Stdout, "cache_disk_hits"), 5.0);
  EXPECT_EQ(numberAfterKey(Warm.Stdout, "cache_misses"), 0.0);

  for (const char *K : Kernels) {
    std::string Stem = fs::path(K).stem().string() + ".pluto.c";
    std::string A = readFile(OutDir1 + "/" + Stem);
    std::string B = readFile(OutDir2 + "/" + Stem);
    ASSERT_FALSE(A.empty()) << Stem;
    EXPECT_EQ(A, B) << Stem; // cached == cold, byte for byte
    EXPECT_NE(A.find("for ("), std::string::npos) << Stem;
  }
  // The persistent tier is the versioned layout of DESIGN.md section 9.
  EXPECT_TRUE(fs::is_directory(fs::path(CacheDir) / "v1"));

  std::error_code Ec;
  fs::remove_all(CacheDir, Ec);
  fs::remove_all(OutDir1, Ec);
  fs::remove_all(OutDir2, Ec);
}

TEST(CliTest, EmittedCodeCompiles) {
  if (!pluto::CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  for (const char *K : {"matmul.c", "jacobi1d.c", "lu.c"}) {
    std::string Out = tempPath(std::string("_cc_") + K);
    RunResult R = runCli("--tile --parallel --out=" + Out + " " +
                         examplePath(K));
    ASSERT_EQ(R.ExitCode, 0) << K;
    std::string Obj = Out + ".o";
    std::string Cmd = "cc -fopenmp -std=c99 -c -o '" + Obj + "' '" + Out +
                      "' > /dev/null 2>&1";
    EXPECT_EQ(system(Cmd.c_str()), 0) << K;
    std::remove(Out.c_str());
    std::remove(Obj.c_str());
  }
}

} // namespace
