//===- tests/tile_test.cpp - Tiling / wavefront unit tests ----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Validates Algorithm 1 (supernode domains and scatterings), Theorem 1's
// consequences (tile-space legality checked via the interpreter elsewhere),
// Algorithm 2 (tile-space wavefront), multi-level tiling, and the Section
// 5.4 intra-tile reordering.
//
//===----------------------------------------------------------------------===//

#include "tile/Tiling.h"

#include "deps/Dependences.h"
#include "driver/Kernels.h"
#include "parser/Parser.h"
#include "transform/PlutoTransform.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

struct Built {
  Program Prog;
  DependenceGraph DG;
  Schedule Sched;
  Scop Sc;
};

Built build(const char *Src, bool InputDeps = false) {
  Built B;
  auto P = parseSource(Src);
  EXPECT_TRUE(P) << (P ? "" : P.error());
  B.Prog = P->Prog;
  for (const std::string &Pm : B.Prog.ParamNames)
    B.Prog.addContextBound(Pm, 4);
  DepOptions DO;
  DO.IncludeInputDeps = InputDeps;
  B.DG = computeDependences(B.Prog, DO);
  auto S = computeSchedule(B.Prog, B.DG);
  EXPECT_TRUE(S) << (S ? "" : S.error());
  B.Sched = *S;
  B.Sc = buildScop(B.Prog, B.Sched);
  return B;
}

TEST(TileTest, BuildScopPreservesScheduleRows) {
  Built B = build(kernels::MatMul);
  ASSERT_EQ(B.Sc.Stmts.size(), 1u);
  const ScopStmt &St = B.Sc.Stmts[0];
  EXPECT_EQ(St.Scatter.numRows(), B.Sched.numRows());
  // Columns: 3 iters + 1 param + 1 const.
  EXPECT_EQ(St.Scatter.numCols(), 5u);
  // Identity rows.
  EXPECT_EQ(St.Scatter(0, 0).toInt64(), 1);
  EXPECT_EQ(St.Scatter(1, 1).toInt64(), 1);
  EXPECT_EQ(St.Scatter(2, 2).toInt64(), 1);
  EXPECT_EQ(St.OrigIterPos, (std::vector<unsigned>{0, 1, 2}));
}

TEST(TileTest, TileBandAddsSupernodes) {
  Built B = build(kernels::MatMul);
  auto Bands = B.Sc.bands();
  ASSERT_EQ(Bands.size(), 1u);
  ASSERT_EQ(Bands[0].Width, 3u);
  Schedule::Band TB = tileBand(B.Sc, Bands[0], {32, 32, 32});
  const ScopStmt &St = B.Sc.Stmts[0];
  // 3 supernode iterators prepended.
  EXPECT_EQ(St.IterNames.size(), 6u);
  EXPECT_EQ(St.OrigIterPos, (std::vector<unsigned>{3, 4, 5}));
  // 3 new scattering rows, 6 total.
  EXPECT_EQ(St.Scatter.numRows(), 6u);
  EXPECT_EQ(B.Sc.numRows(), 6u);
  // Domain gained 2 constraints per tiled row.
  EXPECT_EQ(St.Domain.numIneqs(), 6u + 6u);
  // The new tile band is at the front with width 3.
  EXPECT_EQ(TB.Start, 0u);
  EXPECT_EQ(TB.Width, 3u);
  // Tile rows inherit parallelism of their hyperplanes (i, j parallel).
  EXPECT_TRUE(B.Sc.Rows[0].IsParallel);
  EXPECT_TRUE(B.Sc.Rows[1].IsParallel);
  EXPECT_FALSE(B.Sc.Rows[2].IsParallel);
}

TEST(TileTest, TileShapeConstraintSemantics) {
  // For phi = i with tile size 4: 4*zT <= i <= 4*zT + 3, i.e. the domain
  // pins zT = floor(i / 4). Verify with concrete points via emptiness.
  Built B = build("for (i = 0; i < N; i++) { a[i] = 1.0; }");
  auto Bands = B.Sc.bands();
  // Width-1 band: tile explicitly.
  ASSERT_EQ(Bands.size(), 1u);
  tileBand(B.Sc, Bands[0], {4});
  const ScopStmt &St = B.Sc.Stmts[0];
  // Vars: [zT, i, N]. Point (zT=2, i=9): 4*2 <= 9 <= 11 -> inside.
  ConstraintSystem In = St.Domain;
  In.addEq({1, 0, 0, -2});
  In.addEq({0, 1, 0, -9});
  In.addEq({0, 0, 1, -20});
  EXPECT_FALSE(In.isIntegerEmpty());
  // Point (zT=1, i=9): 4 <= 9 <= 7 fails -> outside.
  ConstraintSystem Out = St.Domain;
  Out.addEq({1, 0, 0, -1});
  Out.addEq({0, 1, 0, -9});
  Out.addEq({0, 0, 1, -20});
  EXPECT_TRUE(Out.isIntegerEmpty());
}

TEST(TileTest, TileAllBandsSkipsNarrowBands) {
  // A single loop (band width 1) is not tiled with the default MinWidth=2.
  Built B = build("for (i = 0; i < N; i++) { a[i] = a[i] * 2.0; }");
  unsigned RowsBefore = B.Sc.numRows();
  auto TBs = tileAllBands(B.Sc, 32);
  EXPECT_TRUE(TBs.empty());
  EXPECT_EQ(B.Sc.numRows(), RowsBefore);
}

TEST(TileTest, WavefrontTransformsTileSpace) {
  Built B = build(kernels::Jacobi1D);
  auto Bands = B.Sc.bands();
  ASSERT_GE(Bands.size(), 1u);
  ASSERT_EQ(Bands[0].Width, 2u);
  Schedule::Band TB = tileBand(B.Sc, Bands[0], {16, 16});
  ASSERT_TRUE(TB.HasSequentialRow);
  IntMatrix Before = B.Sc.Stmts[0].Scatter;
  ASSERT_TRUE(wavefrontBand(B.Sc, TB, 1));
  const IntMatrix &After = B.Sc.Stmts[0].Scatter;
  // Row 0 became row0 + row1; row 1 unchanged and now parallel.
  for (unsigned C = 0; C < After.numCols(); ++C) {
    EXPECT_EQ(After(0, C), Before(0, C) + Before(1, C));
    EXPECT_EQ(After(1, C), Before(1, C));
  }
  EXPECT_FALSE(B.Sc.Rows[TB.Start].IsParallel);
  EXPECT_TRUE(B.Sc.Rows[TB.Start + 1].IsParallel);
}

TEST(TileTest, WavefrontSkipsBandsWithParallelRow) {
  Built B = build(kernels::MatMul);
  auto Bands = B.Sc.bands();
  Schedule::Band TB = tileBand(B.Sc, Bands[0], {8, 8, 8});
  // Tile band has parallel members (i, j): no wavefront needed.
  EXPECT_FALSE(wavefrontBand(B.Sc, TB, 1));
}

TEST(TileTest, TwoDegreeWavefront) {
  Built B = build(kernels::Seidel2D);
  auto Bands = B.Sc.bands();
  ASSERT_EQ(Bands[0].Width, 3u);
  Schedule::Band TB = tileBand(B.Sc, Bands[0], {8, 8, 8});
  ASSERT_TRUE(wavefrontBand(B.Sc, TB, 2));
  EXPECT_FALSE(B.Sc.Rows[TB.Start].IsParallel);
  EXPECT_TRUE(B.Sc.Rows[TB.Start + 1].IsParallel);
  EXPECT_TRUE(B.Sc.Rows[TB.Start + 2].IsParallel);
}

TEST(TileTest, MultiLevelTiling) {
  Built B = build(kernels::MatMul);
  auto Bands = B.Sc.bands();
  Schedule::Band L1 = tileBand(B.Sc, Bands[0], {32, 32, 32});
  Schedule::Band L2 = tileBand(B.Sc, L1, {4, 4, 4});
  EXPECT_EQ(B.Sc.numRows(), 9u);
  EXPECT_EQ(B.Sc.Stmts[0].IterNames.size(), 9u);
  EXPECT_EQ(L2.Start, 0u);
  EXPECT_EQ(L2.Width, 3u);
  // Three distinct band ids now exist.
  auto NewBands = B.Sc.bands();
  EXPECT_EQ(NewBands.size(), 3u);
}

TEST(TileTest, ReorderForVectorizationMovesParallelRowInnermost) {
  Built B = build(kernels::MatMul);
  // Band (i, j, k): j is parallel and should move innermost, k middle.
  ASSERT_TRUE(reorderForVectorization(B.Sc));
  const IntMatrix &Sc = B.Sc.Stmts[0].Scatter;
  // New row order: i, k, j.
  EXPECT_EQ(Sc(0, 0).toInt64(), 1);
  EXPECT_EQ(Sc(1, 2).toInt64(), 1);
  EXPECT_EQ(Sc(2, 1).toInt64(), 1);
  EXPECT_TRUE(B.Sc.Rows[2].IsVector);
  EXPECT_TRUE(B.Sc.Rows[2].IsParallel);
}

TEST(TileTest, ReorderNoopWithoutParallelRows) {
  Built B = build(kernels::Sweep2D);
  EXPECT_FALSE(reorderForVectorization(B.Sc));
}

TEST(TileTest, IdentityScheduleReproducesTextualOrder) {
  auto P = parseSource(kernels::Jacobi1D);
  ASSERT_TRUE(P);
  Schedule S = identitySchedule(P->Prog);
  // 2*maxdepth+1 = 5 rows; scalar rows at 0, 2, 4.
  ASSERT_EQ(S.numRows(), 5u);
  EXPECT_TRUE(S.Rows[0].IsScalar);
  EXPECT_FALSE(S.Rows[1].IsScalar);
  EXPECT_TRUE(S.Rows[2].IsScalar);
  // S0 slot at depth 1 is 0, S1 slot is 1.
  EXPECT_EQ(S.StmtRows[0](2, 2).toInt64(), 0);
  EXPECT_EQ(S.StmtRows[1](2, 2).toInt64(), 1);
  // Loop rows select t then the space iterator.
  EXPECT_EQ(S.StmtRows[0](1, 0).toInt64(), 1);
  EXPECT_EQ(S.StmtRows[0](3, 1).toInt64(), 1);
}

} // namespace
