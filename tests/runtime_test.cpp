//===- tests/runtime_test.cpp - Interpreter & JIT tests -------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "runtime/Jit.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sys/stat.h>
#include <unistd.h>

using namespace pluto;

namespace {

TEST(TensorTest, Indexing) {
  Tensor T = Tensor::zeros({3, 4});
  EXPECT_EQ(T.numElems(), 12);
  T.at({2, 3}) = 7.5;
  EXPECT_DOUBLE_EQ(T.Data[11], 7.5);
  T.at({0, 1}) = -1.0;
  EXPECT_DOUBLE_EQ(T.Data[1], -1.0);
}

TEST(TensorTest, FillPatternDeterministic) {
  Tensor A = Tensor::zeros({100}), B = Tensor::zeros({100});
  A.fillPattern(3);
  B.fillPattern(3);
  EXPECT_EQ(A.Data, B.Data);
  B.fillPattern(4);
  EXPECT_NE(A.Data, B.Data);
}

TEST(InterpreterTest, EvaluatesSimpleLoopAst) {
  // for (c1 = 0; c1 <= 4; c1++) S0(c1): a[i] = i * 2.
  auto P = parseSource("for (i = 0; i < N; i++) { a[i] = i * 2; }");
  ASSERT_TRUE(P);
  auto Ast = buildOriginalAst(P->Prog);
  ASSERT_TRUE(Ast) << Ast.error();
  Interpreter I;
  I.allocate(P->Prog, {{"a", {5}}});
  I.Params = {{"N", 5}};
  auto R = I.run(P->Prog, **Ast);
  ASSERT_TRUE(R) << R.error();
  for (long long K = 0; K < 5; ++K)
    EXPECT_DOUBLE_EQ(I.Arrays["a"].Data[static_cast<size_t>(K)],
                     2.0 * static_cast<double>(K));
}

TEST(InterpreterTest, CompoundAssignAndCalls) {
  auto P = parseSource(
      "for (i = 0; i < N; i++) { s[0] += sqrt(a[i]) * 2.0; }");
  ASSERT_TRUE(P);
  auto Ast = buildOriginalAst(P->Prog);
  ASSERT_TRUE(Ast) << Ast.error();
  Interpreter I;
  I.allocate(P->Prog, {{"s", {1}}, {"a", {4}}});
  for (int K = 0; K < 4; ++K)
    I.Arrays["a"].Data[K] = static_cast<double>(K * K);
  I.Params = {{"N", 4}};
  ASSERT_TRUE(I.run(P->Prog, **Ast));
  // sum of 2*sqrt(k^2) = 2*(0+1+2+3) = 12.
  EXPECT_DOUBLE_EQ(I.Arrays["s"].Data[0], 12.0);
}

TEST(InterpreterTest, ReportsOutOfBounds) {
  auto P = parseSource("for (i = 0; i < N; i++) { a[i + 1] = 0.0; }");
  ASSERT_TRUE(P);
  auto Ast = buildOriginalAst(P->Prog);
  Interpreter I;
  I.allocate(P->Prog, {{"a", {4}}});
  I.Params = {{"N", 4}}; // a[4] is out of bounds.
  auto R = I.run(P->Prog, **Ast);
  EXPECT_FALSE(R);
  EXPECT_NE(R.error().find("out of bounds"), std::string::npos);
}

TEST(InterpreterTest, ReportsUnknownSymbol) {
  auto P = parseSource("for (i = 0; i < N; i++) { a[i] = q * 2.0; }");
  ASSERT_TRUE(P); // q is a SymConst.
  auto Ast = buildOriginalAst(P->Prog);
  Interpreter I;
  I.allocate(P->Prog, {{"a", {4}}});
  I.Params = {{"N", 4}};
  // SymConsts left empty: evaluation must fail cleanly.
  auto R = I.run(P->Prog, **Ast);
  EXPECT_FALSE(R);
}

TEST(JitTest, CompileAndRunMatMul) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  PlutoOptions Opts;
  Opts.TileSize = 8;
  Opts.IncludeInputDeps = false;
  auto R = optimizeSource(kernels::MatMul, Opts);
  ASSERT_TRUE(R) << (R ? "" : R.error());
  EmitOptions EO;
  EO.Extents = {{"a", {"N", "N"}}, {"b", {"N", "N"}}, {"c", {"N", "N"}}};
  auto K = CompiledKernel::compile(emitC(R->program(), *R->Ast, EO));
  ASSERT_TRUE(K) << (K ? "" : K.error());

  long long N = 20;
  std::vector<double> A(N * N), B(N * N), C(N * N, 0.0);
  for (long long I = 0; I < N * N; ++I) {
    A[I] = static_cast<double>(I % 7);
    B[I] = static_cast<double>(I % 5);
  }
  // Array order in Program: c (written first), a, b.
  std::vector<double *> Arrays;
  for (const ArrayInfo &Ai : R->program().Arrays) {
    if (Ai.Name == "a")
      Arrays.push_back(A.data());
    else if (Ai.Name == "b")
      Arrays.push_back(B.data());
    else
      Arrays.push_back(C.data());
  }
  K->call(Arrays, {N}, {});
  // Spot-check against a direct computation.
  for (long long I = 0; I < N; I += 7)
    for (long long J = 0; J < N; J += 5) {
      double Want = 0;
      for (long long L = 0; L < N; ++L)
        Want += A[I * N + L] * B[L * N + J];
      EXPECT_DOUBLE_EQ(C[I * N + J], Want) << I << "," << J;
    }
}

TEST(JitTest, HonorsTmpdirAndCleansUpWithoutShell) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  // Point TMPDIR at a fresh directory (with a trailing slash, which the
  // JIT must tolerate) and check the kernel builds inside it and that its
  // temp dir is removed on destruction.
  char Base[] = "/tmp/plutopp-tmpdir-XXXXXX";
  ASSERT_NE(mkdtemp(Base), nullptr);
  std::string BaseDir = Base;
  ASSERT_EQ(setenv("TMPDIR", (BaseDir + "/").c_str(), 1), 0);
  std::string KernelDir;
  {
    auto K = CompiledKernel::compile(
        "void kernel_entry(double **a, const long long *p, const double *c)"
        " { (void)a; (void)p; (void)c; }");
    unsetenv("TMPDIR");
    ASSERT_TRUE(K) << (K ? "" : K.error());
    KernelDir = K->dir();
    EXPECT_EQ(KernelDir.rfind(BaseDir + "/plutopp-", 0), 0u) << KernelDir;
    struct stat St;
    EXPECT_EQ(stat(KernelDir.c_str(), &St), 0);
    EXPECT_TRUE(S_ISDIR(St.st_mode));
  }
  // reset() ran in the destructor: the kernel dir is gone, the TMPDIR
  // directory itself untouched.
  struct stat St;
  EXPECT_NE(stat(KernelDir.c_str(), &St), 0);
  EXPECT_EQ(stat(BaseDir.c_str(), &St), 0);
  rmdir(Base);
}

TEST(JitTest, CompileErrorIsReported) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  auto K = CompiledKernel::compile("this is not C");
  ASSERT_FALSE(K);
  EXPECT_NE(K.error().find("compilation of generated code failed"),
            std::string::npos);
  // The captured compiler output, exit status and command line all ride
  // along so a failure is debuggable from the message alone.
  EXPECT_NE(K.error().find("exit status"), std::string::npos) << K.error();
  EXPECT_NE(K.error().find("error"), std::string::npos) << K.error();
  EXPECT_NE(K.error().find("command: "), std::string::npos) << K.error();
}

// The measurement harness under a scripted clock: the Run body "takes"
// 100 s the first time it executes and 1 s afterwards - the shape of the
// historical bias, where OpenMP pool spin-up and first-touch faults land
// entirely in the first execution.
namespace {
struct FakeTimedRun {
  double Clock = 0.0;
  unsigned Calls = 0;
  MeasureOptions options(unsigned Warmup, unsigned Reps) {
    MeasureOptions MO;
    MO.Warmup = Warmup;
    MO.Reps = Reps;
    MO.Threads = 1;
    MO.Now = [this] { return Clock; };
    return MO;
  }
  std::function<void()> run() {
    return [this] { Clock += (Calls++ == 0) ? 100.0 : 1.0; };
  }
};
} // namespace

TEST(MeasureTest, WarmupAbsorbsNoisyFirstRep) {
  // Regression for the timing bias: with one warm-up execution the 100x
  // slower first run never enters the samples.
  FakeTimedRun F;
  Measurement M = measureRun(F.run(), nullptr, F.options(1, 3));
  ASSERT_EQ(M.RepSeconds.size(), 3u);
  for (double S : M.RepSeconds)
    EXPECT_DOUBLE_EQ(S, 1.0);
  EXPECT_DOUBLE_EQ(M.MedianSeconds, 1.0);
  EXPECT_EQ(F.Calls, 4u); // 1 warmup + 3 reps
}

TEST(MeasureTest, MedianDiscardsOutlierWithoutWarmup) {
  // Even with warmup explicitly disabled, median-of-K keeps the stray
  // 100 s rep out of the reported number (min would too, but would also
  // hide systematic noise; mean would average the outlier in).
  FakeTimedRun F;
  Measurement M = measureRun(F.run(), nullptr, F.options(0, 3));
  ASSERT_EQ(M.RepSeconds.size(), 3u);
  EXPECT_DOUBLE_EQ(M.RepSeconds[0], 100.0); // raw samples stay honest
  EXPECT_DOUBLE_EQ(M.RepSeconds[1], 1.0);
  EXPECT_DOUBLE_EQ(M.MedianSeconds, 1.0);
}

TEST(MeasureTest, EvenRepCountAveragesMiddlePair) {
  // Reps: 100, 1, 1, 1 -> sorted middle pair (1, 1) -> median 1. Then a
  // hand-built spread 1..4 via per-call increments checks the mean of the
  // middle two.
  double Clock = 0.0;
  unsigned Calls = 0;
  MeasureOptions MO;
  MO.Warmup = 0;
  MO.Reps = 4;
  MO.Threads = 1;
  MO.Now = [&Clock] { return Clock; };
  Measurement M = measureRun(
      [&] { Clock += static_cast<double>(++Calls); }, nullptr, MO);
  ASSERT_EQ(M.RepSeconds.size(), 4u);
  // Reps took 1, 2, 3, 4 seconds; median = (2 + 3) / 2.
  EXPECT_DOUBLE_EQ(M.MedianSeconds, 2.5);
}

TEST(MeasureTest, ResetRunsOutsideTimedRegion) {
  // Reset advances the clock by 50 s before every execution, yet no rep
  // may include it: each rep still reads exactly 1 s.
  double Clock = 0.0;
  MeasureOptions MO;
  MO.Warmup = 1;
  MO.Reps = 3;
  MO.Threads = 1;
  MO.Now = [&Clock] { return Clock; };
  unsigned Resets = 0;
  Measurement M = measureRun([&] { Clock += 1.0; },
                             [&] {
                               Clock += 50.0;
                               ++Resets;
                             },
                             MO);
  EXPECT_EQ(Resets, 4u); // before the warmup and before every rep
  for (double S : M.RepSeconds)
    EXPECT_DOUBLE_EQ(S, 1.0);
  EXPECT_DOUBLE_EQ(M.MedianSeconds, 1.0);
}

TEST(JitTest, JitMatchesInterpreterOnJacobi) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no system C compiler";
  PlutoOptions Opts;
  Opts.TileSize = 8;
  Opts.IncludeInputDeps = false;
  auto R = optimizeSource(kernels::Jacobi1D, Opts);
  ASSERT_TRUE(R) << (R ? "" : R.error());
  EmitOptions EO;
  EO.Extents = {{"a", {"N"}}, {"b", {"N"}}};
  auto K = CompiledKernel::compile(emitC(R->program(), *R->Ast, EO));
  ASSERT_TRUE(K) << (K ? "" : K.error());

  long long N = 50, T = 9;
  // Interpreter run.
  Interpreter I;
  I.allocate(R->program(), {{"a", {N}}, {"b", {N}}});
  unsigned Seed = 1;
  for (auto &[Name, Tn] : I.Arrays)
    Tn.fillPattern(Seed++);
  std::map<std::string, std::vector<double>> Init;
  for (auto &[Name, Tn] : I.Arrays)
    Init[Name] = Tn.Data;
  I.Params = {{"T", T}, {"N", N}};
  ASSERT_TRUE(I.run(R->program(), *R->Ast));

  // JIT run on identical inputs.
  std::vector<std::vector<double>> Bufs;
  std::vector<double *> Arrays;
  for (const ArrayInfo &Ai : R->program().Arrays) {
    Bufs.push_back(Init[Ai.Name]);
  }
  for (auto &B : Bufs)
    Arrays.push_back(B.data());
  K->call(Arrays, {T, N}, {});

  unsigned Idx = 0;
  for (const ArrayInfo &Ai : R->program().Arrays) {
    const std::vector<double> &Want = I.Arrays[Ai.Name].Data;
    const std::vector<double> &Got = Bufs[Idx++];
    ASSERT_EQ(Want.size(), Got.size());
    for (size_t E = 0; E < Want.size(); ++E)
      EXPECT_NEAR(Want[E], Got[E], 1e-9) << Ai.Name << "[" << E << "]";
  }
}

} // namespace
