//===- tests/transform_test.cpp - Pluto algorithm unit tests --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Validates the transformation framework against the transformations the
// paper publishes: Jacobi-1d time skewing by 2 with a relative shift of S2
// (Fig. 3), the LU band (Sec. 5.2), MVT ij/ji fusion via input-dependence
// bounding (Sec. 7), and structural properties (bands, parallelism,
// legality) on the other kernels.
//
//===----------------------------------------------------------------------===//

#include "transform/PlutoTransform.h"

#include "driver/Kernels.h"
#include "parser/Parser.h"
#include "transform/FarkasConstraints.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

struct Pipeline {
  Program Prog;
  DependenceGraph DG;
  Schedule Sched;
};

Pipeline run(const char *Src, bool InputDeps = true) {
  Pipeline P;
  auto Parsed = parseSource(Src);
  EXPECT_TRUE(Parsed) << (Parsed ? "" : Parsed.error());
  P.Prog = Parsed->Prog;
  for (const std::string &Param : P.Prog.ParamNames)
    P.Prog.addContextBound(Param, 4);
  DepOptions DO;
  DO.IncludeInputDeps = InputDeps;
  P.DG = computeDependences(P.Prog, DO);
  auto Sched = computeSchedule(P.Prog, P.DG);
  EXPECT_TRUE(Sched) << (Sched ? "" : Sched.error());
  P.Sched = *Sched;
  return P;
}

std::vector<long long> rowOf(const Schedule &S, unsigned Stmt, unsigned R) {
  std::vector<long long> V;
  const IntMatrix &M = S.StmtRows[Stmt];
  for (unsigned C = 0; C < M.numCols(); ++C)
    V.push_back(M(R, C).toInt64());
  return V;
}

/// Full legality oracle: every legality dep strongly satisfied at some row,
/// weakly legal at all earlier rows.
bool isLegal(Pipeline &P) {
  DependenceGraph Copy = P.DG;
  Schedule Sched = P.Sched;
  return analyzeSchedule(P.Prog, Copy, Sched);
}

TEST(TransformTest, MatMulPermutableBand) {
  // Input deps off (the original Pluto's default): with them on, every
  // hyperplane of matmul has a parametric reuse distance (u = 1), so the
  // cost function cannot discriminate and tie-breaking decides everything.
  Pipeline P = run(kernels::MatMul, /*InputDeps=*/false);
  ASSERT_EQ(P.Sched.numRows(), 3u);
  // The identity transformation: i and j are communication-free, k carries
  // the reduction; the innermost-first tie-break keeps the original order.
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{0, 1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 2), (std::vector<long long>{0, 0, 1, 0}));
  // One fully permutable band of width 3.
  auto Bands = P.Sched.bands();
  ASSERT_EQ(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Start, 0u);
  EXPECT_EQ(Bands[0].Width, 3u);
  // i and j are parallel; k carries the reduction dependence.
  EXPECT_TRUE(P.Sched.Rows[0].IsParallel);
  EXPECT_TRUE(P.Sched.Rows[1].IsParallel);
  EXPECT_FALSE(P.Sched.Rows[2].IsParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, Sweep2DPermutableBand) {
  Pipeline P = run(kernels::Sweep2D, /*InputDeps=*/false);
  ASSERT_EQ(P.Sched.numRows(), 2u);
  // Both orders are cost-equivalent (constant dependence distances); the
  // innermost-first tie-break keeps the original (i, j) order.
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{0, 1, 0}));
  auto Bands = P.Sched.bands();
  ASSERT_EQ(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Width, 2u);
  // Both loops carry a dependence: pipelined parallelism only.
  EXPECT_FALSE(P.Sched.Rows[0].IsParallel);
  EXPECT_FALSE(P.Sched.Rows[1].IsParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, Jacobi1DPaperTransformation) {
  // Paper Fig. 3: c1 = t for both statements; c2 = 2t+i for S1 and
  // 2t+j+1 for S2 (skew by two, relative shift of one).
  Pipeline P = run(kernels::Jacobi1D, /*InputDeps=*/false);
  ASSERT_GE(P.Sched.numRows(), 2u);
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 0), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{2, 1, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 1), (std::vector<long long>{2, 1, 1}));
  // Rows 0 and 1 form one permutable band (tilable: Fig. 3(c)).
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Start, 0u);
  EXPECT_EQ(Bands[0].Width, 2u);
  EXPECT_FALSE(P.Sched.Rows[0].IsParallel);
  EXPECT_FALSE(P.Sched.Rows[1].IsParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, JacobiWithInputDepsStillLegal) {
  Pipeline P = run(kernels::Jacobi1D, /*InputDeps=*/true);
  EXPECT_TRUE(isLegal(P));
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Width, 2u);
}

TEST(TransformTest, LUBandOfThree) {
  Pipeline P = run(kernels::LU, /*InputDeps=*/false);
  // Three rows in a single permutable band; S1 (2-d) is naturally sunk into
  // the 3-d fully permutable space (paper Sec. 5.2 / Sec. 7).
  ASSERT_GE(P.Sched.numRows(), 3u);
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Start, 0u);
  EXPECT_EQ(Bands[0].Width, 3u);
  // The paper's exact transformation (Sec. 5.2): S1 gets (k, j, k) - the
  // 2-d statement naturally sunk into the 3-d band - and S2 gets (k, j, i).
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{0, 1, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 2), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 0), (std::vector<long long>{1, 0, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 1), (std::vector<long long>{0, 0, 1, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 2), (std::vector<long long>{0, 1, 0, 0}));
  // k carries dependences; j is communication-free inside a k iteration.
  EXPECT_FALSE(P.Sched.Rows[0].IsParallel);
  EXPECT_TRUE(P.Sched.Rows[1].IsParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, MVTFusesIJwithJI) {
  Pipeline P = run(kernels::MVT, /*InputDeps=*/true);
  ASSERT_GE(P.Sched.numRows(), 2u);
  // Paper Sec. 7 (MVT): fusion of the first MV with the *permuted* second
  // MV so the RAR distance on A becomes 0 for both c1 and c2: S0 keeps
  // (i, j), S1 becomes (j, i). Both statements then read A row-major
  // (stride 1) at every fused point.
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 0), (std::vector<long long>{0, 1, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{0, 1, 0}));
  EXPECT_EQ(rowOf(P.Sched, 1, 1), (std::vector<long long>{1, 0, 0}));
  // The RAR on A has zero components along both hyperplanes.
  bool CheckedRAR = false;
  for (const Dependence &D : P.DG.Deps) {
    if (D.Kind != DepKind::Input || D.SrcStmt == D.DstStmt)
      continue;
    EXPECT_TRUE(zeroAt(D, P.Sched, 0));
    EXPECT_TRUE(zeroAt(D, P.Sched, 1));
    CheckedRAR = true;
  }
  EXPECT_TRUE(CheckedRAR);
  // Fusion trades synchronization-free parallelism for one degree of
  // pipelined parallelism: no row is fully parallel.
  EXPECT_FALSE(P.Sched.Rows[0].IsParallel);
  EXPECT_FALSE(P.Sched.Rows[1].IsParallel);
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Width, 2u);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, MVTWithoutInputDepsDoesNotFuse) {
  // Without RAR bounding there is no incentive to permute S1: both
  // statements get synchronization-free outer parallelism instead.
  Pipeline P = run(kernels::MVT, /*InputDeps=*/false);
  bool AnyParallel = false;
  for (const RowInfo &R : P.Sched.Rows)
    AnyParallel |= R.IsParallel;
  EXPECT_TRUE(AnyParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, Seidel2DSkewedBand) {
  Pipeline P = run(kernels::Seidel2D, /*InputDeps=*/false);
  ASSERT_GE(P.Sched.numRows(), 3u);
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  // All three dimensions tilable after skewing (paper Sec. 7, Gauss-Seidel).
  EXPECT_EQ(Bands[0].Width, 3u);
  // The paper's transformation: "skews the two space dimensions by a
  // factor of one and two, respectively, w.r.t. time":
  // (t, t+i, 2t+i+j).
  EXPECT_EQ(rowOf(P.Sched, 0, 0), (std::vector<long long>{1, 0, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 1), (std::vector<long long>{1, 1, 0, 0}));
  EXPECT_EQ(rowOf(P.Sched, 0, 2), (std::vector<long long>{2, 1, 1, 0}));
  EXPECT_FALSE(P.Sched.Rows[0].IsParallel);
  EXPECT_FALSE(P.Sched.Rows[1].IsParallel);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, FdtdSingleBandOfThree) {
  Pipeline P = run(kernels::Fdtd2D, /*InputDeps=*/false);
  // Paper Sec. 7: three tiling hyperplanes, all in one band (fully
  // permutable); shifting + fusion + time skewing.
  auto Bands = P.Sched.bands();
  ASSERT_GE(Bands.size(), 1u);
  EXPECT_EQ(Bands[0].Start, 0u);
  EXPECT_EQ(Bands[0].Width, 3u);
  EXPECT_TRUE(isLegal(P));
  // All statements fused: no scalar dimension separates them before the
  // band (row 0..2 are loop rows).
  EXPECT_FALSE(P.Sched.Rows[0].IsScalar);
  EXPECT_FALSE(P.Sched.Rows[1].IsScalar);
  EXPECT_FALSE(P.Sched.Rows[2].IsScalar);
}

TEST(TransformTest, SequencePairGetsDistributedOrFused) {
  // Producer-consumer with reversed access: fusion possible with shift 0;
  // check legality either way.
  Pipeline P = run("for (i = 0; i < N; i++) { c[i] = a[i]; }\n"
                   "for (j = 0; j < N; j++) { d[j] = c[j] * 2.0; }");
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, IndependentLoopsCutIntoSccs) {
  Pipeline P = run("for (i = 0; i < N; i++) { a[i] = 1.0; }\n"
                   "for (i = 0; i < N; i++) { a[i] = a[i] + 2.0; }\n",
                   /*InputDeps=*/false);
  EXPECT_TRUE(isLegal(P));
}

TEST(TransformTest, ForcedScheduleAnalysisDetectsIllegal) {
  auto Parsed = parseSource(kernels::Sweep2D);
  ASSERT_TRUE(Parsed);
  Program Prog = Parsed->Prog;
  Prog.addContextBound("N", 4);
  DepOptions DO;
  DO.IncludeInputDeps = false;
  DependenceGraph DG = computeDependences(Prog, DO);
  // Loop reversal (-1, 0), (0, -1) is illegal for the forward sweep.
  Schedule Bad;
  Bad.StmtRows.push_back(IntMatrix({{-1, 0, 0}, {0, -1, 0}}));
  Bad.Rows.resize(2);
  EXPECT_FALSE(analyzeSchedule(Prog, DG, Bad));
  // Identity is legal.
  Schedule Good;
  Good.StmtRows.push_back(IntMatrix({{1, 0, 0}, {0, 1, 0}}));
  Good.Rows.resize(2);
  EXPECT_TRUE(analyzeSchedule(Prog, DG, Good));
}

TEST(TransformTest, ForcedLimLamStyleScheduleIsLegalForJacobi) {
  // The paper's comparison: Lim/Lam's maximally independent time partitions
  // (2, -1) / (3, -1) for imperfect Jacobi (Sec. 7). Verify our analysis
  // accepts it as legal (it is) - it is the cost that differs.
  auto Parsed = parseSource(kernels::Jacobi1D);
  ASSERT_TRUE(Parsed);
  Program Prog = Parsed->Prog;
  Prog.addContextBound("N", 8);
  Prog.addContextBound("T", 8);
  DepOptions DO;
  DO.IncludeInputDeps = false;
  DependenceGraph DG = computeDependences(Prog, DO);
  Schedule LimLam;
  // S1: 2t - i ... the published partitions are phi = (2t+i), (2t+i+1)?
  // Use the time partitions from Sec. 7: S1: 2t - i?? The known legal pair
  // for this code is phi_S1 = 2t + i, phi_S2 = 2t + j + 1 (also our c2) and
  // an independent second partition 3t + i / 3t + j + 1:
  LimLam.StmtRows.push_back(IntMatrix({{2, 1, 0}, {3, 1, 0}}));
  LimLam.StmtRows.push_back(IntMatrix({{2, 1, 1}, {3, 1, 1}}));
  LimLam.Rows.resize(2);
  // The two partitions leave the same-point anti dependence (S0 reads
  // a[i-1], S1 overwrites it at the same schedule point) unordered; the
  // statement-ordering dimension completes the schedule.
  appendTextualOrderRow(Prog, LimLam);
  EXPECT_TRUE(analyzeSchedule(Prog, DG, LimLam));
}

TEST(TransformTest, DeltaRowMatchesEval) {
  Pipeline P = run(kernels::Sweep2D, /*InputDeps=*/false);
  // deltaRow on a concrete dependence must agree with direct evaluation.
  const Dependence &D = P.DG.Deps.front();
  std::vector<BigInt> Row = deltaRow(D, P.Sched, 0);
  // Pick s = (2,3), t = (3,3) (the level-1 flow): delta = phi(t) - phi(s).
  std::vector<BigInt> Point = {BigInt(2), BigInt(3), BigInt(3), BigInt(3),
                               BigInt(10)};
  BigInt Acc = Row[Row.size() - 1];
  for (unsigned I = 0; I < Point.size(); ++I)
    Acc += Row[I] * Point[I];
  BigInt Direct =
      P.Sched.evalRow(D.DstStmt, 0, {BigInt(3), BigInt(3)}) -
      P.Sched.evalRow(D.SrcStmt, 0, {BigInt(2), BigInt(3)});
  EXPECT_EQ(Acc, Direct);
}

} // namespace
