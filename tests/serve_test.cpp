//===- tests/serve_test.cpp - Serving-layer tests -------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Wire-protocol round-trips (pure string work, no sockets), the sharded
// result cache's equivalence with a single shard, and the in-process
// Server over real AF_UNIX sockets: byte-identical round-trips against
// Pipeline, malformed/oversized-line resync, bounded-queue overload
// rejection, per-client fairness, graceful drain with zero dropped jobs,
// and a multi-threaded mixed-traffic soak that ends by parsing the
// metrics document.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/ShardedCache.h"
#include "service/Batch.h"
#include "service/Pipeline.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace pluto;
using namespace pluto::serve;

namespace {

std::string uniqueSocketPath() {
  static std::atomic<unsigned> Seq{0};
  return "/tmp/plutopp-serve-test-" + std::to_string(getpid()) + "-" +
         std::to_string(Seq.fetch_add(1)) + ".sock";
}

/// A distinct valid kernel per index (distinct source => distinct cache
/// key => a real compile, not a hit).
std::string kernelSource(unsigned I) {
  std::string V = "v" + std::to_string(I);
  return "for (i = 0; i < N; i++) {\n"
         "  for (j = 0; j < N; j++) {\n"
         "    for (k = 0; k < N; k++) {\n"
         "      " + V + "[i][j] = " + V + "[i][j] + a[i][k] * b[k][j];\n"
         "    }\n"
         "  }\n"
         "}\n";
}

const char *BadSource = "for (i = 0; i < N; i++ {\n  a[i] = 0;\n}\n";

/// Minimal blocking test client over one AF_UNIX connection.
struct TestClient {
  int Fd = -1;
  std::string InBuf;

  ~TestClient() {
    if (Fd >= 0)
      close(Fd);
  }

  bool connectTo(const std::string &Path) {
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    return connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
           0;
  }

  bool sendAll(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t W = send(Fd, Data.data() + Off, Data.size() - Off,
                       MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  bool sendLine(const std::string &Line) { return sendAll(Line + "\n"); }

  /// Blocking line read with a timeout; false on timeout/EOF-without-line.
  bool readLine(std::string &Line, int TimeoutMs = 30000) {
    for (;;) {
      size_t Pos = InBuf.find('\n');
      if (Pos != std::string::npos) {
        Line = InBuf.substr(0, Pos);
        InBuf.erase(0, Pos + 1);
        return true;
      }
      pollfd P{Fd, POLLIN, 0};
      if (poll(&P, 1, TimeoutMs) <= 0)
        return false;
      char Buf[65536];
      ssize_t R = recv(Fd, Buf, sizeof(Buf), 0);
      if (R <= 0)
        return false;
      InBuf.append(Buf, static_cast<size_t>(R));
    }
  }

  /// Reads lines until EOF (used to collect everything through a drain).
  std::vector<std::string> readUntilEof(int TimeoutMs = 30000) {
    std::vector<std::string> Lines;
    for (;;) {
      size_t Pos;
      while ((Pos = InBuf.find('\n')) != std::string::npos) {
        Lines.push_back(InBuf.substr(0, Pos));
        InBuf.erase(0, Pos + 1);
      }
      pollfd P{Fd, POLLIN, 0};
      if (poll(&P, 1, TimeoutMs) <= 0)
        break;
      char Buf[65536];
      ssize_t R = recv(Fd, Buf, sizeof(Buf), 0);
      if (R <= 0)
        break;
      InBuf.append(Buf, static_cast<size_t>(R));
    }
    return Lines;
  }

  /// Non-blocking: how many complete lines are already buffered/readable.
  size_t drainAvailable(std::vector<std::string> &Lines) {
    for (;;) {
      pollfd P{Fd, POLLIN, 0};
      if (poll(&P, 1, 0) <= 0)
        break;
      char Buf[65536];
      ssize_t R = recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
      if (R <= 0)
        break;
      InBuf.append(Buf, static_cast<size_t>(R));
    }
    size_t N = 0, Pos;
    while ((Pos = InBuf.find('\n')) != std::string::npos) {
      Lines.push_back(InBuf.substr(0, Pos));
      InBuf.erase(0, Pos + 1);
      ++N;
    }
    return N;
  }
};

std::string compileLine(const std::string &Id, const std::string &Name,
                        const std::string &Source,
                        const PlutoOptions &Opts = PlutoOptions()) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Id = Id;
  R.Req = {Name, Source, Opts};
  return encodeRequest(R);
}

//===----------------------------------------------------------------------===//
// Protocol round-trips (no sockets).
//===----------------------------------------------------------------------===//

TEST(Protocol, CompileRequestRoundTripsWithNonDefaultOptions) {
  PlutoOptions O;
  O.Tile = false;
  O.TileSize = 48;
  O.SecondLevelTile = true;
  O.L2TileSize = 4;
  O.Parallelize = false;
  O.Vectorize = false;
  O.IncludeInputDeps = false;
  O.ParamMin = 9;
  O.FastSchedule = false;

  WireRequest R;
  R.Operation = Op::Compile;
  R.Id = "{\"seq\": 7}"; // any JSON value is a legal id
  R.Req = {"unit.c", "for (i = 0; i < N; i++) { a[i] = 0; }", O};

  auto D = decodeRequest(encodeRequest(R));
  ASSERT_TRUE(bool(D)) << D.error();
  EXPECT_EQ(D->Operation, Op::Compile);
  EXPECT_EQ(D->Id, "{\"seq\":7}"); // re-serialized compactly, same value
  EXPECT_EQ(D->Req.Name, "unit.c");
  EXPECT_EQ(D->Req.Source, R.Req.Source);
  EXPECT_TRUE(D->Req.Opts == O) << "options did not survive the wire";
}

TEST(Protocol, PingAndMetricsRoundTrip) {
  for (Op O : {Op::Ping, Op::Metrics}) {
    WireRequest R;
    R.Operation = O;
    R.Id = "42";
    auto D = decodeRequest(encodeRequest(R));
    ASSERT_TRUE(bool(D)) << D.error();
    EXPECT_EQ(D->Operation, O);
    EXPECT_EQ(D->Id, "42");
  }
}

TEST(Protocol, DecodeRejectsBadRequests) {
  EXPECT_FALSE(bool(decodeRequest("not json at all")));
  EXPECT_FALSE(bool(decodeRequest("[1, 2]")));
  // Missing / wrong protocol version.
  EXPECT_FALSE(bool(decodeRequest("{\"op\": \"ping\"}")));
  EXPECT_FALSE(bool(decodeRequest("{\"plutod\": 2, \"op\": \"ping\"}")));
  // Unknown op; compile without source; bad options member.
  EXPECT_FALSE(bool(decodeRequest("{\"plutod\": 1, \"op\": \"explode\"}")));
  EXPECT_FALSE(bool(decodeRequest("{\"plutod\": 1, \"op\": \"compile\"}")));
  auto R = decodeRequest("{\"plutod\": 1, \"op\": \"compile\", \"source\": "
                         "\"x\", \"options\": {\"tille\": true}}");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().find("tille"), std::string::npos)
      << "unknown option keys should be named: " << R.error();
}

TEST(Protocol, ResponseRoundTripsOkAndError) {
  CompileResponse Ok;
  Ok.Status = StatusCode::Ok;
  Ok.Name = "m.c";
  Ok.Key = "abc123";
  Ok.EmittedC = "/* code */\nint x;\n";
  Ok.CacheHit = true;
  auto D = decodeResponse(encodeResponse("\"id-1\"", Ok));
  ASSERT_TRUE(bool(D)) << D.error();
  EXPECT_TRUE(D->ok());
  EXPECT_EQ(D->Id, "\"id-1\"");
  EXPECT_EQ(D->Key, "abc123");
  EXPECT_EQ(D->EmittedC, Ok.EmittedC);
  EXPECT_TRUE(D->CacheHit);

  CompileResponse Bad;
  Bad.Status = StatusCode::SourceError;
  Bad.Name = "b.c";
  Bad.Error = "line 1, col 2: error: boom";
  Diagnostic Diag;
  Diag.Line = 1;
  Diag.Col = 2;
  Diag.Message = "boom";
  Bad.Diags.push_back(Diag);
  auto E = decodeResponse(encodeResponse("3", Bad));
  ASSERT_TRUE(bool(E)) << E.error();
  EXPECT_EQ(E->Status, StatusCode::SourceError);
  ASSERT_EQ(E->Diags.size(), 1u);
  EXPECT_EQ(E->Diags[0].Line, 1u);
  EXPECT_EQ(E->Diags[0].Col, 2u);
  EXPECT_EQ(E->Diags[0].Message, "boom");

  auto S = decodeResponse(
      encodeSimpleResponse("null", StatusCode::Overloaded, "queue full"));
  ASSERT_TRUE(bool(S)) << S.error();
  EXPECT_EQ(S->Status, StatusCode::Overloaded);
  EXPECT_EQ(S->Error, "queue full");
}

TEST(Protocol, TuneRequestRoundTripsWithSpec) {
  WireRequest R;
  R.Operation = Op::Tune;
  R.Id = "9";
  R.Req = {"seidel.c", "for (i = 0; i < N; i++) { a[i] = 0; }",
           PlutoOptions()};
  R.Spec = "tile=0,16;wave=0,1;measure=0";
  auto D = decodeRequest(encodeRequest(R));
  ASSERT_TRUE(bool(D)) << D.error();
  EXPECT_EQ(D->Operation, Op::Tune);
  EXPECT_EQ(D->Req.Source, R.Req.Source);
  EXPECT_EQ(D->Spec, R.Spec);

  // Spec is optional: a bare tune request means the default space.
  R.Spec.clear();
  auto E = decodeRequest(encodeRequest(R));
  ASSERT_TRUE(bool(E)) << E.error();
  EXPECT_EQ(E->Operation, Op::Tune);
  EXPECT_TRUE(E->Spec.empty());

  // Like compile, tune without a source is rejected.
  EXPECT_FALSE(bool(decodeRequest("{\"plutod\": 1, \"op\": \"tune\"}")));
}

TEST(Protocol, TuneResponseCarriesWinnerAndTrace) {
  std::string Trace = "{\"tune_schema\":1,\"enumerated\":5,\"winner\":2}";
  auto D = decodeResponse(encodeTuneResponse("1", StatusCode::Ok, "s.c",
                                             "deadbeef", "/* winner */\n", "",
                                             Trace));
  ASSERT_TRUE(bool(D)) << D.error();
  EXPECT_TRUE(D->ok());
  EXPECT_EQ(D->Name, "s.c");
  EXPECT_EQ(D->Key, "deadbeef");
  EXPECT_EQ(D->EmittedC, "/* winner */\n");
  EXPECT_EQ(D->TraceJson, Trace);

  // Failed searches still ship the trace for post-mortems.
  auto E = decodeResponse(encodeTuneResponse(
      "2", StatusCode::ResourceExhausted, "s.c", "", "", "budget", Trace));
  ASSERT_TRUE(bool(E)) << E.error();
  EXPECT_EQ(E->Status, StatusCode::ResourceExhausted);
  EXPECT_EQ(E->Error, "budget");
  EXPECT_EQ(E->TraceJson, Trace);
}

TEST(Protocol, StatusNamesRoundTripAndExitCodesAggregate) {
  for (StatusCode S :
       {StatusCode::Ok, StatusCode::BadRequest, StatusCode::SourceError,
        StatusCode::ScheduleAbort, StatusCode::Internal,
        StatusCode::Overloaded}) {
    auto Back = statusCodeFromName(statusCodeName(S));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, S);
  }
  EXPECT_FALSE(statusCodeFromName("teapot").has_value());

  // The one table: 0 ok, 2 bad input, 1 internal, 3 overloaded.
  EXPECT_EQ(exitCodeFor(StatusCode::Ok), 0);
  EXPECT_EQ(exitCodeFor(StatusCode::BadRequest), 2);
  EXPECT_EQ(exitCodeFor(StatusCode::SourceError), 2);
  EXPECT_EQ(exitCodeFor(StatusCode::ScheduleAbort), 1);
  EXPECT_EQ(exitCodeFor(StatusCode::Internal), 1);
  EXPECT_EQ(exitCodeFor(StatusCode::Overloaded), 3);

  // Precedence 2 > 1 > 3 > 0, in both argument orders.
  EXPECT_EQ(aggregateExitCodes(0, 0), 0);
  EXPECT_EQ(aggregateExitCodes(0, 3), 3);
  EXPECT_EQ(aggregateExitCodes(3, 1), 1);
  EXPECT_EQ(aggregateExitCodes(1, 2), 2);
  EXPECT_EQ(aggregateExitCodes(2, 0), 2);
  EXPECT_EQ(aggregateExitCodes(1, 3), 1);
}

//===----------------------------------------------------------------------===//
// Sharded cache.
//===----------------------------------------------------------------------===//

TEST(ShardedCache, TotalsMatchSingleShardForIdenticalTraffic) {
  ResultCache Single(
      ResultCache::Config{16ull << 20, std::string()});
  ShardedResultCache::Config SC;
  SC.Shards = 8;
  SC.MaxBytes = 16ull << 20; // split across shards; no evictions either way
  ShardedResultCache Sharded(SC);

  // Same traffic against both: N inserts, hits, misses and single-flight
  // computes.
  for (unsigned I = 0; I < 64; ++I) {
    std::string Key = "e3b0c44298fc1c" + std::to_string(I); // hex-ish prefix
    std::string Value(100 + I, 'v');
    Single.insert(Key, Value);
    Sharded.insert(Key, Value);
  }
  for (unsigned I = 0; I < 64; ++I) {
    std::string Key = "e3b0c44298fc1c" + std::to_string(I);
    EXPECT_TRUE(Single.lookup(Key).has_value());
    EXPECT_TRUE(Sharded.lookup(Key).has_value());
  }
  EXPECT_FALSE(Single.lookup("absent").has_value());
  EXPECT_FALSE(Sharded.lookup("absent").has_value());
  for (unsigned I = 0; I < 8; ++I) {
    std::string Key = "ffee" + std::to_string(I);
    auto Compute = [&]() -> Result<std::string> {
      return std::string("computed-") + std::to_string(I);
    };
    ASSERT_TRUE(bool(Single.getOrCompute(Key, Compute)));
    ASSERT_TRUE(bool(Sharded.getOrCompute(Key, Compute)));
  }

  ResultCache::Snapshot A = Single.snapshot();
  ResultCache::Snapshot B = Sharded.snapshot();
  EXPECT_EQ(A.Hits, B.Hits);
  EXPECT_EQ(A.DiskHits, B.DiskHits);
  EXPECT_EQ(A.Misses, B.Misses);
  EXPECT_EQ(A.Evictions, B.Evictions);
  EXPECT_EQ(A.Coalesced, B.Coalesced);
  EXPECT_EQ(A.Bytes, B.Bytes);
  EXPECT_EQ(A.Entries, B.Entries);
}

TEST(ShardedCache, RoutingIsStableAndInRange) {
  ShardedResultCache::Config SC;
  SC.Shards = 8;
  ShardedResultCache C(SC);
  EXPECT_EQ(C.shardCount(), 8u);
  for (const char *Key : {"00ab", "ffcd", "deadbeef", "not-hex-at-all"}) {
    unsigned S1 = C.shardIndex(Key);
    unsigned S2 = C.shardIndex(Key);
    EXPECT_EQ(S1, S2);
    EXPECT_LT(S1, 8u);
  }
}

TEST(ShardedCache, WorksAsThePipelineCacheThroughTheBaseInterface) {
  // compileRequests() only knows std::shared_ptr<ResultCache>; a sharded
  // cache must be a drop-in.
  ShardedResultCache::Config SC;
  SC.Shards = 4;
  BatchOptions BO;
  BO.Jobs = 4;
  BO.Cache = std::make_shared<ShardedResultCache>(SC);

  std::vector<CompileRequest> Reqs;
  for (unsigned I = 0; I < 8; ++I)
    Reqs.push_back({"k", kernelSource(0), PlutoOptions()}); // all identical
  auto Resps = compileRequests(Reqs, BO);
  ASSERT_EQ(Resps.size(), 8u);
  for (auto &R : Resps)
    ASSERT_TRUE(R.ok()) << R.Error;

  // Single-flight + cache: 8 identical jobs cost one cold compile.
  ResultCache::Snapshot S = BO.Cache->snapshot();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits + S.Coalesced, 7u);
}

//===----------------------------------------------------------------------===//
// Server over real sockets.
//===----------------------------------------------------------------------===//

TEST(Server, RoundTripsByteIdenticalWithPipeline) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 2;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  auto P = Pipeline::create(PlutoOptions());
  ASSERT_TRUE(bool(P));
  CompileRequest Req{"matmul", kernelSource(1), PlutoOptions()};
  CompileResponse Local = P->compileRequest(Req);
  ASSERT_TRUE(Local.ok()) << Local.Error;

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  ASSERT_TRUE(C.sendLine(compileLine("1", Req.Name, Req.Source)));
  std::string Line;
  ASSERT_TRUE(C.readLine(Line));
  auto R = decodeResponse(Line);
  ASSERT_TRUE(bool(R)) << R.error();
  ASSERT_TRUE(R->ok()) << R->Error;
  EXPECT_EQ(R->EmittedC, Local.EmittedC)
      << "daemon path must emit byte-identical C";
  EXPECT_EQ(R->Key, Local.Key);
  EXPECT_FALSE(R->CacheHit);

  // Same request again: served from the daemon's cache.
  ASSERT_TRUE(C.sendLine(compileLine("2", Req.Name, Req.Source)));
  ASSERT_TRUE(C.readLine(Line));
  R = decodeResponse(Line);
  ASSERT_TRUE(bool(R) && R->ok());
  EXPECT_TRUE(R->CacheHit);
  EXPECT_EQ(R->EmittedC, Local.EmittedC);

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, 2u);
  EXPECT_EQ(St.RequestsCompleted, 2u);
}

TEST(Server, TuneOpRunsAStaticSearchOverTheWire) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  WireRequest Req;
  Req.Operation = Op::Tune;
  Req.Id = "1";
  Req.Req = {"mm.c", kernelSource(1), PlutoOptions()};
  // measure=0 keeps the daemon-side search static and deterministic.
  Req.Spec = "tile=0,16;l2=0;wave=0,1;measure=0";

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  ASSERT_TRUE(C.sendLine(encodeRequest(Req)));
  std::string Line;
  ASSERT_TRUE(C.readLine(Line));
  auto R = decodeResponse(Line);
  ASSERT_TRUE(bool(R)) << R.error();
  ASSERT_TRUE(R->ok()) << R->Error;
  EXPECT_EQ(R->Name, "mm.c");
  EXPECT_FALSE(R->Key.empty()) << "winner key must ride along";
  EXPECT_NE(R->EmittedC.find("void kernel"), std::string::npos)
      << "winner translation unit must ride along";
  EXPECT_NE(R->TraceJson.find("\"tune_schema\":1"), std::string::npos)
      << "minified search trace must ride along: " << R->TraceJson;

  // A malformed spec is rejected at admission, before any worker runs.
  Req.Id = "2";
  Req.Spec = "tile=zap";
  ASSERT_TRUE(C.sendLine(encodeRequest(Req)));
  ASSERT_TRUE(C.readLine(Line));
  auto B = decodeResponse(Line);
  ASSERT_TRUE(bool(B)) << B.error();
  EXPECT_EQ(B->Status, StatusCode::BadRequest);
  EXPECT_NE(B->Error.find("zap"), std::string::npos) << B->Error;

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsCompleted, 1u);
  EXPECT_EQ(St.BadRequests, 1u);
}

TEST(Server, SourceErrorsCarryDiagnosticsOverTheWire) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  ASSERT_TRUE(C.sendLine(compileLine("1", "bad.c", BadSource)));
  std::string Line;
  ASSERT_TRUE(C.readLine(Line));
  auto R = decodeResponse(Line);
  ASSERT_TRUE(bool(R)) << R.error();
  EXPECT_EQ(R->Status, StatusCode::SourceError);
  EXPECT_FALSE(R->Diags.empty())
      << "source-error responses must carry structured diagnostics";
  for (const Diagnostic &D : R->Diags)
    EXPECT_GE(D.Line, 1u);
  (*S)->drain();
}

TEST(Server, MalformedAndOversizedLinesResyncTheConnection) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  Cfg.MaxRequestBytes = 4096;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));

  // Garbage line: answered bad-request, connection stays usable.
  ASSERT_TRUE(C.sendLine("this is not json"));
  std::string Line;
  ASSERT_TRUE(C.readLine(Line));
  auto R = decodeResponse(Line);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Status, StatusCode::BadRequest);

  // Oversized line (never even valid JSON): rejected, then the stream
  // resynchronizes at the newline and the next request works.
  std::string Huge(2 * Cfg.MaxRequestBytes, 'x');
  ASSERT_TRUE(C.sendLine(Huge));
  ASSERT_TRUE(C.readLine(Line));
  R = decodeResponse(Line);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Status, StatusCode::BadRequest);
  EXPECT_NE(R->Error.find("byte cap"), std::string::npos) << R->Error;

  ASSERT_TRUE(C.sendLine(compileLine("7", "after.c", kernelSource(2))));
  ASSERT_TRUE(C.readLine(Line));
  R = decodeResponse(Line);
  ASSERT_TRUE(bool(R)) << R.error();
  EXPECT_TRUE(R->ok()) << R->Error;
  EXPECT_EQ(R->Id, "7");

  // Invalid PlutoOptions are classified bad-request at admission.
  PlutoOptions BadOpts;
  BadOpts.TileSize = 0;
  ASSERT_TRUE(C.sendLine(compileLine("8", "badopts.c", kernelSource(2),
                                     BadOpts)));
  ASSERT_TRUE(C.readLine(Line));
  R = decodeResponse(Line);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Status, StatusCode::BadRequest);

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted);
  EXPECT_GE(St.BadRequests, 3u);
}

TEST(Server, BoundedQueueRejectsOverloadCleanly) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  Cfg.MaxQueue = 1;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  // Burst 24 distinct compiles in one write: the single worker cannot
  // drain a 1-deep queue as fast as the event loop admits, so some are
  // rejected - and every single line still gets exactly one response.
  constexpr unsigned N = 24;
  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  std::string Burst;
  for (unsigned I = 0; I < N; ++I)
    Burst += compileLine(std::to_string(I), "u" + std::to_string(I),
                         kernelSource(100 + I)) +
             "\n";
  ASSERT_TRUE(C.sendAll(Burst));

  unsigned OkCount = 0, Overloaded = 0;
  for (unsigned I = 0; I < N; ++I) {
    std::string Line;
    ASSERT_TRUE(C.readLine(Line)) << "response " << I << " never arrived";
    auto R = decodeResponse(Line);
    ASSERT_TRUE(bool(R)) << R.error();
    if (R->ok())
      ++OkCount;
    else {
      EXPECT_EQ(R->Status, StatusCode::Overloaded);
      EXPECT_NE(R->Error.find("queue"), std::string::npos) << R->Error;
      ++Overloaded;
    }
  }
  EXPECT_EQ(OkCount + Overloaded, N);
  EXPECT_GE(OkCount, 1u);
  EXPECT_GE(Overloaded, 1u) << "a 1-deep queue must reject under burst";

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, OkCount);
  EXPECT_EQ(St.RequestsCompleted, OkCount);
  EXPECT_EQ(St.RejectedOverload, Overloaded);
}

TEST(Server, RoundRobinSchedulingIsFairAcrossConnections) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1; // strictly sequential: scheduling order is observable
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  constexpr unsigned Deep = 16;
  TestClient A, B;
  ASSERT_TRUE(A.connectTo(Cfg.SocketPath));
  ASSERT_TRUE(B.connectTo(Cfg.SocketPath));

  // A pipelines a deep burst of distinct compiles; then B sends one.
  std::string Burst;
  for (unsigned I = 0; I < Deep; ++I)
    Burst += compileLine(std::to_string(I), "a" + std::to_string(I),
                         kernelSource(200 + I)) +
             "\n";
  ASSERT_TRUE(A.sendAll(Burst));
  ASSERT_TRUE(B.sendLine(compileLine("0", "b", kernelSource(300))));

  // B must be answered long before A's queue empties: round-robin gives
  // B's only job the next slot, it does not wait behind A's 16.
  std::string BLine;
  ASSERT_TRUE(B.readLine(BLine));
  auto BR = decodeResponse(BLine);
  ASSERT_TRUE(bool(BR)) << BR.error();
  EXPECT_TRUE(BR->ok()) << BR->Error;

  std::vector<std::string> ASeen;
  A.drainAvailable(ASeen);
  EXPECT_LT(ASeen.size(), Deep)
      << "B's single job was starved behind A's whole pipeline";

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted);
}

TEST(Server, DrainCompletesEveryAdmittedJobAndFlushes) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 2;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  constexpr unsigned N = 12;
  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  std::string Burst;
  for (unsigned I = 0; I < N; ++I)
    Burst += compileLine(std::to_string(I), "d" + std::to_string(I),
                         kernelSource(400 + I)) +
             "\n";
  ASSERT_TRUE(C.sendAll(Burst));

  // Give the event loop a moment to admit, then drain concurrently with
  // the in-flight compiles.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  (*S)->drain();

  // Everything admitted was answered and flushed before the close.
  std::vector<std::string> Lines = C.readUntilEof(5000);
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted)
      << "drain dropped admitted jobs";
  EXPECT_EQ(Lines.size(),
            static_cast<size_t>(St.RequestsCompleted + St.RejectedOverload))
      << "every request line must be answered, even across a drain";
  for (const std::string &L : Lines) {
    auto R = decodeResponse(L);
    ASSERT_TRUE(bool(R)) << R.error();
    EXPECT_TRUE(R->Status == StatusCode::Ok ||
                R->Status == StatusCode::Overloaded);
  }
}

TEST(Server, SoakMixedTrafficThenMetricsAddUp) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 4;
  Cfg.CacheShards = 4;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(bool(S)) << S.error();
  (*S)->start();

  constexpr unsigned Threads = 4, PerThread = 18;
  std::atomic<unsigned> OkSeen{0}, SourceErrSeen{0}, PingsSeen{0};
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      TestClient C;
      if (!C.connectTo(Cfg.SocketPath)) {
        Failed = true;
        return;
      }
      for (unsigned I = 0; I < PerThread && !Failed; ++I) {
        std::string Line;
        switch (I % 3) {
        case 0: // a fresh compile (some repeated across threads -> hits)
          C.sendLine(compileLine("0", "s.c", kernelSource(I % 6)));
          break;
        case 1: // a source error
          C.sendLine(compileLine("1", "bad.c", BadSource));
          break;
        case 2: { // a ping
          WireRequest R;
          R.Operation = Op::Ping;
          C.sendLine(encodeRequest(R));
          break;
        }
        }
        if (!C.readLine(Line)) {
          Failed = true;
          return;
        }
        auto R = decodeResponse(Line);
        if (!R) {
          Failed = true;
          return;
        }
        if (R->Status == StatusCode::Ok) {
          if (I % 3 == 2)
            ++PingsSeen;
          else
            ++OkSeen;
        } else if (R->Status == StatusCode::SourceError)
          ++SourceErrSeen;
      }
    });
  }
  for (auto &T : Pool)
    T.join();
  ASSERT_FALSE(Failed.load());
  EXPECT_EQ(OkSeen.load(), Threads * 6u);
  EXPECT_EQ(SourceErrSeen.load(), Threads * 6u);
  EXPECT_EQ(PingsSeen.load(), Threads * 6u);

  // Scrape metrics over the wire and cross-check against stats().
  TestClient M;
  ASSERT_TRUE(M.connectTo(Cfg.SocketPath));
  WireRequest MR;
  MR.Operation = Op::Metrics;
  MR.Id = "\"m\"";
  ASSERT_TRUE(M.sendLine(encodeRequest(MR)));
  std::string Line;
  ASSERT_TRUE(M.readLine(Line));
  auto R = decodeResponse(Line);
  ASSERT_TRUE(bool(R)) << R.error();
  ASSERT_TRUE(R->ok());
  auto Doc = JsonValue::parse(R->MetricsJson);
  ASSERT_TRUE(bool(Doc)) << Doc.error();

  const JsonValue *Schema = Doc->find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asInt(), 2);
  const JsonValue *Srv = Doc->find("server");
  ASSERT_NE(Srv, nullptr) << "metrics must carry the server section";
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(Srv->find("requests_accepted")->asInt(),
            static_cast<long long>(St.RequestsAccepted));
  EXPECT_EQ(St.RequestsAccepted,
            static_cast<uint64_t>(Threads * PerThread * 2 / 3));
  const JsonValue *CacheJ = Doc->find("cache");
  ASSERT_NE(CacheJ, nullptr);
  ResultCache::Snapshot CS = (*S)->cacheSnapshot();
  EXPECT_EQ(CacheJ->find("misses")->asInt(),
            static_cast<long long>(CS.Misses));
  // 6 distinct ok kernels across 24 ok requests: at least 18 were served
  // warm (hit or coalesced). Failed compiles are never cached, so every
  // cold bad-source attempt is an extra miss - hence >=, not ==.
  EXPECT_GE(CS.Misses, 6u);
  EXPECT_GE(CS.Hits + CS.Coalesced, 18u);
  const JsonValue *Lat = Doc->find("latency_ms");
  ASSERT_NE(Lat, nullptr);
  EXPECT_EQ(Lat->find("count")->asInt(),
            static_cast<long long>(St.RequestsCompleted));
  const JsonValue *Counters = Doc->find("counters");
  ASSERT_NE(Counters, nullptr) << "toolchain counters must be present";
  EXPECT_GT(Counters->find("lexmin_calls")->asInt(), 0);

  (*S)->drain();
  St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted);
}

} // namespace
