//===- tests/robustness_test.cpp - Fault-isolation & budget tests ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Covers the robustness layer end to end: cooperative resource budgets
// (support/Budget.h) and their classification as resource-exhausted
// through Pipeline, the deterministic FaultInjector and every site it
// instruments, degraded modes (disk-cache write path turning itself off,
// the JIT's retry-once), the wire protocol's budget fields, the
// resource-bomb corpus regressions, and the forked sandbox workers with
// their parent-side recovery paths (crash classification, watchdog kill,
// respawn, the server's crash circuit breaker).
//
//===----------------------------------------------------------------------===//

#include "observe/PassStats.h"
#include "runtime/Jit.h"
#include "serve/Protocol.h"
#include "serve/Sandbox.h"
#include "serve/Server.h"
#include "service/Pipeline.h"
#include "service/ResultCache.h"
#include "support/BigInt.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#ifndef PLUTOPP_CORPUS_DIR
#error "PLUTOPP_CORPUS_DIR must be defined by the build"
#endif

using namespace pluto;
using namespace pluto::serve;
namespace fs = std::filesystem;

namespace {

const char *MatMul = "for (i = 0; i <= N - 1; i++)\n"
                     "  for (j = 0; j <= N - 1; j++)\n"
                     "    for (k = 0; k <= N - 1; k++)\n"
                     "      C[i][j] = C[i][j] + A[i][k] * B[k][j];\n";

std::string readFile(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string bombSource(const char *Name) {
  return readFile(fs::path(PLUTOPP_CORPUS_DIR) / "bombs" / Name);
}

std::string tempDir(const std::string &Suffix) {
  const char *Tmp = std::getenv("TMPDIR");
  std::string Dir = (Tmp && *Tmp) ? Tmp : "/tmp";
  return Dir + "/plutopp_robust_test_" + std::to_string(getpid()) + Suffix;
}

/// Every test that arms the injector runs through this fixture so a
/// failing assertion can never leak an armed site into later tests.
class FaultFixture : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::disarm(); }
  void TearDown() override { FaultInjector::disarm(); }
};

using FaultInjectorTest = FaultFixture;
using DegradedModeTest = FaultFixture;
using SandboxTest = FaultFixture;
using IsolateServerTest = FaultFixture;

//===----------------------------------------------------------------------===//
// BudgetLimits / Budget / ScopedBudget
//===----------------------------------------------------------------------===//

TEST(BudgetTest, DefaultIsUnlimited) {
  BudgetLimits L;
  EXPECT_TRUE(L.unlimited());
  EXPECT_EQ(L.WallMs, 0u);
  EXPECT_EQ(L.MaxMemoryBytes, 0u);
  EXPECT_EQ(L.MaxWorkUnits, 0u);
}

TEST(BudgetTest, TightestMergeIsMemberWise) {
  BudgetLimits A{1000, 0, 500};
  BudgetLimits B{2000, 4096, 0};
  BudgetLimits T = BudgetLimits::tightest(A, B);
  EXPECT_EQ(T.WallMs, 1000u);          // min of two bounds
  EXPECT_EQ(T.MaxMemoryBytes, 4096u);  // 0 (unlimited) loses to any bound
  EXPECT_EQ(T.MaxWorkUnits, 500u);
  // Merging with fully-unlimited is the identity, both ways.
  BudgetLimits U;
  T = BudgetLimits::tightest(A, U);
  EXPECT_EQ(T.WallMs, A.WallMs);
  EXPECT_EQ(T.MaxMemoryBytes, A.MaxMemoryBytes);
  EXPECT_EQ(T.MaxWorkUnits, A.MaxWorkUnits);
  EXPECT_TRUE(BudgetLimits::tightest(U, U).unlimited());
}

TEST(BudgetTest, WorkLimitTripsStickyWithReason) {
  BudgetLimits L;
  L.MaxWorkUnits = 10;
  Budget B(L);
  EXPECT_TRUE(B.charge(5));
  EXPECT_TRUE(B.charge(5)); // exactly at the limit: still fine
  EXPECT_FALSE(B.charge(1));
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.reason(), "work");
  // Sticky: once tripped, every further charge fails instantly.
  EXPECT_FALSE(B.charge(1));
  EXPECT_FALSE(B.chargeMemory(1));
}

TEST(BudgetTest, MemoryLimitTripsWithReason) {
  BudgetLimits L;
  L.MaxMemoryBytes = 1024;
  Budget B(L);
  EXPECT_TRUE(B.chargeMemory(1024));
  EXPECT_FALSE(B.chargeMemory(1));
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.reason(), "memory");
  EXPECT_GE(B.memoryUsed(), 1025u);
}

TEST(BudgetTest, WallClockTrips) {
  BudgetLimits L;
  L.WallMs = 10;
  Budget B(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(B.checkWall());
  EXPECT_TRUE(B.exhausted());
  EXPECT_STREQ(B.reason(), "wall-clock");
}

TEST(BudgetTest, FirstTripReasonWins) {
  Budget B{BudgetLimits{}};
  EXPECT_FALSE(B.exhausted());
  EXPECT_EQ(B.reason(), nullptr);
  B.trip("work");
  B.trip("memory");
  EXPECT_STREQ(B.reason(), "work");
}

TEST(BudgetTest, ScopedBudgetInstallsAndRestores) {
  EXPECT_EQ(activeBudget(), nullptr);
  EXPECT_TRUE(budgetCharge(1000000)); // no budget installed: free pass
  EXPECT_FALSE(budgetExhausted());
  BudgetLimits L;
  L.MaxWorkUnits = 4;
  Budget B(L);
  {
    ScopedBudget Install(&B);
    EXPECT_EQ(activeBudget(), &B);
    EXPECT_TRUE(budgetCharge(4));
    EXPECT_FALSE(budgetCharge(1));
    EXPECT_TRUE(budgetExhausted());
    {
      ScopedBudget Uninstall(nullptr); // explicit uninstall for a scope
      EXPECT_EQ(activeBudget(), nullptr);
      EXPECT_TRUE(budgetCharge(1));
    }
    EXPECT_EQ(activeBudget(), &B);
  }
  EXPECT_EQ(activeBudget(), nullptr);
}

TEST(BudgetTest, SingleThreadModeFlag) {
  EXPECT_FALSE(singleThreadMode());
  setSingleThreadMode(true);
  EXPECT_TRUE(singleThreadMode());
  setSingleThreadMode(false);
  EXPECT_FALSE(singleThreadMode());
}

//===----------------------------------------------------------------------===//
// StatusCode taxonomy: names, exit codes, aggregation
//===----------------------------------------------------------------------===//

TEST(StatusCodeTest, NamesRoundTrip) {
  const StatusCode All[] = {
      StatusCode::Ok,           StatusCode::BadRequest,
      StatusCode::SourceError,  StatusCode::ScheduleAbort,
      StatusCode::Internal,     StatusCode::Overloaded,
      StatusCode::ResourceExhausted};
  for (StatusCode S : All) {
    auto Back = statusCodeFromName(statusCodeName(S));
    ASSERT_TRUE(Back.has_value()) << statusCodeName(S);
    EXPECT_EQ(*Back, S);
  }
  EXPECT_STREQ(statusCodeName(StatusCode::ResourceExhausted),
               "resource-exhausted");
  EXPECT_FALSE(statusCodeFromName("no-such-status").has_value());
}

TEST(StatusCodeTest, ExitCodeTable) {
  EXPECT_EQ(exitCodeFor(StatusCode::Ok), 0);
  EXPECT_EQ(exitCodeFor(StatusCode::BadRequest), 2);
  EXPECT_EQ(exitCodeFor(StatusCode::SourceError), 2);
  EXPECT_EQ(exitCodeFor(StatusCode::ScheduleAbort), 1);
  EXPECT_EQ(exitCodeFor(StatusCode::Internal), 1);
  EXPECT_EQ(exitCodeFor(StatusCode::Overloaded), 3);
  EXPECT_EQ(exitCodeFor(StatusCode::ResourceExhausted), 4);
}

TEST(StatusCodeTest, AggregatePrecedence) {
  // Documented precedence: 2 (bad input) > 1 (internal) > 4 (over budget)
  // > 3 (overloaded) > 0.
  const int Order[] = {2, 1, 4, 3, 0};
  for (size_t I = 0; I < 5; ++I)
    for (size_t J = 0; J < 5; ++J) {
      int Want = Order[std::min(I, J)];
      EXPECT_EQ(aggregateExitCodes(Order[I], Order[J]), Want)
          << Order[I] << " vs " << Order[J];
    }
}

//===----------------------------------------------------------------------===//
// FaultInjector: spec parsing, hit semantics, counters
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectorTest, DisarmedIsFreeAndSilent) {
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_FALSE(FaultInjector::shouldFail("cache.disk_write"));
  EXPECT_EQ(FaultInjector::hits("cache.disk_write"), 0u);
  EXPECT_TRUE(FaultInjector::allHits().empty());
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::arm("site:"));
  EXPECT_FALSE(FaultInjector::arm(":3"));
  EXPECT_FALSE(FaultInjector::arm("site:0"));
  EXPECT_FALSE(FaultInjector::arm("site:x"));
  EXPECT_FALSE(FaultInjector::armed()); // failed arms left it disarmed
  EXPECT_TRUE(FaultInjector::arm(""));  // empty spec is an explicit disarm
  EXPECT_FALSE(FaultInjector::armed());
}

TEST_F(FaultInjectorTest, NthHitSemantics) {
  ASSERT_TRUE(FaultInjector::arm("a.site:2"));
  EXPECT_FALSE(FaultInjector::shouldFail("a.site")); // hit 1
  EXPECT_TRUE(FaultInjector::shouldFail("a.site"));  // hit 2 fails
  EXPECT_FALSE(FaultInjector::shouldFail("a.site")); // hit 3 passes again
  EXPECT_EQ(FaultInjector::hits("a.site"), 3u);
  EXPECT_FALSE(FaultInjector::shouldFail("other.site")); // unarmed site
  EXPECT_EQ(FaultInjector::hits("other.site"), 0u);
}

TEST_F(FaultInjectorTest, DefaultIsFirstHitAndStarIsEvery) {
  ASSERT_TRUE(FaultInjector::arm("one,every:*"));
  EXPECT_TRUE(FaultInjector::shouldFail("one"));
  EXPECT_FALSE(FaultInjector::shouldFail("one"));
  EXPECT_TRUE(FaultInjector::shouldFail("every"));
  EXPECT_TRUE(FaultInjector::shouldFail("every"));
  auto All = FaultInjector::allHits();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].first, "one");
  EXPECT_EQ(All[0].second, 2u);
  EXPECT_EQ(All[1].first, "every");
  EXPECT_EQ(All[1].second, 2u);
}

TEST_F(FaultInjectorTest, InjectedFailuresFeedPassStats) {
  PassStats Stats;
  setActiveStats(&Stats);
  ASSERT_TRUE(FaultInjector::arm("counted:*"));
  (void)FaultInjector::shouldFail("counted");
  (void)FaultInjector::shouldFail("counted");
  setActiveStats(nullptr);
  EXPECT_EQ(Stats.get(Counter::FaultsInjected), 2u);
}

//===----------------------------------------------------------------------===//
// Resource-bomb corpus: pathological inputs must exhaust their budget
// deterministically (work units, not wall clock) instead of spinning.
//===----------------------------------------------------------------------===//

TEST(ResourceBombTest, DeepNestExhaustsWorkBudget) {
  std::string Src = bombSource("deep_nest.c");
  ASSERT_FALSE(Src.empty());
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "deep_nest.c";
  Req.Source = Src;
  Req.Budget.MaxWorkUnits = 200000;
  CompileResponse R = P->compileRequest(Req);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_NE(R.Error.find("work limit"), std::string::npos) << R.Error;
  EXPECT_TRUE(R.EmittedC.empty());
}

TEST(ResourceBombTest, WideCoupledExhaustsWorkBudget) {
  std::string Src = bombSource("wide_coupled.c");
  ASSERT_FALSE(Src.empty());
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "wide_coupled.c";
  Req.Source = Src;
  Req.Budget.MaxWorkUnits = 20000;
  CompileResponse R = P->compileRequest(Req);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_NE(R.Error.find("work limit"), std::string::npos) << R.Error;
}

TEST(ResourceBombTest, MemoryBudgetTripsOnBomb) {
  std::string Src = bombSource("wide_coupled.c");
  ASSERT_FALSE(Src.empty());
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "wide_coupled.c";
  Req.Source = Src;
  Req.Budget.MaxMemoryBytes = 1ull << 20;
  CompileResponse R = P->compileRequest(Req);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_NE(R.Error.find("memory limit"), std::string::npos) << R.Error;
}

TEST(ResourceBombTest, BudgetCountsExhaustionInPassStats) {
  std::string Src = bombSource("deep_nest.c");
  ASSERT_FALSE(Src.empty());
  PassStats Stats;
  setActiveStats(&Stats);
  auto P = Pipeline::create();
  ASSERT_TRUE(P.hasValue());
  CompileRequest Req;
  Req.Name = "deep_nest.c";
  Req.Source = Src;
  Req.Budget.MaxWorkUnits = 200000;
  CompileResponse R = P->compileRequest(Req);
  setActiveStats(nullptr);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_GE(Stats.get(Counter::BudgetExhausted), 1u);
}

TEST(ResourceBombTest, GenerousBudgetNeverChangesTheOutput) {
  auto P1 = Pipeline::create();
  ASSERT_TRUE(P1.hasValue());
  CompileRequest Plain;
  Plain.Name = "matmul.c";
  Plain.Source = MatMul;
  CompileResponse R1 = P1->compileRequest(Plain);
  ASSERT_EQ(R1.Status, StatusCode::Ok);

  auto P2 = Pipeline::create();
  ASSERT_TRUE(P2.hasValue());
  CompileRequest Budgeted = Plain;
  Budgeted.Budget.MaxWorkUnits = 50000000;
  Budgeted.Budget.MaxMemoryBytes = 1ull << 30;
  Budgeted.Budget.WallMs = 600000;
  CompileResponse R2 = P2->compileRequest(Budgeted);
  ASSERT_EQ(R2.Status, StatusCode::Ok);
  // Budgets never perturb what a successful compile emits, and never
  // enter the cache key.
  EXPECT_EQ(R1.EmittedC, R2.EmittedC);
  EXPECT_EQ(R1.Key, R2.Key);
}

//===----------------------------------------------------------------------===//
// bigint.alloc: arbitrary-precision blowup surfaces as bad_alloc
//===----------------------------------------------------------------------===//

TEST_F(FaultInjectorTest, BigIntAllocFaultThrowsBadAlloc) {
  BigInt Big(1LL << 62);
  ASSERT_TRUE(FaultInjector::arm("bigint.alloc:1"));
  // 2^124 needs real limbs; the armed site turns that materialization
  // into the bad_alloc a genuine allocation failure would raise (Pipeline
  // classifies it as resource-exhausted at the stage boundary).
  EXPECT_THROW(Big * Big, std::bad_alloc);
  EXPECT_GE(FaultInjector::hits("bigint.alloc"), 1u);
  FaultInjector::disarm();
  BigInt Product = Big * Big; // and cleanly again once disarmed
  EXPECT_EQ(Product.toString(), "21267647932558653966460912964485513216");
}

//===----------------------------------------------------------------------===//
// Degraded modes: disk-cache write path, JIT retry-once
//===----------------------------------------------------------------------===//

TEST_F(DegradedModeTest, DiskWriteFailuresDegradeToMemoryOnly) {
  std::string Dir = tempDir("_degrade");
  fs::remove_all(Dir);
  PassStats Stats;
  setActiveStats(&Stats);
  {
    ResultCache::Config C;
    C.DiskDir = Dir;
    ResultCache Cache(C);
    ASSERT_TRUE(Cache.diskEnabled());
    ASSERT_TRUE(FaultInjector::arm("cache.disk_write:*"));
    for (unsigned I = 0; I < ResultCache::MaxDiskWriteErrors; ++I)
      Cache.insert("key" + std::to_string(I), "value");
    EXPECT_TRUE(Cache.diskWritesDisabled());
    EXPECT_EQ(Cache.snapshot().WriteErrors, ResultCache::MaxDiskWriteErrors);
    // Once off, inserts skip the disk entirely: no new errors accrue and
    // the memory tier keeps serving.
    Cache.insert("late", "value");
    EXPECT_EQ(Cache.snapshot().WriteErrors, ResultCache::MaxDiskWriteErrors);
    auto V = Cache.lookup("late");
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, "value");
  }
  setActiveStats(nullptr);
  EXPECT_EQ(Stats.get(Counter::CacheWriteErrors),
            ResultCache::MaxDiskWriteErrors);
  fs::remove_all(Dir);
}

TEST_F(DegradedModeTest, DiskReadFaultIsJustAMiss) {
  std::string Dir = tempDir("_readfault");
  fs::remove_all(Dir);
  {
    ResultCache::Config C;
    C.DiskDir = Dir;
    ResultCache Writer(C);
    ASSERT_TRUE(Writer.diskEnabled());
    Writer.insert("persisted", "payload");
  }
  ResultCache::Config C;
  C.DiskDir = Dir;
  ResultCache Reader(C); // fresh memory tier; "persisted" is disk-only
  ASSERT_TRUE(FaultInjector::arm("cache.disk_read:*"));
  EXPECT_FALSE(Reader.lookup("persisted").has_value());
  FaultInjector::disarm();
  auto V = Reader.lookup("persisted");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, "payload");
  fs::remove_all(Dir);
}

TEST_F(DegradedModeTest, JitRetriesOnceAfterTransientFailure) {
  if (!CompiledKernel::compilerAvailable())
    GTEST_SKIP() << "no C compiler on this host";
  PassStats Stats;
  setActiveStats(&Stats);
  ASSERT_TRUE(FaultInjector::arm("jit.compile:1"));
  auto K = CompiledKernel::compile(
      "void kernel_entry(double **a, const long long *p, const double *c)"
      " { (void)a; (void)p; (void)c; }\n");
  setActiveStats(nullptr);
  EXPECT_EQ(FaultInjector::hits("jit.compile"), 2u); // failed, then retried
  ASSERT_TRUE(K.hasValue()) << K.error();
  EXPECT_TRUE(K->valid());
  EXPECT_EQ(Stats.get(Counter::JitRetries), 1u);
}

//===----------------------------------------------------------------------===//
// Wire protocol: budget fields ride the request envelope
//===----------------------------------------------------------------------===//

TEST(ProtocolBudgetTest, BudgetFieldsRoundTrip) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Id = "7";
  R.Req.Name = "k.c";
  R.Req.Source = MatMul;
  R.Req.Budget.WallMs = 1500;
  R.Req.Budget.MaxMemoryBytes = 64ull << 20;
  R.Req.Budget.MaxWorkUnits = 777;
  std::string Line = encodeRequest(R);
  EXPECT_NE(Line.find("timeout_ms"), std::string::npos);
  EXPECT_NE(Line.find("max_memory_mb"), std::string::npos);
  EXPECT_NE(Line.find("max_work"), std::string::npos);
  auto Back = decodeRequest(Line);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_EQ(Back->Req.Budget.WallMs, 1500u);
  EXPECT_EQ(Back->Req.Budget.MaxMemoryBytes, 64ull << 20);
  EXPECT_EQ(Back->Req.Budget.MaxWorkUnits, 777u);
}

TEST(ProtocolBudgetTest, UnlimitedBudgetStaysOffTheWire) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Req.Name = "k.c";
  R.Req.Source = MatMul;
  std::string Line = encodeRequest(R);
  // Budgets are not options: an unbudgeted request encodes no budget
  // members at all (old daemons and fingerprints never see them).
  EXPECT_EQ(Line.find("timeout_ms"), std::string::npos);
  EXPECT_EQ(Line.find("max_memory_mb"), std::string::npos);
  EXPECT_EQ(Line.find("max_work"), std::string::npos);
  auto Back = decodeRequest(Line);
  ASSERT_TRUE(Back.hasValue()) << Back.error();
  EXPECT_TRUE(Back->Req.Budget.unlimited());
}

TEST(ProtocolBudgetTest, RejectsNegativeBudgetValues) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Req.Name = "k.c";
  R.Req.Source = "for (i = 0; i < N; i++) a[i] = 0;";
  std::string Line = encodeRequest(R);
  ASSERT_GT(Line.size(), 1u);
  std::string Bad = Line.substr(0, Line.size() - 1) + ",\"timeout_ms\":-5}";
  EXPECT_FALSE(decodeRequest(Bad).hasValue());
}

//===----------------------------------------------------------------------===//
// SandboxWorker: forked compile workers and every recovery path
//===----------------------------------------------------------------------===//

CompileRequest sandboxRequest(const std::string &Name,
                              const std::string &Source) {
  CompileRequest Req;
  Req.Name = Name;
  Req.Source = Source;
  return Req;
}

TEST_F(SandboxTest, CompilesAndReusesOneChild) {
  SandboxWorker W;
  bool Died = false;
  CompileResponse R = W.compile(sandboxRequest("mm.c", MatMul), &Died);
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_FALSE(Died);
  EXPECT_FALSE(R.EmittedC.empty());
  pid_t First = W.childPid();
  EXPECT_GT(First, 0);
  // A second job reuses the same warm child; no respawn happened.
  R = W.compile(sandboxRequest("mm2.c", std::string(MatMul) + "\n"));
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_EQ(W.childPid(), First);
  EXPECT_EQ(W.restarts(), 0u);
}

TEST_F(SandboxTest, CrashClassifiedInternalThenRespawns) {
  ASSERT_TRUE(FaultInjector::arm("sandbox.abort:1"));
  SandboxWorker W;
  bool Died = false;
  CompileResponse R = W.compile(sandboxRequest("mm.c", MatMul), &Died);
  EXPECT_EQ(R.Status, StatusCode::Internal);
  EXPECT_TRUE(Died); // this request killed the child: breaker material
  EXPECT_NE(R.Error.find("signal"), std::string::npos) << R.Error;
  FaultInjector::disarm(); // the respawned child forks disarmed
  R = W.compile(sandboxRequest("mm.c", MatMul), &Died);
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_FALSE(Died);
  EXPECT_EQ(W.restarts(), 1u);
}

TEST_F(SandboxTest, SpawnFaultIsAStructuredError) {
  ASSERT_TRUE(FaultInjector::arm("sandbox.spawn:1"));
  SandboxWorker W;
  bool Died = false;
  CompileResponse R = W.compile(sandboxRequest("mm.c", MatMul), &Died);
  EXPECT_EQ(R.Status, StatusCode::Internal);
  EXPECT_FALSE(Died); // no child ever existed, so nothing "died"
  EXPECT_NE(R.Error.find("spawn"), std::string::npos) << R.Error;
  FaultInjector::disarm();
  R = W.compile(sandboxRequest("mm.c", MatMul));
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
}

TEST_F(SandboxTest, HangIsKilledByTheWatchdog) {
  ASSERT_TRUE(FaultInjector::arm("sandbox.hang:1"));
  SandboxWorker W;
  CompileRequest Req = sandboxRequest("mm.c", MatMul);
  Req.Budget.WallMs = 300;
  bool Died = false;
  auto T0 = std::chrono::steady_clock::now();
  CompileResponse R = W.compile(Req, &Died);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_TRUE(Died);
  EXPECT_NE(R.Error.find("wall-clock"), std::string::npos) << R.Error;
  // Killed promptly after the deadline + grace, not after the hour the
  // child intended to sleep.
  EXPECT_LT(Ms, 10000);
}

TEST_F(SandboxTest, WallBudgetTripsInsideTheChild) {
  std::string Src = bombSource("deep_nest.c");
  ASSERT_FALSE(Src.empty());
  SandboxWorker W;
  CompileRequest Req = sandboxRequest("deep_nest.c", Src);
  Req.Budget.WallMs = 300;
  CompileResponse R = W.compile(Req);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_NE(R.Error.find("wall-clock"), std::string::npos) << R.Error;
}

TEST_F(SandboxTest, WorkBudgetRidesTheSandboxWire) {
  std::string Src = bombSource("wide_coupled.c");
  ASSERT_FALSE(Src.empty());
  SandboxWorker W;
  CompileRequest Req = sandboxRequest("wide_coupled.c", Src);
  Req.Budget.MaxWorkUnits = 20000;
  bool Died = false;
  CompileResponse R = W.compile(Req, &Died);
  EXPECT_EQ(R.Status, StatusCode::ResourceExhausted);
  EXPECT_FALSE(Died); // clean in-band trip, no kill involved
  EXPECT_NE(R.Error.find("work limit"), std::string::npos) << R.Error;
}

TEST_F(SandboxTest, ExternallyKilledChildIsReplacedTransparently) {
  SandboxWorker W;
  CompileResponse R = W.compile(sandboxRequest("mm.c", MatMul));
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  pid_t Victim = W.childPid();
  ASSERT_GT(Victim, 0);
  ASSERT_EQ(kill(Victim, SIGKILL), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The next job notices the dead peer, respawns once and retries: the
  // caller sees a normal response (an idle-time kill is not the job's
  // fault, so it is not breaker material either).
  bool Died = false;
  R = W.compile(sandboxRequest("mm3.c", std::string(MatMul) + "\n\n"),
                &Died);
  ASSERT_EQ(R.Status, StatusCode::Ok) << R.Error;
  EXPECT_FALSE(Died);
  EXPECT_EQ(W.restarts(), 1u);
  EXPECT_NE(W.childPid(), Victim);
}

//===----------------------------------------------------------------------===//
// Server --isolate integration: caching, breaker and metrics over a real
// socket (the unit above covers the worker; this covers the glue).
//===----------------------------------------------------------------------===//

std::string uniqueSocketPath() {
  static std::atomic<unsigned> Seq{0};
  return "/tmp/plutopp-robust-test-" + std::to_string(getpid()) + "-" +
         std::to_string(Seq.fetch_add(1)) + ".sock";
}

/// Minimal blocking NDJSON client over one AF_UNIX connection (the same
/// shape serve_test uses).
struct TestClient {
  int Fd = -1;
  std::string InBuf;

  ~TestClient() {
    if (Fd >= 0)
      close(Fd);
  }

  bool connectTo(const std::string &Path) {
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
    return connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
           0;
  }

  bool sendLine(const std::string &Line) {
    std::string Data = Line + "\n";
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t W =
          send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  bool readLine(std::string &Line, int TimeoutMs = 30000) {
    for (;;) {
      size_t Pos = InBuf.find('\n');
      if (Pos != std::string::npos) {
        Line = InBuf.substr(0, Pos);
        InBuf.erase(0, Pos + 1);
        return true;
      }
      pollfd P{Fd, POLLIN, 0};
      if (poll(&P, 1, TimeoutMs) <= 0)
        return false;
      char Buf[65536];
      ssize_t R = recv(Fd, Buf, sizeof(Buf), 0);
      if (R <= 0)
        return false;
      InBuf.append(Buf, static_cast<size_t>(R));
    }
  }

  /// Sends one request line and decodes the one response line.
  Result<WireResponse> roundTrip(const WireRequest &R) {
    if (!sendLine(encodeRequest(R)))
      return Err("send failed");
    std::string Line;
    if (!readLine(Line))
      return Err("no response line");
    return decodeResponse(Line);
  }
};

WireRequest isolateCompile(const std::string &Id, const std::string &Name,
                           const std::string &Source) {
  WireRequest R;
  R.Operation = Op::Compile;
  R.Id = Id;
  R.Req.Name = Name;
  R.Req.Source = Source;
  return R;
}

TEST_F(IsolateServerTest, CompilesAndCachesInTheParent) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  Cfg.Isolate = true;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(S.hasValue()) << S.error();
  (*S)->start();

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));
  auto R1 = C.roundTrip(isolateCompile("1", "mm.c", MatMul));
  ASSERT_TRUE(R1.hasValue()) << R1.error();
  ASSERT_EQ(R1->Status, StatusCode::Ok) << R1->Error;
  EXPECT_FALSE(R1->CacheHit);
  EXPECT_FALSE(R1->EmittedC.empty());
  // Keying and the cache live in the parent: the identical request is a
  // hit and never reaches a sandbox.
  auto R2 = C.roundTrip(isolateCompile("2", "mm.c", MatMul));
  ASSERT_TRUE(R2.hasValue()) << R2.error();
  ASSERT_EQ(R2->Status, StatusCode::Ok) << R2->Error;
  EXPECT_TRUE(R2->CacheHit);
  EXPECT_EQ(R2->EmittedC, R1->EmittedC);
  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted);
}

TEST_F(IsolateServerTest, CrashTripsTheCircuitBreaker) {
  ServerConfig Cfg;
  Cfg.SocketPath = uniqueSocketPath();
  Cfg.Workers = 1;
  Cfg.Isolate = true;
  Cfg.BreakerTtlMs = 60000;
  auto S = Server::create(Cfg);
  ASSERT_TRUE(S.hasValue()) << S.error();
  (*S)->start();

  TestClient C;
  ASSERT_TRUE(C.connectTo(Cfg.SocketPath));

  // Armed before the worker's first fork, so the child inherits the spec
  // and aborts on its first compile.
  ASSERT_TRUE(FaultInjector::arm("sandbox.abort:1"));
  auto R1 = C.roundTrip(isolateCompile("1", "poison.c", MatMul));
  ASSERT_TRUE(R1.hasValue()) << R1.error();
  EXPECT_EQ(R1->Status, StatusCode::Internal);
  EXPECT_NE(R1->Error.find("signal"), std::string::npos) << R1->Error;

  // The same cache key again: refused by the breaker without spending
  // another sandbox child on it.
  auto R2 = C.roundTrip(isolateCompile("2", "poison.c", MatMul));
  ASSERT_TRUE(R2.hasValue()) << R2.error();
  EXPECT_EQ(R2->Status, StatusCode::Internal);
  EXPECT_NE(R2->Error.find("circuit breaker"), std::string::npos)
      << R2->Error;

  // A different input after disarming compiles fine on a fresh child.
  // (Genuinely different: source canonicalization trims outer blank
  // lines, so a trailing "\n" would map to the poisoned cache key.)
  FaultInjector::disarm();
  auto R3 = C.roundTrip(isolateCompile(
      "3", "ok.c",
      "for (i = 0; i <= N - 1; i++)\n"
      "  for (j = 0; j <= N - 1; j++)\n"
      "    D[i][j] = D[i][j] + A[i][j];\n"));
  ASSERT_TRUE(R3.hasValue()) << R3.error();
  EXPECT_EQ(R3->Status, StatusCode::Ok) << R3->Error;

  WireRequest M;
  M.Operation = Op::Metrics;
  M.Id = "4";
  auto R4 = C.roundTrip(M);
  ASSERT_TRUE(R4.hasValue()) << R4.error();
  ASSERT_EQ(R4->Status, StatusCode::Ok);
  EXPECT_NE(R4->MetricsJson.find("\"breaker_hits\":1"), std::string::npos)
      << R4->MetricsJson;
  EXPECT_NE(R4->MetricsJson.find("\"sandbox_restarts\":1"),
            std::string::npos)
      << R4->MetricsJson;

  (*S)->drain();
  Server::Stats St = (*S)->stats();
  EXPECT_EQ(St.RequestsAccepted, St.RequestsCompleted);
  EXPECT_EQ(St.BreakerHits, 1u);
  EXPECT_EQ(St.SandboxRestarts, 1u);
}

} // namespace
