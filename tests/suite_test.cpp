//===- tests/suite_test.cpp - Generality sweep over the kernel suite ------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The paper positions the framework as fully automatic for ARBITRARY affine
// loop nests. This suite runs the complete pipeline over the extended
// kernel collection (polybench-style shapes beyond Section 7's five) and
// checks, for each: the schedule passes the independent legality oracle,
// at least one permutable band exists where expected, and the generated
// code is semantically equivalent to the original under tiling and
// wavefronting.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Kernels.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

using namespace pluto;

namespace {

struct SuiteCase {
  const char *Name;
  const char *Src;
  std::map<std::string, std::vector<long long>> Extents;
  std::map<std::string, long long> Params;
  bool InputDeps;
  unsigned ExpectBandWidth; ///< Minimum width of the first band.
};

std::vector<SuiteCase> cases() {
  long long N = 9, M = 6, T = 4;
  return {
      {"jacobi2d",
       kernels::Jacobi2D,
       {{"a", {N, N}}, {"b", {N, N}}},
       {{"T", T}, {"N", N}},
       false,
       3},
      {"gemver",
       kernels::Gemver,
       {{"a", {N, N}},
        {"aa", {N, N}},
        {"u1", {N}},
        {"v1", {N}},
        {"u2", {N}},
        {"v2", {N}},
        {"x", {N}},
        {"y", {N}},
        {"z", {N}},
        {"w", {N}},
        {"alpha", {1}},
        {"beta", {1}}},
       {{"N", N}},
       true,
       1},
      {"trmm",
       kernels::Trmm,
       {{"a", {N, N}}, {"b", {N, N}}},
       {{"N", N}},
       false,
       2},
      {"syrk",
       kernels::Syrk,
       {{"a", {N, N}}, {"c", {N, N}}},
       {{"N", N}},
       false,
       3},
      {"doitgen",
       kernels::Doitgen,
       {{"a", {N, N, M}}, {"sum", {N, N, M}}, {"c4", {M, M}}},
       {{"N", N}, {"M", M}},
       false,
       2},
      {"atax",
       kernels::Atax,
       {{"a", {N, N}}, {"x", {N}}, {"y", {N}}, {"tmp", {N}}},
       {{"N", N}},
       true,
       1},
  };
}

class KernelSuite : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(KernelSuite, FullPipelineLegalAndEquivalent) {
  const SuiteCase &C = GetParam();
  PlutoOptions Opts;
  Opts.TileSize = 3;
  Opts.IncludeInputDeps = C.InputDeps;
  auto R = optimizeSource(C.Src, Opts);
  ASSERT_TRUE(R) << R.error();

  // Independent legality oracle.
  {
    DependenceGraph DG = R->DG;
    Schedule S = R->Sched;
    EXPECT_TRUE(analyzeSchedule(R->program(), DG, S));
  }
  // Band expectation (pre-tiling schedule).
  auto Bands = R->Sched.bands();
  ASSERT_FALSE(Bands.empty());
  EXPECT_GE(Bands[0].Width, C.ExpectBandWidth) << "first band too narrow";

  // Equivalence: original vs transformed under the interpreter.
  auto Orig = buildOriginalAst(R->program());
  ASSERT_TRUE(Orig) << Orig.error();
  auto runWith = [&](const CgNode &Ast) {
    Interpreter I;
    I.allocate(R->program(), C.Extents);
    unsigned S = 1;
    for (auto &[Name, T] : I.Arrays)
      T.fillPattern(S++);
    I.Params = C.Params;
    auto Ok = I.run(R->program(), Ast);
    EXPECT_TRUE(Ok) << (Ok ? "" : Ok.error());
    return I.Arrays;
  };
  auto Want = runWith(**Orig);
  auto Got = runWith(*R->Ast);
  for (const auto &[Name, TW] : Want) {
    const Tensor &TG = Got.at(Name);
    ASSERT_EQ(TW.Data.size(), TG.Data.size()) << Name;
    for (size_t I = 0; I < TW.Data.size(); ++I)
      ASSERT_NEAR(TW.Data[I], TG.Data[I],
                  1e-9 * (1.0 + std::fabs(TW.Data[I])))
          << Name << "[" << I << "]";
  }
}

TEST_P(KernelSuite, ToolchainIsFast) {
  // Paper Sec. 7: "within a fraction of a second" for the transformation;
  // "a few seconds" end to end. Give generous slack for slow CI hosts.
  const SuiteCase &C = GetParam();
  PlutoOptions Opts;
  Opts.TileSize = 32;
  Opts.IncludeInputDeps = C.InputDeps;
  auto T0 = std::chrono::steady_clock::now();
  auto R = optimizeSource(C.Src, Opts);
  auto T1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(R) << R.error();
  EXPECT_LT(std::chrono::duration<double>(T1 - T0).count(), 30.0);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelSuite, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<SuiteCase> &I) {
                           return std::string(I.param.Name);
                         });

} // namespace
