//===- tests/poly_test.cpp - ConstraintSystem unit tests ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "poly/ConstraintSystem.h"

#include <gtest/gtest.h>

using namespace pluto;

namespace {

/// 0 <= x0, x1 <= 9 square.
ConstraintSystem square() {
  ConstraintSystem CS(2);
  CS.addLowerBound(0, 0);
  CS.addUpperBound(0, 9);
  CS.addLowerBound(1, 0);
  CS.addUpperBound(1, 9);
  return CS;
}

TEST(ConstraintSystemTest, EmptinessBasic) {
  ConstraintSystem CS = square();
  EXPECT_FALSE(CS.isIntegerEmpty());
  CS.addIneq({1, 0, -100}); // x0 >= 100 contradicts x0 <= 9.
  EXPECT_TRUE(CS.isIntegerEmpty());
}

TEST(ConstraintSystemTest, EmptinessIntegerExact) {
  // 1 <= 2*x0 <= 1: rational point only.
  ConstraintSystem CS(1);
  CS.addIneq({2, -1});
  CS.addIneq({-2, 1});
  EXPECT_TRUE(CS.isIntegerEmpty());
}

TEST(ConstraintSystemTest, ImpliesIneq) {
  ConstraintSystem CS = square();
  // x0 <= 20 is implied; x0 <= 5 is not.
  EXPECT_TRUE(CS.impliesIneq({BigInt(-1), BigInt(0), BigInt(20)}));
  EXPECT_FALSE(CS.impliesIneq({BigInt(-1), BigInt(0), BigInt(5)}));
}

TEST(ConstraintSystemTest, FourierMotzkinProjection) {
  // Triangle 0 <= x1 <= x0 <= 9; projecting out x1 gives 0 <= x0 <= 9.
  ConstraintSystem CS(2);
  CS.addIneq({0, 1, 0});   // x1 >= 0
  CS.addIneq({1, -1, 0});  // x0 >= x1
  CS.addIneq({-1, 0, 9});  // x0 <= 9
  CS.projectOut(1, 1);
  EXPECT_EQ(CS.numVars(), 1u);
  EXPECT_FALSE(CS.isIntegerEmpty());
  EXPECT_TRUE(CS.impliesIneq({BigInt(1), BigInt(0)}));   // x0 >= 0
  EXPECT_TRUE(CS.impliesIneq({BigInt(-1), BigInt(9)}));  // x0 <= 9
  EXPECT_FALSE(CS.impliesIneq({BigInt(1), BigInt(-1)})); // x0 >= 1 not implied
}

TEST(ConstraintSystemTest, EqualitySubstitutionProjection) {
  // x1 == 2*x0 + 1, 0 <= x1 <= 9: eliminating x1 must give 2*x0+1 in [0,9],
  // i.e. x0 in [0, 4] over the integers.
  ConstraintSystem CS(2);
  CS.addEq({2, -1, 1});
  CS.addIneq({0, 1, 0});
  CS.addIneq({0, -1, 9});
  CS.eliminateVar(1);
  EXPECT_EQ(CS.numVars(), 1u);
  EXPECT_TRUE(CS.impliesIneq({BigInt(1), BigInt(0)}));
  EXPECT_TRUE(CS.impliesIneq({BigInt(-1), BigInt(4)}));
  EXPECT_FALSE(CS.impliesIneq({BigInt(-1), BigInt(3)}));
}

TEST(ConstraintSystemTest, NormalizeTightensByGcd) {
  // 2*x0 >= 3 normalizes to x0 >= 2 (ceil tightening via floor of -3/2).
  ConstraintSystem CS(1);
  CS.addIneq({2, -3});
  ASSERT_TRUE(CS.normalize());
  EXPECT_TRUE(CS.impliesIneq({BigInt(1), BigInt(-2)}));
}

TEST(ConstraintSystemTest, NormalizeDetectsContradiction) {
  ConstraintSystem CS(1);
  CS.addIneq({0, -1}); // 0*x - 1 >= 0.
  EXPECT_FALSE(CS.normalize());

  ConstraintSystem CS2(1);
  CS2.addEq({2, -1}); // 2*x == 1: gcd does not divide constant.
  EXPECT_FALSE(CS2.normalize());
}

TEST(ConstraintSystemTest, NormalizeDeduplicates) {
  ConstraintSystem CS(1);
  CS.addIneq({1, 0});
  CS.addIneq({1, 0});
  CS.addIneq({2, 0});
  ASSERT_TRUE(CS.normalize());
  EXPECT_EQ(CS.numIneqs(), 1u);
}

TEST(ConstraintSystemTest, GistDropsImpliedConstraints) {
  ConstraintSystem CS = square();
  ConstraintSystem Context(2);
  Context.addLowerBound(0, 0);
  Context.addUpperBound(0, 9);
  CS.gist(Context);
  // Only the x1 bounds should remain.
  EXPECT_EQ(CS.numIneqs(), 2u);
}

TEST(ConstraintSystemTest, RemoveRedundant) {
  ConstraintSystem CS(1);
  CS.addIneq({1, 0});   // x >= 0
  CS.addIneq({1, 5});   // x >= -5 (redundant)
  CS.addIneq({-1, 9});  // x <= 9
  CS.removeRedundant();
  EXPECT_EQ(CS.numIneqs(), 2u);
}

TEST(ConstraintSystemTest, InsertDims) {
  ConstraintSystem CS(2);
  CS.addIneq({1, -1, 3});
  CS.insertDims(1, 2);
  EXPECT_EQ(CS.numVars(), 4u);
  EXPECT_EQ(CS.ineqs()(0, 0).toInt64(), 1);
  EXPECT_EQ(CS.ineqs()(0, 1).toInt64(), 0);
  EXPECT_EQ(CS.ineqs()(0, 2).toInt64(), 0);
  EXPECT_EQ(CS.ineqs()(0, 3).toInt64(), -1);
  EXPECT_EQ(CS.ineqs()(0, 4).toInt64(), 3);
}

TEST(ConstraintSystemTest, IntersectionAndAppend) {
  ConstraintSystem A(1), B(1);
  A.addLowerBound(0, 2);
  B.addUpperBound(0, 5);
  ConstraintSystem C = ConstraintSystem::intersection(A, B);
  EXPECT_FALSE(C.isIntegerEmpty());
  EXPECT_TRUE(C.impliesIneq({BigInt(1), BigInt(-2)}));
  EXPECT_TRUE(C.impliesIneq({BigInt(-1), BigInt(5)}));
}

TEST(ConstraintSystemTest, ProjectionOfParametricTriangle) {
  // { (i, j, N) : 0 <= i <= j <= N }: projecting out j leaves 0 <= i <= N.
  ConstraintSystem CS(3);
  CS.addIneq({1, 0, 0, 0});  // i >= 0
  CS.addIneq({-1, 1, 0, 0}); // j >= i
  CS.addIneq({0, -1, 1, 0}); // j <= N
  CS.projectOut(1, 1);
  EXPECT_TRUE(CS.impliesIneq({BigInt(-1), BigInt(1), BigInt(0)})); // i <= N
  EXPECT_TRUE(CS.impliesIneq({BigInt(1), BigInt(0), BigInt(0)}));  // i >= 0
}

TEST(ConstraintSystemTest, ToStringSmoke) {
  ConstraintSystem CS(2);
  CS.addIneq({1, -2, 3});
  CS.addEq({0, 1, -1});
  std::string S = CS.toString({"i", "j"});
  EXPECT_NE(S.find("i - 2j + 3 >= 0"), std::string::npos);
  EXPECT_NE(S.find("j - 1 == 0"), std::string::npos);
}

} // namespace
