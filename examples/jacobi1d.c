for (t = 0; t < T; t++) {
  for (i = 2; i < N - 1; i++) {
    b[i] = 0.333 * (a[i - 1] + a[i] + a[i + 1]);
  }
  for (j = 2; j < N - 1; j++) {
    a[j] = b[j];
  }
}
