//===- examples/explore_transforms.cpp - Stage-by-stage API tour ----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Uses the individual pipeline stages (rather than the one-shot driver) to
// explore the paper's design space on the Gauss-Seidel kernel: inspect the
// dependence polyhedra, compare the automatic schedule with a forced
// (illegal and legal) alternative, and lower the same schedule with
// different tiling/wavefront configurations. This is the "empirical
// search" hook the paper's Section 1 advertises.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "driver/Kernels.h"

#include <cstdio>

using namespace pluto;

int main() {
  auto Parsed = parseSource(kernels::Seidel2D);
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.error().c_str());
    return 1;
  }
  Program &Prog = Parsed->Prog;
  Prog.addContextBound("T", 4);
  Prog.addContextBound("N", 8);

  // Stage 1: dependence analysis.
  DepOptions DO;
  DO.IncludeInputDeps = false;
  DependenceGraph DG = computeDependences(Prog, DO);
  std::printf("Gauss-Seidel has %zu dependence edges; the in-place stencil "
              "carries dependences at every loop level.\n\n",
              DG.Deps.size());

  // Stage 2: is plain loop interchange legal? Ask the analyzer.
  {
    Schedule Interchange;
    Interchange.StmtRows.push_back(
        IntMatrix({{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}}));
    Interchange.Rows.resize(3);
    DependenceGraph Copy = DG;
    std::printf("interchange (t, j, i) legal? %s\n",
                analyzeSchedule(Prog, Copy, Interchange) ? "yes" : "no");
  }
  {
    Schedule Reversal;
    Reversal.StmtRows.push_back(
        IntMatrix({{1, 0, 0, 0}, {0, -1, 0, 0}, {0, 0, 1, 0}}));
    Reversal.Rows.resize(3);
    DependenceGraph Copy = DG;
    std::printf("reversal (t, -i, j) legal?   %s\n\n",
                analyzeSchedule(Prog, Copy, Reversal) ? "yes" : "no");
  }

  // Stage 3: the automatic transformation.
  auto Sched = computeSchedule(Prog, DG);
  if (!Sched) {
    std::fprintf(stderr, "transform error: %s\n", Sched.error().c_str());
    return 1;
  }
  std::printf("automatic transformation (skewed, fully tilable band):\n%s\n",
              Sched->toString(Prog).c_str());

  // Stage 4: lower the same schedule under different configurations and
  // report the code size each one produces - the tile-size/strategy search
  // space an autotuner would explore.
  struct Config {
    const char *Name;
    unsigned TileSize;
    bool Parallel;
    unsigned Degrees;
  };
  const Config Configs[] = {
      {"untiled", 0, false, 0},
      {"tiled 16", 16, false, 0},
      {"tiled 32 + 1-d wavefront", 32, true, 1},
      {"tiled 32 + 2-d wavefront", 32, true, 2},
  };
  for (const Config &C : Configs) {
    PlutoOptions Opts;
    Opts.Tile = C.TileSize > 0;
    Opts.TileSize = C.TileSize ? C.TileSize : 32;
    Opts.Parallelize = C.Parallel;
    // Degrees only matters with Parallelize on; keep the options valid
    // (validate() rejects zero) for the non-parallel configs.
    Opts.WavefrontDegrees = C.Degrees ? C.Degrees : 1;
    Opts.IncludeInputDeps = false;
    DependenceGraph Copy = DG;
    auto R = lowerSchedule(*Parsed, std::move(Copy), *Sched, Opts);
    if (!R) {
      std::fprintf(stderr, "%s: %s\n", C.Name, R.error().c_str());
      continue;
    }
    std::string Code = emitLoopNest(R->program(), *R->Ast);
    unsigned Loops = 0;
    for (size_t P = Code.find("for ("); P != std::string::npos;
         P = Code.find("for (", P + 1))
      ++Loops;
    std::printf("config %-28s -> %2u loops, %5zu bytes of code\n", C.Name,
                Loops, Code.size());
  }
  return 0;
}
