//===- examples/explore_transforms.cpp - Staged API + autotuner tour ------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Uses the Pipeline session API (rather than the one-shot driver) to
// explore the paper's design space on the Gauss-Seidel kernel: inspect the
// dependence polyhedra, compare the automatic schedule with forced
// (illegal and legal) alternatives, then hand the tile/wavefront space to
// the tune::explore autotuner in static mode - enumerate, dedupe, compile,
// extract features, rank - without running a single JIT measurement. This
// is the "empirical search" hook the paper's Section 1 advertises, made
// mechanical.
//
//===----------------------------------------------------------------------===//

#include "driver/Kernels.h"
#include "service/Pipeline.h"
#include "transform/PlutoTransform.h"
#include "tune/Tuner.h"

#include <cstdio>
#include <string>

using namespace pluto;

/// Human label for one point of the search space.
static std::string describe(const PlutoOptions &O) {
  std::string S = O.Tile ? "tiled " + std::to_string(O.TileSize) : "untiled";
  if (O.Tile && O.SecondLevelTile)
    S += " l2x" + std::to_string(O.L2TileSize);
  if (O.Parallelize)
    S += " + " + std::to_string(O.WavefrontDegrees) + "-d wavefront";
  return S;
}

int main() {
  // One compilation session over the kernel: the stage accessors memoize,
  // so the dependence graph below and the schedule after it share one
  // parse.
  auto Session = Pipeline::create();
  if (!Session) {
    std::fprintf(stderr, "options error: %s\n", Session.error().c_str());
    return 1;
  }
  Session->setSource(kernels::Seidel2D);

  // Stage 1: dependence analysis.
  auto Parsed = Session->parsed();
  if (!Parsed) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.error().c_str());
    return 1;
  }
  const Program &Prog = (*Parsed)->Prog;
  auto DG = Session->dependences();
  if (!DG) {
    std::fprintf(stderr, "dependence error: %s\n", DG.error().c_str());
    return 1;
  }
  std::printf("Gauss-Seidel has %zu dependence edges; the in-place stencil "
              "carries dependences at every loop level.\n\n",
              (*DG)->Deps.size());

  // Stage 2: is plain loop interchange legal? Ask the analyzer.
  {
    Schedule Interchange;
    Interchange.StmtRows.push_back(
        IntMatrix({{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}}));
    Interchange.Rows.resize(3);
    DependenceGraph Copy = **DG;
    std::printf("interchange (t, j, i) legal? %s\n",
                analyzeSchedule(Prog, Copy, Interchange) ? "yes" : "no");
  }
  {
    Schedule Reversal;
    Reversal.StmtRows.push_back(
        IntMatrix({{1, 0, 0, 0}, {0, -1, 0, 0}, {0, 0, 1, 0}}));
    Reversal.Rows.resize(3);
    DependenceGraph Copy = **DG;
    std::printf("reversal (t, -i, j) legal?   %s\n\n",
                analyzeSchedule(Prog, Copy, Reversal) ? "yes" : "no");
  }

  // Stage 3: the automatic transformation.
  auto Sched = Session->scheduled();
  if (!Sched) {
    std::fprintf(stderr, "transform error: %s\n", Sched.error().c_str());
    return 1;
  }
  std::printf("automatic transformation (skewed, fully tilable band):\n%s\n",
              (*Sched)->toString(Prog).c_str());

  // Stage 4: the tile-size/strategy search an autotuner explores, run
  // through tune::explore in static mode: every distinct option set is
  // lowered and compiled, its features extracted (loop count comes from
  // the codegen AST, not from scanning the emitted text) and scored; no
  // kernel is ever executed. Aliased points - a wavefront degree under an
  // unparallelized variant - collapse onto one fingerprint.
  tune::SearchSpace Space;
  Space.TileSizes = {0, 16, 32};
  Space.L2TileSizes = {0, 8};
  Space.WavefrontDegrees = {0, 1, 2};
  tune::TuneOptions TO;
  TO.Base.IncludeInputDeps = false;
  TO.RunMeasurements = false;
  // Per-variant resource ceiling: two-level tiling blows up codegen on
  // this skewed stencil, and a bounded search degrades those points to
  // resource-exhausted instead of hanging on them.
  TO.Budget.WallMs = 3000;

  tune::TuneResult TR = tune::explore(kernels::Seidel2D, Space, TO);
  if (TR.Status != StatusCode::Ok) {
    std::fprintf(stderr, "tune error: %s\n", TR.Error.c_str());
    return 1;
  }
  std::printf("search space: %llu enumerated, %llu distinct after "
              "fingerprint dedup\n",
              static_cast<unsigned long long>(TR.Enumerated),
              static_cast<unsigned long long>(TR.Distinct));
  for (const tune::TuneVariant &V : TR.Variants) {
    if (V.DuplicateOf >= 0)
      continue;
    if (V.Status != StatusCode::Ok) {
      // One variant's failure never aborts the search; it is reported
      // and skipped.
      std::printf("v%-2u %-28s -> skipped (%s)\n", V.Id,
                  describe(V.Opts).c_str(), statusCodeName(V.Status));
      continue;
    }
    std::printf("v%-2u %-28s -> %2llu loops, %6llu bytes, score %.2f\n",
                V.Id, describe(V.Opts).c_str(),
                static_cast<unsigned long long>(V.Features.Loops),
                static_cast<unsigned long long>(V.Features.CodeBytes),
                V.Score);
  }
  if (const tune::TuneVariant *W = TR.winner())
    std::printf("\nbest by static score: v%u (%s)\n", W->Id,
                describe(W->Opts).c_str());
  return 0;
}
