//===- examples/quickstart.cpp - 60-second tour of the API ----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Feed an affine C loop nest to the one-shot pipeline and print what every
// stage produced: dependences, the statement-wise affine transformation,
// and the final tiled OpenMP C. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>

using namespace pluto;

int main() {
  const char *Source = R"(
    for (i = 0; i < N; i++) {
      for (j = 0; j < N; j++) {
        for (k = 0; k < N; k++) {
          c[i][j] = c[i][j] + a[i][k] * b[k][j];
        }
      }
    }
  )";

  PlutoOptions Opts;
  Opts.TileSize = 32;
  Opts.IncludeInputDeps = false;

  auto R = optimizeSource(Source, Opts);
  if (!R) {
    std::fprintf(stderr, "pluto error: %s\n", R.error().c_str());
    return 1;
  }

  std::printf("=== input ===\n%s\n", Source);

  DependenceGraph DG = R->DG;
  std::printf("=== dependences (%zu edges, %u legality) ===\n%s\n",
              DG.Deps.size(), DG.numLegalityDeps(),
              DG.toString(R->program()).c_str());

  std::printf("=== statement-wise transformation ===\n%s\n",
              R->Sched.toString(R->program()).c_str());

  EmitOptions EO;
  EO.Extents = {{"a", {"N", "N"}}, {"b", {"N", "N"}}, {"c", {"N", "N"}}};
  std::printf("=== generated tiled OpenMP C ===\n%s\n",
              emitC(R->program(), *R->Ast, EO).c_str());
  return 0;
}
