for (i = 0; i < N; i++) {
  s += a[i] * b[i];
}
