for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    x1[i] = x1[i] + a[i][j] * y1[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    x2[i] = x2[i] + a[j][i] * y2[j];
  }
}
