for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      a[i][j] = (a[i - 1][j - 1] + a[i - 1][j] + a[i - 1][j + 1] + a[i][j - 1] + a[i][j] + a[i][j + 1] + a[i + 1][j - 1] + a[i + 1][j] + a[i + 1][j + 1]) / 9.0;
    }
  }
}
