for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    for (k = 0; k < N; k++) {
      c[i][j] = c[i][j] + a[i][k] * b[k][j];
    }
  }
}
