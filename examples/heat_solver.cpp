//===- examples/heat_solver.cpp - End-to-end JIT example ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// A 1-d explicit heat-equation solver (the paper's imperfectly nested
// Jacobi, Figure 3). Demonstrates the full production path a downstream
// user would take:
//   1. optimize the stencil source (time skewing + tiling + wavefront),
//   2. compile the generated OpenMP C with the system compiler,
//   3. run both versions on real data and compare result + runtime.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "runtime/Jit.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace pluto;

int main() {
  const char *Source = R"(
    for (t = 0; t < T; t++) {
      for (i = 2; i < N - 1; i++) {
        b[i] = 0.333 * (a[i - 1] + a[i] + a[i + 1]);
      }
      for (j = 2; j < N - 1; j++) {
        a[j] = b[j];
      }
    }
  )";

  long long N = 400000, T = 100;

  PlutoOptions Opts;
  Opts.TileSize = 256;
  Opts.IncludeInputDeps = false;
  auto R = optimizeSource(Source, Opts);
  if (!R) {
    std::fprintf(stderr, "pluto error: %s\n", R.error().c_str());
    return 1;
  }
  std::printf("transformation found:\n%s\n",
              R->Sched.toString(R->program()).c_str());

  if (!CompiledKernel::compilerAvailable()) {
    std::printf("no C compiler on this host; stopping after codegen.\n");
    return 0;
  }

  EmitOptions EO;
  EO.Extents = {{"a", {"N"}}, {"b", {"N"}}};
  auto Tiled = CompiledKernel::compile(emitC(R->program(), *R->Ast, EO));
  auto OrigAst = buildOriginalAst(R->program());
  auto Orig =
      CompiledKernel::compile(emitC(R->program(), **OrigAst, EO));
  if (!Tiled || !Orig) {
    std::fprintf(stderr, "compile error: %s\n",
                 (!Tiled ? Tiled.error() : Orig.error()).c_str());
    return 1;
  }

  // A hot spot in the middle of a cold rod.
  auto makeRod = [&] {
    std::vector<double> Rod(static_cast<size_t>(N), 0.0);
    for (long long I = N / 2 - 50; I < N / 2 + 50; ++I)
      Rod[static_cast<size_t>(I)] = 100.0;
    return Rod;
  };

  auto runOnce = [&](const CompiledKernel &K, std::vector<double> &A) {
    std::vector<double> B(static_cast<size_t>(N), 0.0);
    // Arrays in Program order: b first (first written), then a.
    std::vector<double *> Arrays = {B.data(), A.data()};
    auto T0 = std::chrono::steady_clock::now();
    K.call(Arrays, {T, N}, {});
    auto T1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(T1 - T0).count();
  };

  std::vector<double> A1 = makeRod(), A2 = makeRod();
  double TOrig = runOnce(*Orig, A1);
  double TTiled = runOnce(*Tiled, A2);

  double MaxDiff = 0;
  for (size_t I = 0; I < A1.size(); ++I)
    MaxDiff = std::max(MaxDiff, std::fabs(A1[I] - A2[I]));

  std::printf("heat solver, N=%lld, T=%lld time steps\n", N, T);
  std::printf("  original:     %.4f s\n", TOrig);
  std::printf("  pluto tiled:  %.4f s  (%.2fx)\n", TTiled, TOrig / TTiled);
  std::printf("  max |diff|:   %.3g  (%s)\n", MaxDiff,
              MaxDiff < 1e-9 ? "results match" : "MISMATCH");
  return MaxDiff < 1e-9 ? 0 : 1;
}
