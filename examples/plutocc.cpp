//===- examples/plutocc.cpp - Command-line source-to-source tool ----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The polycc-style command-line front: read an affine loop nest from a file
// (or stdin), print the transformed OpenMP C on stdout.
//
//   plutocc [options] [input.c]
//     --tile=N        tile size (default 32; 0 disables tiling)
//     --l2tile=N      second-level tiling factor (default off)
//     --no-parallel   do not extract parallelism / emit pragmas
//     --no-vectorize  skip the intra-tile reordering post-pass
//     --no-rar        ignore read-after-read dependences
//     --show-deps     print the dependence graph to stderr
//     --show-transform print the statement-wise transformation to stderr
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace pluto;

int main(int argc, char **argv) {
  PlutoOptions Opts;
  bool ShowDeps = false, ShowTransform = false;
  std::string InputPath;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--tile=", 0) == 0) {
      long V = std::atol(A.c_str() + 7);
      Opts.Tile = V > 0;
      if (V > 0)
        Opts.TileSize = static_cast<unsigned>(V);
    } else if (A.rfind("--l2tile=", 0) == 0) {
      long V = std::atol(A.c_str() + 9);
      Opts.SecondLevelTile = V > 0;
      if (V > 0)
        Opts.L2TileSize = static_cast<unsigned>(V);
    } else if (A == "--no-parallel") {
      Opts.Parallelize = false;
    } else if (A == "--no-vectorize") {
      Opts.Vectorize = false;
    } else if (A == "--no-rar") {
      Opts.IncludeInputDeps = false;
    } else if (A == "--show-deps") {
      ShowDeps = true;
    } else if (A == "--show-transform") {
      ShowTransform = true;
    } else if (A == "--help" || A == "-h") {
      std::fprintf(stderr,
                   "usage: plutocc [--tile=N] [--l2tile=N] [--no-parallel] "
                   "[--no-vectorize] [--no-rar] [--show-deps] "
                   "[--show-transform] [input.c]\n");
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "plutocc: unknown option '%s'\n", A.c_str());
      return 1;
    } else {
      InputPath = A;
    }
  }

  std::string Source;
  if (InputPath.empty()) {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "plutocc: cannot open '%s'\n", InputPath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  auto R = optimizeSource(Source, Opts);
  if (!R) {
    std::fprintf(stderr, "plutocc: %s\n", R.error().c_str());
    return 1;
  }
  if (ShowDeps)
    std::fprintf(stderr, "%s", R->DG.toString(R->program()).c_str());
  if (ShowTransform)
    std::fprintf(stderr, "%s", R->Sched.toString(R->program()).c_str());

  // Without user-provided extents, emit square parametric extents using the
  // first parameter for every multi-dimensional array (documented default).
  EmitOptions EO;
  std::string DefaultExtent =
      R->program().ParamNames.empty() ? "1024" : R->program().ParamNames[0];
  for (const ArrayInfo &A : R->program().Arrays) {
    std::vector<std::string> Dims(A.Rank, DefaultExtent);
    EO.Extents[A.Name] = Dims;
  }
  EO.SymConsts = R->Parsed.SymConsts;
  std::printf("%s", emitC(R->program(), *R->Ast, EO).c_str());
  return 0;
}
