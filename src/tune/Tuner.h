//===- tune/Tuner.h - Empirical autotuning over the option space -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The empirical autotuner: explore() enumerates PlutoOptions variants over
/// a declarative SearchSpace (tile sizes, second-level tiling, fusion and
/// wavefront degrees), dedupes semantically identical sets through the
/// normalized options fingerprint, compiles the distinct ones through the
/// service layer (shared result cache, resource budgets, per-variant status
/// isolation - one aborting variant never kills the search), ranks them
/// with static features (tune/Features.h) so only a small front is ever
/// run, and JIT-measures that front with the bias-controlled harness of
/// runtime/Jit.h (warmup, median-of-K, pinned thread count) behind a
/// differential-vs-interpreter correctness gate. The paper (Section 6.3)
/// picks tile sizes and unroll factors "based on empirical evidence"; this
/// subsystem is that loop made mechanical.
///
/// The search is observable end to end: every variant's fate lands in a
/// versioned JSON trace (TuneResult::traceJson(), "tune_schema": 1) and in
/// the PassStats counters tune_variants_{enumerated,pruned,measured,errors}.
/// Surfaced as `plutopp --tune[=spec]` and the plutod "tune" op.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TUNE_TUNER_H
#define PLUTOPP_TUNE_TUNER_H

#include "runtime/Jit.h"
#include "service/CompileService.h"
#include "service/ResultCache.h"
#include "tune/Features.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pluto {
namespace tune {

/// The declarative variant space explore() enumerates: the cross product of
/// every axis. Each axis folds into PlutoOptions on top of TuneOptions::Base;
/// an empty axis means "keep the base value" (a single point). The magic
/// value 0 turns an axis' feature off entirely: an untiled variant, no
/// second level, no parallelization. Redundant combinations (an L2 size
/// under an untiled variant, a wavefront degree without parallelism)
/// enumerate but collapse onto one fingerprint and are explored once.
struct SearchSpace {
  /// L1 tile sizes; 0 = untiled.
  std::vector<unsigned> TileSizes = {0, 16, 32, 64};
  /// L2 tile-size multipliers; 0 = single-level tiling only.
  std::vector<unsigned> L2TileSizes = {0, 8};
  /// Wavefront degrees; 0 = no parallelization at all.
  std::vector<unsigned> WavefrontDegrees = {0, 1, 2};
  /// IncludeInputDeps toggles (the paper's locality-driven fusion input:
  /// read-after-read dependences pull statements together).
  std::vector<bool> Fusion = {};
  /// Vectorize toggles.
  std::vector<bool> Vectorize = {};
};

/// Everything that controls one explore() run besides the space itself.
struct TuneOptions {
  /// Base option set every axis folds into; also enumerated verbatim as
  /// variant 0 and always force-included in the measured front, so the
  /// winner can never be slower than the default configuration.
  PlutoOptions Base;
  /// The one problem size measured: every array extent and every integer
  /// parameter takes this value (arrays are allocated as dense n^rank
  /// tensors for both the interpreter reference and the JIT run).
  unsigned ProblemSize = 64;
  /// Measurement discipline (warmup, reps, thread pinning, fake clock).
  MeasureOptions Measure;
  /// At most this many variants are JIT-measured (the prune front). The
  /// base variant rides on top when it would otherwise be cut.
  unsigned MaxMeasure = 6;
  /// False skips JIT measurement entirely (static exploration: enumerate,
  /// compile, extract features, rank). The winner is then the best-scored
  /// variant.
  bool RunMeasurements = true;
  /// Gate each measured variant behind a differential check against the
  /// interpreter running the ORIGINAL program (identity schedule): a
  /// variant whose JIT output diverges is an error, never a winner.
  bool CheckCorrectness = true;
  /// Shared result cache for the compile stage (plutod hands its sharded
  /// cache in; the CLI its configured one). Null = no caching.
  std::shared_ptr<ResultCache> Cache;
  /// Per-variant resource budget (service taxonomy: an exhausted variant
  /// is resource-exhausted, not a search failure). It covers scheduling,
  /// lowering and the compile stage of each variant. Fully unlimited
  /// budgets are replaced by a default 10 s wall ceiling per variant, so
  /// one runaway variant (two-level tiling can blow up codegen on skewed
  /// stencils) degrades instead of hanging the search; set any explicit
  /// limit to override.
  BudgetLimits Budget;
  /// Worker threads for the compile stage (compileRequests Jobs).
  unsigned Jobs = 1;
  /// Pluggable pruning score; null = tune::defaultScore. Higher = measured
  /// earlier.
  std::function<double(const VariantFeatures &)> Score;
};

/// The fate of one enumerated option set.
struct TuneVariant {
  unsigned Id = 0;
  PlutoOptions Opts;
  /// Normalized canonical encoding (PlutoOptions::fingerprint()).
  std::string Fingerprint;
  /// Id of the earlier variant this one is fingerprint-identical to, or -1
  /// when this is the canonical occurrence. Duplicates are accounted but
  /// never separately compiled, scored or measured.
  int DuplicateOf = -1;
  StatusCode Status = StatusCode::Ok;
  std::string Error;
  /// Content-addressed cache key of the compiled unit (ok variants).
  std::string Key;
  VariantFeatures Features;
  double Score = 0.0;
  bool Pruned = false;   ///< ranked below the measured front
  bool Measured = false; ///< JIT-compiled, gated and timed
  Measurement Time;      ///< valid iff Measured
};

/// What explore() hands back: per-variant fates, the winner, and the trace.
struct TuneResult {
  /// Ok when the search ran (individual variants may still have failed);
  /// a non-ok status means the search itself could not start (source
  /// error, bad base options).
  StatusCode Status = StatusCode::Ok;
  std::string Error;
  std::vector<Diagnostic> Diags;
  std::vector<TuneVariant> Variants; ///< in enumeration order
  /// Index into Variants of the winner, or -1 when nothing compiled. With
  /// measurements on, the fastest gated variant; otherwise the best-scored
  /// compiling one.
  int WinnerId = -1;
  /// The winner's emitted C translation unit (service emit policy) and key.
  std::string WinnerC;
  std::string WinnerKey;
  /// Search accounting (also counted into PassStats).
  uint64_t Enumerated = 0; ///< option sets drawn from the space
  uint64_t Distinct = 0;   ///< distinct fingerprints among them
  uint64_t Pruned = 0;     ///< distinct variants cut by the pruner
  uint64_t Measured = 0;   ///< variants JIT-measured
  uint64_t Errors = 0;     ///< variants lost to per-variant failures
  /// Echo of the run configuration, for the trace header.
  unsigned ProblemSize = 0;
  unsigned MeasureWarmup = 0;
  unsigned MeasureReps = 0;
  unsigned MeasureThreads = 0;

  const TuneVariant *winner() const {
    return WinnerId >= 0 ? &Variants[WinnerId] : nullptr;
  }

  /// Machine-readable search trace: a versioned JSON document
  /// ("tune_schema": 1) with the accounting, every variant's options
  /// fingerprint, status, features, score and fate. Deterministic modulo
  /// timing: every timing member's name ends in "_ms" and sits on its own
  /// line, so filtering lines containing "_ms" yields a byte-reproducible
  /// document for one source + spec (and under an injected fake clock the
  /// whole document is reproducible).
  std::string traceJson() const;

  int exitCode() const { return exitCodeFor(Status); }
};

/// Parses a --tune spec string into (SS, TO): semicolon-separated
/// `key=value` entries where axis keys take comma-separated lists -
/// `tile=0,16,32` (L1 tile sizes, 0 = untiled), `l2=0,8`, `wave=0,1,2`
/// (0 = sequential), `fuse=0,1` (input-dep fusion), `vec=0,1` - and scalar
/// keys tune the run: `n=` (problem size), `reps=`, `warmup=`, `threads=`
/// (0 inherits the environment), `max-measure=`, `measure=0|1` (0 = static
/// exploration: rank by score, never JIT-run). Unknown keys and malformed
/// numbers are errors. The empty spec leaves the defaults.
Result<bool> parseSpec(const std::string &Spec, SearchSpace &SS,
                       TuneOptions &TO);

/// Runs the search over Source. Never throws; per-variant failures land in
/// the variant's Status, search-level failures in TuneResult::Status.
/// Instrumented fault site: "tune.compile" (one hit per distinct variant
/// entering the compile stage; an injected failure skips that variant).
TuneResult explore(const std::string &Source, const SearchSpace &SS,
                   const TuneOptions &TO = TuneOptions());

} // namespace tune
} // namespace pluto

#endif // PLUTOPP_TUNE_TUNER_H
