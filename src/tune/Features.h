//===- tune/Features.h - Static variant features for pruning ----*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static (compile-time) features of one lowered variant, extracted without
/// running it: band structure, tile-space depth, per-row loop classes, a
/// stride-class census of the array accesses as seen from the generated
/// loops, and a reuse-distance proxy from the dependence satisfaction rows.
/// The autotuner's pruner ranks enumerated variants by a score over these
/// features so that only a small front of the space is ever JIT-measured.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TUNE_FEATURES_H
#define PLUTOPP_TUNE_FEATURES_H

#include "driver/Driver.h"

#include <cstdint>
#include <string>

namespace pluto {
namespace tune {

/// Static features of one lowered variant. All counts are over the final
/// generated AST / scheduled Scop, so code-generation effects (separation
/// pieces duplicating a statement under different loops) are reflected.
struct VariantFeatures {
  /// Loop nodes in the generated AST (what explore_transforms historically
  /// mis-counted by substring-scanning the emitted C for "for (").
  uint64_t Loops = 0;
  /// Permutable bands of the scheduled program.
  uint64_t Bands = 0;
  /// Tile-space rows added by tiling: scattering rows minus schedule rows
  /// (0 for untiled variants; doubled depth under two-level tiling).
  uint64_t TileDepth = 0;
  /// Per-row loop classes (the driver's report taxonomy): communication-
  /// free parallel rows, pipelined (wavefront) rows sharing a band with a
  /// parallel row, and the sequential rest. Scalar rows are not loops.
  uint64_t ParallelLoops = 0;
  uint64_t PipelineLoops = 0;
  uint64_t SequentialLoops = 0;
  /// Rows the intra-tile reordering marked for vectorization.
  uint64_t VectorLoops = 0;
  /// Stride-class census over (call site, access, fastest-varying array
  /// dimension): the stride of the access in the innermost generated loop
  /// enclosing the call. Unit strides stream through cache lines; zero
  /// strides are invariant (register-reusable); larger strides touch a new
  /// line per iteration; "complex" covers non-affine reconstructed
  /// iterators (floord/min/max args).
  uint64_t StrideZero = 0;
  uint64_t StrideUnit = 0;
  uint64_t StrideStrided = 0;
  uint64_t StrideComplex = 0;
  /// Reuse-distance proxy in [0, 1]: mean over satisfied dependences of
  /// (satisfaction row + 1) / schedule rows. Dependences satisfied at inner
  /// rows mean reuse is carried by inner loops (short reuse distance);
  /// higher is better.
  double ReuseProxy = 0.0;
  /// Bytes of the emitted C unit (a code-explosion signal).
  uint64_t CodeBytes = 0;

  /// Deterministic single-line JSON object ({"loops": ..., ...}).
  std::string toJson() const;
};

/// Counts Loop nodes in a generated AST.
uint64_t countLoops(const CgNode &N);

/// Extracts every feature from a lowered pipeline result. CodeBytes is
/// passed in by the caller (the emitted unit's size), since lowering alone
/// does not render C.
VariantFeatures extractFeatures(const PlutoResult &R, uint64_t CodeBytes);

/// The default pruning score: a locality/parallelism heuristic in the
/// spirit of the paper's cost function (minimize dependence distances at
/// outer levels, prefer communication-free parallelism and unit-stride
/// vectorizable innermost loops). Higher is more promising. Deterministic
/// in the features alone.
double defaultScore(const VariantFeatures &F);

} // namespace tune
} // namespace pluto

#endif // PLUTOPP_TUNE_FEATURES_H
