//===- tune/Tuner.cpp - Empirical autotuning over the option space --------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "tune/Tuner.h"

#include "codegen/CEmitter.h"
#include "observe/PassStats.h"
#include "runtime/Interpreter.h"
#include "service/Batch.h"
#include "service/Pipeline.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>

using namespace pluto;
using namespace pluto::tune;

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

namespace {

bool parseUnsigned(const std::string &S, unsigned &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(S.c_str(), &End, 10);
  if (*End != '\0' || V > 1000000000ul)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t End = S.find(Sep, Pos);
    if (End == std::string::npos)
      End = S.size();
    Out.push_back(S.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  return Out;
}

Result<std::vector<unsigned>> parseList(const std::string &Key,
                                        const std::string &Val) {
  std::vector<unsigned> Out;
  for (const std::string &Tok : splitOn(Val, ',')) {
    unsigned V = 0;
    if (!parseUnsigned(Tok, V))
      return Err("--tune spec: bad value '" + Tok + "' for '" + Key + "'");
    Out.push_back(V);
  }
  return Out;
}

Result<std::vector<bool>> parseBoolList(const std::string &Key,
                                        const std::string &Val) {
  std::vector<bool> Out;
  for (const std::string &Tok : splitOn(Val, ',')) {
    if (Tok != "0" && Tok != "1")
      return Err("--tune spec: '" + Key + "' entries must be 0 or 1, got '" +
                 Tok + "'");
    Out.push_back(Tok == "1");
  }
  return Out;
}

} // namespace

Result<bool> pluto::tune::parseSpec(const std::string &Spec, SearchSpace &SS,
                                    TuneOptions &TO) {
  for (const std::string &Entry : splitOn(Spec, ';')) {
    if (Entry.empty())
      continue;
    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos)
      return Err("--tune spec: entry '" + Entry + "' is not key=value");
    std::string Key = Entry.substr(0, Eq);
    std::string Val = Entry.substr(Eq + 1);
    if (Key == "tile" || Key == "l2" || Key == "wave") {
      auto L = parseList(Key, Val);
      if (!L)
        return Err(L.error());
      if (Key == "tile")
        SS.TileSizes = L.takeValue();
      else if (Key == "l2")
        SS.L2TileSizes = L.takeValue();
      else
        SS.WavefrontDegrees = L.takeValue();
    } else if (Key == "fuse" || Key == "vec") {
      auto L = parseBoolList(Key, Val);
      if (!L)
        return Err(L.error());
      if (Key == "fuse")
        SS.Fusion = L.takeValue();
      else
        SS.Vectorize = L.takeValue();
    } else if (Key == "measure") {
      if (Val != "0" && Val != "1")
        return Err("--tune spec: measure must be 0 or 1, got '" + Val + "'");
      TO.RunMeasurements = Val == "1";
    } else if (Key == "n" || Key == "reps" || Key == "warmup" ||
               Key == "threads" || Key == "max-measure") {
      unsigned V = 0;
      if (!parseUnsigned(Val, V))
        return Err("--tune spec: bad value '" + Val + "' for '" + Key + "'");
      if (Key == "n") {
        if (V == 0)
          return Err("--tune spec: n must be >= 1");
        TO.ProblemSize = V;
      } else if (Key == "reps") {
        if (V == 0)
          return Err("--tune spec: reps must be >= 1");
        TO.Measure.Reps = V;
      } else if (Key == "warmup") {
        TO.Measure.Warmup = V;
      } else if (Key == "threads") {
        TO.Measure.Threads = V;
      } else {
        if (V == 0)
          return Err("--tune spec: max-measure must be >= 1");
        TO.MaxMeasure = V;
      }
    } else {
      return Err("--tune spec: unknown key '" + Key + "'");
    }
  }
  if (SS.TileSizes.empty() || SS.L2TileSizes.empty() ||
      SS.WavefrontDegrees.empty())
    return Err("--tune spec: axes must not be empty lists");
  return true;
}

//===----------------------------------------------------------------------===//
// explore()
//===----------------------------------------------------------------------===//

namespace {

/// Folds one point of the space into the base option set. Redundant
/// combinations (L2 under untiled, wavefront without parallelism) are left
/// to fingerprint normalization, which collapses them onto one variant.
PlutoOptions foldPoint(const PlutoOptions &Base, bool Fuse, bool Vec,
                       unsigned Tile, unsigned L2, unsigned Wave) {
  PlutoOptions O = Base;
  O.IncludeInputDeps = Fuse;
  O.Vectorize = Vec;
  O.Tile = Tile != 0;
  if (Tile)
    O.TileSize = Tile;
  O.SecondLevelTile = L2 != 0;
  if (L2)
    O.L2TileSize = L2;
  O.Parallelize = Wave != 0;
  if (Wave)
    O.WavefrontDegrees = Wave;
  return O;
}

/// Key of the schedule-stage option subset: variants sharing it share one
/// parse + dependence + schedule computation.
std::string scheduleGroupKey(const PlutoOptions &O) {
  return std::string(O.IncludeInputDeps ? "i1;" : "i0;") +
         (O.FastSchedule ? "f1;" : "f0;") + "p" + std::to_string(O.ParamMin);
}

/// Wall ceiling applied per variant when the caller sets no budget at all:
/// a search must degrade a runaway variant (two-level tiling can blow up
/// codegen on skewed stencils) to resource-exhausted, never hang on it.
constexpr uint64_t DefaultVariantWallMs = 10000;

/// Runs Body under a fresh Budget built from Limits (no-op when Limits is
/// unlimited), reporting whether the budget tripped - including the hard
/// form, bad_alloc. Mirrors the stage-boundary detection compileRequest
/// does, which lowerSchedule (a hook, not a stage accessor) lacks.
template <typename Fn>
bool runBudgeted(const BudgetLimits &Limits, const Fn &Body) {
  std::optional<Budget> B;
  std::optional<ScopedBudget> Install;
  if (!Limits.unlimited()) {
    B.emplace(Limits);
    Install.emplace(&*B);
  }
  try {
    Body();
  } catch (const std::bad_alloc &) {
    return true;
  }
  if (!B)
    return false;
  B->checkWall();
  return B->exhausted();
}

/// Relative mismatch check mirroring the bench harness tolerance.
bool nearlyEqual(double A, double B) {
  double Diff = std::fabs(A - B);
  double Mag = std::max(std::fabs(A), std::fabs(B));
  return Diff <= 1e-6 * std::max(Mag, 1.0);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

TuneResult pluto::tune::explore(const std::string &Source,
                                const SearchSpace &SS, const TuneOptions &TO) {
  TuneResult R;
  R.ProblemSize = TO.ProblemSize;
  R.MeasureWarmup = TO.Measure.Warmup;
  R.MeasureReps = TO.Measure.Reps;
  R.MeasureThreads = TO.Measure.Threads;

  if (auto V = TO.Base.validate(); !V) {
    R.Status = StatusCode::BadRequest;
    R.Error = "invalid base options: " + V.error();
    return R;
  }
  if (TO.ProblemSize == 0) {
    R.Status = StatusCode::BadRequest;
    R.Error = "problem size must be >= 1";
    return R;
  }

  //===--------------------------------------------------------------------===//
  // Enumerate the space (base first, then the cross product) and dedupe by
  // normalized fingerprint: aliased points are accounted but explored once.
  //===--------------------------------------------------------------------===//
  auto Axis = [](const std::vector<unsigned> &A, unsigned BaseVal) {
    return A.empty() ? std::vector<unsigned>{BaseVal} : A;
  };
  std::vector<unsigned> Tiles =
      Axis(SS.TileSizes, TO.Base.Tile ? TO.Base.TileSize : 0);
  std::vector<unsigned> L2s =
      Axis(SS.L2TileSizes, TO.Base.SecondLevelTile ? TO.Base.L2TileSize : 0);
  std::vector<unsigned> Waves = Axis(
      SS.WavefrontDegrees, TO.Base.Parallelize ? TO.Base.WavefrontDegrees : 0);
  std::vector<bool> Fuses = SS.Fusion.empty()
                                ? std::vector<bool>{TO.Base.IncludeInputDeps}
                                : SS.Fusion;
  std::vector<bool> Vecs = SS.Vectorize.empty()
                               ? std::vector<bool>{TO.Base.Vectorize}
                               : SS.Vectorize;

  std::vector<PlutoOptions> Points;
  Points.push_back(TO.Base);
  for (bool Fuse : Fuses)
    for (bool Vec : Vecs)
      for (unsigned Tile : Tiles)
        for (unsigned L2 : L2s)
          for (unsigned Wave : Waves)
            Points.push_back(foldPoint(TO.Base, Fuse, Vec, Tile, L2, Wave));

  R.Enumerated = Points.size();
  count(Counter::TuneVariantsEnumerated, R.Enumerated);

  std::map<std::string, unsigned> CanonicalByFp;
  for (unsigned I = 0; I < Points.size(); ++I) {
    TuneVariant V;
    V.Id = I;
    V.Opts = Points[I];
    V.Fingerprint = Points[I].fingerprint();
    if (auto Ok = Points[I].validate(); !Ok) {
      V.Status = StatusCode::BadRequest;
      V.Error = Ok.error();
      ++R.Errors;
    } else {
      auto It = CanonicalByFp.find(V.Fingerprint);
      if (It != CanonicalByFp.end()) {
        V.DuplicateOf = static_cast<int>(It->second);
      } else {
        CanonicalByFp.emplace(V.Fingerprint, I);
        ++R.Distinct;
      }
    }
    R.Variants.push_back(std::move(V));
  }

  // Per-variant resource ceiling: the caller's budget when one is set,
  // else a default wall ceiling - explore() must never hang on one
  // runaway variant.
  BudgetLimits VariantLimits = TO.Budget;
  if (VariantLimits.unlimited())
    VariantLimits.WallMs = DefaultVariantWallMs;

  //===--------------------------------------------------------------------===//
  // Shared frontend work: one parse + dependences + schedule per distinct
  // schedule-stage option subset; variants then re-lower those artifacts
  // under their own emit configuration (the Pipeline session seam).
  //===--------------------------------------------------------------------===//
  struct Group {
    std::unique_ptr<Pipeline> Pipe;
    StatusCode Status = StatusCode::Ok;
    std::string Error;
  };
  std::map<std::string, Group> Groups;
  for (TuneVariant &V : R.Variants) {
    if (V.Status != StatusCode::Ok || V.DuplicateOf >= 0)
      continue;
    std::string GK = scheduleGroupKey(V.Opts);
    auto It = Groups.find(GK);
    if (It == Groups.end()) {
      Group G;
      auto P = Pipeline::create(V.Opts);
      if (!P) {
        G.Status = StatusCode::BadRequest;
        G.Error = P.error();
      } else {
        G.Pipe = std::make_unique<Pipeline>(P.takeValue());
        G.Pipe->setSource(Source);
        bool SourceFailed = false;
        bool Exhausted = runBudgeted(VariantLimits, [&] {
          if (auto PR = G.Pipe->parsed(); !PR) {
            SourceFailed = true;
            G.Error = PR.error();
            return;
          }
          if (auto DR = G.Pipe->dependences(); !DR) {
            G.Status = StatusCode::Internal;
            G.Error = DR.error();
          } else if (auto SR = G.Pipe->scheduled(); !SR) {
            G.Status = StatusCode::ScheduleAbort;
            G.Error = SR.error();
          }
        });
        if (Exhausted) {
          G.Status = StatusCode::ResourceExhausted;
          G.Error = "resource budget exhausted during scheduling";
        } else if (SourceFailed) {
          // The parse does not depend on options: a source error in one
          // group is a source error for the whole search.
          R.Status = StatusCode::SourceError;
          R.Error = G.Error;
          R.Diags = G.Pipe->diagnostics();
          return R;
        }
      }
      It = Groups.emplace(GK, std::move(G)).first;
    }
    if (It->second.Status != StatusCode::Ok) {
      V.Status = It->second.Status;
      V.Error = It->second.Error;
      ++R.Errors;
    }
  }

  //===--------------------------------------------------------------------===//
  // Per-variant lowering + feature extraction, then the compile stage
  // through the service layer (shared cache, budgets, status isolation).
  // Fault site "tune.compile": one hit per distinct variant entering this
  // stage; an injected failure skips the variant, never the search.
  //===--------------------------------------------------------------------===//
  std::map<unsigned, PlutoResult> LoweredById;
  std::vector<unsigned> CompileIds;
  for (TuneVariant &V : R.Variants) {
    if (V.Status != StatusCode::Ok || V.DuplicateOf >= 0)
      continue;
    if (FaultInjector::shouldFail("tune.compile")) {
      V.Status = StatusCode::ScheduleAbort;
      V.Error = "injected fault: tune.compile";
      ++R.Errors;
      continue;
    }
    Group &G = Groups.at(scheduleGroupKey(V.Opts));
    auto VP = Pipeline::create(V.Opts);
    if (!VP) {
      V.Status = StatusCode::BadRequest;
      V.Error = VP.error();
      ++R.Errors;
      continue;
    }
    std::optional<Result<PlutoResult>> LR;
    bool Exhausted = runBudgeted(VariantLimits, [&] {
      LR = VP->lowerSchedule(**G.Pipe->parsed(), **G.Pipe->dependences(),
                             **G.Pipe->scheduled());
    });
    if (Exhausted) {
      V.Status = StatusCode::ResourceExhausted;
      V.Error = "resource budget exhausted during lowering";
      ++R.Errors;
      continue;
    }
    if (!*LR) {
      V.Status = StatusCode::Internal;
      V.Error = LR->error();
      ++R.Errors;
      continue;
    }
    LoweredById.emplace(V.Id, LR->takeValue());
    CompileIds.push_back(V.Id);
  }

  std::vector<CompileRequest> Reqs;
  Reqs.reserve(CompileIds.size());
  for (unsigned Id : CompileIds) {
    CompileRequest Req;
    Req.Name = "v" + std::to_string(Id);
    Req.Source = Source;
    Req.Opts = R.Variants[Id].Opts;
    Req.Budget = VariantLimits;
    Reqs.push_back(std::move(Req));
  }
  BatchOptions BO;
  BO.Jobs = TO.Jobs ? TO.Jobs : 1;
  BO.Cache = TO.Cache;
  std::vector<CompileResponse> Resps = compileRequests(Reqs, BO);

  std::map<unsigned, std::string> EmittedById;
  std::function<double(const VariantFeatures &)> Score =
      TO.Score ? TO.Score : &defaultScore;
  for (size_t I = 0; I < CompileIds.size(); ++I) {
    TuneVariant &V = R.Variants[CompileIds[I]];
    const CompileResponse &Resp = Resps[I];
    V.Key = Resp.Key;
    if (!Resp.ok()) {
      V.Status = Resp.Status;
      V.Error = Resp.Error;
      ++R.Errors;
      continue;
    }
    V.Features = extractFeatures(LoweredById.at(V.Id),
                                 static_cast<uint64_t>(Resp.EmittedC.size()));
    V.Score = Score(V.Features);
    EmittedById.emplace(V.Id, Resp.EmittedC);
  }

  //===--------------------------------------------------------------------===//
  // Prune: rank the survivors by score and keep the front; the base
  // variant's canonical representative always rides along so the winner is
  // never worse than the default configuration.
  //===--------------------------------------------------------------------===//
  std::vector<unsigned> Ranked;
  for (const TuneVariant &V : R.Variants)
    if (V.Status == StatusCode::Ok && V.DuplicateOf < 0 &&
        EmittedById.count(V.Id))
      Ranked.push_back(V.Id);
  std::stable_sort(Ranked.begin(), Ranked.end(), [&](unsigned A, unsigned B) {
    if (R.Variants[A].Score != R.Variants[B].Score)
      return R.Variants[A].Score > R.Variants[B].Score;
    return A < B;
  });

  // The base (variant 0) is its own canonical occurrence by construction.
  bool BaseRunnable = !R.Variants.empty() &&
                      R.Variants[0].Status == StatusCode::Ok &&
                      EmittedById.count(0) != 0;
  std::vector<unsigned> Front(
      Ranked.begin(),
      Ranked.begin() + std::min<size_t>(TO.MaxMeasure, Ranked.size()));
  if (BaseRunnable &&
      std::find(Front.begin(), Front.end(), 0u) == Front.end())
    Front.push_back(0);
  for (unsigned Id : Ranked) {
    if (std::find(Front.begin(), Front.end(), Id) == Front.end()) {
      R.Variants[Id].Pruned = true;
      ++R.Pruned;
      count(Counter::TuneVariantsPruned);
    }
  }
  std::sort(Front.begin(), Front.end());

  //===--------------------------------------------------------------------===//
  // Measure the front: interpreter reference once, then per variant a JIT
  // compile, a differential gate and a bias-controlled timing run.
  //===--------------------------------------------------------------------===//
  bool Measuring = TO.RunMeasurements && !Front.empty() &&
                   CompiledKernel::compilerAvailable();
  if (Measuring) {
    // All frontend groups parse the same program; take the first live one.
    const ParsedProgram *Parsed0 = nullptr;
    const Pipeline *Pipe0 = nullptr;
    for (auto &KV : Groups)
      if (KV.second.Pipe && KV.second.Status == StatusCode::Ok) {
        Parsed0 = *KV.second.Pipe->parsed();
        Pipe0 = KV.second.Pipe.get();
        break;
      }
    if (Parsed0) {
      const Program &Prog = Parsed0->Prog;
      long long N = static_cast<long long>(TO.ProblemSize);

      // Initial data: one deterministic pattern per array, shared by the
      // interpreter reference and every JIT run.
      std::map<std::string, std::vector<long long>> Extents;
      for (const ArrayInfo &A : Prog.Arrays)
        Extents[A.Name] = std::vector<long long>(A.Rank, N);
      std::map<std::string, Tensor> Initial;
      {
        unsigned Seed = 1;
        for (const ArrayInfo &A : Prog.Arrays) {
          Tensor T = Tensor::zeros(Extents[A.Name]);
          T.fillPattern(Seed++);
          Initial.emplace(A.Name, std::move(T));
        }
      }

      // Reference: the original program (identity schedule) interpreted
      // over the initial data.
      bool GateAvailable = false;
      Interpreter Ref;
      if (TO.CheckCorrectness) {
        Ref.Arrays = Initial;
        for (const std::string &P : Prog.ParamNames)
          Ref.Params[P] = N;
        for (const std::string &C : Parsed0->SymConsts)
          Ref.SymConsts[C] = 1.5;
        if (auto OA = Pipe0->originalAst(Prog)) {
          if (auto Run = Ref.run(Prog, **OA); Run && *Run)
            GateAvailable = true;
        }
      }

      for (unsigned Id : Front) {
        TuneVariant &V = R.Variants[Id];
        const PlutoResult &PR = LoweredById.at(Id);

        EmitOptions EO;
        EO.FunctionName = "kernel";
        EO.SymConsts = Parsed0->SymConsts;
        for (const ArrayInfo &A : Prog.Arrays)
          if (A.Rank >= 1)
            EO.Extents[A.Name] = std::vector<std::string>(
                A.Rank, std::to_string(TO.ProblemSize));
        std::string MeasurableC = emitC(PR.program(), *PR.Ast, EO);

        auto K = CompiledKernel::compile(MeasurableC);
        if (!K) {
          V.Status = StatusCode::Internal;
          V.Error = "jit: " + K.error();
          ++R.Errors;
          continue;
        }

        // Flat buffers in Program::Arrays order, reset to the shared
        // initial pattern before every (warmup or timed) execution.
        std::vector<std::vector<double>> Bufs;
        std::vector<double *> Ptrs;
        for (const ArrayInfo &A : Prog.Arrays)
          Bufs.push_back(Initial.at(A.Name).Data);
        for (auto &B : Bufs)
          Ptrs.push_back(B.data());
        std::vector<long long> Params(Prog.ParamNames.size(), N);
        std::vector<double> Consts(Parsed0->SymConsts.size(), 1.5);
        auto Reset = [&] {
          for (size_t A = 0; A < Bufs.size(); ++A)
            Bufs[A] = Initial.at(Prog.Arrays[A].Name).Data;
        };

        if (GateAvailable) {
          Reset();
          K->call(Ptrs, Params, Consts);
          std::string Mismatch;
          for (size_t A = 0; A < Bufs.size() && Mismatch.empty(); ++A) {
            const std::vector<double> &Want =
                Ref.Arrays.at(Prog.Arrays[A].Name).Data;
            for (size_t E = 0; E < Want.size(); ++E)
              if (!nearlyEqual(Bufs[A][E], Want[E])) {
                Mismatch = "differential check failed: array '" +
                           Prog.Arrays[A].Name + "' element " +
                           std::to_string(E);
                break;
              }
          }
          if (!Mismatch.empty()) {
            V.Status = StatusCode::Internal;
            V.Error = Mismatch;
            ++R.Errors;
            continue;
          }
        }

        V.Time = measureKernel(*K, Ptrs, Params, Consts, Reset, TO.Measure);
        V.Measured = true;
        ++R.Measured;
        count(Counter::TuneVariantsMeasured);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Pick the winner: fastest measured variant; static best-score fallback
  // when nothing was measured (no compiler, measurements off).
  //===--------------------------------------------------------------------===//
  int Winner = -1;
  for (const TuneVariant &V : R.Variants) {
    if (!V.Measured)
      continue;
    if (Winner < 0 ||
        V.Time.MedianSeconds < R.Variants[Winner].Time.MedianSeconds)
      Winner = static_cast<int>(V.Id);
  }
  if (Winner < 0 && !Ranked.empty()) {
    for (unsigned Id : Ranked)
      if (R.Variants[Id].Status == StatusCode::Ok) {
        Winner = static_cast<int>(Id);
        break;
      }
  }
  R.WinnerId = Winner;
  if (Winner >= 0) {
    R.WinnerKey = R.Variants[Winner].Key;
    auto It = EmittedById.find(static_cast<unsigned>(Winner));
    if (It != EmittedById.end())
      R.WinnerC = It->second;
  } else if (R.Status == StatusCode::Ok) {
    // Nothing compiled at all: surface the first variant failure as the
    // search failure so callers get a meaningful exit code.
    R.Status = StatusCode::Internal;
    R.Error = "no variant compiled";
    for (const TuneVariant &V : R.Variants)
      if (V.Status != StatusCode::Ok && !V.Error.empty()) {
        R.Status = V.Status;
        R.Error = V.Error;
        break;
      }
  }

  if (R.Errors)
    count(Counter::TuneVariantsErrors, R.Errors);
  return R;
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

std::string TuneResult::traceJson() const {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"tune_schema\": 1,\n";
  OS << "  \"status\": \"" << statusCodeName(Status) << "\",\n";
  OS << "  \"problem_size\": " << ProblemSize << ",\n";
  OS << "  \"warmup\": " << MeasureWarmup << ",\n";
  OS << "  \"reps\": " << MeasureReps << ",\n";
  OS << "  \"threads\": " << MeasureThreads << ",\n";
  OS << "  \"enumerated\": " << Enumerated << ",\n";
  OS << "  \"distinct\": " << Distinct << ",\n";
  OS << "  \"pruned\": " << Pruned << ",\n";
  OS << "  \"measured\": " << Measured << ",\n";
  OS << "  \"errors\": " << Errors << ",\n";
  OS << "  \"winner\": " << WinnerId << ",\n";
  if (!Error.empty())
    OS << "  \"error\": \"" << jsonEscape(Error) << "\",\n";
  OS << "  \"variants\": [";
  for (size_t I = 0; I < Variants.size(); ++I) {
    const TuneVariant &V = Variants[I];
    OS << (I ? ",\n" : "\n");
    OS << "    {\n";
    OS << "      \"id\": " << V.Id << ",\n";
    OS << "      \"options\": \"" << jsonEscape(V.Fingerprint) << "\",\n";
    OS << "      \"duplicate_of\": " << V.DuplicateOf << ",\n";
    OS << "      \"status\": \"" << statusCodeName(V.Status) << "\",\n";
    if (!V.Error.empty())
      OS << "      \"error\": \"" << jsonEscape(V.Error) << "\",\n";
    if (!V.Key.empty())
      OS << "      \"key\": \"" << jsonEscape(V.Key) << "\",\n";
    if (V.DuplicateOf < 0 && V.Status == StatusCode::Ok) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.4f", V.Score);
      OS << "      \"score\": " << Buf << ",\n";
      OS << "      \"features\": " << V.Features.toJson() << ",\n";
    }
    if (V.Measured) {
      // Timing members: "_ms"-suffixed names, one per line, so stripping
      // lines containing "_ms" yields the reproducible document.
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.6f", V.Time.MedianSeconds * 1e3);
      OS << "      \"median_ms\": " << Buf << ",\n";
      OS << "      \"reps_ms\": [";
      for (size_t E = 0; E < V.Time.RepSeconds.size(); ++E) {
        std::snprintf(Buf, sizeof(Buf), "%.6f", V.Time.RepSeconds[E] * 1e3);
        OS << (E ? ", " : "") << Buf;
      }
      OS << "],\n";
    }
    OS << "      \"pruned\": " << (V.Pruned ? "true" : "false") << ",\n";
    OS << "      \"measured\": " << (V.Measured ? "true" : "false") << "\n";
    OS << "    }";
  }
  OS << "\n  ]\n}";
  return OS.str();
}
