//===- tune/Features.cpp - Static variant features for pruning ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "tune/Features.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

using namespace pluto;
using namespace pluto::tune;

uint64_t pluto::tune::countLoops(const CgNode &N) {
  uint64_t Count = N.K == CgNode::Kind::Loop ? 1 : 0;
  for (const CgNodePtr &C : N.Children)
    Count += countLoops(*C);
  return Count;
}

namespace {

/// Per-scope differentiation context for the stride walk: for every Let
/// variable in scope, its rate of change per step of the innermost
/// enclosing loop (the codegen reconstructs original iterators with Let
/// chains like `i = c2 - t; j = c3 - 2*t - i;`, so plain coefficient
/// lookup on the Call arguments would see only constants).
struct StrideCtx {
  std::map<std::string, BigInt> Coeff;
  std::set<std::string> Complex; ///< Lets bound to non-affine values
};

/// d(E)/d(Var) for an affine E, chaining through in-scope Let bindings;
/// sets Complex for non-affine expressions (floord/ceild/min/max) or
/// references to non-affine Lets. Loop variables other than Var and the
/// program parameters differentiate to zero (constant per innermost step).
BigInt coeffOf(const CgExpr &E, const std::string &Var, const StrideCtx &Ctx,
               bool &Complex) {
  if (E.K != CgExpr::Kind::Affine) {
    Complex = true;
    return BigInt(0);
  }
  BigInt C(0);
  for (const auto &T : E.Terms) {
    if (T.first == Var) {
      C += T.second;
    } else {
      auto It = Ctx.Coeff.find(T.first);
      if (It != Ctx.Coeff.end())
        C += T.second * It->second;
      if (Ctx.Complex.count(T.first))
        Complex = true;
    }
  }
  return C;
}

/// Walks the AST accumulating the stride-class census: at each Call, the
/// stride of every access's fastest-varying dimension with respect to the
/// innermost enclosing generated loop.
void censusStrides(const CgNode &N, const Program &Prog,
                   const std::string &Var, const StrideCtx &Ctx,
                   VariantFeatures &F) {
  if (N.K == CgNode::Kind::Loop) {
    // New innermost variable; everything bound outside is constant per
    // step of this loop, so the context starts fresh (lookup miss = 0).
    StrideCtx Fresh;
    for (const CgNodePtr &C : N.Children)
      censusStrides(*C, Prog, N.Var, Fresh, F);
    return;
  }
  if (N.K == CgNode::Kind::Let) {
    StrideCtx Ext = Ctx;
    bool Cx = false;
    BigInt C = coeffOf(N.Value, Var, Ctx, Cx);
    if (Cx)
      Ext.Complex.insert(N.Var);
    else
      Ext.Coeff[N.Var] = C;
    for (const CgNodePtr &Ch : N.Children)
      censusStrides(*Ch, Prog, Var, Ext, F);
    return;
  }
  if (N.K == CgNode::Kind::Call) {
    if (N.StmtId >= Prog.Stmts.size())
      return;
    const Statement &S = Prog.Stmts[N.StmtId];
    for (const Access &A : S.Accesses) {
      if (A.Map.numRows() == 0)
        continue; // scalar reference: no strided dimension
      // Stride of the fastest-varying (last) array dimension in the
      // innermost loop: the access row is over the ORIGINAL iterators, and
      // Args[j] reconstructs original iterator j from the generated loop
      // variables - compose and read off the rate of change per Var step.
      bool Complex = false;
      BigInt Stride(0);
      unsigned Last = A.Map.numRows() - 1;
      for (unsigned J = 0; J < S.numIters() && J < N.Args.size(); ++J) {
        BigInt C = A.Map(Last, J);
        if (C.isZero())
          continue;
        Stride += C * coeffOf(N.Args[J], Var, Ctx, Complex);
      }
      if (Complex)
        ++F.StrideComplex;
      else if (Var.empty() || Stride.isZero())
        ++F.StrideZero;
      else if (Stride == BigInt(1) || Stride == BigInt(-1))
        ++F.StrideUnit;
      else
        ++F.StrideStrided;
    }
    return;
  }
  for (const CgNodePtr &C : N.Children)
    censusStrides(*C, Prog, Var, Ctx, F);
}

} // namespace

VariantFeatures pluto::tune::extractFeatures(const PlutoResult &R,
                                             uint64_t CodeBytes) {
  VariantFeatures F;
  F.CodeBytes = CodeBytes;
  if (R.Ast)
    F.Loops = countLoops(*R.Ast);

  const Scop &Sc = R.Sc;
  std::vector<Schedule::Band> Bands = Sc.bands();
  F.Bands = Bands.size();
  unsigned SchedRows = R.Sched.numRows();
  F.TileDepth = Sc.numRows() > SchedRows ? Sc.numRows() - SchedRows : 0;

  // Per-row loop classes, mirroring the driver's report classification: a
  // sequential row sharing a band with a parallel row is the pipelined
  // (wavefront) direction.
  std::vector<bool> InParallelBand(Sc.numRows(), false);
  for (const Schedule::Band &B : Bands) {
    bool AnyParallel = false;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      AnyParallel |= Sc.Rows[Row].IsParallel;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      InParallelBand[Row] = AnyParallel;
  }
  for (unsigned Row = 0; Row < Sc.numRows(); ++Row) {
    if (Sc.Rows[Row].IsScalar)
      continue;
    if (Sc.Rows[Row].IsVector)
      ++F.VectorLoops;
    if (Sc.Rows[Row].IsParallel)
      ++F.ParallelLoops;
    else if (InParallelBand[Row])
      ++F.PipelineLoops;
    else
      ++F.SequentialLoops;
  }

  if (R.Ast)
    censusStrides(*R.Ast, R.program(), std::string(), StrideCtx(), F);

  // Reuse proxy: where in the transformed space dependences are satisfied.
  // A dependence satisfied at row r has its source and sink separated only
  // by loops at depth >= r, so deeper satisfaction = shorter reuse
  // distance. Average the normalized depth over all satisfied edges.
  uint64_t Satisfied = 0;
  double DepthSum = 0.0;
  for (const Dependence &D : R.DG.Deps) {
    if (D.SatisfiedAtRow < 0 || SchedRows == 0)
      continue;
    ++Satisfied;
    DepthSum += static_cast<double>(D.SatisfiedAtRow + 1) / SchedRows;
  }
  F.ReuseProxy = Satisfied ? DepthSum / Satisfied : 0.0;
  return F;
}

std::string VariantFeatures::toJson() const {
  std::ostringstream OS;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", ReuseProxy);
  OS << "{\"loops\": " << Loops << ", \"bands\": " << Bands
     << ", \"tile_depth\": " << TileDepth
     << ", \"parallel_loops\": " << ParallelLoops
     << ", \"pipeline_loops\": " << PipelineLoops
     << ", \"sequential_loops\": " << SequentialLoops
     << ", \"vector_loops\": " << VectorLoops
     << ", \"stride_zero\": " << StrideZero
     << ", \"stride_unit\": " << StrideUnit
     << ", \"stride_strided\": " << StrideStrided
     << ", \"stride_complex\": " << StrideComplex
     << ", \"reuse_proxy\": " << Buf << ", \"code_bytes\": " << CodeBytes
     << "}";
  return OS.str();
}

double pluto::tune::defaultScore(const VariantFeatures &F) {
  double S = 0.0;
  // Locality first (the paper's objective): dependences satisfied deep in
  // the transformed space mean reuse carried by inner loops.
  S += 3.0 * F.ReuseProxy;
  // Coarse-grained parallelism is a step function: one communication-free
  // outer loop saturates the cores; more adds nothing by itself.
  if (F.ParallelLoops > 0)
    S += 2.0;
  else if (F.PipelineLoops > 0)
    S += 1.0; // wavefront parallelism: usable but pays sync per front
  // Tiling at all (tile-space rows present) promises cache reuse.
  if (F.TileDepth > 0)
    S += 1.0;
  // Unit-stride fraction of the access census: streaming + vectorizable.
  uint64_t Accesses =
      F.StrideZero + F.StrideUnit + F.StrideStrided + F.StrideComplex;
  if (Accesses > 0)
    S += 1.5 * (static_cast<double>(F.StrideZero + F.StrideUnit) / Accesses);
  if (F.VectorLoops > 0)
    S += 0.5;
  // Penalize code explosion (separation blow-up): every 64 KiB of emitted
  // C beyond the first costs a little.
  if (F.CodeBytes > 65536)
    S -= 0.25 * (static_cast<double>(F.CodeBytes - 65536) / 65536.0);
  return S;
}
