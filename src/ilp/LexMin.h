//===- ilp/LexMin.h - Integer lexicographic minimization --------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer lexicographic minimization, the solver behind the paper's
/// objective (5): minimize_lex {u_1, ..., u_k, w, ..., c_i's, ...}.
///
/// This is the non-parametric core of PIP (Feautrier, "Parametric integer
/// programming", 1988), which the original Pluto uses through PipLib: a
/// lexicographic dual simplex over exact rationals, made integral with
/// Gomory's method-of-integer-forms cuts. All problem variables are
/// constrained to be non-negative, matching the paper's practical choice of
/// non-negative transformation coefficients (Section 4.2); a helper maps
/// free-sign systems (dependence polyhedra) onto this form by variable
/// doubling, which gives the exact integer emptiness test the dependence
/// analyzer needs.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_ILP_LEXMIN_H
#define PLUTOPP_ILP_LEXMIN_H

#include "support/Matrix.h"

#include <memory>
#include <vector>

namespace pluto {
namespace ilp {

/// Outcome of a lexmin query.
enum class SolveStatus {
  Feasible,   ///< Point holds the integer lexicographic minimum.
  Infeasible, ///< No integer point satisfies the constraints.
  Aborted,    ///< Cut/iteration budget exhausted (should not happen on the
              ///< structured systems this code base produces).
};

/// Pivot/cut budgets for one lexmin query. The defaults are generous caps
/// that only guard against pathological cycling; tests shrink them to force
/// SolveStatus::Aborted deterministically.
struct SolveLimits {
  unsigned MaxPivots = 200000;
  unsigned MaxCuts = 2000;
};

/// The process-wide budgets consulted by every solve. Reads are relaxed
/// atomic loads, so dependence analysis may solve from OpenMP workers while
/// the limits stay fixed; writers must not race with in-flight solves.
SolveLimits solveLimits();
void setSolveLimits(const SolveLimits &L);

/// RAII override of the global solve limits (tests forcing tiny budgets).
class ScopedSolveLimits {
public:
  explicit ScopedSolveLimits(const SolveLimits &L) : Old(solveLimits()) {
    setSolveLimits(L);
  }
  ~ScopedSolveLimits() { setSolveLimits(Old); }
  ScopedSolveLimits(const ScopedSolveLimits &) = delete;
  ScopedSolveLimits &operator=(const ScopedSolveLimits &) = delete;

private:
  SolveLimits Old;
};

struct LexMinResult {
  SolveStatus Status = SolveStatus::Infeasible;
  /// Integer lexmin of the variable vector; size NumVars when Feasible.
  std::vector<BigInt> Point;

  bool feasible() const { return Status == SolveStatus::Feasible; }
};

/// Computes the integer lexicographic minimum of x = (x_0, ..., x_{n-1}),
/// all x_i >= 0, subject to Ineqs * (x, 1) >= 0 and Eqs * (x, 1) == 0.
/// Both matrices have NumVars + 1 columns (coefficients then the constant
/// term); either may be empty (zero rows).
LexMinResult lexMinNonNeg(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                          unsigned NumVars);

/// Tri-state integer feasibility verdict: Unknown means the solve budget
/// was exhausted before a proof either way (callers must treat it
/// conservatively, and explicitly - see SolveStatus::Aborted).
enum class Feasibility {
  HasPoint,
  Empty,
  Unknown,
};

/// Integer feasibility of Ineqs * (x, 1) >= 0, Eqs * (x, 1) == 0 where the
/// x_i may take any sign. Implemented by splitting each variable into a
/// difference of two non-negative ones. If Witness is non-null and a point
/// is found, it receives one.
Feasibility integerFeasibility(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                               unsigned NumVars,
                               std::vector<BigInt> *Witness = nullptr);

/// Convenience wrapper over integerFeasibility: true iff a point exists OR
/// the budget ran out (claiming a point exists is the conservative answer
/// for every caller in this code base - dependences and codegen pieces are
/// kept, never wrongly dropped).
bool hasIntegerPoint(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                     unsigned NumVars, std::vector<BigInt> *Witness = nullptr);

/// Reusable lexmin solver for the transform framework's per-band systems
/// (the warm-started incremental path). setBase() installs the constraint
/// rows shared by every query of one band (legality + bounding + the
/// trivial-solution guards); the first solveWith() call runs the base
/// system to its integer optimum and snapshots the tableau; subsequent
/// calls copy the snapshot, append the per-query rows (the linear
/// independence constraints, which are replaced - not grown - between
/// iterations) rewritten into the snapshot's basis, and resume the dual
/// simplex from there instead of re-solving from scratch. The integer
/// lexicographic minimum is unique, so a warm solve returns exactly what a
/// cold lexMinNonNeg over base + extras would; on Aborted the caller falls
/// back to a cold solve.
class LexMinSolver {
public:
  LexMinSolver();
  ~LexMinSolver();
  LexMinSolver(LexMinSolver &&);
  LexMinSolver &operator=(LexMinSolver &&);

  /// Installs the shared constraint rows; resets any cached tableau.
  void setBase(const IntMatrix &Ineqs, const IntMatrix &Eqs,
               unsigned NumVars);
  bool hasBase() const;

  /// Lexmin of base + ExtraIneqs (inequality rows over [vars | 1]; may be
  /// empty). Counts Counter::LexMinWarmStarts when served from a snapshot.
  LexMinResult solveWith(const IntMatrix &ExtraIneqs);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace ilp
} // namespace pluto

#endif // PLUTOPP_ILP_LEXMIN_H
