//===- ilp/LexMin.h - Integer lexicographic minimization --------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer lexicographic minimization, the solver behind the paper's
/// objective (5): minimize_lex {u_1, ..., u_k, w, ..., c_i's, ...}.
///
/// This is the non-parametric core of PIP (Feautrier, "Parametric integer
/// programming", 1988), which the original Pluto uses through PipLib: a
/// lexicographic dual simplex over exact rationals, made integral with
/// Gomory's method-of-integer-forms cuts. All problem variables are
/// constrained to be non-negative, matching the paper's practical choice of
/// non-negative transformation coefficients (Section 4.2); a helper maps
/// free-sign systems (dependence polyhedra) onto this form by variable
/// doubling, which gives the exact integer emptiness test the dependence
/// analyzer needs.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_ILP_LEXMIN_H
#define PLUTOPP_ILP_LEXMIN_H

#include "support/Matrix.h"

#include <vector>

namespace pluto {
namespace ilp {

/// Outcome of a lexmin query.
enum class SolveStatus {
  Feasible,   ///< Point holds the integer lexicographic minimum.
  Infeasible, ///< No integer point satisfies the constraints.
  Aborted,    ///< Cut/iteration budget exhausted (should not happen on the
              ///< structured systems this code base produces).
};

struct LexMinResult {
  SolveStatus Status = SolveStatus::Infeasible;
  /// Integer lexmin of the variable vector; size NumVars when Feasible.
  std::vector<BigInt> Point;

  bool feasible() const { return Status == SolveStatus::Feasible; }
};

/// Computes the integer lexicographic minimum of x = (x_0, ..., x_{n-1}),
/// all x_i >= 0, subject to Ineqs * (x, 1) >= 0 and Eqs * (x, 1) == 0.
/// Both matrices have NumVars + 1 columns (coefficients then the constant
/// term); either may be empty (zero rows).
LexMinResult lexMinNonNeg(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                          unsigned NumVars);

/// Integer feasibility of Ineqs * (x, 1) >= 0, Eqs * (x, 1) == 0 where the
/// x_i may take any sign. Implemented by splitting each variable into a
/// difference of two non-negative ones. Returns true iff an integer point
/// exists; if Witness is non-null and a point exists, it receives one.
bool hasIntegerPoint(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                     unsigned NumVars, std::vector<BigInt> *Witness = nullptr);

} // namespace ilp
} // namespace pluto

#endif // PLUTOPP_ILP_LEXMIN_H
