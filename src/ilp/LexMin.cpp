//===- ilp/LexMin.cpp - Integer lexicographic minimization ----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// Tableau layout. Rows are affine expressions, over the current non-basic
// variables u (columns 0..n-1) plus a constant column n, of quantities that
// must be non-negative at any feasible point:
//   rows 0..n-1:     the problem variables x_i (initially x_i = u_i);
//   rows n..n+m-1:   the slack of each inequality;
//   later rows:      Gomory cut quantities (integers >= 0 at integer points).
//
// Invariants:
//   (1) every non-basic u_j is itself a non-negative quantity;
//   (2) every column, read down the rows in order, is lexico-positive (or
//       identically zero once a variable drops out).
// With all u = 0 the candidate point is the constant column; when every
// constant is >= 0 the candidate is feasible and - by (2) and u >= 0 - it is
// the lexicographic minimum of the relaxation. A dual simplex pivot repairs
// the first negative constant while preserving both invariants by choosing
// the entering column j > 0 in row r that lexicographically minimizes
// column_j / D[r][j]. If the optimum is fractional, a Gomory cut derived
// from the first fractional variable row is appended and the dual simplex
// resumes. This is exactly PIP's algorithm without the parameter dimension.
//
//===----------------------------------------------------------------------===//

#include "ilp/LexMin.h"

#include "observe/PassStats.h"
#include "support/Budget.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

using namespace pluto;
using namespace pluto::ilp;

namespace {
std::atomic<unsigned> GMaxPivots{SolveLimits().MaxPivots};
std::atomic<unsigned> GMaxCuts{SolveLimits().MaxCuts};
} // namespace

SolveLimits ilp::solveLimits() {
  SolveLimits L;
  L.MaxPivots = GMaxPivots.load(std::memory_order_relaxed);
  L.MaxCuts = GMaxCuts.load(std::memory_order_relaxed);
  return L;
}

void ilp::setSolveLimits(const SolveLimits &L) {
  GMaxPivots.store(L.MaxPivots, std::memory_order_relaxed);
  GMaxCuts.store(L.MaxCuts, std::memory_order_relaxed);
}

/// Set PLUTOPP_DEBUG_ILP=1 to trace pivots on stderr.
static bool debugIlp() {
  static bool Enabled = std::getenv("PLUTOPP_DEBUG_ILP") != nullptr;
  return Enabled;
}

namespace {

class Tableau {
public:
  Tableau(const IntMatrix &Ineqs, const IntMatrix &Eqs, unsigned NumVars)
      : NumVars(NumVars), MaxIterations(solveLimits().MaxPivots) {
    // Read-out rows: x_i = u_i. These are the lexicographic objective; they
    // are never selected as pivot rows (their non-negativity is enforced by
    // the duplicate slack rows added below), so they always transform
    // linearly and the column lexico-positivity argument stays valid.
    for (unsigned I = 0; I < NumVars; ++I) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      Row[I] = Rational(1);
      Rows.push_back(std::move(Row));
    }
    // Slack twins enforcing x_i >= 0.
    for (unsigned I = 0; I < NumVars; ++I) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      Row[I] = Rational(1);
      Rows.push_back(std::move(Row));
    }
    auto addConstraintRow = [&](const IntMatrix &M, unsigned R, bool Negate) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      for (unsigned C = 0; C <= NumVars; ++C) {
        BigInt V = M(R, C);
        Row[C] = Rational(Negate ? -V : V);
      }
      Rows.push_back(std::move(Row));
    };
    for (unsigned R = 0; R < Ineqs.numRows(); ++R)
      addConstraintRow(Ineqs, R, /*Negate=*/false);
    for (unsigned R = 0; R < Eqs.numRows(); ++R) {
      addConstraintRow(Eqs, R, /*Negate=*/false);
      addConstraintRow(Eqs, R, /*Negate=*/true);
    }
  }

  /// Runs the dual simplex until primal feasible; returns false if the
  /// system is (rationally, hence integrally) infeasible.
  bool dualSimplex() {
    for (;;) {
      // The static pivot cap and the per-compile budget (one work unit per
      // pivot - the generalized form of the cap) share the Aborted exit;
      // every caller already handles Aborted conservatively.
      if (++Iterations > MaxIterations || !budgetCharge())
        return Aborted = true, false;
      int R = firstNegativeConstantRow();
      if (R < 0)
        return true;
      int J = chooseEnteringColumn(static_cast<unsigned>(R));
      if (J < 0)
        return false; // All coefficients <= 0: row can never become >= 0.
      if (debugIlp())
        fprintf(stderr, "[ilp] pivot row %d col %d (const %s)\n", R, J,
                Rows[static_cast<unsigned>(R)][NumVars].toString().c_str());
      pivot(static_cast<unsigned>(R), static_cast<unsigned>(J));
      if (debugIlp())
        checkLexPositive();
    }
  }

  /// Index of the first variable row whose constant is non-integral, or -1.
  int firstFractionalVarRow() const {
    for (unsigned I = 0; I < NumVars; ++I)
      if (!Rows[I][NumVars].isInteger())
        return static_cast<int>(I);
    return -1;
  }

  /// Appends the Gomory cut derived from row SrcRow:
  ///   sum_j frac(D[r][j]) u_j + frac(D[r][n]) - 1 >= 0.
  void addGomoryCut(unsigned SrcRow) {
    std::vector<Rational> Cut(NumVars + 1, Rational(0));
    for (unsigned C = 0; C < NumVars; ++C)
      Cut[C] = Rows[SrcRow][C].fract();
    Cut[NumVars] = Rows[SrcRow][NumVars].fract() - Rational(1);
    Rows.push_back(std::move(Cut));
  }

  std::vector<BigInt> varValues() const {
    std::vector<BigInt> V;
    V.reserve(NumVars);
    for (unsigned I = 0; I < NumVars; ++I) {
      assert(Rows[I][NumVars].isInteger() && "reading fractional solution");
      V.push_back(Rows[I][NumVars].num());
    }
    return V;
  }

  bool aborted() const { return Aborted; }
  unsigned iterations() const { return Iterations; }

  /// Appends a new constraint row a.(x, 1) >= 0, given over the ORIGINAL
  /// problem variables, to a tableau that may already have pivoted: each
  /// x_i is substituted by its current row expression over the non-basic
  /// variables, so the new row lands directly in the current basis. Column
  /// lexico-positivity is preserved (the new row is read after all existing
  /// rows, so it can only refine columns that were identically zero).
  void appendTransformed(const std::vector<BigInt> &Row) {
    assert(Row.size() == NumVars + 1 && "row width mismatch");
    std::vector<Rational> NewRow(NumVars + 1, Rational(0));
    for (unsigned I = 0; I < NumVars; ++I) {
      if (Row[I].isZero())
        continue;
      Rational F = Rational(Row[I]);
      for (unsigned C = 0; C <= NumVars; ++C)
        NewRow[C] += F * Rows[I][C];
    }
    NewRow[NumVars] += Rational(Row[NumVars]);
    Rows.push_back(std::move(NewRow));
  }

private:
  unsigned NumVars;
  std::vector<std::vector<Rational>> Rows;
  unsigned Iterations = 0;
  bool Aborted = false;
  // Generous cap by default (see ilp::SolveLimits); the structured systems
  // Pluto produces pivot a few dozen times. The cap only guards against
  // pathological cycling.
  unsigned MaxIterations;

  /// Debug invariant: the read-out (objective) part of every column is
  /// lexico-non-negative. This is what certifies lex-minimality at
  /// termination.
  void checkLexPositive() const {
    for (unsigned J = 0; J < NumVars; ++J) {
      for (unsigned I = 0; I < NumVars; ++I) {
        if (Rows[I][J].isZero())
          continue;
        if (Rows[I][J].isNegative())
          fprintf(stderr, "[ilp] BROKEN: column %u objective-lex-negative\n",
                  J);
        break;
      }
    }
  }

  int firstNegativeConstantRow() const {
    // Read-out rows (the first NumVars) are repaired through their slack
    // twins; start the scan past them.
    for (unsigned I = NumVars, E = static_cast<unsigned>(Rows.size()); I < E;
         ++I)
      if (Rows[I][NumVars].isNegative())
        return static_cast<int>(I);
    return -1;
  }

  /// Lexicographic comparison of column A scaled by 1/SA against column B
  /// scaled by 1/SB, reading rows top-down. Returns negative if A/SA is
  /// lex-smaller.
  int compareScaledColumns(unsigned A, const Rational &SA, unsigned B,
                           const Rational &SB) const {
    for (const auto &Row : Rows) {
      Rational VA = Row[A] / SA;
      Rational VB = Row[B] / SB;
      int C = VA.compare(VB);
      if (C != 0)
        return C;
    }
    return 0;
  }

  /// Among columns with a positive coefficient in row R, picks the one with
  /// the lexicographically smallest column/coefficient ratio (preserves
  /// column lexico-positivity). Returns -1 if none qualifies.
  int chooseEnteringColumn(unsigned R) const {
    int Best = -1;
    for (unsigned J = 0; J < NumVars; ++J) {
      if (!Rows[R][J].isPositive())
        continue;
      if (Best < 0 ||
          compareScaledColumns(J, Rows[R][J], static_cast<unsigned>(Best),
                               Rows[R][static_cast<unsigned>(Best)]) < 0)
        Best = static_cast<int>(J);
    }
    return Best;
  }

  /// Pivots: the quantity of row R leaves the row set's basis and becomes
  /// the non-basic variable of column J.
  void pivot(unsigned R, unsigned J) {
    Rational P = Rows[R][J];
    assert(P.isPositive() && "pivot element must be positive");
    // Rewrite row R as the definition of the old u_J:
    //   u_J = (q - sum_{c != J} D[R][c] u_c - D[R][n]) / P,
    // then substitute into every other row. In tableau terms:
    //   new col J of row i      = D[i][J] / P
    //   new col c (c != J)      = D[i][c] - D[i][J] * D[R][c] / P
    //   new const               = D[i][n] - D[i][J] * D[R][n] / P
    // and row R itself becomes u_J's definition with coefficient pattern
    // (1/P on the new q column, -D[R][c]/P elsewhere, -D[R][n]/P const).
    std::vector<Rational> OldR = Rows[R];
    for (unsigned I = 0, E = static_cast<unsigned>(Rows.size()); I < E; ++I) {
      if (I == R)
        continue;
      Rational F = Rows[I][J] / P;
      if (F.isZero())
        continue;
      for (unsigned C = 0; C <= NumVars; ++C) {
        if (C == J)
          Rows[I][C] = F;
        else
          Rows[I][C] -= F * OldR[C];
      }
    }
    for (unsigned C = 0; C <= NumVars; ++C) {
      if (C == J)
        Rows[R][C] = Rational(1) / P;
      else
        Rows[R][C] = -OldR[C] / P;
    }
  }
};

/// Shared driver: runs the dual simplex + Gomory cut loop on T until the
/// integer optimum, infeasibility, or budget exhaustion. CutsUsed reports
/// the cuts appended by this run (the tableau may carry earlier ones).
LexMinResult runToInteger(Tableau &T, unsigned &CutsUsed) {
  LexMinResult Result;
  CutsUsed = 0;
  // Cut budget: each round restores feasibility then cuts one fractional
  // coordinate. Structured Pluto systems need a handful of cuts at most.
  const unsigned MaxCuts = solveLimits().MaxCuts;
  for (unsigned Cuts = 0; Cuts <= MaxCuts; ++Cuts) {
    if (!T.dualSimplex()) {
      Result.Status =
          T.aborted() ? SolveStatus::Aborted : SolveStatus::Infeasible;
      return Result;
    }
    int FracRow = T.firstFractionalVarRow();
    if (FracRow < 0) {
      Result.Status = SolveStatus::Feasible;
      Result.Point = T.varValues();
      return Result;
    }
    T.addGomoryCut(static_cast<unsigned>(FracRow));
    ++CutsUsed;
  }
  Result.Status = SolveStatus::Aborted;
  return Result;
}

/// Stats are bulk-added once per solve from the tableau totals, so the
/// pivot loop itself stays uninstrumented. PivotsBefore subtracts pivots a
/// reused tableau already carried when this solve began.
void noteSolveStats(const Tableau &T, unsigned PivotsBefore,
                    unsigned CutsUsed, bool DidAbort) {
  if (!activeStats())
    return;
  count(Counter::LexMinCalls);
  count(Counter::SimplexPivots, T.iterations() - PivotsBefore);
  count(Counter::GomoryCuts, CutsUsed);
  if (DidAbort)
    count(Counter::IlpAborts);
}

} // namespace

LexMinResult ilp::lexMinNonNeg(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                               unsigned NumVars) {
  assert((Ineqs.empty() || Ineqs.numCols() == NumVars + 1) &&
         "inequality width mismatch");
  assert((Eqs.empty() || Eqs.numCols() == NumVars + 1) &&
         "equality width mismatch");

  Tableau T(Ineqs, Eqs, NumVars);
  unsigned CutsUsed = 0;
  LexMinResult Result = runToInteger(T, CutsUsed);
  noteSolveStats(T, 0, CutsUsed, Result.Status == SolveStatus::Aborted);
  return Result;
}

struct LexMinSolver::Impl {
  unsigned NumVars = 0;
  IntMatrix BaseIneqs;
  IntMatrix BaseEqs;
  bool HasBase = false;
  /// Base tableau state once solved to its integer optimum (including the
  /// Gomory cuts discovered on the way - they are valid for any subset of
  /// the base's integer points, hence for base + extras).
  bool BaseSolved = false;
  SolveStatus BaseStatus = SolveStatus::Infeasible;
  std::unique_ptr<Tableau> BaseT;

  void solveBase() {
    BaseSolved = true;
    BaseT = std::make_unique<Tableau>(BaseIneqs, BaseEqs, NumVars);
    unsigned CutsUsed = 0;
    LexMinResult R = runToInteger(*BaseT, CutsUsed);
    BaseStatus = R.Status;
    noteSolveStats(*BaseT, 0, CutsUsed, R.Status == SolveStatus::Aborted);
  }
};

LexMinSolver::LexMinSolver() : I(std::make_unique<Impl>()) {}
LexMinSolver::~LexMinSolver() = default;
LexMinSolver::LexMinSolver(LexMinSolver &&) = default;
LexMinSolver &LexMinSolver::operator=(LexMinSolver &&) = default;

void LexMinSolver::setBase(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                           unsigned NumVars) {
  assert((Ineqs.empty() || Ineqs.numCols() == NumVars + 1) &&
         "inequality width mismatch");
  assert((Eqs.empty() || Eqs.numCols() == NumVars + 1) &&
         "equality width mismatch");
  I->NumVars = NumVars;
  I->BaseIneqs = Ineqs;
  I->BaseEqs = Eqs;
  I->HasBase = true;
  I->BaseSolved = false;
  I->BaseT.reset();
}

bool LexMinSolver::hasBase() const { return I->HasBase; }

LexMinResult LexMinSolver::solveWith(const IntMatrix &ExtraIneqs) {
  assert(I->HasBase && "solveWith before setBase");
  assert((ExtraIneqs.empty() || ExtraIneqs.numCols() == I->NumVars + 1) &&
         "extra row width mismatch");
  bool Reused = I->BaseSolved;
  if (!I->BaseSolved)
    I->solveBase();
  LexMinResult Result;
  if (I->BaseStatus == SolveStatus::Infeasible) {
    // Extra rows can only shrink the feasible set.
    Result.Status = SolveStatus::Infeasible;
    return Result;
  }
  if (I->BaseStatus == SolveStatus::Aborted) {
    // No usable snapshot; the caller falls back to a cold solve.
    Result.Status = SolveStatus::Aborted;
    return Result;
  }
  if (Reused)
    count(Counter::LexMinWarmStarts);
  Tableau T = *I->BaseT;
  unsigned PivotsBefore = T.iterations();
  for (unsigned R = 0; R < ExtraIneqs.numRows(); ++R)
    T.appendTransformed(ExtraIneqs.row(R));
  unsigned CutsUsed = 0;
  Result = runToInteger(T, CutsUsed);
  noteSolveStats(T, PivotsBefore, CutsUsed,
                 Result.Status == SolveStatus::Aborted);
  return Result;
}

Feasibility ilp::integerFeasibility(const IntMatrix &Ineqs,
                                    const IntMatrix &Eqs, unsigned NumVars,
                                    std::vector<BigInt> *Witness) {
  // Split x_i = p_i - n_i with p_i, n_i >= 0.
  auto split = [&](const IntMatrix &M) {
    IntMatrix R(2 * NumVars + 1);
    for (unsigned I = 0; I < M.numRows(); ++I) {
      std::vector<BigInt> Row(2 * NumVars + 1);
      for (unsigned J = 0; J < NumVars; ++J) {
        Row[2 * J] = M(I, J);
        Row[2 * J + 1] = -M(I, J);
      }
      Row[2 * NumVars] = M(I, NumVars);
      R.addRow(std::move(Row));
    }
    return R;
  };
  LexMinResult LM = lexMinNonNeg(split(Ineqs), split(Eqs), 2 * NumVars);
  if (LM.Status == SolveStatus::Aborted)
    return Feasibility::Unknown;
  if (!LM.feasible())
    return Feasibility::Empty;
  if (Witness) {
    Witness->clear();
    for (unsigned I = 0; I < NumVars; ++I)
      Witness->push_back(LM.Point[2 * I] - LM.Point[2 * I + 1]);
  }
  return Feasibility::HasPoint;
}

bool ilp::hasIntegerPoint(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                          unsigned NumVars, std::vector<BigInt> *Witness) {
  // On a budget abort (never observed on this code base's systems), answer
  // conservatively: claiming a point exists keeps dependences and codegen
  // pieces, which is always safe.
  return integerFeasibility(Ineqs, Eqs, NumVars, Witness) !=
         Feasibility::Empty;
}
