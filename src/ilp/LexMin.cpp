//===- ilp/LexMin.cpp - Integer lexicographic minimization ----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// Tableau layout. Rows are affine expressions, over the current non-basic
// variables u (columns 0..n-1) plus a constant column n, of quantities that
// must be non-negative at any feasible point:
//   rows 0..n-1:     the problem variables x_i (initially x_i = u_i);
//   rows n..n+m-1:   the slack of each inequality;
//   later rows:      Gomory cut quantities (integers >= 0 at integer points).
//
// Invariants:
//   (1) every non-basic u_j is itself a non-negative quantity;
//   (2) every column, read down the rows in order, is lexico-positive (or
//       identically zero once a variable drops out).
// With all u = 0 the candidate point is the constant column; when every
// constant is >= 0 the candidate is feasible and - by (2) and u >= 0 - it is
// the lexicographic minimum of the relaxation. A dual simplex pivot repairs
// the first negative constant while preserving both invariants by choosing
// the entering column j > 0 in row r that lexicographically minimizes
// column_j / D[r][j]. If the optimum is fractional, a Gomory cut derived
// from the first fractional variable row is appended and the dual simplex
// resumes. This is exactly PIP's algorithm without the parameter dimension.
//
//===----------------------------------------------------------------------===//

#include "ilp/LexMin.h"

#include "observe/PassStats.h"

#include <cstdio>
#include <cstdlib>

using namespace pluto;
using namespace pluto::ilp;

/// Set PLUTOPP_DEBUG_ILP=1 to trace pivots on stderr.
static bool debugIlp() {
  static bool Enabled = std::getenv("PLUTOPP_DEBUG_ILP") != nullptr;
  return Enabled;
}

namespace {

class Tableau {
public:
  Tableau(const IntMatrix &Ineqs, const IntMatrix &Eqs, unsigned NumVars)
      : NumVars(NumVars) {
    // Read-out rows: x_i = u_i. These are the lexicographic objective; they
    // are never selected as pivot rows (their non-negativity is enforced by
    // the duplicate slack rows added below), so they always transform
    // linearly and the column lexico-positivity argument stays valid.
    for (unsigned I = 0; I < NumVars; ++I) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      Row[I] = Rational(1);
      Rows.push_back(std::move(Row));
    }
    // Slack twins enforcing x_i >= 0.
    for (unsigned I = 0; I < NumVars; ++I) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      Row[I] = Rational(1);
      Rows.push_back(std::move(Row));
    }
    auto addConstraintRow = [&](const IntMatrix &M, unsigned R, bool Negate) {
      std::vector<Rational> Row(NumVars + 1, Rational(0));
      for (unsigned C = 0; C <= NumVars; ++C) {
        BigInt V = M(R, C);
        Row[C] = Rational(Negate ? -V : V);
      }
      Rows.push_back(std::move(Row));
    };
    for (unsigned R = 0; R < Ineqs.numRows(); ++R)
      addConstraintRow(Ineqs, R, /*Negate=*/false);
    for (unsigned R = 0; R < Eqs.numRows(); ++R) {
      addConstraintRow(Eqs, R, /*Negate=*/false);
      addConstraintRow(Eqs, R, /*Negate=*/true);
    }
  }

  /// Runs the dual simplex until primal feasible; returns false if the
  /// system is (rationally, hence integrally) infeasible.
  bool dualSimplex() {
    for (;;) {
      if (++Iterations > MaxIterations)
        return Aborted = true, false;
      int R = firstNegativeConstantRow();
      if (R < 0)
        return true;
      int J = chooseEnteringColumn(static_cast<unsigned>(R));
      if (J < 0)
        return false; // All coefficients <= 0: row can never become >= 0.
      if (debugIlp())
        fprintf(stderr, "[ilp] pivot row %d col %d (const %s)\n", R, J,
                Rows[static_cast<unsigned>(R)][NumVars].toString().c_str());
      pivot(static_cast<unsigned>(R), static_cast<unsigned>(J));
      if (debugIlp())
        checkLexPositive();
    }
  }

  /// Index of the first variable row whose constant is non-integral, or -1.
  int firstFractionalVarRow() const {
    for (unsigned I = 0; I < NumVars; ++I)
      if (!Rows[I][NumVars].isInteger())
        return static_cast<int>(I);
    return -1;
  }

  /// Appends the Gomory cut derived from row SrcRow:
  ///   sum_j frac(D[r][j]) u_j + frac(D[r][n]) - 1 >= 0.
  void addGomoryCut(unsigned SrcRow) {
    std::vector<Rational> Cut(NumVars + 1, Rational(0));
    for (unsigned C = 0; C < NumVars; ++C)
      Cut[C] = Rows[SrcRow][C].fract();
    Cut[NumVars] = Rows[SrcRow][NumVars].fract() - Rational(1);
    Rows.push_back(std::move(Cut));
  }

  std::vector<BigInt> varValues() const {
    std::vector<BigInt> V;
    V.reserve(NumVars);
    for (unsigned I = 0; I < NumVars; ++I) {
      assert(Rows[I][NumVars].isInteger() && "reading fractional solution");
      V.push_back(Rows[I][NumVars].num());
    }
    return V;
  }

  bool aborted() const { return Aborted; }
  unsigned iterations() const { return Iterations; }

private:
  unsigned NumVars;
  std::vector<std::vector<Rational>> Rows;
  unsigned Iterations = 0;
  bool Aborted = false;
  // Generous cap; the structured systems Pluto produces pivot a few dozen
  // times. The cap only guards against pathological cycling.
  static constexpr unsigned MaxIterations = 200000;

  /// Debug invariant: the read-out (objective) part of every column is
  /// lexico-non-negative. This is what certifies lex-minimality at
  /// termination.
  void checkLexPositive() const {
    for (unsigned J = 0; J < NumVars; ++J) {
      for (unsigned I = 0; I < NumVars; ++I) {
        if (Rows[I][J].isZero())
          continue;
        if (Rows[I][J].isNegative())
          fprintf(stderr, "[ilp] BROKEN: column %u objective-lex-negative\n",
                  J);
        break;
      }
    }
  }

  int firstNegativeConstantRow() const {
    // Read-out rows (the first NumVars) are repaired through their slack
    // twins; start the scan past them.
    for (unsigned I = NumVars, E = static_cast<unsigned>(Rows.size()); I < E;
         ++I)
      if (Rows[I][NumVars].isNegative())
        return static_cast<int>(I);
    return -1;
  }

  /// Lexicographic comparison of column A scaled by 1/SA against column B
  /// scaled by 1/SB, reading rows top-down. Returns negative if A/SA is
  /// lex-smaller.
  int compareScaledColumns(unsigned A, const Rational &SA, unsigned B,
                           const Rational &SB) const {
    for (const auto &Row : Rows) {
      Rational VA = Row[A] / SA;
      Rational VB = Row[B] / SB;
      int C = VA.compare(VB);
      if (C != 0)
        return C;
    }
    return 0;
  }

  /// Among columns with a positive coefficient in row R, picks the one with
  /// the lexicographically smallest column/coefficient ratio (preserves
  /// column lexico-positivity). Returns -1 if none qualifies.
  int chooseEnteringColumn(unsigned R) const {
    int Best = -1;
    for (unsigned J = 0; J < NumVars; ++J) {
      if (!Rows[R][J].isPositive())
        continue;
      if (Best < 0 ||
          compareScaledColumns(J, Rows[R][J], static_cast<unsigned>(Best),
                               Rows[R][static_cast<unsigned>(Best)]) < 0)
        Best = static_cast<int>(J);
    }
    return Best;
  }

  /// Pivots: the quantity of row R leaves the row set's basis and becomes
  /// the non-basic variable of column J.
  void pivot(unsigned R, unsigned J) {
    Rational P = Rows[R][J];
    assert(P.isPositive() && "pivot element must be positive");
    // Rewrite row R as the definition of the old u_J:
    //   u_J = (q - sum_{c != J} D[R][c] u_c - D[R][n]) / P,
    // then substitute into every other row. In tableau terms:
    //   new col J of row i      = D[i][J] / P
    //   new col c (c != J)      = D[i][c] - D[i][J] * D[R][c] / P
    //   new const               = D[i][n] - D[i][J] * D[R][n] / P
    // and row R itself becomes u_J's definition with coefficient pattern
    // (1/P on the new q column, -D[R][c]/P elsewhere, -D[R][n]/P const).
    std::vector<Rational> OldR = Rows[R];
    for (unsigned I = 0, E = static_cast<unsigned>(Rows.size()); I < E; ++I) {
      if (I == R)
        continue;
      Rational F = Rows[I][J] / P;
      if (F.isZero())
        continue;
      for (unsigned C = 0; C <= NumVars; ++C) {
        if (C == J)
          Rows[I][C] = F;
        else
          Rows[I][C] -= F * OldR[C];
      }
    }
    for (unsigned C = 0; C <= NumVars; ++C) {
      if (C == J)
        Rows[R][C] = Rational(1) / P;
      else
        Rows[R][C] = -OldR[C] / P;
    }
  }
};

} // namespace

LexMinResult ilp::lexMinNonNeg(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                               unsigned NumVars) {
  assert((Ineqs.empty() || Ineqs.numCols() == NumVars + 1) &&
         "inequality width mismatch");
  assert((Eqs.empty() || Eqs.numCols() == NumVars + 1) &&
         "equality width mismatch");

  LexMinResult Result;
  Tableau T(Ineqs, Eqs, NumVars);
  unsigned CutsUsed = 0;
  // Stats are bulk-added once per call from the tableau's own totals, so
  // the pivot loop itself stays uninstrumented.
  auto NoteStats = [&](bool DidAbort) {
    if (activeStats()) {
      count(Counter::LexMinCalls);
      count(Counter::SimplexPivots, T.iterations());
      count(Counter::GomoryCuts, CutsUsed);
      if (DidAbort)
        count(Counter::IlpAborts);
    }
  };
  // Cut budget: each round restores feasibility then cuts one fractional
  // coordinate. Structured Pluto systems need a handful of cuts at most.
  for (unsigned Cuts = 0; Cuts <= 2000; ++Cuts) {
    if (!T.dualSimplex()) {
      Result.Status =
          T.aborted() ? SolveStatus::Aborted : SolveStatus::Infeasible;
      NoteStats(T.aborted());
      return Result;
    }
    int FracRow = T.firstFractionalVarRow();
    if (FracRow < 0) {
      Result.Status = SolveStatus::Feasible;
      Result.Point = T.varValues();
      NoteStats(false);
      return Result;
    }
    T.addGomoryCut(static_cast<unsigned>(FracRow));
    ++CutsUsed;
  }
  Result.Status = SolveStatus::Aborted;
  NoteStats(true);
  return Result;
}

bool ilp::hasIntegerPoint(const IntMatrix &Ineqs, const IntMatrix &Eqs,
                          unsigned NumVars, std::vector<BigInt> *Witness) {
  // Split x_i = p_i - n_i with p_i, n_i >= 0.
  auto split = [&](const IntMatrix &M) {
    IntMatrix R(2 * NumVars + 1);
    for (unsigned I = 0; I < M.numRows(); ++I) {
      std::vector<BigInt> Row(2 * NumVars + 1);
      for (unsigned J = 0; J < NumVars; ++J) {
        Row[2 * J] = M(I, J);
        Row[2 * J + 1] = -M(I, J);
      }
      Row[2 * NumVars] = M(I, NumVars);
      R.addRow(std::move(Row));
    }
    return R;
  };
  LexMinResult LM = lexMinNonNeg(split(Ineqs), split(Eqs), 2 * NumVars);
  // On a budget abort (never observed on this code base's systems), answer
  // conservatively: claiming a point exists keeps dependences and codegen
  // pieces, which is always safe.
  if (LM.Status == SolveStatus::Aborted)
    return true;
  if (!LM.feasible())
    return false;
  if (Witness) {
    Witness->clear();
    for (unsigned I = 0; I < NumVars; ++I)
      Witness->push_back(LM.Point[2 * I] - LM.Point[2 * I + 1]);
  }
  return true;
}
