//===- codegen/CodeGen.h - Polyhedral code generation -----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polyhedral scanning code generator (the role of CLooG, paper Section 5):
/// given per-statement domains and scattering functions, produce a loop AST
/// that visits every statement instance in the lexicographic order of its
/// scattering value.
///
/// The algorithm is Quillere-Rajopadhye-Wilde style: per level, project
/// every active statement's extended system {(c, i) : c = T_S(i), i in D_S}
/// onto the outer dimensions, separate the projections into disjoint
/// regions, sort the regions, and recurse. Equality-determined dimensions
/// become exact integer assignments with divisibility guards; scalar
/// scattering dimensions become pure statement ordering. If separation
/// would explode (or regions cannot be totally ordered), the generator
/// falls back to a single loop over the union with per-statement guards at
/// the leaves - always correct, merely slower code.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_CODEGEN_CODEGEN_H
#define PLUTOPP_CODEGEN_CODEGEN_H

#include "codegen/Ast.h"
#include "support/Result.h"
#include "tile/Scop.h"

#include <set>

namespace pluto {

struct CodeGenOptions {
  /// Cap on disjoint regions per level before falling back to guard mode.
  unsigned MaxPieces = 24;
  /// Disable to force guard mode everywhere (testing / code-size control).
  bool EnableSeparation = true;
  /// Scattering rows whose loops get "#pragma omp parallel for". Usually
  /// computed by the driver (outermost parallel row of the tile space).
  std::set<unsigned> ParallelPragmaRows;
};

/// Generates the loop AST scanning Scop. Fails only on malformed input
/// (e.g. statements with inconsistent scattering widths).
Result<CgNodePtr> generateAst(const Scop &S,
                              const CodeGenOptions &Opts = CodeGenOptions());

} // namespace pluto

#endif // PLUTOPP_CODEGEN_CODEGEN_H
