//===- codegen/CodeGen.cpp - Polyhedral code generation -------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "observe/PassStats.h"
#include "support/Budget.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>

using namespace pluto;

namespace {

/// A disjoint region of the current level with the statements active in it.
struct Piece {
  ConstraintSystem Region;
  std::vector<unsigned> Stmts;
};

/// Bound rows extracted for one dimension.
struct DimBounds {
  bool HasEq = false;
  std::vector<BigInt> EqRow; ///< Normalized: positive coefficient on the dim.
  std::vector<std::vector<BigInt>> Lower; ///< Positive coefficient rows.
  std::vector<std::vector<BigInt>> Upper; ///< Negative coefficient rows.
  std::vector<std::vector<BigInt>> CondIneqs; ///< Rows not involving the dim.
  std::vector<std::vector<BigInt>> CondEqs;
};

class Generator {
public:
  Generator(const Scop &S, const CodeGenOptions &Opts) : S(S), Opts(Opts) {
    D = S.numRows();
    NP = S.Prog->numParams();
  }

  Result<CgNodePtr> run() {
    pickLoopVarNames();
    buildExtendedSystems();
    buildProjections();

    ConstraintSystem Ctx(D + NP);
    S.Prog->appendContextTo(Ctx, D);
    std::vector<unsigned> Active;
    for (unsigned I = 0; I < S.Stmts.size(); ++I)
      Active.push_back(I);
    CgNodePtr Root = genLevel(0, Active, Ctx);
    if (!Error.empty())
      return Err(Error);
    return Root;
  }

private:
  const Scop &S;
  CodeGenOptions Opts;
  unsigned D, NP;
  std::vector<std::string> CName; ///< Loop-variable name per row ("" scalar).
  std::vector<ConstraintSystem> Ext; ///< Per stmt: [c_1..c_D|iters|params|1].
  /// Proj[s][l]: projection of Ext[s] onto [c_1..c_l | params], padded back
  /// to the region layout [c_1..c_D | params | 1] with zero columns.
  std::vector<std::vector<ConstraintSystem>> Proj;
  std::string Error;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  //===------------------------------------------------------------------===//
  // Setup
  //===------------------------------------------------------------------===//

  void pickLoopVarNames() {
    std::set<std::string> Taken(S.Prog->ParamNames.begin(),
                                S.Prog->ParamNames.end());
    for (const ScopStmt &St : S.Stmts)
      Taken.insert(St.IterNames.begin(), St.IterNames.end());
    std::string Prefix = "c";
    while (true) {
      bool Clash = false;
      for (unsigned R = 0; R < D && !Clash; ++R)
        Clash = Taken.count(Prefix + std::to_string(R + 1)) != 0;
      if (!Clash)
        break;
      Prefix += "c";
    }
    CName.resize(D);
    for (unsigned R = 0; R < D; ++R)
      CName[R] = S.Rows[R].IsScalar ? "" : Prefix + std::to_string(R + 1);
  }

  void buildExtendedSystems() {
    for (const ScopStmt &St : S.Stmts) {
      unsigned M = static_cast<unsigned>(St.IterNames.size());
      assert(St.Scatter.numRows() == D && "scattering height mismatch");
      assert(St.Scatter.numCols() == M + NP + 1 && "scattering width");
      ConstraintSystem CS(D + M + NP);
      // c_r == Scatter_r(iters, params).
      for (unsigned R = 0; R < D; ++R) {
        std::vector<BigInt> Row(D + M + NP + 1, BigInt(0));
        Row[R] = BigInt(1);
        for (unsigned I = 0; I < M; ++I)
          Row[D + I] = -St.Scatter(R, I);
        for (unsigned P = 0; P < NP; ++P)
          Row[D + M + P] = -St.Scatter(R, M + P);
        Row[D + M + NP] = -St.Scatter(R, M + NP);
        CS.addEq(std::move(Row));
      }
      // Domain rows.
      auto embed = [&](const std::vector<BigInt> &Row) {
        std::vector<BigInt> R(D + M + NP + 1, BigInt(0));
        for (unsigned I = 0; I < M; ++I)
          R[D + I] = Row[I];
        for (unsigned P = 0; P < NP; ++P)
          R[D + M + P] = Row[M + P];
        R[D + M + NP] = Row[M + NP];
        return R;
      };
      for (unsigned R = 0; R < St.Domain.ineqs().numRows(); ++R)
        CS.addIneq(embed(St.Domain.ineqs().row(R)));
      for (unsigned R = 0; R < St.Domain.eqs().numRows(); ++R)
        CS.addEq(embed(St.Domain.eqs().row(R)));
      S.Prog->appendContextTo(CS, D + M);
      CS.normalize();
      // Scalar scattering dims carry no loop variable: substitute them away
      // (their defining equalities pin them to constants) and keep a zero
      // column so the layout stays uniform.
      for (unsigned R = 0; R < D; ++R) {
        if (!S.Rows[R].IsScalar)
          continue;
        CS.projectOut(R, 1);
        CS.insertDims(R, 1);
      }
      Ext.push_back(std::move(CS));
    }
  }

  void buildProjections() {
    Proj.resize(S.Stmts.size());
    for (unsigned St = 0; St < S.Stmts.size(); ++St) {
      unsigned M = static_cast<unsigned>(S.Stmts[St].IterNames.size());
      Proj[St].resize(D + 1, ConstraintSystem(0));
      ConstraintSystem Full = Ext[St];
      Full.projectOut(D, M); // Eliminate the statement iterators.
      // Full is now over [c_1..c_D | params].
      Proj[St][D] = Full;
      for (unsigned L = D; L-- > 0;) {
        ConstraintSystem Outer = Proj[St][L + 1];
        Outer.projectOut(L, 1);
        Outer.insertDims(L, 1);
        Proj[St][L] = std::move(Outer);
      }
    }
  }

  //===------------------------------------------------------------------===//
  // Expression rendering (region layout)
  //===------------------------------------------------------------------===//

  /// Name of region-layout column C (loop dim or parameter).
  std::string regionVarName(unsigned C) const {
    if (C < D) {
      assert(!CName[C].empty() && "expression references a scalar dimension");
      return CName[C];
    }
    return S.Prog->ParamNames[C - D];
  }

  /// Renders sum of Row's columns (skipping column Skip) scaled by Scale,
  /// plus the row constant, as an affine CgExpr.
  CgExpr rowToAffine(const std::vector<BigInt> &Row, int Skip,
                     const BigInt &Scale) const {
    std::vector<std::pair<std::string, BigInt>> Terms;
    for (unsigned C = 0; C < D + NP; ++C) {
      if (static_cast<int>(C) == Skip || Row[C].isZero())
        continue;
      Terms.push_back({regionVarName(C), Row[C] * Scale});
    }
    return CgExpr::affine(std::move(Terms), Row[D + NP] * Scale);
  }

  /// Extracts the bound structure for dimension Dim from Region's rows.
  DimBounds splitBounds(const ConstraintSystem &Region, unsigned Dim) const {
    DimBounds B;
    for (unsigned R = 0; R < Region.eqs().numRows(); ++R) {
      std::vector<BigInt> Row = Region.eqs().row(R);
      if (Row[Dim].isZero()) {
        B.CondEqs.push_back(std::move(Row));
        continue;
      }
      if (Row[Dim].isNegative())
        for (BigInt &V : Row)
          V = -V;
      if (!B.HasEq) {
        B.EqRow = std::move(Row);
        B.HasEq = true;
        continue;
      }
      std::vector<BigInt> *Keep = &Row;
      if (Row[Dim] < B.EqRow[Dim])
        std::swap(Row, B.EqRow); // Keep the smaller coefficient as EqRow.
      // The surplus equality becomes a pair of inequalities on the dim (it
      // references the dim, so it must be checked inside its definition).
      std::vector<BigInt> Neg = *Keep;
      for (BigInt &V : Neg)
        V = -V;
      B.Lower.push_back(std::move(*Keep)); // Positive coefficient on Dim.
      B.Upper.push_back(std::move(Neg));
    }
    for (unsigned R = 0; R < Region.ineqs().numRows(); ++R) {
      const std::vector<BigInt> &Row = Region.ineqs().row(R);
      if (Row[Dim].isZero())
        B.CondIneqs.push_back(Row);
      else if (Row[Dim].isPositive())
        B.Lower.push_back(Row);
      else
        B.Upper.push_back(Row);
    }
    return B;
  }

  /// Lower bound: a*dim + rest >= 0, a > 0  =>  dim >= ceild(-rest, a).
  CgExpr lowerExpr(const std::vector<BigInt> &Row, unsigned Dim) const {
    return CgExpr::ceild(rowToAffine(Row, static_cast<int>(Dim), BigInt(-1)),
                         Row[Dim]);
  }
  /// Upper bound: a*dim + rest >= 0, a < 0  =>  dim <= floord(rest, -a).
  CgExpr upperExpr(const std::vector<BigInt> &Row, unsigned Dim) const {
    return CgExpr::floord(rowToAffine(Row, static_cast<int>(Dim), BigInt(1)),
                          -Row[Dim]);
  }

  /// Converts condition rows into CgConds (equalities as two inequalities).
  std::vector<CgCond> condsFromRows(const DimBounds &B) const {
    std::vector<CgCond> Conds;
    for (const auto &Row : B.CondIneqs) {
      CgCond C;
      C.Expr = rowToAffine(Row, -1, BigInt(1));
      Conds.push_back(std::move(C));
    }
    for (const auto &Row : B.CondEqs) {
      CgCond C1, C2;
      C1.Expr = rowToAffine(Row, -1, BigInt(1));
      C2.Expr = rowToAffine(Row, -1, BigInt(-1));
      Conds.push_back(std::move(C1));
      Conds.push_back(std::move(C2));
    }
    return Conds;
  }

  //===------------------------------------------------------------------===//
  // Separation
  //===------------------------------------------------------------------===//

  /// A \ B as a list of disjoint convex pieces (successive complements).
  /// Pieces empty within Ctx are dropped.
  std::vector<ConstraintSystem> difference(const ConstraintSystem &A,
                                           const ConstraintSystem &B,
                                           const ConstraintSystem &Ctx) const {
    std::vector<ConstraintSystem> Out;
    ConstraintSystem BGist = B;
    BGist.gist(A); // Only rows that actually cut A produce pieces.
    std::vector<std::vector<BigInt>> Cuts;
    for (unsigned R = 0; R < BGist.ineqs().numRows(); ++R)
      Cuts.push_back(BGist.ineqs().row(R));
    for (unsigned R = 0; R < BGist.eqs().numRows(); ++R) {
      Cuts.push_back(BGist.eqs().row(R));
      std::vector<BigInt> Neg = BGist.eqs().row(R);
      for (BigInt &V : Neg)
        V = -V;
      Cuts.push_back(std::move(Neg));
    }
    ConstraintSystem Prefix = A;
    for (const auto &Cut : Cuts) {
      ConstraintSystem PieceCS = Prefix;
      std::vector<BigInt> Neg(Cut.size());
      for (unsigned I = 0; I < Cut.size(); ++I)
        Neg[I] = -Cut[I];
      Neg[Cut.size() - 1] -= BigInt(1); // not(row >= 0) == -row - 1 >= 0.
      PieceCS.addIneq(std::move(Neg));
      if (PieceCS.normalize() && !emptyInCtx(PieceCS, Ctx))
        Out.push_back(std::move(PieceCS));
      Prefix.addIneq(Cut);
      if (!Prefix.normalize())
        break;
    }
    return Out;
  }

  /// True if Region has no integer point inside the accumulated context.
  bool emptyInCtx(const ConstraintSystem &Region,
                  const ConstraintSystem &Ctx) const {
    ConstraintSystem Probe = ConstraintSystem::intersection(Region, Ctx);
    return !Probe.normalize() || Probe.isIntegerEmpty();
  }

  /// Splits the projections of Active statements into disjoint pieces.
  /// Returns std::nullopt if the piece count explodes.
  std::optional<std::vector<Piece>>
  separate(const std::vector<unsigned> &Active,
           const std::vector<ConstraintSystem> &Ps,
           const ConstraintSystem &Ctx) const {
    std::vector<Piece> Pieces;
    for (unsigned I = 0; I < Active.size(); ++I) {
      const ConstraintSystem &P = Ps[I];
      std::vector<Piece> Next;
      std::vector<ConstraintSystem> Carry = {P};
      for (Piece &Existing : Pieces) {
        // Intersection gets statement I too.
        ConstraintSystem Inter =
            ConstraintSystem::intersection(Existing.Region, P);
        if (Inter.normalize() && !emptyInCtx(Inter, Ctx)) {
          Piece PI;
          PI.Region = std::move(Inter);
          PI.Stmts = Existing.Stmts;
          PI.Stmts.push_back(Active[I]);
          Next.push_back(std::move(PI));
        }
        // Existing minus P keeps its statements.
        for (ConstraintSystem &Diff : difference(Existing.Region, P, Ctx)) {
          Piece PD;
          PD.Region = std::move(Diff);
          PD.Stmts = Existing.Stmts;
          Next.push_back(std::move(PD));
        }
        // Carry: parts of P not covered by any existing region.
        std::vector<ConstraintSystem> NewCarry;
        for (ConstraintSystem &C : Carry)
          for (ConstraintSystem &Piece2 :
               difference(C, Existing.Region, Ctx))
            NewCarry.push_back(std::move(Piece2));
        Carry = std::move(NewCarry);
        if (Next.size() + Carry.size() > Opts.MaxPieces)
          return std::nullopt;
      }
      for (ConstraintSystem &C : Carry) {
        if (emptyInCtx(C, Ctx))
          continue;
        Piece PC;
        PC.Region = std::move(C);
        PC.Stmts = {Active[I]};
        Next.push_back(std::move(PC));
      }
      Pieces = std::move(Next);
      if (Pieces.size() > Opts.MaxPieces)
        return std::nullopt;
    }
    return Pieces;
  }

  /// True if every point of A strictly precedes every same-outer-context
  /// point of B along dimension Dim.
  bool strictlyBefore(const ConstraintSystem &A, const ConstraintSystem &B,
                      unsigned Dim) const {
    // Shared outer dims and params; A's Dim stays at Dim, B's moves to a
    // fresh trailing variable. Test emptiness of A && B' && dimA >= dimB.
    unsigned N = D + NP;
    ConstraintSystem CS(N + 1);
    for (unsigned R = 0; R < A.ineqs().numRows(); ++R) {
      std::vector<BigInt> Row = A.ineqs().row(R);
      Row.insert(Row.end() - 1, BigInt(0));
      CS.addIneq(std::move(Row));
    }
    for (unsigned R = 0; R < A.eqs().numRows(); ++R) {
      std::vector<BigInt> Row = A.eqs().row(R);
      Row.insert(Row.end() - 1, BigInt(0));
      CS.addEq(std::move(Row));
    }
    auto moveDim = [&](std::vector<BigInt> Row) {
      Row.insert(Row.end() - 1, Row[Dim]);
      Row[Dim] = BigInt(0);
      return Row;
    };
    for (unsigned R = 0; R < B.ineqs().numRows(); ++R)
      CS.addIneq(moveDim(B.ineqs().row(R)));
    for (unsigned R = 0; R < B.eqs().numRows(); ++R)
      CS.addEq(moveDim(B.eqs().row(R)));
    // dimA - dimB >= 0.
    std::vector<BigInt> Cmp(N + 2, BigInt(0));
    Cmp[Dim] = BigInt(1);
    Cmp[N] = BigInt(-1);
    CS.addIneq(std::move(Cmp));
    return !CS.normalize() || CS.isIntegerEmpty();
  }

  /// Topologically orders pieces along Dim; false if no total order exists.
  bool orderPieces(std::vector<Piece> &Pieces, unsigned Dim) const {
    unsigned N = static_cast<unsigned>(Pieces.size());
    if (N <= 1)
      return true;
    std::vector<std::vector<bool>> Before(N, std::vector<bool>(N, false));
    for (unsigned I = 0; I < N; ++I) {
      for (unsigned J = I + 1; J < N; ++J) {
        bool IJ = strictlyBefore(Pieces[I].Region, Pieces[J].Region, Dim);
        bool JI = strictlyBefore(Pieces[J].Region, Pieces[I].Region, Dim);
        if (!IJ && !JI)
          return false; // Interleaved regions: cannot totally order.
        Before[I][J] = IJ;
        Before[J][I] = JI;
        // Both true means they never share an outer context; leave the
        // stable (insertion) order.
      }
    }
    std::vector<unsigned> Order;
    std::vector<bool> Placed(N, false);
    for (unsigned Step = 0; Step < N; ++Step) {
      int Pick = -1;
      for (unsigned I = 0; I < N && Pick < 0; ++I) {
        if (Placed[I])
          continue;
        bool Ready = true;
        for (unsigned J = 0; J < N; ++J)
          if (!Placed[J] && J != I && Before[J][I] && !Before[I][J])
            Ready = false;
        if (Ready)
          Pick = static_cast<int>(I);
      }
      if (Pick < 0)
        return false; // Cycle (should not happen with disjoint regions).
      Placed[static_cast<unsigned>(Pick)] = true;
      Order.push_back(static_cast<unsigned>(Pick));
    }
    std::vector<Piece> Sorted;
    for (unsigned I : Order)
      Sorted.push_back(std::move(Pieces[I]));
    Pieces = std::move(Sorted);
    return true;
  }

  //===------------------------------------------------------------------===//
  // Recursive generation
  //===------------------------------------------------------------------===//

  CgNodePtr genLevel(unsigned Level, const std::vector<unsigned> &Active,
                     const ConstraintSystem &Ctx) {
    if (!Error.empty() || Active.empty())
      return CgNode::block();
    // One work unit per generated tree node; separation can explode
    // combinatorially, and the Error short-circuit above unwinds the whole
    // recursion once the budget trips.
    if (!budgetCharge()) {
      fail("compile budget exhausted during code generation");
      return CgNode::block();
    }
    if (Level == D)
      return genLeaf(Active, Ctx);
    if (S.Rows[Level].IsScalar)
      return genScalarLevel(Level, Active, Ctx);
    return genLoopLevel(Level, Active, Ctx);
  }

  CgNodePtr genScalarLevel(unsigned Level,
                           const std::vector<unsigned> &Active,
                           const ConstraintSystem &Ctx) {
    // Group by the constant scattering value and emit groups in order.
    std::vector<std::pair<BigInt, unsigned>> Vals;
    for (unsigned St : Active) {
      const IntMatrix &Sc = S.Stmts[St].Scatter;
      for (unsigned C = 0; C + 1 < Sc.numCols(); ++C)
        if (!Sc(Level, C).isZero()) {
          fail("scalar scattering row with non-constant entries");
          return CgNode::block();
        }
      Vals.push_back({Sc(Level, Sc.numCols() - 1), St});
    }
    std::stable_sort(Vals.begin(), Vals.end(),
                     [](const auto &A, const auto &B) {
                       return A.first < B.first;
                     });
    CgNodePtr Block = CgNode::block();
    size_t I = 0;
    while (I < Vals.size()) {
      std::vector<unsigned> Group;
      size_t J = I;
      while (J < Vals.size() && Vals[J].first == Vals[I].first)
        Group.push_back(Vals[J++].second);
      Block->Children.push_back(genLevel(Level + 1, Group, Ctx));
      I = J;
    }
    return Block;
  }

  CgNodePtr genLoopLevel(unsigned Level, const std::vector<unsigned> &Active,
                         const ConstraintSystem &Ctx) {
    // Per-statement projections at this level, simplified against context.
    std::vector<ConstraintSystem> Ps;
    for (unsigned St : Active) {
      ConstraintSystem P = Proj[St][Level + 1];
      P.gist(Ctx);
      Ps.push_back(std::move(P));
    }

    std::optional<std::vector<Piece>> Pieces;
    if (Opts.EnableSeparation) {
      Pieces = separate(Active, Ps, Ctx);
      if (Pieces && !orderPieces(*Pieces, Level))
        Pieces.reset();
    }
    if (!Pieces) {
      count(Counter::CodegenGuardFallbacks);
      return genUnseparatedLoop(Level, Active, Ps, Ctx);
    }

    count(Counter::CodegenPieces, Pieces->size());
    CgNodePtr Block = CgNode::block();
    for (Piece &P : *Pieces) {
      P.Region.gist(Ctx);
      Block->Children.push_back(
          emitLoopForRegion(Level, P.Region, P.Stmts, Ctx));
    }
    return Block;
  }

  /// Fallback: one loop spanning the union of all statements' bounds; the
  /// per-statement constraints re-emerge as leaf guards.
  CgNodePtr genUnseparatedLoop(unsigned Level,
                               const std::vector<unsigned> &Active,
                               const std::vector<ConstraintSystem> &Ps,
                               const ConstraintSystem &Ctx) {
    std::vector<CgExpr> Lbs, Ubs;
    for (const ConstraintSystem &P : Ps) {
      DimBounds B = splitBounds(P, Level);
      std::vector<CgExpr> L, U;
      if (B.HasEq) {
        L.push_back(CgExpr::ceild(
            rowToAffine(B.EqRow, static_cast<int>(Level), BigInt(-1)),
            B.EqRow[Level]));
        U.push_back(CgExpr::floord(
            rowToAffine(B.EqRow, static_cast<int>(Level), BigInt(-1)),
            B.EqRow[Level]));
      }
      for (const auto &Row : B.Lower)
        L.push_back(lowerExpr(Row, Level));
      for (const auto &Row : B.Upper)
        U.push_back(upperExpr(Row, Level));
      if (L.empty() || U.empty()) {
        fail("unbounded loop dimension " + CName[Level]);
        return CgNode::block();
      }
      Lbs.push_back(CgExpr::makeMax(std::move(L)));
      Ubs.push_back(CgExpr::makeMin(std::move(U)));
    }
    CgNodePtr Loop = CgNode::loop(CName[Level], CgExpr::makeMin(Lbs),
                                  CgExpr::makeMax(Ubs));
    annotateLoop(*Loop, Level);
    Loop->Children.push_back(genLevel(Level + 1, Active, Ctx));
    return Loop;
  }

  void annotateLoop(CgNode &Loop, unsigned Level) const {
    Loop.Parallel = Opts.ParallelPragmaRows.count(Level) != 0;
    Loop.Vector = S.Rows[Level].IsVector && S.Rows[Level].IsParallel;
    if (Loop.Parallel)
      Loop.Reductions = S.Rows[Level].Reductions;
  }

  CgNodePtr emitLoopForRegion(unsigned Level, const ConstraintSystem &Region,
                              const std::vector<unsigned> &Stmts,
                              const ConstraintSystem &Ctx) {
    // Dead-region elimination: a piece can be non-empty on its own yet
    // unreachable under the accumulated context.
    if (emptyInCtx(Region, Ctx))
      return CgNode::block();
    DimBounds B = splitBounds(Region, Level);
    std::vector<CgCond> Conds = condsFromRows(B);

    ConstraintSystem InnerCtx = ConstraintSystem::intersection(Ctx, Region);
    InnerCtx.normalize();

    CgNodePtr Body;
    if (B.HasEq) {
      // Exact assignment with a divisibility guard when the coefficient is
      // not 1: k*c + rest == 0 -> c = (-rest)/k.
      const BigInt &K = B.EqRow[Level];
      CgExpr Value = CgExpr::floord(
          rowToAffine(B.EqRow, static_cast<int>(Level), BigInt(-1)), K);
      if (!K.isOne()) {
        CgCond Div;
        Div.Expr = rowToAffine(B.EqRow, static_cast<int>(Level), BigInt(-1));
        Div.Mod = K;
        Conds.push_back(std::move(Div));
      }
      // Inequalities involving c become guards (after the assignment the
      // variable is defined; emit them inside).
      CgNodePtr Let = CgNode::let(CName[Level], std::move(Value));
      std::vector<CgCond> InnerConds;
      for (const auto &Row : B.Lower) {
        CgCond C;
        C.Expr = rowToAffine(Row, -1, BigInt(1));
        InnerConds.push_back(std::move(C));
      }
      for (const auto &Row : B.Upper) {
        CgCond C;
        C.Expr = rowToAffine(Row, -1, BigInt(1));
        InnerConds.push_back(std::move(C));
      }
      CgNodePtr Inner = genLevel(Level + 1, Stmts, InnerCtx);
      if (!InnerConds.empty()) {
        CgNodePtr Guard = CgNode::guard(std::move(InnerConds));
        Guard->Children.push_back(std::move(Inner));
        Inner = std::move(Guard);
      }
      Let->Children.push_back(std::move(Inner));
      Body = std::move(Let);
    } else {
      std::vector<CgExpr> L, U;
      for (const auto &Row : B.Lower)
        L.push_back(lowerExpr(Row, Level));
      for (const auto &Row : B.Upper)
        U.push_back(upperExpr(Row, Level));
      if (L.empty() || U.empty()) {
        if (std::getenv("PLUTOPP_DEBUG"))
          fprintf(stderr,
                  "[codegen] unbounded %s in region:\n%s--- stmts:%zu\n",
                  CName[Level].c_str(), Region.toString().c_str(),
                  Stmts.size());
        fail("unbounded loop dimension " + CName[Level]);
        return CgNode::block();
      }
      CgNodePtr Loop = CgNode::loop(CName[Level], CgExpr::makeMax(L),
                                    CgExpr::makeMin(U));
      annotateLoop(*Loop, Level);
      Loop->Children.push_back(genLevel(Level + 1, Stmts, InnerCtx));
      Body = std::move(Loop);
    }

    if (Conds.empty())
      return Body;
    CgNodePtr Guard = CgNode::guard(std::move(Conds));
    Guard->Children.push_back(std::move(Body));
    return Guard;
  }

  //===------------------------------------------------------------------===//
  // Leaves: statement guards + iterator recovery
  //===------------------------------------------------------------------===//

  CgNodePtr genLeaf(const std::vector<unsigned> &Active,
                    const ConstraintSystem &Ctx) {
    CgNodePtr Block = CgNode::block();
    for (unsigned St : Active)
      Block->Children.push_back(genStmtLeaf(St, Ctx));
    return Block;
  }

  /// Extended-layout variant of rowToAffine for statement St.
  CgExpr extRowToAffine(unsigned St, const std::vector<BigInt> &Row, int Skip,
                        const BigInt &Scale) const {
    const ScopStmt &Stmt = S.Stmts[St];
    unsigned M = static_cast<unsigned>(Stmt.IterNames.size());
    std::vector<std::pair<std::string, BigInt>> Terms;
    for (unsigned C = 0; C < D + M + NP; ++C) {
      if (static_cast<int>(C) == Skip || Row[C].isZero())
        continue;
      std::string Name;
      if (C < D) {
        assert(!CName[C].empty() && "scalar dim in leaf expression");
        Name = CName[C];
      } else if (C < D + M) {
        Name = Stmt.IterNames[C - D];
      } else {
        Name = S.Prog->ParamNames[C - D - M];
      }
      Terms.push_back({Name, Row[C] * Scale});
    }
    return CgExpr::affine(std::move(Terms), Row[D + M + NP] * Scale);
  }

  CgNodePtr genStmtLeaf(unsigned St, const ConstraintSystem &Ctx) {
    const ScopStmt &Stmt = S.Stmts[St];
    unsigned M = static_cast<unsigned>(Stmt.IterNames.size());

    // Statement guard: whatever of its full projection the context does not
    // already imply (empty in separated code).
    ConstraintSystem Guard = Proj[St][D];
    Guard.gist(Ctx);
    std::vector<CgCond> Conds;
    for (unsigned R = 0; R < Guard.ineqs().numRows(); ++R) {
      CgCond C;
      C.Expr = rowToAffine(Guard.ineqs().row(R), -1, BigInt(1));
      Conds.push_back(std::move(C));
    }
    // (Equality guard rows cannot appear: the projection's equalities over
    // [c|params] are preserved by gist and imply themselves; keep them as
    // paired inequalities if they ever survive.)
    for (unsigned R = 0; R < Guard.eqs().numRows(); ++R) {
      CgCond C1, C2;
      C1.Expr = rowToAffine(Guard.eqs().row(R), -1, BigInt(1));
      C2.Expr = rowToAffine(Guard.eqs().row(R), -1, BigInt(-1));
      Conds.push_back(std::move(C1));
      Conds.push_back(std::move(C2));
    }

    // Iterator recovery: eliminate iterators innermost-out, collecting the
    // bound rows for each before it disappears.
    ConstraintSystem CS = Ext[St];
    // Fold the context in for tighter bounds.
    for (unsigned R = 0; R < Ctx.ineqs().numRows(); ++R) {
      std::vector<BigInt> Row(D + M + NP + 1, BigInt(0));
      const std::vector<BigInt> &Src = Ctx.ineqs().row(R);
      for (unsigned C = 0; C < D; ++C)
        Row[C] = Src[C];
      for (unsigned P = 0; P < NP; ++P)
        Row[D + M + P] = Src[D + P];
      Row[D + M + NP] = Src[D + NP];
      CS.addIneq(std::move(Row));
    }
    CS.normalize();

    struct DimRec {
      std::string Name;
      DimBounds B;
    };
    std::vector<DimRec> Recs(M);
    for (unsigned K = M; K-- > 0;) {
      unsigned Col = D + K;
      DimRec &Rec = Recs[K];
      Rec.Name = Stmt.IterNames[K];
      Rec.B = splitBoundsExt(CS, Col);
      CS.projectOut(Col, 1);
      CS.insertDims(Col, 1);
    }

    // Build the chain outermost-in.
    CgNodePtr Call = CgNode::call(St, {});
    for (unsigned P : Stmt.OrigIterPos)
      Call->Args.push_back(
          CgExpr::affine({{Stmt.IterNames[P], BigInt(1)}}, BigInt(0)));
    CgNodePtr Chain = std::move(Call);
    for (unsigned K = M; K-- > 0;) {
      DimRec &Rec = Recs[K];
      unsigned Col = D + K;
      CgNodePtr Node;
      std::vector<CgCond> DimConds;
      if (Rec.B.HasEq) {
        const BigInt &Coef = Rec.B.EqRow[Col];
        CgExpr Value = CgExpr::floord(
            extRowToAffine(St, Rec.B.EqRow, static_cast<int>(Col),
                           BigInt(-1)),
            Coef);
        if (!Coef.isOne()) {
          CgCond Div;
          Div.Expr = extRowToAffine(St, Rec.B.EqRow, static_cast<int>(Col),
                                    BigInt(-1));
          Div.Mod = Coef;
          DimConds.push_back(std::move(Div));
        }
        Node = CgNode::let(Rec.Name, std::move(Value));
        // Remaining inequality rows on this iterator become guards inside.
        std::vector<CgCond> Inner;
        for (const auto &Row : Rec.B.Lower) {
          CgCond C;
          C.Expr = extRowToAffine(St, Row, -1, BigInt(1));
          Inner.push_back(std::move(C));
        }
        for (const auto &Row : Rec.B.Upper) {
          CgCond C;
          C.Expr = extRowToAffine(St, Row, -1, BigInt(1));
          Inner.push_back(std::move(C));
        }
        if (!Inner.empty()) {
          CgNodePtr G = CgNode::guard(std::move(Inner));
          G->Children.push_back(std::move(Chain));
          Chain = std::move(G);
        }
        Node->Children.push_back(std::move(Chain));
      } else {
        std::vector<CgExpr> L, U;
        for (const auto &Row : Rec.B.Lower)
          L.push_back(CgExpr::ceild(
              extRowToAffine(St, Row, static_cast<int>(Col), BigInt(-1)),
              Row[Col]));
        for (const auto &Row : Rec.B.Upper)
          U.push_back(CgExpr::floord(
              extRowToAffine(St, Row, static_cast<int>(Col), BigInt(1)),
              -Row[Col]));
        if (L.empty() || U.empty()) {
          fail("unbounded statement iterator " + Rec.Name);
          return CgNode::block();
        }
        Node = CgNode::loop(Rec.Name, CgExpr::makeMax(L), CgExpr::makeMin(U));
        Node->Children.push_back(std::move(Chain));
      }
      if (!DimConds.empty()) {
        CgNodePtr G = CgNode::guard(std::move(DimConds));
        G->Children.push_back(std::move(Node));
        Node = std::move(G);
      }
      Chain = std::move(Node);
    }

    if (Conds.empty())
      return Chain;
    CgNodePtr GuardNode = CgNode::guard(std::move(Conds));
    GuardNode->Children.push_back(std::move(Chain));
    return GuardNode;
  }

  /// splitBounds over the extended layout (only rows touching Col are
  /// classified; others are ignored - they surface at their own dims).
  DimBounds splitBoundsExt(const ConstraintSystem &CS, unsigned Col) const {
    DimBounds B;
    for (unsigned R = 0; R < CS.eqs().numRows(); ++R) {
      std::vector<BigInt> Row = CS.eqs().row(R);
      if (Row[Col].isZero())
        continue;
      if (Row[Col].isNegative())
        for (BigInt &V : Row)
          V = -V;
      if (!B.HasEq || Row[Col] < B.EqRow[Col]) {
        B.EqRow = std::move(Row);
        B.HasEq = true;
      }
    }
    if (B.HasEq)
      return B;
    for (unsigned R = 0; R < CS.ineqs().numRows(); ++R) {
      const std::vector<BigInt> &Row = CS.ineqs().row(R);
      if (Row[Col].isZero())
        continue;
      if (Row[Col].isPositive())
        B.Lower.push_back(Row);
      else
        B.Upper.push_back(Row);
    }
    return B;
  }
};

} // namespace

Result<CgNodePtr> pluto::generateAst(const Scop &S,
                                     const CodeGenOptions &Opts) {
  Generator G(S, Opts);
  auto Ast = G.run();
  if (Ast && *Ast)
    dropNestedParallelPragmas(**Ast);
  return Ast;
}
