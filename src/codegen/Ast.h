//===- codegen/Ast.h - Generated loop AST -----------------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop AST produced by the polyhedral code generator ("clast" in CLooG
/// terms): loops with max/min/floord/ceild bounds, guards, exact integer
/// assignments for equality-determined dimensions, and statement calls with
/// reconstructed original-iterator arguments. The same AST is rendered to C
/// (codegen/CEmitter) and executed directly by the interpreter
/// (runtime/Interpreter) for semantics-equivalence testing.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_CODEGEN_AST_H
#define PLUTOPP_CODEGEN_AST_H

#include "ir/Program.h"
#include "support/BigInt.h"

#include <memory>
#include <string>
#include <vector>

namespace pluto {

/// Quasi-affine bound expression: affine terms over named integer variables,
/// optionally floor/ceil-divided, combined with min/max.
struct CgExpr {
  enum class Kind {
    Affine, ///< Terms + ConstTerm.
    Floord, ///< floord(Args[0], Den); Args[0] is Affine.
    Ceild,  ///< ceild(Args[0], Den).
    Min,    ///< min over Args.
    Max,    ///< max over Args.
  };
  Kind K = Kind::Affine;
  std::vector<std::pair<std::string, BigInt>> Terms;
  BigInt ConstTerm;
  BigInt Den;
  std::vector<CgExpr> Args;

  static CgExpr affine(std::vector<std::pair<std::string, BigInt>> Terms,
                       BigInt Const);
  static CgExpr constant(long long V);
  static CgExpr floord(CgExpr Num, BigInt Den);
  static CgExpr ceild(CgExpr Num, BigInt Den);
  static CgExpr makeMin(std::vector<CgExpr> Args);
  static CgExpr makeMax(std::vector<CgExpr> Args);

  /// Renders as a C expression (uses floord/ceild/min/max helper macros).
  std::string toC() const;
};

/// A guard condition.
struct CgCond {
  /// Expr >= 0 when Mod == 0; otherwise Expr % Mod == 0 (divisibility).
  CgExpr Expr;
  BigInt Mod;

  std::string toC() const;
};

struct CgNode;
using CgNodePtr = std::unique_ptr<CgNode>;

/// One node of the generated loop nest.
struct CgNode {
  enum class Kind {
    Block, ///< Children in sequence.
    Loop,  ///< for (Var = Lb; Var <= Ub; Var++) Children.
    If,    ///< if (Conds...) Children.
    Let,   ///< int Var = Value; (equality-determined dimension).
    Call,  ///< Statement instance: StmtId with Args = original iter values.
  };
  Kind K = Kind::Block;
  std::string Var;
  CgExpr Lb, Ub, Value;
  std::vector<CgCond> Conds;
  unsigned StmtId = 0;
  std::vector<CgExpr> Args;
  /// Loop annotations.
  bool Parallel = false; ///< Emit "#pragma omp parallel for".
  bool Vector = false;   ///< Emit "#pragma omp simd".
  /// Reduction clauses the parallel pragma must carry (loop is parallel
  /// only under them); empty for ordinary parallel loops.
  std::vector<ReductionClause> Reductions;
  std::vector<CgNodePtr> Children;

  static CgNodePtr block();
  static CgNodePtr loop(std::string Var, CgExpr Lb, CgExpr Ub);
  static CgNodePtr guard(std::vector<CgCond> Conds);
  static CgNodePtr let(std::string Var, CgExpr Value);
  static CgNodePtr call(unsigned StmtId, std::vector<CgExpr> Args);
};

/// Cleans up a generated AST: removes Let bindings whose variable is never
/// read (tile supernodes are often fully determined but unused), splices
/// single-child blocks, and drops empty guards/blocks. Purely cosmetic -
/// semantics are unchanged.
void simplifyAst(CgNodePtr &N);

/// Clears the Parallel flag on every loop nested (along its root-to-leaf
/// path) inside another Parallel loop, so at most one "#pragma omp parallel
/// for" appears per nest. The driver requests one pragma row per permutable
/// band; in subtrees where an outer band's row survives as a real loop the
/// inner bands' pragmas would otherwise nest. Loops on disjoint paths (e.g.
/// different pieces of a distributed scalar dimension) keep their pragmas.
void dropNestedParallelPragmas(CgNode &N);

} // namespace pluto

#endif // PLUTOPP_CODEGEN_AST_H
