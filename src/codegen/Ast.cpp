//===- codegen/Ast.cpp - Generated loop AST -------------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"

#include <set>

using namespace pluto;

CgExpr CgExpr::affine(std::vector<std::pair<std::string, BigInt>> Terms,
                      BigInt Const) {
  CgExpr E;
  E.K = Kind::Affine;
  // Drop zero terms for readability.
  for (auto &T : Terms)
    if (!T.second.isZero())
      E.Terms.push_back(std::move(T));
  E.ConstTerm = std::move(Const);
  return E;
}

CgExpr CgExpr::constant(long long V) { return affine({}, BigInt(V)); }

CgExpr CgExpr::floord(CgExpr Num, BigInt Den) {
  assert(Den.isPositive() && "floord denominator must be positive");
  if (Den.isOne())
    return Num;
  CgExpr E;
  E.K = Kind::Floord;
  E.Den = std::move(Den);
  E.Args.push_back(std::move(Num));
  return E;
}

CgExpr CgExpr::ceild(CgExpr Num, BigInt Den) {
  assert(Den.isPositive() && "ceild denominator must be positive");
  if (Den.isOne())
    return Num;
  CgExpr E;
  E.K = Kind::Ceild;
  E.Den = std::move(Den);
  E.Args.push_back(std::move(Num));
  return E;
}

CgExpr CgExpr::makeMin(std::vector<CgExpr> Args) {
  assert(!Args.empty() && "min of nothing");
  if (Args.size() == 1)
    return std::move(Args[0]);
  CgExpr E;
  E.K = Kind::Min;
  E.Args = std::move(Args);
  return E;
}

CgExpr CgExpr::makeMax(std::vector<CgExpr> Args) {
  assert(!Args.empty() && "max of nothing");
  if (Args.size() == 1)
    return std::move(Args[0]);
  CgExpr E;
  E.K = Kind::Max;
  E.Args = std::move(Args);
  return E;
}

std::string CgExpr::toC() const {
  switch (K) {
  case Kind::Affine: {
    if (Terms.empty())
      return ConstTerm.toString();
    std::string S;
    bool First = true;
    for (const auto &[Name, Coef] : Terms) {
      if (Coef.isOne())
        S += First ? Name : " + " + Name;
      else if (Coef.isMinusOne())
        S += First ? "-" + Name : " - " + Name;
      else if (Coef.isPositive())
        S += (First ? "" : " + ") + Coef.toString() + "*" + Name;
      else
        S += (First ? "-" : " - ") + (-Coef).toString() + "*" + Name;
      First = false;
    }
    if (ConstTerm.isPositive())
      S += " + " + ConstTerm.toString();
    else if (ConstTerm.isNegative())
      S += " - " + (-ConstTerm).toString();
    return S;
  }
  case Kind::Floord:
    return "floord(" + Args[0].toC() + ", " + Den.toString() + ")";
  case Kind::Ceild:
    return "ceild(" + Args[0].toC() + ", " + Den.toString() + ")";
  case Kind::Min:
  case Kind::Max: {
    // Nest binary min/max macros.
    const char *F = K == Kind::Min ? "min" : "max";
    std::string S = Args[0].toC();
    for (size_t I = 1; I < Args.size(); ++I)
      S = std::string(F) + "(" + S + ", " + Args[I].toC() + ")";
    return S;
  }
  }
  return "<?>";
}

std::string CgCond::toC() const {
  if (Mod.isZero())
    return "(" + Expr.toC() + ") >= 0";
  // C's % yields 0 for exact divisibility regardless of sign.
  return "(" + Expr.toC() + ") % " + Mod.toString() + " == 0";
}

CgNodePtr CgNode::block() {
  auto N = std::make_unique<CgNode>();
  N->K = Kind::Block;
  return N;
}

CgNodePtr CgNode::loop(std::string Var, CgExpr Lb, CgExpr Ub) {
  auto N = std::make_unique<CgNode>();
  N->K = Kind::Loop;
  N->Var = std::move(Var);
  N->Lb = std::move(Lb);
  N->Ub = std::move(Ub);
  return N;
}

CgNodePtr CgNode::guard(std::vector<CgCond> Conds) {
  auto N = std::make_unique<CgNode>();
  N->K = Kind::If;
  N->Conds = std::move(Conds);
  return N;
}

CgNodePtr CgNode::let(std::string Var, CgExpr Value) {
  auto N = std::make_unique<CgNode>();
  N->K = Kind::Let;
  N->Var = std::move(Var);
  N->Value = std::move(Value);
  return N;
}

CgNodePtr CgNode::call(unsigned StmtId, std::vector<CgExpr> Args) {
  auto N = std::make_unique<CgNode>();
  N->K = Kind::Call;
  N->StmtId = StmtId;
  N->Args = std::move(Args);
  return N;
}

namespace {

void collectUses(const CgExpr &E, std::set<std::string> &Used) {
  for (const auto &[Name, Coef] : E.Terms)
    Used.insert(Name);
  for (const CgExpr &A : E.Args)
    collectUses(A, Used);
}

void collectUses(const CgNode &N, std::set<std::string> &Used) {
  collectUses(N.Lb, Used);
  collectUses(N.Ub, Used);
  collectUses(N.Value, Used);
  for (const CgCond &C : N.Conds)
    collectUses(C.Expr, Used);
  for (const CgExpr &A : N.Args)
    collectUses(A, Used);
  for (const CgNodePtr &C : N.Children)
    collectUses(*C, Used);
}

/// True if the subtree contains at least one statement call.
bool hasCall(const CgNode &N) {
  if (N.K == CgNode::Kind::Call)
    return true;
  for (const CgNodePtr &C : N.Children)
    if (hasCall(*C))
      return true;
  return false;
}

} // namespace

void pluto::simplifyAst(CgNodePtr &N) {
  if (!N)
    return;
  for (CgNodePtr &C : N->Children)
    simplifyAst(C);
  // Drop empty children.
  std::vector<CgNodePtr> Kept;
  for (CgNodePtr &C : N->Children) {
    if (!C)
      continue;
    if (C->K != CgNode::Kind::Call && !hasCall(*C))
      continue;
    Kept.push_back(std::move(C));
  }
  N->Children = std::move(Kept);
  // Splice nested blocks.
  if (N->K == CgNode::Kind::Block) {
    std::vector<CgNodePtr> Flat;
    for (CgNodePtr &C : N->Children) {
      if (C->K == CgNode::Kind::Block) {
        for (CgNodePtr &G : C->Children)
          Flat.push_back(std::move(G));
      } else {
        Flat.push_back(std::move(C));
      }
    }
    N->Children = std::move(Flat);
  }
  // Dead Let: variable never read below.
  if (N->K == CgNode::Kind::Let) {
    std::set<std::string> Used;
    for (const CgNodePtr &C : N->Children)
      collectUses(*C, Used);
    if (!Used.count(N->Var)) {
      // Replace by a block of the children.
      CgNodePtr B = CgNode::block();
      B->Children = std::move(N->Children);
      N = std::move(B);
      simplifyAst(N);
      return;
    }
  }
  // Guard with no conditions: splice.
  if (N->K == CgNode::Kind::If && N->Conds.empty()) {
    CgNodePtr B = CgNode::block();
    B->Children = std::move(N->Children);
    N = std::move(B);
    return;
  }
  // Single-child block collapses to the child.
  if (N->K == CgNode::Kind::Block && N->Children.size() == 1)
    N = std::move(N->Children[0]);
}

static void dropNestedParallel(CgNode &N, bool InsideParallel) {
  if (N.K == CgNode::Kind::Loop && N.Parallel) {
    if (InsideParallel)
      N.Parallel = false;
    else
      InsideParallel = true;
  }
  for (const CgNodePtr &C : N.Children)
    if (C)
      dropNestedParallel(*C, InsideParallel);
}

void pluto::dropNestedParallelPragmas(CgNode &N) {
  dropNestedParallel(N, /*InsideParallel=*/false);
}
