//===- codegen/CEmitter.h - OpenMP C source emission ------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the generated loop AST as a complete, compilable C99/OpenMP
/// translation unit: helper macros (floord/ceild/min/max), one statement
/// macro per statement (paper Figure 3(d) style), and a single extern
/// function whose signature is
///   void <name>(double *A0, ..., long long P0, ..., double C0, ...)
/// with the arrays in Program::Arrays order (multi-dimensional arrays are
/// reconstituted with C99 variable-length-array casts from caller-supplied
/// extent expressions), the integer parameters in ParamNames order, and the
/// opaque double constants (SymConsts) last.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_CODEGEN_CEMITTER_H
#define PLUTOPP_CODEGEN_CEMITTER_H

#include "codegen/Ast.h"
#include "ir/Program.h"

#include <map>
#include <string>
#include <vector>

namespace pluto {

struct EmitOptions {
  std::string FunctionName = "kernel";
  /// Extent expressions (in the integer parameters) per array, outermost
  /// dimension first; required for every array of rank >= 2, and for rank-1
  /// arrays only documentation. E.g. {"a", {"N", "N"}}.
  std::map<std::string, std::vector<std::string>> Extents;
  /// Names of opaque double-valued constants (frontend SymConsts).
  std::vector<std::string> SymConsts;
  /// Emit OpenMP pragmas (parallel loops must also be flagged in the AST).
  bool OpenMP = true;
};

/// Renders a full C translation unit executing Root over Prog's statements.
std::string emitC(const Program &Prog, const CgNode &Root,
                  const EmitOptions &Opts);

/// Renders only the loop nest (for tests / human inspection).
std::string emitLoopNest(const Program &Prog, const CgNode &Root,
                         bool OpenMP = true);

} // namespace pluto

#endif // PLUTOPP_CODEGEN_CEMITTER_H
