//===- parser/Diagnostics.cpp - Structured frontend diagnostics -----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "parser/Diagnostics.h"

using namespace pluto;

std::string Diagnostic::toString() const {
  return "line " + std::to_string(Line) + ", col " + std::to_string(Col) +
         ": " + (Sev == Severity::Error ? "error: " : "warning: ") + Message;
}

bool pluto::hasErrors(const std::vector<Diagnostic> &Diags) {
  return errorCount(Diags) != 0;
}

unsigned pluto::errorCount(const std::vector<Diagnostic> &Diags) {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Severity::Error;
  return N;
}

std::string pluto::joinDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += "\n";
    Out += D.toString();
  }
  return Out;
}

/// Extracts 1-based line Line of Source; CR, LF and CRLF all end a line.
/// Returns false when Source has fewer lines.
static bool sourceLine(const std::string &Source, unsigned Line,
                       std::string &Out) {
  unsigned Cur = 1;
  Out.clear();
  for (size_t I = 0; I < Source.size(); ++I) {
    char C = Source[I];
    if (C == '\r' || C == '\n') {
      if (C == '\r' && I + 1 < Source.size() && Source[I + 1] == '\n')
        ++I;
      if (Cur == Line)
        return true;
      ++Cur;
      continue;
    }
    if (Cur == Line)
      Out += C;
  }
  return Cur == Line; // Last line may lack a terminator.
}

std::string pluto::renderSnippet(const std::string &Source,
                                 const Diagnostic &D) {
  std::string Text;
  if (D.Line == 0 || !sourceLine(Source, D.Line, Text))
    return std::string();
  // Columns count characters, so the caret line aligns only if every
  // character renders one column wide: expand tabs to a single space.
  for (char &C : Text)
    if (C == '\t')
      C = ' ';
  unsigned Col = D.Col == 0 ? 1 : D.Col;
  unsigned Len = D.Len == 0 ? 1 : D.Len;
  std::string Caret(Col - 1, ' ');
  Caret.append(Len, '^');
  return "  " + Text + "\n  " + Caret + "\n";
}

std::string pluto::renderDiagnostics(const std::string &Source,
                                     const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.toString();
    Out += "\n";
    Out += renderSnippet(Source, D);
  }
  return Out;
}
