//===- parser/Lexer.cpp - Tokenizer for the restricted-C frontend ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace pluto;

std::vector<Token> pluto::tokenize(const std::string &Source,
                                   std::string &Error) {
  std::vector<Token> Tokens;
  Error.clear();
  unsigned Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto advance = [&](size_t Count) {
    for (size_t K = 0; K < Count && I < N; ++K, ++I) {
      if (Source[I] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
  };
  auto push = [&](Token::Kind K, std::string Text, unsigned L, unsigned C) {
    Token T;
    T.K = K;
    T.Text = std::move(Text);
    T.Line = L;
    T.Col = C;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance(1);
      continue;
    }
    // Line comments, block comments and #pragma / preprocessor lines.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        advance(1);
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      advance(2);
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/'))
        advance(1);
      advance(2);
      continue;
    }
    if (C == '#') {
      while (I < N && Source[I] != '\n')
        advance(1);
      continue;
    }
    unsigned TLine = Line, TCol = Col;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t S = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        advance(1);
      push(Token::Kind::Ident, Source.substr(S, I - S), TLine, TCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t S = I;
      bool IsFloat = false;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.' || Source[I] == 'e' ||
                       Source[I] == 'E' ||
                       ((Source[I] == '+' || Source[I] == '-') && I > S &&
                        (Source[I - 1] == 'e' || Source[I - 1] == 'E')))) {
        if (Source[I] == '.' || Source[I] == 'e' || Source[I] == 'E')
          IsFloat = true;
        advance(1);
      }
      // Trailing float suffix (f/F/l/L).
      if (I < N && (Source[I] == 'f' || Source[I] == 'F' ||
                    Source[I] == 'l' || Source[I] == 'L')) {
        IsFloat = true;
        advance(1);
      }
      push(IsFloat ? Token::Kind::FloatLit : Token::Kind::IntLit,
           Source.substr(S, I - S), TLine, TCol);
      continue;
    }
    // Multi-character punctuation, longest match first.
    static const char *TwoChar[] = {"<=", ">=", "==", "!=", "++", "--",
                                    "+=", "-=", "*=", "/=", "&&", "||"};
    bool Matched = false;
    if (I + 1 < N) {
      std::string Two = Source.substr(I, 2);
      for (const char *P : TwoChar) {
        if (Two == P) {
          push(Token::Kind::Punct, Two, TLine, TCol);
          advance(2);
          Matched = true;
          break;
        }
      }
    }
    if (Matched)
      continue;
    static const std::string OneChar = "()[]{};,=+-*/%<>!&|?:.";
    if (OneChar.find(C) != std::string::npos) {
      push(Token::Kind::Punct, std::string(1, C), TLine, TCol);
      advance(1);
      continue;
    }
    Error = "line " + std::to_string(Line) + ": unexpected character '" +
            std::string(1, C) + "'";
    break;
  }
  push(Token::Kind::End, "", Line, Col);
  return Tokens;
}
