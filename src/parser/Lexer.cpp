//===- parser/Lexer.cpp - Tokenizer for the restricted-C frontend ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace pluto;

std::vector<Token> pluto::tokenize(const std::string &Source,
                                   std::vector<Diagnostic> &Diags) {
  std::vector<Token> Tokens;
  unsigned Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto advance = [&](size_t Count) {
    for (size_t K = 0; K < Count && I < N; ++K, ++I) {
      char C = Source[I];
      if (C == '\n') {
        ++Line;
        Col = 1;
      } else if (C == '\r') {
        // CRLF: the CR occupies no column, the LF ends the line. A lone CR
        // (classic-Mac line ending) ends the line itself.
        if (I + 1 >= N || Source[I + 1] != '\n') {
          ++Line;
          Col = 1;
        }
      } else {
        // Character-based columns: a tab is one column, like any other
        // character (diagnostic rendering expands tabs to single spaces so
        // carets still line up).
        ++Col;
      }
    }
  };
  auto push = [&](Token::Kind K, std::string Text, unsigned L, unsigned C) {
    Token T;
    T.K = K;
    T.Text = std::move(Text);
    T.Line = L;
    T.Col = C;
    Tokens.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance(1);
      continue;
    }
    // Line comments, block comments and #pragma / preprocessor lines.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n' && Source[I] != '\r')
        advance(1);
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      advance(2);
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/'))
        advance(1);
      advance(2);
      continue;
    }
    if (C == '#') {
      while (I < N && Source[I] != '\n' && Source[I] != '\r')
        advance(1);
      continue;
    }
    unsigned TLine = Line, TCol = Col;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t S = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        advance(1);
      push(Token::Kind::Ident, Source.substr(S, I - S), TLine, TCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t S = I;
      bool IsFloat = false;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.' || Source[I] == 'e' ||
                       Source[I] == 'E' ||
                       ((Source[I] == '+' || Source[I] == '-') && I > S &&
                        (Source[I - 1] == 'e' || Source[I - 1] == 'E')))) {
        if (Source[I] == '.' || Source[I] == 'e' || Source[I] == 'E')
          IsFloat = true;
        advance(1);
      }
      // Trailing float suffix (f/F/l/L).
      if (I < N && (Source[I] == 'f' || Source[I] == 'F' ||
                    Source[I] == 'l' || Source[I] == 'L')) {
        IsFloat = true;
        advance(1);
      }
      push(IsFloat ? Token::Kind::FloatLit : Token::Kind::IntLit,
           Source.substr(S, I - S), TLine, TCol);
      continue;
    }
    // Multi-character punctuation, longest match first.
    static const char *TwoChar[] = {"<=", ">=", "==", "!=", "++", "--",
                                    "+=", "-=", "*=", "/=", "&&", "||"};
    bool Matched = false;
    if (I + 1 < N) {
      std::string Two = Source.substr(I, 2);
      for (const char *P : TwoChar) {
        if (Two == P) {
          push(Token::Kind::Punct, Two, TLine, TCol);
          advance(2);
          Matched = true;
          break;
        }
      }
    }
    if (Matched)
      continue;
    static const std::string OneChar = "()[]{};,=+-*/%<>!&|?:.";
    if (OneChar.find(C) != std::string::npos) {
      push(Token::Kind::Punct, std::string(1, C), TLine, TCol);
      advance(1);
      continue;
    }
    // Invalid character: report with the exact span and keep going, so one
    // pass surfaces every bad byte of the input.
    Diagnostic D;
    D.Line = Line;
    D.Col = Col;
    D.Len = 1;
    D.Message = "unexpected character '" + std::string(1, C) + "'";
    Diags.push_back(std::move(D));
    advance(1);
  }
  push(Token::Kind::End, "", Line, Col);
  return Tokens;
}

std::vector<Token> pluto::tokenize(const std::string &Source,
                                   std::string &Error) {
  std::vector<Diagnostic> Diags;
  std::vector<Token> Tokens = tokenize(Source, Diags);
  Error = Diags.empty() ? std::string() : Diags.front().toString();
  return Tokens;
}

