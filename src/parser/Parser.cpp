//===- parser/Parser.cpp - Restricted-C frontend --------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// Error handling: every problem is recorded as a Diagnostic with the
// offending token's line:column span. The parser recovers at statement and
// loop boundaries (synchronize() skips to the next ';', 'for' or block
// edge), and the lowerer accumulates every semantic error, so one pass over
// a broken input reports all of its problems.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "support/Budget.h"

#include <algorithm>
#include <memory>
#include <set>

using namespace pluto;

namespace {

/// Hard cap on reported errors: past this the input is garbage and more
/// messages only bury the signal.
constexpr unsigned MaxErrors = 20;

//===----------------------------------------------------------------------===//
// Phase 1: syntax tree
//===----------------------------------------------------------------------===//

struct SynLoop;

struct SynStmt {
  ExprPtr Lhs;
  std::string AsgnOp;
  ExprPtr Rhs;
  std::string Text;
  unsigned Line = 0;
  unsigned Col = 1;
};

/// Either a nested loop or a statement.
struct SynItem {
  std::unique_ptr<SynLoop> Loop; // Exactly one of Loop/Stmt is set.
  std::unique_ptr<SynStmt> Stmt;
};

struct SynLoop {
  std::string Iter;
  std::vector<ExprPtr> Lbs; ///< Iter >= each of these.
  std::vector<ExprPtr> Ubs; ///< Iter <= each of these.
  std::vector<SynItem> Body;
  unsigned Line = 0;
  unsigned Col = 1;
};

bool isTypeKeyword(const std::string &S) {
  static const std::set<std::string> Keywords = {
      "int",   "double", "float",    "long", "short",   "char",
      "const", "static", "register", "void", "unsigned", "signed"};
  return Keywords.count(S) != 0;
}

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diagnostic> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::vector<SynItem> parseTopLevel() {
    std::vector<SynItem> Items;
    while (!cur().is(Token::Kind::End)) {
      // One work unit per top-level item; when the compile budget trips,
      // stop consuming input (the stage driver classifies the truncation
      // as resource-exhausted, so the partial item list is never used).
      if (!budgetCharge())
        break;
      if (errorCount(Diags) >= MaxErrors) {
        Diagnostic D;
        D.Line = cur().Line;
        D.Col = cur().Col;
        D.Message = "too many errors; giving up on the rest of the input";
        Diags.push_back(std::move(D));
        break;
      }
      size_t Before = Pos;
      auto Item = parseItem();
      if (!Item) {
        synchronize(Before);
        continue;
      }
      if (Item->Loop || Item->Stmt)
        Items.push_back(std::move(*Item));
    }
    return Items;
  }

private:
  std::vector<Token> Tokens;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;

  const Token &cur() const { return Tokens[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    return Tokens[std::min(Pos + Ahead, Tokens.size() - 1)];
  }
  void advance() {
    if (Pos + 1 < Tokens.size())
      ++Pos;
  }

  /// Records an error diagnostic spanning the current token.
  Err fail(const std::string &Msg) {
    Diagnostic D;
    D.Line = cur().Line;
    D.Col = cur().Col;
    D.Len = cur().Text.empty()
                ? 1
                : static_cast<unsigned>(cur().Text.size());
    D.Message =
        Msg + (cur().Text.empty() ? "" : " (at '" + cur().Text + "')");
    Diags.push_back(D);
    return Err(D.toString());
  }

  bool expectPunct(const char *P) {
    if (cur().isPunct(P)) {
      advance();
      return true;
    }
    fail("expected '" + std::string(P) + "'" +
         (cur().Text.empty() ? "" : " before"));
    // fail() appended "(at 'tok')"; reword into the traditional "expected
    // ';' before 'x'" by fixing up the message we just pushed.
    Diagnostic &D = Diags.back();
    D.Message = "expected '" + std::string(P) + "'" +
                (cur().Text.empty() ? " before end of input"
                                    : " before '" + cur().Text + "'");
    return false;
  }

  /// Skips to a plausible recovery point: just past the next ';' (skipping
  /// over balanced braces entered along the way), or right before a '}',
  /// 'for' or end-of-input at the current nesting level. Always makes
  /// progress: a token stream position that did not move since Before (a
  /// stray '}' at top level, say) is force-advanced by one token.
  void synchronize(size_t Before) {
    unsigned Depth = 0;
    while (!cur().is(Token::Kind::End)) {
      if (cur().isPunct("{")) {
        advance();
        ++Depth;
        continue;
      }
      if (cur().isPunct("}")) {
        if (Depth == 0)
          break; // Enclosing block's closer: let the caller see it.
        advance();
        if (--Depth == 0)
          break; // Skipped a whole block (a broken loop's body).
        continue;
      }
      if (Depth == 0) {
        if (cur().isPunct(";")) {
          advance();
          break;
        }
        if (cur().isIdent("for"))
          break;
      }
      advance();
    }
    if (Pos == Before && !cur().is(Token::Kind::End))
      advance();
  }

  /// Parses one item: loop, declaration (skipped, returns empty item) or
  /// assignment statement.
  Result<SynItem> parseItem() {
    SynItem Item;
    // Every loop/statement/declaration is one work unit, so deeply nested
    // inputs charge at every level, not once per top-level item.
    if (!budgetCharge())
      return fail("compile budget exhausted while parsing");
    if (cur().isIdent("for")) {
      auto L = parseLoop();
      if (!L)
        return Err(L.error());
      Item.Loop = std::move(*L);
      return Item;
    }
    if (cur().is(Token::Kind::Ident) && isTypeKeyword(cur().Text)) {
      // Declaration: skip to ';'.
      while (!cur().is(Token::Kind::End) && !cur().isPunct(";"))
        advance();
      if (cur().isPunct(";"))
        advance();
      return Item;
    }
    if (cur().isPunct(";")) { // Stray semicolon.
      advance();
      return Item;
    }
    if (cur().isIdent("if") || cur().isIdent("while"))
      return fail("control flow other than affine 'for' loops is not "
                  "supported by the polyhedral frontend");
    auto S = parseStmt();
    if (!S)
      return Err(S.error());
    Item.Stmt = std::move(*S);
    return Item;
  }

  Result<std::unique_ptr<SynLoop>> parseLoop() {
    auto Loop = std::make_unique<SynLoop>();
    Loop->Line = cur().Line;
    Loop->Col = cur().Col;
    advance(); // 'for'
    if (!expectPunct("("))
      return Err(std::string());
    if (!cur().is(Token::Kind::Ident))
      return fail("expected loop iterator name");
    Loop->Iter = cur().Text;
    advance();
    if (!expectPunct("="))
      return Err(std::string());
    auto Lb = parseExpr();
    if (!Lb)
      return Err(Lb.error());
    // max(a, b, ...) lower bound splits into several affine bounds.
    if ((*Lb)->K == Expr::Kind::Call && (*Lb)->Name == "max")
      Loop->Lbs = (*Lb)->Args;
    else
      Loop->Lbs.push_back(*Lb);
    if (!expectPunct(";"))
      return Err(std::string());
    if (!cur().is(Token::Kind::Ident) || cur().Text != Loop->Iter)
      return fail("loop condition must test the loop iterator '" +
                  Loop->Iter + "'");
    advance();
    bool Strict;
    if (cur().isPunct("<="))
      Strict = false;
    else if (cur().isPunct("<"))
      Strict = true;
    else
      return fail("only ascending loops with '<' or '<=' are supported");
    advance();
    auto Ub = parseExpr();
    if (!Ub)
      return Err(Ub.error());
    std::vector<ExprPtr> Ubs;
    if ((*Ub)->K == Expr::Kind::Call && (*Ub)->Name == "min")
      Ubs = (*Ub)->Args;
    else
      Ubs.push_back(*Ub);
    for (ExprPtr &U : Ubs)
      Loop->Ubs.push_back(Strict ? Expr::binary("-", U, Expr::intLit(1)) : U);
    if (!expectPunct(";"))
      return Err(std::string());
    if (!parseIncrement(Loop->Iter))
      return fail("loop increment must be a unit step on '" + Loop->Iter +
                  "'");
    if (!expectPunct(")"))
      return Err(std::string());
    // Body: block or single item. Broken items inside a block recover at
    // statement boundaries, so every problem in the body is reported while
    // the block structure (and everything after it) survives.
    if (cur().isPunct("{")) {
      advance();
      while (!cur().isPunct("}")) {
        if (cur().is(Token::Kind::End))
          return fail("unterminated loop body");
        if (errorCount(Diags) >= MaxErrors)
          return Err(std::string());
        size_t Before = Pos;
        auto Item = parseItem();
        if (!Item) {
          synchronize(Before);
          continue;
        }
        if (Item->Loop || Item->Stmt)
          Loop->Body.push_back(std::move(*Item));
      }
      advance(); // '}'
    } else {
      auto Item = parseItem();
      if (!Item)
        return Err(Item.error());
      if (Item->Loop || Item->Stmt)
        Loop->Body.push_back(std::move(*Item));
    }
    return std::move(Loop);
  }

  /// Accepts i++, ++i, i += 1, i = i + 1.
  bool parseIncrement(const std::string &Iter) {
    if (cur().isPunct("++") && peek().isIdent(Iter.c_str())) {
      advance();
      advance();
      return true;
    }
    if (cur().isIdent(Iter.c_str())) {
      advance();
      if (cur().isPunct("++")) {
        advance();
        return true;
      }
      if (cur().isPunct("+=") && peek().is(Token::Kind::IntLit) &&
          peek().Text == "1") {
        advance();
        advance();
        return true;
      }
      if (cur().isPunct("=") && peek().isIdent(Iter.c_str()) &&
          peek(2).isPunct("+") && peek(3).is(Token::Kind::IntLit) &&
          peek(3).Text == "1") {
        advance();
        advance();
        advance();
        advance();
        return true;
      }
    }
    return false;
  }

  Result<std::unique_ptr<SynStmt>> parseStmt() {
    auto Stmt = std::make_unique<SynStmt>();
    Stmt->Line = cur().Line;
    Stmt->Col = cur().Col;
    size_t StartTok = Pos;
    auto Lhs = parsePrimary();
    if (!Lhs)
      return Err(Lhs.error());
    if ((*Lhs)->K != Expr::Kind::Var && (*Lhs)->K != Expr::Kind::ArrayRef)
      return fail("assignment target must be a scalar or array reference");
    Stmt->Lhs = *Lhs;
    if (cur().isPunct("=") || cur().isPunct("+=") || cur().isPunct("-=") ||
        cur().isPunct("*=")) {
      Stmt->AsgnOp = cur().Text;
      advance();
    } else {
      return fail("expected assignment operator");
    }
    auto Rhs = parseExpr();
    if (!Rhs)
      return Err(Rhs.error());
    Stmt->Rhs = *Rhs;
    if (!expectPunct(";"))
      return Err(std::string());
    // Reconstruct the statement text from the token spellings.
    std::string Text;
    for (size_t T = StartTok; T + 1 < Pos; ++T) {
      if (!Text.empty() && Tokens[T].is(Token::Kind::Ident) &&
          Tokens[T - 1].is(Token::Kind::Ident))
        Text += " ";
      Text += Tokens[T].Text;
    }
    Stmt->Text = Text + ";";
    return std::move(Stmt);
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  Result<ExprPtr> parseExpr() { return parseAdditive(); }

  Result<ExprPtr> parseAdditive() {
    auto L = parseMultiplicative();
    if (!L)
      return L;
    while (cur().isPunct("+") || cur().isPunct("-")) {
      std::string Op = cur().Text;
      advance();
      auto R = parseMultiplicative();
      if (!R)
        return R;
      L = Expr::binary(Op, *L, *R);
    }
    return L;
  }

  Result<ExprPtr> parseMultiplicative() {
    auto L = parseUnary();
    if (!L)
      return L;
    while (cur().isPunct("*") || cur().isPunct("/") || cur().isPunct("%")) {
      std::string Op = cur().Text;
      advance();
      auto R = parseUnary();
      if (!R)
        return R;
      L = Expr::binary(Op, *L, *R);
    }
    return L;
  }

  Result<ExprPtr> parseUnary() {
    if (cur().isPunct("-") || cur().isPunct("+")) {
      std::string Op = cur().Text;
      advance();
      auto E = parseUnary();
      if (!E)
        return E;
      return Expr::unary(Op, *E);
    }
    return parsePrimary();
  }

  Result<ExprPtr> parsePrimary() {
    if (cur().is(Token::Kind::IntLit)) {
      long long V = std::stoll(cur().Text);
      advance();
      return Expr::intLit(V);
    }
    if (cur().is(Token::Kind::FloatLit)) {
      std::string T = cur().Text;
      advance();
      return Expr::floatLit(T);
    }
    if (cur().isPunct("(")) {
      advance();
      auto E = parseExpr();
      if (!E)
        return E;
      if (!expectPunct(")"))
        return Err(std::string());
      return E;
    }
    if (cur().is(Token::Kind::Ident)) {
      std::string Name = cur().Text;
      advance();
      if (cur().isPunct("(")) {
        advance();
        std::vector<ExprPtr> Args;
        if (!cur().isPunct(")")) {
          for (;;) {
            auto A = parseExpr();
            if (!A)
              return A;
            Args.push_back(*A);
            if (cur().isPunct(",")) {
              advance();
              continue;
            }
            break;
          }
        }
        if (!expectPunct(")"))
          return Err(std::string());
        return Expr::call(Name, std::move(Args));
      }
      if (cur().isPunct("[")) {
        std::vector<ExprPtr> Subs;
        while (cur().isPunct("[")) {
          advance();
          auto S = parseExpr();
          if (!S)
            return S;
          Subs.push_back(*S);
          if (!expectPunct("]"))
            return Err(std::string());
        }
        return Expr::arrayRef(Name, std::move(Subs));
      }
      return Expr::var(Name);
    }
    return fail("expected expression");
  }
};

//===----------------------------------------------------------------------===//
// Phase 2: lowering to the polyhedral IR
//===----------------------------------------------------------------------===//

class Lowerer {
public:
  explicit Lowerer(std::vector<Diagnostic> &Diags) : Diags(Diags) {}

  /// Lowers Items; semantic problems land in Diags (all of them, not just
  /// the first). Returns the program only when no error was recorded.
  std::optional<ParsedProgram> run(const std::vector<SynItem> &Items) {
    unsigned ErrorsBefore = errorCount(Diags);
    classify(Items);

    Out.Prog.ParamNames = Params;
    Out.Prog.Context = ConstraintSystem(Out.Prog.numParams());
    Out.SymConsts = SymConsts;

    std::vector<const SynLoop *> LoopStack;
    std::vector<unsigned> PosStack;
    walk(Items, LoopStack, PosStack);
    if (Out.Prog.Stmts.empty() && errorCount(Diags) == ErrorsBefore)
      error(1, 1, "no statements found in region");
    if (errorCount(Diags) != ErrorsBefore)
      return std::nullopt;

    for (const auto &Name : ArrayNames) {
      ArrayInfo AI;
      AI.Name = Name;
      AI.Rank = ArrayRank.at(Name);
      AI.IsWritten = WrittenArrays.count(Name) != 0;
      Out.Prog.Arrays.push_back(std::move(AI));
    }
    return std::move(Out);
  }

private:
  ParsedProgram Out;
  std::vector<Diagnostic> &Diags;

  std::vector<std::string> ArrayNames; ///< In first-appearance order.
  std::map<std::string, unsigned> ArrayRank;
  std::set<std::string> WrittenArrays;
  std::set<std::string> IterNames;
  std::vector<std::string> Params;    ///< First-appearance order.
  std::vector<std::string> SymConsts; ///< First-appearance order.
  std::set<std::string> ParamSet, SymSet;
  unsigned NextLoopId = 0;

  void error(unsigned Line, unsigned Col, const std::string &Msg) {
    // The classification passes may visit one name several times; identical
    // re-discoveries of one problem collapse into a single diagnostic.
    for (const Diagnostic &D : Diags)
      if (D.Line == Line && D.Col == Col && D.Message == Msg)
        return;
    Diagnostic D;
    D.Line = Line;
    D.Col = Col;
    D.Message = Msg;
    Diags.push_back(std::move(D));
  }

  void noteArray(const std::string &Name, unsigned Rank, unsigned Line,
                 unsigned Col) {
    auto It = ArrayRank.find(Name);
    if (It == ArrayRank.end()) {
      ArrayRank[Name] = Rank;
      ArrayNames.push_back(Name);
      return;
    }
    if (It->second != Rank)
      error(Line, Col, "array '" + Name + "' used with inconsistent rank");
  }

  /// Records names appearing in an affine position (bound or subscript).
  void noteAffineNames(const Expr &E, unsigned Line, unsigned Col) {
    switch (E.K) {
    case Expr::Kind::Var:
      if (!IterNames.count(E.Name) && !ArrayRank.count(E.Name) &&
          ParamSet.insert(E.Name).second)
        Params.push_back(E.Name);
      return;
    case Expr::Kind::ArrayRef:
      error(Line, Col, "array reference inside an affine expression");
      return;
    default:
      for (const ExprPtr &A : E.Args)
        noteAffineNames(*A, Line, Col);
      return;
    }
  }

  /// Records array uses / scalar reads in a body expression.
  void noteBodyNames(const Expr &E, unsigned Line, unsigned Col,
                     bool IsWrite) {
    switch (E.K) {
    case Expr::Kind::Var:
      if (IsWrite) {
        noteArray(E.Name, 0, Line, Col);
        WrittenArrays.insert(E.Name);
      } else if (!IterNames.count(E.Name) && !ArrayRank.count(E.Name) &&
                 !ParamSet.count(E.Name) && SymSet.insert(E.Name).second) {
        SymConsts.push_back(E.Name);
      }
      return;
    case Expr::Kind::ArrayRef:
      noteArray(E.Name, static_cast<unsigned>(E.Args.size()), Line, Col);
      if (IsWrite)
        WrittenArrays.insert(E.Name);
      for (const ExprPtr &S : E.Args)
        noteAffineNames(*S, Line, Col);
      return;
    default:
      for (const ExprPtr &A : E.Args)
        noteBodyNames(*A, Line, Col, /*IsWrite=*/false);
      return;
    }
  }

  /// First pass: classify every name (iterator / array / parameter /
  /// symbolic constant).
  void classify(const std::vector<SynItem> &Items) {
    // Iterators first, then arrays, so bound/subscript names left over
    // become parameters.
    collectIters(Items);
    collectArraysAndScalars(Items);
    collectAffine(Items);
    resolveSymConsts(Items);
  }

  void collectIters(const std::vector<SynItem> &Items) {
    for (const SynItem &It : Items) {
      if (!It.Loop)
        continue;
      IterNames.insert(It.Loop->Iter);
      collectIters(It.Loop->Body);
    }
  }

  void collectArraysAndScalars(const std::vector<SynItem> &Items) {
    for (const SynItem &It : Items) {
      if (It.Loop) {
        collectArraysAndScalars(It.Loop->Body);
        continue;
      }
      const SynStmt &S = *It.Stmt;
      if (S.Lhs->K == Expr::Kind::ArrayRef)
        noteArray(S.Lhs->Name, static_cast<unsigned>(S.Lhs->Args.size()),
                  S.Line, S.Col);
      else
        noteArray(S.Lhs->Name, 0, S.Line, S.Col);
      WrittenArrays.insert(S.Lhs->Name);
      collectArrayRefs(*S.Rhs, S.Line, S.Col);
    }
  }

  void collectArrayRefs(const Expr &E, unsigned Line, unsigned Col) {
    if (E.K == Expr::Kind::ArrayRef)
      noteArray(E.Name, static_cast<unsigned>(E.Args.size()), Line, Col);
    for (const ExprPtr &A : E.Args)
      collectArrayRefs(*A, Line, Col);
  }

  void collectAffine(const std::vector<SynItem> &Items) {
    for (const SynItem &It : Items) {
      if (It.Loop) {
        for (const ExprPtr &B : It.Loop->Lbs)
          noteAffineNames(*B, It.Loop->Line, It.Loop->Col);
        for (const ExprPtr &B : It.Loop->Ubs)
          noteAffineNames(*B, It.Loop->Line, It.Loop->Col);
        collectAffine(It.Loop->Body);
        continue;
      }
      const SynStmt &S = *It.Stmt;
      noteSubscripts(*S.Lhs, S.Line, S.Col);
      noteSubscripts(*S.Rhs, S.Line, S.Col);
    }
  }

  void noteSubscripts(const Expr &E, unsigned Line, unsigned Col) {
    if (E.K == Expr::Kind::ArrayRef) {
      for (const ExprPtr &S : E.Args)
        noteAffineNames(*S, Line, Col);
      return;
    }
    for (const ExprPtr &A : E.Args)
      noteSubscripts(*A, Line, Col);
  }

  void resolveSymConsts(const std::vector<SynItem> &Items) {
    for (const SynItem &It : Items) {
      if (It.Loop) {
        resolveSymConsts(It.Loop->Body);
        continue;
      }
      noteBodyNames(*It.Stmt->Lhs, It.Stmt->Line, It.Stmt->Col,
                    /*IsWrite=*/true);
      noteBodyNames(*It.Stmt->Rhs, It.Stmt->Line, It.Stmt->Col,
                    /*IsWrite=*/false);
    }
  }

  /// Second pass: emit Statement objects with domains and accesses.
  void walk(const std::vector<SynItem> &Items,
            std::vector<const SynLoop *> &LoopStack,
            std::vector<unsigned> &PosStack) {
    unsigned Slot = 0;
    for (const SynItem &It : Items) {
      if (It.Loop) {
        // Every loop consumes a fresh id so common prefixes identify shared
        // nests.
        unsigned LoopId = NextLoopId++;
        PosStack.push_back(Slot++);
        PosStack.push_back(LoopId);
        LoopStack.push_back(It.Loop.get());
        walk(It.Loop->Body, LoopStack, PosStack);
        LoopStack.pop_back();
        PosStack.pop_back();
        PosStack.pop_back();
        continue;
      }
      emitStatement(*It.Stmt, LoopStack, PosStack, Slot++);
    }
  }

  /// Builds the DimMap for a statement: iterators then parameters.
  DimMap dimMapFor(const std::vector<const SynLoop *> &LoopStack) const {
    DimMap M;
    for (unsigned I = 0; I < LoopStack.size(); ++I)
      M[LoopStack[I]->Iter] = I;
    unsigned Base = static_cast<unsigned>(LoopStack.size());
    for (unsigned P = 0; P < Params.size(); ++P)
      M[Params[P]] = Base + P;
    return M;
  }

  void emitStatement(const SynStmt &S,
                     const std::vector<const SynLoop *> &LoopStack,
                     const std::vector<unsigned> &PosStack, unsigned Slot) {
    Statement St;
    St.Id = static_cast<unsigned>(Out.Prog.Stmts.size());
    unsigned NIters = static_cast<unsigned>(LoopStack.size());
    unsigned NParams = static_cast<unsigned>(Params.size());
    unsigned NVars = NIters + NParams;
    DimMap Dims = dimMapFor(LoopStack);

    St.Domain = ConstraintSystem(NVars);
    for (unsigned L = 0; L < NIters; ++L) {
      const SynLoop &Loop = *LoopStack[L];
      St.IterNames.push_back(Loop.Iter);
      for (const ExprPtr &B : Loop.Lbs) {
        auto Row = toAffine(*B, Dims, NVars + 1);
        if (!Row) {
          error(Loop.Line, Loop.Col,
                "non-affine lower bound for loop '" + Loop.Iter + "'");
          return;
        }
        // iter - LB >= 0.
        std::vector<BigInt> C(NVars + 1, BigInt(0));
        for (unsigned I = 0; I <= NVars; ++I)
          C[I] = -(*Row)[I];
        C[L] += BigInt(1);
        St.Domain.addIneq(std::move(C));
      }
      for (const ExprPtr &B : Loop.Ubs) {
        auto Row = toAffine(*B, Dims, NVars + 1);
        if (!Row) {
          error(Loop.Line, Loop.Col,
                "non-affine upper bound for loop '" + Loop.Iter + "'");
          return;
        }
        // UB - iter >= 0.
        std::vector<BigInt> C = *Row;
        C[L] -= BigInt(1);
        St.Domain.addIneq(std::move(C));
      }
    }

    St.Body.Lhs = S.Lhs;
    St.Body.AsgnOp = S.AsgnOp;
    St.Body.Rhs = S.Rhs;
    St.Text = S.Text;
    for (unsigned L = 0; L < NIters; ++L)
      St.LoopPath.push_back(PosStack[2 * L + 1]);
    St.PosVec = PosStack;
    St.PosVec.push_back(Slot);

    // Accesses: write (and read for compound assignments) on the LHS, reads
    // in subscripts/RHS.
    addAccess(St, *S.Lhs, Dims, NVars, /*IsWrite=*/true, S.Line, S.Col);
    if (S.AsgnOp != "=")
      addAccess(St, *S.Lhs, Dims, NVars, /*IsWrite=*/false, S.Line, S.Col);
    collectReadAccesses(St, *S.Rhs, Dims, NVars, S.Line, S.Col);
    // Subscripts of the LHS may read arrays only in non-affine programs,
    // which the affine checks above already rejected.

    Out.Prog.Stmts.push_back(std::move(St));
  }

  void addAccess(Statement &St, const Expr &Ref, const DimMap &Dims,
                 unsigned NVars, bool IsWrite, unsigned Line, unsigned Col) {
    Access A;
    A.IsWrite = IsWrite;
    if (Ref.K == Expr::Kind::Var) {
      if (!ArrayRank.count(Ref.Name))
        return; // Iterator/parameter/symconst read: no dependence.
      A.Array = Ref.Name;
      A.Map = IntMatrix(0, NVars + 1);
      St.Accesses.push_back(std::move(A));
      return;
    }
    assert(Ref.K == Expr::Kind::ArrayRef && "access must be a reference");
    A.Array = Ref.Name;
    A.Map = IntMatrix(NVars + 1);
    for (const ExprPtr &Sub : Ref.Args) {
      auto Row = toAffine(*Sub, Dims, NVars + 1);
      if (!Row) {
        error(Line, Col,
              "non-affine subscript in access to '" + Ref.Name + "'");
        return;
      }
      A.Map.addRow(std::move(*Row));
    }
    St.Accesses.push_back(std::move(A));
  }

  void collectReadAccesses(Statement &St, const Expr &E, const DimMap &Dims,
                           unsigned NVars, unsigned Line, unsigned Col) {
    if (E.K == Expr::Kind::ArrayRef || E.K == Expr::Kind::Var) {
      addAccess(St, E, Dims, NVars, /*IsWrite=*/false, Line, Col);
      return;
    }
    for (const ExprPtr &A : E.Args)
      collectReadAccesses(St, *A, Dims, NVars, Line, Col);
  }
};

} // namespace

ParseResult pluto::parseSourceDiags(const std::string &Source) {
  ParseResult R;
  std::vector<Token> Tokens = tokenize(Source, R.Diags);
  Parser P(std::move(Tokens), R.Diags);
  std::vector<SynItem> Items = P.parseTopLevel();
  // Lexer and parser each append in their own pass order; present the
  // combined list in source order (stable, so ties keep discovery order).
  std::stable_sort(R.Diags.begin(), R.Diags.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     return A.Line != B.Line ? A.Line < B.Line
                                             : A.Col < B.Col;
                   });
  // Lowering semantic checks assume a syntactically clean tree; with syntax
  // (or lexical) errors already reported, stop here rather than pile
  // follow-on noise onto an incomplete tree.
  if (hasErrors(R.Diags))
    return R;
  Lowerer L(R.Diags);
  if (auto Prog = L.run(Items); Prog && !hasErrors(R.Diags))
    R.Program = std::move(*Prog);
  return R;
}

Result<ParsedProgram> pluto::parseSource(const std::string &Source) {
  ParseResult R = parseSourceDiags(Source);
  if (R.Program)
    return std::move(*R.Program);
  return Err(joinDiagnostics(R.Diags));
}
