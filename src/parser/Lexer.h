//===- parser/Lexer.h - Tokenizer for the restricted-C frontend -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the affine loop-nest subset of C accepted by the frontend
/// (the role of LooPo's scanner in the original tool-chain). Handles
/// identifiers, integer/float literals, the operator/punctuation set used by
/// loop nests, and skips comments and #pragma lines.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_PARSER_LEXER_H
#define PLUTOPP_PARSER_LEXER_H

#include <string>
#include <vector>

namespace pluto {

struct Token {
  enum class Kind {
    Ident,
    IntLit,
    FloatLit,
    Punct, ///< Operators and punctuation; Text holds the spelling.
    End,
  };
  Kind K = Kind::End;
  std::string Text;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(Kind Kd) const { return K == Kd; }
  bool isPunct(const char *P) const {
    return K == Kind::Punct && Text == P;
  }
  bool isIdent(const char *Name) const {
    return K == Kind::Ident && Text == Name;
  }
};

/// Tokenizes Source. On invalid characters, Error is set and tokenization
/// stops (the token stream ends with an End token either way).
std::vector<Token> tokenize(const std::string &Source, std::string &Error);

} // namespace pluto

#endif // PLUTOPP_PARSER_LEXER_H
