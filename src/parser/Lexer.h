//===- parser/Lexer.h - Tokenizer for the restricted-C frontend -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the affine loop-nest subset of C accepted by the frontend
/// (the role of LooPo's scanner in the original tool-chain). Handles
/// identifiers, integer/float literals, the operator/punctuation set used by
/// loop nests, and skips comments and #pragma lines.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_PARSER_LEXER_H
#define PLUTOPP_PARSER_LEXER_H

#include "parser/Diagnostics.h"

#include <string>
#include <vector>

namespace pluto {

struct Token {
  enum class Kind {
    Ident,
    IntLit,
    FloatLit,
    Punct, ///< Operators and punctuation; Text holds the spelling.
    End,
  };
  Kind K = Kind::End;
  std::string Text;
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(Kind Kd) const { return K == Kd; }
  bool isPunct(const char *P) const {
    return K == Kind::Punct && Text == P;
  }
  bool isIdent(const char *Name) const {
    return K == Kind::Ident && Text == Name;
  }
};

/// Tokenizes Source. Invalid characters produce one error diagnostic each
/// (with the exact line:column span) and are skipped, so the stream always
/// covers the whole input; it ends with an End token. Line/column tracking
/// counts characters: a tab occupies one column, and CR, LF and CRLF all
/// terminate a line (a CR that is part of a CRLF pair occupies no column).
std::vector<Token> tokenize(const std::string &Source,
                            std::vector<Diagnostic> &Diags);

/// Single-string compatibility wrapper: tokenizes with full recovery and
/// sets Error to the first diagnostic (empty when the input is clean).
std::vector<Token> tokenize(const std::string &Source, std::string &Error);

} // namespace pluto

#endif // PLUTOPP_PARSER_LEXER_H
