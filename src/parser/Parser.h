//===- parser/Parser.h - Restricted-C frontend ------------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend that turns the affine loop-nest subset of C into the polyhedral
/// IR (the role of LooPo's scanner/parser in the original tool-chain).
///
/// Accepted input: sequences of possibly imperfectly nested
///   for (i = LB; i <= UB; i++) { ... }
/// loops (also `<`, `++i`, `i += 1`, `i = i + 1`; `max(...)` in lower and
/// `min(...)` in upper bounds), whose bodies are assignment statements
/// `lhs = expr;` (also `+=`, `-=`, `*=`) with affine array subscripts.
/// Simple declarations are skipped; `#pragma` lines and comments ignored.
///
/// Name classification: loop-bound names are iterators; subscripted names
/// (or scalar assignment targets) are arrays; remaining names used in bounds
/// or subscripts are integer parameters; remaining names read in bodies are
/// opaque runtime constants (SymConsts, e.g. `coeff1` in the paper's FDTD
/// kernel) that take part in no dependence.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_PARSER_PARSER_H
#define PLUTOPP_PARSER_PARSER_H

#include "ir/Program.h"
#include "support/Result.h"

#include <string>

namespace pluto {

/// Parsed program plus frontend side information.
struct ParsedProgram {
  Program Prog;
  /// Names of double-valued opaque constants read by statement bodies.
  std::vector<std::string> SymConsts;
};

/// Parses Source into the polyhedral IR. Returns an error message naming the
/// offending line for inputs outside the accepted subset.
Result<ParsedProgram> parseSource(const std::string &Source);

} // namespace pluto

#endif // PLUTOPP_PARSER_PARSER_H
