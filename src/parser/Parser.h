//===- parser/Parser.h - Restricted-C frontend ------------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frontend that turns the affine loop-nest subset of C into the polyhedral
/// IR (the role of LooPo's scanner/parser in the original tool-chain).
///
/// Accepted input: sequences of possibly imperfectly nested
///   for (i = LB; i <= UB; i++) { ... }
/// loops (also `<`, `++i`, `i += 1`, `i = i + 1`; `max(...)` in lower and
/// `min(...)` in upper bounds), whose bodies are assignment statements
/// `lhs = expr;` (also `+=`, `-=`, `*=`) with affine array subscripts.
/// Simple declarations are skipped; `#pragma` lines and comments ignored.
///
/// Name classification: loop-bound names are iterators; subscripted names
/// (or scalar assignment targets) are arrays; remaining names used in bounds
/// or subscripts are integer parameters; remaining names read in bodies are
/// opaque runtime constants (SymConsts, e.g. `coeff1` in the paper's FDTD
/// kernel) that take part in no dependence.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_PARSER_PARSER_H
#define PLUTOPP_PARSER_PARSER_H

#include "ir/Program.h"
#include "parser/Diagnostics.h"
#include "support/Result.h"

#include <optional>
#include <string>

namespace pluto {

/// Parsed program plus frontend side information.
struct ParsedProgram {
  Program Prog;
  /// Names of double-valued opaque constants read by statement bodies.
  std::vector<std::string> SymConsts;
};

/// Outcome of one frontend pass: the program when the input was clean, and
/// every diagnostic either way. The frontend recovers at statement/loop
/// boundaries, so Diags lists all problems of the input, each with a
/// 1-based line:column span, not just the first.
struct ParseResult {
  std::optional<ParsedProgram> Program;
  std::vector<Diagnostic> Diags;

  bool ok() const { return Program.has_value(); }
};

/// Parses Source into the polyhedral IR with full error recovery.
ParseResult parseSourceDiags(const std::string &Source);

/// Single-string compatibility shim over parseSourceDiags(): on failure the
/// error message is every diagnostic joined with newlines.
Result<ParsedProgram> parseSource(const std::string &Source);

} // namespace pluto

#endif // PLUTOPP_PARSER_PARSER_H
