//===- parser/Diagnostics.h - Structured frontend diagnostics ---*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured source diagnostics for the restricted-C frontend: every
/// problem carries a 1-based line:column span into the original source and
/// a severity, and the frontend recovers at statement/loop boundaries so a
/// single pass reports every problem instead of bailing out on the first.
/// Columns count characters (a tab is one column); CR, CRLF and LF line
/// endings all terminate a line. renderSnippet() produces the classic
/// two-line source excerpt with a caret under the span.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_PARSER_DIAGNOSTICS_H
#define PLUTOPP_PARSER_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace pluto {

enum class Severity {
  Error,
  Warning,
};

/// One frontend diagnostic with its source span.
struct Diagnostic {
  Severity Sev = Severity::Error;
  unsigned Line = 1; ///< 1-based source line.
  unsigned Col = 1;  ///< 1-based column, counting characters (tab = 1).
  unsigned Len = 1;  ///< Span length in characters (>= 1).
  std::string Message;

  /// "line L, col C: error: message".
  std::string toString() const;
};

/// True if any diagnostic has error severity.
bool hasErrors(const std::vector<Diagnostic> &Diags);

/// Number of error-severity diagnostics.
unsigned errorCount(const std::vector<Diagnostic> &Diags);

/// All diagnostics, one per line (the single-string compatibility form).
std::string joinDiagnostics(const std::vector<Diagnostic> &Diags);

/// The two-line source excerpt for D: the offending line (tabs expanded to
/// one space so the caret math stays character-based) followed by a caret
/// line marking [Col, Col + Len). Empty when D.Line is out of range.
std::string renderSnippet(const std::string &Source, const Diagnostic &D);

/// Full human-readable report: toString() + snippet per diagnostic.
std::string renderDiagnostics(const std::string &Source,
                              const std::vector<Diagnostic> &Diags);

} // namespace pluto

#endif // PLUTOPP_PARSER_DIAGNOSTICS_H
