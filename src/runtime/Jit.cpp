//===- runtime/Jit.cpp - Compile-and-run for generated C ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace pluto;

using EntryFn = void (*)(double **, const long long *, const double *);

CompiledKernel::CompiledKernel(CompiledKernel &&O) noexcept
    : Handle(O.Handle), Fn(O.Fn), Dir(std::move(O.Dir)) {
  O.Handle = nullptr;
  O.Fn = nullptr;
  O.Dir.clear();
}

CompiledKernel &CompiledKernel::operator=(CompiledKernel &&O) noexcept {
  if (this != &O) {
    reset();
    Handle = O.Handle;
    Fn = O.Fn;
    Dir = std::move(O.Dir);
    O.Handle = nullptr;
    O.Fn = nullptr;
    O.Dir.clear();
  }
  return *this;
}

CompiledKernel::~CompiledKernel() { reset(); }

void CompiledKernel::reset() {
  if (Handle)
    dlclose(Handle);
  Handle = nullptr;
  Fn = nullptr;
  if (!Dir.empty()) {
    // Best-effort cleanup; leaking a temp dir is not an error.
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
    Dir.clear();
  }
}

bool CompiledKernel::compilerAvailable() {
  static int Avail = -1;
  if (Avail < 0)
    Avail = system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return Avail == 1;
}

Result<CompiledKernel> CompiledKernel::compile(
    const std::string &Source, const std::string &FuncName,
    const std::vector<std::string> &ExtraFlags) {
  if (!compilerAvailable())
    return Err(std::string("no C compiler ('cc') found on this host"));

  // Honor TMPDIR (the POSIX convention) with /tmp as the fallback.
  const char *TmpBase = std::getenv("TMPDIR");
  if (!TmpBase || !*TmpBase)
    TmpBase = "/tmp";
  std::string Template = std::string(TmpBase);
  if (Template.back() == '/')
    Template.pop_back();
  Template += "/plutopp-XXXXXX";
  char *DirC = mkdtemp(Template.data());
  if (!DirC)
    return Err("mkdtemp failed in '" + std::string(TmpBase) + "'");
  CompiledKernel K;
  K.Dir = DirC;

  std::string SrcPath = K.Dir + "/kernel.c";
  std::string SoPath = K.Dir + "/kernel.so";
  std::string LogPath = K.Dir + "/cc.log";
  {
    std::ofstream Out(SrcPath);
    Out << Source;
  }
  std::string Cmd = "cc -O3 -march=native -funroll-loops -fopenmp -shared "
                    "-fPIC -std=c99 -o '" +
                    SoPath + "' '" + SrcPath + "' -lm";
  for (const std::string &F : ExtraFlags)
    Cmd += " " + F;
  Cmd += " > '" + LogPath + "' 2>&1";
  int RC = system(Cmd.c_str());
  if (RC != 0) {
    // Surface everything needed to debug the failure without rerunning by
    // hand: the compiler's captured stderr/stdout, the exit status and the
    // exact command line.
    std::ifstream Log(LogPath);
    std::string Msg((std::istreambuf_iterator<char>(Log)),
                    std::istreambuf_iterator<char>());
    while (!Msg.empty() && (Msg.back() == '\n' || Msg.back() == '\r'))
      Msg.pop_back();
    if (Msg.empty())
      Msg = "(no compiler output captured)";
    return Err("compilation of generated code failed (exit status " +
               std::to_string(RC) + "):\n" + Msg + "\ncommand: " + Cmd);
  }
  K.Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!K.Handle) {
    // dlerror() may legitimately return null (e.g. cleared by a racing
    // dlopen); never construct a std::string from it unchecked.
    const char *DlMsg = dlerror();
    return Err("dlopen failed: " +
               std::string(DlMsg ? DlMsg : "(no dlerror message)"));
  }
  std::string Entry = FuncName + "_entry";
  K.Fn = dlsym(K.Handle, Entry.c_str());
  if (!K.Fn)
    return Err("dlsym failed for '" + Entry + "'");
  return std::move(K);
}

void CompiledKernel::call(const std::vector<double *> &Arrays,
                          const std::vector<long long> &Params,
                          const std::vector<double> &Consts) const {
  assert(Fn && "calling an invalid kernel");
  std::vector<double *> A = Arrays; // Entry takes non-const double**.
  reinterpret_cast<EntryFn>(Fn)(A.data(), Params.data(), Consts.data());
}
