//===- runtime/Jit.cpp - Compile-and-run for generated C ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "runtime/Jit.h"

#include "observe/PassStats.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sys/stat.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace pluto;

using EntryFn = void (*)(double **, const long long *, const double *);

namespace {

/// Sweeps plutopp-* work directories a crashed earlier process left behind
/// in the temp base. Only directories old enough that no live process can
/// still be using them are removed (mkdtemp names are unique, so a live
/// compile's directory is always younger). Runs once per process, on the
/// first JIT compile.
void sweepStaleWorkDirs(const std::string &TmpBase) {
  namespace fs = std::filesystem;
  constexpr auto StaleAge = std::chrono::hours(1);
  std::error_code Ec;
  uint64_t Swept = 0;
  for (const auto &Entry : fs::directory_iterator(TmpBase, Ec)) {
    if (Ec)
      break;
    if (!Entry.is_directory(Ec) || Ec)
      continue;
    std::string Name = Entry.path().filename().string();
    if (Name.rfind("plutopp-", 0) != 0 || Name.size() != strlen("plutopp-") + 6)
      continue;
    auto Mtime = fs::last_write_time(Entry.path(), Ec);
    if (Ec)
      continue;
    if (fs::file_time_type::clock::now() - Mtime < StaleAge)
      continue;
    fs::remove_all(Entry.path(), Ec);
    if (!Ec)
      ++Swept;
  }
  if (Swept)
    count(Counter::JitStaleDirsSwept, Swept);
}

/// One cc invocation, wrapped so the caller can distinguish "the compiler
/// ran and rejected the code" (a real diagnostic, never retried) from a
/// transient failure of the invocation itself (fork/exec failure, the
/// compiler killed by a signal - an OOM-killed cc, say), which is worth
/// one retry.
struct CcResult {
  int RawStatus = 0;
  bool Ran = false;      ///< The command executed and exited on its own.
  bool Transient = false; ///< Invocation-level failure; retry once.
};

CcResult runCompiler(const std::string &Cmd) {
  CcResult R;
  if (FaultInjector::shouldFail("jit.compile")) {
    R.RawStatus = -1;
    R.Transient = true;
    return R;
  }
  R.RawStatus = system(Cmd.c_str());
  if (R.RawStatus == -1 ||
      (WIFEXITED(R.RawStatus) && WEXITSTATUS(R.RawStatus) == 127))
    R.Transient = true; // fork/exec/shell failure, not a compile diagnostic.
  else if (WIFSIGNALED(R.RawStatus))
    R.Transient = true; // cc killed (OOM killer, stray signal).
  else
    R.Ran = true;
  return R;
}

} // namespace

CompiledKernel::CompiledKernel(CompiledKernel &&O) noexcept
    : Handle(O.Handle), Fn(O.Fn), Dir(std::move(O.Dir)) {
  O.Handle = nullptr;
  O.Fn = nullptr;
  O.Dir.clear();
}

CompiledKernel &CompiledKernel::operator=(CompiledKernel &&O) noexcept {
  if (this != &O) {
    reset();
    Handle = O.Handle;
    Fn = O.Fn;
    Dir = std::move(O.Dir);
    O.Handle = nullptr;
    O.Fn = nullptr;
    O.Dir.clear();
  }
  return *this;
}

CompiledKernel::~CompiledKernel() { reset(); }

void CompiledKernel::reset() {
  if (Handle)
    dlclose(Handle);
  Handle = nullptr;
  Fn = nullptr;
  if (!Dir.empty()) {
    // Best-effort cleanup; leaking a temp dir is not an error.
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
    Dir.clear();
  }
}

bool CompiledKernel::compilerAvailable() {
  static int Avail = -1;
  if (Avail < 0)
    Avail = system("cc --version > /dev/null 2>&1") == 0 ? 1 : 0;
  return Avail == 1;
}

Result<CompiledKernel> CompiledKernel::compile(
    const std::string &Source, const std::string &FuncName,
    const std::vector<std::string> &ExtraFlags) {
  if (!compilerAvailable())
    return Err(std::string("no C compiler ('cc') found on this host"));

  // Honor TMPDIR (the POSIX convention) with /tmp as the fallback.
  const char *TmpBase = std::getenv("TMPDIR");
  if (!TmpBase || !*TmpBase)
    TmpBase = "/tmp";

  // First compile of this process: clean up work directories a crashed
  // predecessor left in the same temp base.
  static std::once_flag SweepOnce;
  std::call_once(SweepOnce, [&] { sweepStaleWorkDirs(TmpBase); });

  std::string Template = std::string(TmpBase);
  if (Template.back() == '/')
    Template.pop_back();
  Template += "/plutopp-XXXXXX";
  char *DirC = mkdtemp(Template.data());
  if (!DirC)
    return Err("mkdtemp failed in '" + std::string(TmpBase) + "'");
  CompiledKernel K;
  K.Dir = DirC;

  std::string SrcPath = K.Dir + "/kernel.c";
  std::string SoPath = K.Dir + "/kernel.so";
  std::string LogPath = K.Dir + "/cc.log";
  {
    std::ofstream Out(SrcPath);
    Out << Source;
  }
  std::string Cmd = "cc -O3 -march=native -funroll-loops -fopenmp -shared "
                    "-fPIC -std=c99 -o '" +
                    SoPath + "' '" + SrcPath + "' -lm";
  for (const std::string &F : ExtraFlags)
    Cmd += " " + F;
  Cmd += " > '" + LogPath + "' 2>&1";
  CcResult RC = runCompiler(Cmd);
  if (RC.Transient) {
    // The invocation itself failed (not a compiler diagnostic): retry once
    // after a short backoff before giving up.
    count(Counter::JitRetries);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    RC = runCompiler(Cmd);
  }
  if (RC.RawStatus != 0) {
    // Surface everything needed to debug the failure without rerunning by
    // hand: the compiler's captured stderr/stdout, the exit status and the
    // exact command line.
    std::ifstream Log(LogPath);
    std::string Msg((std::istreambuf_iterator<char>(Log)),
                    std::istreambuf_iterator<char>());
    while (!Msg.empty() && (Msg.back() == '\n' || Msg.back() == '\r'))
      Msg.pop_back();
    if (Msg.empty())
      Msg = RC.Ran ? "(no compiler output captured)"
                   : "(compiler invocation failed before producing output)";
    return Err("compilation of generated code failed (exit status " +
               std::to_string(RC.RawStatus) + "):\n" + Msg +
               "\ncommand: " + Cmd);
  }
  K.Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!K.Handle) {
    // dlerror() may legitimately return null (e.g. cleared by a racing
    // dlopen); never construct a std::string from it unchecked.
    const char *DlMsg = dlerror();
    return Err("dlopen failed: " +
               std::string(DlMsg ? DlMsg : "(no dlerror message)"));
  }
  std::string Entry = FuncName + "_entry";
  K.Fn = dlsym(K.Handle, Entry.c_str());
  if (!K.Fn)
    return Err("dlsym failed for '" + Entry + "'");
  return std::move(K);
}

void CompiledKernel::call(const std::vector<double *> &Arrays,
                          const std::vector<long long> &Params,
                          const std::vector<double> &Consts) const {
  assert(Fn && "calling an invalid kernel");
  std::vector<double *> A = Arrays; // Entry takes non-const double**.
  reinterpret_cast<EntryFn>(Fn)(A.data(), Params.data(), Consts.data());
}

Measurement pluto::measureRun(const std::function<void()> &Run,
                              const std::function<void()> &Reset,
                              const MeasureOptions &MO) {
  // Pin the thread count before anything executes: the JIT-compiled
  // kernel's OpenMP runtime lives in this process, so omp_set_num_threads
  // here governs its parallel regions. Threads == 0 deliberately inherits
  // the environment.
  if (MO.Threads > 0) {
#ifdef _OPENMP
    omp_set_num_threads(static_cast<int>(MO.Threads));
#else
    setenv("OMP_NUM_THREADS", std::to_string(MO.Threads).c_str(), 1);
#endif
  }

  auto Now = MO.Now ? MO.Now : std::function<double()>([] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  });

  for (unsigned I = 0; I < MO.Warmup; ++I) {
    if (Reset)
      Reset();
    Run();
  }

  Measurement M;
  unsigned Reps = MO.Reps ? MO.Reps : 1;
  M.RepSeconds.reserve(Reps);
  for (unsigned I = 0; I < Reps; ++I) {
    if (Reset)
      Reset();
    double T0 = Now();
    Run();
    M.RepSeconds.push_back(Now() - T0);
  }

  // Median of K: the middle element of the sorted samples (the mean of the
  // middle pair for even K), so one perturbed rep cannot move the result.
  std::vector<double> Sorted = M.RepSeconds;
  std::sort(Sorted.begin(), Sorted.end());
  size_t N = Sorted.size();
  M.MedianSeconds = (N % 2) ? Sorted[N / 2]
                            : 0.5 * (Sorted[N / 2 - 1] + Sorted[N / 2]);
  return M;
}

Measurement pluto::measureKernel(const CompiledKernel &K,
                                 const std::vector<double *> &Arrays,
                                 const std::vector<long long> &Params,
                                 const std::vector<double> &Consts,
                                 const std::function<void()> &Reset,
                                 const MeasureOptions &MO) {
  return measureRun([&] { K.call(Arrays, Params, Consts); }, Reset, MO);
}
