//===- runtime/Interpreter.h - AST interpreter ------------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a generated loop AST (and through the identity schedule, the
/// original program) directly over in-memory arrays. This is the testing
/// substrate: semantic equivalence of original vs. transformed code is
/// checked without invoking a C compiler, for arbitrary problem sizes, tile
/// sizes and transformation options.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_RUNTIME_INTERPRETER_H
#define PLUTOPP_RUNTIME_INTERPRETER_H

#include "codegen/Ast.h"
#include "ir/Program.h"
#include "support/Result.h"

#include <map>
#include <string>
#include <vector>

namespace pluto {

/// A flat row-major tensor (rank 0 = single element).
struct Tensor {
  std::vector<long long> Extents;
  std::vector<double> Data;

  static Tensor zeros(std::vector<long long> Extents);
  /// Deterministic pseudo-random fill with small values (exactly
  /// representable sums stay accurate in tests).
  void fillPattern(unsigned Seed);

  long long numElems() const;
  double &at(const std::vector<long long> &Idx);
};

/// Execution environment: arrays by name, integer parameters, opaque double
/// constants.
class Interpreter {
public:
  std::map<std::string, Tensor> Arrays;
  std::map<std::string, long long> Params;
  std::map<std::string, double> SymConsts;

  /// Allocates zero tensors for every array of Prog with the given extents
  /// (map array -> extents).
  void allocate(const Program &Prog,
                const std::map<std::string, std::vector<long long>> &Extents);

  /// Runs the AST over the current state. Fails on references to unknown
  /// names, rank mismatches, or out-of-bounds accesses.
  Result<bool> run(const Program &Prog, const CgNode &Root);

private:
  const Program *Prog = nullptr;
  std::map<std::string, long long> IntEnv;
  std::string Error;

  void fail(const std::string &Msg);
  long long evalCg(const CgExpr &E);
  bool evalCond(const CgCond &C);
  void exec(const CgNode &N);
  void execStmt(unsigned StmtId, const std::vector<long long> &IterVals);
  double evalBody(const Expr &E);
  double *resolveLValue(const Expr &E);
};

} // namespace pluto

#endif // PLUTOPP_RUNTIME_INTERPRETER_H
