//===- runtime/Interpreter.cpp - AST interpreter --------------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include <cmath>
#include <optional>

using namespace pluto;

Tensor Tensor::zeros(std::vector<long long> Extents) {
  Tensor T;
  T.Extents = std::move(Extents);
  T.Data.assign(static_cast<size_t>(T.numElems()), 0.0);
  return T;
}

long long Tensor::numElems() const {
  long long N = 1;
  for (long long E : Extents)
    N *= E;
  return N;
}

void Tensor::fillPattern(unsigned Seed) {
  // Small deterministic values; reassociation-safe to a few ulps.
  unsigned X = Seed * 2654435761u + 17;
  for (double &V : Data) {
    X = X * 1664525u + 1013904223u;
    V = static_cast<double>((X >> 16) % 64) / 8.0;
  }
}

double &Tensor::at(const std::vector<long long> &Idx) {
  assert(Idx.size() == Extents.size() && "tensor rank mismatch");
  long long Off = 0;
  for (size_t I = 0; I < Idx.size(); ++I) {
    assert(Idx[I] >= 0 && Idx[I] < Extents[I] && "tensor index OOB");
    Off = Off * Extents[I] + Idx[I];
  }
  return Data[static_cast<size_t>(Off)];
}

void Interpreter::allocate(
    const Program &P,
    const std::map<std::string, std::vector<long long>> &Extents) {
  for (const ArrayInfo &A : P.Arrays) {
    auto It = Extents.find(A.Name);
    assert((It != Extents.end() || A.Rank == 0) &&
           "missing extents for array");
    std::vector<long long> E =
        It != Extents.end() ? It->second : std::vector<long long>{};
    assert(E.size() == A.Rank && "extents rank mismatch");
    Arrays[A.Name] = Tensor::zeros(std::move(E));
  }
}

void Interpreter::fail(const std::string &Msg) {
  if (Error.empty())
    Error = Msg;
}

Result<bool> Interpreter::run(const Program &P, const CgNode &Root) {
  Prog = &P;
  Error.clear();
  IntEnv.clear();
  for (const auto &[Name, V] : Params)
    IntEnv[Name] = V;
  exec(Root);
  if (!Error.empty())
    return Err(Error);
  return true;
}

long long Interpreter::evalCg(const CgExpr &E) {
  switch (E.K) {
  case CgExpr::Kind::Affine: {
    long long V = E.ConstTerm.toInt64();
    for (const auto &[Name, Coef] : E.Terms) {
      auto It = IntEnv.find(Name);
      if (It == IntEnv.end()) {
        fail("unknown integer variable '" + Name + "'");
        return 0;
      }
      V += Coef.toInt64() * It->second;
    }
    return V;
  }
  case CgExpr::Kind::Floord: {
    long long N = evalCg(E.Args[0]);
    long long D = E.Den.toInt64();
    return BigInt(N).floorDiv(BigInt(D)).toInt64();
  }
  case CgExpr::Kind::Ceild: {
    long long N = evalCg(E.Args[0]);
    long long D = E.Den.toInt64();
    return BigInt(N).ceilDiv(BigInt(D)).toInt64();
  }
  case CgExpr::Kind::Min: {
    long long V = evalCg(E.Args[0]);
    for (size_t I = 1; I < E.Args.size(); ++I)
      V = std::min(V, evalCg(E.Args[I]));
    return V;
  }
  case CgExpr::Kind::Max: {
    long long V = evalCg(E.Args[0]);
    for (size_t I = 1; I < E.Args.size(); ++I)
      V = std::max(V, evalCg(E.Args[I]));
    return V;
  }
  }
  return 0;
}

bool Interpreter::evalCond(const CgCond &C) {
  long long V = evalCg(C.Expr);
  if (C.Mod.isZero())
    return V >= 0;
  return V % C.Mod.toInt64() == 0;
}

void Interpreter::exec(const CgNode &N) {
  if (!Error.empty())
    return;
  switch (N.K) {
  case CgNode::Kind::Block:
    for (const CgNodePtr &C : N.Children)
      exec(*C);
    return;
  case CgNode::Kind::Loop: {
    long long Lb = evalCg(N.Lb);
    long long Ub = evalCg(N.Ub);
    auto Saved = IntEnv.find(N.Var) != IntEnv.end()
                     ? std::optional<long long>(IntEnv[N.Var])
                     : std::nullopt;
    for (long long V = Lb; V <= Ub && Error.empty(); ++V) {
      IntEnv[N.Var] = V;
      for (const CgNodePtr &C : N.Children)
        exec(*C);
    }
    if (Saved)
      IntEnv[N.Var] = *Saved;
    else
      IntEnv.erase(N.Var);
    return;
  }
  case CgNode::Kind::If: {
    for (const CgCond &C : N.Conds)
      if (!evalCond(C))
        return;
    for (const CgNodePtr &C : N.Children)
      exec(*C);
    return;
  }
  case CgNode::Kind::Let: {
    long long V = evalCg(N.Value);
    auto Saved = IntEnv.find(N.Var) != IntEnv.end()
                     ? std::optional<long long>(IntEnv[N.Var])
                     : std::nullopt;
    IntEnv[N.Var] = V;
    for (const CgNodePtr &C : N.Children)
      exec(*C);
    if (Saved)
      IntEnv[N.Var] = *Saved;
    else
      IntEnv.erase(N.Var);
    return;
  }
  case CgNode::Kind::Call: {
    std::vector<long long> Vals;
    Vals.reserve(N.Args.size());
    for (const CgExpr &A : N.Args)
      Vals.push_back(evalCg(A));
    execStmt(N.StmtId, Vals);
    return;
  }
  }
}

void Interpreter::execStmt(unsigned StmtId,
                           const std::vector<long long> &IterVals) {
  const Statement &St = Prog->Stmts[StmtId];
  if (IterVals.size() != St.IterNames.size()) {
    fail("statement argument count mismatch");
    return;
  }
  // Bind original iterator names for body evaluation (save/restore: leaf
  // names may shadow generated variables of sibling statements).
  std::vector<std::pair<std::string, std::optional<long long>>> Saved;
  for (size_t I = 0; I < IterVals.size(); ++I) {
    auto It = IntEnv.find(St.IterNames[I]);
    Saved.push_back({St.IterNames[I],
                     It != IntEnv.end() ? std::optional<long long>(It->second)
                                        : std::nullopt});
    IntEnv[St.IterNames[I]] = IterVals[I];
  }
  double Rhs = evalBody(*St.Body.Rhs);
  double *Lhs = resolveLValue(*St.Body.Lhs);
  if (Lhs) {
    if (St.Body.AsgnOp == "=")
      *Lhs = Rhs;
    else if (St.Body.AsgnOp == "+=")
      *Lhs += Rhs;
    else if (St.Body.AsgnOp == "-=")
      *Lhs -= Rhs;
    else if (St.Body.AsgnOp == "*=")
      *Lhs *= Rhs;
    else
      fail("unknown assignment operator " + St.Body.AsgnOp);
  }
  for (auto &[Name, Val] : Saved) {
    if (Val)
      IntEnv[Name] = *Val;
    else
      IntEnv.erase(Name);
  }
}

double *Interpreter::resolveLValue(const Expr &E) {
  std::string Name = E.Name;
  auto It = Arrays.find(Name);
  if (It == Arrays.end()) {
    fail("write to unknown array '" + Name + "'");
    return nullptr;
  }
  Tensor &T = It->second;
  if (E.K == Expr::Kind::Var) {
    if (!T.Extents.empty()) {
      fail("scalar write to non-scalar array '" + Name + "'");
      return nullptr;
    }
    return &T.Data[0];
  }
  std::vector<long long> Idx;
  for (const ExprPtr &Sub : E.Args)
    Idx.push_back(static_cast<long long>(evalBody(*Sub)));
  if (Idx.size() != T.Extents.size()) {
    fail("rank mismatch writing '" + Name + "'");
    return nullptr;
  }
  for (size_t I = 0; I < Idx.size(); ++I)
    if (Idx[I] < 0 || Idx[I] >= T.Extents[I]) {
      fail("index out of bounds writing '" + Name + "'");
      return nullptr;
    }
  return &T.at(Idx);
}

double Interpreter::evalBody(const Expr &E) {
  if (!Error.empty())
    return 0.0;
  switch (E.K) {
  case Expr::Kind::IntLit:
    return static_cast<double>(E.IntValue);
  case Expr::Kind::FloatLit:
    return std::stod(E.FloatText);
  case Expr::Kind::Var: {
    auto IntIt = IntEnv.find(E.Name);
    if (IntIt != IntEnv.end())
      return static_cast<double>(IntIt->second);
    auto SymIt = SymConsts.find(E.Name);
    if (SymIt != SymConsts.end())
      return SymIt->second;
    auto ArrIt = Arrays.find(E.Name);
    if (ArrIt != Arrays.end() && ArrIt->second.Extents.empty())
      return ArrIt->second.Data[0];
    fail("unknown name '" + E.Name + "' in statement body");
    return 0.0;
  }
  case Expr::Kind::ArrayRef: {
    auto It = Arrays.find(E.Name);
    if (It == Arrays.end()) {
      fail("read of unknown array '" + E.Name + "'");
      return 0.0;
    }
    Tensor &T = It->second;
    std::vector<long long> Idx;
    for (const ExprPtr &Sub : E.Args)
      Idx.push_back(static_cast<long long>(evalBody(*Sub)));
    if (Idx.size() != T.Extents.size()) {
      fail("rank mismatch reading '" + E.Name + "'");
      return 0.0;
    }
    for (size_t I = 0; I < Idx.size(); ++I)
      if (Idx[I] < 0 || Idx[I] >= T.Extents[I]) {
        fail("index out of bounds reading '" + E.Name + "'");
        return 0.0;
      }
    return T.at(Idx);
  }
  case Expr::Kind::Unary: {
    double V = evalBody(*E.Args[0]);
    return E.Op == "-" ? -V : V;
  }
  case Expr::Kind::Binary: {
    double L = evalBody(*E.Args[0]);
    double R = evalBody(*E.Args[1]);
    if (E.Op == "+")
      return L + R;
    if (E.Op == "-")
      return L - R;
    if (E.Op == "*")
      return L * R;
    if (E.Op == "/")
      return L / R;
    if (E.Op == "%")
      return static_cast<double>(static_cast<long long>(L) %
                                 static_cast<long long>(R));
    fail("unknown binary operator " + E.Op);
    return 0.0;
  }
  case Expr::Kind::Call: {
    std::vector<double> Args;
    for (const ExprPtr &A : E.Args)
      Args.push_back(evalBody(*A));
    if (E.Name == "exp" && Args.size() == 1)
      return std::exp(Args[0]);
    if (E.Name == "sqrt" && Args.size() == 1)
      return std::sqrt(Args[0]);
    if (E.Name == "fabs" && Args.size() == 1)
      return std::fabs(Args[0]);
    if (E.Name == "sin" && Args.size() == 1)
      return std::sin(Args[0]);
    if (E.Name == "cos" && Args.size() == 1)
      return std::cos(Args[0]);
    if (E.Name == "pow" && Args.size() == 2)
      return std::pow(Args[0], Args[1]);
    if (E.Name == "min" && Args.size() == 2)
      return std::min(Args[0], Args[1]);
    if (E.Name == "max" && Args.size() == 2)
      return std::max(Args[0], Args[1]);
    fail("unknown function '" + E.Name + "' in statement body");
    return 0.0;
  }
  }
  return 0.0;
}
