//===- runtime/Jit.h - Compile-and-run for generated C ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes generated OpenMP C through the system compiler: write the
/// translation unit to a temporary directory, invoke `cc -O3 -fopenmp
/// -shared`, dlopen the result and call the kernel. This reproduces the
/// paper's methodology (source-to-source + native compiler: icc 10.0 there,
/// the host cc here - see DESIGN.md substitutions) and is what the
/// benchmark harness measures.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_RUNTIME_JIT_H
#define PLUTOPP_RUNTIME_JIT_H

#include "support/Result.h"

#include <functional>
#include <string>
#include <vector>

namespace pluto {

/// A compiled kernel: f(double* arrays..., long long params...,
/// double symconsts...). Arguments are passed through libffi-free variadic
/// trampolines specialized by count; see call().
class CompiledKernel {
public:
  CompiledKernel() = default;
  CompiledKernel(CompiledKernel &&O) noexcept;
  CompiledKernel &operator=(CompiledKernel &&O) noexcept;
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel &) = delete;
  CompiledKernel &operator=(const CompiledKernel &) = delete;

  /// Compiles Source (a full C translation unit defining FuncName) and
  /// loads it. ExtraFlags are appended to the compiler command line.
  static Result<CompiledKernel>
  compile(const std::string &Source, const std::string &FuncName = "kernel",
          const std::vector<std::string> &ExtraFlags = {});

  /// True if a usable C compiler was found on this host.
  static bool compilerAvailable();

  /// Invokes the kernel. The argument lists must match the emitted
  /// signature (arrays, then integer parameters, then double constants).
  void call(const std::vector<double *> &Arrays,
            const std::vector<long long> &Params,
            const std::vector<double> &Consts) const;

  bool valid() const { return Fn != nullptr; }

  /// The temporary build directory backing this kernel (empty when
  /// invalid). Exposed for tests that check TMPDIR is honored.
  const std::string &dir() const { return Dir; }

private:
  void *Handle = nullptr;
  void *Fn = nullptr;
  std::string Dir;

  void reset();
};

/// How to time a kernel honestly. The historical harness reported a single
/// un-warmed run under whatever OMP_NUM_THREADS the environment happened to
/// carry - which mis-ranks parallel variants (first-touch page faults,
/// OpenMP pool spin-up and an unpinned thread count all land in the
/// measurement). These options make every bias knob explicit.
struct MeasureOptions {
  /// Untimed warm-up executions before the measured reps (pays the OpenMP
  /// pool spin-up, code paging and first-touch faults once, outside the
  /// measurement).
  unsigned Warmup = 1;
  /// Timed repetitions; the reported time is the median (robust against a
  /// stray slow rep where min would hide systematic noise and mean would
  /// average it in).
  unsigned Reps = 3;
  /// Thread count pinned via omp_set_num_threads before any execution;
  /// 0 inherits the environment (explicitly opting back into the bias).
  unsigned Threads = 1;
  /// Injectable monotonic clock in seconds; tests substitute a scripted
  /// fake so measured traces are deterministic. Null = steady_clock.
  std::function<double()> Now;
};

/// One measurement: every rep's wall time plus the median the tuner ranks
/// by. RepSeconds keeps the raw samples so traces stay honest about the
/// spread.
struct Measurement {
  double MedianSeconds = 0;
  std::vector<double> RepSeconds;
};

/// Times an arbitrary thunk under MO: pins the thread count, runs
/// MO.Warmup untimed executions, then MO.Reps timed ones, calling Reset
/// (when non-null) before every execution - outside the timed region - so
/// each rep sees identical input instead of the previous rep's output.
Measurement measureRun(const std::function<void()> &Run,
                       const std::function<void()> &Reset,
                       const MeasureOptions &MO = MeasureOptions());

/// Convenience wrapper timing one compiled kernel call.
Measurement measureKernel(const CompiledKernel &K,
                          const std::vector<double *> &Arrays,
                          const std::vector<long long> &Params,
                          const std::vector<double> &Consts,
                          const std::function<void()> &Reset,
                          const MeasureOptions &MO = MeasureOptions());

} // namespace pluto

#endif // PLUTOPP_RUNTIME_JIT_H
