//===- runtime/Jit.h - Compile-and-run for generated C ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes generated OpenMP C through the system compiler: write the
/// translation unit to a temporary directory, invoke `cc -O3 -fopenmp
/// -shared`, dlopen the result and call the kernel. This reproduces the
/// paper's methodology (source-to-source + native compiler: icc 10.0 there,
/// the host cc here - see DESIGN.md substitutions) and is what the
/// benchmark harness measures.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_RUNTIME_JIT_H
#define PLUTOPP_RUNTIME_JIT_H

#include "support/Result.h"

#include <string>
#include <vector>

namespace pluto {

/// A compiled kernel: f(double* arrays..., long long params...,
/// double symconsts...). Arguments are passed through libffi-free variadic
/// trampolines specialized by count; see call().
class CompiledKernel {
public:
  CompiledKernel() = default;
  CompiledKernel(CompiledKernel &&O) noexcept;
  CompiledKernel &operator=(CompiledKernel &&O) noexcept;
  ~CompiledKernel();
  CompiledKernel(const CompiledKernel &) = delete;
  CompiledKernel &operator=(const CompiledKernel &) = delete;

  /// Compiles Source (a full C translation unit defining FuncName) and
  /// loads it. ExtraFlags are appended to the compiler command line.
  static Result<CompiledKernel>
  compile(const std::string &Source, const std::string &FuncName = "kernel",
          const std::vector<std::string> &ExtraFlags = {});

  /// True if a usable C compiler was found on this host.
  static bool compilerAvailable();

  /// Invokes the kernel. The argument lists must match the emitted
  /// signature (arrays, then integer parameters, then double constants).
  void call(const std::vector<double *> &Arrays,
            const std::vector<long long> &Params,
            const std::vector<double> &Consts) const;

  bool valid() const { return Fn != nullptr; }

  /// The temporary build directory backing this kernel (empty when
  /// invalid). Exposed for tests that check TMPDIR is honored.
  const std::string &dir() const { return Dir; }

private:
  void *Handle = nullptr;
  void *Fn = nullptr;
  std::string Dir;

  void reset();
};

} // namespace pluto

#endif // PLUTOPP_RUNTIME_JIT_H
