//===- serve/Protocol.cpp - plutod NDJSON wire protocol -------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cinttypes>
#include <cstdio>

using namespace pluto;
using namespace pluto::serve;

namespace {

void appendKey(std::string &Out, const char *Key) {
  Out += '"';
  Out += Key;
  Out += "\":";
}

void appendBool(std::string &Out, const char *Key, bool V) {
  appendKey(Out, Key);
  Out += V ? "true" : "false";
}

void appendInt(std::string &Out, const char *Key, long long V) {
  appendKey(Out, Key);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", V);
  Out += Buf;
}

void appendStr(std::string &Out, const char *Key, const std::string &V) {
  appendKey(Out, Key);
  Out += jsonQuote(V);
}

/// `{"plutod":1,"id":<Id>` - the shared response/request prefix.
std::string head(const std::string &IdJson) {
  std::string Out = "{\"plutod\":";
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "%d", ProtocolVersion);
  Out += Buf;
  Out += ",\"id\":";
  Out += IdJson.empty() ? std::string("null") : IdJson;
  return Out;
}

/// Reads a required-if-present bool member into Field.
Result<bool> readBool(const JsonValue &V, const char *Key, bool &Field) {
  if (!V.isBool())
    return Err(std::string("options.") + Key + " must be a boolean");
  Field = V.asBool();
  return true;
}

Result<bool> readUnsigned(const JsonValue &V, const char *Key,
                          unsigned &Field) {
  if (!V.isInteger() || V.asInt() < 0)
    return Err(std::string("options.") + Key +
               " must be a non-negative integer");
  Field = static_cast<unsigned>(V.asInt());
  return true;
}

} // namespace

std::string pluto::serve::optionsToJson(const PlutoOptions &O) {
  std::string Out = "{";
  appendBool(Out, "tile", O.Tile);
  Out += ',';
  appendInt(Out, "tile_size", O.TileSize);
  Out += ',';
  appendBool(Out, "l2tile", O.SecondLevelTile);
  Out += ',';
  appendInt(Out, "l2tile_size", O.L2TileSize);
  Out += ',';
  appendBool(Out, "parallel", O.Parallelize);
  Out += ',';
  appendInt(Out, "wavefront_degrees", O.WavefrontDegrees);
  Out += ',';
  appendBool(Out, "vectorize", O.Vectorize);
  Out += ',';
  appendBool(Out, "include_input_deps", O.IncludeInputDeps);
  Out += ',';
  appendInt(Out, "param_min", O.ParamMin);
  Out += ',';
  appendBool(Out, "fast_schedule", O.FastSchedule);
  Out += '}';
  return Out;
}

Result<PlutoOptions> pluto::serve::optionsFromJson(const JsonValue &V) {
  if (!V.isObject())
    return Err("\"options\" must be a JSON object");
  PlutoOptions O;
  for (const auto &[Key, Val] : V.members()) {
    Result<bool> R = true;
    if (Key == "tile")
      R = readBool(Val, "tile", O.Tile);
    else if (Key == "tile_size")
      R = readUnsigned(Val, "tile_size", O.TileSize);
    else if (Key == "l2tile")
      R = readBool(Val, "l2tile", O.SecondLevelTile);
    else if (Key == "l2tile_size")
      R = readUnsigned(Val, "l2tile_size", O.L2TileSize);
    else if (Key == "parallel")
      R = readBool(Val, "parallel", O.Parallelize);
    else if (Key == "wavefront_degrees")
      R = readUnsigned(Val, "wavefront_degrees", O.WavefrontDegrees);
    else if (Key == "vectorize")
      R = readBool(Val, "vectorize", O.Vectorize);
    else if (Key == "include_input_deps")
      R = readBool(Val, "include_input_deps", O.IncludeInputDeps);
    else if (Key == "param_min") {
      if (!Val.isInteger())
        return Err("options.param_min must be an integer");
      O.ParamMin = Val.asInt();
    } else if (Key == "fast_schedule")
      R = readBool(Val, "fast_schedule", O.FastSchedule);
    else
      return Err("unknown options key \"" + Key + "\"");
    if (!R)
      return Err(R.error());
  }
  return O;
}

std::string pluto::serve::encodeRequest(const WireRequest &R) {
  std::string Out = head(R.Id);
  Out += ',';
  switch (R.Operation) {
  case Op::Ping:
    appendStr(Out, "op", "ping");
    break;
  case Op::Metrics:
    appendStr(Out, "op", "metrics");
    break;
  case Op::Tune:
  case Op::Compile:
    appendStr(Out, "op", R.Operation == Op::Tune ? "tune" : "compile");
    if (R.Operation == Op::Tune && !R.Spec.empty()) {
      Out += ',';
      appendStr(Out, "spec", R.Spec);
    }
    if (!R.Req.Name.empty()) {
      Out += ',';
      appendStr(Out, "name", R.Req.Name);
    }
    Out += ',';
    appendStr(Out, "source", R.Req.Source);
    Out += ",\"options\":";
    Out += optionsToJson(R.Req.Opts);
    // Budget members ride at the top level (not in "options"): they never
    // change the emitted code, so they must stay out of the options
    // fingerprint. Old servers ignore unknown top-level members.
    if (R.Req.Budget.WallMs) {
      Out += ',';
      appendInt(Out, "timeout_ms", static_cast<long long>(R.Req.Budget.WallMs));
    }
    if (R.Req.Budget.MaxMemoryBytes) {
      Out += ',';
      appendInt(Out, "max_memory_mb",
                static_cast<long long>(R.Req.Budget.MaxMemoryBytes >> 20));
    }
    if (R.Req.Budget.MaxWorkUnits) {
      Out += ',';
      appendInt(Out, "max_work",
                static_cast<long long>(R.Req.Budget.MaxWorkUnits));
    }
    break;
  }
  Out += '}';
  return Out;
}

Result<WireRequest> pluto::serve::decodeRequest(const std::string &Line) {
  auto Doc = JsonValue::parse(Line);
  if (!Doc)
    return Err("malformed JSON: " + Doc.error());
  if (!Doc->isObject())
    return Err("request must be a JSON object");

  const JsonValue *Ver = Doc->find("plutod");
  if (!Ver)
    return Err("missing \"plutod\" protocol version member");
  if (!Ver->isInteger() || Ver->asInt() != ProtocolVersion)
    return Err("unsupported protocol version (this server speaks "
               "\"plutod\": 1)");

  WireRequest R;
  if (const JsonValue *Id = Doc->find("id"))
    R.Id = Id->toJson();

  const JsonValue *OpV = Doc->find("op");
  if (!OpV || !OpV->isString())
    return Err("missing or non-string \"op\" member");
  const std::string &OpName = OpV->asString();
  if (OpName == "ping")
    R.Operation = Op::Ping;
  else if (OpName == "metrics")
    R.Operation = Op::Metrics;
  else if (OpName == "compile")
    R.Operation = Op::Compile;
  else if (OpName == "tune")
    R.Operation = Op::Tune;
  else
    return Err("unknown op \"" + OpName +
               "\" (expected compile, tune, ping or metrics)");

  if (R.Operation != Op::Compile && R.Operation != Op::Tune)
    return R;

  if (const JsonValue *Name = Doc->find("name")) {
    if (!Name->isString())
      return Err("\"name\" must be a string");
    R.Req.Name = Name->asString();
  }
  const JsonValue *Src = Doc->find("source");
  if (!Src || !Src->isString())
    return Err(std::string(R.Operation == Op::Tune ? "tune" : "compile") +
               " request needs a string \"source\" member");
  R.Req.Source = Src->asString();

  if (R.Operation == Op::Tune) {
    if (const JsonValue *Spec = Doc->find("spec")) {
      if (!Spec->isString())
        return Err("\"spec\" must be a string");
      R.Spec = Spec->asString();
    }
  }

  if (const JsonValue *Opts = Doc->find("options")) {
    auto O = optionsFromJson(*Opts);
    if (!O)
      return Err(O.error());
    R.Req.Opts = *O;
  }

  // Optional per-request resource budget (0 / absent = unlimited).
  auto ReadBudget = [&](const char *Key,
                        uint64_t &Field) -> Result<bool> {
    const JsonValue *V = Doc->find(Key);
    if (!V)
      return true;
    if (!V->isInteger() || V->asInt() < 0)
      return Err(std::string("\"") + Key +
                 "\" must be a non-negative integer");
    Field = static_cast<uint64_t>(V->asInt());
    return true;
  };
  uint64_t TimeoutMs = 0, MaxMemoryMb = 0, MaxWork = 0;
  if (auto B = ReadBudget("timeout_ms", TimeoutMs); !B)
    return Err(B.error());
  if (auto B = ReadBudget("max_memory_mb", MaxMemoryMb); !B)
    return Err(B.error());
  if (auto B = ReadBudget("max_work", MaxWork); !B)
    return Err(B.error());
  R.Req.Budget.WallMs = TimeoutMs;
  R.Req.Budget.MaxMemoryBytes = MaxMemoryMb << 20;
  R.Req.Budget.MaxWorkUnits = MaxWork;
  return R;
}

std::string pluto::serve::encodeResponse(const std::string &IdJson,
                                         const CompileResponse &Resp) {
  std::string Out = head(IdJson);
  Out += ',';
  appendStr(Out, "status", statusCodeName(Resp.Status));
  if (!Resp.Name.empty()) {
    Out += ',';
    appendStr(Out, "name", Resp.Name);
  }
  if (!Resp.Key.empty()) {
    Out += ',';
    appendStr(Out, "key", Resp.Key);
  }
  if (Resp.ok()) {
    Out += ',';
    appendBool(Out, "cache_hit", Resp.CacheHit);
    Out += ',';
    appendStr(Out, "emitted_c", Resp.EmittedC);
  } else {
    Out += ',';
    appendStr(Out, "error", Resp.Error);
    if (!Resp.Diags.empty()) {
      Out += ",\"diagnostics\":";
      Out += diagnosticsJsonArray(Resp.Name, Resp.Diags);
    }
  }
  Out += '}';
  return Out;
}

std::string pluto::serve::encodeSimpleResponse(const std::string &IdJson,
                                               StatusCode S,
                                               const std::string &Error) {
  std::string Out = head(IdJson);
  Out += ',';
  appendStr(Out, "status", statusCodeName(S));
  if (!Error.empty()) {
    Out += ',';
    appendStr(Out, "error", Error);
  }
  Out += '}';
  return Out;
}

std::string pluto::serve::encodeMetricsResponse(
    const std::string &IdJson, const std::string &MetricsJson) {
  std::string Out = head(IdJson);
  Out += ',';
  appendStr(Out, "status", statusCodeName(StatusCode::Ok));
  Out += ",\"metrics\":";
  Out += MetricsJson;
  Out += '}';
  return Out;
}

std::string pluto::serve::encodeTuneResponse(
    const std::string &IdJson, StatusCode S, const std::string &Name,
    const std::string &WinnerKey, const std::string &WinnerC,
    const std::string &Error, const std::string &TraceJson) {
  std::string Out = head(IdJson);
  Out += ',';
  appendStr(Out, "status", statusCodeName(S));
  if (!Name.empty()) {
    Out += ',';
    appendStr(Out, "name", Name);
  }
  if (S == StatusCode::Ok) {
    if (!WinnerKey.empty()) {
      Out += ',';
      appendStr(Out, "key", WinnerKey);
    }
    Out += ',';
    appendStr(Out, "emitted_c", WinnerC);
  } else if (!Error.empty()) {
    Out += ',';
    appendStr(Out, "error", Error);
  }
  if (!TraceJson.empty()) {
    Out += ",\"trace\":";
    Out += TraceJson;
  }
  Out += '}';
  return Out;
}

Result<WireResponse> pluto::serve::decodeResponse(const std::string &Line) {
  auto Doc = JsonValue::parse(Line);
  if (!Doc)
    return Err("malformed JSON: " + Doc.error());
  if (!Doc->isObject())
    return Err("response must be a JSON object");

  const JsonValue *Ver = Doc->find("plutod");
  if (!Ver || !Ver->isInteger() || Ver->asInt() != ProtocolVersion)
    return Err("missing or unsupported \"plutod\" protocol version");

  WireResponse R;
  if (const JsonValue *Id = Doc->find("id"))
    R.Id = Id->toJson();

  const JsonValue *St = Doc->find("status");
  if (!St || !St->isString())
    return Err("missing or non-string \"status\" member");
  auto Code = statusCodeFromName(St->asString());
  if (!Code)
    return Err("unknown status \"" + St->asString() + "\"");
  R.Status = *Code;

  if (const JsonValue *V = Doc->find("name"); V && V->isString())
    R.Name = V->asString();
  if (const JsonValue *V = Doc->find("key"); V && V->isString())
    R.Key = V->asString();
  if (const JsonValue *V = Doc->find("emitted_c"); V && V->isString())
    R.EmittedC = V->asString();
  if (const JsonValue *V = Doc->find("cache_hit"); V && V->isBool())
    R.CacheHit = V->asBool();
  if (const JsonValue *V = Doc->find("error"); V && V->isString())
    R.Error = V->asString();
  if (const JsonValue *V = Doc->find("metrics"))
    R.MetricsJson = V->toJson();
  if (const JsonValue *V = Doc->find("trace"))
    R.TraceJson = V->toJson();

  if (const JsonValue *Ds = Doc->find("diagnostics"); Ds && Ds->isArray()) {
    for (const JsonValue &DV : Ds->array()) {
      if (!DV.isObject())
        continue;
      Diagnostic D;
      if (const JsonValue *V = DV.find("line"); V && V->isInteger())
        D.Line = static_cast<unsigned>(V->asInt());
      if (const JsonValue *V = DV.find("col"); V && V->isInteger())
        D.Col = static_cast<unsigned>(V->asInt());
      if (const JsonValue *V = DV.find("severity"); V && V->isString())
        D.Sev = V->asString() == "warning" ? Severity::Warning
                                           : Severity::Error;
      if (const JsonValue *V = DV.find("message"); V && V->isString())
        D.Message = V->asString();
      R.Diags.push_back(std::move(D));
    }
  }
  return R;
}
