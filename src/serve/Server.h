//===- serve/Server.h - plutod concurrent compile server --------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plutod server core: an AF_UNIX stream listener speaking the NDJSON
/// protocol of serve/Protocol.h, multiplexing compile jobs onto a pool of
/// worker threads that each drive per-fingerprint Pipeline sessions
/// against one shared lock-sharded result cache.
///
/// Threading model (three kinds of threads, no fd is ever touched by
/// two):
///
///  - one event-loop thread owns every file descriptor: it accepts
///    connections, does all non-blocking reads (splitting the byte
///    stream into request lines) and all writes (draining per-connection
///    outbound buffers), and answers ping/metrics/bad-request/overload
///    inline;
///  - N worker threads pop admitted compile jobs, run them through a
///    Pipeline session cached per options fingerprint, and append the
///    encoded response to the owning connection's outbound buffer (then
///    wake the event loop through the self-pipe);
///  - callers' threads only use start()/drain()/stats()/metricsJson().
///
/// Robustness contract (what serve_test and the sanitizer soak pin):
///
///  - bounded admission: at most Config.MaxQueue compile jobs are queued;
///    beyond that a request is answered `overloaded` immediately and
///    counted, never silently dropped;
///  - per-client fairness: queued jobs are scheduled round-robin across
///    connections, so one chatty client cannot starve the rest however
///    deep its pipeline of requests is;
///  - byte caps: a request line longer than Config.MaxRequestBytes is
///    answered `bad-request` and the stream resynchronizes at the next
///    newline - the connection survives;
///  - request timeouts: a job that waited in the queue longer than
///    Config.RequestTimeoutMs is answered `overloaded` ("deadline
///    exceeded") instead of compiling stale work;
///  - graceful drain: drain() stops accepting, lets every already-
///    accepted job finish, flushes every outbound buffer, then tears the
///    threads down - after drain() stats() satisfies
///    RequestsAccepted == RequestsCompleted (the zero-dropped-jobs
///    invariant).
///
/// The server installs its own PassStats sink for its lifetime, so the
/// metrics document carries every toolchain counter plus the "server",
/// "cache" and "latency_ms" extras.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVE_SERVER_H
#define PLUTOPP_SERVE_SERVER_H

#include "observe/PassStats.h"
#include "serve/Protocol.h"
#include "serve/Sandbox.h"
#include "serve/ShardedCache.h"
#include "service/Pipeline.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pluto {
namespace serve {

struct ServerConfig {
  /// Filesystem path of the AF_UNIX listening socket. A stale socket file
  /// from a dead daemon is unlinked before binding.
  std::string SocketPath;
  /// Compile worker threads; 0 = hardware concurrency.
  unsigned Workers = 0;
  /// Result-cache shards (>= 1) and total in-memory budget (split across
  /// shards), plus the optional shared disk tier.
  unsigned CacheShards = 8;
  size_t CacheMaxBytes = 64ull << 20;
  std::string CacheDir;
  /// Bounded admission queue: compile jobs queued across all connections;
  /// beyond this new requests are rejected `overloaded`.
  size_t MaxQueue = 128;
  /// Byte cap on one request line (admission rejects longer ones).
  size_t MaxRequestBytes = 8ull << 20;
  /// Queue-wait deadline per request in milliseconds; 0 = unlimited.
  long long RequestTimeoutMs = 0;
  /// Structured per-request log stream (one JSON line per request);
  /// null disables logging.
  std::FILE *LogStream = nullptr;
  /// Run every compile in a forked sandbox worker (one child per worker
  /// thread, serve/Sandbox.h): a crash, OOM or hang costs one child, not
  /// the daemon, and is answered as a structured error.
  bool Isolate = false;
  /// Server-wide per-compile wall-clock ceiling in milliseconds, merged
  /// tightest with each request's own budget; with Isolate it also arms
  /// the parent-side watchdog kill. 0 = none.
  long long CompileTimeoutMs = 0;
  /// Server-wide per-compile memory budget in MiB, merged into each
  /// request's budget; with Isolate it also caps the sandbox child's
  /// address space (RLIMIT_AS). 0 = none.
  long long MaxMemoryMb = 0;
  /// Crash circuit breaker (Isolate only): a cache key whose compile
  /// crashed or killed a sandbox worker is answered with the remembered
  /// error - without recompiling - for this long. 0 disables.
  long long BreakerTtlMs = 30000;
};

/// Latency histogram with fixed millisecond buckets (upper bounds) plus
/// a +Inf overflow bucket; counts are cumulative-free (per bucket).
struct LatencyHistogram {
  static constexpr double BucketUpperMs[] = {0.5,  1,   2,   5,    10,  25,
                                             50,   100, 250, 500,  1000,
                                             2500, 5000};
  static constexpr unsigned NumBuckets =
      sizeof(BucketUpperMs) / sizeof(BucketUpperMs[0]) + 1; // + "+Inf"

  uint64_t Counts[NumBuckets] = {};
  uint64_t Total = 0;
  double SumMs = 0;

  void record(double Ms);
  /// {"buckets_ms": [...], "counts": [...], "count": N, "sum_ms": S}
  std::string toJson() const;
};

class Server {
public:
  /// Counters describing the serving side only (the toolchain counters
  /// live in PassStats; the cache counters in the cache snapshot).
  struct Stats {
    uint64_t ConnectionsAccepted = 0;
    uint64_t ConnectionsClosed = 0;
    /// Compile jobs admitted to the queue. The drain invariant is
    /// RequestsAccepted == RequestsCompleted: every admitted job is
    /// answered, even if only with a timeout.
    uint64_t RequestsAccepted = 0;
    uint64_t RequestsCompleted = 0;
    /// Compile requests refused at admission (queue full or draining).
    uint64_t RejectedOverload = 0;
    /// Lines answered bad-request before admission (undecodable JSON,
    /// oversized, protocol errors).
    uint64_t BadRequests = 0;
    /// Admitted jobs answered `overloaded` because their queue-wait
    /// deadline passed (also counted in RequestsCompleted).
    uint64_t TimedOut = 0;
    uint64_t PingsServed = 0;
    uint64_t MetricsServed = 0;
    /// Sandbox workers replaced after a crash, kill or external death
    /// (Isolate only; the initial spawns do not count).
    uint64_t SandboxRestarts = 0;
    /// Compile requests answered from the crash circuit breaker instead
    /// of being re-dispatched to a sandbox worker.
    uint64_t BreakerHits = 0;
    /// Instantaneous gauges.
    uint64_t QueueDepth = 0;
    uint64_t InFlight = 0;
    uint64_t OpenConnections = 0;
  };

  /// Binds and listens (but serves nothing until start()). Fails with a
  /// message on socket/bind/listen errors or an invalid configuration.
  static Result<std::unique_ptr<Server>> create(ServerConfig C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Launches the event loop and the worker pool. Returns immediately.
  void start();

  /// Graceful shutdown: stop accepting connections and admitting work,
  /// answer everything already admitted, flush every connection, join
  /// all threads, close the socket. Idempotent; also run by ~Server().
  void drain();

  const std::string &socketPath() const { return Cfg.SocketPath; }

  Stats stats() const;
  ResultCache::Snapshot cacheSnapshot() const { return Cache->snapshot(); }
  LatencyHistogram latency() const;

  /// The full metrics document: PassStats (every toolchain counter and
  /// pass timer, "schema": 2) plus "server", "cache" and "latency_ms"
  /// top-level members. Pretty-printed; minifyJson() it for the wire.
  std::string metricsJson() const;

private:
  struct Conn;
  struct Job;

  explicit Server(ServerConfig C);

  void eventLoop();
  void workerLoop(unsigned Idx);
  /// Isolated compile path: parent-side cache lookup and circuit-breaker
  /// check, then the round trip through worker Idx's sandbox child.
  CompileResponse isolatedCompile(Pipeline &Session, SandboxWorker &SB,
                                  const CompileRequest &Req);
  /// Handles one complete request line from C (event-loop thread only).
  void handleLine(const std::shared_ptr<Conn> &C, std::string Line);
  /// Appends Line + '\n' to C's outbound buffer (any thread).
  void sendLine(const std::shared_ptr<Conn> &C, const std::string &Line);
  void logRequest(const std::shared_ptr<Conn> &C, const std::string &Name,
                  StatusCode S, bool CacheHit, double Ms);
  void wake();

  ServerConfig Cfg;
  int ListenFd = -1;
  int WakeRd = -1, WakeWr = -1;
  /// Shared because every Pipeline session holds a reference via
  /// attachCache().
  std::shared_ptr<ShardedResultCache> Cache;

  std::thread LoopThread;
  std::vector<std::thread> WorkerThreads;
  /// One sandbox child per worker thread (Isolate only). Created in
  /// start() before any thread launches - so the initial forks happen
  /// while the process is still single-threaded - and never resized
  /// afterwards, which makes lock-free reads from stats() safe.
  std::vector<std::unique_ptr<SandboxWorker>> Sandboxes;

  /// Crash circuit breaker: cache key -> the remembered failure, honored
  /// until Expiry. Guarded by BreakerMu.
  struct BreakerEntry {
    std::chrono::steady_clock::time_point Expiry;
    StatusCode Status = StatusCode::Internal;
    std::string Error;
  };
  mutable std::mutex BreakerMu;
  std::unordered_map<std::string, BreakerEntry> Breaker;

  // Scheduler state: per-connection job deques linked into a round-robin
  // ring of connections that have pending work. Guarded by SchedMu.
  mutable std::mutex SchedMu;
  std::condition_variable SchedCv;  ///< workers wait for jobs
  std::condition_variable DrainCv;  ///< drain() waits for quiescence
  std::deque<std::shared_ptr<Conn>> ReadyConns;
  size_t QueuedJobs = 0;
  size_t InFlightJobs = 0;
  bool Draining = false;
  bool StopWorkers = false;
  bool StopLoop = false;
  bool Started = false;
  bool Drained = false;

  mutable std::mutex StatsMu;
  Stats Counters;
  LatencyHistogram Latency;
  PassStats ToolStats;

  // Event-loop-owned connection table (no lock: only that thread touches
  // it).
  std::vector<std::shared_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
};

} // namespace serve
} // namespace pluto

#endif // PLUTOPP_SERVE_SERVER_H
