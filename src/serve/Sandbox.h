//===- serve/Sandbox.h - Forked sandbox compile workers ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault isolation for plutod compile jobs: a SandboxWorker owns one forked
/// child process and round-trips CompileRequests through it over a
/// socketpair, reusing the NDJSON codecs of serve/Protocol.h verbatim. A
/// compile that crashes, OOMs or hangs then takes down only the child; the
/// parent classifies the death into the StatusCode taxonomy
/// (ResourceExhausted for rlimit/watchdog kills, Internal for crashes),
/// answers the client with a structured error, and lazily respawns the
/// worker for the next job.
///
/// Enforcement is belt and braces, from softest to hardest:
///
///  - the request's cooperative Budget (support/Budget.h) travels on the
///    wire and trips inside the child, producing a clean in-band
///    resource-exhausted response;
///  - the child caps its own CPU time per request (soft RLIMIT_CPU derived
///    from the wall budget) - a spin that never reaches a budget check dies
///    with SIGXCPU;
///  - the child caps its address space at spawn (RLIMIT_AS, when a memory
///    budget is configured) - a hidden allocation storm fails allocation or
///    dies rather than OOMing the daemon;
///  - the parent runs a wall-clock watchdog per request and SIGKILLs a
///    child that blows through its deadline (catches uninterruptible hangs
///    the child-side limits cannot).
///
/// The child runs Pipeline sessions with no attached cache and in
/// single-thread mode (a forked child must not re-enter the parent's
/// OpenMP runtime); caching, keying and the crash circuit breaker stay in
/// the parent (serve/Server.cpp).
///
/// Fault sites (support/FaultInjector.h): `sandbox.spawn` fails the fork,
/// `sandbox.abort` makes the child abort() on a request, `sandbox.hang`
/// makes it sleep past any deadline - the three let tests exercise every
/// parent-side recovery path deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVE_SANDBOX_H
#define PLUTOPP_SERVE_SANDBOX_H

#include "service/CompileService.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace pluto {
namespace serve {

struct SandboxConfig {
  /// Address-space rlimit for the child, in bytes, applied once at spawn;
  /// 0 leaves the limit alone. The child adds a fixed headroom for its own
  /// code/stack/runtime so the cooperative budget (which tracks transient
  /// pass allocations only) trips first on well-behaved inputs.
  uint64_t MemoryRlimitBytes = 0;
  /// Slack added to a request's wall budget before the parent watchdog
  /// SIGKILLs the child, so the child's own (cleaner) in-band budget trip
  /// wins the race under normal scheduling.
  uint64_t WatchdogGraceMs = 500;
};

/// One sandboxed compile worker: a forked child plus the parent-side state
/// to talk to it, watch it, and replace it. Not thread-safe; the server
/// gives each worker thread its own SandboxWorker.
class SandboxWorker {
public:
  explicit SandboxWorker(SandboxConfig C = SandboxConfig());
  ~SandboxWorker();
  SandboxWorker(const SandboxWorker &) = delete;
  SandboxWorker &operator=(const SandboxWorker &) = delete;

  /// Round-trips Req through the child (spawning or respawning it if
  /// needed) and returns its response, or a synthesized
  /// ResourceExhausted/Internal response if the child was killed, crashed
  /// or hung. When WorkerDied is non-null it is set to true iff processing
  /// *this request* cost the child its life (the server's circuit breaker
  /// keys off that).
  CompileResponse compile(const CompileRequest &Req,
                          bool *WorkerDied = nullptr);

  /// Times a dead (or externally killed) worker was replaced by a fresh
  /// child. The first spawn does not count.
  uint64_t restarts() const {
    return Restarts.load(std::memory_order_relaxed);
  }

  /// The live child's pid, or -1. Tests use this to kill -9 the worker.
  pid_t childPid() const { return ChildPid; }

private:
  /// Forks a fresh child (fault site `sandbox.spawn`). False + Error on
  /// failure.
  bool spawnChild(std::string &Error);
  /// SIGKILLs and reaps the child, if any; resets all per-child state.
  void killChild();
  /// Reaps an already-dead child and classifies its wait status into a
  /// response for Req.
  CompileResponse classifyDeath(const CompileRequest &Req);

  SandboxConfig Cfg;
  pid_t ChildPid = -1;
  int ChildFd = -1;        ///< parent end of the socketpair
  std::string InBuf;       ///< partial response bytes from the child
  bool EverSpawned = false;
  std::atomic<uint64_t> Restarts{0};
};

} // namespace serve
} // namespace pluto

#endif // PLUTOPP_SERVE_SANDBOX_H
