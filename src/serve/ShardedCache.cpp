//===- serve/ShardedCache.cpp - Lock-sharded result cache -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "serve/ShardedCache.h"

#include <functional>

using namespace pluto;
using namespace pluto::serve;

ShardedResultCache::ShardedResultCache(Config C)
    // The base-class tiers are never used (every entry point is
    // overridden to route into a shard); give it a zero budget so it
    // cannot hold memory.
    : ResultCache(ResultCache::Config{0, std::string()}) {
  unsigned N = C.Shards ? C.Shards : 1;
  size_t PerShard = C.MaxBytes / N;
  Shards.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Shards.push_back(std::make_unique<ResultCache>(
        ResultCache::Config{PerShard, C.DiskDir}));
}

unsigned ShardedResultCache::shardIndex(const std::string &Key) const {
  // Keys are sha256 hex; the leading digits are uniform, so folding the
  // first four is enough for balance. Non-hex keys (tests, foreign
  // callers) fall through to std::hash.
  unsigned V = 0;
  unsigned Digits = 0;
  for (char C : Key) {
    unsigned D;
    if (C >= '0' && C <= '9')
      D = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<unsigned>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      D = static_cast<unsigned>(C - 'A') + 10;
    else
      break;
    V = V * 16 + D;
    if (++Digits == 4)
      break;
  }
  if (Digits == 0)
    V = static_cast<unsigned>(std::hash<std::string>{}(Key));
  return V % static_cast<unsigned>(Shards.size());
}

std::optional<std::string>
ShardedResultCache::lookup(const std::string &Key) {
  return Shards[shardIndex(Key)]->lookup(Key);
}

void ShardedResultCache::insert(const std::string &Key,
                                const std::string &Value) {
  Shards[shardIndex(Key)]->insert(Key, Value);
}

Result<std::string> ShardedResultCache::getOrCompute(
    const std::string &Key,
    const std::function<Result<std::string>()> &Compute) {
  return Shards[shardIndex(Key)]->getOrCompute(Key, Compute);
}

bool ShardedResultCache::diskEnabled() const {
  return Shards.front()->diskEnabled();
}

ResultCache::Snapshot ShardedResultCache::snapshot() const {
  Snapshot Sum;
  for (const auto &S : Shards)
    Sum += S->snapshot();
  return Sum;
}
