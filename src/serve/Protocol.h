//===- serve/Protocol.h - plutod NDJSON wire protocol -----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plutod wire protocol: newline-delimited JSON over a local stream
/// socket, one request object per line in, one response object per line
/// out. Version 1 grammar:
///
///   request  := {"plutod": 1, "op": "compile" | "ping" | "metrics"
///                             | "tune",
///                "id": <any JSON value, echoed verbatim>,
///                "name": <string, compile/tune only, optional>,
///                "source": <string, compile/tune only>,
///                "options": <object, compile/tune only, optional>,
///                "spec": <string, tune only, optional>}
///   response := {"plutod": 1, "id": <echo>, "status": <StatusCode name>,
///                ... status-dependent payload ...}
///
/// Compile responses carry "key", "cache_hit" and "emitted_c" on ok;
/// "error" plus a "diagnostics" array (the same serializer the plutopp
/// --report=json schema uses) on source-error; "error" alone otherwise.
/// Metrics responses carry the full stats document under "metrics".
/// Tune requests run the autotuner (tune::explore) over "source": the
/// "options" object is the base configuration, "spec" the search-space
/// string of plutopp --tune= (parsed at admission, so a malformed spec is
/// a bad-request). Tune responses carry the winner's "key" and
/// "emitted_c" plus the minified search trace under "trace" on ok;
/// "error" (and "trace" when the search produced one) otherwise.
/// The "options" object mirrors the plutopp transformation flags in
/// snake_case (tile, tile_size, l2tile, l2tile_size, parallel,
/// wavefront_degrees, vectorize, include_input_deps, param_min,
/// fast_schedule); absent keys take PlutoOptions defaults and unknown
/// keys are a bad-request, so client typos fail loudly instead of
/// silently compiling with defaults.
///
/// Encode/decode here is pure string work - no sockets - so the tests
/// can round-trip the protocol without a daemon.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVE_PROTOCOL_H
#define PLUTOPP_SERVE_PROTOCOL_H

#include "service/CompileService.h"
#include "support/Json.h"

#include <string>
#include <vector>

namespace pluto {
namespace serve {

/// Version stamped into (and required of) every wire object.
constexpr int ProtocolVersion = 1;

enum class Op {
  Compile,
  Ping,
  Metrics,
  Tune,
};

/// One decoded request line.
struct WireRequest {
  Op Operation = Op::Ping;
  /// Raw JSON text of the client's "id" member, echoed verbatim into the
  /// response so clients can pipeline requests; "null" when absent.
  std::string Id = "null";
  /// Populated for Op::Compile and Op::Tune (name, source, base options,
  /// budget).
  CompileRequest Req;
  /// Search-space spec (Op::Tune only); empty = tuner defaults.
  std::string Spec;
};

/// One decoded response line (the client-side view).
struct WireResponse {
  StatusCode Status = StatusCode::Internal;
  std::string Id = "null"; ///< raw JSON text of the echoed id
  std::string Name;
  std::string Key;
  std::string EmittedC;
  bool CacheHit = false;
  std::vector<Diagnostic> Diags;
  std::string Error;
  /// Raw JSON text of the "metrics" member (metrics responses only).
  std::string MetricsJson;
  /// Raw JSON text of the "trace" member (tune responses only).
  std::string TraceJson;

  bool ok() const { return Status == StatusCode::Ok; }
};

/// PlutoOptions -> the wire "options" object (every key, snake_case).
std::string optionsToJson(const PlutoOptions &O);

/// The wire "options" object -> PlutoOptions. V must be a JSON object;
/// absent keys keep defaults, unknown keys or wrong types are errors.
/// Does not run PlutoOptions::validate() - admission does that so the
/// failure is classified as bad-request with the field name.
Result<PlutoOptions> optionsFromJson(const JsonValue &V);

/// One-line request encoding (no trailing newline).
std::string encodeRequest(const WireRequest &R);

/// Parses and validates one request line. Errors are client-facing
/// bad-request messages (unversioned object, unknown op, missing source,
/// malformed options...).
Result<WireRequest> decodeRequest(const std::string &Line);

/// One-line encoding of a compile response under echo id IdJson.
std::string encodeResponse(const std::string &IdJson,
                           const CompileResponse &Resp);

/// One-line non-compile response: status + optional error. Used for ping
/// acks, admission rejections and protocol errors.
std::string encodeSimpleResponse(const std::string &IdJson, StatusCode S,
                                 const std::string &Error);

/// One-line metrics response; MetricsJson must already be a single-line
/// JSON value (minifyJson the stats document first).
std::string encodeMetricsResponse(const std::string &IdJson,
                                  const std::string &MetricsJson);

/// One-line tune response: status, optional name, winner key + emitted C
/// and the minified search trace on ok; error (+ trace when non-empty)
/// otherwise. TraceJson must already be a single-line JSON value.
std::string encodeTuneResponse(const std::string &IdJson, StatusCode S,
                               const std::string &Name,
                               const std::string &WinnerKey,
                               const std::string &WinnerC,
                               const std::string &Error,
                               const std::string &TraceJson);

/// Parses one response line into the client-side view.
Result<WireResponse> decodeResponse(const std::string &Line);

} // namespace serve
} // namespace pluto

#endif // PLUTOPP_SERVE_PROTOCOL_H
