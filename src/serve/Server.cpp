//===- serve/Server.cpp - plutod concurrent compile server ----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "support/FaultInjector.h"
#include "support/Json.h"
#include "tune/Tuner.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <unordered_map>

using namespace pluto;
using namespace pluto::serve;

using Clock = std::chrono::steady_clock;

constexpr double LatencyHistogram::BucketUpperMs[];

void LatencyHistogram::record(double Ms) {
  unsigned B = 0;
  while (B < NumBuckets - 1 && Ms > BucketUpperMs[B])
    ++B;
  ++Counts[B];
  ++Total;
  SumMs += Ms;
}

std::string LatencyHistogram::toJson() const {
  std::string Out = "{\"buckets_ms\": [";
  char Buf[64];
  for (unsigned I = 0; I < NumBuckets - 1; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s%g", I ? ", " : "", BucketUpperMs[I]);
    Out += Buf;
  }
  Out += ", \"+Inf\"], \"counts\": [";
  for (unsigned I = 0; I < NumBuckets; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s%llu", I ? ", " : "",
                  static_cast<unsigned long long>(Counts[I]));
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "], \"count\": %llu, \"sum_ms\": %.3f}",
                static_cast<unsigned long long>(Total), SumMs);
  Out += Buf;
  return Out;
}

/// One admitted compile or tune job, waiting in its connection's deque.
struct Server::Job {
  std::string Id; ///< raw JSON echo id
  CompileRequest Req;
  bool IsTune = false;
  std::string Spec; ///< tune search-space spec (validated at admission)
  Clock::time_point Admitted;
};

/// One client connection. The file descriptor and the inbound buffer are
/// owned by the event-loop thread; the outbound buffer is shared with the
/// workers under OutMu; the job deque is scheduler state under SchedMu.
struct Server::Conn {
  int Fd = -1;
  uint64_t Id = 0;

  // Event-loop thread only.
  std::string InBuf;
  bool Discarding = false; ///< skipping to the next newline after an
                           ///< oversized line

  // Shared with workers.
  std::mutex OutMu;
  std::string OutBuf;
  bool Closed = false; ///< fd closed; further sends are dropped

  // Guarded by the server's SchedMu.
  std::deque<Job> Jobs;
  bool InRing = false;

  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

static void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

Server::Server(ServerConfig C) : Cfg(std::move(C)) {}

Result<std::unique_ptr<Server>> Server::create(ServerConfig C) {
  if (C.SocketPath.empty())
    return Err("server needs a socket path");
  sockaddr_un Addr;
  if (C.SocketPath.size() >= sizeof(Addr.sun_path))
    return Err("socket path too long (max " +
               std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)");
  if (C.Workers == 0) {
    C.Workers = std::thread::hardware_concurrency();
    if (C.Workers == 0)
      C.Workers = 2;
  }
  if (C.CacheShards == 0)
    C.CacheShards = 1;
  if (C.MaxQueue == 0)
    C.MaxQueue = 1;

  std::unique_ptr<Server> S(new Server(std::move(C)));

  ShardedResultCache::Config CC;
  CC.Shards = S->Cfg.CacheShards;
  CC.MaxBytes = S->Cfg.CacheMaxBytes;
  CC.DiskDir = S->Cfg.CacheDir;
  S->Cache = std::make_shared<ShardedResultCache>(CC);

  S->ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (S->ListenFd < 0)
    return Err(std::string("socket(): ") + std::strerror(errno));
  setNonBlocking(S->ListenFd);

  // A stale socket file from a dead daemon would fail bind() with
  // EADDRINUSE; a live daemon holds the listening socket, not the inode,
  // so unlinking is safe either way (the live daemon keeps serving its
  // existing connections but new clients reach us).
  ::unlink(S->Cfg.SocketPath.c_str());
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, S->Cfg.SocketPath.c_str(),
              S->Cfg.SocketPath.size());
  if (::bind(S->ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0)
    return Err("bind(" + S->Cfg.SocketPath + "): " + std::strerror(errno));
  if (::listen(S->ListenFd, 64) < 0)
    return Err(std::string("listen(): ") + std::strerror(errno));

  int Pipe[2];
  if (::pipe2(Pipe, O_NONBLOCK | O_CLOEXEC) < 0)
    return Err(std::string("pipe2(): ") + std::strerror(errno));
  S->WakeRd = Pipe[0];
  S->WakeWr = Pipe[1];
  return S;
}

Server::~Server() {
  drain();
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (WakeRd >= 0)
    ::close(WakeRd);
  if (WakeWr >= 0)
    ::close(WakeWr);
}

void Server::start() {
  {
    std::lock_guard<std::mutex> L(SchedMu);
    if (Started)
      return;
    Started = true;
  }
  // The daemon's own PassStats sink: every pipeline a worker runs feeds
  // it, so the metrics endpoint sees all toolchain counters. (In isolate
  // mode the children's toolchain counters stay in the children; the
  // metrics document reflects parent-side events.)
  setActiveStats(&ToolStats);
  // One sandbox per worker thread, created (not yet forked - the children
  // spawn lazily on first use) before the threads so the vector is
  // immutable once any thread can see it.
  if (Cfg.Isolate) {
    SandboxConfig SC;
    if (Cfg.MaxMemoryMb > 0)
      SC.MemoryRlimitBytes = static_cast<uint64_t>(Cfg.MaxMemoryMb) << 20;
    for (unsigned I = 0; I < Cfg.Workers; ++I)
      Sandboxes.push_back(std::make_unique<SandboxWorker>(SC));
  }
  LoopThread = std::thread([this] { eventLoop(); });
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    WorkerThreads.emplace_back([this, I] { workerLoop(I); });
}

void Server::wake() {
  char B = 1;
  (void)!::write(WakeWr, &B, 1); // pipe full = a wakeup is already queued
}

void Server::drain() {
  {
    std::lock_guard<std::mutex> L(SchedMu);
    if (!Started || Drained) {
      Drained = true;
      return;
    }
    Draining = true;
  }
  wake(); // stop accepting immediately

  // Phase 1: every admitted job answered.
  {
    std::unique_lock<std::mutex> L(SchedMu);
    DrainCv.wait(L, [this] { return QueuedJobs == 0 && InFlightJobs == 0; });
    StopWorkers = true;
  }
  SchedCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();
  WorkerThreads.clear();

  // Phase 2: flush outbound buffers, then tear down the event loop.
  {
    std::lock_guard<std::mutex> L(SchedMu);
    StopLoop = true;
  }
  wake();
  if (LoopThread.joinable())
    LoopThread.join();

  if (activeStats() == &ToolStats)
    setActiveStats(nullptr);
  ::unlink(Cfg.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> L(SchedMu);
    Drained = true;
  }
}

Server::Stats Server::stats() const {
  Stats S;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    S = Counters;
  }
  // The sandbox vector is immutable after start(); restarts() is atomic.
  for (const auto &SB : Sandboxes)
    S.SandboxRestarts += SB->restarts();
  std::lock_guard<std::mutex> L(SchedMu);
  S.QueueDepth = QueuedJobs;
  S.InFlight = InFlightJobs;
  return S;
}

LatencyHistogram Server::latency() const {
  std::lock_guard<std::mutex> L(StatsMu);
  return Latency;
}

std::string Server::metricsJson() const {
  Stats S = stats();
  ResultCache::Snapshot CS = Cache->snapshot();
  std::string Extra;
  {
    char Buf[768];
    std::snprintf(
        Buf, sizeof(Buf),
        "\"server\": {\"workers\": %u, \"cache_shards\": %u, "
        "\"connections_accepted\": %llu, \"connections_closed\": %llu, "
        "\"open_connections\": %llu, \"requests_accepted\": %llu, "
        "\"requests_completed\": %llu, \"rejected_overload\": %llu, "
        "\"bad_requests\": %llu, \"timed_out\": %llu, \"pings\": %llu, "
        "\"metrics_requests\": %llu, \"sandbox_restarts\": %llu, "
        "\"breaker_hits\": %llu, \"queue_depth\": %llu, "
        "\"in_flight\": %llu},\n  ",
        Cfg.Workers, Cfg.CacheShards,
        static_cast<unsigned long long>(S.ConnectionsAccepted),
        static_cast<unsigned long long>(S.ConnectionsClosed),
        static_cast<unsigned long long>(S.OpenConnections),
        static_cast<unsigned long long>(S.RequestsAccepted),
        static_cast<unsigned long long>(S.RequestsCompleted),
        static_cast<unsigned long long>(S.RejectedOverload),
        static_cast<unsigned long long>(S.BadRequests),
        static_cast<unsigned long long>(S.TimedOut),
        static_cast<unsigned long long>(S.PingsServed),
        static_cast<unsigned long long>(S.MetricsServed),
        static_cast<unsigned long long>(S.SandboxRestarts),
        static_cast<unsigned long long>(S.BreakerHits),
        static_cast<unsigned long long>(S.QueueDepth),
        static_cast<unsigned long long>(S.InFlight));
    Extra += Buf;
    std::snprintf(
        Buf, sizeof(Buf),
        "\"cache\": {\"hits\": %llu, \"disk_hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"coalesced\": %llu, \"bytes\": %llu, "
        "\"entries\": %llu},\n  ",
        static_cast<unsigned long long>(CS.Hits),
        static_cast<unsigned long long>(CS.DiskHits),
        static_cast<unsigned long long>(CS.Misses),
        static_cast<unsigned long long>(CS.Evictions),
        static_cast<unsigned long long>(CS.Coalesced),
        static_cast<unsigned long long>(CS.Bytes),
        static_cast<unsigned long long>(CS.Entries));
    Extra += Buf;
  }
  Extra += "\"latency_ms\": ";
  Extra += latency().toJson();
  return ToolStats.toJson(nullptr, &Extra);
}

void Server::sendLine(const std::shared_ptr<Conn> &C, const std::string &Line) {
  {
    std::lock_guard<std::mutex> L(C->OutMu);
    if (C->Closed)
      return; // client went away; the response is dropped, not the job
    C->OutBuf += Line;
    C->OutBuf += '\n';
  }
  wake();
}

void Server::logRequest(const std::shared_ptr<Conn> &C, const std::string &Name,
                        StatusCode S, bool CacheHit, double Ms) {
  if (!Cfg.LogStream)
    return;
  auto Now = std::chrono::system_clock::now().time_since_epoch();
  long long UnixMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(Now).count();
  std::string Line = "{\"ts_ms\": " + std::to_string(UnixMs) +
                     ", \"conn\": " + std::to_string(C->Id) + ", \"name\": " +
                     jsonQuote(Name) + ", \"status\": \"" +
                     statusCodeName(S) + "\", \"cache_hit\": " +
                     (CacheHit ? "true" : "false");
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), ", \"latency_ms\": %.3f}\n", Ms);
  Line += Buf;
  std::fputs(Line.c_str(), Cfg.LogStream);
  std::fflush(Cfg.LogStream);
}

void Server::handleLine(const std::shared_ptr<Conn> &C, std::string Line) {
  if (Line.size() > Cfg.MaxRequestBytes) {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.BadRequests;
    }
    sendLine(C, encodeSimpleResponse(
                    "null", StatusCode::BadRequest,
                    "request line exceeds the " +
                        std::to_string(Cfg.MaxRequestBytes) + "-byte cap"));
    return;
  }

  auto R = decodeRequest(Line);
  if (!R) {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.BadRequests;
    }
    sendLine(C, encodeSimpleResponse("null", StatusCode::BadRequest,
                                     R.error()));
    return;
  }

  switch (R->Operation) {
  case Op::Ping: {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.PingsServed;
    }
    sendLine(C, encodeSimpleResponse(R->Id, StatusCode::Ok, ""));
    return;
  }
  case Op::Metrics: {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.MetricsServed;
    }
    sendLine(C, encodeMetricsResponse(R->Id, minifyJson(metricsJson())));
    return;
  }
  case Op::Compile:
  case Op::Tune:
    break;
  }

  // Reject unlowerable option sets at admission so they are classified
  // bad-request (a worker would only discover this later).
  if (auto V = R->Req.Opts.validate(); !V) {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.BadRequests;
    }
    sendLine(C, encodeSimpleResponse(R->Id, StatusCode::BadRequest,
                                     V.error()));
    return;
  }

  // Same early classification for a malformed tune spec: parse it now so
  // the client hears bad-request, not a late worker-side failure.
  if (R->Operation == Op::Tune) {
    tune::SearchSpace Space;
    tune::TuneOptions Probe;
    if (auto S = tune::parseSpec(R->Spec, Space, Probe); !S) {
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++Counters.BadRequests;
      }
      sendLine(C, encodeSimpleResponse(R->Id, StatusCode::BadRequest,
                                       S.error()));
      return;
    }
  }

  // Admission: bounded queue, reject-don't-drop.
  bool Admitted = false;
  std::string RejectReason;
  {
    std::lock_guard<std::mutex> L(SchedMu);
    if (Draining)
      RejectReason = "server is draining";
    else if (QueuedJobs >= Cfg.MaxQueue)
      RejectReason = "admission queue is full (" +
                     std::to_string(Cfg.MaxQueue) + " jobs)";
    else {
      Job J;
      J.Id = R->Id;
      J.Req = std::move(R->Req);
      J.IsTune = R->Operation == Op::Tune;
      J.Spec = std::move(R->Spec);
      J.Admitted = Clock::now();
      C->Jobs.push_back(std::move(J));
      if (!C->InRing) {
        C->InRing = true;
        ReadyConns.push_back(C);
      }
      ++QueuedJobs;
      Admitted = true;
    }
  }
  if (Admitted) {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.RequestsAccepted;
    }
    SchedCv.notify_one();
  } else {
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.RejectedOverload;
    }
    sendLine(C, encodeSimpleResponse(R->Id, StatusCode::Overloaded,
                                     RejectReason));
  }
}

CompileResponse Server::isolatedCompile(Pipeline &Session, SandboxWorker &SB,
                                        const CompileRequest &Req) {
  // The parent keeps keying and caching; only cold compiles cross into
  // the child. (No single-flight coalescing here: two workers may race on
  // one cold key and both pay the child round trip - a deliberate trade
  // for never blocking one sandbox on another's in-flight job.)
  std::string Key = Session.cacheKey(Req.Source);
  CompileResponse Resp;
  Resp.Name = Req.Name;
  Resp.Key = Key;
  if (auto V = Cache->lookup(Key)) {
    Resp.Status = StatusCode::Ok;
    Resp.EmittedC = std::move(*V);
    Resp.CacheHit = true;
    return Resp;
  }

  // Circuit breaker: a key that recently crashed or killed a worker is
  // answered from memory instead of being given another child to kill.
  if (Cfg.BreakerTtlMs > 0) {
    std::lock_guard<std::mutex> L(BreakerMu);
    auto It = Breaker.find(Key);
    if (It != Breaker.end()) {
      if (Clock::now() < It->second.Expiry) {
        {
          std::lock_guard<std::mutex> SL(StatsMu);
          ++Counters.BreakerHits;
        }
        Resp.Status = It->second.Status;
        Resp.Error = "circuit breaker open (this input recently killed a "
                     "sandbox worker): " +
                     It->second.Error;
        return Resp;
      }
      Breaker.erase(It);
    }
  }

  bool WorkerDied = false;
  CompileResponse Child = SB.compile(Req, &WorkerDied);
  Resp.Status = Child.Status;
  Resp.EmittedC = std::move(Child.EmittedC);
  Resp.Diags = std::move(Child.Diags);
  Resp.Error = std::move(Child.Error);
  if (WorkerDied && Cfg.BreakerTtlMs > 0) {
    std::lock_guard<std::mutex> L(BreakerMu);
    Breaker[Key] = BreakerEntry{
        Clock::now() + std::chrono::milliseconds(Cfg.BreakerTtlMs),
        Resp.Status, Resp.Error};
  }
  if (Resp.ok())
    Cache->insert(Key, Resp.EmittedC);
  return Resp;
}

void Server::workerLoop(unsigned Idx) {
  // One Pipeline session per distinct options fingerprint this worker has
  // seen: artifact memoization works within a session, the sharded cache
  // dedups across workers.
  std::unordered_map<std::string, std::unique_ptr<Pipeline>> Sessions;

  // Server-wide budget floor, merged tightest with each request's own.
  BudgetLimits ServerLimits;
  if (Cfg.CompileTimeoutMs > 0)
    ServerLimits.WallMs = static_cast<uint64_t>(Cfg.CompileTimeoutMs);
  if (Cfg.MaxMemoryMb > 0)
    ServerLimits.MaxMemoryBytes = static_cast<uint64_t>(Cfg.MaxMemoryMb)
                                  << 20;

  for (;;) {
    std::shared_ptr<Conn> C;
    Job J;
    {
      std::unique_lock<std::mutex> L(SchedMu);
      SchedCv.wait(L, [this] { return StopWorkers || !ReadyConns.empty(); });
      if (ReadyConns.empty()) {
        if (StopWorkers)
          return;
        continue;
      }
      // Round-robin across connections: take this connection's oldest
      // job, then rotate the connection to the back of the ring if it
      // still has work.
      C = std::move(ReadyConns.front());
      ReadyConns.pop_front();
      J = std::move(C->Jobs.front());
      C->Jobs.pop_front();
      if (!C->Jobs.empty())
        ReadyConns.push_back(C);
      else
        C->InRing = false;
      --QueuedJobs;
      ++InFlightJobs;
    }

    CompileResponse Resp;
    std::string RespLine; ///< pre-encoded reply (tune); empty = encode Resp
    bool TimedOutJob = false;
    if (Cfg.RequestTimeoutMs > 0 &&
        Clock::now() - J.Admitted >
            std::chrono::milliseconds(Cfg.RequestTimeoutMs)) {
      TimedOutJob = true;
      Resp.Status = StatusCode::Overloaded;
      Resp.Name = J.Req.Name;
      Resp.Error = "request deadline exceeded after " +
                   std::to_string(Cfg.RequestTimeoutMs) +
                   " ms in the queue";
    } else if (J.IsTune) {
      // Tune jobs bypass the per-fingerprint session map: explore() runs
      // its own frontend sessions per schedule group and compiles every
      // variant through the shared sharded cache. The search runs
      // in-parent even in isolate mode - per-variant status isolation
      // inside explore() contains variant failures. (The spec parsed at
      // admission; re-parsing here cannot fail.)
      tune::SearchSpace Space;
      tune::TuneOptions TuneOpts;
      TuneOpts.Base = J.Req.Opts;
      (void)tune::parseSpec(J.Spec, Space, TuneOpts);
      TuneOpts.Budget = BudgetLimits::tightest(J.Req.Budget, ServerLimits);
      TuneOpts.Cache = Cache;
      tune::TuneResult TR = tune::explore(J.Req.Source, Space, TuneOpts);
      Resp.Status = TR.Status;
      Resp.Name = J.Req.Name;
      Resp.Key = TR.WinnerKey;
      Resp.Error = TR.Error;
      RespLine = encodeTuneResponse(J.Id, TR.Status, J.Req.Name, TR.WinnerKey,
                                    TR.WinnerC, TR.Error,
                                    minifyJson(TR.traceJson()));
    } else {
      J.Req.Budget = BudgetLimits::tightest(J.Req.Budget, ServerLimits);
      std::string Fp = J.Req.Opts.fingerprint();
      auto It = Sessions.find(Fp);
      if (It == Sessions.end()) {
        auto P = Pipeline::create(J.Req.Opts);
        if (!P) { // unreachable: options were validated at admission
          Resp.Status = StatusCode::BadRequest;
          Resp.Name = J.Req.Name;
          Resp.Error = P.error();
        } else {
          auto Owned = std::make_unique<Pipeline>(std::move(*P));
          Owned->attachCache(Cache);
          It = Sessions.emplace(std::move(Fp), std::move(Owned)).first;
        }
      }
      if (It != Sessions.end())
        Resp = Cfg.Isolate
                   ? isolatedCompile(*It->second, *Sandboxes[Idx], J.Req)
                   : It->second->compileRequest(J.Req);
    }

    double Ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          J.Admitted)
                    .count();
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.RequestsCompleted;
      if (TimedOutJob)
        ++Counters.TimedOut;
      Latency.record(Ms);
    }
    logRequest(C, Resp.Name, Resp.Status, Resp.CacheHit, Ms);
    sendLine(C, RespLine.empty() ? encodeResponse(J.Id, Resp) : RespLine);

    bool Quiesced = false;
    {
      std::lock_guard<std::mutex> L(SchedMu);
      --InFlightJobs;
      Quiesced = Draining && QueuedJobs == 0 && InFlightJobs == 0;
    }
    if (Quiesced)
      DrainCv.notify_all();
  }
}

void Server::eventLoop() {
  std::vector<pollfd> Pfds;
  bool SawStop = false;
  Clock::time_point FlushDeadline;

  for (;;) {
    bool Accepting;
    bool Stopping;
    {
      std::lock_guard<std::mutex> L(SchedMu);
      Accepting = !Draining;
      Stopping = StopLoop;
    }

    // Exit once asked to stop and every reply is flushed (or the flush
    // grace period lapses - a client that never reads cannot hold the
    // daemon's shutdown hostage).
    bool AllFlushed = true;
    for (const auto &C : Conns) {
      std::lock_guard<std::mutex> L(C->OutMu);
      if (!C->Closed && !C->OutBuf.empty())
        AllFlushed = false;
    }
    if (Stopping) {
      if (!SawStop) {
        SawStop = true;
        FlushDeadline = Clock::now() + std::chrono::seconds(5);
      }
      if (AllFlushed || Clock::now() > FlushDeadline)
        break;
    }

    Pfds.clear();
    Pfds.push_back({WakeRd, POLLIN, 0});
    size_t ListenIdx = SIZE_MAX;
    if (Accepting) {
      ListenIdx = Pfds.size();
      Pfds.push_back({ListenFd, POLLIN, 0});
    }
    size_t ConnBase = Pfds.size();
    size_t NumPolled = Conns.size();
    for (const auto &C : Conns) {
      short Ev = POLLIN;
      {
        std::lock_guard<std::mutex> L(C->OutMu);
        if (!C->OutBuf.empty())
          Ev |= POLLOUT;
      }
      Pfds.push_back({C->Fd, Ev, 0});
    }

    int N = ::poll(Pfds.data(), Pfds.size(), Stopping ? 50 : 500);
    if (N < 0 && errno != EINTR)
      break;

    if (Pfds[0].revents & POLLIN) {
      char Buf[64];
      while (::read(WakeRd, Buf, sizeof(Buf)) > 0)
        ;
    }

    if (ListenIdx != SIZE_MAX && (Pfds[ListenIdx].revents & POLLIN)) {
      for (;;) {
        int Fd = ::accept4(ListenFd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (Fd < 0)
          break;
        auto C = std::make_shared<Conn>();
        C->Fd = Fd;
        C->Id = NextConnId++;
        Conns.push_back(std::move(C));
        std::lock_guard<std::mutex> L(StatsMu);
        ++Counters.ConnectionsAccepted;
        ++Counters.OpenConnections;
      }
    }

    // K tracks the pre-poll position (index into Pfds) even as erases
    // shift Conns; conns accepted after the poll (K >= NumPolled) have no
    // pollfd and get their first read next iteration.
    size_t K = 0;
    for (size_t I = 0; I < Conns.size(); ++K) {
      std::shared_ptr<Conn> &C = Conns[I];
      short Re = K < NumPolled ? Pfds[ConnBase + K].revents : 0;
      bool Dead = false;

      if (Re & (POLLIN | POLLHUP | POLLERR)) {
        char Buf[65536];
        for (;;) {
          ssize_t R = ::recv(C->Fd, Buf, sizeof(Buf), 0);
          if (R > 0) {
            size_t Off = 0;
            if (C->Discarding) {
              // Resync after an oversized line: skip to the newline.
              const char *Nl = static_cast<const char *>(
                  std::memchr(Buf, '\n', static_cast<size_t>(R)));
              if (!Nl)
                continue;
              Off = static_cast<size_t>(Nl - Buf) + 1;
              C->Discarding = false;
            }
            C->InBuf.append(Buf + Off, static_cast<size_t>(R) - Off);
            size_t Pos;
            while ((Pos = C->InBuf.find('\n')) != std::string::npos) {
              std::string Line = C->InBuf.substr(0, Pos);
              C->InBuf.erase(0, Pos + 1);
              if (!Line.empty() && Line.back() == '\r')
                Line.pop_back();
              if (!Line.empty())
                handleLine(C, std::move(Line));
            }
            if (C->InBuf.size() > Cfg.MaxRequestBytes) {
              // Unterminated over-cap line: reject now, resync later.
              C->InBuf.clear();
              C->InBuf.shrink_to_fit();
              C->Discarding = true;
              {
                std::lock_guard<std::mutex> L(StatsMu);
                ++Counters.BadRequests;
              }
              sendLine(C, encodeSimpleResponse(
                              "null", StatusCode::BadRequest,
                              "request line exceeds the " +
                                  std::to_string(Cfg.MaxRequestBytes) +
                                  "-byte cap"));
            }
            continue;
          }
          if (R == 0) {
            Dead = true;
          } else if (errno == EAGAIN || errno == EWOULDBLOCK ||
                     errno == EINTR) {
            // drained
          } else {
            Dead = true;
          }
          break;
        }
      }

      if (!Dead) {
        std::lock_guard<std::mutex> L(C->OutMu);
        while (!C->OutBuf.empty()) {
          ssize_t W;
          if (FaultInjector::shouldFail("serve.socket_write")) {
            // A vanished peer mid-write: exercised as EPIPE, which takes
            // the same close-the-connection path a real one would.
            errno = EPIPE;
            W = -1;
          } else
            W = ::send(C->Fd, C->OutBuf.data(), C->OutBuf.size(),
                       MSG_NOSIGNAL | MSG_DONTWAIT);
          if (W > 0) {
            C->OutBuf.erase(0, static_cast<size_t>(W));
            continue;
          }
          if (W < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                        errno == EINTR))
            break;
          Dead = true;
          break;
        }
      }

      if (Dead) {
        {
          std::lock_guard<std::mutex> L(C->OutMu);
          C->Closed = true;
          C->OutBuf.clear();
        }
        ::close(C->Fd);
        C->Fd = -1;
        // Queued jobs keep their shared_ptr and still complete (counted);
        // only their replies are dropped.
        Conns.erase(Conns.begin() + static_cast<long>(I));
        std::lock_guard<std::mutex> L(StatsMu);
        ++Counters.ConnectionsClosed;
        --Counters.OpenConnections;
        continue;
      }
      ++I;
    }
  }

  // Teardown: close every remaining connection.
  for (auto &C : Conns) {
    std::lock_guard<std::mutex> L(C->OutMu);
    C->Closed = true;
    if (C->Fd >= 0) {
      ::close(C->Fd);
      C->Fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> L(StatsMu);
    Counters.ConnectionsClosed += Conns.size();
    Counters.OpenConnections = 0;
  }
  Conns.clear();
}
