//===- serve/ShardedCache.h - Lock-sharded result cache ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ResultCache built from N independent ResultCache shards, routed by
/// the cache key's leading hex digits. Every operation touches exactly
/// one shard, so the per-shard mutex - which single-flight leaders hold
/// across stat bookkeeping and which every lookup serializes on - stops
/// being a daemon-wide bottleneck; keys are sha256 hex, so the shards
/// load-balance uniformly. The configured byte budget is split evenly
/// across shards (LRU eviction is per shard) and the optional disk tier
/// is shared: all shards persist under one directory in the same format
/// plain ResultCache uses, so a sharded daemon cache and a single-shard
/// plutopp --cache-dir interoperate on disk.
///
/// snapshot() sums the shard counters, which is the invariant
/// serve_test pins: a sharded cache's totals equal a single-shard
/// cache's totals for the same traffic.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVE_SHARDEDCACHE_H
#define PLUTOPP_SERVE_SHARDEDCACHE_H

#include "service/ResultCache.h"

#include <memory>
#include <vector>

namespace pluto {
namespace serve {

class ShardedResultCache : public ResultCache {
public:
  struct Config {
    /// Number of independent shards; clamped to >= 1.
    unsigned Shards = 8;
    /// Total in-memory budget, split evenly across shards.
    size_t MaxBytes = 64ull << 20;
    /// Shared persistent tier; empty disables disk (same semantics as
    /// ResultCache::Config::DiskDir).
    std::string DiskDir;
  };

  explicit ShardedResultCache(Config C);

  std::optional<std::string> lookup(const std::string &Key) override;
  void insert(const std::string &Key, const std::string &Value) override;
  Result<std::string>
  getOrCompute(const std::string &Key,
               const std::function<Result<std::string>()> &Compute) override;
  bool diskEnabled() const override;

  /// Sum of every shard's counters and occupancy.
  Snapshot snapshot() const override;

  unsigned shardCount() const {
    return static_cast<unsigned>(Shards.size());
  }

  /// The shard Key routes to (exposed for tests).
  unsigned shardIndex(const std::string &Key) const;

private:
  std::vector<std::unique_ptr<ResultCache>> Shards;
};

} // namespace serve
} // namespace pluto

#endif // PLUTOPP_SERVE_SHARDEDCACHE_H
