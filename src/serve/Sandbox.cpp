//===- serve/Sandbox.cpp - Forked sandbox compile workers -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "serve/Sandbox.h"

#include "observe/PassStats.h"
#include "serve/Protocol.h"
#include "service/Pipeline.h"
#include "support/Budget.h"
#include "support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>
#include <unordered_map>

using namespace pluto;
using namespace pluto::serve;

using Clock = std::chrono::steady_clock;

// RLIMIT_AS reserves shadow memory under AddressSanitizer far beyond any
// sane budget; the cooperative budget and the CPU/watchdog layers still
// apply in sanitizer builds.
#if defined(__SANITIZE_ADDRESS__)
#define PLUTOPP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PLUTOPP_ASAN 1
#endif
#endif

namespace {

/// Fixed allowance on top of the configured memory budget for the child's
/// own image, stacks and allocator slop.
constexpr uint64_t ChildMemoryHeadroomBytes = 256ull << 20;

/// Full write with EINTR handling; MSG_NOSIGNAL so a dead peer reports
/// EPIPE instead of raising SIGPIPE.
bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t W = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

/// Per-request CPU ceiling in the child: soft RLIMIT_CPU at (CPU already
/// burned) + the wall budget rounded up + 1 s slack. RLIMIT_CPU counts
/// cumulative process CPU, so a persistent worker must re-derive the soft
/// limit from current usage before every request; the hard limit stays
/// untouched. A compute loop that never reaches a cooperative budget check
/// then dies with SIGXCPU, which the parent classifies resource-exhausted.
void applyCpuLimit(uint64_t WallMs) {
  if (!WallMs)
    return;
  rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return;
  uint64_t UsedSec = static_cast<uint64_t>(RU.ru_utime.tv_sec) +
                     static_cast<uint64_t>(RU.ru_stime.tv_sec);
  rlimit RL;
  if (getrlimit(RLIMIT_CPU, &RL) != 0)
    return;
  rlim_t Want = UsedSec + (WallMs + 999) / 1000 + 1;
  if (RL.rlim_max != RLIM_INFINITY && Want > RL.rlim_max)
    Want = RL.rlim_max;
  RL.rlim_cur = Want;
  ::setrlimit(RLIMIT_CPU, &RL);
}

/// Serves one decoded line in the child: compile through a per-fingerprint
/// Pipeline session (no cache - the parent caches) and return the encoded
/// response line.
std::string
serveOne(const std::string &Line,
         std::unordered_map<std::string, std::unique_ptr<Pipeline>> &Sessions) {
  auto R = decodeRequest(Line);
  if (!R)
    return encodeSimpleResponse("null", StatusCode::BadRequest, R.error());
  if (R->Operation != Op::Compile)
    return encodeSimpleResponse(R->Id, StatusCode::BadRequest,
                                "sandbox worker only serves compile requests");

  // Deterministic crash/hang faults for the parent's recovery paths.
  if (FaultInjector::shouldFail("sandbox.abort"))
    std::abort();
  if (FaultInjector::shouldFail("sandbox.hang"))
    ::sleep(3600);

  applyCpuLimit(R->Req.Budget.WallMs);

  std::string Fp = R->Req.Opts.fingerprint();
  auto It = Sessions.find(Fp);
  if (It == Sessions.end()) {
    auto P = Pipeline::create(R->Req.Opts);
    if (!P)
      return encodeSimpleResponse(R->Id, StatusCode::BadRequest, P.error());
    It = Sessions
             .emplace(std::move(Fp),
                      std::make_unique<Pipeline>(std::move(*P)))
             .first;
  }
  CompileResponse Resp = It->second->compileRequest(R->Req);
  return encodeResponse(R->Id, Resp);
}

/// The child's whole life: read request lines off the socketpair, compile,
/// write response lines, exit cleanly on EOF (the parent closed its end).
[[noreturn]] void runChild(int Fd, const SandboxConfig &Cfg) {
  // The fork inherited the parent's OpenMP runtime state, which is not
  // usable in the child; every pass must stay on this one thread.
  setSingleThreadMode(true);

  // Drop every inherited descriptor except the IPC socket and stdio: the
  // child must not hold the daemon's listen socket, wake pipe or client
  // connections open past their parent-side close.
  rlimit NoFile;
  rlim_t MaxFd = 1024;
  if (getrlimit(RLIMIT_NOFILE, &NoFile) == 0 &&
      NoFile.rlim_cur != RLIM_INFINITY)
    MaxFd = NoFile.rlim_cur < 4096 ? NoFile.rlim_cur : 4096;
  for (int F = 3; F < static_cast<int>(MaxFd); ++F)
    if (F != Fd)
      ::close(F);

#ifndef PLUTOPP_ASAN
  if (Cfg.MemoryRlimitBytes) {
    rlimit RL;
    RL.rlim_cur = RL.rlim_max = Cfg.MemoryRlimitBytes + ChildMemoryHeadroomBytes;
    ::setrlimit(RLIMIT_AS, &RL);
  }
#endif

  std::unordered_map<std::string, std::unique_ptr<Pipeline>> Sessions;
  std::string Buf;
  char Chunk[65536];
  for (;;) {
    size_t Pos;
    while ((Pos = Buf.find('\n')) == std::string::npos) {
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R > 0) {
        Buf.append(Chunk, static_cast<size_t>(R));
        continue;
      }
      if (R < 0 && errno == EINTR)
        continue;
      _exit(0); // EOF: the parent is done with us
    }
    std::string Line = Buf.substr(0, Pos);
    Buf.erase(0, Pos + 1);
    if (Line.empty())
      continue;
    std::string Out = serveOne(Line, Sessions);
    Out += '\n';
    if (!writeAll(Fd, Out))
      _exit(0);
  }
}

} // namespace

SandboxWorker::SandboxWorker(SandboxConfig C) : Cfg(C) {}

SandboxWorker::~SandboxWorker() { killChild(); }

bool SandboxWorker::spawnChild(std::string &Error) {
  if (FaultInjector::shouldFail("sandbox.spawn")) {
    Error = "injected fault";
    return false;
  }
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) < 0) {
    Error = std::string("socketpair(): ") + std::strerror(errno);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Error = std::string("fork(): ") + std::strerror(errno);
    ::close(Fds[0]);
    ::close(Fds[1]);
    return false;
  }
  if (Pid == 0) {
    ::close(Fds[0]);
    runChild(Fds[1], Cfg); // never returns
  }
  ::close(Fds[1]);
  ChildPid = Pid;
  ChildFd = Fds[0];
  InBuf.clear();
  if (EverSpawned)
    Restarts.fetch_add(1, std::memory_order_relaxed);
  EverSpawned = true;
  return true;
}

void SandboxWorker::killChild() {
  if (ChildPid > 0) {
    ::kill(ChildPid, SIGKILL);
    int St = 0;
    while (::waitpid(ChildPid, &St, 0) < 0 && errno == EINTR)
      ;
  }
  if (ChildFd >= 0)
    ::close(ChildFd);
  ChildPid = -1;
  ChildFd = -1;
  InBuf.clear();
}

CompileResponse SandboxWorker::classifyDeath(const CompileRequest &Req) {
  int St = 0;
  while (::waitpid(ChildPid, &St, 0) < 0 && errno == EINTR)
    ;
  ::close(ChildFd);
  ChildPid = -1;
  ChildFd = -1;
  InBuf.clear();

  CompileResponse Resp;
  Resp.Name = Req.Name;
  if (WIFSIGNALED(St)) {
    int Sig = WTERMSIG(St);
    if (Sig == SIGXCPU || Sig == SIGKILL) {
      // Resource enforcement killed it (our CPU rlimit, our watchdog, or
      // the kernel OOM killer) - the input is over budget, not a bug.
      count(Counter::BudgetExhausted);
      Resp.Status = StatusCode::ResourceExhausted;
      Resp.Error =
          Sig == SIGXCPU
              ? "sandbox worker exceeded its CPU-time limit (SIGXCPU)"
              : "sandbox worker was killed (SIGKILL: watchdog, rlimit or "
                "the kernel OOM killer)";
    } else {
      Resp.Status = StatusCode::Internal;
      Resp.Error = "sandbox worker crashed with signal " +
                   std::to_string(Sig) + " while compiling this request";
    }
  } else {
    Resp.Status = StatusCode::Internal;
    Resp.Error = "sandbox worker exited unexpectedly (status " +
                 std::to_string(WIFEXITED(St) ? WEXITSTATUS(St) : St) + ")";
  }
  return Resp;
}

CompileResponse SandboxWorker::compile(const CompileRequest &Req,
                                       bool *WorkerDied) {
  if (WorkerDied)
    *WorkerDied = false;
  CompileResponse Resp;
  Resp.Name = Req.Name;

  std::string Error;
  if (ChildFd < 0 && !spawnChild(Error)) {
    Resp.Status = StatusCode::Internal;
    Resp.Error = "sandbox worker spawn failed: " + Error;
    return Resp;
  }

  WireRequest WR;
  WR.Operation = Op::Compile;
  WR.Req = Req;
  std::string Line = encodeRequest(WR);
  Line += '\n';

  if (!writeAll(ChildFd, Line)) {
    // The child died between requests (an external kill -9, say): not this
    // request's fault, so no breaker signal - reap, respawn once, retry.
    int St = 0;
    while (::waitpid(ChildPid, &St, 0) < 0 && errno == EINTR)
      ;
    ::close(ChildFd);
    ChildPid = -1;
    ChildFd = -1;
    InBuf.clear();
    if (!spawnChild(Error) || !writeAll(ChildFd, Line)) {
      Resp.Status = StatusCode::Internal;
      Resp.Error = "sandbox worker unavailable: " +
                   (Error.empty() ? std::string("worker died immediately")
                                  : Error);
      return Resp;
    }
  }

  // Watchdog read loop: wait for one full response line, or SIGKILL the
  // child once the wall budget (plus grace) lapses. With no wall budget
  // the wait is unbounded - the operator opted out.
  uint64_t WallMs = Req.Budget.WallMs;
  Clock::time_point Deadline =
      WallMs ? Clock::now() +
                   std::chrono::milliseconds(WallMs + Cfg.WatchdogGraceMs)
             : Clock::time_point::max();
  std::string RespLine;
  for (;;) {
    size_t Pos = InBuf.find('\n');
    if (Pos != std::string::npos) {
      RespLine = InBuf.substr(0, Pos);
      InBuf.erase(0, Pos + 1);
      break;
    }
    int TimeoutMs = -1;
    if (WallMs) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - Clock::now())
                      .count();
      if (Left <= 0) {
        killChild();
        if (WorkerDied)
          *WorkerDied = true;
        count(Counter::BudgetExhausted);
        Resp.Status = StatusCode::ResourceExhausted;
        Resp.Error = "compile exceeded its " + std::to_string(WallMs) +
                     " ms wall-clock budget (sandbox worker killed)";
        return Resp;
      }
      TimeoutMs = Left > 60000 ? 60000 : static_cast<int>(Left);
    }
    pollfd P{ChildFd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (WorkerDied)
        *WorkerDied = true;
      return classifyDeath(Req);
    }
    if (N == 0)
      continue; // re-check the deadline
    char Chunk[65536];
    ssize_t R = ::read(ChildFd, Chunk, sizeof(Chunk));
    if (R > 0) {
      InBuf.append(Chunk, static_cast<size_t>(R));
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    // EOF or a hard read error: the child died mid-request.
    if (WorkerDied)
      *WorkerDied = true;
    return classifyDeath(Req);
  }

  auto WR2 = decodeResponse(RespLine);
  if (!WR2) {
    Resp.Status = StatusCode::Internal;
    Resp.Error = "undecodable sandbox worker response: " + WR2.error();
    return Resp;
  }
  Resp.Status = WR2->Status;
  Resp.Key = WR2->Key;
  Resp.EmittedC = WR2->EmittedC;
  Resp.CacheHit = false; // the child never has a cache
  Resp.Diags = std::move(WR2->Diags);
  Resp.Error = WR2->Error;
  return Resp;
}
