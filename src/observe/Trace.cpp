//===- observe/Trace.cpp - Human-readable decision trace ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"

#include <cstdio>
#include <sstream>

using namespace pluto;

std::atomic<Trace *> pluto::detail::ActiveTrace{nullptr};

std::string Trace::toText() const {
  std::ostringstream OS;
  for (const TraceEvent &E : Events)
    OS << "  [" << E.Stage << "] " << E.Message << "\n";
  return OS.str();
}

static void appendJsonString(std::ostringstream &OS, const std::string &S) {
  OS << '"';
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
  OS << '"';
}

std::string Trace::toJson() const {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < Events.size(); ++I) {
    OS << (I ? "," : "") << "\n    {\"stage\": ";
    appendJsonString(OS, Events[I].Stage);
    OS << ", \"message\": ";
    appendJsonString(OS, Events[I].Message);
    OS << "}";
  }
  OS << (Events.empty() ? "]" : "\n  ]");
  return OS.str();
}
