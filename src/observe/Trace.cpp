//===- observe/Trace.cpp - Human-readable decision trace ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "observe/Trace.h"

#include "support/Json.h"

#include <sstream>

using namespace pluto;

std::atomic<Trace *> pluto::detail::ActiveTrace{nullptr};

std::string Trace::toText() const {
  std::ostringstream OS;
  for (const TraceEvent &E : Events)
    OS << "  [" << E.Stage << "] " << E.Message << "\n";
  return OS.str();
}

std::string Trace::toJson() const {
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < Events.size(); ++I) {
    OS << (I ? "," : "") << "\n    {\"stage\": "
       << jsonQuote(Events[I].Stage)
       << ", \"message\": " << jsonQuote(Events[I].Message) << "}";
  }
  OS << (Events.empty() ? "]" : "\n  ]");
  return OS.str();
}
