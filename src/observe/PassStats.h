//===- observe/PassStats.h - Toolchain-wide pass statistics -----*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-run statistics collected across every layer of the toolchain: scoped
/// wall-clock timers for the five pipeline passes and counters fed by the
/// ILP core, the polyhedral library, dependence analysis, the transform
/// framework, tiling and code generation.
///
/// Collection is opt-in and zero-overhead when disabled: a single global
/// `std::atomic<PassStats *>` is consulted with a relaxed load (a plain
/// load on x86) at every count site, and the site is a no-op when it is
/// null — which is the default. Counters are atomic because dependence
/// analysis counts from inside an OpenMP parallel region and the service
/// layer's compileBatch() runs whole pipelines on worker threads; pass
/// timers accumulate through a CAS loop for the same reason. Hot loops
/// never count per iteration: instrumentation sits at aggregation
/// boundaries (end of a lexmin call, end of one FM elimination step) so
/// the counted quantities are bulk-added.
///
/// The JSON schema emitted by toJson() is documented in DESIGN.md section 8.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_OBSERVE_PASSSTATS_H
#define PLUTOPP_OBSERVE_PASSSTATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace pluto {

class Trace;

/// The five pipeline passes timed by the driver (paper Figure 5 stages;
/// "schedule" is the Pluto ILP transformation, "tile" covers tiling,
/// wavefronting and intra-tile reordering together).
enum class Pass : unsigned {
  Parse,
  Deps,
  Schedule,
  Tile,
  Codegen,
  NumPasses,
};

/// Every counter any layer reports. Grouped by the module that feeds it.
enum class Counter : unsigned {
  // ilp/ - lexicographic dual simplex + Gomory cuts.
  LexMinCalls,
  SimplexPivots,
  GomoryCuts,
  IlpAborts,
  LexMinWarmStarts, ///< solves served from a warm-started band tableau
  // poly/ - Fourier-Motzkin core.
  FmEliminations,  ///< variable eliminations performed via FM combination
  FmRowsGenerated, ///< lower*upper combinations formed across eliminations
  FmRowsPruned,    ///< generated rows dropped by inline/Imbert pruning
  RedundancyChecks,
  EmptinessTests,
  // parser/ - frontend diagnostics.
  ParserErrors, ///< error diagnostics produced by the frontend
  // deps/ - dependence analysis.
  DepCandidates, ///< conflicting access pairs tested
  DepFlow,
  DepAnti,
  DepOutput,
  DepInput,
  DepLoopIndependent, ///< edges satisfied only at the textual level
  DepCarried,         ///< edges carried by some loop level
  DepKeptOnAbort,     ///< candidates kept conservatively on a solver abort
  ReductionsDetected, ///< statements whose self-deps form a reduction cycle
  // transform/ - the Pluto algorithm.
  HyperplanesFound,
  SccCuts,
  TextualOrderRows,
  ScheduleFastPathHits,      ///< hyperplanes from dimension matching
  ScheduleFastPathFallbacks, ///< rows that needed the exact lexmin ILP
  // tile/ - Algorithms 1 & 2, section 5.4.
  BandsTiled,
  WavefrontsApplied,
  VectorizedLoops,
  // codegen/ - QRW-style separation.
  CodegenPieces,
  CodegenGuardFallbacks,
  // driver/ - final loop classification of the emitted schedule rows.
  LoopsParallel,
  LoopsPipeline,
  LoopsSequential,
  ReductionParallelLoops, ///< parallel rows that needed reduction clauses
  // service/ - compilation-service layer (Pipeline sessions, result cache).
  CacheHits,      ///< in-memory result-cache hits
  CacheDiskHits,  ///< hits served from the persistent on-disk cache
  CacheMisses,    ///< keys that required a cold compile
  CacheEvictions, ///< entries evicted to stay under the byte budget
  CacheCoalesced, ///< duplicate in-flight compiles joined (single-flight)
  StageReuses,    ///< pipeline stage accessors served from a memoized artifact
  // robustness - budgets, degraded modes, fault injection.
  CacheWriteErrors, ///< disk-cache writes that failed (ENOSPC, permission)
  JitRetries,       ///< transient JIT compiler invocations retried
  JitStaleDirsSwept, ///< stale TMPDIR work directories removed at startup
  BudgetExhausted,  ///< compiles stopped by a resource budget
  FaultsInjected,   ///< failures injected by the FaultInjector
  // tune/ - the empirical autotuner's search accounting.
  TuneVariantsEnumerated, ///< option sets enumerated from the search space
  TuneVariantsPruned,     ///< distinct variants dropped by the static pruner
  TuneVariantsMeasured,   ///< variants JIT-compiled and timed
  TuneVariantsErrors,     ///< variants skipped on a per-variant failure
  NumCounters,
};

/// Human-readable snake_case name of a counter (the JSON key).
const char *counterName(Counter C);

/// Name of a pass (the JSON key).
const char *passName(Pass P);

/// How deep the per-level dependence histogram goes; deeper carry levels
/// are clamped into the last bucket.
constexpr unsigned MaxDepLevels = 8;

/// Buckets of the scheduler's cluster-size histogram: bucket I counts
/// clusters of I + 1 statements, larger clusters clamp into the last.
constexpr unsigned MaxClusterSizes = 8;

/// One run's worth of statistics. Instances are plain data; install one
/// with setActiveStats() to start collecting.
struct PassStats {
  std::atomic<uint64_t> Counters[static_cast<unsigned>(Counter::NumCounters)];
  /// deps-by-depth histogram: bucket 0 = loop-independent, bucket L = edges
  /// first carried at loop level L (clamped to MaxDepLevels - 1).
  std::atomic<uint64_t> DepsAtLevel[MaxDepLevels];
  /// Scheduler decomposition histogram: bucket I counts weakly-connected
  /// clusters of I + 1 statements (clamped to MaxClusterSizes - 1).
  std::atomic<uint64_t> ClustersOfSize[MaxClusterSizes];
  /// Wall-clock seconds per pass. Atomic because compileBatch() runs
  /// pipeline stages on worker threads that all feed one sink; accumulation
  /// goes through addSeconds() (a CAS loop - timers fire once per stage, so
  /// contention is negligible).
  std::atomic<double> PassSeconds[static_cast<unsigned>(Pass::NumPasses)];

  PassStats() { clear(); }

  void clear();
  uint64_t get(Counter C) const {
    return Counters[static_cast<unsigned>(C)].load(std::memory_order_relaxed);
  }
  double seconds(Pass P) const {
    return PassSeconds[static_cast<unsigned>(P)].load(
        std::memory_order_relaxed);
  }
  void addSeconds(Pass P, double D) {
    auto &A = PassSeconds[static_cast<unsigned>(P)];
    double Cur = A.load(std::memory_order_relaxed);
    while (!A.compare_exchange_weak(Cur, Cur + D, std::memory_order_relaxed))
      ;
  }

  /// Serializes this run to the JSON document described in DESIGN.md
  /// section 8 ({"schema": 2, "passes": {...}, "counters": {...},
  /// "deps_by_level": [...], "trace": [...]}); the "trace" member is
  /// present iff T is non-null. "schema" versions the document shape for
  /// every consumer (plutopp --report=json, the plutod metrics endpoint).
  /// Extra, when non-null, is spliced verbatim as additional top-level
  /// members (callers pass pre-rendered JSON like
  /// `"diagnostics": [...]`).
  std::string toJson(const Trace *T = nullptr,
                     const std::string *Extra = nullptr) const;

  /// Human-readable multi-line report (the non-JSON --report form).
  std::string toText() const;
};

namespace detail {
extern std::atomic<PassStats *> ActiveStats;
} // namespace detail

/// The currently-installed sink, or null when collection is off.
inline PassStats *activeStats() {
  return detail::ActiveStats.load(std::memory_order_relaxed);
}

/// Installs (or, with null, removes) the global statistics sink. Not
/// thread-safe against concurrent pipeline runs; the driver is serial.
inline void setActiveStats(PassStats *S) {
  detail::ActiveStats.store(S, std::memory_order_relaxed);
}

/// Bulk-adds N to counter C iff collection is on. The disabled path is a
/// relaxed load + branch.
inline void count(Counter C, uint64_t N = 1) {
  if (PassStats *S = activeStats())
    S->Counters[static_cast<unsigned>(C)].fetch_add(N,
                                                    std::memory_order_relaxed);
}

/// Records one dependence edge first carried at Level (0 = loop
/// independent) in the by-depth histogram.
inline void countDepAtLevel(unsigned Level) {
  if (PassStats *S = activeStats()) {
    unsigned B = Level < MaxDepLevels ? Level : MaxDepLevels - 1;
    S->DepsAtLevel[B].fetch_add(1, std::memory_order_relaxed);
  }
}

/// Records one scheduler cluster of Size statements (Size >= 1) in the
/// cluster-size histogram.
inline void countClusterOfSize(unsigned Size) {
  if (PassStats *S = activeStats()) {
    unsigned B = Size == 0 ? 0 : Size - 1;
    if (B >= MaxClusterSizes)
      B = MaxClusterSizes - 1;
    S->ClustersOfSize[B].fetch_add(1, std::memory_order_relaxed);
  }
}

/// RAII wall-clock timer for one pass; accumulates into the sink that was
/// active at construction time (so a sink removed mid-pass still gets the
/// partial time, and a null sink costs one load).
class ScopedPassTimer {
public:
  explicit ScopedPassTimer(Pass P)
      : P(P), S(activeStats()),
        Start(S ? std::chrono::steady_clock::now()
                : std::chrono::steady_clock::time_point()) {}
  ~ScopedPassTimer() {
    if (S)
      S->addSeconds(P, std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - Start)
                           .count());
  }
  ScopedPassTimer(const ScopedPassTimer &) = delete;
  ScopedPassTimer &operator=(const ScopedPassTimer &) = delete;

private:
  Pass P;
  PassStats *S;
  std::chrono::steady_clock::time_point Start;
};

} // namespace pluto

#endif // PLUTOPP_OBSERVE_PASSSTATS_H
