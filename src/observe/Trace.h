//===- observe/Trace.h - Human-readable decision trace ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordered log of the decisions the toolchain made during one run: the
/// hyperplane found for each band level, every SCC cut and the reason, each
/// band tiled or wavefronted, and the final per-loop classification. Like
/// PassStats, the trace is opt-in through a global pointer and free when
/// disabled; unlike the counters it builds strings, so producers must guard
/// message construction behind activeTrace() and only serial passes may
/// record (the OpenMP dependence loop counts, it does not trace).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_OBSERVE_TRACE_H
#define PLUTOPP_OBSERVE_TRACE_H

#include <atomic>
#include <string>
#include <vector>

namespace pluto {

/// One recorded decision.
struct TraceEvent {
  std::string Stage;   ///< "transform", "tile", "codegen", "driver", ...
  std::string Message; ///< e.g. "found hyperplane (1, 1) for S0"
};

/// The ordered decision log of one run.
class Trace {
public:
  void record(std::string Stage, std::string Message) {
    Events.push_back({std::move(Stage), std::move(Message)});
  }
  const std::vector<TraceEvent> &events() const { return Events; }
  void clear() { Events.clear(); }

  /// Renders the trace as indented text, one "[stage] message" per line.
  std::string toText() const;

  /// Renders the trace as a JSON array of {"stage", "message"} objects
  /// (the "trace" member of the DESIGN.md section 8 report document).
  std::string toJson() const;

private:
  std::vector<TraceEvent> Events;
};

namespace detail {
extern std::atomic<Trace *> ActiveTrace;
} // namespace detail

/// The currently-installed trace, or null when tracing is off. Producers
/// must build messages only inside `if (Trace *T = activeTrace())`.
inline Trace *activeTrace() {
  return detail::ActiveTrace.load(std::memory_order_relaxed);
}

/// Installs (or removes, with null) the global trace. Serial passes only.
inline void setActiveTrace(Trace *T) {
  detail::ActiveTrace.store(T, std::memory_order_relaxed);
}

} // namespace pluto

#endif // PLUTOPP_OBSERVE_TRACE_H
