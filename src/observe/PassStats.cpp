//===- observe/PassStats.cpp - Toolchain-wide pass statistics -------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "observe/PassStats.h"

#include "observe/Trace.h"

#include <cstdio>
#include <sstream>

using namespace pluto;

std::atomic<PassStats *> pluto::detail::ActiveStats{nullptr};

const char *pluto::passName(Pass P) {
  switch (P) {
  case Pass::Parse:
    return "parse";
  case Pass::Deps:
    return "deps";
  case Pass::Schedule:
    return "schedule";
  case Pass::Tile:
    return "tile";
  case Pass::Codegen:
    return "codegen";
  case Pass::NumPasses:
    break;
  }
  return "?";
}

const char *pluto::counterName(Counter C) {
  switch (C) {
  case Counter::LexMinCalls:
    return "lexmin_calls";
  case Counter::SimplexPivots:
    return "simplex_pivots";
  case Counter::GomoryCuts:
    return "gomory_cuts";
  case Counter::IlpAborts:
    return "ilp_aborts";
  case Counter::LexMinWarmStarts:
    return "lexmin_warm_starts";
  case Counter::FmEliminations:
    return "fm_eliminations";
  case Counter::FmRowsGenerated:
    return "fm_rows_generated";
  case Counter::FmRowsPruned:
    return "fm_rows_pruned";
  case Counter::RedundancyChecks:
    return "redundancy_checks";
  case Counter::EmptinessTests:
    return "emptiness_tests";
  case Counter::DepCandidates:
    return "dep_candidates";
  case Counter::DepFlow:
    return "dep_flow";
  case Counter::DepAnti:
    return "dep_anti";
  case Counter::DepOutput:
    return "dep_output";
  case Counter::DepInput:
    return "dep_input";
  case Counter::DepLoopIndependent:
    return "dep_loop_independent";
  case Counter::DepCarried:
    return "dep_carried";
  case Counter::DepKeptOnAbort:
    return "dep_kept_on_abort";
  case Counter::ParserErrors:
    return "parser_errors";
  case Counter::ReductionsDetected:
    return "reductions_detected";
  case Counter::HyperplanesFound:
    return "hyperplanes_found";
  case Counter::SccCuts:
    return "scc_cuts";
  case Counter::TextualOrderRows:
    return "textual_order_rows";
  case Counter::ScheduleFastPathHits:
    return "schedule_fastpath_hits";
  case Counter::ScheduleFastPathFallbacks:
    return "schedule_fastpath_fallbacks";
  case Counter::BandsTiled:
    return "bands_tiled";
  case Counter::WavefrontsApplied:
    return "wavefronts_applied";
  case Counter::VectorizedLoops:
    return "vectorized_loops";
  case Counter::CodegenPieces:
    return "codegen_pieces";
  case Counter::CodegenGuardFallbacks:
    return "codegen_guard_fallbacks";
  case Counter::LoopsParallel:
    return "loops_parallel";
  case Counter::LoopsPipeline:
    return "loops_pipeline";
  case Counter::LoopsSequential:
    return "loops_sequential";
  case Counter::ReductionParallelLoops:
    return "reduction_parallel_loops";
  case Counter::CacheHits:
    return "cache_hits";
  case Counter::CacheDiskHits:
    return "cache_disk_hits";
  case Counter::CacheMisses:
    return "cache_misses";
  case Counter::CacheEvictions:
    return "cache_evictions";
  case Counter::CacheCoalesced:
    return "cache_coalesced";
  case Counter::StageReuses:
    return "stage_reuses";
  case Counter::CacheWriteErrors:
    return "cache_write_errors";
  case Counter::JitRetries:
    return "jit_retries";
  case Counter::JitStaleDirsSwept:
    return "jit_stale_dirs_swept";
  case Counter::BudgetExhausted:
    return "budget_exhausted";
  case Counter::FaultsInjected:
    return "faults_injected";
  case Counter::TuneVariantsEnumerated:
    return "tune_variants_enumerated";
  case Counter::TuneVariantsPruned:
    return "tune_variants_pruned";
  case Counter::TuneVariantsMeasured:
    return "tune_variants_measured";
  case Counter::TuneVariantsErrors:
    return "tune_variants_errors";
  case Counter::NumCounters:
    break;
  }
  return "?";
}

void PassStats::clear() {
  for (auto &C : Counters)
    C.store(0, std::memory_order_relaxed);
  for (auto &L : DepsAtLevel)
    L.store(0, std::memory_order_relaxed);
  for (auto &C : ClustersOfSize)
    C.store(0, std::memory_order_relaxed);
  for (auto &S : PassSeconds)
    S.store(0.0, std::memory_order_relaxed);
}

std::string PassStats::toJson(const Trace *T, const std::string *Extra) const {
  std::ostringstream OS;
  // Schema version of this document (DESIGN.md section 8). Bumped to 2
  // when the version member itself plus the serve-layer extras ("server",
  // "cache", "latency_ms" in plutod metrics; shared "diagnostics"
  // serializer in reports) were introduced; consumers should reject
  // documents with a larger major version than they know.
  OS << "{\n  \"schema\": 2,\n  \"passes\": {";
  for (unsigned P = 0; P < static_cast<unsigned>(Pass::NumPasses); ++P) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6f", seconds(static_cast<Pass>(P)));
    OS << (P ? "," : "") << "\n    \"" << passName(static_cast<Pass>(P))
       << "\": {\"seconds\": " << Buf << "}";
  }
  OS << "\n  },\n  \"counters\": {";
  for (unsigned C = 0; C < static_cast<unsigned>(Counter::NumCounters); ++C)
    OS << (C ? "," : "") << "\n    \"" << counterName(static_cast<Counter>(C))
       << "\": " << get(static_cast<Counter>(C));
  OS << "\n  },\n  \"deps_by_level\": [";
  for (unsigned L = 0; L < MaxDepLevels; ++L)
    OS << (L ? ", " : "") << DepsAtLevel[L].load(std::memory_order_relaxed);
  OS << "],\n  \"clusters_by_size\": [";
  for (unsigned C = 0; C < MaxClusterSizes; ++C)
    OS << (C ? ", " : "")
       << ClustersOfSize[C].load(std::memory_order_relaxed);
  OS << "]";
  if (T)
    OS << ",\n  \"trace\": " << T->toJson();
  if (Extra && !Extra->empty())
    OS << ",\n  " << *Extra;
  OS << "\n}";
  return OS.str();
}

std::string PassStats::toText() const {
  std::ostringstream OS;
  OS << "pass timings (seconds):\n";
  for (unsigned P = 0; P < static_cast<unsigned>(Pass::NumPasses); ++P) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "  %-10s %10.6f\n",
                  passName(static_cast<Pass>(P)),
                  seconds(static_cast<Pass>(P)));
    OS << Buf;
  }
  OS << "counters:\n";
  for (unsigned C = 0; C < static_cast<unsigned>(Counter::NumCounters); ++C) {
    uint64_t V = get(static_cast<Counter>(C));
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf), "  %-24s %12llu\n",
                  counterName(static_cast<Counter>(C)),
                  static_cast<unsigned long long>(V));
    OS << Buf;
  }
  OS << "dependence edges by first carry level (0 = loop-independent):\n ";
  for (unsigned L = 0; L < MaxDepLevels; ++L)
    OS << " " << DepsAtLevel[L].load(std::memory_order_relaxed);
  OS << "\n";
  OS << "scheduler clusters by statement count (1.." << MaxClusterSizes
     << "+):\n ";
  for (unsigned C = 0; C < MaxClusterSizes; ++C)
    OS << " " << ClustersOfSize[C].load(std::memory_order_relaxed);
  OS << "\n";
  return OS.str();
}
