//===- transform/Schedule.h - Statement-wise affine schedules ---*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of the transformation framework: one affine transformation
/// matrix per statement (paper eq. (1): each row is a hyperplane
/// phi(i) = c . i + c0, with no parameter coefficients), plus per-row
/// metadata - whether the row is a scalar (fusion-cut) dimension, whether
/// the loop it becomes is parallel, and which permutable band it belongs to
/// (bands are the units of tiling, Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TRANSFORM_SCHEDULE_H
#define PLUTOPP_TRANSFORM_SCHEDULE_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace pluto {

/// Metadata for one row (one dimension of the transformed space).
struct RowInfo {
  /// Scalar dimensions are constant per statement (fusion structure /
  /// statement ordering); they become no loop in the generated code.
  bool IsScalar = false;
  /// True if the corresponding loop carries no dependence (can be marked
  /// `omp parallel for` directly when outermost, or after a sync if inner).
  bool IsParallel = false;
  /// Permutable-band id (consecutive rows with the same id are mutually
  /// permutable and rectangularly tilable); -1 for scalar rows.
  int BandId = -1;
  /// Set by the intra-tile reordering post-pass (paper Section 5.4): the
  /// loop is parallel, innermost, and should be emitted with a
  /// force-vectorization pragma.
  bool IsVector = false;
  /// Non-empty when IsParallel holds only under OpenMP reduction clauses:
  /// the loop carries reduction self-dependences (and nothing else), so the
  /// emitted pragma must list these `reduction(Op:Array)` entries. Sorted
  /// and deduplicated.
  std::vector<ReductionClause> Reductions;
};

/// Statement-wise multi-dimensional affine transformation.
struct Schedule {
  /// Per statement: numRows() x (numIters(s) + 1) matrix; the last column
  /// is the translation coefficient c0.
  std::vector<IntMatrix> StmtRows;
  std::vector<RowInfo> Rows;

  unsigned numRows() const { return static_cast<unsigned>(Rows.size()); }

  /// A maximal run of consecutive loop rows with the same band id.
  struct Band {
    unsigned Start = 0;
    unsigned Width = 0;
    /// True if some row of the band carries a dependence (pipelined
    /// parallelism requires a wavefront, Algorithm 2).
    bool HasSequentialRow = false;
  };
  std::vector<Band> bands() const;

  /// Evaluates row R of statement S on integer iteration values.
  BigInt evalRow(unsigned S, unsigned R,
                 const std::vector<BigInt> &Iters) const;

  std::string toString(const Program &Prog) const;
};

/// The 2d+1 identity schedule reproducing the original textual execution
/// order (interleaved syntactic-position scalar rows and iterator rows).
/// Used to run/emit the untransformed program through the same code
/// generator, giving uniform baselines in tests and benchmarks.
Schedule identitySchedule(const Program &Prog);

} // namespace pluto

#endif // PLUTOPP_TRANSFORM_SCHEDULE_H
