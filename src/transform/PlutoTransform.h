//===- transform/PlutoTransform.h - The Pluto algorithm ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's automatic transformation algorithm (Section 3): iteratively
/// find statement-wise tiling hyperplanes by solving the lexmin ILP (5) over
/// the Farkas-eliminated legality (2) and bounding (4) constraints, with
/// per-statement linear-independence constraints from the orthogonal
/// complement (6), non-negative coefficients and the trivial-solution guard
/// sum(c_i) >= 1 (Section 4.2). When no hyperplane exists the band is cut:
/// a scalar dimension orders the SCCs of the dependence graph topologically
/// (enabling fusion across weakly connected components); dependences
/// satisfied by earlier bands are then dropped from the legality set so the
/// next band can be found.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TRANSFORM_PLUTOTRANSFORM_H
#define PLUTOPP_TRANSFORM_PLUTOTRANSFORM_H

#include "deps/Dependences.h"
#include "support/Result.h"
#include "transform/Schedule.h"

namespace pluto {

struct TransformOptions {
  /// Safety cap on the number of schedule rows (cuts included).
  unsigned MaxRows = 64;
  /// Partition the dependence graph into weakly connected clusters (every
  /// edge counts, input dependences included), run the algorithm on
  /// cluster-local constraint systems and stitch the per-cluster schedules
  /// back together. Clusters share no ILP constraint, so this turns one
  /// O(all statements) lexmin into many small ones.
  bool Decompose = true;
  /// Before paying for a lexmin solve, propose candidate hyperplanes by
  /// matching original loop dimensions across statements and verify
  /// legality, zero cost and linear independence by direct evaluation
  /// against the same Farkas-eliminated systems the exact ILP would solve.
  /// Falls back to the exact path whenever no candidate verifies.
  bool DimensionMatch = true;
  /// Keep the simplex tableau of the band's shared constraint rows warm
  /// between lexmin calls (only the linear-independence rows change from
  /// one hyperplane to the next within a band).
  bool WarmStart = true;
};

/// Runs the Pluto algorithm. On success the returned schedule has one
/// linearly independent hyperplane per statement dimension (plus scalar
/// fusion dimensions), every legality dependence in DG is annotated with the
/// row that strongly satisfies it, and per-row parallelism and band ids are
/// filled in. DG is modified (satisfaction bookkeeping).
Result<Schedule> computeSchedule(const Program &Prog, DependenceGraph &DG,
                                 const TransformOptions &Opts = {});

/// Builds the delta row (phi_dst(t) - phi_src(s)) of schedule row R for
/// dependence D, over [dep vars | 1].
std::vector<BigInt> deltaRow(const Dependence &D, const Schedule &Sched,
                             unsigned R);

/// True if delta_R >= 1 for every point of D (strong satisfaction at R).
bool stronglySatisfiedAt(const Dependence &D, const Schedule &Sched,
                         unsigned R);
/// True if delta_R >= 0 for every point of D (weak legality at R).
bool weaklyLegalAt(const Dependence &D, const Schedule &Sched, unsigned R);
/// True if delta_R == 0 for every point of D.
bool zeroAt(const Dependence &D, const Schedule &Sched, unsigned R);

/// Recomputes SatisfiedAtRow for every legality dependence and the IsParallel
/// flags of Sched for an externally supplied (forced) schedule - used to
/// evaluate the paper's comparison transformations. Returns false if the
/// schedule is illegal (some dependence violated before being satisfied, or
/// never satisfied).
bool analyzeSchedule(const Program &Prog, DependenceGraph &DG,
                     Schedule &Sched);

/// Appends a scalar dimension ordering statements by their original textual
/// position. computeSchedule does this automatically when loop-independent
/// dependences survive all hyperplanes; externally forced (comparison)
/// schedules usually need it before analyzeSchedule accepts them.
void appendTextualOrderRow(const Program &Prog, Schedule &Sched);

/// Fills Sched.Rows[*].IsParallel from the satisfaction bookkeeping in DG:
/// a loop row R is parallel iff no legality dependence satisfied at or after
/// R has a positive component along R. Reduction-tagged self dependences
/// (Dependence::IsReduction) are exempt: a row whose only positive deltas
/// come from reduction cycles is still marked parallel, with the needed
/// `reduction(Op:Array)` clauses recorded in Rows[R].Reductions for the
/// code emitter. They still constrain every other use (legality, tiling).
void detectParallelism(const Program &Prog, const DependenceGraph &DG,
                       Schedule &Sched);

} // namespace pluto

#endif // PLUTOPP_TRANSFORM_PLUTOTRANSFORM_H
