//===- transform/Schedule.cpp - Statement-wise affine schedules -----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "transform/Schedule.h"

#include <algorithm>

using namespace pluto;

Schedule pluto::identitySchedule(const Program &Prog) {
  unsigned MaxDepth = 0;
  for (const Statement &St : Prog.Stmts)
    MaxDepth = std::max(MaxDepth, St.numIters());
  unsigned NumRows = 2 * MaxDepth + 1;

  Schedule S;
  for (const Statement &St : Prog.Stmts) {
    unsigned M = St.numIters();
    IntMatrix T(NumRows, M + 1);
    for (unsigned K = 0; K <= MaxDepth; ++K) {
      // Scalar row 2K: syntactic slot at depth K (0 past the statement's
      // own depth).
      if (2 * K < St.PosVec.size())
        T(2 * K, M) = BigInt(static_cast<long long>(St.PosVec[2 * K]));
      // Loop row 2K+1: iterator K when present.
      if (K < M && 2 * K + 1 < NumRows)
        T(2 * K + 1, K) = BigInt(1);
    }
    S.StmtRows.push_back(std::move(T));
  }
  S.Rows.resize(NumRows);
  for (unsigned R = 0; R < NumRows; ++R) {
    S.Rows[R].IsScalar = (R % 2 == 0);
    S.Rows[R].BandId = -1;
  }
  return S;
}

std::vector<Schedule::Band> Schedule::bands() const {
  std::vector<Band> Bands;
  unsigned R = 0;
  while (R < numRows()) {
    if (Rows[R].IsScalar || Rows[R].BandId < 0) {
      ++R;
      continue;
    }
    int Id = Rows[R].BandId;
    Band B;
    B.Start = R;
    while (R < numRows() && !Rows[R].IsScalar && Rows[R].BandId == Id) {
      B.HasSequentialRow |= !Rows[R].IsParallel;
      ++B.Width;
      ++R;
    }
    Bands.push_back(B);
  }
  return Bands;
}

BigInt Schedule::evalRow(unsigned S, unsigned R,
                         const std::vector<BigInt> &Iters) const {
  const IntMatrix &M = StmtRows[S];
  assert(Iters.size() + 1 == M.numCols() && "iteration vector size mismatch");
  BigInt V = M(R, M.numCols() - 1);
  for (unsigned I = 0; I < Iters.size(); ++I)
    V += M(R, I) * Iters[I];
  return V;
}

std::string Schedule::toString(const Program &Prog) const {
  std::string S;
  for (unsigned St = 0; St < StmtRows.size(); ++St) {
    S += "S" + std::to_string(St) + ":\n";
    const IntMatrix &M = StmtRows[St];
    for (unsigned R = 0; R < M.numRows(); ++R) {
      S += "  c" + std::to_string(R + 1) + " = ";
      bool First = true;
      for (unsigned C = 0; C + 1 < M.numCols(); ++C) {
        const BigInt &V = M(R, C);
        if (V.isZero())
          continue;
        std::string Name = Prog.Stmts[St].IterNames[C];
        if (V.isOne())
          S += (First ? "" : " + ") + Name;
        else if (V.isMinusOne())
          S += (First ? "-" : " - ") + Name;
        else if (V.isPositive())
          S += (First ? "" : " + ") + V.toString() + "*" + Name;
        else
          S += (First ? "-" : " - ") + (-V).toString() + "*" + Name;
        First = false;
      }
      const BigInt &C0 = M(R, M.numCols() - 1);
      if (First)
        S += C0.toString();
      else if (C0.isPositive())
        S += " + " + C0.toString();
      else if (C0.isNegative())
        S += " - " + (-C0).toString();
      if (Rows[R].IsScalar)
        S += "   (scalar)";
      else if (Rows[R].IsParallel)
        S += "   (parallel, band " + std::to_string(Rows[R].BandId) + ")";
      else
        S += "   (band " + std::to_string(Rows[R].BandId) + ")";
      S += "\n";
    }
  }
  return S;
}
