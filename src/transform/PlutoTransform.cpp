//===- transform/PlutoTransform.cpp - The Pluto algorithm -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "transform/PlutoTransform.h"

#include "ilp/LexMin.h"
#include "observe/PassStats.h"
#include "observe/Trace.h"
#include "support/LinearAlgebra.h"
#include "transform/FarkasConstraints.h"

#include <cstdio>
#include <cstdlib>

/// Set PLUTOPP_DEBUG=1 to trace the hyperplane search on stderr.
static bool debugEnabled() {
  static bool Enabled = std::getenv("PLUTOPP_DEBUG") != nullptr;
  return Enabled;
}

using namespace pluto;

std::vector<BigInt> pluto::deltaRow(const Dependence &D, const Schedule &Sched,
                                    unsigned R) {
  const IntMatrix &SrcM = Sched.StmtRows[D.SrcStmt];
  const IntMatrix &DstM = Sched.StmtRows[D.DstStmt];
  unsigned NS = SrcM.numCols() - 1;
  unsigned NT = DstM.numCols() - 1;
  unsigned NX = D.Poly.numVars();
  std::vector<BigInt> Row(NX + 1, BigInt(0));
  for (unsigned I = 0; I < NS; ++I)
    Row[I] = -SrcM(R, I);
  for (unsigned J = 0; J < NT; ++J)
    Row[NS + J] = DstM(R, J);
  Row[NX] = DstM(R, NT) - SrcM(R, NS);
  return Row;
}

/// Tests emptiness of D.Poly intersected with one extra inequality.
static bool emptyWith(const Dependence &D, std::vector<BigInt> ExtraIneq) {
  ConstraintSystem CS = D.Poly;
  CS.addIneq(std::move(ExtraIneq));
  return CS.isIntegerEmpty();
}

bool pluto::stronglySatisfiedAt(const Dependence &D, const Schedule &Sched,
                                unsigned R) {
  // No point with delta <= 0, i.e. with -delta >= 0.
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  for (BigInt &V : Neg)
    V = -V;
  return emptyWith(D, std::move(Neg));
}

bool pluto::weaklyLegalAt(const Dependence &D, const Schedule &Sched,
                          unsigned R) {
  // No point with delta <= -1.
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  for (BigInt &V : Neg)
    V = -V;
  Neg[Neg.size() - 1] -= BigInt(1);
  return emptyWith(D, std::move(Neg));
}

bool pluto::zeroAt(const Dependence &D, const Schedule &Sched, unsigned R) {
  std::vector<BigInt> Pos = deltaRow(D, Sched, R);
  Pos[Pos.size() - 1] -= BigInt(1); // delta - 1 >= 0: some point with delta>=1?
  if (!emptyWith(D, Pos))
    return false;
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  for (BigInt &V : Neg)
    V = -V;
  Neg[Neg.size() - 1] -= BigInt(1); // -delta - 1 >= 0: some point <= -1?
  return emptyWith(D, std::move(Neg));
}

void pluto::detectParallelism(const DependenceGraph &DG, Schedule &Sched) {
  for (unsigned R = 0; R < Sched.numRows(); ++R) {
    if (Sched.Rows[R].IsScalar)
      continue;
    bool Parallel = true;
    for (const Dependence &D : DG.Deps) {
      if (!D.isLegalityDep())
        continue;
      // Dependences handled by outer rows do not constrain this level.
      if (D.SatisfiedAtRow >= 0 && D.SatisfiedAtRow < static_cast<int>(R))
        continue;
      if (!zeroAt(D, Sched, R)) {
        Parallel = false;
        break;
      }
    }
    Sched.Rows[R].IsParallel = Parallel;
  }
}

namespace {

/// Mutable search state of the main algorithm.
class PlutoSearch {
public:
  PlutoSearch(const Program &Prog, DependenceGraph &DG,
              const TransformOptions &Opts)
      : Prog(Prog), DG(DG), Opts(Opts), Layout(Prog) {
    Sched.StmtRows.resize(Prog.Stmts.size());
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      Sched.StmtRows[S] = IntMatrix(Prog.Stmts[S].numIters() + 1);
      HBasis.push_back(IntMatrix(Prog.Stmts[S].numIters()));
    }
  }

  Result<Schedule> run() {
    // Hyperplanes are found iteratively until every statement has a full
    // set of linearly independent ones AND every dependence is strongly
    // satisfied (paper Sec. 3.2). Past full rank, additional (dependent)
    // rows may still be needed to order instances the earlier rows tied;
    // the cheap statement-ordering scalar dimension is preferred whenever
    // it finishes the job legally.
    while (needsMoreIndependentRows() || !allDepsSatisfied()) {
      if (Sched.numRows() >= Opts.MaxRows)
        return Err(std::string(
            "transformation did not converge (row cap exceeded)"));
      if (!needsMoreIndependentRows() && textualRowWouldHelp()) {
        appendTextualOrderRow();
        continue;
      }
      unsigned SatBefore = numSatisfied();
      unsigned RankBefore = totalRank();
      if (findHyperplane()) {
        if (totalRank() > RankBefore || numSatisfied() > SatBefore)
          continue;
        removeLastRow(); // Stall: the row ordered nothing new.
      }
      if (cut())
        continue;
      return Err(std::string(
          "no legal hyperplane and no cut available: the program "
          "admits no non-negative-coefficient affine schedule"));
    }
    detectParallelism(DG, Sched);
    return std::move(Sched);
  }

private:
  const Program &Prog;
  DependenceGraph &DG;
  const TransformOptions &Opts;
  VarLayout Layout;
  Schedule Sched;
  /// Per statement: linearly independent iterator-coefficient rows found.
  std::vector<IntMatrix> HBasis;
  /// First row of the band currently being grown; dependences satisfied at
  /// rows >= BandStart still participate in legality (permutability).
  unsigned BandStart = 0;
  int CurBandId = 0;

  bool needsMoreIndependentRows() const {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S)
      if (HBasis[S].numRows() < Prog.Stmts[S].numIters())
        return true;
    return false;
  }

  bool allDepsSatisfied() const {
    for (const Dependence &D : DG.Deps)
      if (D.isLegalityDep() && !D.satisfied())
        return false;
    return true;
  }

  unsigned numSatisfied() const {
    unsigned N = 0;
    for (const Dependence &D : DG.Deps)
      N += D.isLegalityDep() && D.satisfied();
    return N;
  }

  unsigned totalRank() const {
    unsigned R = 0;
    for (const IntMatrix &H : HBasis)
      R += H.numRows();
    return R;
  }

  void removeLastRow() {
    assert(Sched.numRows() > 0 && "no row to remove");
    for (IntMatrix &M : Sched.StmtRows)
      M.removeRow(M.numRows() - 1);
    Sched.Rows.pop_back();
  }

  /// True if appending the textual-order scalar dimension is legal for all
  /// remaining dependences (source position <= destination position) and
  /// strongly satisfies at least one of them.
  bool textualRowWouldHelp() const {
    bool Progress = false;
    for (const Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (D.SrcStmt > D.DstStmt)
        return false; // The ordering dimension would reverse it.
      Progress |= D.SrcStmt < D.DstStmt;
    }
    return Progress;
  }

  /// A dependence constrains the current search if it has not been
  /// satisfied before the current band started.
  bool isActive(const Dependence &D) const {
    return !D.satisfied() ||
           D.SatisfiedAtRow >= static_cast<int>(BandStart);
  }

  /// Attempts to find the next hyperplane via the lexmin ILP; returns true
  /// and appends the row on success.
  bool findHyperplane() {
    ConstraintSystem Sys(Layout.numVars());
    for (const Dependence &D : DG.Deps) {
      if (D.Kind == DepKind::Input) {
        Sys.append(boundingConstraints(D, Prog, Layout));
        continue;
      }
      if (!isActive(D))
        continue;
      Sys.append(legalityConstraints(D, Prog, Layout));
      Sys.append(boundingConstraints(D, Prog, Layout));
    }
    // Trivial-solution avoidance: sum of iterator coefficients >= 1 per
    // statement (Section 4.2). Statements with no surrounding loop are
    // exempt (their only coefficient is c0).
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      if (M == 0)
        continue;
      std::vector<BigInt> Row(Layout.numVars() + 1, BigInt(0));
      for (unsigned I = 0; I < M; ++I)
        Row[Layout.coeffCol(S, I)] = BigInt(1);
      Row[Layout.numVars()] = BigInt(-1);
      Sys.addIneq(std::move(Row));
    }
    // Linear independence for statements still needing rows: every row r of
    // the orthogonal complement gives r.c >= 0, and their sum >= 1 (the
    // non-negative-coefficient practical choice of Section 4.2).
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      if (M == 0 || HBasis[S].numRows() >= M)
        continue;
      IntMatrix Perp = orthogonalComplement(HBasis[S]);
      std::vector<BigInt> Sum(Layout.numVars() + 1, BigInt(0));
      for (unsigned R = 0; R < Perp.numRows(); ++R) {
        std::vector<BigInt> Row(Layout.numVars() + 1, BigInt(0));
        for (unsigned I = 0; I < M; ++I) {
          Row[Layout.coeffCol(S, I)] = Perp(R, I);
          Sum[Layout.coeffCol(S, I)] += Perp(R, I);
        }
        Sys.addIneq(std::move(Row));
      }
      Sum[Layout.numVars()] = BigInt(-1);
      Sys.addIneq(std::move(Sum));
    }
    if (!Sys.normalize())
      return false;
    ilp::LexMinResult Sol =
        ilp::lexMinNonNeg(Sys.ineqs(), Sys.eqs(), Layout.numVars());
    if (!Sol.feasible())
      return false;

    // Append the row to every statement's transformation.
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      std::vector<BigInt> Row(M + 1);
      for (unsigned I = 0; I < M; ++I)
        Row[I] = Sol.Point[Layout.coeffCol(S, I)];
      Row[M] = Sol.Point[Layout.stmtC0(S)];
      Sched.StmtRows[S].addRow(Row);
      std::vector<BigInt> Coeffs(Row.begin(), Row.begin() + M);
      if (HBasis[S].numRows() < M && M > 0 &&
          isLinearlyIndependent(HBasis[S], Coeffs))
        HBasis[S].addRow(std::move(Coeffs));
    }
    RowInfo Info;
    Info.IsScalar = false;
    Info.BandId = CurBandId;
    Sched.Rows.push_back(Info);
    updateSatisfaction(Sched.numRows() - 1);
    count(Counter::HyperplanesFound);
    if (Trace *T = activeTrace()) {
      std::string Msg = "row " + std::to_string(Sched.numRows() - 1) +
                        " (band " + std::to_string(CurBandId) + "):";
      for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
        Msg += " S" + std::to_string(S) + "=[";
        const IntMatrix &M = Sched.StmtRows[S];
        for (unsigned C = 0; C < M.numCols(); ++C)
          Msg += std::string(C ? " " : "") +
                 M(Sched.numRows() - 1, C).toString();
        Msg += "]";
      }
      T->record("transform", std::move(Msg));
    }
    if (debugEnabled()) {
      fprintf(stderr, "[pluto] row %u (band %d):", Sched.numRows() - 1,
              CurBandId);
      for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
        fprintf(stderr, "  S%u=[", S);
        const IntMatrix &M = Sched.StmtRows[S];
        for (unsigned C = 0; C < M.numCols(); ++C)
          fprintf(stderr, "%s%s", C ? " " : "",
                  M(Sched.numRows() - 1, C).toString().c_str());
        fprintf(stderr, "] rank=%u/%u", HBasis[S].numRows(),
                Layout.stmtNumIters(S));
      }
      fprintf(stderr, "\n");
    }
    return true;
  }

  /// Marks legality dependences strongly satisfied at row R.
  void updateSatisfaction(unsigned R) {
    for (Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (stronglySatisfiedAt(D, Sched, R))
        D.SatisfiedAtRow = static_cast<int>(R);
    }
  }

  /// No hyperplane found: either separate the SCCs with a scalar dimension,
  /// or retire the dependences satisfied by the current band and start a
  /// new band. Returns false if neither makes progress.
  bool cut() {
    unsigned NumStmts = static_cast<unsigned>(Prog.Stmts.size());
    std::vector<unsigned> Scc = DG.sccIds(NumStmts);
    unsigned NumScc = 0;
    for (unsigned Id : Scc)
      NumScc = std::max(NumScc, Id + 1);
    if (NumScc > 1) {
      appendScalarRow(Scc);
      startNewBand();
      count(Counter::SccCuts);
      if (Trace *T = activeTrace())
        T->record("transform",
                  "no hyperplane: cut into " + std::to_string(NumScc) +
                      " SCCs with a scalar dimension (row " +
                      std::to_string(Sched.numRows() - 1) + ")");
      return true;
    }
    // Single SCC: progress is only possible if this band satisfied
    // something we can now retire.
    bool Retired = false;
    for (const Dependence &D : DG.Deps)
      if (D.isLegalityDep() && D.satisfied() &&
          D.SatisfiedAtRow >= static_cast<int>(BandStart))
        Retired = true;
    if (!Retired)
      return false;
    startNewBand();
    if (Trace *T = activeTrace())
      T->record("transform",
                "single SCC: retired satisfied dependences, new band at row " +
                    std::to_string(Sched.numRows()));
    return true;
  }

  void startNewBand() {
    BandStart = Sched.numRows();
    ++CurBandId;
  }

  /// Appends a scalar dimension with per-statement constants Values[stmt];
  /// dependences that become strongly satisfied are marked.
  void appendConstantRow(const std::vector<unsigned> &Values) {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      std::vector<BigInt> Row(M + 1, BigInt(0));
      Row[M] = BigInt(static_cast<long long>(Values[S]));
      Sched.StmtRows[S].addRow(std::move(Row));
    }
    RowInfo Info;
    Info.IsScalar = true;
    Info.BandId = -1;
    Sched.Rows.push_back(Info);
    updateSatisfaction(Sched.numRows() - 1);
  }

  void appendScalarRow(const std::vector<unsigned> &SccIds) {
    appendConstantRow(SccIds);
  }

  /// Final fallback: order statements by original textual position to
  /// satisfy remaining loop-independent dependences.
  void appendTextualOrderRow() {
    pluto::appendTextualOrderRow(Prog, Sched);
    updateSatisfaction(Sched.numRows() - 1);
    count(Counter::TextualOrderRows);
    if (Trace *T = activeTrace())
      T->record("transform", "appended textual-order scalar row " +
                                 std::to_string(Sched.numRows() - 1));
  }
};

} // namespace

void pluto::appendTextualOrderRow(const Program &Prog, Schedule &Sched) {
  // Statements are created in textual order by the frontend, so the id is
  // the textual rank.
  for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
    unsigned M = Prog.Stmts[S].numIters();
    std::vector<BigInt> Row(M + 1, BigInt(0));
    Row[M] = BigInt(static_cast<long long>(S));
    Sched.StmtRows[S].addRow(std::move(Row));
  }
  RowInfo Info;
  Info.IsScalar = true;
  Info.BandId = -1;
  Sched.Rows.push_back(Info);
}

Result<Schedule> pluto::computeSchedule(const Program &Prog,
                                        DependenceGraph &DG,
                                        const TransformOptions &Opts) {
  for (Dependence &D : DG.Deps)
    D.SatisfiedAtRow = -1;
  PlutoSearch Search(Prog, DG, Opts);
  return Search.run();
}

bool pluto::analyzeSchedule(const Program &Prog, DependenceGraph &DG,
                            Schedule &Sched) {
  (void)Prog;
  for (Dependence &D : DG.Deps)
    D.SatisfiedAtRow = -1;
  for (unsigned R = 0; R < Sched.numRows(); ++R) {
    for (Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (!weaklyLegalAt(D, Sched, R))
        return false; // Violated before satisfaction: illegal schedule.
      if (stronglySatisfiedAt(D, Sched, R))
        D.SatisfiedAtRow = static_cast<int>(R);
    }
  }
  for (const Dependence &D : DG.Deps)
    if (D.isLegalityDep() && !D.satisfied())
      return false;
  detectParallelism(DG, Sched);
  return true;
}
