//===- transform/PlutoTransform.cpp - The Pluto algorithm -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "transform/PlutoTransform.h"

#include "ilp/LexMin.h"
#include "observe/PassStats.h"
#include "observe/Trace.h"
#include "support/LinearAlgebra.h"
#include "transform/FarkasConstraints.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

/// Set PLUTOPP_DEBUG=1 to trace the hyperplane search on stderr.
static bool debugEnabled() {
  static bool Enabled = std::getenv("PLUTOPP_DEBUG") != nullptr;
  return Enabled;
}

using namespace pluto;

std::vector<BigInt> pluto::deltaRow(const Dependence &D, const Schedule &Sched,
                                    unsigned R) {
  const IntMatrix &SrcM = Sched.StmtRows[D.SrcStmt];
  const IntMatrix &DstM = Sched.StmtRows[D.DstStmt];
  unsigned NS = SrcM.numCols() - 1;
  unsigned NT = DstM.numCols() - 1;
  unsigned NX = D.Poly.numVars();
  std::vector<BigInt> Row(NX + 1, BigInt(0));
  for (unsigned I = 0; I < NS; ++I)
    Row[I] = -SrcM(R, I);
  for (unsigned J = 0; J < NT; ++J)
    Row[NS + J] = DstM(R, J);
  Row[NX] = DstM(R, NT) - SrcM(R, NS);
  return Row;
}

/// True if a row over [vars | 1] has no variable coefficient. The delta of
/// a scalar schedule row (or of an all-zero padding row) always does, and
/// dependence polyhedra are non-empty by construction, so a constant delta
/// answers the satisfaction predicates without an ILP call - at a hundred
/// statements the textual-order row alone would otherwise cost one
/// emptiness test per dependence.
static bool constantOnly(const std::vector<BigInt> &Row) {
  for (size_t I = 0; I + 1 < Row.size(); ++I)
    if (!Row[I].isZero())
      return false;
  return true;
}

/// Tests emptiness of D.Poly intersected with one extra inequality.
static bool emptyWith(const Dependence &D, std::vector<BigInt> ExtraIneq) {
  ConstraintSystem CS = D.Poly;
  CS.addIneq(std::move(ExtraIneq));
  return CS.isIntegerEmpty();
}

bool pluto::stronglySatisfiedAt(const Dependence &D, const Schedule &Sched,
                                unsigned R) {
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  if (constantOnly(Neg))
    return Neg.back() >= BigInt(1);
  // No point with delta <= 0, i.e. with -delta >= 0.
  for (BigInt &V : Neg)
    V = -V;
  return emptyWith(D, std::move(Neg));
}

bool pluto::weaklyLegalAt(const Dependence &D, const Schedule &Sched,
                          unsigned R) {
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  if (constantOnly(Neg))
    return !Neg.back().isNegative();
  // No point with delta <= -1.
  for (BigInt &V : Neg)
    V = -V;
  Neg[Neg.size() - 1] -= BigInt(1);
  return emptyWith(D, std::move(Neg));
}

bool pluto::zeroAt(const Dependence &D, const Schedule &Sched, unsigned R) {
  std::vector<BigInt> Pos = deltaRow(D, Sched, R);
  if (constantOnly(Pos))
    return Pos.back().isZero();
  Pos[Pos.size() - 1] -= BigInt(1); // delta - 1 >= 0: some point with delta>=1?
  if (!emptyWith(D, Pos))
    return false;
  std::vector<BigInt> Neg = deltaRow(D, Sched, R);
  for (BigInt &V : Neg)
    V = -V;
  Neg[Neg.size() - 1] -= BigInt(1); // -delta - 1 >= 0: some point <= -1?
  return emptyWith(D, std::move(Neg));
}

void pluto::detectParallelism(const Program &Prog, const DependenceGraph &DG,
                              Schedule &Sched) {
  for (unsigned R = 0; R < Sched.numRows(); ++R) {
    Sched.Rows[R].Reductions.clear();
    if (Sched.Rows[R].IsScalar)
      continue;
    bool Parallel = true;
    std::vector<ReductionClause> Clauses;
    for (const Dependence &D : DG.Deps) {
      if (!D.isLegalityDep())
        continue;
      // Dependences handled by outer rows do not constrain this level.
      if (D.SatisfiedAtRow >= 0 && D.SatisfiedAtRow < static_cast<int>(R))
        continue;
      if (zeroAt(D, Sched, R))
        continue;
      if (D.IsReduction) {
        // A reduction cycle does not serialize the loop: the emitted
        // pragma runs it parallel under a reduction clause on the target
        // (accesses 0/1 of a reduction statement are its write/read of the
        // target, so access 0 names the reduced array).
        Clauses.push_back({D.RedOp, Prog.Stmts[D.SrcStmt].Accesses[0].Array});
        continue;
      }
      Parallel = false;
      break;
    }
    Sched.Rows[R].IsParallel = Parallel;
    if (Parallel && !Clauses.empty()) {
      std::sort(Clauses.begin(), Clauses.end());
      Clauses.erase(std::unique(Clauses.begin(), Clauses.end()),
                    Clauses.end());
      Sched.Rows[R].Reductions = std::move(Clauses);
    }
  }
}

namespace {

/// Outcome of one findHyperplane() attempt.
enum class FindResult {
  Found, ///< A row was appended to the schedule.
  None,  ///< Proven: no hyperplane satisfies the constraints.
  Error, ///< The ILP solve budget was exhausted (diagnostic, not "none").
};

/// Mutable search state of the main algorithm (one weakly-connected
/// cluster's worth of statements, or the whole program).
class PlutoSearch {
public:
  PlutoSearch(const Program &Prog, DependenceGraph &DG,
              const TransformOptions &Opts)
      : Prog(Prog), DG(DG), Opts(Opts), Layout(Prog) {
    Sched.StmtRows.resize(Prog.Stmts.size());
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      Sched.StmtRows[S] = IntMatrix(Prog.Stmts[S].numIters() + 1);
      HBasis.push_back(IntMatrix(Prog.Stmts[S].numIters()));
    }
  }

  /// Runs the search. Parallelism detection is the caller's job: the
  /// decomposed driver runs it once, on the stitched global schedule.
  Result<Schedule> run() {
    // Hyperplanes are found iteratively until every statement has a full
    // set of linearly independent ones AND every dependence is strongly
    // satisfied (paper Sec. 3.2). Past full rank, additional (dependent)
    // rows may still be needed to order instances the earlier rows tied;
    // the cheap statement-ordering scalar dimension is preferred whenever
    // it finishes the job legally.
    while (needsMoreIndependentRows() || !allDepsSatisfied()) {
      if (Sched.numRows() >= Opts.MaxRows)
        return Err(std::string(
            "transformation did not converge (row cap exceeded)"));
      if (!needsMoreIndependentRows() && textualRowWouldHelp()) {
        appendTextualOrderRow();
        continue;
      }
      unsigned SatBefore = numSatisfied();
      unsigned RankBefore = totalRank();
      FindResult FR = findHyperplane();
      if (FR == FindResult::Error)
        return Err(std::move(Diag));
      if (FR == FindResult::Found) {
        if (totalRank() > RankBefore || numSatisfied() > SatBefore)
          continue;
        removeLastRow(); // Stall: the row ordered nothing new.
      }
      if (cut())
        continue;
      return Err(std::string(
          "no legal hyperplane and no cut available: the program "
          "admits no non-negative-coefficient affine schedule"));
    }
    return std::move(Sched);
  }

private:
  const Program &Prog;
  DependenceGraph &DG;
  const TransformOptions &Opts;
  VarLayout Layout;
  Schedule Sched;
  /// Per statement: linearly independent iterator-coefficient rows found.
  std::vector<IntMatrix> HBasis;
  /// First row of the band currently being grown; dependences satisfied at
  /// rows >= BandStart still participate in legality (permutability).
  unsigned BandStart = 0;
  int CurBandId = 0;
  /// Diagnostic message backing a FindResult::Error.
  std::string Diag;

  /// The Farkas-eliminated systems of one dependence. Legality has zero
  /// rows for input (RAR) dependences, which only bound the cost.
  struct DepSystems {
    const Dependence *D;
    ConstraintSystem Legality;
    ConstraintSystem Bounding;
  };

  /// Constraint material shared by every hyperplane query of the current
  /// band. The active dependence set is fixed within a band (anything
  /// satisfied at or after BandStart stays active), so the per-dependence
  /// Farkas eliminations, the assembled core system and the warm solver's
  /// tableau snapshot are all reusable until the next cut.
  struct BandCache {
    bool Valid = false;
    std::vector<DepSystems> Deps;
    /// Legality + bounding + trivial-solution guards, normalized once.
    ConstraintSystem Core;
    bool CoreTriviallyFalse = false;
    ilp::LexMinSolver Warm;
  };
  BandCache Cache;

  bool needsMoreIndependentRows() const {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S)
      if (HBasis[S].numRows() < Prog.Stmts[S].numIters())
        return true;
    return false;
  }

  bool allDepsSatisfied() const {
    for (const Dependence &D : DG.Deps)
      if (D.isLegalityDep() && !D.satisfied())
        return false;
    return true;
  }

  unsigned numSatisfied() const {
    unsigned N = 0;
    for (const Dependence &D : DG.Deps)
      N += D.isLegalityDep() && D.satisfied();
    return N;
  }

  unsigned totalRank() const {
    unsigned R = 0;
    for (const IntMatrix &H : HBasis)
      R += H.numRows();
    return R;
  }

  void removeLastRow() {
    assert(Sched.numRows() > 0 && "no row to remove");
    for (IntMatrix &M : Sched.StmtRows)
      M.removeRow(M.numRows() - 1);
    Sched.Rows.pop_back();
  }

  /// True if appending the textual-order scalar dimension is legal for all
  /// remaining dependences (source position <= destination position) and
  /// strongly satisfies at least one of them.
  bool textualRowWouldHelp() const {
    bool Progress = false;
    for (const Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (D.SrcStmt > D.DstStmt)
        return false; // The ordering dimension would reverse it.
      Progress |= D.SrcStmt < D.DstStmt;
    }
    return Progress;
  }

  /// A dependence constrains the current search if it has not been
  /// satisfied before the current band started.
  bool isActive(const Dependence &D) const {
    return !D.satisfied() ||
           D.SatisfiedAtRow >= static_cast<int>(BandStart);
  }

  /// Trivial-solution avoidance: sum of iterator coefficients >= 1 per
  /// statement (Section 4.2). Statements with no surrounding loop are
  /// exempt (their only coefficient is c0).
  void appendGuardRows(ConstraintSystem &Sys) const {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      if (M == 0)
        continue;
      std::vector<BigInt> Row(Layout.numVars() + 1, BigInt(0));
      for (unsigned I = 0; I < M; ++I)
        Row[Layout.coeffCol(S, I)] = BigInt(1);
      Row[Layout.numVars()] = BigInt(-1);
      Sys.addIneq(std::move(Row));
    }
  }

  /// (Re)builds the band cache on first use after a cut.
  void ensureCache() {
    if (Cache.Valid)
      return;
    Cache.Deps.clear();
    for (const Dependence &D : DG.Deps) {
      if (D.Kind == DepKind::Input) {
        // Input deps always participate (cost bounding only).
        Cache.Deps.push_back({&D, ConstraintSystem(Layout.numVars()),
                              boundingConstraints(D, Prog, Layout)});
        continue;
      }
      if (!isActive(D))
        continue;
      Cache.Deps.push_back({&D, legalityConstraints(D, Prog, Layout),
                            boundingConstraints(D, Prog, Layout)});
    }
    ConstraintSystem Core(Layout.numVars());
    for (const DepSystems &DS : Cache.Deps) {
      Core.append(DS.Legality);
      Core.append(DS.Bounding);
    }
    appendGuardRows(Core);
    Cache.CoreTriviallyFalse = !Core.normalize();
    Cache.Core = std::move(Core);
    Cache.Warm = ilp::LexMinSolver();
    if (Cache.CoreTriviallyFalse == false)
      Cache.Warm.setBase(Cache.Core.ineqs(), Cache.Core.eqs(),
                         Layout.numVars());
    Cache.Valid = true;
  }

  /// Linear independence for statements still needing rows: every row r of
  /// the orthogonal complement gives r.c >= 0, and their sum >= 1 (the
  /// non-negative-coefficient practical choice of Section 4.2). These are
  /// the only rows that change between hyperplanes of one band.
  IntMatrix independenceRows() const {
    IntMatrix Rows(Layout.numVars() + 1);
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      if (M == 0 || HBasis[S].numRows() >= M)
        continue;
      IntMatrix Perp = orthogonalComplement(HBasis[S]);
      std::vector<BigInt> Sum(Layout.numVars() + 1, BigInt(0));
      for (unsigned R = 0; R < Perp.numRows(); ++R) {
        std::vector<BigInt> Row(Layout.numVars() + 1, BigInt(0));
        for (unsigned I = 0; I < M; ++I) {
          Row[Layout.coeffCol(S, I)] = Perp(R, I);
          Sum[Layout.coeffCol(S, I)] += Perp(R, I);
        }
        Rows.addRow(std::move(Row));
      }
      Sum[Layout.numVars()] = BigInt(-1);
      Rows.addRow(std::move(Sum));
    }
    return Rows;
  }

  /// Evaluates the Farkas-eliminated rows of one dependence at the unit
  /// candidate described by Chosen (per statement: original dimension
  /// index, or negative when unassigned / loop-less). The candidate zeroes
  /// every cost variable and every c0, and a row of one dependence only
  /// mentions its own two statement blocks plus the cost columns, so each
  /// row evaluates to its constant plus at most two coefficients.
  bool rowsHoldAt(const DepSystems &DS, const std::vector<int> &Chosen) const {
    unsigned Src = DS.D->SrcStmt, Dst = DS.D->DstStmt;
    auto Eval = [&](const std::vector<BigInt> &Row) {
      BigInt V = Row[Layout.numVars()];
      if (Chosen[Src] >= 0)
        V += Row[Layout.coeffCol(Src, static_cast<unsigned>(Chosen[Src]))];
      if (Dst != Src && Chosen[Dst] >= 0)
        V += Row[Layout.coeffCol(Dst, static_cast<unsigned>(Chosen[Dst]))];
      return V;
    };
    for (const ConstraintSystem *CS : {&DS.Legality, &DS.Bounding}) {
      for (unsigned R = 0; R < CS->ineqs().numRows(); ++R)
        if (Eval(CS->ineqs().row(R)).isNegative())
          return false;
      for (unsigned R = 0; R < CS->eqs().numRows(); ++R)
        if (!Eval(CS->eqs().row(R)).isZero())
          return false;
    }
    return true;
  }

  /// DFS worker of the dimension-matching fast path: assigns statement S a
  /// dimension (statements in id order, dimensions outermost-first - the
  /// lexicographic order the exact lexmin prefers among unit candidates)
  /// and checks every dependence whose later endpoint is S.
  bool matchAssign(unsigned S, std::vector<int> &Chosen,
                   const std::vector<std::vector<const DepSystems *>> &ByMax,
                   const std::vector<IntMatrix> &Perp,
                   unsigned &Budget) const {
    if (S == Prog.Stmts.size())
      return true;
    if (Budget == 0)
      return false;
    --Budget;
    auto DepsOk = [&]() {
      for (const DepSystems *DS : ByMax[S])
        if (!rowsHoldAt(*DS, Chosen))
          return false;
      return true;
    };
    unsigned M = Layout.stmtNumIters(S);
    if (M == 0) {
      Chosen[S] = -2; // Assigned; contributes nothing (c0 stays 0).
      if (DepsOk() && matchAssign(S + 1, Chosen, ByMax, Perp, Budget))
        return true;
      Chosen[S] = -1;
      return false;
    }
    bool NeedIndep = HBasis[S].numRows() < M;
    for (unsigned D = 0; D < M; ++D) {
      if (NeedIndep) {
        // The unit must satisfy the same non-negative independence
        // encoding the exact system carries: Perp(r, D) >= 0 per row and
        // their sum >= 1 (which also implies linear independence).
        bool Ok = true;
        BigInt Sum(0);
        for (unsigned R = 0; R < Perp[S].numRows(); ++R) {
          if (Perp[S](R, D).isNegative()) {
            Ok = false;
            break;
          }
          Sum += Perp[S](R, D);
        }
        if (!Ok || Sum < BigInt(1))
          continue;
      }
      Chosen[S] = static_cast<int>(D);
      if (DepsOk() && matchAssign(S + 1, Chosen, ByMax, Perp, Budget))
        return true;
    }
    Chosen[S] = -1;
    return false;
  }

  /// The dimension-matching fast path: look for one original loop
  /// dimension per statement whose unit hyperplanes form a feasible
  /// zero-cost point of the exact ILP, verified by direct evaluation
  /// against the band's cached Farkas systems (never a fresh ILP). A
  /// verified candidate is a feasible point of the exact formulation with
  /// an all-zero cost prefix, so the exact lexmin's cost prefix is zero
  /// too and the candidate matches it whenever the optimum is a unit
  /// solution. Zero cost pins every active delta to zero, which can never
  /// strongly satisfy a dependence - hence the caller gates this on
  /// needsMoreIndependentRows() and skips the satisfaction update.
  bool tryDimensionMatch() {
    unsigned NumStmts = static_cast<unsigned>(Prog.Stmts.size());
    std::vector<std::vector<const DepSystems *>> ByMax(NumStmts);
    for (const DepSystems &DS : Cache.Deps)
      ByMax[std::max(DS.D->SrcStmt, DS.D->DstStmt)].push_back(&DS);
    std::vector<IntMatrix> Perp(NumStmts);
    for (unsigned S = 0; S < NumStmts; ++S)
      if (Layout.stmtNumIters(S) > 0 &&
          HBasis[S].numRows() < Layout.stmtNumIters(S))
        Perp[S] = orthogonalComplement(HBasis[S]);
    std::vector<int> Chosen(NumStmts, -1);
    unsigned Budget = 64 * NumStmts + 256; // Deterministic node cap.
    if (!matchAssign(0, Chosen, ByMax, Perp, Budget))
      return false;
    std::vector<BigInt> Point(Layout.numVars(), BigInt(0));
    for (unsigned S = 0; S < NumStmts; ++S)
      if (Chosen[S] >= 0)
        Point[Layout.coeffCol(S, static_cast<unsigned>(Chosen[S]))] =
            BigInt(1);
    appendCoeffRow(Point);
    return true;
  }

  /// Attempts to find the next hyperplane; appends the row on success.
  FindResult findHyperplane() {
    ensureCache();
    if (Opts.DimensionMatch && needsMoreIndependentRows()) {
      if (tryDimensionMatch()) {
        count(Counter::ScheduleFastPathHits);
        return FindResult::Found;
      }
      count(Counter::ScheduleFastPathFallbacks);
    }
    if (Cache.CoreTriviallyFalse)
      return FindResult::None;
    IntMatrix Extras = independenceRows();
    ilp::LexMinResult Sol;
    bool Solved = false;
    if (Opts.WarmStart) {
      // The integer lexmin is unique, so the warm solve returns exactly
      // what the cold one would; a wedged warm tableau (Aborted) gets one
      // cold retry before the budget is reported as exhausted.
      Sol = Cache.Warm.solveWith(Extras);
      Solved = Sol.Status != ilp::SolveStatus::Aborted;
    }
    if (!Solved) {
      ConstraintSystem Sys = Cache.Core;
      for (unsigned R = 0; R < Extras.numRows(); ++R)
        Sys.addIneq(Extras.row(R));
      if (!Sys.normalize())
        return FindResult::None;
      Sol = ilp::lexMinNonNeg(Sys.ineqs(), Sys.eqs(), Layout.numVars());
    }
    if (Sol.Status == ilp::SolveStatus::Aborted) {
      Diag = "hyperplane search aborted at row " +
             std::to_string(Sched.numRows()) +
             ": the lexmin solve budget (ilp::SolveLimits) was exhausted "
             "before feasibility could be decided";
      return FindResult::Error;
    }
    if (!Sol.feasible())
      return FindResult::None;
    appendCoeffRow(Sol.Point);
    updateSatisfaction(Sched.numRows() - 1);
    return FindResult::Found;
  }

  /// Appends one coefficient row (from an ILP point or a verified unit
  /// candidate) to every statement's transformation, growing the
  /// independence bases.
  void appendCoeffRow(const std::vector<BigInt> &Point) {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      std::vector<BigInt> Row(M + 1);
      for (unsigned I = 0; I < M; ++I)
        Row[I] = Point[Layout.coeffCol(S, I)];
      Row[M] = Point[Layout.stmtC0(S)];
      Sched.StmtRows[S].addRow(Row);
      std::vector<BigInt> Coeffs(Row.begin(), Row.begin() + M);
      if (HBasis[S].numRows() < M && M > 0 &&
          isLinearlyIndependent(HBasis[S], Coeffs))
        HBasis[S].addRow(std::move(Coeffs));
    }
    RowInfo Info;
    Info.IsScalar = false;
    Info.BandId = CurBandId;
    Sched.Rows.push_back(Info);
    count(Counter::HyperplanesFound);
    if (Trace *T = activeTrace()) {
      std::string Msg = "row " + std::to_string(Sched.numRows() - 1) +
                        " (band " + std::to_string(CurBandId) + "):";
      for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
        Msg += " S" + std::to_string(S) + "=[";
        const IntMatrix &M = Sched.StmtRows[S];
        for (unsigned C = 0; C < M.numCols(); ++C)
          Msg += std::string(C ? " " : "") +
                 M(Sched.numRows() - 1, C).toString();
        Msg += "]";
      }
      T->record("transform", std::move(Msg));
    }
    if (debugEnabled()) {
      fprintf(stderr, "[pluto] row %u (band %d):", Sched.numRows() - 1,
              CurBandId);
      for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
        fprintf(stderr, "  S%u=[", S);
        const IntMatrix &M = Sched.StmtRows[S];
        for (unsigned C = 0; C < M.numCols(); ++C)
          fprintf(stderr, "%s%s", C ? " " : "",
                  M(Sched.numRows() - 1, C).toString().c_str());
        fprintf(stderr, "] rank=%u/%u", HBasis[S].numRows(),
                Layout.stmtNumIters(S));
      }
      fprintf(stderr, "\n");
    }
  }

  /// Marks legality dependences strongly satisfied at row R.
  void updateSatisfaction(unsigned R) {
    for (Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (stronglySatisfiedAt(D, Sched, R))
        D.SatisfiedAtRow = static_cast<int>(R);
    }
  }

  /// No hyperplane found: either separate the SCCs with a scalar dimension,
  /// or retire the dependences satisfied by the current band and start a
  /// new band. Returns false if neither makes progress.
  bool cut() {
    unsigned NumStmts = static_cast<unsigned>(Prog.Stmts.size());
    std::vector<unsigned> Scc = DG.sccIds(NumStmts);
    unsigned NumScc = 0;
    for (unsigned Id : Scc)
      NumScc = std::max(NumScc, Id + 1);
    if (NumScc > 1) {
      appendScalarRow(Scc);
      startNewBand();
      count(Counter::SccCuts);
      if (Trace *T = activeTrace())
        T->record("transform",
                  "no hyperplane: cut into " + std::to_string(NumScc) +
                      " SCCs with a scalar dimension (row " +
                      std::to_string(Sched.numRows() - 1) + ")");
      return true;
    }
    // Single SCC: progress is only possible if this band satisfied
    // something we can now retire.
    bool Retired = false;
    for (const Dependence &D : DG.Deps)
      if (D.isLegalityDep() && D.satisfied() &&
          D.SatisfiedAtRow >= static_cast<int>(BandStart))
        Retired = true;
    if (!Retired)
      return false;
    startNewBand();
    if (Trace *T = activeTrace())
      T->record("transform",
                "single SCC: retired satisfied dependences, new band at row " +
                    std::to_string(Sched.numRows()));
    return true;
  }

  void startNewBand() {
    BandStart = Sched.numRows();
    ++CurBandId;
    Cache.Valid = false; // The active dependence set just changed.
  }

  /// Appends a scalar dimension with per-statement constants Values[stmt];
  /// dependences that become strongly satisfied are marked.
  void appendConstantRow(const std::vector<unsigned> &Values) {
    for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
      unsigned M = Layout.stmtNumIters(S);
      std::vector<BigInt> Row(M + 1, BigInt(0));
      Row[M] = BigInt(static_cast<long long>(Values[S]));
      Sched.StmtRows[S].addRow(std::move(Row));
    }
    RowInfo Info;
    Info.IsScalar = true;
    Info.BandId = -1;
    Sched.Rows.push_back(Info);
    updateSatisfaction(Sched.numRows() - 1);
  }

  void appendScalarRow(const std::vector<unsigned> &SccIds) {
    appendConstantRow(SccIds);
  }

  /// Final fallback: order statements by original textual position to
  /// satisfy remaining loop-independent dependences.
  void appendTextualOrderRow() {
    pluto::appendTextualOrderRow(Prog, Sched);
    updateSatisfaction(Sched.numRows() - 1);
    count(Counter::TextualOrderRows);
    if (Trace *T = activeTrace())
      T->record("transform", "appended textual-order scalar row " +
                                 std::to_string(Sched.numRows() - 1));
  }
};

/// One solved weakly-connected cluster of the decomposition.
struct ClusterResult {
  std::vector<unsigned> Stmts;  ///< Global statement ids, ascending.
  std::vector<unsigned> DepIdx; ///< Global indices of the cluster's deps.
  Schedule Sched;               ///< Over local statement ids.
  std::vector<int> LocalSat;    ///< Per local dep: local SatisfiedAtRow.
};

/// Builds the cluster-local sub-problem (remapped statement/dependence ids,
/// shared parameters and context) and runs the search on it. Dependence
/// polyhedra transfer unchanged - they are expressed over the two
/// statements' iterators, not over statement ids.
Result<ClusterResult> solveCluster(const Program &Prog,
                                   const DependenceGraph &DG,
                                   const TransformOptions &Opts,
                                   const std::vector<unsigned> &Members) {
  Program Sub;
  Sub.ParamNames = Prog.ParamNames;
  Sub.Arrays = Prog.Arrays;
  Sub.Context = Prog.Context;
  std::vector<unsigned> LocalId(Prog.Stmts.size(), ~0u);
  for (unsigned K = 0; K < Members.size(); ++K) {
    LocalId[Members[K]] = K;
    Statement S = Prog.Stmts[Members[K]];
    S.Id = K;
    Sub.Stmts.push_back(std::move(S));
  }
  DependenceGraph SubDG;
  ClusterResult CR;
  CR.Stmts = Members;
  for (unsigned DI = 0; DI < DG.Deps.size(); ++DI) {
    const Dependence &D = DG.Deps[DI];
    if (LocalId[D.SrcStmt] == ~0u)
      continue; // Both endpoints share a component by construction.
    Dependence LD = D;
    LD.SrcStmt = LocalId[D.SrcStmt];
    LD.DstStmt = LocalId[D.DstStmt];
    LD.SatisfiedAtRow = -1;
    SubDG.Deps.push_back(std::move(LD));
    CR.DepIdx.push_back(DI);
  }
  PlutoSearch Search(Sub, SubDG, Opts);
  Result<Schedule> R = Search.run();
  if (!R)
    return Err(R.error());
  CR.Sched = R.takeValue();
  for (const Dependence &LD : SubDG.Deps)
    CR.LocalSat.push_back(LD.SatisfiedAtRow);
  return CR;
}

/// Attempts the aligned-interleave stitch: when every cluster produced the
/// same loop-row structure (same loop-row count, same normalized band
/// pattern, no interior scalar rows, at most one trailing textual-order
/// row), the per-cluster rows merge index-by-index into one global schedule
/// whose bands span all clusters - the fused shape the monolithic solve
/// produces. Cross-cluster dependences do not exist, so row r of the merged
/// schedule is legal iff row r of each cluster is, and merged bands stay
/// permutable. Returns false when the shapes do not line up.
bool alignedInterleave(const Program &Prog, DependenceGraph &DG,
                       const std::vector<ClusterResult> &Clusters,
                       Schedule &Out) {
  unsigned LoopRows = 0;
  bool AnyTextual = false;
  std::vector<int> Pattern;
  bool First = true;
  for (const ClusterResult &CR : Clusters) {
    const Schedule &S = CR.Sched;
    unsigned L = S.numRows();
    bool Textual = false;
    if (L > 0 && S.Rows[L - 1].IsScalar) {
      // Only a trailing textual-order row interleaves cleanly (its local
      // constants are the local statement ids, which are monotone in the
      // global ids - so one global textual row reproduces all of them).
      for (unsigned K = 0; K < CR.Stmts.size(); ++K) {
        unsigned M = Prog.Stmts[CR.Stmts[K]].numIters();
        if (S.StmtRows[K](L - 1, M) != BigInt(static_cast<long long>(K)))
          return false;
      }
      Textual = true;
      --L;
    }
    std::vector<int> P;
    std::map<int, int> Renum;
    for (unsigned R = 0; R < L; ++R) {
      if (S.Rows[R].IsScalar)
        return false; // Interior fusion cuts do not align.
      int B = S.Rows[R].BandId;
      auto It = Renum.find(B);
      if (It == Renum.end())
        It = Renum.emplace(B, static_cast<int>(Renum.size())).first;
      P.push_back(It->second);
    }
    if (First) {
      LoopRows = L;
      Pattern = std::move(P);
      First = false;
    } else if (L != LoopRows || P != Pattern) {
      return false;
    }
    AnyTextual |= Textual;
  }

  Out = Schedule();
  Out.StmtRows.resize(Prog.Stmts.size());
  for (const ClusterResult &CR : Clusters)
    for (unsigned K = 0; K < CR.Stmts.size(); ++K) {
      unsigned G = CR.Stmts[K];
      IntMatrix M(Prog.Stmts[G].numIters() + 1);
      for (unsigned R = 0; R < LoopRows; ++R)
        M.addRow(CR.Sched.StmtRows[K].row(R));
      Out.StmtRows[G] = std::move(M);
    }
  for (unsigned R = 0; R < LoopRows; ++R) {
    RowInfo Info;
    Info.IsScalar = false;
    Info.BandId = Pattern[R];
    Out.Rows.push_back(Info);
  }
  if (AnyTextual)
    appendTextualOrderRow(Prog, Out);
  // Satisfaction copy-back: loop row r maps to global row r; a cluster's
  // textual row maps to the single global textual row.
  for (const ClusterResult &CR : Clusters)
    for (unsigned I = 0; I < CR.DepIdx.size(); ++I) {
      int Sat = CR.LocalSat[I];
      if (Sat >= static_cast<int>(LoopRows))
        Sat = static_cast<int>(LoopRows);
      DG.Deps[CR.DepIdx[I]].SatisfiedAtRow = Sat;
    }
  return true;
}

/// Fallback stitch for shape-incompatible clusters: a leading scalar
/// dimension carries the cluster ordinal (clusters are mutually
/// independent, so any relative order is a topological one;
/// smallest-statement-id order preserves the source layout), then each
/// cluster's rows follow as one contiguous block with all-zero rows for
/// the statements of other clusters. Band ids are offset per cluster to
/// stay globally unique.
void concatStitch(const Program &Prog, DependenceGraph &DG,
                  const std::vector<ClusterResult> &Clusters, Schedule &Out) {
  unsigned NumStmts = static_cast<unsigned>(Prog.Stmts.size());
  Out = Schedule();
  Out.StmtRows.resize(NumStmts);
  std::vector<unsigned> Ordinal(NumStmts, 0), Local(NumStmts, 0);
  std::vector<const ClusterResult *> Owner(NumStmts, nullptr);
  for (unsigned C = 0; C < Clusters.size(); ++C)
    for (unsigned K = 0; K < Clusters[C].Stmts.size(); ++K) {
      unsigned G = Clusters[C].Stmts[K];
      Ordinal[G] = C;
      Local[G] = K;
      Owner[G] = &Clusters[C];
    }
  for (unsigned S = 0; S < NumStmts; ++S) {
    unsigned M = Prog.Stmts[S].numIters();
    Out.StmtRows[S] = IntMatrix(M + 1);
    std::vector<BigInt> Row(M + 1, BigInt(0));
    Row[M] = BigInt(static_cast<long long>(Ordinal[S]));
    Out.StmtRows[S].addRow(std::move(Row));
  }
  RowInfo Lead;
  Lead.IsScalar = true;
  Lead.BandId = -1;
  Out.Rows.push_back(Lead);

  int BandBase = 0;
  for (const ClusterResult &CR : Clusters) {
    unsigned Base = Out.numRows();
    const Schedule &S = CR.Sched;
    int MaxBand = -1;
    for (unsigned R = 0; R < S.numRows(); ++R) {
      for (unsigned G = 0; G < NumStmts; ++G) {
        unsigned M = Prog.Stmts[G].numIters();
        if (Owner[G] == &CR)
          Out.StmtRows[G].addRow(S.StmtRows[Local[G]].row(R));
        else
          Out.StmtRows[G].addRow(std::vector<BigInt>(M + 1, BigInt(0)));
      }
      RowInfo Info = S.Rows[R];
      Info.IsParallel = false;
      Info.IsVector = false;
      if (!Info.IsScalar) {
        MaxBand = std::max(MaxBand, Info.BandId);
        Info.BandId += BandBase;
      }
      Out.Rows.push_back(Info);
    }
    BandBase += MaxBand + 1;
    for (unsigned I = 0; I < CR.DepIdx.size(); ++I) {
      int Sat = CR.LocalSat[I];
      DG.Deps[CR.DepIdx[I]].SatisfiedAtRow =
          Sat < 0 ? -1 : static_cast<int>(Base) + Sat;
    }
  }
}

} // namespace

void pluto::appendTextualOrderRow(const Program &Prog, Schedule &Sched) {
  // Statements are created in textual order by the frontend, so the id is
  // the textual rank.
  for (unsigned S = 0; S < Prog.Stmts.size(); ++S) {
    unsigned M = Prog.Stmts[S].numIters();
    std::vector<BigInt> Row(M + 1, BigInt(0));
    Row[M] = BigInt(static_cast<long long>(S));
    Sched.StmtRows[S].addRow(std::move(Row));
  }
  RowInfo Info;
  Info.IsScalar = true;
  Info.BandId = -1;
  Sched.Rows.push_back(Info);
}

Result<Schedule> pluto::computeSchedule(const Program &Prog,
                                        DependenceGraph &DG,
                                        const TransformOptions &Opts) {
  for (Dependence &D : DG.Deps)
    D.SatisfiedAtRow = -1;
  unsigned NumStmts = static_cast<unsigned>(Prog.Stmts.size());
  std::vector<std::vector<unsigned>> Comps;
  if (Opts.Decompose && NumStmts > 0)
    Comps = DG.weakComponents(NumStmts);
  for (const std::vector<unsigned> &C : Comps)
    countClusterOfSize(static_cast<unsigned>(C.size()));
  if (Comps.size() > 1) {
    std::vector<ClusterResult> Clusters;
    bool Ok = true;
    for (const std::vector<unsigned> &Members : Comps) {
      Result<ClusterResult> CR = solveCluster(Prog, DG, Opts, Members);
      if (!CR) {
        Ok = false; // Fall back to the monolithic solve (safety valve).
        break;
      }
      Clusters.push_back(CR.takeValue());
    }
    if (Ok) {
      Schedule Global;
      bool Aligned = alignedInterleave(Prog, DG, Clusters, Global);
      if (!Aligned)
        concatStitch(Prog, DG, Clusters, Global);
      if (Trace *T = activeTrace())
        T->record("transform",
                  "decomposed into " + std::to_string(Clusters.size()) +
                      " clusters; " +
                      (Aligned ? "aligned-interleave" : "concat") +
                      " stitch produced " +
                      std::to_string(Global.numRows()) + " rows");
      detectParallelism(Prog, DG, Global);
      return Global;
    }
    for (Dependence &D : DG.Deps)
      D.SatisfiedAtRow = -1;
  }
  PlutoSearch Search(Prog, DG, Opts);
  Result<Schedule> R = Search.run();
  if (R)
    detectParallelism(Prog, DG, *R);
  return R;
}

bool pluto::analyzeSchedule(const Program &Prog, DependenceGraph &DG,
                            Schedule &Sched) {
  for (Dependence &D : DG.Deps)
    D.SatisfiedAtRow = -1;
  for (unsigned R = 0; R < Sched.numRows(); ++R) {
    for (Dependence &D : DG.Deps) {
      if (!D.isLegalityDep() || D.satisfied())
        continue;
      if (!weaklyLegalAt(D, Sched, R))
        return false; // Violated before satisfaction: illegal schedule.
      if (stronglySatisfiedAt(D, Sched, R))
        D.SatisfiedAtRow = static_cast<int>(R);
    }
  }
  for (const Dependence &D : DG.Deps)
    if (D.isLegalityDep() && !D.satisfied())
      return false;
  detectParallelism(Prog, DG, Sched);
  return true;
}
