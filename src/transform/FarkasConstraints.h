//===- transform/FarkasConstraints.h - Farkas-based constraints -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the linear constraints of the paper's ILP formulation by applying
/// the affine form of the Farkas lemma on dependence polyhedra:
///
///  - legality of tiling (paper eq. (2)):
///      phi_dst(t) - phi_src(s) >= 0   for all (s, t) in P_e
///  - cost bounding (paper eq. (4)):
///      u.p + w - (phi_dst(t) - phi_src(s)) >= 0   for all (s, t) in P_e
///    (and the mirrored form for input dependences, Section 4.1).
///
/// A non-negative affine form over a polyhedron is a non-negative
/// combination of the polyhedron's faces (Farkas); equating coefficients
/// yields equalities linking the transformation coefficients c, the bounding
/// coefficients (u, w) and the Farkas multipliers lambda. The multipliers
/// are then eliminated (Gaussian substitution + Fourier-Motzkin), leaving
/// constraints purely over the global ILP variables.
///
/// Global variable layout (lexmin order, paper eq. (5)):
///   [ ur_1..ur_np | wr | u_1..u_np | w | c^{S1}_m1..c^{S1}_1, c^{S1}_0 |...]
/// Iterator coefficients appear INNERMOST-first within each statement, so
/// among cost-equivalent solutions the lexmin prefers hyperplanes along
/// outer original loops: matmul keeps the identity order, and MVT's fusion
/// picks the paper's stride-1 pairing (i of the first MV with j of the
/// permuted second one) rather than the transposed stride-N one.
///
/// Input (RAR) dependences are bounded by their own bounding function
/// ur.p + wr, which LEADS the lexmin order. This realizes Section 4.1 the
/// way the paper's MVT experiment behaves: the reuse distance on the
/// dominant (maximal-rank) array is minimized even at the expense of
/// synchronization-free parallelism ("this however leads to loss of
/// synchronization-free parallelism", Sec. 7 MVT) - with a single joint
/// bound, the unfused i/i solution has u = 0 on the legality dependences
/// and the fusion the paper reports would never be chosen. Programs without
/// input dependences leave (ur, wr) at zero and behave exactly as eq. (5).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_TRANSFORM_FARKASCONSTRAINTS_H
#define PLUTOPP_TRANSFORM_FARKASCONSTRAINTS_H

#include "deps/Dependences.h"
#include "ir/Program.h"

namespace pluto {

/// Column layout of the global ILP variable vector.
class VarLayout {
public:
  explicit VarLayout(const Program &Prog);

  unsigned numVars() const { return Total; }
  /// Leading bounding coefficients for input (RAR) dependences.
  unsigned uRarOffset() const { return 0; }
  unsigned wRarOffset() const { return NumParams; }
  unsigned uOffset() const { return NumParams + 1; }
  unsigned numU() const { return NumParams; }
  unsigned wOffset() const { return 2 * NumParams + 1; }
  /// Offset of statement S's coefficient block (iterator coefficients,
  /// innermost-first, then c0).
  unsigned stmtOffset(unsigned S) const { return StmtOffsets[S]; }
  unsigned stmtNumIters(unsigned S) const { return StmtIters[S]; }
  /// Column of the coefficient of iterator I (0 = outermost) of statement S.
  unsigned coeffCol(unsigned S, unsigned I) const {
    assert(I < StmtIters[S] && "iterator index out of range");
    return StmtOffsets[S] + (StmtIters[S] - 1 - I);
  }
  /// Offset of statement S's translation coefficient c0.
  unsigned stmtC0(unsigned S) const {
    return StmtOffsets[S] + StmtIters[S];
  }

private:
  unsigned NumParams;
  std::vector<unsigned> StmtOffsets;
  std::vector<unsigned> StmtIters;
  unsigned Total;
};

/// Constraints (over Layout variables) making phi legal for dependence D
/// (paper eq. (2)), via Farkas elimination on D.Poly.
ConstraintSystem legalityConstraints(const Dependence &D, const Program &Prog,
                                     const VarLayout &Layout);

/// Constraints bounding delta_e by u.p + w (paper eq. (4)). For input
/// dependences both |delta| <= u.p + w directions are emitted (Sec. 4.1).
ConstraintSystem boundingConstraints(const Dependence &D, const Program &Prog,
                                     const VarLayout &Layout);

/// Shared engine: given an affine form over the dependence space whose
/// coefficients are themselves affine in the layout variables, produce the
/// layout-variable constraints equivalent to "form >= 0 on D.Poly".
/// FormCoeffs has one row per dependence-space column (src iters, dst
/// iters, params, constant); each row is over [layout vars | 1].
ConstraintSystem farkasEliminate(const ConstraintSystem &DepPoly,
                                 const IntMatrix &FormCoeffs,
                                 unsigned NumLayoutVars);

} // namespace pluto

#endif // PLUTOPP_TRANSFORM_FARKASCONSTRAINTS_H
