//===- transform/FarkasConstraints.cpp - Farkas-based constraints ---------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "transform/FarkasConstraints.h"

using namespace pluto;

VarLayout::VarLayout(const Program &Prog) {
  NumParams = Prog.numParams();
  unsigned Off = 2 * (NumParams + 1); // (u, w) then (ur, wr).
  for (const Statement &S : Prog.Stmts) {
    StmtOffsets.push_back(Off);
    StmtIters.push_back(S.numIters());
    Off += S.numIters() + 1; // c coefficients then c0.
  }
  Total = Off;
}

ConstraintSystem pluto::farkasEliminate(const ConstraintSystem &DepPoly,
                                        const IntMatrix &FormCoeffs,
                                        unsigned NumLayoutVars) {
  unsigned NX = DepPoly.numVars();
  assert(FormCoeffs.numRows() == NX + 1 &&
         "one coefficient row per dependence dim plus the constant");
  assert(FormCoeffs.numCols() == NumLayoutVars + 1 &&
         "coefficient rows are affine over the layout variables");

  unsigned NumIneq = DepPoly.numIneqs();
  unsigned NumEq = DepPoly.numEqs();
  // Multipliers: lambda0, one per inequality, a +/- pair per equality.
  unsigned NumLambda = 1 + NumIneq + 2 * NumEq;
  unsigned V = NumLayoutVars + NumLambda;
  unsigned L0 = NumLayoutVars; // Column of lambda0.

  ConstraintSystem Sys(V);

  // Coefficient-matching equalities: for each dependence-space column v,
  //   sum_k lambda_k * A[k][v] - Form_v(layout) == 0,
  // and for the constant column,
  //   lambda0 + sum_k lambda_k * b_k - Form_const(layout) == 0.
  for (unsigned X = 0; X <= NX; ++X) {
    std::vector<BigInt> Row(V + 1, BigInt(0));
    for (unsigned C = 0; C < NumLayoutVars; ++C)
      Row[C] = -FormCoeffs(X, C);
    Row[V] = -FormCoeffs(X, NumLayoutVars);
    if (X == NX)
      Row[L0] = BigInt(1);
    for (unsigned K = 0; K < NumIneq; ++K)
      Row[L0 + 1 + K] = DepPoly.ineqs()(K, X);
    for (unsigned E = 0; E < NumEq; ++E) {
      Row[L0 + 1 + NumIneq + 2 * E] = DepPoly.eqs()(E, X);
      Row[L0 + 1 + NumIneq + 2 * E + 1] = -DepPoly.eqs()(E, X);
    }
    Sys.addEq(std::move(Row));
  }
  // Non-negativity of all multipliers.
  for (unsigned K = 0; K < NumLambda; ++K) {
    std::vector<BigInt> Row(V + 1, BigInt(0));
    Row[L0 + K] = BigInt(1);
    Sys.addIneq(std::move(Row));
  }
  // Eliminate the multipliers: the coefficient-matching equalities
  // substitute most of them exactly; the rest fall to Fourier-Motzkin.
  Sys.projectOut(NumLayoutVars, NumLambda);
  Sys.normalize();
  return Sys;
}

namespace {

/// Builds the coefficient rows of delta_e = phi_dst(t) - phi_src(s) over the
/// dependence space [s | t | p | 1], as affine functions of layout vars.
/// Sign +1 produces +delta, -1 produces -delta.
IntMatrix deltaCoeffs(const Dependence &D, const Program &Prog,
                      const VarLayout &Layout, int Sign) {
  const Statement &Src = Prog.Stmts[D.SrcStmt];
  const Statement &Dst = Prog.Stmts[D.DstStmt];
  unsigned NS = Src.numIters(), NT = Dst.numIters();
  unsigned NX = D.Poly.numVars();
  IntMatrix M(NX + 1, Layout.numVars() + 1);
  BigInt S(Sign);
  for (unsigned I = 0; I < NS; ++I)
    M(I, Layout.coeffCol(D.SrcStmt, I)) -= S;
  for (unsigned J = 0; J < NT; ++J)
    M(NS + J, Layout.coeffCol(D.DstStmt, J)) += S;
  // Parameters carry no phi coefficients (paper eq. (1)).
  M(NX, Layout.stmtC0(D.DstStmt)) += S;
  M(NX, Layout.stmtC0(D.SrcStmt)) -= S;
  return M;
}

/// Adds a bounding function (u.p + w, columns starting at UOff/WOff) to
/// coefficient rows M.
void addBoundingForm(IntMatrix &M, const Dependence &D, const Program &Prog,
                     unsigned UOff, unsigned WOff) {
  const Statement &Src = Prog.Stmts[D.SrcStmt];
  const Statement &Dst = Prog.Stmts[D.DstStmt];
  unsigned NS = Src.numIters(), NT = Dst.numIters();
  unsigned NX = D.Poly.numVars();
  unsigned NP = Prog.numParams();
  assert(NX == NS + NT + NP && "unexpected dependence space layout");
  for (unsigned P = 0; P < NP; ++P)
    M(NS + NT + P, UOff + P) += BigInt(1);
  M(NX, WOff) += BigInt(1);
}

} // namespace

ConstraintSystem pluto::legalityConstraints(const Dependence &D,
                                            const Program &Prog,
                                            const VarLayout &Layout) {
  assert(D.isLegalityDep() && "input dependences impose no legality");
  IntMatrix Form = deltaCoeffs(D, Prog, Layout, /*Sign=*/+1);
  return farkasEliminate(D.Poly, Form, Layout.numVars());
}

ConstraintSystem pluto::boundingConstraints(const Dependence &D,
                                            const Program &Prog,
                                            const VarLayout &Layout) {
  // Input dependences use the secondary bounding pair (ur, wr).
  bool IsInput = D.Kind == DepKind::Input;
  unsigned UOff = IsInput ? Layout.uRarOffset() : Layout.uOffset();
  unsigned WOff = IsInput ? Layout.wRarOffset() : Layout.wOffset();
  // u.p + w - delta >= 0 on P_e.
  IntMatrix Upper = deltaCoeffs(D, Prog, Layout, /*Sign=*/-1);
  addBoundingForm(Upper, D, Prog, UOff, WOff);
  ConstraintSystem Sys = farkasEliminate(D.Poly, Upper, Layout.numVars());
  if (IsInput) {
    // Input dependences may have negative components in the transformed
    // space: bound from below as well (paper Section 4.1).
    IntMatrix Lower = deltaCoeffs(D, Prog, Layout, /*Sign=*/+1);
    addBoundingForm(Lower, D, Prog, UOff, WOff);
    Sys.append(farkasEliminate(D.Poly, Lower, Layout.numVars()));
    Sys.normalize();
  }
  return Sys;
}
