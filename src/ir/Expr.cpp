//===- ir/Expr.cpp - Expression AST for statement bodies ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

using namespace pluto;

ExprPtr Expr::intLit(long long V) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::IntLit;
  E->IntValue = V;
  return E;
}

ExprPtr Expr::floatLit(std::string Text) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::FloatLit;
  E->FloatText = std::move(Text);
  return E;
}

ExprPtr Expr::var(std::string Name) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Var;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::arrayRef(std::string Name, std::vector<ExprPtr> Subs) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::ArrayRef;
  E->Name = std::move(Name);
  E->Args = std::move(Subs);
  return E;
}

ExprPtr Expr::unary(std::string Op, ExprPtr Sub) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Unary;
  E->Op = std::move(Op);
  E->Args.push_back(std::move(Sub));
  return E;
}

ExprPtr Expr::binary(std::string Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Binary;
  E->Op = std::move(Op);
  E->Args.push_back(std::move(L));
  E->Args.push_back(std::move(R));
  return E;
}

ExprPtr Expr::call(std::string Name, std::vector<ExprPtr> Args) {
  auto E = std::make_shared<Expr>();
  E->K = Kind::Call;
  E->Name = std::move(Name);
  E->Args = std::move(Args);
  return E;
}

std::string Expr::toC(const std::map<std::string, std::string> &Subst) const {
  switch (K) {
  case Kind::IntLit:
    return std::to_string(IntValue);
  case Kind::FloatLit:
    return FloatText;
  case Kind::Var: {
    auto It = Subst.find(Name);
    return It != Subst.end() ? "(" + It->second + ")" : Name;
  }
  case Kind::ArrayRef: {
    std::string S = Name;
    for (const ExprPtr &Sub : Args)
      S += "[" + Sub->toC(Subst) + "]";
    return S;
  }
  case Kind::Unary:
    return "(" + Op + Args[0]->toC(Subst) + ")";
  case Kind::Binary:
    return "(" + Args[0]->toC(Subst) + " " + Op + " " + Args[1]->toC(Subst) +
           ")";
  case Kind::Call: {
    std::string S = Name + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        S += ", ";
      S += Args[I]->toC(Subst);
    }
    return S + ")";
  }
  }
  return "<?>";
}

namespace {

/// Recursive affine lowering; Row accumulates Scale * E.
bool accumulate(const Expr &E, const DimMap &Dims, const BigInt &Scale,
                std::vector<BigInt> &Row) {
  unsigned ConstCol = static_cast<unsigned>(Row.size()) - 1;
  switch (E.K) {
  case Expr::Kind::IntLit:
    Row[ConstCol] += Scale * BigInt(E.IntValue);
    return true;
  case Expr::Kind::Var: {
    auto It = Dims.find(E.Name);
    if (It == Dims.end())
      return false;
    assert(It->second < ConstCol && "dim column out of range");
    Row[It->second] += Scale;
    return true;
  }
  case Expr::Kind::Unary:
    if (E.Op == "-")
      return accumulate(*E.Args[0], Dims, -Scale, Row);
    if (E.Op == "+")
      return accumulate(*E.Args[0], Dims, Scale, Row);
    return false;
  case Expr::Kind::Binary: {
    if (E.Op == "+")
      return accumulate(*E.Args[0], Dims, Scale, Row) &&
             accumulate(*E.Args[1], Dims, Scale, Row);
    if (E.Op == "-")
      return accumulate(*E.Args[0], Dims, Scale, Row) &&
             accumulate(*E.Args[1], Dims, -Scale, Row);
    if (E.Op == "*") {
      // One side must fold to an integer constant.
      auto foldConst = [](const Expr &X, long long &Out) {
        if (X.K == Expr::Kind::IntLit) {
          Out = X.IntValue;
          return true;
        }
        if (X.K == Expr::Kind::Unary && X.Op == "-" &&
            X.Args[0]->K == Expr::Kind::IntLit) {
          Out = -X.Args[0]->IntValue;
          return true;
        }
        return false;
      };
      long long C;
      if (foldConst(*E.Args[0], C))
        return accumulate(*E.Args[1], Dims, Scale * BigInt(C), Row);
      if (foldConst(*E.Args[1], C))
        return accumulate(*E.Args[0], Dims, Scale * BigInt(C), Row);
      return false;
    }
    return false;
  }
  case Expr::Kind::FloatLit:
  case Expr::Kind::ArrayRef:
  case Expr::Kind::Call:
    return false;
  }
  return false;
}

} // namespace

std::optional<std::vector<BigInt>>
pluto::toAffine(const Expr &E, const DimMap &Dims, unsigned NumCols) {
  std::vector<BigInt> Row(NumCols, BigInt(0));
  if (!accumulate(E, Dims, BigInt(1), Row))
    return std::nullopt;
  return Row;
}
