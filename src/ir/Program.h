//===- ir/Program.h - Polyhedral program representation ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polyhedral representation of an affine loop-nest region (paper Section
/// 2.1, Figure 1): per-statement iteration domains as integer polyhedra,
/// affine array access functions, and the source nesting/ordering
/// information the dependence analyzer needs. Produced by the parser;
/// consumed by dependence analysis, the transformation framework, tiling and
/// code generation.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_IR_PROGRAM_H
#define PLUTOPP_IR_PROGRAM_H

#include "ir/Expr.h"
#include "poly/ConstraintSystem.h"

#include <string>
#include <vector>

namespace pluto {

/// One array reference in a statement body.
struct Access {
  std::string Array;
  /// Affine access function: one row per array dimension over the columns
  /// [statement iterators | program parameters | 1]. Scalars have 0 rows.
  IntMatrix Map;
  bool IsWrite = false;
};

/// The executable payload of a statement: Lhs AsgnOp Rhs;
struct StmtBody {
  ExprPtr Lhs;       ///< ArrayRef or Var being assigned.
  std::string AsgnOp; ///< "=", "+=", "-=", "*=".
  ExprPtr Rhs;
};

/// A statement of the input program with its iteration domain.
class Statement {
public:
  unsigned Id = 0;
  /// Names of the surrounding loop iterators, outermost first.
  std::vector<std::string> IterNames;
  /// Domain over [iters | params | 1]; the parameter count is shared across
  /// the program.
  ConstraintSystem Domain;
  std::vector<Access> Accesses;
  StmtBody Body;
  /// Original C text of the statement (for human-readable output).
  std::string Text;
  /// Ids of the enclosing loops, outermost first (loop ids are unique across
  /// the program). The common prefix of two statements' LoopPath gives their
  /// shared nest.
  std::vector<unsigned> LoopPath;
  /// 2d+1 interleaved position vector (syntactic slot, loop, slot, ...).
  /// Lexicographic comparison of PosVec is textual program order.
  std::vector<unsigned> PosVec;

  unsigned numIters() const {
    return static_cast<unsigned>(IterNames.size());
  }
};

/// An OpenMP reduction clause entry attached to a parallel loop: the array
/// (or scalar, Rank 0) receiving an associative update, and the operator.
/// Produced by reduction-aware parallelism detection in the transformation
/// framework and carried through tiling/codegen so the emitted pragma reads
/// `#pragma omp parallel for reduction(Op:Array)`.
struct ReductionClause {
  char Op = '+'; ///< '+', '-' or '*'.
  std::string Array;

  friend bool operator==(const ReductionClause &A, const ReductionClause &B) {
    return A.Op == B.Op && A.Array == B.Array;
  }
  friend bool operator<(const ReductionClause &A, const ReductionClause &B) {
    return A.Array != B.Array ? A.Array < B.Array : A.Op < B.Op;
  }
};

/// Information about one array of the region.
struct ArrayInfo {
  std::string Name;
  unsigned Rank = 0;       ///< 0 for scalars.
  bool IsWritten = false;  ///< Read-only arrays feed only RAR dependences.
};

/// A static control region: statements, parameters and context.
class Program {
public:
  std::vector<std::string> ParamNames;
  std::vector<Statement> Stmts;
  std::vector<ArrayInfo> Arrays;
  /// Known facts about the parameters, over [params | 1]. The parser seeds
  /// it empty; drivers usually add e.g. N >= 2 (the paper's assumption that
  /// parameters are large).
  ConstraintSystem Context;

  unsigned numParams() const {
    return static_cast<unsigned>(ParamNames.size());
  }

  const ArrayInfo *findArray(const std::string &Name) const;

  /// Number of loops surrounding both S and T (length of the common prefix
  /// of their loop paths).
  unsigned commonLoopDepth(const Statement &S, const Statement &T) const;

  /// True if S precedes T in textual program order.
  bool textuallyBefore(const Statement &S, const Statement &T) const;

  /// Adds the context constraints (over params) to a constraint system
  /// whose columns are [Prefix vars | params | 1] with the parameters
  /// starting at column ParamsAt.
  void appendContextTo(ConstraintSystem &CS, unsigned ParamsAt) const;

  /// Adds Param >= Value to the context; Param must exist.
  void addContextBound(const std::string &Param, long long MinValue);

  std::string toString() const;
};

} // namespace pluto

#endif // PLUTOPP_IR_PROGRAM_H
