//===- ir/Program.cpp - Polyhedral program representation -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <algorithm>

using namespace pluto;

const ArrayInfo *Program::findArray(const std::string &Name) const {
  for (const ArrayInfo &A : Arrays)
    if (A.Name == Name)
      return &A;
  return nullptr;
}

unsigned Program::commonLoopDepth(const Statement &S,
                                  const Statement &T) const {
  unsigned D = 0;
  unsigned Max = static_cast<unsigned>(
      std::min(S.LoopPath.size(), T.LoopPath.size()));
  while (D < Max && S.LoopPath[D] == T.LoopPath[D])
    ++D;
  return D;
}

bool Program::textuallyBefore(const Statement &S, const Statement &T) const {
  return std::lexicographical_compare(S.PosVec.begin(), S.PosVec.end(),
                                      T.PosVec.begin(), T.PosVec.end());
}

void Program::appendContextTo(ConstraintSystem &CS, unsigned ParamsAt) const {
  unsigned NP = numParams();
  assert(ParamsAt + NP <= CS.numVars() && "parameter columns out of range");
  for (unsigned R = 0; R < Context.ineqs().numRows(); ++R) {
    std::vector<BigInt> Row(CS.numVars() + 1, BigInt(0));
    for (unsigned P = 0; P < NP; ++P)
      Row[ParamsAt + P] = Context.ineqs()(R, P);
    Row[CS.numVars()] = Context.ineqs()(R, NP);
    CS.addIneq(std::move(Row));
  }
  for (unsigned R = 0; R < Context.eqs().numRows(); ++R) {
    std::vector<BigInt> Row(CS.numVars() + 1, BigInt(0));
    for (unsigned P = 0; P < NP; ++P)
      Row[ParamsAt + P] = Context.eqs()(R, P);
    Row[CS.numVars()] = Context.eqs()(R, NP);
    CS.addEq(std::move(Row));
  }
}

void Program::addContextBound(const std::string &Param, long long MinValue) {
  for (unsigned P = 0; P < numParams(); ++P) {
    if (ParamNames[P] != Param)
      continue;
    if (Context.numVars() != numParams())
      Context = ConstraintSystem(numParams());
    Context.addLowerBound(P, MinValue);
    return;
  }
  assert(false && "unknown parameter in addContextBound");
}

std::string Program::toString() const {
  std::string S = "parameters:";
  for (const std::string &P : ParamNames)
    S += " " + P;
  S += "\n";
  for (const Statement &St : Stmts) {
    S += "S" + std::to_string(St.Id) + " [";
    for (size_t I = 0; I < St.IterNames.size(); ++I) {
      if (I)
        S += ", ";
      S += St.IterNames[I];
    }
    S += "]: " + St.Text + "\n";
    std::vector<std::string> Names = St.IterNames;
    Names.insert(Names.end(), ParamNames.begin(), ParamNames.end());
    S += St.Domain.toString(Names);
  }
  return S;
}
