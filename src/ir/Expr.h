//===- ir/Expr.h - Expression AST for statement bodies ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small C expression AST. The parser produces these for loop bounds,
/// array subscripts and statement bodies. Subscripts and bounds are lowered
/// to affine rows (see toAffine); bodies are kept as trees so that the
/// interpreter can execute the original and the transformed program for
/// equivalence testing, and the code emitter can print them back as C.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_IR_EXPR_H
#define PLUTOPP_IR_EXPR_H

#include "support/Matrix.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pluto {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// C expression node. Plain struct; the Kind discriminates which fields are
/// meaningful.
struct Expr {
  enum class Kind {
    IntLit,   ///< IntValue
    FloatLit, ///< FloatText (kept as written, e.g. "0.333")
    Var,      ///< Name (loop iterator, parameter or scalar)
    ArrayRef, ///< Name + Args (subscripts, outermost first)
    Unary,    ///< Op in {"-", "+"} applied to Args[0]
    Binary,   ///< Op in {"+","-","*","/","%"}; Args[0] Op Args[1]
    Call,     ///< Name(Args...): opaque pure function (exp, sqrt, min, max)
  };

  Kind K;
  long long IntValue = 0;
  std::string FloatText;
  std::string Name;
  std::string Op;
  std::vector<ExprPtr> Args;

  static ExprPtr intLit(long long V);
  static ExprPtr floatLit(std::string Text);
  static ExprPtr var(std::string Name);
  static ExprPtr arrayRef(std::string Name, std::vector<ExprPtr> Subs);
  static ExprPtr unary(std::string Op, ExprPtr E);
  static ExprPtr binary(std::string Op, ExprPtr L, ExprPtr R);
  static ExprPtr call(std::string Name, std::vector<ExprPtr> Args);

  /// Renders the expression as C source. Iterator occurrences can be
  /// rewritten via Subst (name -> replacement C text), which is how the code
  /// generator re-targets statement bodies to transformed loop counters.
  std::string
  toC(const std::map<std::string, std::string> &Subst = {}) const;
};

/// Maps a name to its column in an affine row layout.
using DimMap = std::map<std::string, unsigned>;

/// Lowers E to an affine row over the layout described by Dims (column per
/// name) with NumCols total columns (last column is the constant term).
/// Returns std::nullopt if E is not affine in those names (products of two
/// variables, division, calls, float literals, unknown names not in Dims
/// are all rejected; unknown names ARE rejected so callers can decide which
/// symbols are legal dimensions).
std::optional<std::vector<BigInt>> toAffine(const Expr &E, const DimMap &Dims,
                                            unsigned NumCols);

} // namespace pluto

#endif // PLUTOPP_IR_EXPR_H
