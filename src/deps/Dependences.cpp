//===- deps/Dependences.cpp - Polyhedral dependence analysis --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "deps/Dependences.h"

#include "observe/PassStats.h"
#include "support/Budget.h"

#include <algorithm>
#include <functional>
#include <set>

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace pluto;

const char *pluto::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Input:
    return "input";
  }
  return "?";
}

namespace {

/// Helper that embeds statement-local rows into the dependence space
/// [src iters (NS) | dst iters (NT) | params (NP) | 1].
class DepBuilder {
public:
  DepBuilder(const Program &Prog, const Statement &Src, const Statement &Dst)
      : Prog(Prog), Src(Src), Dst(Dst), NS(Src.numIters()),
        NT(Dst.numIters()), NP(Prog.numParams()) {}

  unsigned numVars() const { return NS + NT + NP; }

  /// Remaps a row over [iters | params | 1] of Src (IsSrc) or Dst into the
  /// dependence space, optionally negated.
  std::vector<BigInt> embed(const std::vector<BigInt> &Row, bool IsSrc,
                            bool Negate = false) const {
    unsigned NIter = IsSrc ? NS : NT;
    unsigned Offset = IsSrc ? 0 : NS;
    std::vector<BigInt> R(numVars() + 1, BigInt(0));
    for (unsigned I = 0; I < NIter; ++I)
      R[Offset + I] = Row[I];
    for (unsigned P = 0; P < NP; ++P)
      R[NS + NT + P] = Row[NIter + P];
    R[numVars()] = Row[NIter + NP];
    if (Negate)
      for (BigInt &V : R)
        V = -V;
    return R;
  }

  /// Base polyhedron: both domains plus the program context.
  ConstraintSystem base() const {
    ConstraintSystem CS(numVars());
    auto addDomain = [&](const Statement &S, bool IsSrc) {
      const ConstraintSystem &D = S.Domain;
      for (unsigned R = 0; R < D.ineqs().numRows(); ++R)
        CS.addIneq(embed(D.ineqs().row(R), IsSrc));
      for (unsigned R = 0; R < D.eqs().numRows(); ++R)
        CS.addEq(embed(D.eqs().row(R), IsSrc));
    };
    addDomain(Src, /*IsSrc=*/true);
    addDomain(Dst, /*IsSrc=*/false);
    Prog.appendContextTo(CS, NS + NT);
    return CS;
  }

  /// Adds F_src(s) == F_dst(t) rows (conflicting accesses touch the same
  /// element).
  void addAccessEquality(ConstraintSystem &CS, const Access &A,
                         const Access &B) const {
    assert(A.Map.numRows() == B.Map.numRows() &&
           "conflicting accesses with different ranks");
    for (unsigned R = 0; R < A.Map.numRows(); ++R) {
      std::vector<BigInt> SRow = embed(A.Map.row(R), /*IsSrc=*/true);
      std::vector<BigInt> TRow = embed(B.Map.row(R), /*IsSrc=*/false);
      for (unsigned I = 0; I <= numVars(); ++I)
        SRow[I] -= TRow[I];
      CS.addEq(std::move(SRow));
    }
  }

  /// Adds the ordering constraints for carry level L (1-based): equal on
  /// the first L-1 common loops, source strictly earlier on loop L.
  void addCarriedOrder(ConstraintSystem &CS, unsigned L) const {
    for (unsigned K = 0; K + 1 < L; ++K) {
      std::vector<BigInt> Eq(numVars() + 1, BigInt(0));
      Eq[K] = BigInt(1);
      Eq[NS + K] = BigInt(-1);
      CS.addEq(std::move(Eq));
    }
    std::vector<BigInt> Lt(numVars() + 1, BigInt(0));
    Lt[L - 1] = BigInt(-1);
    Lt[NS + L - 1] = BigInt(1);
    Lt[numVars()] = BigInt(-1); // t_L - s_L - 1 >= 0.
    CS.addIneq(std::move(Lt));
  }

  /// Adds equality on all Common loops (loop-independent ordering).
  void addLoopIndependentOrder(ConstraintSystem &CS, unsigned Common) const {
    for (unsigned K = 0; K < Common; ++K) {
      std::vector<BigInt> Eq(numVars() + 1, BigInt(0));
      Eq[K] = BigInt(1);
      Eq[NS + K] = BigInt(-1);
      CS.addEq(std::move(Eq));
    }
  }

private:
  const Program &Prog;
  const Statement &Src;
  const Statement &Dst;
  unsigned NS, NT, NP;
};

DepKind kindOf(bool SrcWrite, bool DstWrite) {
  if (SrcWrite && DstWrite)
    return DepKind::Output;
  if (SrcWrite)
    return DepKind::Flow;
  if (DstWrite)
    return DepKind::Anti;
  return DepKind::Input;
}

} // namespace

namespace {

/// One (src stmt, dst stmt, src access, dst access) quadruple of the
/// dependence-pair worklist. Quadruples are independent of each other, so
/// they can be processed on any thread; results are concatenated in task
/// order to keep the output bit-identical to the serial loop.
struct PairTask {
  unsigned SI, TI, AI, BI;
};

/// Emptiness gate for one candidate polyhedron. A proven-empty candidate
/// is discarded; a solve-budget abort (SolveStatus::Aborted inside the
/// emptiness ILP) keeps the candidate - the conservative choice - but is
/// accounted explicitly instead of being conflated with feasibility.
bool candidateEmpty(const ConstraintSystem &CS) {
  ilp::Feasibility F = CS.integerFeasibility();
  if (F == ilp::Feasibility::Unknown)
    count(Counter::DepKeptOnAbort);
  return F == ilp::Feasibility::Empty;
}

/// Emits the dependences of one access pair, in the same order the serial
/// nest produced them (input; carried levels 1..Common; loop-independent).
std::vector<Dependence> analyzePair(const Program &Prog,
                                    const DepOptions &Opts, unsigned MaxRank,
                                    const PairTask &Task) {
  std::vector<Dependence> Out;
  const unsigned SI = Task.SI, TI = Task.TI, AI = Task.AI, BI = Task.BI;
  const Statement &S = Prog.Stmts[SI];
  const Statement &T = Prog.Stmts[TI];
  const Access &A = S.Accesses[AI];
  const Access &B = T.Accesses[BI];
  unsigned Common = Prog.commonLoopDepth(S, T);

  DepKind Kind = kindOf(A.IsWrite, B.IsWrite);
  if (Kind == DepKind::Input) {
    // Input deps are symmetric and carry no ordering: emit each unordered
    // pair once, from the earlier (stmt, acc) index, and skip
    // scalar/self-reference noise.
    if (!Opts.IncludeInputDeps)
      return Out;
    // Each unordered pair once; the (acc, acc) self-pair is kept - it
    // captures self-temporal reuse of a reference (e.g. a[i][k] across j
    // iterations in matmul).
    if (std::make_pair(SI, AI) > std::make_pair(TI, BI))
      return Out;
    if (A.Map.numRows() == 0)
      return Out; // Scalar RAR: no reuse direction to optimize.
    if (Opts.InputDepsMaxRankOnly && A.Map.numRows() < MaxRank)
      return Out; // Lower-rank reuse is asymptotically dominated.
    DepBuilder DB(Prog, S, T);
    ConstraintSystem CS = DB.base();
    DB.addAccessEquality(CS, A, B);
    if (!CS.normalize() || candidateEmpty(CS))
      return Out;
    Dependence D;
    D.SrcStmt = SI;
    D.DstStmt = TI;
    D.SrcAcc = AI;
    D.DstAcc = BI;
    D.Kind = Kind;
    D.Poly = std::move(CS);
    Out.push_back(std::move(D));
    return Out;
  }

  DepBuilder DB(Prog, S, T);
  // Loop-carried candidates at each common level.
  for (unsigned L = 1; L <= Common; ++L) {
    ConstraintSystem CS = DB.base();
    DB.addAccessEquality(CS, A, B);
    DB.addCarriedOrder(CS, L);
    if (!CS.normalize() || candidateEmpty(CS))
      continue;
    Dependence D;
    D.SrcStmt = SI;
    D.DstStmt = TI;
    D.SrcAcc = AI;
    D.DstAcc = BI;
    D.Kind = Kind;
    D.CarryLevel = L;
    D.Poly = std::move(CS);
    Out.push_back(std::move(D));
  }
  // Loop-independent candidate: distinct statements only, source textually
  // first.
  if (SI != TI && Prog.textuallyBefore(S, T)) {
    ConstraintSystem CS = DB.base();
    DB.addAccessEquality(CS, A, B);
    DB.addLoopIndependentOrder(CS, Common);
    if (!CS.normalize() || candidateEmpty(CS))
      return Out;
    Dependence D;
    D.SrcStmt = SI;
    D.DstStmt = TI;
    D.SrcAcc = AI;
    D.DstAcc = BI;
    D.Kind = Kind;
    D.CarryLevel = 0;
    D.Poly = std::move(CS);
    Out.push_back(std::move(D));
  }
  return Out;
}

/// True when E contains a Var/ArrayRef naming Name.
bool readsName(const Expr &E, const std::string &Name) {
  if ((E.K == Expr::Kind::Var || E.K == Expr::Kind::ArrayRef) &&
      E.Name == Name)
    return true;
  for (const ExprPtr &A : E.Args)
    if (readsName(*A, Name))
      return true;
  return false;
}

/// A reduction statement is an associative compound assignment `x op= e`
/// (op in {+,-,*}) whose RHS never reads the target x, onto a target of
/// rank <= 1. The rank cap matches what the emitter can express as an
/// OpenMP reduction clause: scalars directly, rank-1 arrays via an OpenMP
/// 4.5 array section; higher ranks stay serialized (conservative).
bool isReductionStmt(const Program &Prog, const Statement &S) {
  const std::string &Op = S.Body.AsgnOp;
  if (Op != "+=" && Op != "-=" && Op != "*=")
    return false;
  if (!S.Body.Lhs || !S.Body.Rhs)
    return false;
  if (readsName(*S.Body.Rhs, S.Body.Lhs->Name))
    return false;
  const ArrayInfo *AI = Prog.findArray(S.Body.Lhs->Name);
  return AI && AI->Rank <= 1;
}

/// Tags the self dependences that form a reduction cycle: for a reduction
/// statement, the flow/anti/output edges between its own write (access 0)
/// and compound read (access 1) of the target. Edges touching any other
/// access (an RHS read of a different array) are genuine dependences and
/// stay untagged.
void tagReductions(const Program &Prog, DependenceGraph &G) {
  std::vector<bool> IsRed(Prog.Stmts.size(), false);
  for (unsigned I = 0; I < Prog.Stmts.size(); ++I)
    IsRed[I] = isReductionStmt(Prog, Prog.Stmts[I]);
  for (Dependence &D : G.Deps) {
    if (D.Kind == DepKind::Input)
      continue;
    if (D.SrcStmt != D.DstStmt || !IsRed[D.SrcStmt])
      continue;
    if (D.SrcAcc > 1 || D.DstAcc > 1)
      continue; // Only the statement's own update of the target.
    D.IsReduction = true;
    D.RedOp = Prog.Stmts[D.SrcStmt].Body.AsgnOp[0];
  }
}

} // namespace

DependenceGraph pluto::computeDependences(const Program &Prog,
                                          const DepOptions &Opts) {
  DependenceGraph G;

  unsigned MaxRank = 0;
  for (const ArrayInfo &A : Prog.Arrays)
    MaxRank = std::max(MaxRank, A.Rank);

  // Build the worklist of same-array access pairs in the serial iteration
  // order; each quadruple is analyzed independently.
  std::vector<PairTask> Tasks;
  for (unsigned SI = 0; SI < Prog.Stmts.size(); ++SI)
    for (unsigned TI = 0; TI < Prog.Stmts.size(); ++TI)
      for (unsigned AI = 0; AI < Prog.Stmts[SI].Accesses.size(); ++AI)
        for (unsigned BI = 0; BI < Prog.Stmts[TI].Accesses.size(); ++BI)
          if (Prog.Stmts[SI].Accesses[AI].Array ==
              Prog.Stmts[TI].Accesses[BI].Array)
            Tasks.push_back({SI, TI, AI, BI});

  std::vector<std::vector<Dependence>> Results(Tasks.size());
#ifdef _OPENMP
  // singleThreadMode(): forked sandbox workers must not re-enter the
  // OpenMP runtime they inherited across fork.
  if (!singleThreadMode() && Opts.NumThreads != 1 && Tasks.size() > 1) {
    // The emptiness ILPs vary wildly in cost per pair: dynamic scheduling
    // load-balances; per-task result slots keep the output deterministic.
    // The compile budget is thread-local, so capture the calling thread's
    // and install it in every OpenMP worker (its counters are atomic).
    Budget *SharedBudget = activeBudget();
#pragma omp parallel for schedule(dynamic, 1)                                  \
    num_threads(Opts.NumThreads > 0 ? Opts.NumThreads : omp_get_max_threads())
    for (long I = 0; I < static_cast<long>(Tasks.size()); ++I) {
      ScopedBudget Install(SharedBudget);
      Results[I] = budgetCharge()
                       ? analyzePair(Prog, Opts, MaxRank, Tasks[I])
                       : std::vector<Dependence>();
    }
  } else {
    for (size_t I = 0; I < Tasks.size(); ++I) {
      if (!budgetCharge())
        break;
      Results[I] = analyzePair(Prog, Opts, MaxRank, Tasks[I]);
    }
  }
#else
  for (size_t I = 0; I < Tasks.size(); ++I) {
    if (!budgetCharge())
      break;
    Results[I] = analyzePair(Prog, Opts, MaxRank, Tasks[I]);
  }
#endif

  for (std::vector<Dependence> &R : Results)
    for (Dependence &D : R)
      G.Deps.push_back(std::move(D));

  tagReductions(Prog, G);

  // Edge census, taken serially after the parallel region so collection
  // never contends with the OpenMP pair loop.
  if (activeStats()) {
    count(Counter::DepCandidates, Tasks.size());
    std::set<unsigned> RedStmts;
    for (const Dependence &D : G.Deps)
      if (D.IsReduction)
        RedStmts.insert(D.SrcStmt);
    count(Counter::ReductionsDetected, RedStmts.size());
    for (const Dependence &D : G.Deps) {
      switch (D.Kind) {
      case DepKind::Flow:
        count(Counter::DepFlow);
        break;
      case DepKind::Anti:
        count(Counter::DepAnti);
        break;
      case DepKind::Output:
        count(Counter::DepOutput);
        break;
      case DepKind::Input:
        count(Counter::DepInput);
        break;
      }
      if (D.Kind != DepKind::Input) {
        count(D.CarryLevel == 0 ? Counter::DepLoopIndependent
                                : Counter::DepCarried);
        countDepAtLevel(D.CarryLevel);
      }
    }
  }
  return G;
}

unsigned DependenceGraph::numLegalityDeps() const {
  unsigned N = 0;
  for (const Dependence &D : Deps)
    N += D.isLegalityDep();
  return N;
}

std::vector<unsigned> DependenceGraph::sccIds(unsigned NumStmts) const {
  // Tarjan's algorithm over the statement graph induced by unsatisfied
  // legality dependences.
  std::vector<std::vector<unsigned>> Adj(NumStmts);
  for (const Dependence &D : Deps)
    if (D.isLegalityDep() && !D.satisfied() && D.SrcStmt != D.DstStmt)
      Adj[D.SrcStmt].push_back(D.DstStmt);

  std::vector<int> Index(NumStmts, -1), Low(NumStmts, 0);
  std::vector<bool> OnStack(NumStmts, false);
  std::vector<unsigned> Stack;
  std::vector<int> Comp(NumStmts, -1);
  int NextIndex = 0, NumComps = 0;

  std::function<void(unsigned)> strongConnect = [&](unsigned V) {
    Index[V] = Low[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (unsigned W : Adj[V]) {
      if (Index[W] < 0) {
        strongConnect(W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      for (;;) {
        unsigned W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        Comp[W] = NumComps;
        if (W == V)
          break;
      }
      ++NumComps;
    }
  };
  for (unsigned V = 0; V < NumStmts; ++V)
    if (Index[V] < 0)
      strongConnect(V);

  // Tarjan numbers components in reverse topological order; renumber so
  // sources get lower ids, breaking ties by statement order (stable
  // fusion structure).
  std::vector<unsigned> Ids(NumStmts);
  std::vector<int> Remap(NumComps, -1);
  unsigned Next = 0;
  // A component's topological position: iterate statements in textual
  // order, but a component can only be numbered once all its predecessors
  // are. Kahn's algorithm over the condensed graph:
  std::vector<std::vector<unsigned>> CompAdj(NumComps);
  std::vector<unsigned> InDeg(NumComps, 0);
  for (unsigned V = 0; V < NumStmts; ++V)
    for (unsigned W : Adj[V])
      if (Comp[V] != Comp[W]) {
        CompAdj[Comp[V]].push_back(static_cast<unsigned>(Comp[W]));
        ++InDeg[Comp[W]];
      }
  // Kahn with a priority on the smallest statement id in the component so
  // the order is deterministic and close to textual order.
  std::vector<int> MinStmt(NumComps, -1);
  for (unsigned V = 0; V < NumStmts; ++V)
    if (MinStmt[Comp[V]] < 0)
      MinStmt[Comp[V]] = static_cast<int>(V);
  std::vector<unsigned> Ready;
  for (int C = 0; C < NumComps; ++C)
    if (InDeg[C] == 0)
      Ready.push_back(static_cast<unsigned>(C));
  while (!Ready.empty()) {
    auto Best = std::min_element(
        Ready.begin(), Ready.end(),
        [&](unsigned A, unsigned B) { return MinStmt[A] < MinStmt[B]; });
    unsigned C = *Best;
    Ready.erase(Best);
    Remap[C] = static_cast<int>(Next++);
    for (unsigned W : CompAdj[C])
      if (--InDeg[W] == 0)
        Ready.push_back(W);
  }
  for (unsigned V = 0; V < NumStmts; ++V)
    Ids[V] = static_cast<unsigned>(Remap[Comp[V]]);
  return Ids;
}

std::vector<std::vector<unsigned>>
DependenceGraph::weakComponents(unsigned NumStmts) const {
  // Union-find over every edge (input dependences included: RAR edges
  // couple statements through the shared cost-bounding variables, e.g.
  // MVT's two statements are connected only through the reuse on A).
  std::vector<unsigned> Parent(NumStmts);
  for (unsigned V = 0; V < NumStmts; ++V)
    Parent[V] = V;
  std::function<unsigned(unsigned)> find = [&](unsigned V) {
    while (Parent[V] != V) {
      Parent[V] = Parent[Parent[V]];
      V = Parent[V];
    }
    return V;
  };
  for (const Dependence &D : Deps) {
    unsigned A = find(D.SrcStmt), B = find(D.DstStmt);
    if (A != B)
      Parent[std::max(A, B)] = std::min(A, B);
  }
  // Roots are component minima, so iterating statements in id order yields
  // components ordered by smallest member with members ascending.
  std::vector<int> CompOf(NumStmts, -1);
  std::vector<std::vector<unsigned>> Comps;
  for (unsigned V = 0; V < NumStmts; ++V) {
    unsigned R = find(V);
    if (CompOf[R] < 0) {
      CompOf[R] = static_cast<int>(Comps.size());
      Comps.emplace_back();
    }
    Comps[static_cast<unsigned>(CompOf[R])].push_back(V);
  }
  return Comps;
}

unsigned DependenceGraph::numSccs(unsigned NumStmts) const {
  std::vector<unsigned> Ids = sccIds(NumStmts);
  unsigned Max = 0;
  for (unsigned I : Ids)
    Max = std::max(Max, I + 1);
  return NumStmts == 0 ? 0 : Max;
}

std::string DependenceGraph::toString(const Program &Prog) const {
  std::string S;
  for (const Dependence &D : Deps) {
    const Statement &Src = Prog.Stmts[D.SrcStmt];
    const Statement &Dst = Prog.Stmts[D.DstStmt];
    S += std::string(depKindName(D.Kind)) + " S" + std::to_string(D.SrcStmt) +
         " -> S" + std::to_string(D.DstStmt) + " on '" +
         Src.Accesses[D.SrcAcc].Array + "'";
    if (D.Kind != DepKind::Input)
      S += D.CarryLevel == 0
               ? " (loop-independent)"
               : " (carried at level " + std::to_string(D.CarryLevel) + ")";
    if (D.IsReduction)
      S += std::string(" [reduction ") + D.RedOp + "]";
    S += "\n";
    std::vector<std::string> Names;
    for (const std::string &N : Src.IterNames)
      Names.push_back(N + "_s");
    for (const std::string &N : Dst.IterNames)
      Names.push_back(N + "_t");
    for (const std::string &N : Prog.ParamNames)
      Names.push_back(N);
    S += D.Poly.toString(Names);
  }
  return S;
}
