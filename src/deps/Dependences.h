//===- deps/Dependences.h - Polyhedral dependence analysis ------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact polyhedral dependence analysis (the role of LooPo's dependence
/// tester; paper Section 2.1). For every pair of accesses to the same array
/// with at least one write, and every possible carrying level, a dependence
/// polyhedron P_e over [source iters | target iters | params | 1] is built
/// from the two domains, the access-equality rows, the lexicographic
/// ordering at that level and the program context; integer-empty candidates
/// are discarded with the exact ILP test. Read-after-read (input)
/// dependences are also collected (paper Section 4.1): they carry no
/// ordering constraint and participate only in the cost bounding.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_DEPS_DEPENDENCES_H
#define PLUTOPP_DEPS_DEPENDENCES_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace pluto {

enum class DepKind {
  Flow,   ///< Write -> read (RAW).
  Anti,   ///< Read -> write (WAR).
  Output, ///< Write -> write (WAW).
  Input,  ///< Read -> read (RAR); no legality constraint.
};

const char *depKindName(DepKind K);

/// One dependence edge of the data dependence graph.
struct Dependence {
  unsigned SrcStmt = 0;
  unsigned DstStmt = 0;
  unsigned SrcAcc = 0; ///< Index into source statement's Accesses.
  unsigned DstAcc = 0;
  DepKind Kind = DepKind::Flow;
  /// Loop level carrying the dependence: 1-based depth into the common
  /// nest, or 0 for a loop-independent dependence. Input dependences use 0.
  unsigned CarryLevel = 0;
  /// Polyhedron over [src iters | dst iters | params | 1].
  ConstraintSystem Poly;

  /// Bookkeeping for the transformation framework: the transformed-space
  /// level (row) at which the dependence became strongly satisfied, or -1.
  int SatisfiedAtRow = -1;

  /// True for self dependences of an associative compound assignment
  /// (`x += e`, `-=`, `*=` with x not read by e): the paper's framework must
  /// still honor them when choosing transformations, but a loop that carries
  /// only reduction dependences can run parallel under an OpenMP
  /// `reduction(Op:x)` clause, so parallelism detection ignores them.
  bool IsReduction = false;
  /// Reduction operator ('+', '-', '*'); meaningful when IsReduction.
  char RedOp = 0;

  bool isLegalityDep() const { return Kind != DepKind::Input; }
  bool satisfied() const { return SatisfiedAtRow >= 0; }
};

/// The data dependence graph of a program.
class DependenceGraph {
public:
  std::vector<Dependence> Deps;

  /// Strongly connected components of the statement graph induced by the
  /// not-yet-satisfied legality dependences; Result[stmt] is a component id
  /// numbered in topological order (sources first).
  std::vector<unsigned> sccIds(unsigned NumStmts) const;
  /// Number of distinct component ids returned by sccIds.
  unsigned numSccs(unsigned NumStmts) const;

  /// Weakly connected components of the statement graph induced by EVERY
  /// edge, input (RAR) dependences included: statements in different
  /// components share no constraint of the transformation ILP - neither
  /// legality nor the cost bounding - so the scheduler can solve them as
  /// independent sub-problems (the clustered decomposition). Components are
  /// ordered by their smallest statement id and list members ascending;
  /// statements touched by no dependence form singleton components.
  std::vector<std::vector<unsigned>> weakComponents(unsigned NumStmts) const;

  /// Edges with Kind != Input.
  unsigned numLegalityDeps() const;

  std::string toString(const Program &Prog) const;
};

/// Options for dependence computation.
struct DepOptions {
  /// Collect read-after-read dependences (paper Section 4.1). Costly on
  /// read-heavy stencils but enables reuse-driven fusion (the paper's MVT
  /// experiment).
  bool IncludeInputDeps = true;
  /// Only collect input dependences on arrays of maximal rank (the
  /// asymptotically dominant data). Without this, O(N) vector reuse (e.g.
  /// y1/x1 in MVT) forces a parametric reuse bound on every hyperplane and
  /// the cost function can no longer see the O(N^2) reuse on the matrix.
  bool InputDepsMaxRankOnly = true;
  /// Worker threads for the per-access-pair loop: 0 uses the OpenMP
  /// default, 1 forces serial execution. The result is bit-identical for
  /// every thread count (pairs are emitted in the serial iteration order).
  int NumThreads = 0;
};

/// Computes the dependence graph of Prog.
DependenceGraph computeDependences(const Program &Prog,
                                   const DepOptions &Opts = DepOptions());

} // namespace pluto

#endif // PLUTOPP_DEPS_DEPENDENCES_H
