//===- driver/Driver.h - One-shot optimization pipeline ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end source-to-source pipeline (paper Figure 5): parse ->
/// dependence analysis -> Pluto transformation -> tiling -> wavefront ->
/// intra-tile reordering -> code generation. This is the public entry point
/// a downstream user calls; individual stages remain available for tools
/// that need finer control (e.g. forcing comparison transformations).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_DRIVER_DRIVER_H
#define PLUTOPP_DRIVER_DRIVER_H

#include "codegen/CEmitter.h"
#include "codegen/CodeGen.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "tile/Tiling.h"
#include "transform/PlutoTransform.h"

namespace pluto {

/// Options for the one-shot pipeline.
struct PlutoOptions {
  /// Tile every permutable band of width >= 2 (Algorithm 1).
  bool Tile = true;
  unsigned TileSize = 32;
  /// Tile the tile space once more (L2 tiling, Section 5.2 "Tiling multiple
  /// times"); the L2 size multiplies the L1 size.
  bool SecondLevelTile = false;
  unsigned L2TileSize = 8;
  /// Extract coarse-grained parallelism: mark communication-free bands
  /// parallel, wavefront pipelined bands (Algorithm 2).
  bool Parallelize = true;
  unsigned WavefrontDegrees = 1;
  /// Intra-tile reordering + vectorization pragma (Section 5.4).
  bool Vectorize = true;
  /// Consider read-after-read dependences (Section 4.1).
  bool IncludeInputDeps = true;
  /// Context assumption added for every parameter: p >= ParamMin.
  long long ParamMin = 4;
  CodeGenOptions CG;
};

/// Everything the pipeline produced, stage by stage.
struct PlutoResult {
  ParsedProgram Parsed;
  DependenceGraph DG;
  Schedule Sched;
  Scop Sc;
  CgNodePtr Ast;

  const Program &program() const { return Parsed.Prog; }
};

/// Runs the full pipeline on restricted-C source.
Result<PlutoResult> optimizeSource(const std::string &Source,
                                   const PlutoOptions &Opts = PlutoOptions());

/// Applies the post-schedule stages (scop building, tiling, wavefront,
/// vectorization, codegen) to an existing schedule - the hook used to
/// evaluate forced comparison transformations (Section 7's baselines).
Result<PlutoResult> lowerSchedule(ParsedProgram Parsed, DependenceGraph DG,
                                  Schedule Sched, const PlutoOptions &Opts);

/// Builds the untransformed-program AST (identity 2d+1 schedule) for
/// baseline execution through the same code generator. The same
/// `Opts.ParamMin` context assumption optimizeSource applies is added here
/// too, so original and transformed code are generated under an identical
/// context (adding it twice is harmless - duplicate context rows
/// normalize away).
Result<CgNodePtr> buildOriginalAst(const Program &Prog,
                                   const PlutoOptions &Opts = PlutoOptions());

} // namespace pluto

#endif // PLUTOPP_DRIVER_DRIVER_H
