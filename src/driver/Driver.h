//===- driver/Driver.h - Pipeline options and one-shot shims ----*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Options and result types for the end-to-end source-to-source pipeline
/// (paper Figure 5): parse -> dependence analysis -> Pluto transformation
/// -> tiling -> wavefront -> intra-tile reordering -> code generation.
///
/// The documented public entry point is `pluto::Pipeline`
/// (service/Pipeline.h): a session object that validates and fingerprints
/// its PlutoOptions once, exposes every stage with memoized intermediate
/// artifacts, and plugs into the content-addressed result cache and the
/// concurrent batch driver (service/Batch.h). One-shot traffic should use
/// the CompileRequest/CompileResponse API (service/CompileService.h),
/// whose StatusCode taxonomy is shared by the CLI exit codes and the
/// plutod wire protocol. The three free functions below predate the
/// service layer and are [[deprecated]] compatibility shims over
/// Pipeline; they will not grow new features and new code must not call
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_DRIVER_DRIVER_H
#define PLUTOPP_DRIVER_DRIVER_H

#include "codegen/CEmitter.h"
#include "codegen/CodeGen.h"
#include "parser/Parser.h"
#include "runtime/Interpreter.h"
#include "tile/Tiling.h"
#include "transform/PlutoTransform.h"

namespace pluto {

/// Options for the optimization pipeline. Construct, adjust fields, then
/// hand to Pipeline::create(), which rejects invalid combinations via
/// validate(); the one-shot shims below validate the same way.
struct PlutoOptions {
  /// Tile every permutable band of width >= 2 (Algorithm 1).
  bool Tile = true;
  unsigned TileSize = 32;
  /// Tile the tile space once more (L2 tiling, Section 5.2 "Tiling multiple
  /// times"); the L2 size multiplies the L1 size.
  bool SecondLevelTile = false;
  unsigned L2TileSize = 8;
  /// Extract coarse-grained parallelism: mark communication-free bands
  /// parallel, wavefront pipelined bands (Algorithm 2).
  bool Parallelize = true;
  unsigned WavefrontDegrees = 1;
  /// Intra-tile reordering + vectorization pragma (Section 5.4).
  bool Vectorize = true;
  /// Consider read-after-read dependences (Section 4.1).
  bool IncludeInputDeps = true;
  /// Context assumption added for every parameter: p >= ParamMin.
  long long ParamMin = 4;
  /// Enable the scheduler's scaling fast paths (clustered decomposition,
  /// dimension matching, warm-started lexmin). Off reproduces the exact
  /// monolithic search; the fast paths fall back to it whenever they
  /// cannot prove they match, so results agree on the supported corpus.
  bool FastSchedule = true;
  CodeGenOptions CG;

  /// Checks the option set for values the pipeline cannot lower (zero tile
  /// sizes would build degenerate supernodes, zero wavefront degrees an
  /// empty wavefront, a negative ParamMin an unintended context). Returns
  /// true on success, an error message naming the offending field
  /// otherwise.
  Result<bool> validate() const;

  /// Field-wise equality (including codegen options).
  bool operator==(const PlutoOptions &O) const;
  bool operator!=(const PlutoOptions &O) const { return !(*this == O); }

  /// Canonical form for fingerprinting: fields the pipeline ignores under
  /// the current toggles are reset to their defaults, so semantically
  /// identical option sets collapse onto one fingerprint (and one cache
  /// key). Concretely: TileSize and the whole L2 level when Tile is off,
  /// L2TileSize when SecondLevelTile is off, and WavefrontDegrees when the
  /// wavefront can never fire (it requires Parallelize and Tile). Equality
  /// stays field-wise; only fingerprint() looks through this.
  PlutoOptions normalized() const;

  /// Stable, human-readable canonical encoding of every field that can
  /// affect pipeline output, computed on normalized(): two option sets
  /// that cannot produce different output share one fingerprint, and any
  /// output-affecting field change produces a different one; the service
  /// layer hashes it into the content-addressed cache key (DESIGN.md
  /// section 9).
  std::string fingerprint() const;
};

/// Everything the pipeline produced, stage by stage.
struct PlutoResult {
  ParsedProgram Parsed;
  DependenceGraph DG;
  Schedule Sched;
  Scop Sc;
  CgNodePtr Ast;

  const Program &program() const { return Parsed.Prog; }
};

/// \deprecated Compatibility shim over Pipeline: runs the full pipeline on
/// restricted-C source. Equivalent to Pipeline::create(Opts) + setSource()
/// + takeLowered(); prefer Pipeline, which can also reuse artifacts and
/// hit the result cache, or Pipeline::compileRequest() for the structured
/// StatusCode result shape.
Result<PlutoResult> optimizeSource(const std::string &Source,
                                   const PlutoOptions &Opts = PlutoOptions());

/// \deprecated Compatibility shim over Pipeline::lowerSchedule(): applies the
/// post-schedule stages (scop building, tiling, wavefront, vectorization,
/// codegen) to an existing schedule - the hook used to evaluate forced
/// comparison transformations (Section 7's baselines).
Result<PlutoResult> lowerSchedule(ParsedProgram Parsed, DependenceGraph DG,
                                  Schedule Sched, const PlutoOptions &Opts);

/// \deprecated Compatibility shim over Pipeline::originalAst(): builds the
/// untransformed-program AST (identity 2d+1 schedule) for baseline
/// execution through the same code generator. The same `Opts.ParamMin`
/// context assumption the optimizing path applies is added here too, so
/// original and transformed code are generated under an identical context
/// (adding it twice is harmless - duplicate context rows normalize away).
Result<CgNodePtr> buildOriginalAst(const Program &Prog,
                                   const PlutoOptions &Opts = PlutoOptions());

} // namespace pluto

#endif // PLUTOPP_DRIVER_DRIVER_H
