//===- driver/Kernels.h - The paper's benchmark kernels ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input kernels evaluated in the paper (Section 7), as restricted-C
/// sources accepted by the frontend. Shared by tests, examples and the
/// benchmark harness so every component exercises identical inputs.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_DRIVER_KERNELS_H
#define PLUTOPP_DRIVER_KERNELS_H

namespace pluto {
namespace kernels {

/// Imperfectly nested 1-d Jacobi (paper Figure 3(a); experiments Fig. 6).
inline const char *Jacobi1D = R"(
for (t = 0; t < T; t++) {
  for (i = 2; i < N - 1; i++) {
    b[i] = 0.333 * (a[i - 1] + a[i] + a[i + 1]);
  }
  for (j = 2; j < N - 1; j++) {
    a[j] = b[j];
  }
}
)";

/// 2-d finite-difference time-domain kernel (paper Figure 7; Fig. 8).
/// The paper's `exp(-coeff0*t1)` source statement is modeled polybench-style
/// with a read from a 1-d array `fict`, which preserves the dependence
/// structure (S1 writes row 0 of ey each time step).
inline const char *Fdtd2D = R"(
for (t = 0; t < tmax; t++) {
  for (j = 0; j < ny; j++) {
    ey[0][j] = fict[t];
  }
  for (i = 1; i < nx; i++) {
    for (j = 0; j < ny; j++) {
      ey[i][j] = ey[i][j] - coeff1 * (hz[i][j] - hz[i - 1][j]);
    }
  }
  for (i = 0; i < nx; i++) {
    for (j = 1; j < ny; j++) {
      ex[i][j] = ex[i][j] - coeff1 * (hz[i][j] - hz[i][j - 1]);
    }
  }
  for (i = 0; i < nx - 1; i++) {
    for (j = 0; j < ny - 1; j++) {
      hz[i][j] = hz[i][j] - coeff2 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
    }
  }
}
)";

/// LU decomposition (paper Figure 9(a); Fig. 10).
inline const char *LU = R"(
for (k = 0; k < N; k++) {
  for (j = k + 1; j < N; j++) {
    a[k][j] = a[k][j] / a[k][k];
  }
  for (i = k + 1; i < N; i++) {
    for (j = k + 1; j < N; j++) {
      a[i][j] = a[i][j] - a[i][k] * a[k][j];
    }
  }
}
)";

/// Matrix-vector transpose sequence (paper Figure 11; Fig. 12):
/// x1 = x1 + A b1; x2 = x2 + A^T b2. The only inter-statement dependence is
/// the RAR (input) dependence on A.
inline const char *MVT = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    x1[i] = x1[i] + a[i][j] * y1[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    x2[i] = x2[i] + a[j][i] * y2[j];
  }
}
)";

/// 3-d Gauss-Seidel successive over-relaxation (paper Fig. 13): time loop
/// over a 2-d in-place stencil.
inline const char *Seidel2D = R"(
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      a[i][j] = (a[i - 1][j - 1] + a[i - 1][j] + a[i - 1][j + 1] + a[i][j - 1] + a[i][j] + a[i][j + 1] + a[i + 1][j - 1] + a[i + 1][j] + a[i + 1][j + 1]) / 9.0;
    }
  }
}
)";

/// Matrix-matrix multiplication: the canonical sanity kernel (permutable
/// 3-d band, outer parallelism).
inline const char *MatMul = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    for (k = 0; k < N; k++) {
      c[i][j] = c[i][j] + a[i][k] * b[k][j];
    }
  }
}
)";

/// Perfectly nested 2-d seq dependence example from paper Figure 4(a).
inline const char *Sweep2D = R"(
for (i = 1; i < N; i++) {
  for (j = 1; j < N; j++) {
    a[i][j] = a[i - 1][j] + a[i][j - 1];
  }
}
)";

//===----------------------------------------------------------------------===//
// Additional affine kernels (polybench-style) used by the generality test
// suite and the kernel-sweep benchmark. The paper positions the framework
// as applying to arbitrary affine programs; these exercise shapes the
// Section 7 kernels do not: anti-dependence-driven fusion chains (gemver),
// triangular non-unit-step-free domains (trmm, syrk), higher-dimensional
// perfect nests (doitgen), and out-of-place 2-d stencils (jacobi2d).
//===----------------------------------------------------------------------===//

/// Out-of-place 2-d Jacobi stencil with copy-back (imperfect, 2 statements).
inline const char *Jacobi2D = R"(
for (t = 0; t < T; t++) {
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      b[i][j] = 0.2 * (a[i][j] + a[i][j - 1] + a[i][j + 1] + a[i - 1][j] + a[i + 1][j]);
    }
  }
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      a[i][j] = b[i][j];
    }
  }
}
)";

/// Vector-multiply-and-matrix-update chain (4 fusable statement groups).
inline const char *Gemver = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    aa[i][j] = a[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    x[i] = x[i] + beta[0] * aa[j][i] * y[j];
  }
}
for (i = 0; i < N; i++) {
  x[i] = x[i] + z[i];
}
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    w[i] = w[i] + alpha[0] * aa[i][j] * x[j];
  }
}
)";

/// Triangular matrix multiply (non-rectangular domain).
inline const char *Trmm = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    for (k = i + 1; k < N; k++) {
      b[i][j] = b[i][j] + a[i][k] * b[k][j];
    }
  }
}
)";

/// Symmetric rank-k update (triangular output domain).
inline const char *Syrk = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j <= i; j++) {
    for (k = 0; k < N; k++) {
      c[i][j] = c[i][j] + a[i][k] * a[j][k];
    }
  }
}
)";

/// Multi-resolution analysis kernel (3-d domain, producer-consumer pair).
inline const char *Doitgen = R"(
for (r = 0; r < N; r++) {
  for (q = 0; q < N; q++) {
    for (p = 0; p < M; p++) {
      sum[r][q][p] = 0.0;
      for (s = 0; s < M; s++) {
        sum[r][q][p] = sum[r][q][p] + a[r][q][s] * c4[s][p];
      }
    }
    for (p = 0; p < M; p++) {
      a[r][q][p] = sum[r][q][p];
    }
  }
}
)";

/// Two-statement reduction sequence sharing the matrix (atax-like).
inline const char *Atax = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    tmp[i] = tmp[i] + a[i][j] * x[j];
  }
}
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    y[j] = y[j] + a[i][j] * tmp[i];
  }
}
)";

/// Scalar reduction: the loop carries only the associative accumulation
/// into s, so it parallelizes under `reduction(+:s)` and not otherwise.
inline const char *DotProduct = R"(
for (i = 0; i < N; i++) {
  s += a[i] * b[i];
}
)";

/// Transposed matrix-vector accumulation (atax-like): the outer loop
/// carries only the reduction into y, whose element is chosen by the inner
/// iterator - parallelizing the carrier needs an OpenMP 4.5 array-section
/// clause `reduction(+:y[0:N])`.
inline const char *MatVecT = R"(
for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    y[j] += a[i][j] * x[i];
  }
}
)";

} // namespace kernels
} // namespace pluto

#endif // PLUTOPP_DRIVER_KERNELS_H
