//===- driver/Driver.cpp - One-shot optimization pipeline -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "observe/PassStats.h"
#include "observe/Trace.h"

using namespace pluto;

/// Chooses the pragma row inside one run of schedule rows [Start, End):
/// the outermost parallel loop row, preferring one that is not the
/// vectorized row when possible. Returns -1 when the run has none.
static int pickPragmaRow(const Scop &Sc, unsigned Start, unsigned End) {
  int First = -1, FirstNonVector = -1;
  for (unsigned Row = Start; Row < End; ++Row) {
    if (Sc.Rows[Row].IsScalar || !Sc.Rows[Row].IsParallel)
      continue;
    if (First < 0)
      First = static_cast<int>(Row);
    if (FirstNonVector < 0 && !Sc.Rows[Row].IsVector)
      FirstNonVector = static_cast<int>(Row);
  }
  return FirstNonVector >= 0 ? FirstNonVector : First;
}

/// Parallel pragma placement: one pragma row per permutable band (plus any
/// band-less row runs a forced schedule may carry), not one globally. With
/// multiple bands - every post-SCC-cut or tiled schedule - a single global
/// pick would leave later bands' parallel loops without a pragma in the
/// subtrees where the picked row is equality-determined (a Let, not a
/// loop). Nested picks are legal: codegen keeps only the outermost pragma
/// on each root-to-leaf path (dropNestedParallelPragmas).
static void pickParallelPragmaRows(const Scop &Sc, CodeGenOptions &CG) {
  std::vector<bool> Covered(Sc.numRows(), false);
  for (const Schedule::Band &B : Sc.bands()) {
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      Covered[Row] = true;
    int Pick = pickPragmaRow(Sc, B.Start, B.Start + B.Width);
    if (Pick >= 0)
      CG.ParallelPragmaRows.insert(static_cast<unsigned>(Pick));
  }
  // Rows outside every band (forced schedules with no band metadata):
  // treat each maximal run of uncovered non-scalar rows as a band.
  for (unsigned Row = 0; Row < Sc.numRows(); ++Row) {
    if (Covered[Row] || Sc.Rows[Row].IsScalar)
      continue;
    unsigned End = Row;
    while (End < Sc.numRows() && !Covered[End] && !Sc.Rows[End].IsScalar)
      ++End;
    int Pick = pickPragmaRow(Sc, Row, End);
    if (Pick >= 0)
      CG.ParallelPragmaRows.insert(static_cast<unsigned>(Pick));
    Row = End;
  }
}

/// Final per-row loop classification for the report: parallel rows are
/// communication-free parallel loops; a sequential row sharing a band with
/// a parallel row is the pipelined (wavefront) direction; everything else
/// is sequential. Scalar rows are not loops.
static void classifyLoops(const Scop &Sc) {
  Trace *T = activeTrace();
  if (!activeStats() && !T)
    return;
  std::vector<bool> InParallelBand(Sc.numRows(), false);
  for (const Schedule::Band &B : Sc.bands()) {
    bool AnyParallel = false;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      AnyParallel |= Sc.Rows[Row].IsParallel;
    for (unsigned Row = B.Start; Row < B.Start + B.Width; ++Row)
      InParallelBand[Row] = AnyParallel;
  }
  for (unsigned Row = 0; Row < Sc.numRows(); ++Row) {
    if (Sc.Rows[Row].IsScalar)
      continue;
    const char *Class;
    if (Sc.Rows[Row].IsParallel) {
      count(Counter::LoopsParallel);
      Class = "parallel";
    } else if (InParallelBand[Row]) {
      count(Counter::LoopsPipeline);
      Class = "pipeline";
    } else {
      count(Counter::LoopsSequential);
      Class = "sequential";
    }
    if (T)
      T->record("driver", "row " + std::to_string(Row) + ": " + Class +
                              (Sc.Rows[Row].IsVector ? " (vectorized)" : ""));
  }
}

Result<PlutoResult> pluto::lowerSchedule(ParsedProgram Parsed,
                                         DependenceGraph DG, Schedule Sched,
                                         const PlutoOptions &Opts) {
  PlutoResult R;
  R.Parsed = std::move(Parsed);
  R.DG = std::move(DG);
  R.Sched = std::move(Sched);

  {
    ScopedPassTimer Timer(Pass::Tile);
    R.Sc = buildScop(R.Parsed.Prog, R.Sched);

    if (Opts.Tile) {
      std::vector<Schedule::Band> TileBands =
          tileAllBands(R.Sc, Opts.TileSize, /*MinWidth=*/2);
      if (Opts.SecondLevelTile) {
        // Tile the tile-space bands again, innermost (largest start) first so
        // recorded starts stay valid while rows are inserted.
        for (auto It = TileBands.rbegin(); It != TileBands.rend(); ++It) {
          std::vector<unsigned> Sizes(It->Width, Opts.L2TileSize);
          tileBand(R.Sc, *It, Sizes);
        }
      }
    }

    if (Opts.Parallelize && Opts.Tile) {
      // Wavefront the outermost TILE band when it lacks a parallel loop
      // (Algorithm 2). The wavefront is a tile-space transformation: applied
      // to untiled point loops it would serialize along a diagonal with poor
      // locality, so without tiling we rely on existing parallel rows only.
      std::vector<Schedule::Band> Bands = R.Sc.bands();
      if (!Bands.empty())
        wavefrontBand(R.Sc, Bands.front(), Opts.WavefrontDegrees);
    }

    if (Opts.Vectorize)
      reorderForVectorization(R.Sc);
  }

  CodeGenOptions CG = Opts.CG;
  if (Opts.Parallelize && CG.ParallelPragmaRows.empty()) {
    pickParallelPragmaRows(R.Sc, CG);
    if (Trace *T = activeTrace())
      for (unsigned Row : CG.ParallelPragmaRows)
        T->record("driver",
                  "omp parallel for pragma on row " + std::to_string(Row));
  }
  classifyLoops(R.Sc);

  ScopedPassTimer Timer(Pass::Codegen);
  auto Ast = generateAst(R.Sc, CG);
  if (!Ast)
    return Err(Ast.error());
  R.Ast = std::move(*Ast);
  simplifyAst(R.Ast);
  return R;
}

Result<PlutoResult> pluto::optimizeSource(const std::string &Source,
                                          const PlutoOptions &Opts) {
  Result<ParsedProgram> Parsed = [&] {
    ScopedPassTimer Timer(Pass::Parse);
    return parseSource(Source);
  }();
  if (!Parsed)
    return Err(Parsed.error());
  for (const std::string &P : Parsed->Prog.ParamNames)
    Parsed->Prog.addContextBound(P, Opts.ParamMin);

  DepOptions DO;
  DO.IncludeInputDeps = Opts.IncludeInputDeps;
  DependenceGraph DG = [&] {
    ScopedPassTimer Timer(Pass::Deps);
    return computeDependences(Parsed->Prog, DO);
  }();

  auto Sched = [&] {
    ScopedPassTimer Timer(Pass::Schedule);
    return computeSchedule(Parsed->Prog, DG);
  }();
  if (!Sched)
    return Err(Sched.error());

  return lowerSchedule(std::move(*Parsed), std::move(DG), std::move(*Sched),
                       Opts);
}

Result<CgNodePtr> pluto::buildOriginalAst(const Program &Prog,
                                          const PlutoOptions &Opts) {
  // Apply the same context assumption the optimizing path uses, so the
  // reference AST is specialized for an identical parameter space. The
  // caller's program may already carry the bounds (optimizeSource adds
  // them in place); normalize() collapses the duplicates.
  Program Bounded = Prog;
  for (const std::string &P : Bounded.ParamNames)
    Bounded.addContextBound(P, Opts.ParamMin);
  Bounded.Context.normalize();
  Schedule Ident = identitySchedule(Bounded);
  Scop Sc = buildScop(Bounded, Ident);
  CodeGenOptions CG;
  auto Ast = generateAst(Sc, CG);
  if (!Ast)
    return Ast;
  simplifyAst(*Ast);
  return Ast;
}
