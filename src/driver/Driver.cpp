//===- driver/Driver.cpp - One-shot optimization pipeline -----------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

using namespace pluto;

Result<PlutoResult> pluto::lowerSchedule(ParsedProgram Parsed,
                                         DependenceGraph DG, Schedule Sched,
                                         const PlutoOptions &Opts) {
  PlutoResult R;
  R.Parsed = std::move(Parsed);
  R.DG = std::move(DG);
  R.Sched = std::move(Sched);
  R.Sc = buildScop(R.Parsed.Prog, R.Sched);

  if (Opts.Tile) {
    std::vector<Schedule::Band> TileBands =
        tileAllBands(R.Sc, Opts.TileSize, /*MinWidth=*/2);
    if (Opts.SecondLevelTile) {
      // Tile the tile-space bands again, innermost (largest start) first so
      // recorded starts stay valid while rows are inserted.
      for (auto It = TileBands.rbegin(); It != TileBands.rend(); ++It) {
        std::vector<unsigned> Sizes(It->Width, Opts.L2TileSize);
        tileBand(R.Sc, *It, Sizes);
      }
    }
  }

  if (Opts.Parallelize && Opts.Tile) {
    // Wavefront the outermost TILE band when it lacks a parallel loop
    // (Algorithm 2). The wavefront is a tile-space transformation: applied
    // to untiled point loops it would serialize along a diagonal with poor
    // locality, so without tiling we rely on existing parallel rows only.
    std::vector<Schedule::Band> Bands = R.Sc.bands();
    if (!Bands.empty())
      wavefrontBand(R.Sc, Bands.front(), Opts.WavefrontDegrees);
  }

  if (Opts.Vectorize)
    reorderForVectorization(R.Sc);

  // Parallel pragma placement: the outermost parallel loop row; prefer a
  // row that is not the vectorized one when possible.
  CodeGenOptions CG = Opts.CG;
  if (Opts.Parallelize && CG.ParallelPragmaRows.empty()) {
    int First = -1, FirstNonVector = -1;
    for (unsigned Row = 0; Row < R.Sc.numRows(); ++Row) {
      if (R.Sc.Rows[Row].IsScalar || !R.Sc.Rows[Row].IsParallel)
        continue;
      if (First < 0)
        First = static_cast<int>(Row);
      if (FirstNonVector < 0 && !R.Sc.Rows[Row].IsVector)
        FirstNonVector = static_cast<int>(Row);
    }
    int Pick = FirstNonVector >= 0 ? FirstNonVector : First;
    if (Pick >= 0)
      CG.ParallelPragmaRows.insert(static_cast<unsigned>(Pick));
  }

  auto Ast = generateAst(R.Sc, CG);
  if (!Ast)
    return Err(Ast.error());
  R.Ast = std::move(*Ast);
  simplifyAst(R.Ast);
  return R;
}

Result<PlutoResult> pluto::optimizeSource(const std::string &Source,
                                          const PlutoOptions &Opts) {
  auto Parsed = parseSource(Source);
  if (!Parsed)
    return Err(Parsed.error());
  for (const std::string &P : Parsed->Prog.ParamNames)
    Parsed->Prog.addContextBound(P, Opts.ParamMin);

  DepOptions DO;
  DO.IncludeInputDeps = Opts.IncludeInputDeps;
  DependenceGraph DG = computeDependences(Parsed->Prog, DO);

  auto Sched = computeSchedule(Parsed->Prog, DG);
  if (!Sched)
    return Err(Sched.error());

  return lowerSchedule(std::move(*Parsed), std::move(DG), std::move(*Sched),
                       Opts);
}

Result<CgNodePtr> pluto::buildOriginalAst(const Program &Prog) {
  Schedule Ident = identitySchedule(Prog);
  Scop Sc = buildScop(Prog, Ident);
  CodeGenOptions CG;
  auto Ast = generateAst(Sc, CG);
  if (!Ast)
    return Ast;
  simplifyAst(*Ast);
  return Ast;
}
