//===- driver/Driver.cpp - Compatibility shims over Pipeline --------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
// The stage implementations live in service/Pipeline.cpp; this file keeps
// the pre-service free-function API alive as thin wrappers and implements
// the PlutoOptions contract (validate / equality / fingerprint) they and
// the service layer share.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include "service/Pipeline.h"

#include <sstream>

using namespace pluto;

Result<bool> PlutoOptions::validate() const {
  if (TileSize == 0)
    return Err("invalid options: tile size must be positive (--tile-size)");
  if (L2TileSize == 0)
    return Err(
        "invalid options: L2 tile size must be positive (--l2tile-size)");
  if (WavefrontDegrees == 0)
    return Err("invalid options: wavefront degrees must be positive");
  if (ParamMin < 0)
    return Err("invalid options: parameter lower bound must be non-negative "
               "(--param-min)");
  if (CG.MaxPieces == 0)
    return Err("invalid options: codegen piece cap must be positive");
  return true;
}

bool PlutoOptions::operator==(const PlutoOptions &O) const {
  return Tile == O.Tile && TileSize == O.TileSize &&
         SecondLevelTile == O.SecondLevelTile && L2TileSize == O.L2TileSize &&
         Parallelize == O.Parallelize &&
         WavefrontDegrees == O.WavefrontDegrees && Vectorize == O.Vectorize &&
         IncludeInputDeps == O.IncludeInputDeps && ParamMin == O.ParamMin &&
         FastSchedule == O.FastSchedule && CG.MaxPieces == O.CG.MaxPieces &&
         CG.EnableSeparation == O.CG.EnableSeparation &&
         CG.ParallelPragmaRows == O.CG.ParallelPragmaRows;
}

PlutoOptions PlutoOptions::normalized() const {
  // Reset every field the pipeline cannot observe under the current
  // toggles to its default, so "tiled off but tile size 64" and "tiled
  // off, tile size 16" fingerprint (and cache) identically. The defaults
  // come from a fresh PlutoOptions so this never drifts from the header.
  const PlutoOptions Defaults;
  PlutoOptions N = *this;
  if (!N.Tile) {
    // Tiling off: no supernodes are built, so the sizes and the second
    // level are dead knobs.
    N.TileSize = Defaults.TileSize;
    N.SecondLevelTile = Defaults.SecondLevelTile;
    N.L2TileSize = Defaults.L2TileSize;
  }
  if (!N.SecondLevelTile)
    N.L2TileSize = Defaults.L2TileSize;
  // The wavefront only fires on tiled bands with parallelism extraction on
  // (lowerSchedule applies it under Parallelize && Tile).
  if (!N.Parallelize || !N.Tile)
    N.WavefrontDegrees = Defaults.WavefrontDegrees;
  return N;
}

std::string PlutoOptions::fingerprint() const {
  // Canonical key=value encoding of every output-affecting field, in a
  // fixed order, computed on the normalized form so semantically identical
  // option sets alias to one fingerprint. The encoding itself is the
  // fingerprint (it is short and diffable in logs); the service layer
  // hashes it together with the canonical source into the cache key.
  const PlutoOptions N = normalized();
  std::ostringstream OS;
  OS << "tile=" << N.Tile << ";tile_size=" << N.TileSize
     << ";l2tile=" << N.SecondLevelTile << ";l2tile_size=" << N.L2TileSize
     << ";parallel=" << N.Parallelize
     << ";wavefront_degrees=" << N.WavefrontDegrees
     << ";vectorize=" << N.Vectorize << ";input_deps=" << N.IncludeInputDeps
     << ";param_min=" << N.ParamMin << ";fast_schedule=" << N.FastSchedule
     << ";cg_max_pieces=" << N.CG.MaxPieces
     << ";cg_separation=" << N.CG.EnableSeparation << ";cg_pragma_rows=";
  bool First = true;
  for (unsigned Row : N.CG.ParallelPragmaRows) {
    OS << (First ? "" : ",") << Row;
    First = false;
  }
  return OS.str();
}

Result<PlutoResult> pluto::optimizeSource(const std::string &Source,
                                          const PlutoOptions &Opts) {
  auto P = Pipeline::create(Opts);
  if (!P)
    return Err(P.error());
  P->setSource(Source);
  return P->takeLowered();
}

Result<PlutoResult> pluto::lowerSchedule(ParsedProgram Parsed,
                                         DependenceGraph DG, Schedule Sched,
                                         const PlutoOptions &Opts) {
  auto P = Pipeline::create(Opts);
  if (!P)
    return Err(P.error());
  return P->lowerSchedule(std::move(Parsed), std::move(DG), std::move(Sched));
}

Result<CgNodePtr> pluto::buildOriginalAst(const Program &Prog,
                                          const PlutoOptions &Opts) {
  auto P = Pipeline::create(Opts);
  if (!P)
    return Err(P.error());
  return P->originalAst(Prog);
}
