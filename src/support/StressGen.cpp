//===- support/StressGen.cpp - Synthetic scheduler stress programs --------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/StressGen.h"

#include <sstream>

using namespace pluto;

namespace {

/// Minimal 64-bit LCG (Knuth's MMIX constants). The top 31 bits are used so
/// consecutive draws are well mixed even for small moduli.
class Lcg {
public:
  explicit Lcg(unsigned long long Seed) : State(Seed ? Seed : 1) {}

  unsigned next(unsigned Modulus) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<unsigned>((State >> 33) % Modulus);
  }

private:
  unsigned long long State;
};

/// One cluster idiom. \p K namespaces every array and iterator so clusters
/// share nothing but the parameter N. Returns the number of statements
/// emitted (1 or 2).
unsigned emitCluster(std::ostream &OS, unsigned Pattern, unsigned K) {
  std::string I = "i" + std::to_string(K);
  std::string J = "j" + std::to_string(K);
  auto Arr = [&](const char *Base) { return Base + std::to_string(K); };
  auto Nest = [&](const char *LoI, const char *LoJ) {
    OS << "for (" << I << " = " << LoI << "; " << I << " < N; " << I
       << "++) {\n";
    OS << "  for (" << J << " = " << LoJ << "; " << J << " < N; " << J
       << "++) {\n";
  };
  auto Close = [&] { OS << "  }\n}\n"; };
  std::string Ij = "[" + I + "][" + J + "]";
  std::string IjM1 = "[" + I + "][" + J + " - 1]";
  std::string Im1J = "[" + I + " - 1][" + J + "]";

  switch (Pattern) {
  case 0: // pointwise map: no dependences at all (fast path hits both rows)
    Nest("0", "0");
    OS << "    " << Arr("A") << Ij << " = " << Arr("B") << Ij << " + 1.5;\n";
    Close();
    return 1;
  case 1: // j-carried recurrence: (0,1) flow, row 1 needs the exact solver
    Nest("0", "1");
    OS << "    " << Arr("R") << Ij << " = " << Arr("R") << IjM1
       << " * 0.5 + 1.0;\n";
    Close();
    return 1;
  case 2: // 2-d stencil: (1,0) and (0,1) flows defeat every unit candidate
    Nest("1", "1");
    OS << "    " << Arr("S") << Ij << " = " << Arr("S") << Im1J << " + "
       << Arr("S") << IjM1 << ";\n";
    Close();
    return 1;
  case 3: // producer/consumer chain: loop-independent flow -> textual row
    Nest("0", "0");
    OS << "    " << Arr("C") << Ij << " = " << Arr("B") << Ij << " + 1.0;\n";
    OS << "    " << Arr("D") << Ij << " = " << Arr("C") << Ij << " + 2.0;\n";
    Close();
    return 2;
  case 4: // shared read: cross-statement RAR plus loop-independent flow
    Nest("0", "0");
    OS << "    " << Arr("E") << Ij << " = " << Arr("B") << Ij << " * 2.0;\n";
    OS << "    " << Arr("F") << Ij << " = " << Arr("B") << Ij << " + "
       << Arr("E") << Ij << ";\n";
    Close();
    return 2;
  default: // producer + j-carried recurrence consumer
    Nest("0", "1");
    OS << "    " << Arr("P") << Ij << " = " << Arr("B") << Ij << " + 1.0;\n";
    OS << "    " << Arr("Q") << Ij << " = " << Arr("Q") << IjM1 << " + "
       << Arr("P") << Ij << ";\n";
    Close();
    return 2;
  }
}

} // namespace

std::string pluto::generateStressProgram(unsigned NumStatements,
                                         unsigned long long Seed) {
  std::ostringstream OS;
  Lcg Rng(Seed);
  unsigned Emitted = 0, K = 0;
  while (Emitted < NumStatements) {
    unsigned Left = NumStatements - Emitted;
    // Patterns 0-2 emit one statement, 3-5 emit two; with one slot left
    // only a single-statement pattern fits.
    unsigned Pattern = Left == 1 ? Rng.next(3) : Rng.next(6);
    Emitted += emitCluster(OS, Pattern, K++);
  }
  return OS.str();
}
