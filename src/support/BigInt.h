//===- support/BigInt.h - Arbitrary-precision integers ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integer used throughout the polyhedral
/// machinery (Fourier-Motzkin elimination, the lexmin simplex and Farkas
/// multiplier elimination can all overflow 64-bit intermediates). The design
/// favours simplicity and exactness over raw speed: magnitudes are stored as
/// little-endian vectors of 32-bit limbs. This plays the role GMP plays for
/// PipLib/PolyLib in the original Pluto tool-chain.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_BIGINT_H
#define PLUTOPP_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pluto {

/// Arbitrary-precision signed integer.
///
/// Division follows C semantics (truncation toward zero); floorDiv/ceilDiv
/// provide the rounding variants polyhedral code generation needs.
class BigInt {
public:
  BigInt() : Sign(0) {}
  BigInt(long long V);

  /// Parses a base-10 literal with optional leading '-'. Asserts on malformed
  /// input (this is an internal type; inputs are trusted).
  static BigInt fromString(const std::string &S);

  bool isZero() const { return Sign == 0; }
  bool isNegative() const { return Sign < 0; }
  bool isPositive() const { return Sign > 0; }
  bool isOne() const;
  bool isMinusOne() const;

  /// Returns true iff the value fits in a signed 64-bit integer.
  bool fitsInt64() const;
  /// Converts to int64; asserts that the value fits.
  int64_t toInt64() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Truncating division (C semantics). Asserts RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder with C semantics: (a/b)*b + a%b == a.
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  /// Floor division: rounds toward negative infinity.
  BigInt floorDiv(const BigInt &RHS) const;
  /// Ceiling division: rounds toward positive infinity.
  BigInt ceilDiv(const BigInt &RHS) const;
  /// Non-negative remainder of floor division (always in [0, |RHS|)).
  BigInt floorMod(const BigInt &RHS) const;

  /// Exact division; asserts that RHS divides this exactly.
  BigInt divExact(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const { return compare(RHS) == 0; }
  bool operator!=(const BigInt &RHS) const { return compare(RHS) != 0; }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero or positive.
  int compare(const BigInt &RHS) const;

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(const BigInt &A, const BigInt &B);
  /// Least common multiple (always non-negative). lcm(0, x) == 0.
  static BigInt lcm(const BigInt &A, const BigInt &B);

  std::string toString() const;

private:
  /// -1, 0 or +1. Magnitude is empty iff Sign == 0.
  int Sign;
  /// Little-endian 32-bit limbs; no trailing zero limbs.
  std::vector<uint32_t> Mag;

  void normalize();
  static int compareMag(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Schoolbook long division of magnitudes; returns quotient, sets Rem.
  static std::vector<uint32_t> divModMag(const std::vector<uint32_t> &A,
                                         const std::vector<uint32_t> &B,
                                         std::vector<uint32_t> &Rem);
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_BIGINT_H
