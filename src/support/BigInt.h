//===- support/BigInt.h - Arbitrary-precision integers ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integer used throughout the polyhedral
/// machinery (Fourier-Motzkin elimination, the lexmin simplex and Farkas
/// multiplier elimination can all overflow 64-bit intermediates). This plays
/// the role GMP plays for PipLib/PolyLib in the original Pluto tool-chain.
///
/// Representation (the isl_int / LLVM-APInt pattern): values that fit in a
/// signed 64-bit integer are stored inline with overflow-checked fast paths
/// for every arithmetic operation; only values outside the int64 range fall
/// back to a little-endian vector of 32-bit limbs. The representation is
/// canonical — the limb form is used *iff* the value does not fit in int64 —
/// so comparisons and hashing never need cross-representation paths for
/// equal values, and in-range results of big-value arithmetic demote back to
/// the inline form. In practice polyhedral coefficients are tiny, so the
/// fast paths make the substrate allocation-free on the hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_BIGINT_H
#define PLUTOPP_SUPPORT_BIGINT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pluto {

/// Arbitrary-precision signed integer.
///
/// Division follows C semantics (truncation toward zero); floorDiv/ceilDiv
/// provide the rounding variants polyhedral code generation needs.
class BigInt {
public:
  BigInt() : Small(0), IsSmall(true), Sign(0) {}
  BigInt(long long V) : Small(V), IsSmall(true), Sign(0) {}

  /// Parses a base-10 literal with optional leading '-'. Asserts on malformed
  /// input (this is an internal type; inputs are trusted).
  static BigInt fromString(const std::string &S);

  bool isZero() const { return IsSmall ? Small == 0 : Sign == 0; }
  bool isNegative() const { return IsSmall ? Small < 0 : Sign < 0; }
  bool isPositive() const { return IsSmall ? Small > 0 : Sign > 0; }
  bool isOne() const { return IsSmall && Small == 1; }
  bool isMinusOne() const { return IsSmall && Small == -1; }

  /// Returns true iff the value fits in a signed 64-bit integer. Because the
  /// representation is canonical this is exactly the inline-form test.
  bool fitsInt64() const { return IsSmall; }
  /// Converts to int64; asserts that the value fits.
  int64_t toInt64() const {
    assert(IsSmall && "BigInt does not fit in int64");
    return Small;
  }

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;
  /// Truncating division (C semantics). Asserts RHS != 0.
  BigInt operator/(const BigInt &RHS) const;
  /// Remainder with C semantics: (a/b)*b + a%b == a.
  BigInt operator%(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }
  BigInt &operator/=(const BigInt &RHS) { return *this = *this / RHS; }

  /// Floor division: rounds toward negative infinity.
  BigInt floorDiv(const BigInt &RHS) const;
  /// Ceiling division: rounds toward positive infinity.
  BigInt ceilDiv(const BigInt &RHS) const;
  /// Non-negative remainder of floor division (always in [0, |RHS|)).
  BigInt floorMod(const BigInt &RHS) const;

  /// Exact division; asserts that RHS divides this exactly.
  BigInt divExact(const BigInt &RHS) const;

  bool operator==(const BigInt &RHS) const {
    if (IsSmall && RHS.IsSmall)
      return Small == RHS.Small;
    return compare(RHS) == 0;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero or positive.
  int compare(const BigInt &RHS) const;

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(const BigInt &A, const BigInt &B);
  /// Least common multiple (always non-negative). lcm(0, x) == 0.
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Hash of the value (equal values hash equal; representation is
  /// canonical so no cross-form mixing is needed).
  size_t hash() const;

  std::string toString() const;

private:
  /// Inline value; valid iff IsSmall.
  int64_t Small;
  /// Discriminator: true iff the value fits in int64 (canonical form).
  bool IsSmall;
  /// Limb-form sign: -1, 0 or +1. Magnitude is empty iff Sign == 0. Valid
  /// iff !IsSmall (and then never 0, since 0 fits inline).
  int8_t Sign;
  /// Little-endian 32-bit limbs; no trailing zero limbs. Valid iff !IsSmall.
  std::vector<uint32_t> Mag;

  /// Builds a limb-form value and demotes it to the inline form when it
  /// fits (maintains the canonical-representation invariant).
  static BigInt makeLarge(int Sign, std::vector<uint32_t> Mag);
  /// |Small| as an unsigned 64-bit value (handles INT64_MIN).
  static uint64_t absU64(int64_t V) {
    return V < 0 ? ~static_cast<uint64_t>(V) + 1 : static_cast<uint64_t>(V);
  }
  /// -1, 0 or +1 regardless of representation.
  int signum() const {
    if (IsSmall)
      return Small < 0 ? -1 : Small > 0 ? 1 : 0;
    return Sign;
  }
  /// Materializes the magnitude limbs (allocates for inline values; slow
  /// paths only).
  std::vector<uint32_t> magnitude() const;

  static int compareMag(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMag(const std::vector<uint32_t> &A,
                                      const std::vector<uint32_t> &B);
  /// Schoolbook long division of magnitudes; returns quotient, sets Rem.
  static std::vector<uint32_t> divModMag(const std::vector<uint32_t> &A,
                                         const std::vector<uint32_t> &B,
                                         std::vector<uint32_t> &Rem);

  BigInt addSlow(const BigInt &RHS) const;
  BigInt mulSlow(const BigInt &RHS) const;
  BigInt divSlow(const BigInt &RHS) const;
  BigInt modSlow(const BigInt &RHS) const;
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_BIGINT_H
