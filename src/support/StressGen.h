//===- support/StressGen.h - Synthetic scheduler stress programs -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of large restricted-C programs for scheduler
/// scaling experiments (bench_schedule, ci-sanitize.sh, the E9 table).
///
/// A generated program is a textual concatenation of independent "clusters":
/// small loop-nest idioms (pointwise map, j-carried recurrence, 2-d stencil,
/// producer/consumer chain, shared-read pair, producer + recurrence) whose
/// arrays and iterators are namespaced per cluster so no dependence crosses
/// a cluster boundary. The dependence graph therefore decomposes into
/// weakly connected components of 1-2 statements each, which is exactly the
/// shape the clustered scheduler (TransformOptions::Decompose) exploits -
/// while the exact monolithic path must still solve one ILP over all
/// statements, making the corpus a sharp A/B for the fast paths.
///
/// The generator is seeded by a hand-rolled LCG (no <random>, whose output
/// is implementation-defined) so the same (NumStatements, Seed) pair yields
/// byte-identical source on every platform and run.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_STRESSGEN_H
#define PLUTOPP_SUPPORT_STRESSGEN_H

#include <string>

namespace pluto {

/// Returns a restricted-C program (the dialect of examples/*.c) with exactly
/// \p NumStatements assignment statements, all in 2-d loop nests over a
/// single size parameter N. Deterministic in (NumStatements, Seed).
std::string generateStressProgram(unsigned NumStatements,
                                  unsigned long long Seed = 1);

} // namespace pluto

#endif // PLUTOPP_SUPPORT_STRESSGEN_H
