//===- support/Rational.h - Exact rational numbers --------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic on top of BigInt. Used by the lexmin simplex
/// tableau and by rational linear algebra (matrix inverse, orthogonal
/// complement). Values are kept normalized: gcd(Num, Den) == 1 and Den > 0.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_RATIONAL_H
#define PLUTOPP_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

namespace pluto {

/// An exact rational number Num/Den with Den > 0 and gcd(Num, Den) == 1.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(long long V) : Num(V), Den(1) {}
  Rational(BigInt N) : Num(std::move(N)), Den(1) {}
  Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
    normalize();
  }

  const BigInt &num() const { return Num; }
  const BigInt &den() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isPositive() const { return Num.isPositive(); }
  bool isInteger() const { return Den.isOne(); }

  Rational operator-() const { return Rational(-Num, Den); }

  Rational operator+(const Rational &R) const {
    return Rational(Num * R.Den + R.Num * Den, Den * R.Den);
  }
  Rational operator-(const Rational &R) const {
    return Rational(Num * R.Den - R.Num * Den, Den * R.Den);
  }
  Rational operator*(const Rational &R) const {
    return Rational(Num * R.Num, Den * R.Den);
  }
  Rational operator/(const Rational &R) const {
    assert(!R.isZero() && "rational division by zero");
    return Rational(Num * R.Den, Den * R.Num);
  }

  Rational &operator+=(const Rational &R) { return *this = *this + R; }
  Rational &operator-=(const Rational &R) { return *this = *this - R; }
  Rational &operator*=(const Rational &R) { return *this = *this * R; }
  Rational &operator/=(const Rational &R) { return *this = *this / R; }

  /// Three-way comparison.
  int compare(const Rational &R) const {
    return (Num * R.Den).compare(R.Num * Den);
  }
  bool operator==(const Rational &R) const { return compare(R) == 0; }
  bool operator!=(const Rational &R) const { return compare(R) != 0; }
  bool operator<(const Rational &R) const { return compare(R) < 0; }
  bool operator<=(const Rational &R) const { return compare(R) <= 0; }
  bool operator>(const Rational &R) const { return compare(R) > 0; }
  bool operator>=(const Rational &R) const { return compare(R) >= 0; }

  /// Largest integer <= value.
  BigInt floor() const { return Num.floorDiv(Den); }
  /// Smallest integer >= value.
  BigInt ceil() const { return Num.ceilDiv(Den); }
  /// Fractional part: value - floor(value), in [0, 1).
  Rational fract() const { return *this - Rational(floor()); }

  std::string toString() const {
    if (Den.isOne())
      return Num.toString();
    return Num.toString() + "/" + Den.toString();
  }

private:
  BigInt Num;
  BigInt Den;

  void normalize() {
    assert(!Den.isZero() && "rational with zero denominator");
    if (Den.isNegative()) {
      Num = -Num;
      Den = -Den;
    }
    if (Num.isZero()) {
      Den = BigInt(1);
      return;
    }
    BigInt G = BigInt::gcd(Num, Den);
    if (!G.isOne()) {
      Num = Num.divExact(G);
      Den = Den.divExact(G);
    }
  }
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_RATIONAL_H
