//===- support/Budget.h - Cooperative resource budgets ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative wall-clock / memory / work budget threaded through the
/// compiler's unbounded hot paths (parser statement loop, Fourier-Motzkin
/// elimination, the dependence census, simplex pivots in ilp/LexMin, and
/// codegen recursion) so a pathological input exhausts its budget and
/// reports StatusCode::ResourceExhausted instead of spinning or OOMing.
///
/// The design follows the observe/PassStats active-sink idiom: hot code
/// calls the free function budgetCharge(), which reads one thread-local
/// pointer and is a single predictable branch when no budget is installed
/// (the default - budgets-off runs pay nothing measurable). A Budget's
/// counters are atomic, so one budget may be shared by every thread of an
/// OpenMP region: capture activeBudget() before the parallel region and
/// install it in each worker with ScopedBudget.
///
/// Exhaustion is *sticky and cooperative*: once any limit trips, charge()
/// returns false forever and the hot loop is expected to bail out fast,
/// leaving its artifact garbage. Stage drivers (Pipeline) then detect the
/// sticky flag at stage boundaries and classify the failure, so individual
/// passes never need their own error plumbing for budgets. Wall-clock
/// checks are throttled (one steady_clock read per ~64 work units) to keep
/// charge() cheap.
///
/// The same header hosts the process-wide single-thread mode flag used by
/// sandbox worker children: forked children must not re-enter the parent's
/// OpenMP runtime, so deps consults singleThreadMode() before going
/// parallel.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_BUDGET_H
#define PLUTOPP_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pluto {

/// Limits for one compile. 0 means unlimited for each field; the default
/// object is fully unlimited and compiles exactly as before.
struct BudgetLimits {
  /// Wall-clock ceiling for the whole compile, in milliseconds.
  uint64_t WallMs = 0;
  /// Ceiling on tracked transient allocations (FM rows, tableau copies),
  /// in bytes. This is cooperative accounting, not an allocator hook; the
  /// sandbox's RLIMIT_AS is the hard backstop.
  uint64_t MaxMemoryBytes = 0;
  /// Ceiling on abstract work units (one unit ~ one generated FM row, one
  /// simplex pivot, one dependence pair, one parsed statement, one codegen
  /// node). Deterministic across runs, unlike WallMs - tests use this.
  uint64_t MaxWorkUnits = 0;

  bool unlimited() const {
    return WallMs == 0 && MaxMemoryBytes == 0 && MaxWorkUnits == 0;
  }

  /// Member-wise tightest merge (0 = unlimited loses to any bound); the
  /// server uses this to combine per-request and server-wide limits.
  static BudgetLimits tightest(const BudgetLimits &A, const BudgetLimits &B);
};

/// One compile's budget: monotonically consumed, never reset. Thread-safe;
/// meant to be installed thread-locally via ScopedBudget and consulted
/// through budgetCharge()/budgetExhausted().
class Budget {
public:
  explicit Budget(BudgetLimits L)
      : Limits(L), Start(std::chrono::steady_clock::now()) {}

  /// Consumes N work units (and re-checks the wall clock roughly every 64
  /// units). Returns false once the budget is exhausted - callers should
  /// unwind promptly, leaving whatever garbage state they have.
  bool charge(uint64_t N = 1) {
    if (Exhausted.load(std::memory_order_relaxed))
      return false;
    uint64_t W = Work.fetch_add(N, std::memory_order_relaxed) + N;
    if (Limits.MaxWorkUnits && W > Limits.MaxWorkUnits) {
      trip("work");
      return false;
    }
    if (Limits.WallMs && (W >> 6) != ((W - N) >> 6) && !checkWall())
      return false;
    return true;
  }

  /// Accounts Bytes of transient memory. Returns false once exhausted.
  bool chargeMemory(uint64_t Bytes) {
    if (Exhausted.load(std::memory_order_relaxed))
      return false;
    uint64_t M = Memory.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    if (Limits.MaxMemoryBytes && M > Limits.MaxMemoryBytes) {
      trip("memory");
      return false;
    }
    return true;
  }

  /// Unthrottled wall-clock check; returns false when over the deadline.
  bool checkWall();

  /// Marks the budget exhausted for Reason (a static string). Used by
  /// out-of-band detectors (bad_alloc handlers).
  void trip(const char *Why) {
    const char *Expected = nullptr;
    Reason.compare_exchange_strong(Expected, Why, std::memory_order_relaxed);
    Exhausted.store(true, std::memory_order_relaxed);
  }

  bool exhausted() const { return Exhausted.load(std::memory_order_relaxed); }
  /// "work", "memory" or "wall-clock"; null while not exhausted.
  const char *reason() const {
    return Reason.load(std::memory_order_relaxed);
  }
  uint64_t workUsed() const { return Work.load(std::memory_order_relaxed); }
  uint64_t memoryUsed() const {
    return Memory.load(std::memory_order_relaxed);
  }
  const BudgetLimits &limits() const { return Limits; }

private:
  BudgetLimits Limits;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> Work{0};
  std::atomic<uint64_t> Memory{0};
  std::atomic<bool> Exhausted{false};
  std::atomic<const char *> Reason{nullptr};
};

namespace detail {
extern thread_local Budget *ActiveBudget;
} // namespace detail

/// The budget installed on this thread, or null (the default: unlimited).
inline Budget *activeBudget() { return detail::ActiveBudget; }

/// RAII install/restore of the thread's active budget. Null is allowed
/// (explicitly uninstalls for the scope).
class ScopedBudget {
public:
  explicit ScopedBudget(Budget *B) : Saved(detail::ActiveBudget) {
    detail::ActiveBudget = B;
  }
  ~ScopedBudget() { detail::ActiveBudget = Saved; }
  ScopedBudget(const ScopedBudget &) = delete;
  ScopedBudget &operator=(const ScopedBudget &) = delete;

private:
  Budget *Saved;
};

/// Hot-path helper: charges the active budget, if any. True (keep going)
/// when no budget is installed.
inline bool budgetCharge(uint64_t N = 1) {
  Budget *B = detail::ActiveBudget;
  return !B || B->charge(N);
}

/// Hot-path helper: accounts transient memory against the active budget.
inline bool budgetChargeMemory(uint64_t Bytes) {
  Budget *B = detail::ActiveBudget;
  return !B || B->chargeMemory(Bytes);
}

/// True once the active budget has tripped (cheap sticky-flag read).
inline bool budgetExhausted() {
  Budget *B = detail::ActiveBudget;
  return B && B->exhausted();
}

/// Process-wide single-thread mode: set in forked sandbox workers, whose
/// inherited OpenMP runtime state is not usable after fork. Passes that
/// would spawn threads (the dependence census) run serially when set.
void setSingleThreadMode(bool On);
bool singleThreadMode();

} // namespace pluto

#endif // PLUTOPP_SUPPORT_BUDGET_H
