//===- support/LinearAlgebra.cpp - Rank, inverse, orthogonal space --------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/LinearAlgebra.h"

using namespace pluto;

RatMatrix pluto::toRational(const IntMatrix &M) {
  RatMatrix R(M.numRows(), M.numCols());
  for (unsigned I = 0; I < M.numRows(); ++I)
    for (unsigned J = 0; J < M.numCols(); ++J)
      R(I, J) = Rational(M(I, J));
  return R;
}

/// Reduces M to row echelon form in place; returns the rank.
static unsigned echelonize(RatMatrix &M) {
  unsigned Rank = 0;
  for (unsigned Col = 0; Col < M.numCols() && Rank < M.numRows(); ++Col) {
    // Find a pivot row.
    unsigned Pivot = Rank;
    while (Pivot < M.numRows() && M(Pivot, Col).isZero())
      ++Pivot;
    if (Pivot == M.numRows())
      continue;
    std::swap(M.row(Pivot), M.row(Rank));
    for (unsigned R = Rank + 1; R < M.numRows(); ++R) {
      if (M(R, Col).isZero())
        continue;
      Rational F = M(R, Col) / M(Rank, Col);
      for (unsigned C = Col; C < M.numCols(); ++C)
        M(R, C) -= F * M(Rank, C);
    }
    ++Rank;
  }
  return Rank;
}

unsigned pluto::rank(const RatMatrix &M) {
  RatMatrix Copy = M;
  return echelonize(Copy);
}

unsigned pluto::rank(const IntMatrix &M) { return rank(toRational(M)); }

std::optional<RatMatrix> pluto::inverse(const RatMatrix &M) {
  assert(M.numRows() == M.numCols() && "inverse of non-square matrix");
  unsigned N = M.numRows();
  RatMatrix A = M;
  RatMatrix Inv = RatMatrix::identity(N);
  for (unsigned Col = 0; Col < N; ++Col) {
    unsigned Pivot = Col;
    while (Pivot < N && A(Pivot, Col).isZero())
      ++Pivot;
    if (Pivot == N)
      return std::nullopt; // Singular.
    std::swap(A.row(Pivot), A.row(Col));
    std::swap(Inv.row(Pivot), Inv.row(Col));
    Rational P = A(Col, Col);
    for (unsigned C = 0; C < N; ++C) {
      A(Col, C) /= P;
      Inv(Col, C) /= P;
    }
    for (unsigned R = 0; R < N; ++R) {
      if (R == Col || A(R, Col).isZero())
        continue;
      Rational F = A(R, Col);
      for (unsigned C = 0; C < N; ++C) {
        A(R, C) -= F * A(Col, C);
        Inv(R, C) -= F * Inv(Col, C);
      }
    }
  }
  return Inv;
}

void pluto::normalizeByGcd(std::vector<BigInt> &Row) {
  BigInt G(0);
  for (const BigInt &V : Row)
    G = BigInt::gcd(G, V);
  if (G.isZero() || G.isOne())
    return;
  for (BigInt &V : Row)
    V = V.divExact(G);
}

IntMatrix pluto::orthogonalComplement(const IntMatrix &H) {
  unsigned N = H.numCols();
  if (H.numRows() == 0)
    return IntMatrix::identity(N);

  RatMatrix HR = toRational(H);
  RatMatrix HHt = HR * HR.transpose();
  std::optional<RatMatrix> HHtInv = inverse(HHt);
  assert(HHtInv && "orthogonalComplement requires full row-rank H");

  // Perp = I - H^T (H H^T)^{-1} H.
  RatMatrix Proj = HR.transpose() * (*HHtInv * HR);
  RatMatrix Perp(N, N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Perp(I, J) = Rational(I == J ? 1 : 0) - Proj(I, J);

  // Scale each row to integers and drop dependent/zero rows, keeping only a
  // basis (rank(Perp) = N - rank(H) rows).
  IntMatrix Result(N);
  IntMatrix Basis(N);
  for (unsigned I = 0; I < N; ++I) {
    BigInt Lcm(1);
    for (unsigned J = 0; J < N; ++J)
      Lcm = BigInt::lcm(Lcm, Perp(I, J).den());
    std::vector<BigInt> Row(N);
    bool AllZero = true;
    for (unsigned J = 0; J < N; ++J) {
      Row[J] = Perp(I, J).num() * Lcm.divExact(Perp(I, J).den());
      AllZero &= Row[J].isZero();
    }
    if (AllZero)
      continue;
    normalizeByGcd(Row);
    if (!isLinearlyIndependent(Basis, Row))
      continue;
    Basis.addRow(Row);
    Result.addRow(std::move(Row));
  }
  return Result;
}

bool pluto::isLinearlyIndependent(const IntMatrix &M,
                                  const std::vector<BigInt> &Row) {
  IntMatrix Ext = M;
  Ext.addRow(Row);
  return rank(Ext) == M.numRows() + 1;
}
