//===- support/Json.cpp - JSON value parsing and serialization ------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cerrno>
#include <cstdlib>

using namespace pluto;

namespace pluto {
namespace detail {

/// Recursive-descent parser over a complete document. Error messages carry
/// the byte offset; the depth cap bounds stack use on adversarial input.
struct JsonParser {
  const std::string &S;
  size_t Pos = 0;
  static constexpr unsigned MaxDepth = 96;

  explicit JsonParser(const std::string &S) : S(S) {}

  std::string errAt(const std::string &What) const {
    return "json: " + What + " at byte " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *L) {
    size_t N = 0;
    while (L[N])
      ++N;
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }

  /// Appends the UTF-8 encoding of code point Cp.
  static void appendUtf8(std::string &Out, unsigned Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  Result<unsigned> hex4() {
    if (Pos + 4 > S.size())
      return Err(errAt("truncated \\u escape"));
    unsigned V = 0;
    for (int I = 0; I < 4; ++I) {
      char C = S[Pos++];
      V <<= 4;
      if (C >= '0' && C <= '9')
        V |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        V |= static_cast<unsigned>(C - 'A' + 10);
      else
        return Err(errAt("bad hex digit in \\u escape"));
    }
    return V;
  }

  Result<std::string> string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return Err(errAt("expected string"));
    ++Pos;
    std::string Out;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return Out;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return Err(errAt("unescaped control character in string"));
      if (C != '\\') {
        Out += C;
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= S.size())
        return Err(errAt("truncated escape"));
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        auto Hi = hex4();
        if (!Hi)
          return Err(Hi.error());
        unsigned Cp = *Hi;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // High surrogate: must pair with \uDC00..\uDFFF.
          if (Pos + 1 >= S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u')
            return Err(errAt("unpaired surrogate"));
          Pos += 2;
          auto Lo = hex4();
          if (!Lo)
            return Err(Lo.error());
          if (*Lo < 0xDC00 || *Lo > 0xDFFF)
            return Err(errAt("invalid low surrogate"));
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (*Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return Err(errAt("unpaired surrogate"));
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return Err(errAt("unknown escape"));
      }
    }
    return Err(errAt("unterminated string"));
  }

  Result<JsonValue> number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    bool Digits = false;
    while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9') {
      ++Pos;
      Digits = true;
    }
    bool Fractional = false;
    if (Pos < S.size() && S[Pos] == '.') {
      Fractional = true;
      ++Pos;
      while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      Fractional = true;
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      while (Pos < S.size() && S[Pos] >= '0' && S[Pos] <= '9')
        ++Pos;
    }
    if (!Digits)
      return Err(errAt("expected number"));
    std::string Tok = S.substr(Start, Pos - Start);
    JsonValue V;
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(Tok.c_str(), nullptr);
    if (!Fractional) {
      errno = 0;
      long long I = std::strtoll(Tok.c_str(), nullptr, 10);
      if (errno != ERANGE) {
        V.IsInt = true;
        V.Int = I;
      }
    }
    return V;
  }

  Result<JsonValue> value(unsigned Depth) {
    if (Depth > MaxDepth)
      return Err(errAt("nesting too deep"));
    skipWs();
    if (Pos >= S.size())
      return Err(errAt("unexpected end of input"));
    char C = S[Pos];
    JsonValue V;
    switch (C) {
    case 'n':
      if (!literal("null"))
        return Err(errAt("bad literal"));
      return V;
    case 't':
      if (!literal("true"))
        return Err(errAt("bad literal"));
      V.K = JsonValue::Kind::Bool;
      V.B = true;
      return V;
    case 'f':
      if (!literal("false"))
        return Err(errAt("bad literal"));
      V.K = JsonValue::Kind::Bool;
      V.B = false;
      return V;
    case '"': {
      auto Str = string();
      if (!Str)
        return Err(Str.error());
      V.K = JsonValue::Kind::String;
      V.Str = std::move(*Str);
      return V;
    }
    case '[': {
      ++Pos;
      V.K = JsonValue::Kind::Array;
      skipWs();
      if (Pos < S.size() && S[Pos] == ']') {
        ++Pos;
        return V;
      }
      for (;;) {
        auto E = value(Depth + 1);
        if (!E)
          return Err(E.error());
        V.Arr.push_back(std::move(*E));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != ']')
        return Err(errAt("expected ',' or ']'"));
      ++Pos;
      return V;
    }
    case '{': {
      ++Pos;
      V.K = JsonValue::Kind::Object;
      skipWs();
      if (Pos < S.size() && S[Pos] == '}') {
        ++Pos;
        return V;
      }
      for (;;) {
        skipWs();
        auto Key = string();
        if (!Key)
          return Err(Key.error());
        skipWs();
        if (Pos >= S.size() || S[Pos] != ':')
          return Err(errAt("expected ':'"));
        ++Pos;
        auto E = value(Depth + 1);
        if (!E)
          return Err(E.error());
        V.Obj.emplace_back(std::move(*Key), std::move(*E));
        skipWs();
        if (Pos < S.size() && S[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      if (Pos >= S.size() || S[Pos] != '}')
        return Err(errAt("expected ',' or '}'"));
      ++Pos;
      return V;
    }
    default:
      return number();
    }
  }
};

} // namespace detail
} // namespace pluto

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::string JsonValue::toJson() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Number: {
    if (IsInt)
      return std::to_string(Int);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
    return Buf;
  }
  case Kind::String:
    return jsonQuote(Str);
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ',';
      Out += Arr[I].toJson();
    }
    Out += ']';
    return Out;
  }
  case Kind::Object: {
    std::string Out = "{";
    for (size_t I = 0; I < Obj.size(); ++I) {
      if (I)
        Out += ',';
      Out += jsonQuote(Obj[I].first);
      Out += ':';
      Out += Obj[I].second.toJson();
    }
    Out += '}';
    return Out;
  }
  }
  return "null";
}

Result<JsonValue> JsonValue::parse(const std::string &Text) {
  detail::JsonParser P(Text);
  auto V = P.value(0);
  if (!V)
    return V;
  P.skipWs();
  if (P.Pos != Text.size())
    return Err(P.errAt("trailing garbage after document"));
  return V;
}
