//===- support/LinearAlgebra.h - Rank, inverse, orthogonal space -*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational linear algebra helpers used by the transformation
/// framework: row rank (to check linear independence of hyperplanes), matrix
/// inverse, and the orthogonal complement of a row space
///   H_perp = I - H^T (H H^T)^{-1} H          (paper equation (6))
/// scaled to an integer matrix, which provides the linear-independence
/// constraints when searching for the next tiling hyperplane.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_LINEARALGEBRA_H
#define PLUTOPP_SUPPORT_LINEARALGEBRA_H

#include "support/Matrix.h"

#include <optional>

namespace pluto {

/// Converts an integer matrix to a rational one.
RatMatrix toRational(const IntMatrix &M);

/// Row rank of a rational matrix.
unsigned rank(const RatMatrix &M);
/// Row rank of an integer matrix.
unsigned rank(const IntMatrix &M);

/// Inverse of a square rational matrix; std::nullopt if singular.
std::optional<RatMatrix> inverse(const RatMatrix &M);

/// Divides an integer row vector by the gcd of its entries (no-op on zero
/// rows). Keeps constraint coefficients small.
void normalizeByGcd(std::vector<BigInt> &Row);

/// Orthogonal complement of the row space of H (paper eq. (6)), as an
/// integer matrix whose rows span the complement. H has full row rank by
/// construction (hyperplanes are added only when linearly independent).
/// Rows are scaled to integers, gcd-normalized, and zero rows dropped.
/// Returns an empty matrix when H spans the full space.
IntMatrix orthogonalComplement(const IntMatrix &H);

/// True if appending Row to the row space of M increases its rank.
bool isLinearlyIndependent(const IntMatrix &M, const std::vector<BigInt> &Row);

} // namespace pluto

#endif // PLUTOPP_SUPPORT_LINEARALGEBRA_H
