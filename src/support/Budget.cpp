//===- support/Budget.cpp - Cooperative resource budgets ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace pluto;

thread_local Budget *pluto::detail::ActiveBudget = nullptr;

namespace {
std::atomic<bool> GSingleThread{false};
} // namespace

BudgetLimits BudgetLimits::tightest(const BudgetLimits &A,
                                    const BudgetLimits &B) {
  auto Min = [](uint64_t X, uint64_t Y) {
    if (X == 0)
      return Y;
    if (Y == 0)
      return X;
    return X < Y ? X : Y;
  };
  BudgetLimits L;
  L.WallMs = Min(A.WallMs, B.WallMs);
  L.MaxMemoryBytes = Min(A.MaxMemoryBytes, B.MaxMemoryBytes);
  L.MaxWorkUnits = Min(A.MaxWorkUnits, B.MaxWorkUnits);
  return L;
}

bool Budget::checkWall() {
  if (Exhausted.load(std::memory_order_relaxed))
    return false;
  if (!Limits.WallMs)
    return true;
  auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  if (static_cast<uint64_t>(Elapsed) > Limits.WallMs) {
    trip("wall-clock");
    return false;
  }
  return true;
}

void pluto::setSingleThreadMode(bool On) {
  GSingleThread.store(On, std::memory_order_relaxed);
}

bool pluto::singleThreadMode() {
  return GSingleThread.load(std::memory_order_relaxed);
}
