//===- support/Json.h - Minimal JSON string escaping ------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON primitive every report producer needs: correct string
/// escaping. Shared by the observe trace serializer, the PassStats report
/// and the plutopp CLI so kernel names, diagnostic messages and trace
/// events with quotes, backslashes, newlines or control characters always
/// yield a valid document.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_JSON_H
#define PLUTOPP_SUPPORT_JSON_H

#include <cstdio>
#include <string>

namespace pluto {

/// Appends the JSON escape of S (no surrounding quotes) to Out.
inline void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// S as a quoted JSON string literal.
inline std::string jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  appendJsonEscaped(Out, S);
  Out += '"';
  return Out;
}

} // namespace pluto

#endif // PLUTOPP_SUPPORT_JSON_H
