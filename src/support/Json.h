//===- support/Json.h - Minimal JSON string escaping ------------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON primitives the toolchain's report producers and the plutod
/// wire protocol share: correct string escaping (used by the observe trace
/// serializer, the PassStats report and the plutopp CLI), a small
/// recursive-descent parser into JsonValue (used to decode plutod
/// CompileRequest lines), and a whitespace minifier that turns the pretty
/// multi-line report documents into single-line values suitable for a
/// newline-delimited protocol.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_JSON_H
#define PLUTOPP_SUPPORT_JSON_H

#include "support/Result.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace pluto {

/// Appends the JSON escape of S (no surrounding quotes) to Out.
inline void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

/// S as a quoted JSON string literal.
inline std::string jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  appendJsonEscaped(Out, S);
  Out += '"';
  return Out;
}

/// Removes every byte of whitespace outside string literals. Turns the
/// pretty-printed report documents (PassStats::toJson) into one-line
/// values that can be embedded in a newline-delimited protocol.
inline std::string minifyJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  bool InStr = false, Esc = false;
  for (char C : S) {
    if (InStr) {
      Out += C;
      if (Esc)
        Esc = false;
      else if (C == '\\')
        Esc = true;
      else if (C == '"')
        InStr = false;
      continue;
    }
    if (C == '"') {
      InStr = true;
      Out += C;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
      continue;
    Out += C;
  }
  return Out;
}

namespace detail {
struct JsonParser;
} // namespace detail

/// One parsed JSON document node. Strict parse (RFC 8259 value grammar,
/// \uXXXX escapes decoded to UTF-8 including surrogate pairs) with a
/// recursion-depth cap so hostile daemon input cannot overflow the stack.
/// Object member order is preserved; duplicate keys keep the first
/// occurrence in find().
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default; ///< null

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  /// True for numbers written without fraction/exponent that fit int64.
  bool isInteger() const { return K == Kind::Number && IsInt; }
  long long asInt() const {
    return IsInt ? Int : static_cast<long long>(Num);
  }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object member lookup; null for non-objects or missing keys.
  const JsonValue *find(const std::string &Key) const;

  /// Compact (minified) serialization of this value.
  std::string toJson() const;

  /// Parses exactly one JSON document (trailing garbage is an error).
  static Result<JsonValue> parse(const std::string &Text);

private:
  friend struct detail::JsonParser;

  Kind K = Kind::Null;
  bool B = false;
  bool IsInt = false;
  long long Int = 0;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_JSON_H
