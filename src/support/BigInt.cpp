//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>

using namespace pluto;

BigInt::BigInt(long long V) {
  if (V == 0) {
    Sign = 0;
    return;
  }
  Sign = V < 0 ? -1 : 1;
  // Careful with LLONG_MIN: negate in unsigned space.
  unsigned long long U =
      V < 0 ? ~static_cast<unsigned long long>(V) + 1ULL
            : static_cast<unsigned long long>(V);
  while (U != 0) {
    Mag.push_back(static_cast<uint32_t>(U & 0xffffffffULL));
    U >>= 32;
  }
}

BigInt BigInt::fromString(const std::string &S) {
  assert(!S.empty() && "empty integer literal");
  size_t I = 0;
  bool Neg = false;
  if (S[0] == '-' || S[0] == '+') {
    Neg = S[0] == '-';
    I = 1;
  }
  assert(I < S.size() && "sign with no digits");
  BigInt R;
  BigInt Ten(10);
  for (; I < S.size(); ++I) {
    assert(S[I] >= '0' && S[I] <= '9' && "non-digit in integer literal");
    R = R * Ten + BigInt(S[I] - '0');
  }
  return Neg ? -R : R;
}

void BigInt::normalize() {
  while (!Mag.empty() && Mag.back() == 0)
    Mag.pop_back();
  if (Mag.empty())
    Sign = 0;
}

bool BigInt::isOne() const {
  return Sign == 1 && Mag.size() == 1 && Mag[0] == 1;
}

bool BigInt::isMinusOne() const {
  return Sign == -1 && Mag.size() == 1 && Mag[0] == 1;
}

bool BigInt::fitsInt64() const {
  if (Mag.size() < 2)
    return true;
  if (Mag.size() > 2)
    return false;
  uint64_t U = (static_cast<uint64_t>(Mag[1]) << 32) | Mag[0];
  if (Sign > 0)
    return U <= static_cast<uint64_t>(INT64_MAX);
  return U <= static_cast<uint64_t>(INT64_MAX) + 1;
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "BigInt does not fit in int64");
  uint64_t U = 0;
  if (Mag.size() >= 1)
    U |= Mag[0];
  if (Mag.size() >= 2)
    U |= static_cast<uint64_t>(Mag[1]) << 32;
  if (Sign < 0)
    return -static_cast<int64_t>(U - 1) - 1; // Handles INT64_MIN.
  return static_cast<int64_t>(U);
}

BigInt BigInt::operator-() const {
  BigInt R = *this;
  R.Sign = -R.Sign;
  return R;
}

BigInt BigInt::abs() const {
  BigInt R = *this;
  if (R.Sign < 0)
    R.Sign = 1;
  return R;
}

int BigInt::compareMag(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Sign != RHS.Sign)
    return Sign < RHS.Sign ? -1 : 1;
  if (Sign == 0)
    return 0;
  int C = compareMag(Mag, RHS.Mag);
  return Sign > 0 ? C : -C;
}

std::vector<uint32_t> BigInt::addMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Lo = A.size() < B.size() ? A : B;
  const std::vector<uint32_t> &Hi = A.size() < B.size() ? B : A;
  std::vector<uint32_t> R;
  R.reserve(Hi.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Hi.size(); ++I) {
    uint64_t S = Carry + Hi[I] + (I < Lo.size() ? Lo[I] : 0);
    R.push_back(static_cast<uint32_t>(S));
    Carry = S >> 32;
  }
  if (Carry)
    R.push_back(static_cast<uint32_t>(Carry));
  return R;
}

std::vector<uint32_t> BigInt::subMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  assert(compareMag(A, B) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> R;
  R.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t S = static_cast<int64_t>(A[I]) - Borrow -
                (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (S < 0) {
      S += 1LL << 32;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    R.push_back(static_cast<uint32_t>(S));
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

std::vector<uint32_t> BigInt::mulMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> R(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Cur = R[I + J] + Carry +
                     static_cast<uint64_t>(A[I]) * static_cast<uint64_t>(B[J]);
      R[I + J] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = R[K] + Carry;
      R[K] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

std::vector<uint32_t> BigInt::divModMag(const std::vector<uint32_t> &A,
                                        const std::vector<uint32_t> &B,
                                        std::vector<uint32_t> &Rem) {
  assert(!B.empty() && "division by zero");
  Rem.clear();
  if (compareMag(A, B) < 0) {
    Rem = A;
    return {};
  }
  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    uint64_t D = B[0];
    std::vector<uint32_t> Q(A.size(), 0);
    uint64_t R = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (R << 32) | A[I];
      Q[I] = static_cast<uint32_t>(Cur / D);
      R = Cur % D;
    }
    while (!Q.empty() && Q.back() == 0)
      Q.pop_back();
    if (R)
      Rem.push_back(static_cast<uint32_t>(R));
    return Q;
  }
  // General case: bitwise long division. O(bits * limbs) but simple and
  // exact; divisor sizes in this code base are small.
  size_t Bits = A.size() * 32;
  std::vector<uint32_t> Q(A.size(), 0);
  std::vector<uint32_t> R;
  for (size_t I = Bits; I-- > 0;) {
    // R = (R << 1) | bit I of A.
    uint32_t CarryBit = 0;
    for (size_t J = 0; J < R.size(); ++J) {
      uint32_t NewCarry = R[J] >> 31;
      R[J] = (R[J] << 1) | CarryBit;
      CarryBit = NewCarry;
    }
    if (CarryBit)
      R.push_back(1);
    uint32_t BitI = (A[I / 32] >> (I % 32)) & 1;
    if (BitI) {
      if (R.empty())
        R.push_back(0);
      R[0] |= 1;
    }
    while (!R.empty() && R.back() == 0)
      R.pop_back();
    if (compareMag(R, B) >= 0) {
      R = subMag(R, B);
      Q[I / 32] |= 1u << (I % 32);
    }
  }
  while (!Q.empty() && Q.back() == 0)
    Q.pop_back();
  Rem = R;
  return Q;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (Sign == 0)
    return RHS;
  if (RHS.Sign == 0)
    return *this;
  BigInt R;
  if (Sign == RHS.Sign) {
    R.Sign = Sign;
    R.Mag = addMag(Mag, RHS.Mag);
    return R;
  }
  int C = compareMag(Mag, RHS.Mag);
  if (C == 0)
    return BigInt();
  if (C > 0) {
    R.Sign = Sign;
    R.Mag = subMag(Mag, RHS.Mag);
  } else {
    R.Sign = RHS.Sign;
    R.Mag = subMag(RHS.Mag, Mag);
  }
  return R;
}

BigInt BigInt::operator-(const BigInt &RHS) const { return *this + (-RHS); }

BigInt BigInt::operator*(const BigInt &RHS) const {
  BigInt R;
  R.Sign = Sign * RHS.Sign;
  if (R.Sign != 0)
    R.Mag = mulMag(Mag, RHS.Mag);
  R.normalize();
  return R;
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (Sign == 0)
    return BigInt();
  std::vector<uint32_t> Rem;
  BigInt Q;
  Q.Mag = divModMag(Mag, RHS.Mag, Rem);
  Q.Sign = Q.Mag.empty() ? 0 : Sign * RHS.Sign;
  return Q;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (Sign == 0)
    return BigInt();
  std::vector<uint32_t> Rem;
  divModMag(Mag, RHS.Mag, Rem);
  BigInt R;
  R.Mag = Rem;
  R.Sign = Rem.empty() ? 0 : Sign;
  return R;
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  BigInt Q = *this / RHS;
  BigInt R = *this % RHS;
  if (!R.isZero() && (R.isNegative() != RHS.isNegative()))
    Q -= BigInt(1);
  return Q;
}

BigInt BigInt::ceilDiv(const BigInt &RHS) const {
  BigInt Q = *this / RHS;
  BigInt R = *this % RHS;
  if (!R.isZero() && (R.isNegative() == RHS.isNegative()))
    Q += BigInt(1);
  return Q;
}

BigInt BigInt::floorMod(const BigInt &RHS) const {
  BigInt R = *this - floorDiv(RHS) * RHS;
  assert(!R.isNegative() && "floorMod must be non-negative");
  return R;
}

BigInt BigInt::divExact(const BigInt &RHS) const {
  BigInt Q = *this / RHS;
  assert((Q * RHS == *this) && "divExact with non-divisible operands");
  return Q;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt T = X % Y;
    X = Y;
    Y = T;
  }
  return X;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A.abs() / gcd(A, B)) * B.abs();
}

std::string BigInt::toString() const {
  if (Sign == 0)
    return "0";
  std::string Digits;
  std::vector<uint32_t> M = Mag;
  std::vector<uint32_t> Ten = {10};
  while (!M.empty()) {
    std::vector<uint32_t> Rem;
    M = divModMag(M, Ten, Rem);
    Digits.push_back(static_cast<char>('0' + (Rem.empty() ? 0 : Rem[0])));
  }
  if (Sign < 0)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}
