//===- support/BigInt.cpp - Arbitrary-precision integers ------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
//
// Overflow discipline: every inline (int64) fast path uses the compiler's
// checked-arithmetic builtins; on overflow the operands are materialized
// into limb vectors and the exact limb algorithms run. Results are demoted
// back to the inline form whenever they fit, keeping the representation
// canonical (limb form <=> value outside int64 range).
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/FaultInjector.h"

#include <algorithm>
#include <new>

using namespace pluto;

BigInt BigInt::makeLarge(int S, std::vector<uint32_t> M) {
  while (!M.empty() && M.back() == 0)
    M.pop_back();
  if (M.empty())
    S = 0;

  // Demote when the value fits in int64.
  bool Fits = false;
  if (M.size() < 2)
    Fits = true;
  else if (M.size() == 2) {
    uint64_t U = (static_cast<uint64_t>(M[1]) << 32) | M[0];
    Fits = S > 0 ? U <= static_cast<uint64_t>(INT64_MAX)
                 : U <= static_cast<uint64_t>(INT64_MAX) + 1;
  }
  if (Fits) {
    uint64_t U = 0;
    if (M.size() >= 1)
      U |= M[0];
    if (M.size() >= 2)
      U |= static_cast<uint64_t>(M[1]) << 32;
    int64_t V = S < 0 ? -static_cast<int64_t>(U - 1) - 1 // Handles INT64_MIN.
                      : static_cast<int64_t>(U);
    return BigInt(V);
  }

  // The one place every limb materialization funnels through: the fault
  // site stands in for a real allocation failure under arbitrary-precision
  // blowup, which surfaces exactly like this bad_alloc would.
  if (FaultInjector::shouldFail("bigint.alloc"))
    throw std::bad_alloc();

  BigInt R;
  R.IsSmall = false;
  R.Small = 0;
  R.Sign = static_cast<int8_t>(S);
  R.Mag = std::move(M);
  return R;
}

std::vector<uint32_t> BigInt::magnitude() const {
  if (!IsSmall)
    return Mag;
  std::vector<uint32_t> M;
  uint64_t U = absU64(Small);
  while (U != 0) {
    M.push_back(static_cast<uint32_t>(U & 0xffffffffULL));
    U >>= 32;
  }
  return M;
}

BigInt BigInt::fromString(const std::string &S) {
  assert(!S.empty() && "empty integer literal");
  size_t I = 0;
  bool Neg = false;
  if (S[0] == '-' || S[0] == '+') {
    Neg = S[0] == '-';
    I = 1;
  }
  assert(I < S.size() && "sign with no digits");
  // Fast path: accumulate in unsigned 64-bit while it cannot overflow.
  uint64_t U = 0;
  bool Overflow = false;
  for (size_t J = I; J < S.size(); ++J) {
    assert(S[J] >= '0' && S[J] <= '9' && "non-digit in integer literal");
    if (__builtin_mul_overflow(U, static_cast<uint64_t>(10), &U) ||
        __builtin_add_overflow(U, static_cast<uint64_t>(S[J] - '0'), &U)) {
      Overflow = true;
      break;
    }
  }
  if (!Overflow) {
    uint64_t Limit = static_cast<uint64_t>(INT64_MAX) + (Neg ? 1 : 0);
    if (U <= Limit) {
      if (!Neg)
        return BigInt(static_cast<int64_t>(U));
      return BigInt(U == 0 ? 0 : -static_cast<int64_t>(U - 1) - 1);
    }
    // Fits in uint64 but not int64: two limbs.
    return makeLarge(Neg ? -1 : 1,
                     {static_cast<uint32_t>(U), static_cast<uint32_t>(U >> 32)});
  }
  // Slow path: limb-by-limb decimal accumulation.
  BigInt R;
  BigInt Ten(10);
  for (; I < S.size(); ++I)
    R = R * Ten + BigInt(S[I] - '0');
  return Neg ? -R : R;
}

BigInt BigInt::operator-() const {
  if (IsSmall) {
    if (Small != INT64_MIN)
      return BigInt(-Small);
    // -INT64_MIN = 2^63 does not fit: promote.
    return makeLarge(1, {0, 0x80000000u});
  }
  // The inline range is asymmetric: negating +2^63 (limb form) lands on
  // INT64_MIN, so re-canonicalize through makeLarge.
  return makeLarge(-Sign, Mag);
}

BigInt BigInt::abs() const { return isNegative() ? -*this : *this; }

int BigInt::compareMag(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

int BigInt::compare(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall)
    return Small < RHS.Small ? -1 : Small > RHS.Small ? 1 : 0;
  // Canonical form: a limb-form value lies strictly outside the int64 range,
  // so mixed comparisons are decided by the limb side's sign.
  if (IsSmall)
    return RHS.Sign > 0 ? -1 : 1;
  if (RHS.IsSmall)
    return Sign > 0 ? 1 : -1;
  if (Sign != RHS.Sign)
    return Sign < RHS.Sign ? -1 : 1;
  int C = compareMag(Mag, RHS.Mag);
  return Sign > 0 ? C : -C;
}

std::vector<uint32_t> BigInt::addMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Lo = A.size() < B.size() ? A : B;
  const std::vector<uint32_t> &Hi = A.size() < B.size() ? B : A;
  std::vector<uint32_t> R;
  R.reserve(Hi.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Hi.size(); ++I) {
    uint64_t S = Carry + Hi[I] + (I < Lo.size() ? Lo[I] : 0);
    R.push_back(static_cast<uint32_t>(S));
    Carry = S >> 32;
  }
  if (Carry)
    R.push_back(static_cast<uint32_t>(Carry));
  return R;
}

std::vector<uint32_t> BigInt::subMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  assert(compareMag(A, B) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> R;
  R.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t S = static_cast<int64_t>(A[I]) - Borrow -
                (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (S < 0) {
      S += 1LL << 32;
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    R.push_back(static_cast<uint32_t>(S));
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

std::vector<uint32_t> BigInt::mulMag(const std::vector<uint32_t> &A,
                                     const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> R(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Cur = R[I + J] + Carry +
                     static_cast<uint64_t>(A[I]) * static_cast<uint64_t>(B[J]);
      R[I + J] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = R[K] + Carry;
      R[K] = static_cast<uint32_t>(Cur);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!R.empty() && R.back() == 0)
    R.pop_back();
  return R;
}

std::vector<uint32_t> BigInt::divModMag(const std::vector<uint32_t> &A,
                                        const std::vector<uint32_t> &B,
                                        std::vector<uint32_t> &Rem) {
  assert(!B.empty() && "division by zero");
  Rem.clear();
  if (compareMag(A, B) < 0) {
    Rem = A;
    return {};
  }
  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    uint64_t D = B[0];
    std::vector<uint32_t> Q(A.size(), 0);
    uint64_t R = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (R << 32) | A[I];
      Q[I] = static_cast<uint32_t>(Cur / D);
      R = Cur % D;
    }
    while (!Q.empty() && Q.back() == 0)
      Q.pop_back();
    if (R)
      Rem.push_back(static_cast<uint32_t>(R));
    return Q;
  }
  // General case: bitwise long division. O(bits * limbs) but simple and
  // exact; divisor sizes in this code base are small.
  size_t Bits = A.size() * 32;
  std::vector<uint32_t> Q(A.size(), 0);
  std::vector<uint32_t> R;
  for (size_t I = Bits; I-- > 0;) {
    // R = (R << 1) | bit I of A.
    uint32_t CarryBit = 0;
    for (size_t J = 0; J < R.size(); ++J) {
      uint32_t NewCarry = R[J] >> 31;
      R[J] = (R[J] << 1) | CarryBit;
      CarryBit = NewCarry;
    }
    if (CarryBit)
      R.push_back(1);
    uint32_t BitI = (A[I / 32] >> (I % 32)) & 1;
    if (BitI) {
      if (R.empty())
        R.push_back(0);
      R[0] |= 1;
    }
    while (!R.empty() && R.back() == 0)
      R.pop_back();
    if (compareMag(R, B) >= 0) {
      R = subMag(R, B);
      Q[I / 32] |= 1u << (I % 32);
    }
  }
  while (!Q.empty() && Q.back() == 0)
    Q.pop_back();
  Rem = R;
  return Q;
}

BigInt BigInt::addSlow(const BigInt &RHS) const {
  int SA = signum(), SB = RHS.signum();
  if (SA == 0)
    return RHS;
  if (SB == 0)
    return *this;
  std::vector<uint32_t> MA = magnitude(), MB = RHS.magnitude();
  if (SA == SB)
    return makeLarge(SA, addMag(MA, MB));
  int C = compareMag(MA, MB);
  if (C == 0)
    return BigInt();
  if (C > 0)
    return makeLarge(SA, subMag(MA, MB));
  return makeLarge(SB, subMag(MB, MA));
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_add_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return addSlow(RHS);
}

BigInt BigInt::operator-(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_sub_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return addSlow(-RHS);
}

BigInt BigInt::mulSlow(const BigInt &RHS) const {
  int S = signum() * RHS.signum();
  if (S == 0)
    return BigInt();
  return makeLarge(S, mulMag(magnitude(), RHS.magnitude()));
}

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (IsSmall && RHS.IsSmall) {
    int64_t R;
    if (!__builtin_mul_overflow(Small, RHS.Small, &R))
      return BigInt(R);
  }
  return mulSlow(RHS);
}

BigInt BigInt::divSlow(const BigInt &RHS) const {
  std::vector<uint32_t> Rem;
  std::vector<uint32_t> Q = divModMag(magnitude(), RHS.magnitude(), Rem);
  return makeLarge(signum() * RHS.signum(), std::move(Q));
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (IsSmall && RHS.IsSmall) {
    // INT64_MIN / -1 is the single overflowing int64 quotient.
    if (!(Small == INT64_MIN && RHS.Small == -1))
      return BigInt(Small / RHS.Small);
  }
  if (isZero())
    return BigInt();
  return divSlow(RHS);
}

BigInt BigInt::modSlow(const BigInt &RHS) const {
  std::vector<uint32_t> Rem;
  divModMag(magnitude(), RHS.magnitude(), Rem);
  return makeLarge(signum(), std::move(Rem));
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (IsSmall && RHS.IsSmall) {
    if (!(Small == INT64_MIN && RHS.Small == -1))
      return BigInt(Small % RHS.Small);
    return BigInt(); // INT64_MIN % -1 == 0.
  }
  if (isZero())
    return BigInt();
  return modSlow(RHS);
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (IsSmall && RHS.IsSmall &&
      !(Small == INT64_MIN && RHS.Small == -1)) {
    int64_t Q = Small / RHS.Small;
    int64_t R = Small % RHS.Small;
    // Q only reaches INT64_MIN with R == 0, so the adjustment cannot
    // overflow.
    if (R != 0 && ((R < 0) != (RHS.Small < 0)))
      --Q;
    return BigInt(Q);
  }
  BigInt Q = *this / RHS;
  BigInt R = *this % RHS;
  if (!R.isZero() && (R.isNegative() != RHS.isNegative()))
    Q -= BigInt(1);
  return Q;
}

BigInt BigInt::ceilDiv(const BigInt &RHS) const {
  assert(!RHS.isZero() && "division by zero");
  if (IsSmall && RHS.IsSmall &&
      !(Small == INT64_MIN && RHS.Small == -1)) {
    int64_t Q = Small / RHS.Small;
    int64_t R = Small % RHS.Small;
    // Q only reaches INT64_MAX with R == 0, so the adjustment cannot
    // overflow.
    if (R != 0 && ((R < 0) == (RHS.Small < 0)))
      ++Q;
    return BigInt(Q);
  }
  BigInt Q = *this / RHS;
  BigInt R = *this % RHS;
  if (!R.isZero() && (R.isNegative() == RHS.isNegative()))
    Q += BigInt(1);
  return Q;
}

BigInt BigInt::floorMod(const BigInt &RHS) const {
  BigInt R = *this - floorDiv(RHS) * RHS;
  assert(!R.isNegative() && "floorMod must be non-negative");
  return R;
}

BigInt BigInt::divExact(const BigInt &RHS) const {
  BigInt Q = *this / RHS;
  assert((Q * RHS == *this) && "divExact with non-divisible operands");
  return Q;
}

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  if (A.IsSmall && B.IsSmall) {
    uint64_t X = absU64(A.Small), Y = absU64(B.Small);
    while (Y != 0) {
      uint64_t T = X % Y;
      X = Y;
      Y = T;
    }
    if (X <= static_cast<uint64_t>(INT64_MAX))
      return BigInt(static_cast<int64_t>(X));
    // gcd involving INT64_MIN can be 2^63, one past the inline range.
    return makeLarge(1, {static_cast<uint32_t>(X),
                         static_cast<uint32_t>(X >> 32)});
  }
  BigInt X = A.abs(), Y = B.abs();
  while (!Y.isZero()) {
    BigInt T = X % Y;
    X = Y;
    Y = T;
  }
  return X;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  return (A.abs() / gcd(A, B)) * B.abs();
}

size_t BigInt::hash() const {
  // splitmix64-style mixing; limb form folds each limb in.
  auto mix = [](uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  };
  if (IsSmall)
    return static_cast<size_t>(mix(static_cast<uint64_t>(Small)));
  uint64_t H = mix(Sign < 0 ? ~0ULL : 1ULL);
  for (uint32_t L : Mag)
    H = mix(H ^ L);
  return static_cast<size_t>(H);
}

std::string BigInt::toString() const {
  if (IsSmall)
    return std::to_string(Small);
  std::string Digits;
  std::vector<uint32_t> M = Mag;
  std::vector<uint32_t> Ten = {10};
  while (!M.empty()) {
    std::vector<uint32_t> Rem;
    M = divModMag(M, Ten, Rem);
    Digits.push_back(static_cast<char>('0' + (Rem.empty() ? 0 : Rem[0])));
  }
  if (Sign < 0)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}
