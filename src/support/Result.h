//===- support/Result.h - Lightweight error propagation ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Expected-style result type. Library code does not throw; fallible
/// operations (parsing, pipeline stages) return Result<T> carrying either a
/// value or an error message, in the spirit of llvm::Expected.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_RESULT_H
#define PLUTOPP_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pluto {

/// Tag type for constructing a failed Result.
struct Err {
  std::string Message;
  explicit Err(std::string M) : Message(std::move(M)) {}
};

/// Holds either a T or an error message.
template <typename T> class Result {
public:
  Result(T Value) : Value(std::move(Value)) {}
  Result(Err E) : Error(std::move(E.Message)) {}

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing failed Result");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Result");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing failed Result");
    return &*Value;
  }

  T takeValue() {
    assert(Value && "taking value of failed Result");
    return std::move(*Value);
  }

  const std::string &error() const {
    assert(!Value && "error() on successful Result");
    return Error;
  }

private:
  std::optional<T> Value;
  std::string Error;
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_RESULT_H
