//===- support/FaultInjector.h - Deterministic fault injection --*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, site-named fault injection for exercising failure paths
/// that are otherwise hard to reach in tests (ENOSPC on the disk cache, a
/// crashed JIT cc, an OOM inside BigInt, a dead client socket, a worker
/// that fails to spawn). Each instrumented call site asks
///
///   if (FaultInjector::shouldFail("cache.disk_write")) { ...fail... }
///
/// and the injector decides from an armed spec of the form
///
///   site[:N] (fail the Nth hit, 1-based; default 1) or site:* (every hit),
///   comma-separated: "jit.compile:2,cache.disk_write:*"
///
/// armed programmatically (tests) or from the PLUTOPP_FAULT environment
/// variable (CI soak; tools call armFromEnv() at startup, and forked
/// sandbox children inherit the parent's armed state through fork).
///
/// Disarmed cost is one relaxed atomic load and branch per site hit - the
/// same zero-overhead-off contract as observe/PassStats. Hits at armed
/// sites are counted (whether or not they fail) so tests can assert a site
/// was actually reached.
///
/// Instrumented sites:
///   cache.disk_write    ResultCache::diskWrite stream write
///   cache.disk_read     ResultCache disk-tier lookup
///   jit.compile         CompiledKernel::compile cc invocation
///   bigint.alloc        BigInt limb materialization (throws bad_alloc)
///   serve.socket_write  Server event-loop send()
///   sandbox.spawn       SandboxWorker fork/socketpair
///   sandbox.abort       sandbox child: abort() before compiling
///   sandbox.hang        sandbox child: sleep past any deadline
///   tune.compile        autotuner: one hit per distinct variant entering
///                       the compile stage (tune::explore)
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_FAULTINJECTOR_H
#define PLUTOPP_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pluto {

class FaultInjector {
public:
  /// Parses and arms Spec (see file comment), replacing any previous
  /// arming. An empty spec disarms. Returns false (and leaves the
  /// previous arming in place) when the spec does not parse.
  static bool arm(const std::string &Spec);

  /// Arms from $PLUTOPP_FAULT when set and non-empty; no-op otherwise.
  static void armFromEnv();

  /// Disarms every site and forgets hit counts.
  static void disarm();

  /// True when any site is armed.
  static bool armed();

  /// The per-site decision: counts the hit and reports whether this hit
  /// must fail. Always false (and free) when disarmed.
  static bool shouldFail(const char *Site);

  /// Hits recorded at Site since arming (0 when disarmed or never hit).
  static uint64_t hits(const char *Site);

  /// Every armed site with its hit count, in spec order.
  static std::vector<std::pair<std::string, uint64_t>> allHits();
};

} // namespace pluto

#endif // PLUTOPP_SUPPORT_FAULTINJECTOR_H
