//===- support/FaultInjector.cpp - Deterministic fault injection ----------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "observe/PassStats.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

using namespace pluto;

namespace {

struct SiteRule {
  std::string Site;
  uint64_t FailOnHit = 1; ///< 1-based hit index to fail; 0 = every hit.
  uint64_t Hits = 0;
};

struct FaultConfig {
  std::mutex Mu;
  std::vector<SiteRule> Rules;
};

// Armed-or-not is the only thing the hot path reads; the config object is
// intentionally leaked on re-arm (sites may race shouldFail with disarm,
// and the handful of bytes is not worth a hazard scheme in a test-only
// facility).
std::atomic<FaultConfig *> GConfig{nullptr};

bool parseSpec(const std::string &Spec, std::vector<SiteRule> &Out) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Part = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Part.empty())
      continue;
    SiteRule R;
    size_t Colon = Part.find(':');
    if (Colon == std::string::npos) {
      R.Site = Part;
    } else {
      R.Site = Part.substr(0, Colon);
      std::string N = Part.substr(Colon + 1);
      if (R.Site.empty() || N.empty())
        return false;
      if (N == "*") {
        R.FailOnHit = 0;
      } else {
        uint64_t V = 0;
        for (char C : N) {
          if (C < '0' || C > '9')
            return false;
          V = V * 10 + static_cast<uint64_t>(C - '0');
        }
        if (V == 0)
          return false;
        R.FailOnHit = V;
      }
    }
    if (R.Site.empty())
      return false;
    Out.push_back(std::move(R));
  }
  return true;
}

} // namespace

bool FaultInjector::arm(const std::string &Spec) {
  std::vector<SiteRule> Rules;
  if (!parseSpec(Spec, Rules))
    return false;
  if (Rules.empty()) {
    disarm();
    return true;
  }
  auto *C = new FaultConfig;
  C->Rules = std::move(Rules);
  GConfig.store(C, std::memory_order_release);
  return true;
}

void FaultInjector::armFromEnv() {
  const char *Spec = std::getenv("PLUTOPP_FAULT");
  if (Spec && *Spec)
    arm(Spec);
}

void FaultInjector::disarm() {
  GConfig.store(nullptr, std::memory_order_release);
}

bool FaultInjector::armed() {
  return GConfig.load(std::memory_order_relaxed) != nullptr;
}

bool FaultInjector::shouldFail(const char *Site) {
  FaultConfig *C = GConfig.load(std::memory_order_acquire);
  if (!C)
    return false;
  std::lock_guard<std::mutex> Lock(C->Mu);
  for (SiteRule &R : C->Rules) {
    if (R.Site != Site)
      continue;
    ++R.Hits;
    bool Fail = R.FailOnHit == 0 || R.Hits == R.FailOnHit;
    if (Fail)
      count(Counter::FaultsInjected);
    return Fail;
  }
  return false;
}

uint64_t FaultInjector::hits(const char *Site) {
  FaultConfig *C = GConfig.load(std::memory_order_acquire);
  if (!C)
    return 0;
  std::lock_guard<std::mutex> Lock(C->Mu);
  for (const SiteRule &R : C->Rules)
    if (R.Site == Site)
      return R.Hits;
  return 0;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::allHits() {
  std::vector<std::pair<std::string, uint64_t>> Out;
  FaultConfig *C = GConfig.load(std::memory_order_acquire);
  if (!C)
    return Out;
  std::lock_guard<std::mutex> Lock(C->Mu);
  for (const SiteRule &R : C->Rules)
    Out.emplace_back(R.Site, R.Hits);
  return Out;
}
