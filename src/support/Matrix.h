//===- support/Matrix.h - Dense matrices over BigInt/Rational ---*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major matrix template used for constraint systems, affine access
/// functions, transformation matrices and the simplex tableau. Rows can be
/// appended/removed cheaply; columns are fixed per matrix but helpers exist
/// to insert columns (needed when domains gain supernode dimensions during
/// tiling, Algorithm 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SUPPORT_MATRIX_H
#define PLUTOPP_SUPPORT_MATRIX_H

#include "support/Rational.h"

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace pluto {

/// Dense row-major matrix over T (BigInt or Rational).
template <typename T> class Matrix {
public:
  Matrix() : Cols(0) {}
  explicit Matrix(unsigned NumCols) : Cols(NumCols) {}
  Matrix(unsigned NumRows, unsigned NumCols) : Cols(NumCols) {
    Data.resize(NumRows, std::vector<T>(NumCols, T(0)));
  }
  /// Builds a matrix from int literals, e.g. {{1, 0}, {0, 1}}.
  Matrix(std::initializer_list<std::initializer_list<long long>> Rows)
      : Cols(0) {
    for (const auto &R : Rows) {
      if (Cols == 0)
        Cols = static_cast<unsigned>(R.size());
      assert(R.size() == Cols && "ragged initializer");
      std::vector<T> Row;
      Row.reserve(Cols);
      for (long long V : R)
        Row.push_back(T(V));
      Data.push_back(std::move(Row));
    }
  }

  static Matrix identity(unsigned N) {
    Matrix M(N, N);
    for (unsigned I = 0; I < N; ++I)
      M(I, I) = T(1);
    return M;
  }

  unsigned numRows() const { return static_cast<unsigned>(Data.size()); }
  unsigned numCols() const { return Cols; }
  bool empty() const { return Data.empty(); }

  T &operator()(unsigned R, unsigned C) {
    assert(R < numRows() && C < Cols && "matrix index out of range");
    return Data[R][C];
  }
  const T &operator()(unsigned R, unsigned C) const {
    assert(R < numRows() && C < Cols && "matrix index out of range");
    return Data[R][C];
  }

  std::vector<T> &row(unsigned R) {
    assert(R < numRows());
    return Data[R];
  }
  const std::vector<T> &row(unsigned R) const {
    assert(R < numRows());
    return Data[R];
  }

  void addRow(std::vector<T> Row) {
    assert(Row.size() == Cols && "row width mismatch");
    Data.push_back(std::move(Row));
  }
  void addZeroRow() { Data.push_back(std::vector<T>(Cols, T(0))); }
  void insertRow(unsigned Pos, std::vector<T> Row) {
    assert(Pos <= numRows() && Row.size() == Cols);
    Data.insert(Data.begin() + Pos, std::move(Row));
  }
  void removeRow(unsigned R) {
    assert(R < numRows());
    Data.erase(Data.begin() + R);
  }
  void clearRows() { Data.clear(); }

  /// Inserts Count zero columns starting at position Pos in every row.
  void insertZeroColumns(unsigned Pos, unsigned Count) {
    assert(Pos <= Cols && "column insert position out of range");
    for (auto &Row : Data)
      Row.insert(Row.begin() + Pos, Count, T(0));
    Cols += Count;
  }

  /// Matrix product; asserts dimension compatibility.
  Matrix operator*(const Matrix &RHS) const {
    assert(Cols == RHS.numRows() && "matrix product dimension mismatch");
    Matrix R(numRows(), RHS.numCols());
    for (unsigned I = 0; I < numRows(); ++I)
      for (unsigned K = 0; K < Cols; ++K) {
        if (Data[I][K] == T(0))
          continue;
        for (unsigned J = 0; J < RHS.numCols(); ++J)
          R(I, J) += Data[I][K] * RHS(K, J);
      }
    return R;
  }

  Matrix transpose() const {
    Matrix R(Cols, numRows());
    for (unsigned I = 0; I < numRows(); ++I)
      for (unsigned J = 0; J < Cols; ++J)
        R(J, I) = Data[I][J];
    return R;
  }

  bool operator==(const Matrix &RHS) const {
    return Cols == RHS.Cols && Data == RHS.Data;
  }
  bool operator!=(const Matrix &RHS) const { return !(*this == RHS); }

  std::string toString() const {
    std::string S;
    for (unsigned I = 0; I < numRows(); ++I) {
      S += "[";
      for (unsigned J = 0; J < Cols; ++J) {
        if (J)
          S += " ";
        S += Data[I][J].toString();
      }
      S += "]\n";
    }
    return S;
  }

private:
  unsigned Cols;
  std::vector<std::vector<T>> Data;
};

using IntMatrix = Matrix<BigInt>;
using RatMatrix = Matrix<Rational>;

/// Dot product of a matrix row (first N columns) and a vector.
template <typename T>
T dot(const std::vector<T> &A, const std::vector<T> &B) {
  assert(A.size() == B.size() && "dot dimension mismatch");
  T S(0);
  for (size_t I = 0; I < A.size(); ++I)
    S += A[I] * B[I];
  return S;
}

} // namespace pluto

#endif // PLUTOPP_SUPPORT_MATRIX_H
