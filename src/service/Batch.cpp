//===- service/Batch.cpp - Concurrent batch compilation -------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

using namespace pluto;

std::vector<CompileResponse>
pluto::compileRequests(const std::vector<CompileRequest> &Reqs,
                       const BatchOptions &BO) {
  std::shared_ptr<ResultCache> Cache = BO.Cache;
  if (!Cache)
    Cache = std::make_shared<ResultCache>();

  std::vector<CompileResponse> Results(Reqs.size());

  unsigned Workers = BO.Jobs ? BO.Jobs : std::thread::hardware_concurrency();
  if (Workers == 0)
    Workers = 1;
  if (Workers > Reqs.size())
    Workers = static_cast<unsigned>(Reqs.size());

  std::atomic<size_t> Next{0};
  auto Work = [&] {
    // One session per distinct options fingerprint this worker sees;
    // typical traffic has one or a handful, so no eviction policy.
    std::unordered_map<std::string, std::unique_ptr<Pipeline>> Sessions;
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Reqs.size(); I = Next.fetch_add(1, std::memory_order_relaxed)) {
      const CompileRequest &Req = Reqs[I];
      std::string Fp = Req.Opts.fingerprint();
      auto It = Sessions.find(Fp);
      if (It == Sessions.end()) {
        auto P = Pipeline::create(Req.Opts);
        if (!P) {
          CompileResponse &Resp = Results[I];
          Resp.Status = StatusCode::BadRequest;
          Resp.Name = Req.Name;
          Resp.Error = P.error();
          continue;
        }
        auto Owned = std::make_unique<Pipeline>(std::move(*P));
        Owned->attachCache(Cache);
        It = Sessions.emplace(std::move(Fp), std::move(Owned)).first;
      }
      Results[I] = It->second->compileRequest(Req);
    }
  };

  if (Workers <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }
  return Results;
}

Result<std::vector<Result<CompileOutput>>>
pluto::compileBatch(const std::vector<CompileJob> &Jobs,
                    const PlutoOptions &Opts, const BatchOptions &BO) {
  // Validate once up front: an invalid option set rejects the whole batch
  // with one error instead of N copies of it (the historical contract of
  // this shim; compileRequests() reports per-request instead).
  if (auto V = Opts.validate(); !V)
    return Err(V.error());

  std::vector<CompileRequest> Reqs;
  Reqs.reserve(Jobs.size());
  for (const CompileJob &J : Jobs)
    Reqs.push_back({J.Name, J.Source, Opts});

  std::vector<CompileResponse> Resps = compileRequests(Reqs, BO);

  std::vector<Result<CompileOutput>> Results(Jobs.size(),
                                             Err("job not executed"));
  for (size_t I = 0; I < Resps.size(); ++I) {
    CompileResponse &R = Resps[I];
    if (R.ok())
      Results[I] = CompileOutput{std::move(R.Key), std::move(R.EmittedC),
                                 R.CacheHit};
    else
      Results[I] = Err(R.Error);
  }
  return Results;
}
