//===- service/Batch.cpp - Concurrent batch compilation -------------------===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//

#include "service/Batch.h"

#include <atomic>
#include <thread>

using namespace pluto;

Result<std::vector<Result<CompileOutput>>>
pluto::compileBatch(const std::vector<CompileJob> &Jobs,
                    const PlutoOptions &Opts, const BatchOptions &BO) {
  // Validate once up front; per-worker Pipeline::create below then cannot
  // fail, and an invalid option set rejects the whole batch with one error
  // instead of N copies of it.
  if (auto V = Opts.validate(); !V)
    return Err(V.error());

  std::shared_ptr<ResultCache> Cache = BO.Cache;
  if (!Cache)
    Cache = std::make_shared<ResultCache>();

  std::vector<Result<CompileOutput>> Results(Jobs.size(),
                                             Err("job not executed"));

  unsigned Workers = BO.Jobs ? BO.Jobs : std::thread::hardware_concurrency();
  if (Workers == 0)
    Workers = 1;
  if (Workers > Jobs.size())
    Workers = static_cast<unsigned>(Jobs.size());

  std::atomic<size_t> Next{0};
  auto Work = [&] {
    auto P = Pipeline::create(Opts);
    if (!P)
      return; // unreachable: validated above
    P->attachCache(Cache);
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Jobs.size(); I = Next.fetch_add(1, std::memory_order_relaxed))
      Results[I] = P->compile(Jobs[I].Source);
  };

  if (Workers <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W < Workers; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }
  return Results;
}
