//===- service/Hash.h - Content hashing for cache keys ----------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-contained SHA-256 (FIPS 180-4) used to derive content-addressed
/// cache keys from (canonical source, options fingerprint, toolchain
/// version). A cryptographic digest is deliberate: keys double as on-disk
/// file names shared between processes, so accidental collisions must be
/// out of the picture, and the implementation must not pull in an external
/// dependency. Throughput is irrelevant here - inputs are kilobytes of C
/// source per compile.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_HASH_H
#define PLUTOPP_SERVICE_HASH_H

#include <cstdint>
#include <string>

namespace pluto {

/// Incremental SHA-256. update() any number of times, then hexDigest()
/// (which finalizes; the object is spent afterwards).
class Sha256 {
public:
  Sha256();

  Sha256 &update(const void *Data, size_t Len);
  Sha256 &update(const std::string &S) { return update(S.data(), S.size()); }

  /// Finalizes and returns the 64-char lowercase hex digest.
  std::string hexDigest();

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalBytes = 0;
  uint8_t Buf[64];
  size_t BufLen = 0;
};

/// One-shot convenience: hex SHA-256 of S.
std::string sha256Hex(const std::string &S);

} // namespace pluto

#endif // PLUTOPP_SERVICE_HASH_H
