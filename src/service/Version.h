//===- service/Version.h - Toolchain and cache-format versions --*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Version identifiers the compilation service bakes into every
/// content-addressed cache key and into the on-disk cache layout. Bump
/// ToolchainVersion whenever any pass can emit different C for the same
/// (source, options) pair - stale entries then miss instead of serving
/// wrong code. Bump CacheDiskFormatVersion only when the on-disk layout
/// itself changes; old `v<N>` subdirectories are simply ignored by newer
/// binaries (DESIGN.md section 9).
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_VERSION_H
#define PLUTOPP_SERVICE_VERSION_H

namespace pluto {

/// Identity of the transformation toolchain, part of every cache key.
inline constexpr const char ToolchainVersion[] = "plutopp-4";

/// Layout version of the persistent cache directory (the `v1/` subdir).
inline constexpr unsigned CacheDiskFormatVersion = 1;

} // namespace pluto

#endif // PLUTOPP_SERVICE_VERSION_H
