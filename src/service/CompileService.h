//===- service/CompileService.h - Request/response compile API --*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public unit of work of the compilation service: one CompileRequest
/// in, one CompileResponse out, with a single StatusCode error taxonomy
/// shared verbatim by Pipeline sessions, compileRequests() batches, the
/// plutopp/plutoctl process exit codes and the plutod wire protocol
/// (DESIGN.md section 12). The taxonomy replaces the ad-hoc bool + error
/// string results the service layer grew up with:
///
///   ok             the unit compiled; EmittedC holds the translation unit
///   bad-request    the request itself is malformed (invalid PlutoOptions,
///                  undecodable wire payload, oversized body)
///   source-error   the frontend rejected the source; Diags carries every
///                  recovered diagnostic with line:col spans
///   schedule-abort the Pluto scheduling search gave up on a parseable
///                  program (budget abort, no legal affine schedule)
///   internal       any other stage failure (lowering, codegen, I/O)
///   overloaded     the serving side refused admission (bounded queue full,
///                  draining, request deadline exceeded) - the 429 class;
///                  never produced by in-process compilation
///   resource-exhausted
///                  the compile itself exceeded its resource budget (wall
///                  clock, memory, work units - support/Budget.h) or was
///                  killed by the sandbox's rlimits/watchdog; the request
///                  was admitted and well-formed, but this input cannot be
///                  compiled within the configured bounds
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_COMPILESERVICE_H
#define PLUTOPP_SERVICE_COMPILESERVICE_H

#include "driver/Driver.h"
#include "parser/Diagnostics.h"
#include "support/Budget.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pluto {

/// The one error taxonomy of the compilation service (see file comment).
enum class StatusCode : unsigned {
  Ok,
  BadRequest,
  SourceError,
  ScheduleAbort,
  Internal,
  Overloaded,
  ResourceExhausted,
};

/// Stable wire/report name: "ok", "bad-request", "source-error",
/// "schedule-abort", "internal", "overloaded", "resource-exhausted".
const char *statusCodeName(StatusCode S);

/// Inverse of statusCodeName(); nullopt for unknown names.
std::optional<StatusCode> statusCodeFromName(const std::string &Name);

/// The one status -> process exit code table (plutopp and plutoctl):
/// ok -> 0; bad-request, source-error -> 2; schedule-abort, internal -> 1;
/// overloaded -> 3; resource-exhausted -> 4.
int exitCodeFor(StatusCode S);

/// Folds two per-unit exit codes into one process exit code with the
/// documented precedence 2 (bad input) > 1 (internal) > 4 (over budget)
/// > 3 (overloaded) > 0, matching the historical plutopp behaviour where
/// a source error anywhere in the batch decides the exit code.
int aggregateExitCodes(int A, int B);

/// One unit of compilation work. Name is a diagnostic label only (it is
/// echoed in the response and in logs; it never affects the output or the
/// cache key).
struct CompileRequest {
  std::string Name;
  std::string Source;
  PlutoOptions Opts;
  /// Resource budget for this one compile (default: unlimited). Budgets
  /// never change what a successful compile emits, so they are carried
  /// here rather than in PlutoOptions and do not participate in the
  /// options fingerprint or the cache key.
  BudgetLimits Budget;
};

/// Everything one request produces. Exactly one of the three payload
/// shapes is populated, selected by Status: EmittedC (+Key, CacheHit) on
/// ok; Diags (+Error summary) on source-error; Error alone otherwise.
struct CompileResponse {
  StatusCode Status = StatusCode::Internal;
  /// Echo of CompileRequest::Name.
  std::string Name;
  /// Content-addressed cache key (64 hex chars); empty when the request
  /// never reached keying (bad-request, overloaded).
  std::string Key;
  /// The complete emitted C translation unit (ok only).
  std::string EmittedC;
  /// True when EmittedC was served from the cache (memory or disk).
  bool CacheHit = false;
  /// Structured frontend diagnostics (source-error; every recovered
  /// problem, with 1-based line:col spans).
  std::vector<Diagnostic> Diags;
  /// Human-readable failure summary; empty on ok.
  std::string Error;

  bool ok() const { return Status == StatusCode::Ok; }
  int exitCode() const { return exitCodeFor(Status); }
};

/// Appends one diagnostic as the JSON object
///   {"unit": ..., "line": L, "col": C, "severity": ..., "message": ...}
/// - the single serializer behind both the --report=json "diagnostics"
/// array and plutod wire responses, so the two schemas cannot drift.
void appendDiagnosticJson(std::string &Out, const std::string &Unit,
                          const Diagnostic &D);

/// The full "[...]" JSON array of Diags under unit label Unit.
std::string diagnosticsJsonArray(const std::string &Unit,
                                 const std::vector<Diagnostic> &Diags);

namespace detail {

/// The ResultCache carries failures as bare strings; these helpers tag a
/// StatusCode onto such a string (one \x01 + one status byte prefix) so
/// classification survives the single-flight handoff to coalesced
/// waiters. decode of an untagged string yields Internal.
std::string encodeStatusError(StatusCode S, const std::string &Msg);
std::pair<StatusCode, std::string> decodeStatusError(const std::string &E);

} // namespace detail

} // namespace pluto

#endif // PLUTOPP_SERVICE_COMPILESERVICE_H
