//===- service/Pipeline.h - Staged compilation sessions ---------*- C++-*-===//
//
// Part of plutopp, a reproduction of the PLDI'08 Pluto system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the toolchain: a Pipeline is a compilation
/// session that owns one validated, fingerprinted PlutoOptions set and
/// exposes the paper's Figure 5 stages
///
///   parse -> dependences -> schedule -> lower (tile/wavefront/vectorize +
///   codegen) -> emit
///
/// as lazy, memoized accessors over one source unit. Asking for a late
/// stage computes (and keeps) every earlier artifact; asking again reuses
/// the memoized artifact (counted as stage_reuses in PassStats), and
/// setSource() invalidates the session. This is the seam autotuning-style
/// clients use to re-lower one parsed+analyzed kernel under many emit
/// configurations without re-running the frontend.
///
/// compile() is the one-shot path batch and CLI traffic take: it consults
/// an attached ResultCache under the content-addressed key
///   sha256(canonical source \x1f options fingerprint \x1f toolchain version)
/// and only runs the stages on a miss. Canonicalization (CRLF -> LF,
/// trailing-whitespace strip, outer blank-line trim) makes cosmetically
/// different copies of one kernel share a cache entry; cached and cold
/// compiles are byte-identical by construction (the cache stores the exact
/// emitted unit).
///
/// A Pipeline is single-threaded (one session per worker); the attached
/// ResultCache is the shared, thread-safe component. See service/Batch.h
/// for the concurrent driver on top.
///
//===----------------------------------------------------------------------===//

#ifndef PLUTOPP_SERVICE_PIPELINE_H
#define PLUTOPP_SERVICE_PIPELINE_H

#include "driver/Driver.h"
#include "service/CompileService.h"
#include "service/ResultCache.h"

#include <memory>
#include <optional>
#include <string>

namespace pluto {

/// What the legacy compile(std::string) shim hands back for one source
/// unit. New code should use compileRequest(), whose CompileResponse
/// carries the same fields plus the StatusCode taxonomy and structured
/// diagnostics.
struct CompileOutput {
  /// Content-addressed cache key of this unit (64 hex chars).
  std::string Key;
  /// The complete emitted C translation unit.
  std::string EmittedC;
  /// True when EmittedC was served from the cache (memory or disk).
  bool CacheHit = false;
};

class Pipeline {
public:
  /// Validates Opts (PlutoOptions::validate()) and builds a session around
  /// them; the fingerprint is computed once here.
  static Result<Pipeline> create(PlutoOptions Opts = PlutoOptions());

  const PlutoOptions &options() const { return Opts; }
  const std::string &optionsFingerprint() const { return Fp; }

  /// Shares a result cache with this session; compile() consults it.
  void attachCache(std::shared_ptr<ResultCache> C) { Cache = std::move(C); }
  const std::shared_ptr<ResultCache> &cache() const { return Cache; }

  //===--------------------------------------------------------------------===//
  // Staged session API
  //===--------------------------------------------------------------------===//

  /// Begins a session over Source, dropping all memoized artifacts.
  void setSource(std::string Source);
  const std::string &source() const { return Src; }

  /// Frontend diagnostics of the current session's source, populated by the
  /// parse stage (empty before parsed() runs, or when the input is clean).
  /// When parsing fails the parse-stage error string is these joined with
  /// newlines; this accessor exposes the structured form (line:col spans)
  /// for rendering and machine reports.
  const std::vector<Diagnostic> &diagnostics() const { return SrcDiags; }

  /// Stage accessors: each computes missing predecessors on demand and
  /// memoizes its artifact for the lifetime of the session. The returned
  /// pointers stay valid until the next setSource().
  Result<const ParsedProgram *> parsed();
  Result<const DependenceGraph *> dependences();
  Result<const Schedule *> scheduled();
  Result<const PlutoResult *> lowered();
  /// Emitted C under the service emit policy (function "kernel", square
  /// parametric extents from the first parameter - the CLI default).
  Result<const std::string *> emitted();

  /// Moves the lowered result out of the session (recomputable on demand;
  /// parse/deps/schedule artifacts stay memoized). The compatibility shim
  /// optimizeSource() is exactly create + setSource + takeLowered.
  Result<PlutoResult> takeLowered();

  /// One-shot compile of Req through the attached cache (cold compile
  /// when no cache is attached), reporting through the service's
  /// StatusCode taxonomy. Resets the session to Req.Source. Req.Opts must
  /// match this session's options fingerprint (callers with heterogeneous
  /// option sets route requests to matching sessions - see
  /// compileRequests()); a mismatch is a bad-request response. On source-error the response
  /// carries every recovered frontend diagnostic, even when the failure
  /// was coalesced onto another session's in-flight compile.
  CompileResponse compileRequest(const CompileRequest &Req);

  /// One-shot compile of Source (legacy shim over compileRequest): the
  /// response flattened back to Result<CompileOutput> with the error as a
  /// bare string.
  Result<CompileOutput> compile(std::string Source);

  /// The content-addressed key compile() would use for Source under this
  /// session's options.
  std::string cacheKey(const std::string &Source) const;

  /// Whitespace/line-ending canonicalization applied before keying.
  static std::string canonicalizeSource(const std::string &Source);

  //===--------------------------------------------------------------------===//
  // Hooks outside the linear session
  //===--------------------------------------------------------------------===//

  /// Applies the post-schedule stages to an externally built schedule (the
  /// paper Section 7 forced-transformation baselines). Pure with respect
  /// to the session: memoized artifacts are untouched.
  Result<PlutoResult> lowerSchedule(ParsedProgram Parsed, DependenceGraph DG,
                                    Schedule Sched) const;

  /// Builds the untransformed-program AST (identity 2d+1 schedule) under
  /// this session's ParamMin context.
  Result<CgNodePtr> originalAst(const Program &Prog) const;

private:
  explicit Pipeline(PlutoOptions O);

  PlutoOptions Opts;
  std::string Fp;
  std::shared_ptr<ResultCache> Cache;

  std::string Src;
  /// Classification of the most recent stage failure (parse ->
  /// source-error, schedule -> schedule-abort, anything else -> internal);
  /// reset by setSource().
  StatusCode FailStatus = StatusCode::Internal;
  std::vector<Diagnostic> SrcDiags;
  std::optional<ParsedProgram> ParsedArt;
  std::optional<DependenceGraph> DepsArt;
  std::optional<Schedule> SchedArt;
  std::optional<PlutoResult> LoweredArt;
  std::optional<std::string> EmittedArt;
};

} // namespace pluto

#endif // PLUTOPP_SERVICE_PIPELINE_H
